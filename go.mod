module github.com/faasmem/faasmem

go 1.22
