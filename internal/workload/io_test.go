package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, Profiles()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 {
		t.Fatalf("profiles = %d", len(got))
	}
	for i, p := range Profiles() {
		g := got[i]
		if g.Name != p.Name || g.RuntimeBytes != p.RuntimeBytes ||
			g.InitBytes != p.InitBytes || g.ExecTime != p.ExecTime ||
			g.Pattern != p.Pattern || g.Language != p.Language ||
			g.Objects != p.Objects || g.QuotaBytes != p.QuotaBytes {
			t.Fatalf("profile %s changed in round trip:\nwant %+v\ngot  %+v", p.Name, p, g)
		}
	}
}

func TestReadProfilesHandWritten(t *testing.T) {
	src := `[{
		"name": "mysvc",
		"language": "python",
		"cpu_share": 0.25,
		"runtime_mb": 48,
		"runtime_hot_mb": 4,
		"init_mb": 200,
		"init_hot_mb": 80,
		"pattern": "fixed-hot",
		"exec_mb": 32,
		"exec_time_sec": 0.2,
		"init_time_sec": 1.5,
		"launch_time_sec": 0.7,
		"quota_mb": 512
	}]`
	ps, err := ReadProfiles(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	p := ps[0]
	if p.Name != "mysvc" || p.Language != Python || p.RuntimeBytes != 48*MB {
		t.Fatalf("parsed = %+v", p)
	}
	if p.ExecTime.Seconds() != 0.2 || p.QuotaBytes != 512*MB {
		t.Fatalf("times/quota = %v/%d", p.ExecTime, p.QuotaBytes)
	}
}

func TestReadProfilesErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`[]`,
		`[{"name":"a","language":"cobol","runtime_mb":10,"exec_time_sec":1,"quota_mb":100}]`,
		`[{"name":"a","language":"python","pattern":"mystery","runtime_mb":10,"exec_time_sec":1,"quota_mb":100}]`,
		`[{"name":"a","language":"python","runtime_mb":0,"exec_time_sec":1,"quota_mb":100}]`, // fails Validate
		`[{"name":"a","language":"python","runtime_mb":10,"exec_time_sec":1,"quota_mb":100},
		  {"name":"a","language":"python","runtime_mb":10,"exec_time_sec":1,"quota_mb":100}]`, // dup
	}
	for i, c := range cases {
		if _, err := ReadProfiles(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func FuzzReadProfiles(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteProfiles(&buf, Profiles())
	f.Add(buf.String())
	f.Add(`[]`)
	f.Add(`[{"name":"x"}]`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, data string) {
		ps, err := ReadProfiles(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range ps {
			if err := p.Validate(); err != nil {
				t.Fatalf("accepted invalid profile: %v", err)
			}
		}
	})
}
