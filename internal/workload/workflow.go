package workload

import (
	"encoding/json"
	"fmt"
	"math"
)

// Stage is one node of a workflow DAG: a benchmark profile invoked once (or
// Replicas times, for fan-out stages) after every dependency finished. A
// stage's intermediate output is produced into a named shared-state region
// in the pool; downstream stages map that region instead of re-deriving the
// bytes.
type Stage struct {
	// Name identifies the stage inside its workflow.
	Name string
	// Profile names the benchmark profile (workload.ByName) the stage runs.
	Profile string
	// Deps lists upstream stage names whose output regions this stage maps
	// before executing. Empty for source stages.
	Deps []string
	// OutBytes is the intermediate state the stage produces into its output
	// region for downstream consumers. Zero for sinks (and stages whose
	// result is returned, not passed).
	OutBytes int64
	// DirtyBytes is how many bytes the stage writes into its mapped
	// upstream regions, breaking the read-sharing copy-on-write (web
	// session caches). Zero for read-only consumers.
	DirtyBytes int64
	// Replicas is the stage's fan-out width: how many parallel invocations
	// run, each mapping the dependency regions independently. Zero means 1.
	Replicas int
}

// Width returns the stage's effective replica count.
func (s *Stage) Width() int {
	if s.Replicas <= 0 {
		return 1
	}
	return s.Replicas
}

// Workflow is a DAG of stages invoked as one logical request chain.
type Workflow struct {
	// Name identifies the workflow.
	Name string
	// Stages in declaration order. Dependencies may only reference other
	// stages in the same workflow; Validate rejects cycles.
	Stages []Stage
}

// Validate checks the DAG: non-empty names, known unique stages, resolvable
// dependencies, non-negative sizes, and acyclicity (Kahn's algorithm — a
// leftover stage after peeling zero-in-degree nodes means a cycle).
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: workflow without name")
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("workload: workflow %s: no stages", w.Name)
	}
	idx := make(map[string]int, len(w.Stages))
	for i := range w.Stages {
		s := &w.Stages[i]
		if s.Name == "" {
			return fmt.Errorf("workload: workflow %s: stage %d without name", w.Name, i)
		}
		if _, dup := idx[s.Name]; dup {
			return fmt.Errorf("workload: workflow %s: duplicate stage %q", w.Name, s.Name)
		}
		idx[s.Name] = i
		if s.Profile == "" {
			return fmt.Errorf("workload: workflow %s: stage %q without profile", w.Name, s.Name)
		}
		if s.OutBytes < 0 {
			return fmt.Errorf("workload: workflow %s: stage %q: negative output size", w.Name, s.Name)
		}
		if s.DirtyBytes < 0 {
			return fmt.Errorf("workload: workflow %s: stage %q: negative dirty size", w.Name, s.Name)
		}
		if s.Replicas < 0 {
			return fmt.Errorf("workload: workflow %s: stage %q: negative replicas", w.Name, s.Name)
		}
	}
	for i := range w.Stages {
		s := &w.Stages[i]
		for _, d := range s.Deps {
			j, ok := idx[d]
			if !ok {
				return fmt.Errorf("workload: workflow %s: stage %q depends on unknown stage %q", w.Name, s.Name, d)
			}
			if j == i {
				return fmt.Errorf("workload: workflow %s: stage %q depends on itself", w.Name, s.Name)
			}
		}
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns stage indices in a dependency-respecting order,
// deterministic for a given workflow (ready stages are taken in declaration
// order). Returns an error naming a cycle member if the DAG has a cycle.
func (w *Workflow) TopoOrder() ([]int, error) {
	n := len(w.Stages)
	idx := make(map[string]int, n)
	for i := range w.Stages {
		idx[w.Stages[i].Name] = i
	}
	indeg := make([]int, n)
	out := make([][]int, n)
	for i := range w.Stages {
		for _, d := range w.Stages[i].Deps {
			j := idx[d]
			indeg[i]++
			out[j] = append(out[j], i)
		}
	}
	order := make([]int, 0, n)
	// Peel in passes over declaration order: deterministic without a heap.
	done := make([]bool, n)
	for len(order) < n {
		progressed := false
		for i := 0; i < n; i++ {
			if done[i] || indeg[i] > 0 {
				continue
			}
			done[i] = true
			progressed = true
			order = append(order, i)
			for _, j := range out[i] {
				indeg[j]--
			}
		}
		if !progressed {
			for i := 0; i < n; i++ {
				if !done[i] {
					return nil, fmt.Errorf("workload: workflow %s: cycle through stage %q", w.Name, w.Stages[i].Name)
				}
			}
		}
	}
	return order, nil
}

// Invocations returns the total invocation count of one workflow run
// (replicas included).
func (w *Workflow) Invocations() int {
	n := 0
	for i := range w.Stages {
		n += w.Stages[i].Width()
	}
	return n
}

// workflowJSON / stageJSON are the serialized forms: sizes in MB, matching
// the profile schema.
type workflowJSON struct {
	Name   string      `json:"name"`
	Stages []stageJSON `json:"stages"`
}

type stageJSON struct {
	Name     string   `json:"name"`
	Profile  string   `json:"profile"`
	Deps     []string `json:"deps,omitempty"`
	OutMB    float64  `json:"out_mb,omitempty"`
	DirtyMB  float64  `json:"dirty_mb,omitempty"`
	Replicas int      `json:"replicas,omitempty"`
}

// MarshalJSON implements json.Marshaler with the human-readable schema.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	j := workflowJSON{Name: w.Name, Stages: make([]stageJSON, len(w.Stages))}
	for i := range w.Stages {
		s := &w.Stages[i]
		j.Stages[i] = stageJSON{
			Name: s.Name, Profile: s.Profile, Deps: s.Deps,
			OutMB:   float64(s.OutBytes) / MB,
			DirtyMB: float64(s.DirtyBytes) / MB,
		}
		if s.Replicas > 1 {
			j.Stages[i].Replicas = s.Replicas
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler and validates the result,
// rejecting NaN/Inf and negative sizes with descriptive errors before the
// structural Validate pass.
func (w *Workflow) UnmarshalJSON(data []byte) error {
	var j workflowJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("workload: workflow: %w", err)
	}
	w.Name = j.Name
	w.Stages = make([]Stage, len(j.Stages))
	for i, sj := range j.Stages {
		if err := checkMB(sj.OutMB, "workflow "+j.Name, sj.Name, "out_mb"); err != nil {
			return err
		}
		if err := checkMB(sj.DirtyMB, "workflow "+j.Name, sj.Name, "dirty_mb"); err != nil {
			return err
		}
		w.Stages[i] = Stage{
			Name: sj.Name, Profile: sj.Profile, Deps: sj.Deps,
			OutBytes:   mbToBytes(sj.OutMB),
			DirtyBytes: mbToBytes(sj.DirtyMB),
			Replicas:   sj.Replicas,
		}
	}
	return w.Validate()
}

// checkMB rejects non-finite and negative MB fields at decode time.
func checkMB(v float64, scope, name, field string) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("workload: %s: stage %q: %s must be finite, got %v", scope, name, field, v)
	}
	if v < 0 {
		return fmt.Errorf("workload: %s: stage %q: %s must be non-negative, got %v", scope, name, field, v)
	}
	return nil
}

// Workflows returns the built-in chained profiles: the state-passing shapes
// the ext-stateful experiment sweeps. Every referenced profile exists in
// Profiles(); replicas mark fan-out stages whose width the experiment
// overrides.
func Workflows() []*Workflow {
	return []*Workflow{
		{
			// ETL pipeline: each stage consumes its predecessor's output.
			Name: "pipeline",
			Stages: []Stage{
				{Name: "extract", Profile: "json", OutBytes: 48 * MB},
				{Name: "transform", Profile: "chameleon", Deps: []string{"extract"}, OutBytes: 32 * MB},
				{Name: "render", Profile: "image", Deps: []string{"transform"}, OutBytes: 12 * MB},
				{Name: "serve", Profile: "web", Deps: []string{"render"}},
			},
		},
		{
			// Fan-out/fan-in: N workers map one broadcast region, the join
			// maps the workers' combined output.
			Name: "fanout",
			Stages: []Stage{
				{Name: "source", Profile: "json", OutBytes: 64 * MB},
				{Name: "fan", Profile: "matmul", Deps: []string{"source"}, OutBytes: 16 * MB, Replicas: 4},
				{Name: "join", Profile: "json", Deps: []string{"fan"}},
			},
		},
		{
			// Map-reduce aggregation: mappers share the split input, the
			// reducer aggregates their output region.
			Name: "mapreduce",
			Stages: []Stage{
				{Name: "split", Profile: "json", OutBytes: 96 * MB},
				{Name: "map", Profile: "gzip", Deps: []string{"split"}, OutBytes: 24 * MB, Replicas: 6},
				{Name: "reduce", Profile: "graph", Deps: []string{"map"}},
			},
		},
		{
			// ML inference pipeline: preprocessed tensors flow into the
			// model stage, predictions into postprocessing.
			Name: "mlpipeline",
			Stages: []Stage{
				{Name: "preprocess", Profile: "image", OutBytes: 40 * MB},
				{Name: "infer", Profile: "bert", Deps: []string{"preprocess"}, OutBytes: 4 * MB},
				{Name: "postprocess", Profile: "json", Deps: []string{"infer"}},
			},
		},
		{
			// Web session cache: handlers map a shared session region and
			// write back a small dirty set (copy-on-write unshare).
			Name: "websession",
			Stages: []Stage{
				{Name: "session", Profile: "web", OutBytes: 32 * MB},
				{Name: "handler", Profile: "web", Deps: []string{"session"}, DirtyBytes: 2 * MB, Replicas: 4},
			},
		},
	}
}

// WorkflowByName returns the built-in workflow with the given name.
func WorkflowByName(name string) (*Workflow, error) {
	for _, w := range Workflows() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workflow %q", name)
}

// WorkflowNames lists the built-in workflow names in order.
func WorkflowNames() []string {
	ws := Workflows()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}
