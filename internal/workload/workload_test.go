package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestAllProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 11 {
		t.Fatalf("Profiles() returned %d, want 11", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfilesAreFreshCopies(t *testing.T) {
	a := ByName("bert")
	a.InitBytes = 1
	b := ByName("bert")
	if b.InitBytes == 1 {
		t.Fatal("ByName returned a shared profile; mutations leak")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown benchmark should be nil")
	}
	if len(Names()) != 11 {
		t.Errorf("Names() has %d entries", len(Names()))
	}
}

func TestMicroClassification(t *testing.T) {
	micros := 0
	for _, p := range Profiles() {
		if p.Micro() {
			micros++
			if p.InitBytes >= p.RuntimeBytes {
				t.Errorf("%s: micro-benchmark init (%d) should be smaller than runtime (%d)",
					p.Name, p.InitBytes, p.RuntimeBytes)
			}
		}
	}
	if micros != 8 {
		t.Fatalf("micro count = %d, want 8", micros)
	}
	for _, app := range []string{"bert", "graph", "web"} {
		p := ByName(app)
		if p.Micro() {
			t.Errorf("%s misclassified as micro", app)
		}
		if p.InitBytes <= p.RuntimeBytes {
			t.Errorf("%s: application init segment should dominate runtime (§8.2.1)", app)
		}
	}
}

func TestRuntimeFootprintShape(t *testing.T) {
	// Paper Fig. 4: OpenWhisk Python 24 MB, Java 57 MB; Azure all > 100 MB;
	// Java always the largest per platform.
	if got := RuntimeFootprint(OpenWhisk, Python); got != 24*MB {
		t.Errorf("OpenWhisk Python = %d, want 24 MB", got)
	}
	if got := RuntimeFootprint(OpenWhisk, Java); got != 57*MB {
		t.Errorf("OpenWhisk Java = %d, want 57 MB", got)
	}
	for _, l := range []Language{NodeJS, Python, Java} {
		if RuntimeFootprint(Azure, l) <= 100*MB {
			t.Errorf("Azure %v = %d, want > 100 MB", l, RuntimeFootprint(Azure, l))
		}
		if RuntimeFootprint(Azure, l) <= RuntimeFootprint(OpenWhisk, l) {
			t.Errorf("Azure %v should exceed OpenWhisk", l)
		}
	}
	for _, p := range []Platform{OpenWhisk, Azure} {
		if RuntimeFootprint(p, Java) <= RuntimeFootprint(p, Python) {
			t.Errorf("%v: Java should have the largest runtime (JVM)", p)
		}
	}
}

func TestQuotasMatchPaper(t *testing.T) {
	want := map[string]int64{"bert": 1280 * MB, "graph": 256 * MB, "web": 384 * MB}
	for name, q := range want {
		if got := ByName(name).QuotaBytes; got != q {
			t.Errorf("%s quota = %d, want %d", name, got, q)
		}
	}
}

func TestQuotaCoversFootprint(t *testing.T) {
	for _, p := range Profiles() {
		if p.TotalBytes() > p.QuotaBytes {
			t.Errorf("%s: footprint %d exceeds quota %d", p.Name, p.TotalBytes(), p.QuotaBytes)
		}
	}
}

func TestFixedHotTouches(t *testing.T) {
	p := Bert()
	rng := rand.New(rand.NewSource(1))
	tc := p.RequestTouches(rng)
	if len(tc.Runtime) != 1 || tc.Runtime[0].Len() != p.RuntimeHotBytes {
		t.Fatalf("runtime touches = %+v", tc.Runtime)
	}
	if len(tc.Init) < 1 || tc.Init[0] != (Span{0, p.InitHotBytes}) {
		t.Fatalf("init base touch = %+v, want [0, %d)", tc.Init, p.InitHotBytes)
	}
	// Jitter span stays within the init segment and outside the hot base.
	if len(tc.Init) == 2 {
		j := tc.Init[1]
		if j.Start < p.InitHotBytes || j.End > p.InitBytes {
			t.Fatalf("jitter span %+v escapes [hot, init)", j)
		}
		if j.Len() != p.JitterBytes {
			t.Fatalf("jitter length = %d, want %d", j.Len(), p.JitterBytes)
		}
	} else {
		t.Fatal("bert should produce a jitter span")
	}
}

func TestFullScanTouchesEverything(t *testing.T) {
	p := Graph()
	rng := rand.New(rand.NewSource(1))
	tc := p.RequestTouches(rng)
	if len(tc.Init) != 1 || tc.Init[0] != (Span{0, p.InitBytes}) {
		t.Fatalf("graph init touches = %+v, want full segment", tc.Init)
	}
}

func TestParetoTouches(t *testing.T) {
	p := Web()
	rng := rand.New(rand.NewSource(1))
	counts := make(map[int64]int)
	for i := 0; i < 5000; i++ {
		tc := p.RequestTouches(rng)
		// Shared base plus up to ObjectsPerRequest distinct object spans.
		if len(tc.Init) < 2 || len(tc.Init) > 1+p.ObjectsPerRequest {
			t.Fatalf("web touches = %+v, want shared + 1..%d objects", tc.Init, p.ObjectsPerRequest)
		}
		if tc.Init[0] != (Span{0, p.InitHotBytes}) {
			t.Fatalf("shared span = %+v", tc.Init[0])
		}
		for _, obj := range tc.Init[1:] {
			if obj.Start < p.InitHotBytes || obj.End > p.InitBytes {
				t.Fatalf("object span %+v out of range", obj)
			}
			counts[obj.Start]++
		}
	}
	// Pareto skew: the most popular object should dominate.
	maxCount, total := 0, 0
	for _, c := range counts {
		total += c
		if c > maxCount {
			maxCount = c
		}
	}
	if frac := float64(maxCount) / float64(total); frac < 0.1 {
		t.Errorf("top object share = %.2f, want Pareto-dominant (> 0.1)", frac)
	}
	// But the tail must exist: multiple distinct objects are touched.
	if len(counts) < 10 {
		t.Errorf("only %d distinct objects touched; Pareto tail missing", len(counts))
	}
}

func TestParetoIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		idx := paretoIndex(rng, 1.16, 50)
		if idx < 0 || idx >= 50 {
			t.Fatalf("pareto index %d out of [0, 50)", idx)
		}
	}
	if paretoIndex(rng, 1.16, 1) != 0 {
		t.Error("single-object pareto index must be 0")
	}
	if paretoIndex(rng, 1.16, 0) != 0 {
		t.Error("zero-object pareto index must be 0")
	}
}

func TestHelloWorldProfiles(t *testing.T) {
	for _, pl := range []Platform{OpenWhisk, Azure} {
		for _, l := range []Language{NodeJS, Python, Java} {
			h := HelloWorld(pl, l)
			if err := h.Validate(); err != nil {
				t.Errorf("hello %v/%v invalid: %v", pl, l, err)
			}
			if h.RuntimeBytes != RuntimeFootprint(pl, l) {
				t.Errorf("hello %v/%v runtime mismatch", pl, l)
			}
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := []*Profile{
		{},
		{Name: "x", RuntimeBytes: 0, ExecTime: time.Second},
		{Name: "x", RuntimeBytes: 10, ExecTime: 0},
		{Name: "x", RuntimeBytes: 10, RuntimeHotBytes: 20, ExecTime: time.Second},
		{Name: "x", RuntimeBytes: 10, InitBytes: 5, InitHotBytes: 6, ExecTime: time.Second},
		{Name: "x", RuntimeBytes: 10, Pattern: ParetoObjects, ExecTime: time.Second},
		{Name: "x", RuntimeBytes: 10, InitBytes: -1, ExecTime: time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestSpanLen(t *testing.T) {
	if (Span{10, 25}).Len() != 15 {
		t.Error("Span.Len wrong")
	}
}

func TestStringers(t *testing.T) {
	if OpenWhisk.String() != "OpenWhisk" || Azure.String() != "Azure" {
		t.Error("platform strings")
	}
	if NodeJS.String() != "Node.js" || Python.String() != "Python" || Java.String() != "Java" {
		t.Error("language strings")
	}
	if FixedHot.String() != "fixed-hot" || FullScan.String() != "full-scan" || ParetoObjects.String() != "pareto-objects" {
		t.Error("pattern strings")
	}
}
