package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// profileJSON is the serialized form of a Profile: sizes in MB and times in
// seconds, so hand-written files stay readable.
type profileJSON struct {
	Name              string  `json:"name"`
	Language          string  `json:"language"`
	CPUShare          float64 `json:"cpu_share"`
	RuntimeMB         float64 `json:"runtime_mb"`
	RuntimeHotMB      float64 `json:"runtime_hot_mb"`
	InitMB            float64 `json:"init_mb"`
	InitHotMB         float64 `json:"init_hot_mb"`
	JitterMB          float64 `json:"jitter_mb,omitempty"`
	JitterRegionMB    float64 `json:"jitter_region_mb,omitempty"`
	Pattern           string  `json:"pattern"`
	Objects           int     `json:"objects,omitempty"`
	ObjectsPerRequest int     `json:"objects_per_request,omitempty"`
	ParetoAlpha       float64 `json:"pareto_alpha,omitempty"`
	ExecMB            float64 `json:"exec_mb"`
	ExecTimeSec       float64 `json:"exec_time_sec"`
	InitTimeSec       float64 `json:"init_time_sec"`
	LaunchTimeSec     float64 `json:"launch_time_sec"`
	QuotaMB           float64 `json:"quota_mb"`
	RuntimeWriteRatio float64 `json:"runtime_write_ratio,omitempty"`
}

func mbToBytes(mb float64) int64 { return int64(mb * MB) }

func secToDur(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// MarshalJSON implements json.Marshaler with the human-readable schema.
func (p *Profile) MarshalJSON() ([]byte, error) {
	var pattern string
	switch p.Pattern {
	case FullScan:
		pattern = "full-scan"
	case ParetoObjects:
		pattern = "pareto-objects"
	default:
		pattern = "fixed-hot"
	}
	return json.Marshal(profileJSON{
		Name:              p.Name,
		Language:          p.Language.String(),
		CPUShare:          p.CPUShare,
		RuntimeMB:         float64(p.RuntimeBytes) / MB,
		RuntimeHotMB:      float64(p.RuntimeHotBytes) / MB,
		InitMB:            float64(p.InitBytes) / MB,
		InitHotMB:         float64(p.InitHotBytes) / MB,
		JitterMB:          float64(p.JitterBytes) / MB,
		JitterRegionMB:    float64(p.JitterRegionBytes) / MB,
		Pattern:           pattern,
		Objects:           p.Objects,
		ObjectsPerRequest: p.ObjectsPerRequest,
		ParetoAlpha:       p.ParetoAlpha,
		ExecMB:            float64(p.ExecBytes) / MB,
		ExecTimeSec:       p.ExecTime.Seconds(),
		InitTimeSec:       p.InitTime.Seconds(),
		LaunchTimeSec:     p.LaunchTime.Seconds(),
		QuotaMB:           float64(p.QuotaBytes) / MB,
		RuntimeWriteRatio: p.RuntimeWriteRatio,
	})
}

// checkField rejects non-finite and negative numeric profile fields at
// decode time, before unit conversion can fold them into nonsense byte
// counts or durations.
func checkField(v float64, name, field string) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("workload: profile %q: %s must be finite, got %v", name, field, v)
	}
	if v < 0 {
		return fmt.Errorf("workload: profile %q: %s must be non-negative, got %v", name, field, v)
	}
	return nil
}

// UnmarshalJSON implements json.Unmarshaler and validates the result:
// memory sizes and durations must be finite and non-negative, then the
// structural Validate pass runs on the converted profile.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var j profileJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("workload: profile: %w", err)
	}
	for _, f := range []struct {
		v     float64
		field string
	}{
		{j.RuntimeMB, "runtime_mb"},
		{j.RuntimeHotMB, "runtime_hot_mb"},
		{j.InitMB, "init_mb"},
		{j.InitHotMB, "init_hot_mb"},
		{j.JitterMB, "jitter_mb"},
		{j.JitterRegionMB, "jitter_region_mb"},
		{j.ExecMB, "exec_mb"},
		{j.ExecTimeSec, "exec_time_sec"},
		{j.InitTimeSec, "init_time_sec"},
		{j.LaunchTimeSec, "launch_time_sec"},
		{j.QuotaMB, "quota_mb"},
		{j.RuntimeWriteRatio, "runtime_write_ratio"},
	} {
		if err := checkField(f.v, j.Name, f.field); err != nil {
			return err
		}
	}
	switch j.Language {
	case "Node.js", "node", "nodejs", "":
		p.Language = NodeJS
	case "Python", "python":
		p.Language = Python
	case "Java", "java":
		p.Language = Java
	default:
		return fmt.Errorf("workload: profile %q: unknown language %q", j.Name, j.Language)
	}
	switch j.Pattern {
	case "fixed-hot", "":
		p.Pattern = FixedHot
	case "full-scan":
		p.Pattern = FullScan
	case "pareto-objects":
		p.Pattern = ParetoObjects
	default:
		return fmt.Errorf("workload: profile %q: unknown pattern %q", j.Name, j.Pattern)
	}
	p.Name = j.Name
	p.CPUShare = j.CPUShare
	p.RuntimeBytes = mbToBytes(j.RuntimeMB)
	p.RuntimeHotBytes = mbToBytes(j.RuntimeHotMB)
	p.InitBytes = mbToBytes(j.InitMB)
	p.InitHotBytes = mbToBytes(j.InitHotMB)
	p.JitterBytes = mbToBytes(j.JitterMB)
	p.JitterRegionBytes = mbToBytes(j.JitterRegionMB)
	p.Objects = j.Objects
	p.ObjectsPerRequest = j.ObjectsPerRequest
	p.ParetoAlpha = j.ParetoAlpha
	p.ExecBytes = mbToBytes(j.ExecMB)
	p.ExecTime = secToDur(j.ExecTimeSec)
	p.InitTime = secToDur(j.InitTimeSec)
	p.LaunchTime = secToDur(j.LaunchTimeSec)
	p.QuotaBytes = mbToBytes(j.QuotaMB)
	p.RuntimeWriteRatio = j.RuntimeWriteRatio
	return p.Validate()
}

// ReadProfiles decodes a JSON array of profiles from r.
func ReadProfiles(r io.Reader) ([]*Profile, error) {
	var out []*Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("workload: profiles: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: profiles: empty file")
	}
	seen := map[string]bool{}
	for _, p := range out {
		if seen[p.Name] {
			return nil, fmt.Errorf("workload: profiles: duplicate name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return out, nil
}

// LoadProfiles reads a profile file written by WriteProfiles (or by hand).
func LoadProfiles(path string) ([]*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: profiles: %w", err)
	}
	defer f.Close()
	return ReadProfiles(f)
}

// WriteProfiles encodes profiles as indented JSON to w.
func WriteProfiles(w io.Writer, profiles []*Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(profiles); err != nil {
		return fmt.Errorf("workload: profiles: %w", err)
	}
	return nil
}
