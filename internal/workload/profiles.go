package workload

import "time"

// micro builds a FunctionBench micro-benchmark profile. All eight run on the
// 0.1-core setting over the OpenWhisk Python action proxy (§8.1); their init
// segments are tiny ("they all have very little memory in the init segment",
// §8.2.1) so the runtime segment dominates, which is why FaaSMem offloads at
// least 50% of their memory.
func micro(name string, initMB, initHotMB, execMB int64, execTime time.Duration) *Profile {
	return &Profile{
		Name:            name,
		Language:        Python,
		CPUShare:        0.1,
		RuntimeBytes:    RuntimeFootprint(OpenWhisk, Python),
		RuntimeHotBytes: 3 * MB, // Flask action proxy + dispatch path
		InitBytes:       initMB * MB,
		InitHotBytes:    initHotMB * MB,
		Pattern:         FixedHot,
		ExecBytes:       execMB * MB,
		ExecTime:        execTime,
		InitTime:        400 * time.Millisecond,
		LaunchTime:      600 * time.Millisecond,
		QuotaBytes:      128 * MB,
	}
}

// Profiles returns fresh copies of all 11 benchmark profiles in the paper's
// presentation order (Fig. 12): the three applications first, then the eight
// micro-benchmarks.
func Profiles() []*Profile {
	return []*Profile{
		Bert(), Graph(), Web(),
		micro("float", 2, 1, 5, 50*time.Millisecond),
		micro("matmul", 3, 1, 25, 100*time.Millisecond),
		micro("linpack", 4, 2, 30, 150*time.Millisecond),
		micro("image", 8, 3, 40, 100*time.Millisecond),
		micro("chameleon", 6, 2, 15, 60*time.Millisecond),
		micro("pyaes", 2, 1, 8, 120*time.Millisecond),
		micro("gzip", 2, 1, 30, 80*time.Millisecond),
		micro("json", 2, 1, 5, 30*time.Millisecond),
	}
}

// ByName returns the named profile or nil.
func ByName(name string) *Profile {
	for _, p := range Profiles() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Names lists all benchmark names in presentation order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Bert is the BERT-based ML inference application. Calibration follows
// Fig. 6: initialization allocates up to ~1000 MB and releases part of it
// (~800 MB stays resident), each request accesses ~610 MB of which ~400 MB
// are init-stage hot pages, and Table 1 reports ~0.14 s latency on 1 core.
// Inputs are random sentences, so requests touch slightly different neural
// network nodes (the jitter).
func Bert() *Profile {
	return &Profile{
		Name:              "bert",
		Language:          Python,
		CPUShare:          1.0,
		RuntimeBytes:      30 * MB,
		RuntimeHotBytes:   4 * MB,
		InitBytes:         800 * MB,
		InitHotBytes:      440 * MB,
		JitterBytes:       40 * MB,
		JitterRegionBytes: 80 * MB, // varying NN nodes come from a stable working set
		Pattern:           FixedHot,
		ExecBytes:         150 * MB,
		ExecTime:          140 * time.Millisecond,
		InitTime:          5 * time.Second, // Fig. 6: first ~5 s are init
		LaunchTime:        800 * time.Millisecond,
		QuotaBytes:        1280 * MB, // §8.6
	}
}

// Graph is the breadth-first-search application. Each request performs a
// complete traversal of the entire graph (§8.2.1), so the whole init segment
// is hot every request and the offloading ratio is the poorest of the three
// applications. Table 1 reports ~0.25 s latency on 0.5 core.
func Graph() *Profile {
	return &Profile{
		Name:            "graph",
		Language:        Python,
		CPUShare:        0.5,
		RuntimeBytes:    26 * MB,
		RuntimeHotBytes: 3 * MB,
		InitBytes:       130 * MB,
		InitHotBytes:    130 * MB,
		Pattern:         FullScan,
		ExecBytes:       25 * MB,
		ExecTime:        250 * time.Millisecond,
		InitTime:        1500 * time.Millisecond,
		LaunchTime:      700 * time.Millisecond,
		QuotaBytes:      256 * MB, // §8.6
	}
}

// Web is the HTML web service. The init segment caches many HTML pages; a
// request's idx selects one with Pareto-distributed popularity (§8.1,
// Fig. 9), so most cached pages are cold and Web gains the highest
// offloading ratio (§8.2.2). Table 1 reports ~0.12–0.16 s latency on
// 0.2 core.
func Web() *Profile {
	return &Profile{
		Name:              "web",
		Language:          NodeJS,
		CPUShare:          0.2,
		RuntimeBytes:      30 * MB,
		RuntimeHotBytes:   4 * MB,
		InitBytes:         300 * MB,
		InitHotBytes:      140 * MB, // shared framework, templates, hot page cache
		Pattern:           ParetoObjects,
		Objects:           200, // ~0.8 MB per cold-tail cached page
		ObjectsPerRequest: 10,  // an HTML page plus its linked assets
		ParetoAlpha:       0.9, // heavy tail: popular pages dominate, long tail still hit
		ExecBytes:         10 * MB,
		ExecTime:          120 * time.Millisecond,
		InitTime:          1200 * time.Millisecond,
		LaunchTime:        500 * time.Millisecond,
		QuotaBytes:        384 * MB, // §8.6
	}
}

// HelloWorld returns the minimal function used by the Fig. 4 runtime
// footprint study on the given platform/language pair.
func HelloWorld(p Platform, l Language) *Profile {
	return &Profile{
		Name:            "hello-" + p.String() + "-" + l.String(),
		Language:        l,
		CPUShare:        0.1,
		RuntimeBytes:    RuntimeFootprint(p, l),
		RuntimeHotBytes: 2 * MB,
		InitBytes:       1 * MB,
		InitHotBytes:    1 * MB,
		Pattern:         FixedHot,
		ExecBytes:       1 * MB,
		ExecTime:        10 * time.Millisecond,
		InitTime:        100 * time.Millisecond,
		LaunchTime:      300 * time.Millisecond,
		QuotaBytes:      128 * MB,
	}
}
