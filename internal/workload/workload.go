// Package workload defines the memory and timing profiles of the paper's 11
// benchmarks: eight FunctionBench micro-benchmarks (float, matmul, linpack,
// image, chameleon, pyaes, gzip, json) and three real-world applications
// (BERT ML inference, Graph BFS, HTML Web service).
//
// A Profile captures what the offloading policies can observe of a real
// function: how much memory each lifecycle segment allocates, which pages a
// request touches (the per-segment hot sets), how inputs skew accesses
// (Pareto idx for Web), and base execution/initialization times. The numbers
// are calibrated against the paper's §3 measurements (Fig. 4 runtime
// footprints, Fig. 6 BERT scan, Fig. 9 Web scan) and §8.1 setup (CPU shares,
// ~200 ms application latencies, Table 1 memory levels).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// MB is one megabyte (10^6 bytes), the unit the paper reports memory in.
const MB = 1_000_000

// Platform is a serverless provider whose base images the runtime-footprint
// study (Fig. 4) compares.
type Platform int

const (
	// OpenWhisk is the Apache OpenWhisk official-build image family.
	OpenWhisk Platform = iota
	// Azure is the Azure Functions official-build image family.
	Azure
)

// String implements fmt.Stringer.
func (p Platform) String() string {
	if p == Azure {
		return "Azure"
	}
	return "OpenWhisk"
}

// Language is the runtime language of a container image.
type Language int

const (
	// NodeJS is the Node.js runtime.
	NodeJS Language = iota
	// Python is the CPython runtime.
	Python
	// Java is the JVM runtime.
	Java
)

// String implements fmt.Stringer.
func (l Language) String() string {
	switch l {
	case NodeJS:
		return "Node.js"
	case Python:
		return "Python"
	case Java:
		return "Java"
	default:
		return fmt.Sprintf("lang(%d)", int(l))
	}
}

// RuntimeFootprint returns the inactive runtime-segment memory of a
// hello-world container for the platform/language pair, calibrated to the
// paper's Figure 4 (OpenWhisk Python 24 MB, Java 57 MB; Azure all > 100 MB,
// Java largest due to the JVM).
func RuntimeFootprint(p Platform, l Language) int64 {
	switch p {
	case OpenWhisk:
		switch l {
		case NodeJS:
			return 18 * MB
		case Python:
			return 24 * MB
		case Java:
			return 57 * MB
		}
	case Azure:
		switch l {
		case NodeJS:
			return 104 * MB
		case Python:
			return 118 * MB
		case Java:
			return 152 * MB
		}
	}
	return 0
}

// PatternKind selects how a request touches the init segment.
type PatternKind int

const (
	// FixedHot requests touch a stable prefix of the init segment (plus a
	// small random jitter) — the BERT shape of Fig. 6 where ~400 MB of
	// init-stage pages are re-accessed by every request.
	FixedHot PatternKind = iota
	// FullScan requests touch the entire init segment — the Graph shape,
	// where each BFS traverses the whole graph (§8.2.1).
	FullScan
	// ParetoObjects models the Web shape of Fig. 9: the init segment is an
	// array of cached objects (HTML pages) and each request touches the
	// object selected by a Pareto-distributed idx plus a shared hot base.
	ParetoObjects
)

// String implements fmt.Stringer.
func (k PatternKind) String() string {
	switch k {
	case FixedHot:
		return "fixed-hot"
	case FullScan:
		return "full-scan"
	case ParetoObjects:
		return "pareto-objects"
	default:
		return fmt.Sprintf("pattern(%d)", int(k))
	}
}

// Span is a half-open byte interval [Start, End) inside a segment.
type Span struct {
	Start, End int64
}

// Len returns the span's byte length.
func (s Span) Len() int64 { return s.End - s.Start }

// Profile describes one benchmark.
type Profile struct {
	// Name is the benchmark's name as used throughout the paper.
	Name string
	// Language selects the container runtime.
	Language Language
	// CPUShare is the assigned CPU fraction (§8.1: 0.1 for micros, 1 / 0.5 /
	// 0.2 for Bert / Graph / Web).
	CPUShare float64

	// RuntimeBytes is the runtime-segment footprint (Fig. 4 shapes).
	RuntimeBytes int64
	// RuntimeHotBytes is the slice of the runtime touched on every request:
	// the action proxy, request dispatch, and language-core paths.
	RuntimeHotBytes int64

	// InitBytes is the resident init-segment footprint after initialization.
	InitBytes int64
	// InitHotBytes is the per-request hot set inside the init segment (for
	// FixedHot), or the shared base (for ParetoObjects). Ignored by FullScan.
	InitHotBytes int64
	// JitterBytes adds a random extra init touch per request (FixedHot), the
	// "different requests access different nodes of the neural network"
	// effect for BERT.
	JitterBytes int64
	// JitterRegionBytes bounds where the jitter lands: within
	// [InitHotBytes, InitHotBytes+JitterRegionBytes). Zero means the whole
	// remaining init segment. A narrow region means the varying pages are
	// drawn from a stable working set rather than the entire cold tail.
	JitterRegionBytes int64

	// Pattern selects the init access shape.
	Pattern PatternKind
	// Objects is the cached-object count for ParetoObjects.
	Objects int
	// ObjectsPerRequest is how many cached objects one request touches
	// (an HTML page plus its assets). Default 1.
	ObjectsPerRequest int
	// ParetoAlpha is the Pareto shape for object selection; §8.1 uses Pareto
	// distributed idx. 1.16 approximates an 80/20 skew.
	ParetoAlpha float64

	// ExecBytes is the short-lived exec-segment allocation per request.
	ExecBytes int64
	// ExecTime is the base execution time with all pages local.
	ExecTime time.Duration
	// InitTime is the function initialization time on cold start.
	InitTime time.Duration
	// LaunchTime is the container/runtime launch time on cold start.
	LaunchTime time.Duration

	// QuotaBytes is the production memory quota used by the density study
	// (Fig. 16: 1280 / 256 / 384 MB for Bert / Graph / Web).
	QuotaBytes int64

	// RuntimeWriteRatio is the fraction of the offloaded runtime segment a
	// request dirties (0..1). Writes against pool-side merge masters break
	// copy-on-write, so a non-zero ratio turns the function write-hot for
	// the merge-domain studies. Default 0: runtime pages are read-only, as
	// the density studies assume.
	RuntimeWriteRatio float64
}

// Micro reports whether this is one of the eight micro-benchmarks.
func (p *Profile) Micro() bool { return p.CPUShare <= 0.1 }

// TotalBytes returns the peak footprint of a container: runtime + init +
// exec segments.
func (p *Profile) TotalBytes() int64 { return p.RuntimeBytes + p.InitBytes + p.ExecBytes }

// Touches lists the byte spans a request touches in the runtime and init
// segments. Spans are relative to each segment's start.
type Touches struct {
	Runtime []Span
	Init    []Span
}

// paretoIndex draws an object index in [0, n) with Pareto-distributed
// popularity: low indices are exponentially more popular.
func paretoIndex(rng *rand.Rand, alpha float64, n int) int {
	if n <= 1 {
		return 0
	}
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	// Pareto with x_m = 1: x = u^(-1/alpha) ∈ [1, ∞).
	x := math.Pow(u, -1/alpha)
	idx := int(x) - 1
	if idx >= n {
		idx = idx % n
	}
	return idx
}

// RequestTouches returns the spans a single request accesses, using rng for
// the pattern's stochastic parts. It is deterministic given the rng state.
func (p *Profile) RequestTouches(rng *rand.Rand) Touches {
	var t Touches
	if p.RuntimeHotBytes > 0 {
		hot := min64(p.RuntimeHotBytes, p.RuntimeBytes)
		t.Runtime = append(t.Runtime, Span{0, hot})
	}
	switch p.Pattern {
	case FullScan:
		if p.InitBytes > 0 {
			t.Init = append(t.Init, Span{0, p.InitBytes})
		}
	case ParetoObjects:
		shared := min64(p.InitHotBytes, p.InitBytes)
		if shared > 0 {
			t.Init = append(t.Init, Span{0, shared})
		}
		if p.Objects > 0 && p.InitBytes > shared {
			objBytes := (p.InitBytes - shared) / int64(p.Objects)
			if objBytes > 0 {
				k := p.ObjectsPerRequest
				if k <= 0 {
					k = 1
				}
				seen := make(map[int]bool, k)
				for i := 0; i < k; i++ {
					idx := paretoIndex(rng, p.alpha(), p.Objects)
					if seen[idx] {
						continue
					}
					seen[idx] = true
					start := shared + int64(idx)*objBytes
					t.Init = append(t.Init, Span{start, min64(start+objBytes, p.InitBytes)})
				}
			}
		}
	default: // FixedHot
		hot := min64(p.InitHotBytes, p.InitBytes)
		if hot > 0 {
			t.Init = append(t.Init, Span{0, hot})
		}
		if p.JitterBytes > 0 && p.InitBytes > hot {
			regionEnd := p.InitBytes
			if p.JitterRegionBytes > 0 && hot+p.JitterRegionBytes < regionEnd {
				regionEnd = hot + p.JitterRegionBytes
			}
			span := min64(p.JitterBytes, regionEnd-hot)
			maxStart := regionEnd - span
			start := hot
			if maxStart > hot {
				start = hot + rng.Int63n(maxStart-hot+1)
			}
			t.Init = append(t.Init, Span{start, start + span})
		}
	}
	return t
}

func (p *Profile) alpha() float64 {
	if p.ParetoAlpha > 0 {
		return p.ParetoAlpha
	}
	return 1.16
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Validate performs sanity checks on a profile.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile without name")
	case p.RuntimeBytes <= 0:
		return fmt.Errorf("workload: %s: runtime segment must be positive", p.Name)
	case p.InitBytes < 0 || p.ExecBytes < 0:
		return fmt.Errorf("workload: %s: negative segment size", p.Name)
	case p.ExecTime <= 0:
		return fmt.Errorf("workload: %s: execution time must be positive", p.Name)
	case p.RuntimeHotBytes > p.RuntimeBytes:
		return fmt.Errorf("workload: %s: runtime hot set exceeds runtime segment", p.Name)
	case p.InitHotBytes > p.InitBytes:
		return fmt.Errorf("workload: %s: init hot set exceeds init segment", p.Name)
	case p.Pattern == ParetoObjects && p.Objects <= 0:
		return fmt.Errorf("workload: %s: pareto pattern needs Objects", p.Name)
	case p.RuntimeWriteRatio < 0 || p.RuntimeWriteRatio > 1:
		return fmt.Errorf("workload: %s: runtime write ratio must be in [0,1]", p.Name)
	}
	return nil
}
