package workload

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestBuiltinWorkflowsValid(t *testing.T) {
	names := map[string]bool{}
	for _, w := range Workflows() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if names[w.Name] {
			t.Errorf("duplicate workflow name %q", w.Name)
		}
		names[w.Name] = true
		for _, s := range w.Stages {
			if ByName(s.Profile) == nil {
				t.Errorf("%s/%s: unknown profile %q", w.Name, s.Name, s.Profile)
			}
		}
		if _, err := WorkflowByName(w.Name); err != nil {
			t.Errorf("WorkflowByName(%s): %v", w.Name, err)
		}
	}
	if len(WorkflowNames()) != len(Workflows()) {
		t.Fatal("WorkflowNames length mismatch")
	}
	if _, err := WorkflowByName("nope"); err == nil {
		t.Fatal("WorkflowByName(nope) succeeded")
	}
}

func TestWorkflowValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		w    Workflow
		want string
	}{
		{"no name", Workflow{}, "without name"},
		{"no stages", Workflow{Name: "w"}, "no stages"},
		{"unnamed stage", Workflow{Name: "w", Stages: []Stage{{Profile: "json"}}}, "without name"},
		{"dup stage", Workflow{Name: "w", Stages: []Stage{
			{Name: "a", Profile: "json"}, {Name: "a", Profile: "json"},
		}}, "duplicate stage"},
		{"no profile", Workflow{Name: "w", Stages: []Stage{{Name: "a"}}}, "without profile"},
		{"negative out", Workflow{Name: "w", Stages: []Stage{
			{Name: "a", Profile: "json", OutBytes: -1},
		}}, "negative output"},
		{"negative dirty", Workflow{Name: "w", Stages: []Stage{
			{Name: "a", Profile: "json", DirtyBytes: -1},
		}}, "negative dirty"},
		{"negative replicas", Workflow{Name: "w", Stages: []Stage{
			{Name: "a", Profile: "json", Replicas: -2},
		}}, "negative replicas"},
		{"unknown dep", Workflow{Name: "w", Stages: []Stage{
			{Name: "a", Profile: "json", Deps: []string{"ghost"}},
		}}, "unknown stage"},
		{"self dep", Workflow{Name: "w", Stages: []Stage{
			{Name: "a", Profile: "json", Deps: []string{"a"}},
		}}, "depends on itself"},
		{"cycle", Workflow{Name: "w", Stages: []Stage{
			{Name: "a", Profile: "json", Deps: []string{"b"}},
			{Name: "b", Profile: "json", Deps: []string{"a"}},
		}}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.w.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestTopoOrderDeterministicAndCorrect(t *testing.T) {
	w := Workflow{Name: "diamond", Stages: []Stage{
		{Name: "d", Profile: "json", Deps: []string{"b", "c"}},
		{Name: "b", Profile: "json", Deps: []string{"a"}},
		{Name: "c", Profile: "json", Deps: []string{"a"}},
		{Name: "a", Profile: "json"},
	}}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := map[string]int{}
	for at, i := range order {
		pos[w.Stages[i].Name] = at
	}
	for _, s := range w.Stages {
		for _, d := range s.Deps {
			if pos[d] >= pos[s.Name] {
				t.Fatalf("dep %s not before %s in %v", d, s.Name, order)
			}
		}
	}
	again, _ := w.TopoOrder()
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("TopoOrder not deterministic: %v vs %v", order, again)
		}
	}
}

func TestWorkflowJSONRoundTrip(t *testing.T) {
	for _, w := range Workflows() {
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", w.Name, err)
		}
		var back Workflow
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", w.Name, err)
		}
		if back.Name != w.Name || len(back.Stages) != len(w.Stages) {
			t.Fatalf("%s: round trip mangled shape", w.Name)
		}
		for i := range w.Stages {
			a, b := w.Stages[i], back.Stages[i]
			if a.Name != b.Name || a.Profile != b.Profile || a.OutBytes != b.OutBytes ||
				a.DirtyBytes != b.DirtyBytes || a.Width() != b.Width() {
				t.Fatalf("%s: stage %d differs: %+v vs %+v", w.Name, i, a, b)
			}
		}
	}
}

func TestWorkflowJSONRejectsBadSizes(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"negative out", `{"name":"w","stages":[{"name":"a","profile":"json","out_mb":-3}]}`, "non-negative"},
		{"negative dirty", `{"name":"w","stages":[{"name":"a","profile":"json","dirty_mb":-0.5}]}`, "non-negative"},
		{"cycle", `{"name":"w","stages":[{"name":"a","profile":"json","deps":["b"]},{"name":"b","profile":"json","deps":["a"]}]}`, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w Workflow
			err := json.Unmarshal([]byte(tc.body), &w)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestWorkflowInvocations(t *testing.T) {
	w, err := WorkflowByName("fanout")
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Invocations(); got != 6 { // source + 4 fan replicas + join
		t.Fatalf("Invocations=%d, want 6", got)
	}
}

func TestProfileJSONRejectsBadFields(t *testing.T) {
	base := func(overrides string) string {
		return `{"name":"p","language":"python","cpu_share":0.1,"runtime_mb":10,
			"runtime_hot_mb":1,"init_mb":5,"init_hot_mb":1,"pattern":"fixed-hot",
			"exec_mb":1,"exec_time_sec":0.1,"init_time_sec":0.1,"launch_time_sec":0.1,
			"quota_mb":64` + overrides + `}`
	}
	cases := []struct {
		name, body, want string
	}{
		{"negative runtime", base(`,"runtime_mb":-10`), "runtime_mb must be non-negative"},
		{"negative init", base(`,"init_mb":-1`), "init_mb must be non-negative"},
		{"negative exec time", base(`,"exec_time_sec":-0.5`), "exec_time_sec must be non-negative"},
		{"negative launch time", base(`,"launch_time_sec":-2`), "launch_time_sec must be non-negative"},
		{"negative quota", base(`,"quota_mb":-64`), "quota_mb must be non-negative"},
		{"huge exponent", base(`,"init_mb":1e309`), ""}, // json itself rejects out-of-range floats
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p Profile
			err := json.Unmarshal([]byte(tc.body), &p)
			if err == nil {
				t.Fatal("decode succeeded")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err=%v, want substring %q", err, tc.want)
			}
		})
	}
	// A clean profile still decodes.
	var p Profile
	if err := json.Unmarshal([]byte(base("")), &p); err != nil {
		t.Fatalf("clean profile rejected: %v", err)
	}
}
