package workload_test

import (
	"fmt"
	"math/rand"

	"github.com/faasmem/faasmem/internal/workload"
)

// Example lists the paper's 11 benchmarks and one profile's segment layout.
func Example() {
	fmt.Println(len(workload.Names()), "benchmarks")
	b := workload.Bert()
	fmt.Printf("bert: runtime %d MB, init %d MB (%d MB hot), exec %d MB\n",
		b.RuntimeBytes/workload.MB, b.InitBytes/workload.MB,
		b.InitHotBytes/workload.MB, b.ExecBytes/workload.MB)
	// Output:
	// 11 benchmarks
	// bert: runtime 30 MB, init 800 MB (440 MB hot), exec 150 MB
}

// ExampleProfile_RequestTouches shows how a request's page accesses are
// derived from a profile: the Web benchmark touches a shared base plus
// Pareto-selected cached objects.
func ExampleProfile_RequestTouches() {
	p := workload.Web()
	rng := rand.New(rand.NewSource(1))
	t := p.RequestTouches(rng)
	fmt.Printf("runtime spans: %d, init spans: %d (shared %d MB first)\n",
		len(t.Runtime), len(t.Init), t.Init[0].Len()/workload.MB)
	// Output:
	// runtime spans: 1, init spans: 7 (shared 140 MB first)
}
