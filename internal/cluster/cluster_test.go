package cluster

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func testProfile() *workload.Profile {
	return &workload.Profile{
		Name:            "t",
		Language:        workload.Python,
		CPUShare:        0.1,
		RuntimeBytes:    2 * workload.MB,
		RuntimeHotBytes: 512 * 1024,
		InitBytes:       1 * workload.MB,
		InitHotBytes:    256 * 1024,
		Pattern:         workload.FixedHot,
		ExecBytes:       256 * 1024,
		ExecTime:        100 * time.Millisecond,
		InitTime:        100 * time.Millisecond,
		LaunchTime:      100 * time.Millisecond,
		QuotaBytes:      8 * workload.MB,
	}
}

func secs(vals ...float64) []simtime.Time {
	out := make([]simtime.Time, len(vals))
	for i, v := range vals {
		out[i] = simtime.Time(v * float64(time.Second))
	}
	return out
}

func baselineFactory() policy.Policy { return policy.NoOffload{} }

func TestDefaultRackSize(t *testing.T) {
	c := New(simtime.NewEngine(), Config{}, baselineFactory)
	if len(c.Nodes()) != 10 {
		t.Fatalf("nodes = %d, want 10", len(c.Nodes()))
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	e := simtime.NewEngine()
	c := New(e, Config{Nodes: 3, Scheduler: RoundRobin,
		Node: faas.Config{KeepAliveTimeout: time.Minute}}, baselineFactory)
	c.Register("t", testProfile())
	// Concurrent requests: each should land on the next node.
	c.ScheduleInvocations("t", secs(0, 0.01, 0.02))
	e.RunUntil(10 * time.Second)
	for i, n := range c.Nodes() {
		if n.ContainersCreated() != 1 {
			t.Errorf("node %d created %d containers, want 1", i, n.ContainersCreated())
		}
	}
}

func TestWarmFirstPrefersIdleContainer(t *testing.T) {
	e := simtime.NewEngine()
	c := New(e, Config{Nodes: 3, Scheduler: WarmFirst,
		Node: faas.Config{KeepAliveTimeout: 10 * time.Minute}}, baselineFactory)
	c.Register("t", testProfile())
	// First request cold-starts somewhere; the second (after completion)
	// must reuse that same container rather than starting a new node.
	c.ScheduleInvocations("t", secs(0, 5, 10, 15))
	e.RunUntil(time.Minute)
	created := 0
	for _, n := range c.Nodes() {
		created += n.ContainersCreated()
	}
	if created != 1 {
		t.Fatalf("containers created = %d, want 1 (warm reuse across rack)", created)
	}
	st := c.Stats()
	if st.ColdStarts != 1 || st.WarmStarts != 3 {
		t.Fatalf("cold/warm = %d/%d, want 1/3", st.ColdStarts, st.WarmStarts)
	}
}

func TestLeastMemoryBalances(t *testing.T) {
	e := simtime.NewEngine()
	c := New(e, Config{Nodes: 2, Scheduler: LeastMemory,
		Node: faas.Config{KeepAliveTimeout: 10 * time.Minute}}, baselineFactory)
	c.Register("t", testProfile())
	// Sequential requests: least-memory ignores affinity and alternates as
	// resident footprints accumulate.
	c.ScheduleInvocations("t", secs(0, 5))
	e.RunUntil(time.Minute)
	if c.Nodes()[0].ContainersCreated() != 1 || c.Nodes()[1].ContainersCreated() != 1 {
		t.Fatalf("containers = %d/%d, want 1/1",
			c.Nodes()[0].ContainersCreated(), c.Nodes()[1].ContainersCreated())
	}
}

func TestSharedPoolAccounting(t *testing.T) {
	e := simtime.NewEngine()
	c := New(e, Config{Nodes: 2, Scheduler: RoundRobin,
		Node: faas.Config{KeepAliveTimeout: 10 * time.Minute}},
		func() policy.Policy {
			return core.New(core.Config{DisableSemiWarm: true})
		})
	c.Register("t", testProfile())
	c.ScheduleInvocations("t", secs(0, 0.01, 3, 3.01))
	e.RunUntil(30 * time.Second)
	// Both nodes' runtime puckets offloaded into the one pool.
	var remote int64
	for _, n := range c.Nodes() {
		remote += n.NodeRemoteBytes()
	}
	if remote == 0 {
		t.Fatal("no offloading happened")
	}
	if got := c.Pool().Used(); got != remote {
		t.Fatalf("pool used %d != rack remote %d", got, remote)
	}
}

func TestNodeMemoryLimitEvicts(t *testing.T) {
	e := simtime.NewEngine()
	// One node whose DRAM fits roughly two containers' base footprints.
	c := New(e, Config{Nodes: 1,
		Node: faas.Config{KeepAliveTimeout: 10 * time.Minute, NodeMemoryLimit: 8 * workload.MB}},
		baselineFactory)
	c.Register("t", testProfile())
	// Four overlapping requests force four containers (~15 MB total).
	c.ScheduleInvocations("t", secs(0, 0.01, 0.02, 0.03))
	e.RunUntil(30 * time.Second)
	n := c.Nodes()[0]
	if n.EvictedContainers() == 0 {
		t.Fatal("no evictions despite exceeding the node memory limit")
	}
	if got := n.NodeLocalBytes(); got > 8*workload.MB {
		t.Fatalf("node local %d exceeds limit after quiescence", got)
	}
}

func TestEvictionPrefersLongestIdle(t *testing.T) {
	e := simtime.NewEngine()
	c := New(e, Config{Nodes: 1,
		Node: faas.Config{KeepAliveTimeout: 10 * time.Minute, NodeMemoryLimit: 11 * workload.MB}},
		baselineFactory)
	c.Register("t", testProfile())
	// Three containers built over time (overlap), then a fourth demand
	// triggers eviction of the longest-idle one.
	c.ScheduleInvocations("t", secs(0, 0.01, 0.02, 20, 20.01, 20.02, 20.03))
	e.RunUntil(time.Minute)
	n := c.Nodes()[0]
	if n.EvictedContainers() == 0 {
		t.Fatal("expected evictions")
	}
	// The rack keeps serving: all requests completed.
	if got := c.Stats().Requests; got != 7 {
		t.Fatalf("requests = %d, want 7", got)
	}
}

func TestFaaSMemSustainsMoreContainersUnderLimit(t *testing.T) {
	// The density claim, measured: with the same DRAM limit, FaaSMem evicts
	// fewer containers and cold-starts less than the baseline.
	run := func(mk func() policy.Policy) Stats {
		e := simtime.NewEngine()
		c := New(e, Config{Nodes: 1,
			Node: faas.Config{KeepAliveTimeout: 5 * time.Minute, NodeMemoryLimit: 10 * workload.MB, Seed: 4}},
			mk)
		c.Register("t", testProfile())
		var inv []simtime.Time
		// Five concurrent lanes of periodic requests: five containers needed,
		// ~15 MB resident for the baseline vs ~5 MB for FaaSMem.
		for lane := 0; lane < 5; lane++ {
			for i := 0; i < 12; i++ {
				inv = append(inv, simtime.Time(lane*10)*simtime.Time(time.Millisecond)+simtime.Time(i*5)*simtime.Time(time.Second))
			}
		}
		c.ScheduleInvocations("t", inv)
		e.RunUntil(3 * time.Minute)
		return c.Stats()
	}
	base := run(baselineFactory)
	fm := run(func() policy.Policy {
		return core.New(core.Config{FallbackSemiWarmDelay: 30 * time.Second})
	})
	if fm.Evicted >= base.Evicted && base.Evicted > 0 {
		t.Errorf("FaaSMem evicted %d, baseline %d — offloading should relieve the limit",
			fm.Evicted, base.Evicted)
	}
	if fm.ColdStarts > base.ColdStarts {
		t.Errorf("FaaSMem cold starts %d exceed baseline %d", fm.ColdStarts, base.ColdStarts)
	}
}

func TestReplayTraceOnCluster(t *testing.T) {
	e := simtime.NewEngine()
	c := New(e, Config{Nodes: 2, Node: faas.Config{KeepAliveTimeout: time.Minute}}, baselineFactory)
	tr := &trace.Trace{Duration: time.Minute, Functions: []*trace.Function{
		{ID: "a", Invocations: secs(0, 30)},
		{ID: "b", Invocations: secs(1)},
	}}
	c.ReplayTrace(tr, func(i int, f *trace.Function) *workload.Profile {
		p := testProfile()
		p.Name = f.ID
		return p
	})
	e.Run()
	if got := c.Stats().Requests; got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
}

func TestSchedulerStrings(t *testing.T) {
	if WarmFirst.String() != "warm-first" || LeastMemory.String() != "least-memory" || RoundRobin.String() != "round-robin" {
		t.Error("scheduler strings wrong")
	}
}

func TestGreedyDualEvictionPrefersCheapLargeContainers(t *testing.T) {
	// Three functions: "precious" is slow to cold-start and small (and the
	// LRU victim, having idled longest); "cheap" is fast to rebuild and big;
	// "filler" pushes the node over its limit. Greedy-dual must sacrifice
	// cheap while LRU would sacrifice precious.
	cheap := testProfile()
	cheap.Name = "cheap"
	cheap.RuntimeBytes = 6 * workload.MB
	cheap.LaunchTime = 50 * time.Millisecond
	cheap.InitTime = 50 * time.Millisecond
	precious := testProfile()
	precious.Name = "precious"
	precious.RuntimeBytes = 1 * workload.MB
	precious.LaunchTime = 2 * time.Second
	precious.InitTime = 2 * time.Second
	filler := testProfile()
	filler.Name = "filler"

	run := func(ev faas.EvictionPolicy) *faas.Platform {
		e := simtime.NewEngine()
		c := New(e, Config{Nodes: 1, Node: faas.Config{
			KeepAliveTimeout: 10 * time.Minute,
			NodeMemoryLimit:  10 * workload.MB,
			Eviction:         ev,
		}}, baselineFactory)
		c.Register("cheap", cheap)
		c.Register("precious", precious)
		c.Register("filler", filler)
		c.ScheduleInvocations("precious", secs(0)) // idles first: LRU victim
		c.ScheduleInvocations("cheap", secs(10))
		c.ScheduleInvocations("filler", secs(20)) // pushes over the limit
		e.RunUntil(time.Minute)
		n := c.Nodes()[0]
		if n.EvictedContainers() == 0 {
			t.Fatal("no eviction happened")
		}
		return n
	}

	lru := run(faas.EvictLongestIdle)
	if lru.Function("precious").IdleContainer() != nil {
		t.Fatal("LRU should have evicted the longest-idle (precious) container")
	}
	gd := run(faas.EvictGreedyDual)
	if gd.Function("precious").IdleContainer() == nil {
		t.Fatal("greedy-dual evicted the precious container")
	}
	if gd.Function("cheap").IdleContainer() != nil {
		t.Fatal("greedy-dual kept the cheap/large container")
	}
}

func TestReschedulingAvoidsStrappedNode(t *testing.T) {
	// Node 0 hosts an idle semi-warm-like container whose recall cannot fit
	// under its DRAM limit; the next request must cold-start on node 1
	// instead of thrashing node 0.
	e := simtime.NewEngine()
	c := New(e, Config{Nodes: 2, Scheduler: WarmFirst,
		Node: faas.Config{
			KeepAliveTimeout: 10 * time.Minute,
			NodeMemoryLimit:  7 * workload.MB,
		}},
		func() policy.Policy {
			// Offload everything at idle, so reuse would recall ~3 MB.
			return core.New(core.Config{
				DisablePucket:         true,
				FallbackSemiWarmDelay: time.Second,
				PercentPerSecond:      1,
				BytesPerSecond:        64 * workload.MB,
			})
		})
	prof := testProfile()
	prof.Name = "t"
	c.Register("t", prof)
	// Filler keeps node 0 near its limit after the first container drains.
	filler := testProfile()
	filler.Name = "filler"
	filler.RuntimeBytes = 4 * workload.MB
	c.Register("filler", filler)

	c.ScheduleInvocations("t", secs(0))       // container on least-mem node (node 0)
	c.ScheduleInvocations("filler", secs(5))  // lands on node 1 (least memory)... then
	c.ScheduleInvocations("filler", secs(15)) // reuse keeps filler warm
	// By 30 s the "t" container is fully offloaded (semi-warm drained).
	c.ScheduleInvocations("t", secs(30))
	e.RunUntil(40 * time.Second)
	// The reuse either found headroom (no reschedule needed) or was
	// redirected; in both cases the node limits hold.
	for i, n := range c.Nodes() {
		if n.NodeLocalBytes() > 7*workload.MB {
			t.Fatalf("node %d exceeds its limit", i)
		}
	}
}

func TestReschedulingCountsRedirects(t *testing.T) {
	// Drive the §9 low-headroom case explicitly: the function's only warm
	// container sits on a node whose DRAM cannot absorb the recall while a
	// long-running filler executes there, and an empty node is available.
	// The warm reuse must be redirected and counted in Stats.Rescheduled.
	e := simtime.NewEngine()
	// The 8 MB limit admits a filler's ~7 MB execution without evicting the
	// drained container, but cannot also absorb its ~3 MB recall.
	c := New(e, Config{Nodes: 3, Scheduler: WarmFirst,
		Node: faas.Config{
			KeepAliveTimeout: 10 * time.Minute,
			NodeMemoryLimit:  8 * workload.MB,
		}},
		func() policy.Policy {
			return core.New(core.Config{
				DisablePucket:         true,
				FallbackSemiWarmDelay: time.Second,
				PercentPerSecond:      1,
				BytesPerSecond:        64 * workload.MB,
			})
		})
	c.Register("t", testProfile())
	// Fillers run for a minute, pinning their exec pages locally.
	filler := testProfile()
	filler.Name = "filler"
	filler.ExecBytes = 4 * workload.MB
	filler.ExecTime = time.Minute
	c.Register("fa", filler)
	c.Register("fb", filler)

	c.ScheduleInvocations("fa", secs(0)) // node 0 (all-equal tie)
	c.ScheduleInvocations("t", secs(0.2))
	// By 5 s the t container has drained to remote, so node 1 is the
	// least-memory target again and fb lands beside it.
	c.ScheduleInvocations("fb", secs(5))
	// Reuse of t: node 1 cannot host local + ~3 MB of recall under the 8 MB
	// limit, but node 2 is empty — the request must be redirected there.
	c.ScheduleInvocations("t", secs(10))
	e.RunUntil(15 * time.Second)

	st := c.Stats()
	if st.Rescheduled == 0 {
		t.Fatalf("no reschedule counted; node locals = %d/%d/%d",
			c.Nodes()[0].NodeLocalBytes(), c.Nodes()[1].NodeLocalBytes(), c.Nodes()[2].NodeLocalBytes())
	}
	if c.Nodes()[2].ContainersCreated() == 0 {
		t.Fatal("redirected request did not cold-start on the empty node")
	}
	// Both t requests completed; the fillers are still mid-execution.
	if st.Requests != 2 {
		t.Fatalf("requests = %d, want 2", st.Requests)
	}
}

func TestRackSharesMemNode(t *testing.T) {
	// One pool-side memory node behind the rack: the same function's
	// containers on different compute nodes dedup their init/runtime pages
	// into one resident copy.
	e := simtime.NewEngine()
	c := New(e, Config{Nodes: 2, Scheduler: RoundRobin,
		Node: faas.Config{KeepAliveTimeout: 10 * time.Minute},
		Pool: rmem.Config{Node: &memnode.Config{DRAMBytes: 64 * workload.MB}}},
		func() policy.Policy {
			return core.New(core.Config{DisableSemiWarm: true})
		})
	c.Register("t", testProfile())
	c.ScheduleInvocations("t", secs(0, 0.01, 3, 3.01))
	e.RunUntil(30 * time.Second)

	st := c.Stats()
	if st.MemNode == nil {
		t.Fatal("rack stats missing memnode snapshot")
	}
	if st.MemNode.LogicalBytes == 0 {
		t.Fatal("no offloading reached the memory node")
	}
	if st.MemNode.DedupHitPages == 0 {
		t.Fatalf("no dedup across the rack's containers: %+v", *st.MemNode)
	}
	if st.MemNode.ResidentBytes >= st.MemNode.LogicalBytes {
		t.Fatalf("resident %d not below logical %d despite dedup",
			st.MemNode.ResidentBytes, st.MemNode.LogicalBytes)
	}
	// The pool's byte ledger still tracks the compute side's remote bytes.
	var remote int64
	for _, n := range c.Nodes() {
		remote += n.NodeRemoteBytes()
	}
	if got := c.Pool().Used(); got != remote {
		t.Fatalf("pool used %d != rack remote %d", got, remote)
	}
	if err := c.Pool().Node().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
