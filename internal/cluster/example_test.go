package cluster_test

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// Example builds a two-node rack sharing one memory pool and routes a few
// requests with the warm-first scheduler.
func Example() {
	engine := simtime.NewEngine()
	rack := cluster.New(engine, cluster.Config{
		Nodes:     2,
		Scheduler: cluster.WarmFirst,
		Node:      faas.Config{KeepAliveTimeout: 5 * time.Minute, Seed: 1},
	}, func() policy.Policy { return core.New(core.Config{}) })

	rack.Register("web", workload.Web())
	rack.ScheduleInvocations("web", []simtime.Time{
		0, 30 * time.Second, 60 * time.Second,
	})
	engine.RunUntil(3 * time.Minute) // before keep-alive recycles the container

	st := rack.Stats()
	fmt.Printf("requests %d: cold %d, warm %d\n", st.Requests, st.ColdStarts, st.WarmStarts)
	fmt.Printf("pool holds offloaded pages: %v\n", st.PoolUsedMB > 0)
	// Output:
	// requests 3: cold 1, warm 2
	// pool holds offloaded pages: true
}
