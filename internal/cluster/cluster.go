// Package cluster composes multiple compute nodes around one rack-level
// memory pool — the deployment §9 of the paper sketches: memory pools are
// configured per rack, ~10 compute nodes share one memory node, and pooling
// harvests density from load-imbalanced nodes.
//
// Each node is a faas.Platform with its own policy instance and (optionally)
// a local DRAM limit; all nodes offload into a single shared rmem.Pool, so
// link bandwidth and pool capacity are genuinely contended across the rack.
package cluster

import (
	"fmt"

	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// SchedulerKind selects how requests are routed to nodes.
type SchedulerKind int

const (
	// WarmFirst prefers a node holding an idle container for the function,
	// falling back to the node with the most free local memory. This is the
	// affinity-style routing serverless schedulers use to maximize warm
	// starts.
	WarmFirst SchedulerKind = iota
	// LeastMemory always routes to the node with the lowest local memory
	// usage, ignoring container affinity.
	LeastMemory
	// RoundRobin rotates through nodes.
	RoundRobin
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	switch k {
	case WarmFirst:
		return "warm-first"
	case LeastMemory:
		return "least-memory"
	case RoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("scheduler(%d)", int(k))
	}
}

// Config describes a rack.
type Config struct {
	// Nodes is the number of compute nodes. Default 10 (§9's rack).
	Nodes int
	// Node is the per-node platform configuration; its Pool field is ignored
	// in favor of the shared rack pool.
	Node faas.Config
	// Pool configures the shared rack-level memory pool.
	Pool rmem.Config
	// Scheduler selects request routing. Default WarmFirst.
	Scheduler SchedulerKind
}

// Cluster is a rack of compute nodes sharing one memory pool.
type Cluster struct {
	engine *simtime.Engine
	cfg    Config
	pool   *rmem.Pool
	nodes  []*faas.Platform
	rr     int
	// rescheduled counts warm reuses redirected away from nodes without
	// enough local headroom to recall the container's remote pages — the
	// load-imbalance rescheduling the paper's §9 leaves as future work.
	rescheduled int
	// submitted counts every request routed through Invoke, so resilience
	// experiments can assert none are lost across fault recovery.
	submitted int
	// rescheduledFault counts requests diverted away from semi-warm
	// containers whose remote pages were unreachable (memnode down or link
	// flapping); those containers become eligible again on recovery.
	rescheduledFault int
}

// New builds a rack. newPolicy is invoked once per node so policies keep
// per-node state (as the per-node FaaSMem daemon would).
func New(engine *simtime.Engine, cfg Config, newPolicy func() policy.Policy) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 10
	}
	c := &Cluster{
		engine: engine,
		cfg:    cfg,
		pool:   rmem.NewPool(cfg.Pool),
	}
	for i := 0; i < cfg.Nodes; i++ {
		nodeCfg := cfg.Node
		nodeCfg.Seed = cfg.Node.Seed + int64(i)*1_000_003
		if nodeCfg.NodeID == "" {
			// Container IDs repeat across platforms; distinct node IDs keep
			// described-page owners unique on the shared memory node.
			nodeCfg.NodeID = fmt.Sprintf("n%d", i)
		} else {
			nodeCfg.NodeID = fmt.Sprintf("%s%d", nodeCfg.NodeID, i)
		}
		c.nodes = append(c.nodes, faas.NewWithPool(engine, nodeCfg, newPolicy(), c.pool))
	}
	return c
}

// Engine returns the simulation engine.
func (c *Cluster) Engine() *simtime.Engine { return c.engine }

// Pool returns the shared rack pool.
func (c *Cluster) Pool() *rmem.Pool { return c.pool }

// Nodes returns the compute nodes.
func (c *Cluster) Nodes() []*faas.Platform { return c.nodes }

// Register registers the function on every node so any node can host its
// containers.
func (c *Cluster) Register(id string, prof *workload.Profile) {
	for _, n := range c.nodes {
		n.Register(id, prof)
	}
}

// Invoke routes one request for the function at the current virtual time.
func (c *Cluster) Invoke(fnID string) {
	c.submitted++
	n, faultResched := c.pickNode(fnID)
	if faultResched {
		c.rescheduledFault++
		if c.cfg.Node.Timeline.Enabled() {
			c.cfg.Node.Timeline.AddCounter(c.engine.Now(), timeseries.SeriesRescheduledFault,
				timeseries.Dims{Node: "rack", Tenant: fnID}, 1)
		}
		n.InvokeRescheduled(fnID)
		return
	}
	n.Invoke(fnID)
}

// InvokeStage routes one workflow-stage request carrying state-passing
// hooks, with the same fault-aware node choice as Invoke.
func (c *Cluster) InvokeStage(fnID string, hooks *faas.StageHooks) {
	c.submitted++
	n, faultResched := c.pickNode(fnID)
	if faultResched {
		c.rescheduledFault++
		if c.cfg.Node.Timeline.Enabled() {
			c.cfg.Node.Timeline.AddCounter(c.engine.Now(), timeseries.SeriesRescheduledFault,
				timeseries.Dims{Node: "rack", Tenant: fnID}, 1)
		}
		n.InvokeStageRescheduled(fnID, hooks)
		return
	}
	n.InvokeStage(fnID, hooks)
}

// ScheduleInvocations schedules a timeline; routing happens at fire time so
// decisions see current node state.
func (c *Cluster) ScheduleInvocations(fnID string, times []simtime.Time) {
	for _, at := range times {
		c.engine.At(at, func(*simtime.Engine) { c.Invoke(fnID) })
	}
}

// ReplayTrace registers every function of tr under the profile mapping and
// schedules all invocations.
func (c *Cluster) ReplayTrace(tr *trace.Trace, pick func(i int, f *trace.Function) *workload.Profile) {
	for i, tf := range tr.Functions {
		prof := pick(i, tf)
		if prof == nil {
			continue
		}
		c.Register(tf.ID, prof)
		c.ScheduleInvocations(tf.ID, tf.Invocations)
	}
}

// pickNode applies the configured scheduling policy. faultResched reports
// that the choice was diverted away from an idle container whose remote
// pages are behind an unhealthy pool link or crashed memory node — those
// candidates would stall in fetch retries, so the request is steered to a
// fully-local container or a fresh launch until the pool recovers.
func (c *Cluster) pickNode(fnID string) (n *faas.Platform, faultResched bool) {
	switch c.cfg.Scheduler {
	case RoundRobin:
		n := c.nodes[c.rr%len(c.nodes)]
		c.rr++
		return n, false
	case LeastMemory:
		return c.leastMemoryNode(), false
	default: // WarmFirst
		var warm, strapped *faas.Platform
		var warmIdle, strappedIdle simtime.Time
		var footprint int64
		faultAvoided := false
		degraded := c.pool.Degraded(c.engine.Now())
		for _, n := range c.nodes {
			f := n.Function(fnID)
			if f == nil {
				continue
			}
			footprint = f.Profile().TotalBytes()
			ic := f.IdleContainer()
			if ic == nil {
				continue
			}
			// While the pool is unreachable, a semi-warm candidate's remote
			// pages cannot be recalled; skip it rather than stall the
			// request in fetch retries. It rejoins the pool of candidates
			// as soon as the fault window closes.
			if degraded && ic.Space().RemoteBytes() > 0 {
				faultAvoided = true
				continue
			}
			// §9 future work: a semi-warm container needs its remote pages
			// back; a node whose DRAM cannot absorb the recall is a strapped
			// candidate, reused only if rescheduling has no better target.
			if limit := n.Config().NodeMemoryLimit; limit > 0 &&
				n.NodeLocalBytes()+ic.Space().RemoteBytes() > limit {
				if strapped == nil || ic.IdleSince() > strappedIdle {
					strapped = n
					strappedIdle = ic.IdleSince()
				}
				continue
			}
			// Prefer the most recently idled container across nodes,
			// mirroring per-node LIFO reuse.
			if warm == nil || ic.IdleSince() > warmIdle {
				warm = n
				warmIdle = ic.IdleSince()
			}
		}
		if warm != nil {
			return warm, faultAvoided
		}
		if strapped != nil {
			// Reschedule only when another node can host a fresh container
			// without blowing its own limit; otherwise the strapped reuse is
			// still the cheapest option (eviction absorbs the overflow).
			alt := c.leastMemoryNode()
			if alt != strapped {
				if limit := alt.Config().NodeMemoryLimit; limit <= 0 ||
					alt.NodeLocalBytes()+footprint <= limit {
					c.rescheduled++
					return alt, faultAvoided
				}
			}
			return strapped, faultAvoided
		}
		return c.leastMemoryNode(), faultAvoided
	}
}

func (c *Cluster) leastMemoryNode() *faas.Platform {
	best := c.nodes[0]
	for _, n := range c.nodes[1:] {
		if n.NodeLocalBytes() < best.NodeLocalBytes() {
			best = n
		}
	}
	return best
}

// Stats aggregates rack-wide observations.
type Stats struct {
	Requests, ColdStarts, WarmStarts, SemiWarmStarts int
	Evicted                                          int
	// TotalLocalAvgMB sums the nodes' time-weighted average local memory.
	TotalLocalAvgMB float64
	// PeakNodeLocalMB is the highest per-node peak.
	PeakNodeLocalMB float64
	// PoolPeakUsedMB would require sampling; PoolUsedMB is current.
	PoolUsedMB float64
	// OffloadBWMBps is the rack link's lifetime-average offload bandwidth.
	OffloadBWMBps float64
	// LiveContainers is the current rack-wide container count.
	LiveContainers int
	// Rescheduled counts reuses redirected off memory-strapped nodes.
	Rescheduled int
	// Submitted counts requests routed through Invoke; after a full drain
	// every one is accounted for in the nodes' completion classes.
	Submitted int
	// RescheduledFault counts requests diverted away from semi-warm
	// containers stranded behind an unhealthy pool.
	RescheduledFault int
	// Recovery aggregates the nodes' fault-recovery counters (retries,
	// timeouts, fallbacks, re-inits, completion classes).
	Recovery faas.RecoveryStats
	// MemNode snapshots the shared pool-side memory node (dedup, tiers,
	// quotas) when one is attached; nil otherwise.
	MemNode *memnode.Stats
}

// Stats collects rack-wide statistics as of now.
func (c *Cluster) Stats() Stats {
	var s Stats
	now := c.engine.Now()
	for _, n := range c.nodes {
		agg := n.Aggregate()
		s.Requests += agg.Requests
		s.ColdStarts += agg.ColdStarts
		s.WarmStarts += agg.WarmStarts
		s.SemiWarmStarts += agg.SemiWarmStarts
		s.Evicted += n.EvictedContainers()
		s.TotalLocalAvgMB += n.NodeLocalAvg() / 1e6
		if peak := float64(n.NodeLocalPeak()) / 1e6; peak > s.PeakNodeLocalMB {
			s.PeakNodeLocalMB = peak
		}
		s.LiveContainers += n.LiveContainers()
		s.Recovery.Add(n.Recovery())
	}
	s.Rescheduled = c.rescheduled
	s.Submitted = c.submitted
	s.RescheduledFault = c.rescheduledFault
	s.PoolUsedMB = float64(c.pool.Used()) / 1e6
	s.OffloadBWMBps = c.pool.Meter(rmem.Offload).Average(now) / 1e6
	if mn := c.pool.Node(); mn != nil {
		st := mn.Stats()
		s.MemNode = &st
	}
	return s
}
