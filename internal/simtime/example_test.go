package simtime_test

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Example shows the engine's deterministic event ordering: events fire by
// time, ties by insertion order, and handlers can schedule follow-ups.
func Example() {
	e := simtime.NewEngine()
	e.At(2*time.Second, func(e *simtime.Engine) {
		fmt.Println("second event at", e.Now())
	})
	e.At(time.Second, func(e *simtime.Engine) {
		fmt.Println("first event at", e.Now())
		e.After(5*time.Second, func(e *simtime.Engine) {
			fmt.Println("follow-up at", e.Now())
		})
	})
	e.Run()
	// Output:
	// first event at 1s
	// second event at 2s
	// follow-up at 6s
}

// ExampleTicker demonstrates periodic callbacks with a stop condition.
func ExampleTicker() {
	e := simtime.NewEngine()
	n := 0
	var tk *simtime.Ticker
	tk = simtime.NewTicker(e, time.Second, func(e *simtime.Engine) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	fmt.Println("fired", n, "times, ended at", e.Now())
	// Output:
	// fired 3 times, ended at 3s
}
