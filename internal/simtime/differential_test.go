package simtime

import (
	"math/rand"
	"testing"
	"time"
)

// The differential harness drives the timer-wheel Engine and the heap
// Reference through the same program of schedule/cancel/reschedule/step
// operations and asserts both fire the exact same (time, id) sequence.

// fireRec is one observed firing.
type fireRec struct {
	at Time
	id int
}

// testEngine adapts Engine and Reference to a common driving surface.
type testEngine interface {
	now() Time
	// schedule returns a cancel thunk and a pending probe for the new event.
	schedule(at Time, fn func()) (cancel func(), pending func() bool)
	step() bool
	run()
	runUntil(Time)
	pendingCount() int
}

type wheelAdapter struct{ e *Engine }

func (a wheelAdapter) now() Time { return a.e.Now() }
func (a wheelAdapter) schedule(at Time, fn func()) (func(), func() bool) {
	h := a.e.At(at, func(*Engine) { fn() })
	return func() { a.e.Cancel(h) }, h.Pending
}
func (a wheelAdapter) step() bool        { return a.e.Step() }
func (a wheelAdapter) run()              { a.e.Run() }
func (a wheelAdapter) runUntil(d Time)   { a.e.RunUntil(d) }
func (a wheelAdapter) pendingCount() int { return a.e.Pending() }

type refAdapter struct{ e *Reference }

func (a refAdapter) now() Time { return a.e.Now() }
func (a refAdapter) schedule(at Time, fn func()) (func(), func() bool) {
	ev := a.e.At(at, func(*Reference) { fn() })
	return func() { a.e.Cancel(ev) }, ev.Pending
}
func (a refAdapter) step() bool        { return a.e.Step() }
func (a refAdapter) run()              { a.e.Run() }
func (a refAdapter) runUntil(d Time)   { a.e.RunUntil(d) }
func (a refAdapter) pendingCount() int { return a.e.Pending() }

// decodeDelay turns three program bytes into a delay spanning every wheel
// level: sub-millisecond through multi-hour spill territory.
func decodeDelay(a, b, c byte) time.Duration {
	base := time.Duration(a)<<8 | time.Duration(b)
	shl := uint(c) % 36 // up to base<<35 ns ≈ 2250 h at base 65535... clamped below
	d := base << shl
	const maxDelay = 1000 * time.Hour
	if d < 0 || d > maxDelay {
		d = maxDelay
	}
	return d
}

// interpret runs one byte program against an engine, returning the firing
// log. The interpretation is fully deterministic: ids are assigned in
// program order, and follow-up events scheduled from inside callbacks take
// ids from the same counter — so any ordering divergence between two
// engines shows up directly in the logs.
func interpret(data []byte, eng testEngine) []fireRec {
	var log []fireRec
	nextID := 0
	type handle struct {
		cancel  func()
		pending func() bool
	}
	var handles []handle

	var schedule func(at Time, id, chain int)
	schedule = func(at Time, id, chain int) {
		c, p := eng.schedule(at, func() {
			log = append(log, fireRec{at: at, id: id})
			if chain > 0 {
				// Follow-up from inside the callback, including same-time
				// follow-ups (delay 0) that must honor seq order.
				d := time.Duration(id%3) * 500 * time.Microsecond
				fid := nextID
				nextID++
				schedule(eng.now()+d, fid, chain-1)
			}
		})
		handles = append(handles, handle{cancel: c, pending: p})
	}

	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	steps := 0
	for i < len(data) && steps < 4096 {
		steps++
		op := next() % 8
		switch op {
		case 0, 1, 2: // schedule (weighted: most common op)
			d := decodeDelay(next(), next(), next())
			id := nextID
			nextID++
			schedule(eng.now()+d, id, 0)
		case 3: // schedule a callback chain
			d := decodeDelay(next(), next(), next())
			chain := int(next() % 4)
			id := nextID
			nextID++
			schedule(eng.now()+d, id, chain)
		case 4: // cancel an arbitrary handle (possibly stale/fired)
			if len(handles) > 0 {
				handles[int(next())%len(handles)].cancel()
			}
		case 5: // reschedule: cancel then schedule at a fresh time
			if len(handles) > 0 {
				handles[int(next())%len(handles)].cancel()
			}
			d := decodeDelay(next(), next(), next())
			id := nextID
			nextID++
			schedule(eng.now()+d, id, 0)
		case 6: // fire one event
			eng.step()
		case 7: // run up to a deadline
			eng.runUntil(eng.now() + decodeDelay(next(), next(), next()))
		}
	}
	eng.run()
	return log
}

// runBoth interprets the program on both engines and fails the test on any
// divergence in the firing sequence.
func runBoth(t *testing.T, data []byte) {
	t.Helper()
	got := interpret(data, wheelAdapter{NewEngine()})
	want := interpret(data, refAdapter{NewReference()})
	if len(got) != len(want) {
		t.Fatalf("wheel fired %d events, reference fired %d\nwheel: %v\nref:   %v", len(got), len(want), tail(got), tail(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d diverges: wheel (at=%v id=%d) vs reference (at=%v id=%d)",
				i, got[i].at, got[i].id, want[i].at, want[i].id)
		}
	}
}

func tail(r []fireRec) []fireRec {
	if len(r) > 12 {
		return r[len(r)-12:]
	}
	return r
}

func TestEngineMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 300; trial++ {
		n := 16 + rng.Intn(512)
		data := make([]byte, n)
		rng.Read(data)
		runBoth(t, data)
	}
}

// TestEngineMatchesReferenceBoundaries drives schedules that land exactly on
// wheel bucket and window boundaries, where cascade and window-handoff bugs
// live.
func TestEngineMatchesReferenceBoundaries(t *testing.T) {
	boundaries := []time.Duration{
		0, 1,
		1 << shift0, 1<<shift0 - 1, 1<<shift0 + 1,
		1 << shift1, 1<<shift1 - 1, 1<<shift1 + 1,
		1 << shift2, 1<<shift2 - 1, 1<<shift2 + 1,
		1 << shift3, 1<<shift3 - 1, 1<<shift3 + 1,
		255 << shift0, 256 << shift0, 255 << shift1, 255 << shift2,
		3 << shift3, 3<<shift3 + 5<<shift1,
	}
	we, re := NewEngine(), NewReference()
	var wlog, rlog []fireRec
	for i, d := range boundaries {
		id := i
		at := d
		we.At(at, func(*Engine) { wlog = append(wlog, fireRec{at, id}) })
		re.At(at, func(*Reference) { rlog = append(rlog, fireRec{at, id}) })
	}
	// Duplicate every boundary to exercise (time, seq) ties across levels.
	for i, d := range boundaries {
		id := 1000 + i
		at := d
		we.At(at, func(*Engine) { wlog = append(wlog, fireRec{at, id}) })
		re.At(at, func(*Reference) { rlog = append(rlog, fireRec{at, id}) })
	}
	we.Run()
	re.Run()
	if len(wlog) != len(rlog) {
		t.Fatalf("wheel fired %d, reference %d", len(wlog), len(rlog))
	}
	for i := range rlog {
		if wlog[i] != rlog[i] {
			t.Fatalf("firing %d diverges: wheel %v vs reference %v", i, wlog[i], rlog[i])
		}
	}
}

// TestEngineCancelEdgeCases covers cancellation in every internal state:
// bucket-linked, spill-heap, drained-into-ready, and stale handles.
func TestEngineCancelEdgeCases(t *testing.T) {
	t.Run("cancel in ready run", func(t *testing.T) {
		e := NewEngine()
		var fired []int
		var h2 Handle
		// Both land in the same L0 bucket; firing the first drains the
		// second into the ready run, then cancels it.
		e.At(10*time.Microsecond, func(e *Engine) {
			fired = append(fired, 1)
			e.Cancel(h2)
		})
		h2 = e.At(20*time.Microsecond, func(*Engine) { fired = append(fired, 2) })
		e.Run()
		if len(fired) != 1 || fired[0] != 1 {
			t.Fatalf("fired = %v, want [1]", fired)
		}
		if e.Pending() != 0 {
			t.Fatalf("Pending = %d, want 0", e.Pending())
		}
	})
	t.Run("cancel in spill heap", func(t *testing.T) {
		e := NewEngine()
		fired := 0
		h := e.At(100*time.Hour, func(*Engine) { fired++ })
		if !h.Pending() {
			t.Fatal("spill event should be pending")
		}
		e.Cancel(h)
		if h.Pending() {
			t.Fatal("cancelled spill event still pending")
		}
		e.At(200*time.Hour, func(*Engine) { fired++ })
		e.Run()
		if fired != 1 {
			t.Fatalf("fired = %d, want 1", fired)
		}
	})
	t.Run("stale handle after recycling is inert", func(t *testing.T) {
		e := NewEngine()
		h1 := e.At(time.Millisecond, func(*Engine) {})
		e.Run() // fires and recycles the event storage
		fired := false
		h2 := e.At(2*time.Millisecond, func(*Engine) { fired = true })
		e.Cancel(h1) // stale: must not cancel the recycled h2 event
		e.Run()
		if !fired {
			t.Fatal("stale Cancel affected a recycled event")
		}
		if h2.Pending() {
			t.Fatal("fired event still pending")
		}
	})
	t.Run("zero handle", func(t *testing.T) {
		e := NewEngine()
		var h Handle
		e.Cancel(h)
		if h.Pending() {
			t.Fatal("zero handle pending")
		}
		if h.At() != 0 {
			t.Fatal("zero handle At != 0")
		}
	})
	t.Run("reschedule same time preserves seq order", func(t *testing.T) {
		e := NewEngine()
		var order []int
		at := 5 * time.Millisecond
		e.At(at, func(*Engine) { order = append(order, 0) })
		h := e.At(at, func(*Engine) { order = append(order, 1) })
		e.At(at, func(*Engine) { order = append(order, 2) })
		e.Cancel(h)
		// The rescheduled event takes a fresh seq: it must fire last.
		e.At(at, func(*Engine) { order = append(order, 1) })
		e.Run()
		want := []int{0, 2, 1}
		if len(order) != len(want) {
			t.Fatalf("order = %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order = %v, want %v", order, want)
			}
		}
	})
}

// TestEngineScheduleIntoDrainedBucket fires an event that schedules new work
// earlier than the already-drained bucket end: the new events must merge
// into the sorted ready run, not wait for the next bucket.
func TestEngineScheduleIntoDrainedBucket(t *testing.T) {
	e := NewEngine()
	var fired []fireRec
	base := 100 * time.Microsecond
	e.At(base, func(e *Engine) {
		fired = append(fired, fireRec{base, 0})
		// Same L0 bucket, after now but before the drained-bucket end.
		e.After(50*time.Microsecond, func(e *Engine) {
			fired = append(fired, fireRec{e.Now(), 1})
		})
		e.After(0, func(e *Engine) {
			fired = append(fired, fireRec{e.Now(), 2})
		})
	})
	e.At(base+200*time.Microsecond, func(e *Engine) {
		fired = append(fired, fireRec{e.Now(), 3})
	})
	e.Run()
	want := []fireRec{
		{base, 0},
		{base, 2},
		{base + 50*time.Microsecond, 1},
		{base + 200*time.Microsecond, 3},
	}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

// TestEngineSteadyStateZeroAlloc asserts the pool recycles events: a warm
// engine schedules and fires without allocating.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func(*Engine) {}
	// Warm the pool and the ready-run backing array.
	for i := 0; i < 256; i++ {
		e.After(time.Duration(i)*time.Millisecond, fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.After(time.Millisecond, fn)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f allocs/op, want 0", avg)
	}
}
