package simtime

import "testing"

// FuzzEngineVsReference feeds random schedule/cancel/reschedule/step/runUntil
// programs to the timer-wheel Engine and the heap Reference and asserts both
// produce the identical firing sequence. Seeds cover every wheel level, the
// spill heap, window handoffs, ties, and in-callback scheduling.
func FuzzEngineVsReference(f *testing.F) {
	f.Add([]byte{})
	// Dense near-future schedules with ties (op 0-2 with tiny delays).
	f.Add([]byte{0, 0, 1, 0, 1, 0, 1, 0, 2, 0, 1, 0, 6, 6, 0, 0, 0, 0, 0, 0, 0, 0})
	// Far-future spill events (large shift bytes) plus cancels.
	f.Add([]byte{0, 255, 255, 35, 0, 255, 255, 34, 4, 0, 0, 128, 128, 20, 6, 6, 6})
	// Callback chains and reschedules around RunUntil deadlines.
	f.Add([]byte{3, 0, 200, 10, 3, 7, 1, 0, 12, 5, 0, 0, 50, 8, 7, 0, 255, 16, 4, 1})
	// Mixed levels: L0/L1/L2 boundaries via shift bytes 8, 16, 28.
	f.Add([]byte{0, 0, 1, 8, 0, 0, 1, 16, 0, 0, 1, 28, 2, 0, 1, 12, 6, 4, 2, 7, 0, 4, 24})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		runBoth(t, data)
	})
}
