package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second} {
		e.At(d, func(e *Engine) { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{time.Second, 3 * time.Second, 5 * time.Second}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTiesBreakByInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (ties must fire in insertion order)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fireTime Time
	e.At(2*time.Second, func(e *Engine) {
		e.After(3*time.Second, func(e *Engine) { fireTime = e.Now() })
	})
	e.Run()
	if fireTime != 5*time.Second {
		t.Fatalf("nested After fired at %v, want 5s", fireTime)
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	e := NewEngine()
	e.At(time.Second, func(e *Engine) {
		ev := e.After(-time.Second, func(*Engine) {})
		if ev.At() != time.Second {
			t.Errorf("negative After scheduled at %v, want now (1s)", ev.At())
		}
	})
	e.Run()
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*time.Second, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(time.Second, func(*Engine) {})
	})
	e.Run()
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event func did not panic")
		}
	}()
	NewEngine().At(0, nil)
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(time.Second, func(*Engine) { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending before cancel")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("event should not be pending after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIsIdempotentAndNilSafe(t *testing.T) {
	e := NewEngine()
	ev := e.At(time.Second, func(*Engine) {})
	e.Cancel(ev)
	e.Cancel(ev) // second cancel must not panic
	e.Cancel(Handle{})
	e.Run()
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.At(time.Second, func(*Engine) {})
	e.Run()
	e.Cancel(ev) // must not panic
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		e.At(d*time.Second, func(e *Engine) { fired = append(fired, e.Now()) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now() = %v after RunUntil(3s)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	// Continuing afterwards runs the rest.
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunUntil(time.Minute)
	if e.Now() != time.Minute {
		t.Fatalf("Now() = %v, want 1m", e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i)*time.Second, func(*Engine) {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var fires []Time
	tk := NewTicker(e, time.Second, func(e *Engine) {
		fires = append(fires, e.Now())
		if len(fires) == 4 {
			// stop from inside the callback
		}
	})
	e.RunUntil(4 * time.Second)
	tk.Stop()
	e.Run()
	want := []Time{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if len(fires) != len(want) {
		t.Fatalf("ticker fired %d times, want %d: %v", len(fires), len(want), fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, time.Second, func(*Engine) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestTickerStopIsIdempotent(t *testing.T) {
	e := NewEngine()
	tk := NewTicker(e, time.Second, func(*Engine) {})
	tk.Stop()
	tk.Stop()
	e.Run()
	if e.Fired() != 0 {
		t.Fatalf("stopped ticker fired %d events", e.Fired())
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero ticker period did not panic")
		}
	}()
	NewTicker(NewEngine(), 0, func(*Engine) {})
}

// TestRandomScheduleIsSorted is a property test: any random batch of events
// fires in nondecreasing time order.
func TestRandomScheduleIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		var fired []Time
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			e.At(Time(rng.Int63n(int64(time.Hour))), func(e *Engine) {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		if len(fired) != n {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(fired), n)
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("trial %d: events fired out of order: %v", trial, fired)
		}
	}
}

// TestDeterminism: two runs with identical schedules observe identical
// interleavings.
func TestDeterminism(t *testing.T) {
	runOnce := func() []int {
		e := NewEngine()
		rng := rand.New(rand.NewSource(7))
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			e.At(Time(rng.Int63n(1000))*time.Millisecond, func(*Engine) { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at index %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	evs := make([]Handle, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i)*time.Second, func(*Engine) { fired = append(fired, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run()
	if len(fired) != 8 {
		t.Fatalf("fired %d events, want 8: %v", len(fired), fired)
	}
	for _, v := range fired {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}
