package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Reference is the original container/heap event engine, kept verbatim as
// the executable specification of the scheduling contract: events fire in
// (time, seq) order, cancellation is exact, RunUntil advances the clock.
// Differential and fuzz tests (FuzzEngineVsReference) assert the timer-wheel
// Engine fires the exact same sequence. It allocates one *RefEvent per
// schedule and is not used on any hot path.
type Reference struct {
	now   Time
	queue refQueue
	seq   uint64
	fired uint64
}

// RefFunc is a callback executed when a Reference event fires.
type RefFunc func(e *Reference)

// RefEvent is a scheduled Reference callback. The zero RefEvent is inert.
type RefEvent struct {
	at     Time
	seq    uint64
	fn     RefFunc
	index  int // heap index, -1 when not queued
	fired  bool
	cancel bool
}

// At reports when the event is (or was) scheduled to fire.
func (ev *RefEvent) At() Time { return ev.at }

// Pending reports whether the event is still queued and will fire.
func (ev *RefEvent) Pending() bool { return ev != nil && ev.index >= 0 && !ev.cancel }

// refQueue implements heap.Interface over reference events.
type refQueue []*RefEvent

func (q refQueue) Len() int { return len(q) }

func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *refQueue) Push(x any) {
	ev := x.(*RefEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// NewReference returns a reference engine positioned at virtual time 0.
func NewReference() *Reference { return &Reference{} }

// Now returns the current virtual time.
func (e *Reference) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Reference) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Reference) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancel {
			n++
		}
	}
	return n
}

// At schedules fn at the absolute virtual time at. Scheduling in the past
// panics, exactly as on Engine.
func (e *Reference) At(at Time, fn RefFunc) *RefEvent {
	if fn == nil {
		panic("simtime: nil event func")
	}
	if at < e.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, e.now))
	}
	ev := &RefEvent{at: at, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn after delay d from the current time, clamping negative
// delays to zero.
func (e *Reference) After(d time.Duration, fn RefFunc) *RefEvent {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the queue if it has not fired. Safe on nil, fired,
// or already-cancelled events.
func (e *Reference) Cancel(ev *RefEvent) {
	if ev == nil || ev.fired || ev.cancel {
		return
	}
	ev.cancel = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Step executes the single earliest pending event, reporting false when the
// queue is empty.
func (e *Reference) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*RefEvent)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.fired++
		ev.fn(e)
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Reference) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with at <= deadline and then advances the clock
// to the deadline.
func (e *Reference) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Reference) peek() *RefEvent {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancel {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}
