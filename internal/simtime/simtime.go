// Package simtime provides the virtual clock and deterministic event queue
// that drive every simulation in this repository.
//
// All experiments run in virtual time: an Engine owns a priority queue of
// events ordered by (time, sequence number). Ties are broken by insertion
// order, so a simulation with a fixed seed is fully deterministic and
// repeatable. Nothing in this package touches the wall clock.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute instant on the virtual timeline, expressed as a
// duration since the simulation epoch (t = 0). It intentionally reuses
// time.Duration so that callers can write 5*time.Second for offsets.
type Time = time.Duration

// Func is a callback executed when an event fires. It receives the engine so
// that handlers can schedule follow-up events.
type Func func(e *Engine)

// Event is a scheduled callback. The zero Event is inert.
type Event struct {
	at     Time
	seq    uint64
	fn     Func
	index  int // heap index, -1 when not queued
	fired  bool
	cancel bool
}

// At reports when the event is (or was) scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Pending reports whether the event is still queued and will fire.
func (ev *Event) Pending() bool { return ev != nil && ev.index >= 0 && !ev.cancel }

// eventQueue implements heap.Interface over events.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use and starts at time 0.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	closed bool
}

// NewEngine returns an engine positioned at virtual time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far, which is useful both
// for tests and for loop-bound assertions in long simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at the absolute virtual time at. Scheduling in the past is
// a programming error and panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn Func) *Event {
	if fn == nil {
		panic("simtime: nil event func")
	}
	if at < e.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn after delay d from the current time. Negative delays
// clamp to zero so that jittered offsets cannot move into the past.
func (e *Engine) After(d time.Duration, fn Func) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the queue if it has not fired. It is safe to cancel
// a nil, fired, or already-cancelled event.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.fired || ev.cancel {
		return
	}
	ev.cancel = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.fired++
		ev.fn(e)
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with at <= deadline and then advances the clock to
// the deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancel {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Ticker repeatedly invokes a callback at a fixed virtual period until
// stopped. It is the building block for periodic policies (TMO steps, DAMON
// sampling, semi-warm gradual offload).
type Ticker struct {
	engine  *Engine
	period  time.Duration
	fn      Func
	ev      *Event
	stopped bool
}

// NewTicker schedules fn every period, first firing one period from now.
// period must be positive.
func NewTicker(e *Engine, period time.Duration, fn Func) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.After(t.period, func(e *Engine) {
		if t.stopped {
			return
		}
		t.fn(e)
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings. Idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.engine.Cancel(t.ev)
}
