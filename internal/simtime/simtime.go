// Package simtime provides the virtual clock and deterministic event queue
// that drive every simulation in this repository.
//
// All experiments run in virtual time: an Engine owns a pending-event set
// ordered by (time, sequence number). Ties are broken by insertion order, so
// a simulation with a fixed seed is fully deterministic and repeatable.
// Nothing in this package touches the wall clock.
//
// The Engine is a hierarchical timer wheel: near-future events live in
// ~1 ms buckets, farther events in coarser levels, and far-future events in
// a sorted spill heap. Events are recycled through a free list, so
// steady-state scheduling allocates nothing. Reference preserves the
// original container/heap engine; differential tests assert both fire the
// exact same sequence. See DESIGN.md "Event engine".
package simtime

import (
	"fmt"
	"math/bits"
	"slices"
	"time"
)

// Time is an absolute instant on the virtual timeline, expressed as a
// duration since the simulation epoch (t = 0). It intentionally reuses
// time.Duration so that callers can write 5*time.Second for offsets.
type Time = time.Duration

// Func is a callback executed when an event fires. It receives the engine so
// that handlers can schedule follow-up events.
type Func func(e *Engine)

// Wheel geometry. Level 0 buckets are 2^shift0 ns wide (~1.05 ms); each
// higher level is 256x coarser. One aligned window per level:
//
//	L0: 256 buckets of ~1.05 ms  -> covers the current ~268 ms L1 bucket
//	L1: 256 buckets of ~268 ms   -> covers the current ~68.7 s L2 bucket
//	L2: 256 buckets of ~68.7 s   -> covers the current ~4.9 h span
//
// Events beyond the L2 window wait in the spill heap and are re-homed when
// the cursor enters their span.
const (
	slotBits   = 8
	wheelSlots = 1 << slotBits
	slotMask   = wheelSlots - 1
	shift0     = 20
	shift1     = shift0 + slotBits
	shift2     = shift1 + slotBits
	shift3     = shift2 + slotBits
	numLevels  = 3

	// eventBlock is how many pooled events are allocated at once when the
	// free list runs dry.
	eventBlock = 64
)

// event states.
const (
	stFree      uint8 = iota // on the free list
	stBucket                 // linked into a wheel bucket
	stReady                  // in the sorted ready run
	stSpill                  // in the far-future spill heap
	stCancelled              // cancelled while in the ready run; reclaimed at drain
)

// event is a pooled scheduled callback. Callers never see *event directly;
// they hold a stamped Handle so that recycling an event invalidates every
// outstanding reference to its previous life.
type event struct {
	at         Time
	seq        uint64
	stamp      uint64
	fn         Func
	next, prev *event // bucket list links; next doubles as the free-list link
	heapIdx    int32  // spill heap index while state == stSpill
	slot       int16  // level*wheelSlots + slot while state == stBucket
	state      uint8
}

// Handle refers to a scheduled event. The zero Handle is inert: Cancel is a
// no-op and Pending reports false. Handles stay safe after the event fires
// or is cancelled — the underlying storage is recycled with a new stamp, so
// a stale Handle can never affect a later event.
type Handle struct {
	ev    *event
	stamp uint64
}

func (h Handle) live() bool { return h.ev != nil && h.ev.stamp == h.stamp }

// Pending reports whether the event is still queued and will fire.
func (h Handle) Pending() bool {
	if !h.live() {
		return false
	}
	switch h.ev.state {
	case stBucket, stReady, stSpill:
		return true
	}
	return false
}

// At reports when the event is scheduled to fire. It returns 0 once the
// event has fired or been cancelled (the storage may already be reused).
func (h Handle) At() Time {
	if h.live() {
		return h.ev.at
	}
	return 0
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use and starts at time 0.
type Engine struct {
	now   Time
	cur   Time // exclusive end of the region drained into the ready run
	seq   uint64
	fired uint64
	live  int // pending (non-cancelled) events

	// ready is the sorted run of imminent events; ready[readyIdx:] is the
	// undrained remainder. Events scheduled before cur merge into it.
	ready    []*event
	readyIdx int

	buckets [numLevels][wheelSlots]*event
	bitmap  [numLevels][wheelSlots / 64]uint64
	spill   []*event

	free *event
}

// NewEngine returns an engine positioned at virtual time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far, which is useful both
// for tests and for loop-bound assertions in long simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return e.live }

// At schedules fn at the absolute virtual time at. Scheduling in the past is
// a programming error and panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn Func) Handle {
	if fn == nil {
		panic("simtime: nil event func")
	}
	if at < e.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.live++
	e.place(ev)
	return Handle{ev: ev, stamp: ev.stamp}
}

// After schedules fn after delay d from the current time. Negative delays
// clamp to zero so that jittered offsets cannot move into the past.
func (e *Engine) After(d time.Duration, fn Func) Handle {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes the event from the queue if it has not fired. It is safe to
// cancel a zero, fired, or already-cancelled Handle.
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.stamp != h.stamp {
		return
	}
	switch ev.state {
	case stBucket:
		e.unlink(ev)
		e.release(ev)
		e.live--
	case stSpill:
		e.spillRemove(int(ev.heapIdx))
		e.release(ev)
		e.live--
	case stReady:
		// Leave it in place in the sorted run; the drain loop reclaims it.
		ev.state = stCancelled
		e.live--
	}
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	ev := e.pop()
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with at <= deadline and then advances the clock to
// the deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.pop()
		if ev == nil {
			break
		}
		if ev.at > deadline {
			// Un-pop: pop always returns from the ready run, so the slot
			// just before readyIdx still belongs to this event.
			e.readyIdx--
			e.ready[e.readyIdx] = ev
			break
		}
		e.fire(ev)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) fire(ev *event) {
	fn, at := ev.fn, ev.at
	e.release(ev)
	e.live--
	e.fired++
	e.now = at
	fn(e)
}

// pop returns the earliest pending event, draining wheel buckets into the
// sorted ready run as the cursor advances. It returns nil when nothing is
// pending.
func (e *Engine) pop() *event {
	for {
		for e.readyIdx < len(e.ready) {
			ev := e.ready[e.readyIdx]
			e.readyIdx++
			if ev.state == stCancelled {
				e.release(ev)
				continue
			}
			return ev
		}
		e.ready = e.ready[:0]
		e.readyIdx = 0
		if e.live == 0 {
			return nil
		}
		if s, ok := e.scanBitmap(0, int(e.cur>>shift0)&slotMask); ok {
			e.drainL0(s)
			continue
		}
		if !e.climb() {
			return nil
		}
	}
}

// place files ev by distance from the cursor: the ready run for the already
// drained region, then wheel levels by aligned window, then the spill heap.
func (e *Engine) place(ev *event) {
	at := ev.at
	switch {
	case at < e.cur:
		e.insertReady(ev)
	case at>>shift1 == e.cur>>shift1:
		e.pushBucket(0, int(at>>shift0)&slotMask, ev)
	case at>>shift2 == e.cur>>shift2:
		e.pushBucket(1, int(at>>shift1)&slotMask, ev)
	case at>>shift3 == e.cur>>shift3:
		e.pushBucket(2, int(at>>shift2)&slotMask, ev)
	default:
		e.pushSpill(ev)
	}
}

// insertReady merges a newly scheduled event into the undrained remainder of
// the ready run. The new event carries the largest seq, so it sorts after
// every equal-time entry already present.
func (e *Engine) insertReady(ev *event) {
	lo, hi := e.readyIdx, len(e.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.ready[mid].at <= ev.at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ev.state = stReady
	e.ready = append(e.ready, nil)
	copy(e.ready[lo+1:], e.ready[lo:])
	e.ready[lo] = ev
}

// drainL0 moves one level-0 bucket into the ready run, sorted by (at, seq),
// and advances the cursor past it.
func (e *Engine) drainL0(slot int) {
	for ev := e.buckets[0][slot]; ev != nil; {
		nx := ev.next
		ev.next, ev.prev = nil, nil
		ev.state = stReady
		e.ready = append(e.ready, ev)
		ev = nx
	}
	e.buckets[0][slot] = nil
	e.bitmap[0][slot>>6] &^= 1 << uint(slot&63)
	if len(e.ready) > 1 {
		slices.SortFunc(e.ready, func(a, b *event) int {
			if a.at != b.at {
				if a.at < b.at {
					return -1
				}
				return 1
			}
			if a.seq < b.seq {
				return -1
			}
			return 1
		})
	}
	base := e.cur &^ (1<<shift1 - 1)
	e.advanceCur(base + Time(slot+1)<<shift0)
}

// climb advances the cursor to the next populated region: a later L1 bucket,
// a later L2 bucket, or the spill heap's next span. advanceCur performs the
// actual cascading at each boundary crossed. It reports false when nothing
// is pending anywhere.
func (e *Engine) climb() bool {
	if s, ok := e.scanBitmap(1, int(e.cur>>shift1)&slotMask); ok {
		e.advanceCur((e.cur &^ (1<<shift2 - 1)) + Time(s)<<shift1)
		return true
	}
	if s, ok := e.scanBitmap(2, int(e.cur>>shift2)&slotMask); ok {
		e.advanceCur((e.cur &^ (1<<shift3 - 1)) + Time(s)<<shift2)
		return true
	}
	if len(e.spill) > 0 {
		e.advanceCur(e.spill[0].at >> shift3 << shift3)
		return true
	}
	return false
}

// advanceCur moves the drain cursor, re-homing coarse events at every
// boundary it crosses: entering a new spill span pulls that span's events
// out of the heap, and entering a new L2/L1 bucket cascades that bucket one
// level down. Crossings always land exactly on the boundary (drainL0 and
// climb advance to bucket starts), so cascaded events can never fall behind
// the cursor. Cascading fills levels top-down: events for the cursor's own
// finer bucket are placed directly into lower levels by place().
func (e *Engine) advanceCur(c Time) {
	old := e.cur
	e.cur = c
	if w := c >> shift3; w != old>>shift3 {
		for len(e.spill) > 0 && e.spill[0].at>>shift3 == w {
			e.place(e.popSpillMin())
		}
	}
	if c>>shift2 != old>>shift2 {
		e.cascade(2, int(c>>shift2)&slotMask)
	}
	if c>>shift1 != old>>shift1 {
		e.cascade(1, int(c>>shift1)&slotMask)
	}
}

// cascade re-homes one coarse bucket's events one level down.
func (e *Engine) cascade(level, slot int) {
	ev := e.buckets[level][slot]
	e.buckets[level][slot] = nil
	e.bitmap[level][slot>>6] &^= 1 << uint(slot&63)
	for ev != nil {
		nx := ev.next
		ev.next, ev.prev = nil, nil
		e.place(ev)
		ev = nx
	}
}

func (e *Engine) pushBucket(level, slot int, ev *event) {
	head := e.buckets[level][slot]
	ev.prev = nil
	ev.next = head
	if head != nil {
		head.prev = ev
	}
	e.buckets[level][slot] = ev
	e.bitmap[level][slot>>6] |= 1 << uint(slot&63)
	ev.slot = int16(level*wheelSlots + slot)
	ev.state = stBucket
}

func (e *Engine) unlink(ev *event) {
	level, slot := int(ev.slot)>>slotBits, int(ev.slot)&slotMask
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		e.buckets[level][slot] = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	if e.buckets[level][slot] == nil {
		e.bitmap[level][slot>>6] &^= 1 << uint(slot&63)
	}
	ev.next, ev.prev = nil, nil
}

// scanBitmap returns the first non-empty slot >= from at the given level.
func (e *Engine) scanBitmap(level, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	w := from >> 6
	word := e.bitmap[level][w] &^ (1<<uint(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
		w++
		if w >= wheelSlots/64 {
			return 0, false
		}
		word = e.bitmap[level][w]
	}
}

// Spill heap: a plain binary min-heap on (at, seq) for events beyond the L2
// window. heapIdx tracks positions so Cancel removes in O(log n).

func spillLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) pushSpill(ev *event) {
	ev.state = stSpill
	ev.heapIdx = int32(len(e.spill))
	e.spill = append(e.spill, ev)
	e.spillUp(len(e.spill) - 1)
}

func (e *Engine) popSpillMin() *event {
	top := e.spill[0]
	last := len(e.spill) - 1
	e.spill[0] = e.spill[last]
	e.spill[0].heapIdx = 0
	e.spill[last] = nil
	e.spill = e.spill[:last]
	if last > 0 {
		e.spillDown(0)
	}
	return top
}

func (e *Engine) spillRemove(i int) {
	last := len(e.spill) - 1
	if i != last {
		e.spill[i] = e.spill[last]
		e.spill[i].heapIdx = int32(i)
	}
	e.spill[last] = nil
	e.spill = e.spill[:last]
	if i < last {
		e.spillDown(i)
		e.spillUp(i)
	}
}

func (e *Engine) spillUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !spillLess(e.spill[i], e.spill[p]) {
			break
		}
		e.spillSwap(i, p)
		i = p
	}
}

func (e *Engine) spillDown(i int) {
	n := len(e.spill)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && spillLess(e.spill[r], e.spill[l]) {
			m = r
		}
		if !spillLess(e.spill[m], e.spill[i]) {
			break
		}
		e.spillSwap(i, m)
		i = m
	}
}

func (e *Engine) spillSwap(i, j int) {
	e.spill[i], e.spill[j] = e.spill[j], e.spill[i]
	e.spill[i].heapIdx = int32(i)
	e.spill[j].heapIdx = int32(j)
}

// Event pool. alloc hands out recycled events; release bumps the stamp so
// outstanding Handles to the previous life go inert, then returns the event
// to the free list. The free list grows in blocks to amortize allocation.

func (e *Engine) alloc() *event {
	ev := e.free
	if ev == nil {
		block := make([]event, eventBlock)
		for i := eventBlock - 1; i >= 1; i-- {
			block[i].next = e.free
			e.free = &block[i]
		}
		ev = &block[0]
	} else {
		e.free = ev.next
		ev.next = nil
	}
	ev.slot = -1
	return ev
}

func (e *Engine) release(ev *event) {
	ev.stamp++
	ev.fn = nil
	ev.prev = nil
	ev.slot = -1
	ev.state = stFree
	ev.next = e.free
	e.free = ev
}

// Ticker repeatedly invokes a callback at a fixed virtual period until
// stopped. It is the building block for periodic policies (TMO steps, DAMON
// sampling, semi-warm gradual offload). The rearming closure is created once,
// so steady-state ticking allocates nothing.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	fn      Func
	tick    Func
	ev      Handle
	stopped bool
}

// NewTicker schedules fn every period, first firing one period from now.
// period must be positive.
func NewTicker(e *Engine, period time.Duration, fn Func) *Ticker {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tick = func(e *Engine) {
		if t.stopped {
			return
		}
		t.fn(e)
		if !t.stopped {
			t.ev = e.After(t.period, t.tick)
		}
	}
	t.ev = e.After(t.period, t.tick)
	return t
}

// Stop cancels future firings. Idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.engine.Cancel(t.ev)
}
