package policy_test

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

func prof() *workload.Profile {
	return &workload.Profile{
		Name:            "t",
		Language:        workload.Python,
		CPUShare:        0.1,
		RuntimeBytes:    2 * workload.MB,
		RuntimeHotBytes: 512 * 1024,
		InitBytes:       1 * workload.MB,
		InitHotBytes:    256 * 1024,
		Pattern:         workload.FixedHot,
		ExecBytes:       128 * 1024,
		ExecTime:        50 * time.Millisecond,
		InitTime:        100 * time.Millisecond,
		LaunchTime:      100 * time.Millisecond,
		QuotaBytes:      8 * workload.MB,
	}
}

func run(pol policy.Policy, invocations []simtime.Time, until time.Duration) (*faas.Platform, *faas.Function) {
	e := simtime.NewEngine()
	p := faas.New(e, faas.Config{KeepAliveTimeout: 10 * time.Minute, Seed: 5}, pol)
	f := p.Register("t", prof())
	p.ScheduleInvocations("t", invocations)
	if until > 0 {
		e.RunUntil(until)
	} else {
		e.Run()
	}
	return p, f
}

func secs(vals ...float64) []simtime.Time {
	out := make([]simtime.Time, len(vals))
	for i, v := range vals {
		out[i] = simtime.Time(v * float64(time.Second))
	}
	return out
}

func TestNoOffloadNeverTouchesPool(t *testing.T) {
	p, f := run(policy.NoOffload{}, secs(0, 1, 2), 0)
	if p.Pool().Used() != 0 || p.Pool().Meter(rmemOffload).Total() != 0 {
		t.Fatal("baseline moved bytes to the pool")
	}
	if f.Stats().FaultPages != 0 {
		t.Fatal("baseline faulted")
	}
	if (policy.NoOffload{}).Name() == "" {
		t.Fatal("baseline must have a name")
	}
}

// rmemOffload mirrors rmem.Offload without importing it in this test.
const rmemOffload = 0

func TestTMOOffloadsSlowly(t *testing.T) {
	// One request, then a long keep-alive: TMO steps every 6 s at 0.05%.
	p, _ := run(policy.NewTMO(policy.TMOConfig{}), secs(0), 2*time.Minute)
	used := p.Pool().Used()
	if used == 0 {
		t.Fatal("TMO offloaded nothing during keep-alive")
	}
	// ~19 steps × 0.05% of ~3.1 MB ≈ 30 KB; must be far below the cold-page
	// total (~2.25 MB). Allow generous slack.
	if used > 1*workload.MB {
		t.Fatalf("TMO offloaded %d bytes; conservative stepping expected ≤ 1 MB", used)
	}
}

func TestTMOOffloadRatioMatchesPaperBound(t *testing.T) {
	// §2.2: "the offloading ratio of a 10-minute period is within 3.0%".
	p, f := run(policy.NewTMO(policy.TMOConfig{}), secs(0), 10*time.Minute)
	total := float64(p.Pool().Used())
	// Approximate container footprint: runtime + init.
	foot := float64(3 * workload.MB)
	ratio := total / foot
	if ratio > 0.05 {
		t.Fatalf("TMO 10-minute offload ratio = %.3f, want ≤ ~0.03", ratio)
	}
	if f.Stats().Requests != 1 {
		t.Fatalf("requests = %d", f.Stats().Requests)
	}
}

func TestTMOPausesUnderStall(t *testing.T) {
	// TMO's feedback loop: while the container's PSI shows memory pressure
	// (remote faults stalling requests), offload steps pause; a variant with
	// an unreachable threshold keeps going. Compare offload traffic during
	// the pressured phase.
	inv := secs(0, 3, 4, 5, 6, 7, 8, 9)
	sensitive := policy.NewTMO(policy.TMOConfig{StepFraction: 0.5, StepInterval: time.Second, StallThreshold: 0.00001})
	fearless := policy.NewTMO(policy.TMOConfig{StepFraction: 0.5, StepInterval: time.Second, StallThreshold: 1e9})
	pS, fS := run(sensitive, inv, 10*time.Second)
	pF, fF := run(fearless, inv, 10*time.Second)
	if fS.Stats().FaultPages == 0 || fF.Stats().FaultPages == 0 {
		t.Skip("no faults generated; nothing to verify")
	}
	offS := pS.Pool().Meter(rmemOffload).Total()
	offF := pF.Pool().Meter(rmemOffload).Total()
	if offS >= offF {
		t.Fatalf("pressure-sensitive TMO offloaded %d >= fearless %d", offS, offF)
	}
}

func TestDAMONOffloadsEverythingDuringKeepAlive(t *testing.T) {
	p, _ := run(policy.NewDAMON(policy.DAMONConfig{}), secs(0), time.Minute)
	// After ~1 min idle with 5 s aggregation and 2-cold threshold, all
	// runtime+init pages look cold and are offloaded.
	want := int64(3 * workload.MB)
	if used := p.Pool().Used(); used < want*9/10 {
		t.Fatalf("DAMON offloaded %d, want ~%d (everything)", used, want)
	}
}

func TestDAMONCausesFaultStorm(t *testing.T) {
	// Fig. 2: requests after an idle gap fault on their whole hot set.
	_, f := run(policy.NewDAMON(policy.DAMONConfig{}), secs(0, 60), 2*time.Minute)
	if f.Stats().FaultPages == 0 {
		t.Fatal("request after idle gap should fault heavily under DAMON")
	}
	// The faulting request's latency exceeds the pure exec time clearly.
	if f.Stats().Latency.Max() <= 0.06 {
		t.Fatalf("max latency %.3f shows no fault penalty", f.Stats().Latency.Max())
	}
}

func TestDAMONVsBaselineP95(t *testing.T) {
	// Periodic requests with 30 s gaps: DAMON's constant sampling offloads
	// hot pages between requests; baseline stays fast.
	var inv []simtime.Time
	for i := 0; i < 20; i++ {
		inv = append(inv, simtime.Time(i*30)*simtime.Time(time.Second))
	}
	runP95 := func(pol policy.Policy) float64 {
		e := simtime.NewEngine()
		p := faas.New(e, faas.Config{KeepAliveTimeout: 10 * time.Minute, Seed: 5}, pol)
		f := p.Register("t", prof())
		p.ScheduleInvocations("t", inv)
		e.Run()
		_ = p
		return f.Stats().Latency.P95()
	}
	base := runP95(policy.NoOffload{})
	damon := runP95(policy.NewDAMON(policy.DAMONConfig{}))
	if damon <= base {
		t.Fatalf("DAMON P95 %.4f not worse than baseline %.4f", damon, base)
	}
}

func TestCollectPages(t *testing.T) {
	s := pagemem.NewSpace(4096)
	r := s.Alloc(pagemem.SegInit, 10)
	s.SetState(r.Start+2, pagemem.Hot)
	s.SetState(r.Start+3, pagemem.Hot)
	s.SetState(r.Start+4, pagemem.Remote)
	inactive := policy.CollectPages(s, r, pagemem.Inactive, 0)
	if len(inactive) != 7 {
		t.Fatalf("inactive = %d, want 7", len(inactive))
	}
	hot := policy.CollectPages(s, r, pagemem.Hot, 1)
	if len(hot) != 1 || hot[0] != r.Start+2 {
		t.Fatalf("hot with max=1 = %v", hot)
	}
}

func TestTMODefaults(t *testing.T) {
	tmo := policy.NewTMO(policy.TMOConfig{})
	if tmo.Name() != "tmo" {
		t.Fatal("name")
	}
	damon := policy.NewDAMON(policy.DAMONConfig{})
	if damon.Name() != "damon" {
		t.Fatal("name")
	}
}

func TestBaseIsNoop(t *testing.T) {
	var b policy.Base
	e := simtime.NewEngine()
	b.RuntimeLoaded(e)
	b.InitDone(e)
	b.RequestStart(e)
	b.RequestEnd(e)
	b.Idle(e)
	b.Recycle(e)
	if e.Pending() != 0 {
		t.Fatal("Base scheduled events")
	}
}
