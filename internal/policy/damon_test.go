package policy

// White-box tests for the region-based DAMON internals (two-phase sampling,
// aging, merge/split adaptation). The black-box behaviour is covered by
// policy_test.go through the full platform.

import (
	"math/rand"
	"testing"

	"github.com/faasmem/faasmem/internal/mglru"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/workload"
)

// fakeView is a minimal policy.View for driving DAMON without a platform.
type fakeView struct {
	space        *pagemem.Space
	lru          *mglru.LRU
	runtimeRange pagemem.Range
	initRange    pagemem.Range
	offloaded    []pagemem.PageID
}

func newFakeView(runtimePages, initPages int) *fakeView {
	s := pagemem.NewSpace(pagemem.DefaultPageSize)
	v := &fakeView{space: s, lru: mglru.New(s)}
	v.runtimeRange = s.Alloc(pagemem.SegRuntime, runtimePages)
	v.lru.InsertBarrier()
	v.initRange = s.Alloc(pagemem.SegInit, initPages)
	v.lru.InsertBarrier()
	return v
}

func (v *fakeView) ID() string                  { return "fake#1" }
func (v *fakeView) FunctionID() string          { return "fake" }
func (v *fakeView) Profile() *workload.Profile  { return nil }
func (v *fakeView) Space() *pagemem.Space       { return v.space }
func (v *fakeView) LRU() *mglru.LRU             { return v.lru }
func (v *fakeView) RuntimeRange() pagemem.Range { return v.runtimeRange }
func (v *fakeView) InitRange() pagemem.Range    { return v.initRange }
func (v *fakeView) RuntimeGen() mglru.GenID     { return 0 }
func (v *fakeView) InitGen() mglru.GenID        { return 1 }
func (v *fakeView) RequestsServed() int         { return 1 }
func (v *fakeView) Idle() bool                  { return true }
func (v *fakeView) StallFraction() float64      { return 0 }
func (v *fakeView) OffloadScale() float64       { return 1 }
func (v *fakeView) Trace() *telemetry.Tracer    { return nil }
func (v *fakeView) Spans() *span.Recorder       { return nil }
func (v *fakeView) OffloadPages(e *simtime.Engine, ids []pagemem.PageID) int {
	for _, id := range ids {
		st := v.space.State(id)
		if st == pagemem.Inactive || st == pagemem.Hot {
			v.space.SetState(id, pagemem.Remote)
			v.offloaded = append(v.offloaded, id)
		}
	}
	return len(ids)
}

var _ View = (*fakeView)(nil)

func newTestDamon(v View) *damonContainer {
	return &damonContainer{
		cfg:  DAMONConfig{}.withDefaults(),
		view: v,
		rng:  rand.New(rand.NewSource(1)),
	}
}

func TestDamonResetRegionsCoversMonitoredRanges(t *testing.T) {
	v := newFakeView(40, 60)
	d := newTestDamon(v)
	d.resetRegions()
	if len(d.regions) < d.cfg.MinRegions {
		t.Fatalf("regions = %d, want >= %d", len(d.regions), d.cfg.MinRegions)
	}
	covered := 0
	for _, r := range d.regions {
		covered += r.len()
		// Regions must not straddle outside the monitored ranges.
		inRuntime := r.start >= v.runtimeRange.Start && r.end <= v.runtimeRange.End
		inInit := r.start >= v.initRange.Start && r.end <= v.initRange.End
		if !inRuntime && !inInit {
			t.Fatalf("region [%d,%d) outside monitored ranges", r.start, r.end)
		}
	}
	if covered != 100 {
		t.Fatalf("regions cover %d pages, want 100", covered)
	}
}

func TestDamonTwoPhaseSamplingIgnoresStaleBits(t *testing.T) {
	v := newFakeView(10, 10)
	d := newTestDamon(v)
	d.resetRegions()
	// All pages carry stale access bits (set at allocation). A full
	// aggregation of sampling rounds must report zero accesses, because the
	// two-phase protocol only counts re-accesses after a clear.
	e := simtime.NewEngine()
	for i := 0; i < d.cfg.SamplesPerAggregation-1; i++ {
		d.sample(e)
	}
	for _, r := range d.regions {
		// First round only prepares; later rounds check freshly cleared
		// pages that were never touched again.
		if r.nrAccesses > 1 {
			t.Fatalf("region counted %d accesses from stale bits", r.nrAccesses)
		}
	}
}

func TestDamonCountsGenuineReaccess(t *testing.T) {
	v := newFakeView(0, 4)
	d := newTestDamon(v)
	d.cfg.MinRegions = 1
	d.resetRegions()
	e := simtime.NewEngine()
	total := 0
	for i := 0; i < 20; i++ {
		d.sample(e)
		// Re-touch every page between rounds, as an active request would.
		for id := v.initRange.Start; id < v.initRange.End; id++ {
			v.space.Touch(id)
		}
		for _, r := range d.regions {
			total += r.nrAccesses
		}
	}
	if total == 0 {
		t.Fatal("constant re-access never observed by sampling")
	}
}

func TestDamonAgingAndPageout(t *testing.T) {
	v := newFakeView(8, 8)
	d := newTestDamon(v)
	d.resetRegions()
	e := simtime.NewEngine()
	// Run enough full aggregations with no accesses: everything pages out.
	rounds := d.cfg.SamplesPerAggregation * (d.cfg.AggregationsCold + 1)
	for i := 0; i < rounds; i++ {
		d.sample(e)
	}
	if len(v.offloaded) != 16 {
		t.Fatalf("offloaded %d pages, want all 16", len(v.offloaded))
	}
}

func TestDamonMergeAndSplitBounds(t *testing.T) {
	v := newFakeView(128, 128)
	d := newTestDamon(v)
	d.resetRegions()
	for i := 0; i < 50; i++ {
		d.adaptRegions()
		if len(d.regions) > d.cfg.MaxRegions {
			t.Fatalf("regions %d exceed max %d", len(d.regions), d.cfg.MaxRegions)
		}
		covered := 0
		for j, r := range d.regions {
			if r.len() <= 0 {
				t.Fatalf("empty region %d", j)
			}
			covered += r.len()
		}
		if covered != 256 {
			t.Fatalf("adaptation changed coverage: %d pages", covered)
		}
	}
}

func TestDamonMergeJoinsSimilarNeighbors(t *testing.T) {
	v := newFakeView(0, 10)
	d := newTestDamon(v)
	d.cfg.MaxRegions = 1 // suppress the split pass
	d.regions = []damonRegion{
		{start: v.initRange.Start, end: v.initRange.Start + 5, nrAccesses: 3},
		{start: v.initRange.Start + 5, end: v.initRange.End, nrAccesses: 4},
	}
	d.adaptRegions()
	if len(d.regions) != 1 {
		t.Fatalf("similar adjacent regions not merged: %d", len(d.regions))
	}
	if d.regions[0].len() != 10 {
		t.Fatalf("merged region covers %d pages", d.regions[0].len())
	}
}

func TestDamonMergeKeepsDissimilarNeighbors(t *testing.T) {
	v := newFakeView(0, 10)
	d := newTestDamon(v)
	d.cfg.MaxRegions = 1
	d.regions = []damonRegion{
		{start: v.initRange.Start, end: v.initRange.Start + 5, nrAccesses: 0},
		{start: v.initRange.Start + 5, end: v.initRange.End, nrAccesses: 5},
	}
	d.adaptRegions()
	if len(d.regions) != 2 {
		t.Fatalf("dissimilar regions merged: %d", len(d.regions))
	}
}

func TestDamonDefaults(t *testing.T) {
	c := DAMONConfig{}.withDefaults()
	if c.MinRegions != 10 || c.MaxRegions != 100 {
		t.Errorf("region bounds = %d/%d", c.MinRegions, c.MaxRegions)
	}
	if c.SamplesPerAggregation != 5 || c.AggregationsCold != 2 {
		t.Errorf("aggregation defaults = %d/%d", c.SamplesPerAggregation, c.AggregationsCold)
	}
}
