// Package policy defines the interface between the serverless platform and
// a memory-offloading policy, plus the baseline policies the paper compares
// against: no offloading, TMO (feedback-based), and DAMON (sampling-based).
//
// A Policy is attached per container and receives lifecycle hooks at exactly
// the stage boundaries the paper's analysis is built on (runtime loaded,
// init done, request start/end, idle, recycle). Policies act on the
// container through the View interface; local→remote movement must go
// through View.OffloadPages so that cgroup accounting, pool capacity, and
// link bandwidth are charged consistently.
package policy

import (
	"github.com/faasmem/faasmem/internal/mglru"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/workload"
)

// View is the policy-facing surface of a container. It is implemented by
// the platform's container type.
type View interface {
	// ID is the container's unique identifier.
	ID() string
	// FunctionID names the function this container serves.
	FunctionID() string
	// Profile returns the workload profile of the function.
	Profile() *workload.Profile
	// Space returns the container's page-granularity address space.
	Space() *pagemem.Space
	// LRU returns the container's multi-generational LRU. The platform
	// inserts the Runtime-Init barrier when the runtime finishes loading and
	// the Init-Execution barrier when initialization completes, so the LRU's
	// sealed generations are the paper's Puckets.
	LRU() *mglru.LRU
	// RuntimeRange is the page range of the runtime segment (Runtime Pucket).
	RuntimeRange() pagemem.Range
	// InitRange is the page range of the init segment (Init Pucket).
	InitRange() pagemem.Range
	// RuntimeGen is the LRU generation backing the Runtime Pucket.
	RuntimeGen() mglru.GenID
	// InitGen is the LRU generation backing the Init Pucket.
	InitGen() mglru.GenID
	// RequestsServed counts completed requests on this container.
	RequestsServed() int
	// Idle reports whether the container is in keep-alive (no request in
	// flight).
	Idle() bool
	// StallFraction estimates the recent share of request time spent waiting
	// on remote-memory faults — the simulation's stand-in for TMO's PSI.
	StallFraction() float64
	// OffloadPages moves the given local (inactive or hot) pages to the
	// remote pool, charging cgroup accounting and link bandwidth. It returns
	// how many pages were actually offloaded; fewer than requested means the
	// pool filled up.
	OffloadPages(e *simtime.Engine, ids []pagemem.PageID) int
	// OffloadScale returns the platform bandwidth governor's current factor
	// in (0, 1]: gradual offloaders multiply their per-tick budget by it so
	// that aggregate offload traffic stays within the link budget (§6.2).
	OffloadScale() float64
	// Trace returns the platform's event tracer, nil when tracing is
	// disabled. Policies record their mechanism-level events (Pucket drains,
	// rollbacks, semi-warm transitions) through it; telemetry.Tracer methods
	// are nil-safe, so call sites need no guard.
	Trace() *telemetry.Tracer
	// Spans returns the platform's causal-span recorder, nil when span
	// recording is disabled. Policies record background work that competes
	// with request stalls for the link (offload waves, rollbacks, semi-warm
	// drains) through it; span.Recorder methods are nil-safe, but work done
	// only to build a span should be guarded with Spans().Enabled().
	Spans() *span.Recorder
}

// Policy manufactures per-container policy instances.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Attach is called when a container launches and returns the hook
	// receiver for that container's lifetime.
	Attach(e *simtime.Engine, v View) ContainerPolicy
}

// ContainerPolicy receives a container's lifecycle hooks. Implementations
// must tolerate hooks after Recycle being absent (the platform never calls
// them) but should cancel their own timers in Recycle.
type ContainerPolicy interface {
	// RuntimeLoaded fires when the container runtime finished loading, right
	// after the Runtime-Init time barrier was inserted.
	RuntimeLoaded(e *simtime.Engine)
	// InitDone fires when function initialization completed, right after the
	// Init-Execution time barrier was inserted.
	InitDone(e *simtime.Engine)
	// RequestStart fires when a request begins executing on the container
	// (after exec-segment pages were allocated).
	RequestStart(e *simtime.Engine)
	// RequestEnd fires when a request completes (after exec-segment pages
	// were freed).
	RequestEnd(e *simtime.Engine)
	// Idle fires when the container enters keep-alive.
	Idle(e *simtime.Engine)
	// Recycle fires when the container is torn down.
	Recycle(e *simtime.Engine)
}

// SemiWarmer is an optional ContainerPolicy extension: policies that
// implement a semi-warm period report whether the container is currently in
// it, letting the platform classify a reuse as a semi-warm start rather than
// a warm start.
type SemiWarmer interface {
	// InSemiWarm reports whether the container is in its semi-warm period.
	InSemiWarm() bool
}

// Base is a no-op ContainerPolicy for embedding: implementations override
// only the hooks they need.
type Base struct{}

// RuntimeLoaded implements ContainerPolicy.
func (Base) RuntimeLoaded(*simtime.Engine) {}

// InitDone implements ContainerPolicy.
func (Base) InitDone(*simtime.Engine) {}

// RequestStart implements ContainerPolicy.
func (Base) RequestStart(*simtime.Engine) {}

// RequestEnd implements ContainerPolicy.
func (Base) RequestEnd(*simtime.Engine) {}

// Idle implements ContainerPolicy.
func (Base) Idle(*simtime.Engine) {}

// Recycle implements ContainerPolicy.
func (Base) Recycle(*simtime.Engine) {}

// CollectPages gathers up to max page IDs in r whose state matches st.
// max <= 0 means no limit. The scan walks the space's per-state bitset
// word-at-a-time rather than checking every page.
func CollectPages(s *pagemem.Space, r pagemem.Range, st pagemem.State, max int) []pagemem.PageID {
	return s.CollectInState(nil, r, st, max)
}

// NoOffload is the paper's baseline: FaaSMem's platform with memory
// offloading disabled.
type NoOffload struct{}

// Name implements Policy.
func (NoOffload) Name() string { return "baseline" }

// Attach implements Policy.
func (NoOffload) Attach(*simtime.Engine, View) ContainerPolicy { return Base{} }
