package policy

import (
	"math/rand"
	"time"

	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/simtime"
)

// DAMONConfig parameterizes the DAMON baseline. The implementation follows
// the kernel's design: the monitored address space is covered by a bounded
// number of regions; every sampling interval one page per region is checked
// (and its Access bit cleared); every aggregation interval regions are aged,
// a DAMOS "pageout cold" scheme evicts regions that stayed idle long enough,
// and regions adaptively merge/split so hot and cold ranges separate.
//
// Timescales are stretched relative to the kernel defaults (5 ms sampling /
// 100 ms aggregation) to keep event counts tractable in simulation; what
// matters to the paper's §2.2 argument is the *relative* behaviour: sampling
// continues through keep-alive, so an idle container's hot pages appear cold
// and are paged out before the next request.
type DAMONConfig struct {
	// SamplingInterval is the per-region access check period. Default 1 s.
	SamplingInterval time.Duration
	// SamplesPerAggregation is how many sampling rounds form one
	// aggregation. Default 5.
	SamplesPerAggregation int
	// AggregationsCold is how many consecutive zero-access aggregations make
	// a region cold enough to page out. Default 2.
	AggregationsCold int
	// MinRegions / MaxRegions bound the adaptive region count. Defaults
	// 10 / 100 (kernel defaults).
	MinRegions, MaxRegions int
	// Seed drives region sampling and split points.
	Seed int64
}

func (c DAMONConfig) withDefaults() DAMONConfig {
	if c.SamplingInterval <= 0 {
		c.SamplingInterval = time.Second
	}
	if c.SamplesPerAggregation <= 0 {
		c.SamplesPerAggregation = 5
	}
	if c.AggregationsCold <= 0 {
		c.AggregationsCold = 2
	}
	if c.MinRegions <= 0 {
		c.MinRegions = 10
	}
	if c.MaxRegions < c.MinRegions {
		c.MaxRegions = c.MinRegions * 10
	}
	return c
}

// DAMON is the sampling-based offloading baseline. Because it samples
// constantly — including through the keep-alive stage — the hot pages an
// idle container will need for its next request look cold and are offloaded,
// which is exactly the failure mode Figure 2 of the paper demonstrates.
type DAMON struct {
	cfg DAMONConfig
}

// NewDAMON builds the DAMON baseline with defaults applied.
func NewDAMON(cfg DAMONConfig) *DAMON { return &DAMON{cfg: cfg.withDefaults()} }

// Name implements Policy.
func (d *DAMON) Name() string { return "damon" }

// Attach implements Policy.
func (d *DAMON) Attach(e *simtime.Engine, v View) ContainerPolicy {
	c := &damonContainer{
		cfg:  d.cfg,
		view: v,
		rng:  rand.New(rand.NewSource(d.cfg.Seed ^ int64(len(v.ID())+1)*2654435761)),
	}
	c.ticker = simtime.NewTicker(e, d.cfg.SamplingInterval, c.sample)
	return c
}

// damonRegion is a contiguous monitored page range with its aggregate access
// statistics, mirroring struct damon_region.
type damonRegion struct {
	start, end pagemem.PageID // [start, end)
	nrAccesses int            // sampled accesses in the current aggregation
	age        int            // consecutive aggregations with zero accesses
	// samplingAddr is the page whose Access bit was cleared last round; the
	// kernel's two-phase protocol (prepare: clear; check: did it come back?)
	// is what distinguishes re-accesses from stale bits.
	samplingAddr pagemem.PageID
	prepared     bool
}

func (r damonRegion) len() int { return int(r.end - r.start) }

type damonContainer struct {
	Base
	cfg     DAMONConfig
	view    View
	ticker  *simtime.Ticker
	rng     *rand.Rand
	regions []damonRegion
	samples int
}

// InitDone implements ContainerPolicy: monitoring targets exist once the
// init segment is materialized, so the initial regions are laid out here.
func (c *damonContainer) InitDone(*simtime.Engine) {
	c.resetRegions()
}

// resetRegions covers the monitored ranges (runtime + init segments) with
// MinRegions equal slices.
func (c *damonContainer) resetRegions() {
	c.regions = c.regions[:0]
	var spans []damonRegion
	for _, r := range []pagemem.Range{c.view.RuntimeRange(), c.view.InitRange()} {
		if r.Len() > 0 {
			spans = append(spans, damonRegion{start: r.Start, end: r.End})
		}
	}
	if len(spans) == 0 {
		return
	}
	total := 0
	for _, s := range spans {
		total += s.len()
	}
	per := total / c.cfg.MinRegions
	if per < 1 {
		per = 1
	}
	for _, s := range spans {
		for start := s.start; start < s.end; {
			end := start + pagemem.PageID(per)
			if end > s.end {
				end = s.end
			}
			c.regions = append(c.regions, damonRegion{start: start, end: end})
			start = end
		}
	}
}

// sample performs one sampling round using the kernel's two-phase protocol:
// first check whether the previously prepared page's Access bit came back
// (a genuine re-access since the last round), then prepare the next random
// page by clearing its bit.
func (c *damonContainer) sample(e *simtime.Engine) {
	if len(c.regions) == 0 {
		if c.view.InitRange().Len() == 0 {
			return // container still cold-starting
		}
		c.resetRegions()
		if len(c.regions) == 0 {
			return
		}
	}
	s := c.view.Space()
	for i := range c.regions {
		r := &c.regions[i]
		if r.len() <= 0 {
			continue
		}
		if r.prepared && r.samplingAddr >= r.start && r.samplingAddr < r.end &&
			s.Accessed(r.samplingAddr) {
			r.nrAccesses++
		}
		// Prepare the next check.
		r.samplingAddr = r.start + pagemem.PageID(c.rng.Intn(r.len()))
		s.ClearAccessed(r.samplingAddr)
		r.prepared = true
	}
	c.samples++
	if c.samples >= c.cfg.SamplesPerAggregation {
		c.samples = 0
		c.aggregate(e)
	}
}

// aggregate ages regions, applies the pageout scheme to cold ones, then
// merges and splits regions (the kernel's damon_merge_regions /
// damon_split_regions adaptation step).
func (c *damonContainer) aggregate(e *simtime.Engine) {
	s := c.view.Space()
	var victims []pagemem.PageID
	for i := range c.regions {
		r := &c.regions[i]
		if r.nrAccesses == 0 {
			r.age++
		} else {
			r.age = 0
		}
		if r.age >= c.cfg.AggregationsCold {
			// DAMOS pageout: evict every local page of the region.
			victims = s.CollectLocal(victims, pagemem.Range{Start: r.start, End: r.end}, 0)
			r.age = 0 // paged out; restart aging
		}
		r.nrAccesses = 0
	}
	if len(victims) > 0 {
		c.view.OffloadPages(e, victims)
	}
	c.adaptRegions()
}

// adaptRegions merges adjacent regions with similar access counts and splits
// regions while under the cap, so monitoring granularity follows the access
// pattern.
func (c *damonContainer) adaptRegions() {
	if len(c.regions) == 0 {
		return
	}
	// Merge pass: adjacent regions whose access counts differ by <= 1 and
	// that are contiguous in the address space.
	merged := c.regions[:0]
	for _, r := range c.regions {
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if last.end == r.start && absInt(last.nrAccesses-r.nrAccesses) <= 1 {
				last.end = r.end
				continue
			}
		}
		merged = append(merged, r)
	}
	c.regions = merged
	// Split pass: bisect regions at random points while under the cap.
	if len(c.regions)*2 <= c.cfg.MaxRegions {
		split := make([]damonRegion, 0, len(c.regions)*2)
		for _, r := range c.regions {
			if r.len() < 2 {
				split = append(split, r)
				continue
			}
			cut := r.start + 1 + pagemem.PageID(c.rng.Intn(r.len()-1))
			split = append(split,
				damonRegion{start: r.start, end: cut, age: r.age},
				damonRegion{start: cut, end: r.end, age: r.age})
		}
		c.regions = split
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Recycle implements ContainerPolicy.
func (c *damonContainer) Recycle(*simtime.Engine) { c.ticker.Stop() }
