package policy

import (
	"time"

	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/simtime"
)

// TMOConfig parameterizes the TMO baseline (Weiner et al., ASPLOS'22) as the
// paper characterizes it in §2.2: memory is offloaded slowly, step by step —
// about 0.05% of total memory every 6 seconds — and offloading pauses as
// soon as the observed slowdown (PSI) crosses a threshold.
type TMOConfig struct {
	// StepFraction is the share of total container memory offloaded per
	// step. Default 0.0005 (0.05%).
	StepFraction float64
	// StepInterval is the period between offload steps. Default 6 s.
	StepInterval time.Duration
	// StallThreshold pauses offloading while the container's recent
	// fault-stall fraction exceeds it. Default 0.05.
	StallThreshold float64
}

func (c TMOConfig) withDefaults() TMOConfig {
	if c.StepFraction <= 0 {
		c.StepFraction = 0.0005
	}
	if c.StepInterval <= 0 {
		c.StepInterval = 6 * time.Second
	}
	if c.StallThreshold <= 0 {
		c.StallThreshold = 0.05
	}
	return c
}

// TMO is the feedback-based offloading baseline.
type TMO struct {
	cfg TMOConfig
}

// NewTMO builds the TMO baseline with defaults applied.
func NewTMO(cfg TMOConfig) *TMO { return &TMO{cfg: cfg.withDefaults()} }

// Name implements Policy.
func (t *TMO) Name() string { return "tmo" }

// Attach implements Policy.
func (t *TMO) Attach(e *simtime.Engine, v View) ContainerPolicy {
	c := &tmoContainer{cfg: t.cfg, view: v}
	c.ticker = simtime.NewTicker(e, t.cfg.StepInterval, c.step)
	return c
}

type tmoContainer struct {
	Base
	cfg    TMOConfig
	view   View
	ticker *simtime.Ticker
	// carry accumulates sub-page budget across steps so small containers
	// still converge to StepFraction per step on average.
	carry int64
}

// step performs one conservative offload increment: clear access bits over
// the monitored segments, then offload up to the per-step budget of pages
// that were not touched since the previous step (coldest first: runtime
// segment before init segment, since runtime pages age out sooner).
func (c *tmoContainer) step(e *simtime.Engine) {
	if c.view.StallFraction() > c.cfg.StallThreshold {
		return // feedback loop: performance is already degrading
	}
	s := c.view.Space()
	c.carry += int64(float64(s.TotalBytes()) * c.cfg.StepFraction)
	pageBytes := int64(s.PageSize())
	budget := int(c.carry / pageBytes)
	if budget <= 0 {
		return
	}
	c.carry -= int64(budget) * pageBytes
	var victims []pagemem.PageID
	for _, r := range []pagemem.Range{c.view.RuntimeRange(), c.view.InitRange()} {
		s.ForEachLocal(r, func(id pagemem.PageID) bool {
			if s.Accessed(id) {
				// Touched since the last step: young, leave it and clear the
				// bit so the next step can re-evaluate.
				s.ClearAccessed(id)
				return true
			}
			victims = append(victims, id)
			return len(victims) < budget
		})
		if len(victims) >= budget {
			break
		}
	}
	if len(victims) > 0 {
		c.view.OffloadPages(e, victims)
	}
}

// Recycle implements ContainerPolicy.
func (c *tmoContainer) Recycle(*simtime.Engine) { c.ticker.Stop() }
