package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

func TestTracerRecordAndOrder(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Record(Event{At: simtime.Time(i) * time.Second, Kind: KindRequest, Actor: "c#1"})
	}
	if tr.Len() != 5 || tr.Total() != 5 || tr.Dropped() != 0 {
		t.Fatalf("Len/Total/Dropped = %d/%d/%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.At != simtime.Time(i)*time.Second {
			t.Fatalf("event %d at %v", i, ev.At)
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{At: simtime.Time(i), Value: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", tr.Len())
	}
	if tr.Dropped() != 6 || tr.Total() != 10 {
		t.Fatalf("Dropped/Total = %d/%d, want 6/10", tr.Dropped(), tr.Total())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.Value != want {
			t.Fatalf("event %d value %d, want %d (oldest overwritten first)", i, ev.Value, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: Len/Total/Dropped = %d/%d/%d", tr.Len(), tr.Total(), tr.Dropped())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: KindPageFault})
	tr.Reset()
	if tr.Enabled() || tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(Event{
			At:    time.Second,
			Dur:   time.Millisecond,
			Kind:  KindPageOffload,
			Stage: StageRuntime,
			Actor: "bert#1",
			Fn:    "bert",
			Value: 128,
		})
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer Record allocates %v per op, want 0", allocs)
	}
}

func TestEnabledTracerSteadyStateZeroAlloc(t *testing.T) {
	tr := NewTracer(64)
	// Warm the ring to capacity; steady-state recording then reuses slots.
	for i := 0; i < 64; i++ {
		tr.Record(Event{At: simtime.Time(i)})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(Event{At: time.Second, Kind: KindRequest, Actor: "c#1", Fn: "f"})
	})
	if allocs != 0 {
		t.Fatalf("full-ring Record allocates %v per op, want 0", allocs)
	}
}

func BenchmarkDisabledTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Event{At: simtime.Time(i), Kind: KindPageFault, Actor: "bert#1", Fn: "bert", Value: 8})
	}
}

func BenchmarkEnabledTracer(b *testing.B) {
	tr := NewTracer(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Event{At: simtime.Time(i), Kind: KindPageFault, Actor: "bert#1", Fn: "bert", Value: 8})
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(Event{At: simtime.Time(i), Kind: KindRequest})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8000 {
		t.Fatalf("Total = %d, want 8000", tr.Total())
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("requests_total", "ignored"); again != c {
		t.Fatal("re-registration must return the same metric")
	}
	g := r.Gauge("live", "live containers")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples", len(snap))
	}
	// Sorted by name: "live" < "requests_total".
	if snap[0].Name != "live" || snap[0].Type != GaugeType || snap[0].Value != 5 {
		t.Fatalf("snapshot[0] = %+v", snap[0])
	}
	if snap[1].Name != "requests_total" || snap[1].Type != CounterType || snap[1].Value != 5 {
		t.Fatalf("snapshot[1] = %+v", snap[1])
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	m := r.Counter("anything", "")
	if m != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	m.Inc()
	m.Add(3)
	m.Set(9)
	if m.Value() != 0 || m.Name() != "" || m.Type() != CounterType {
		t.Fatal("nil metric must be inert")
	}
	if r.Snapshot() != nil || r.Get("anything") != nil {
		t.Fatal("nil registry reads must be empty")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Gauge("level", "").Set(int64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Get("shared_total").Value(); got != 8000 {
		t.Fatalf("shared_total = %d, want 8000", got)
	}
}

func TestSanitizeName(t *testing.T) {
	r := NewRegistry()
	m := r.Counter("faasmem/pages offloaded.total", "")
	if m.Name() != "faasmem_pages_offloaded_total" {
		t.Fatalf("sanitized name = %q", m.Name())
	}
	if r.Get("faasmem/pages offloaded.total") != m {
		t.Fatal("Get must sanitize the same way")
	}
}

func TestHubDefault(t *testing.T) {
	defer SetDefault(Hub{})
	if Default().Enabled() {
		t.Fatal("default hub must start disabled")
	}
	h := Hub{Tracer: NewTracer(4)}
	SetDefault(h)
	if got := (Hub{}).OrDefault(); got.Tracer != h.Tracer {
		t.Fatal("OrDefault must fall back to the installed default")
	}
	own := Hub{Reg: NewRegistry()}
	if got := own.OrDefault(); got.Reg != own.Reg || got.Tracer != nil {
		t.Fatal("OrDefault must keep an explicitly provided hub")
	}
}

func TestKindAndStageStrings(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
	if StageRuntime.String() != "runtime" || StageInit.String() != "init" ||
		StageExec.String() != "exec" || StageNone.String() != "" {
		t.Fatal("stage names drifted")
	}
}

func TestWriteTextMentionsDrops(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Record(Event{At: simtime.Time(i) * time.Second, Kind: KindRequest, Actor: "a"})
	}
	var b strings.Builder
	if err := WriteText(&b, tr); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "request") || !strings.Contains(out, "3 earlier events dropped") {
		t.Fatalf("text dump missing content:\n%s", out)
	}
}
