package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTracer replays a small deterministic "simulation" — one container's
// cold start, two requests, a Pucket offload, a fault, and recycle — entirely
// from fixed events, so the golden file pins the exporter's schema without
// depending on simulator behaviour.
func goldenTracer() *Tracer {
	tr := NewTracer(64)
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	tr.Record(Event{At: sec(0), Kind: KindContainerLaunch, Actor: "web#1", Fn: "web"})
	tr.Record(Event{At: sec(0), Dur: sec(1.2), Kind: KindRuntimeLoaded, Actor: "web#1", Fn: "web", Stage: StageRuntime, Value: 2048})
	tr.Record(Event{At: sec(1.2), Dur: sec(0.4), Kind: KindInitDone, Actor: "web#1", Fn: "web", Stage: StageInit, Value: 1024})
	tr.Record(Event{At: sec(1.6), Dur: sec(0.25), Kind: KindRequest, Actor: "web#1", Fn: "web"})
	tr.Record(Event{At: sec(1.85), Kind: KindPucketOffload, Actor: "web#1", Fn: "web", Stage: StageRuntime, Value: 1500, Aux: 0})
	tr.Record(Event{At: sec(1.85), Dur: sec(0.05), Kind: KindLinkTransfer, Actor: "link", Value: 6144000, Aux: 0})
	tr.Record(Event{At: sec(1.85), Kind: KindContainerIdle, Actor: "web#1", Fn: "web"})
	tr.Record(Event{At: sec(30), Dur: sec(0.26), Kind: KindRequest, Actor: "web#1", Fn: "web", Value: 3})
	tr.Record(Event{At: sec(30), Dur: sec(0.01), Kind: KindPageFault, Actor: "web#1", Fn: "web", Stage: StageRuntime, Value: 3, Aux: 8})
	tr.Record(Event{At: sec(630), Kind: KindContainerRecycle, Actor: "web#1", Fn: "web", Value: 6144000})
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace schema drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter must emit valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	var threads, spans, instants int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				threads++
			}
		case "X":
			spans++
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Fatalf("instant event missing thread scope: %v", ev)
			}
		}
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	// Tracks: web#1 and link.
	if threads != 2 {
		t.Fatalf("thread_name metadata events = %d, want 2", threads)
	}
	if spans == 0 || instants == 0 {
		t.Fatalf("spans/instants = %d/%d, want both nonzero", spans, instants)
	}
	for _, want := range []string{"container-launch", "request", "page-fault", "pucket-offload", "link-transfer"} {
		if !names[want] {
			t.Fatalf("trace missing %q event", want)
		}
	}
}

func TestChromeTraceSortsByTime(t *testing.T) {
	tr := NewTracer(8)
	// Recorded out of order: the link reserves into the future.
	tr.Record(Event{At: 5 * time.Second, Dur: time.Second, Kind: KindLinkTransfer, Actor: "link"})
	tr.Record(Event{At: 1 * time.Second, Kind: KindRequest, Actor: "a#1"})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var last float64 = -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ts < last {
			t.Fatalf("events not sorted by ts: %v after %v", ev.Ts, last)
		}
		last = ev.Ts
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteChromeTraceFile(path, goldenTracer()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("file is not valid JSON")
	}
}
