package span

import (
	"sort"
	"time"

	"github.com/faasmem/faasmem/internal/metrics"
)

// Quantiles are the percentiles every attribution table reports.
var Quantiles = []float64{0.50, 0.95, 0.99}

// Breakdown decomposes one percentile of end-to-end latency into phases.
// It is an *order statistic*: Total is the latency of the invocation at
// rank ceil(q·n) and Phase its critical-path breakdown, so the phase
// columns sum to Total exactly (integer nanoseconds), not to a blend of
// different requests' histograms.
type Breakdown struct {
	// Q is the quantile in [0,1].
	Q float64 `json:"q"`
	// Total is the end-to-end latency of the rank-q invocation.
	Total time.Duration `json:"total"`
	// Phase holds that invocation's per-phase critical-path time.
	Phase [NumPhases]time.Duration `json:"phase"`
	// Dominant is the largest non-request phase at this percentile.
	Dominant Phase `json:"dominant"`
}

// Attribution aggregates the invocations of one function (or of a whole
// scenario when Function is empty).
type Attribution struct {
	// Function is the function ID, or "" for the scenario-wide aggregate.
	Function string `json:"function,omitempty"`
	// N is the number of invocations aggregated.
	N int `json:"n"`
	// Starts counts invocations by start kind.
	Starts [numStartKinds]int `json:"starts"`
	// MeanTotal is the mean end-to-end latency in seconds.
	MeanTotal float64 `json:"mean_total_s"`
	// MeanPhase is the mean per-phase critical-path time in seconds; the
	// entries sum to MeanTotal (both are sums of the same integer
	// nanoseconds divided by N).
	MeanPhase [NumPhases]float64 `json:"mean_phase_s"`
	// Breakdowns holds one order-statistic decomposition per entry of
	// Quantiles.
	Breakdowns []Breakdown `json:"breakdowns"`
	// TotalHist is the end-to-end latency distribution in seconds, for
	// callers that want histogram quantiles (smoothed, non-reconciling).
	TotalHist *metrics.Histogram `json:"-"`
	// PhaseHist is the per-phase critical-path time distribution in
	// seconds, one histogram per phase with at least one sample.
	PhaseHist [NumPhases]*metrics.Histogram `json:"-"`
}

// invProfile is one invocation reduced to its critical-path phase times.
type invProfile struct {
	total time.Duration
	phase [NumPhases]time.Duration
}

// Analysis is the result of attributing a set of invocations.
type Analysis struct {
	// Overall aggregates every invocation.
	Overall Attribution `json:"overall"`
	// PerFunction aggregates each function separately, sorted by function
	// ID for deterministic output.
	PerFunction []Attribution `json:"per_function"`
}

// CriticalPath flattens an invocation's tree into per-phase critical-path
// time: each span contributes its self time (duration minus children) to
// its own phase. The entries therefore telescope — their sum equals the
// root duration exactly — with the root's own self time landing in
// PhaseExec's siblings' gaps as PhaseOther. The root span's phase
// (PhaseRequest) never receives time; its self time is re-labelled
// PhaseOther so "request" never competes with its own parts.
func CriticalPath(inv Invocation) [NumPhases]time.Duration {
	var out [NumPhases]time.Duration
	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		p := s.Phase
		if depth == 0 || p == PhaseRequest {
			p = PhaseOther
		}
		out[p] += s.SelfDur()
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(inv.Root, 0)
	return out
}

// Analyze builds attribution tables from a set of recorded invocations.
// Output is deterministic: functions are sorted by ID and quantile picks
// break ties by recording order (itself deterministic on the virtual
// clock).
func Analyze(invs []Invocation) *Analysis {
	an := &Analysis{}
	byFn := map[string][]invProfile{}
	var fnKinds = map[string]*[numStartKinds]int{}
	all := make([]invProfile, 0, len(invs))
	var allKinds [numStartKinds]int
	for _, inv := range invs {
		prof := invProfile{total: inv.Total(), phase: CriticalPath(inv)}
		all = append(all, prof)
		byFn[inv.Function] = append(byFn[inv.Function], prof)
		if int(inv.Kind) < int(numStartKinds) {
			allKinds[inv.Kind]++
			k := fnKinds[inv.Function]
			if k == nil {
				k = new([numStartKinds]int)
				fnKinds[inv.Function] = k
			}
			k[inv.Kind]++
		}
	}
	an.Overall = aggregate("", all, allKinds)
	fns := make([]string, 0, len(byFn))
	for fn := range byFn {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		var kinds [numStartKinds]int
		if k := fnKinds[fn]; k != nil {
			kinds = *k
		}
		an.PerFunction = append(an.PerFunction, aggregate(fn, byFn[fn], kinds))
	}
	return an
}

func aggregate(fn string, profs []invProfile, kinds [numStartKinds]int) Attribution {
	at := Attribution{Function: fn, N: len(profs), Starts: kinds}
	if len(profs) == 0 {
		return at
	}
	at.TotalHist = metrics.NewLatencyHistogram()
	var sumTotal time.Duration
	var sumPhase [NumPhases]time.Duration
	for _, p := range profs {
		sumTotal += p.total
		at.TotalHist.Add(p.total.Seconds())
		for ph, d := range p.phase {
			sumPhase[ph] += d
			if d > 0 {
				if at.PhaseHist[ph] == nil {
					at.PhaseHist[ph] = metrics.NewLatencyHistogram()
				}
				at.PhaseHist[ph].Add(d.Seconds())
			}
		}
	}
	n := float64(len(profs))
	at.MeanTotal = sumTotal.Seconds() / n
	for ph, d := range sumPhase {
		at.MeanPhase[ph] = d.Seconds() / n
	}
	// Order-statistic breakdowns: sort by total (stable, so equal totals
	// keep recording order) and decompose the rank-q invocation.
	order := make([]int, len(profs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return profs[order[a]].total < profs[order[b]].total
	})
	for _, q := range Quantiles {
		idx := quantileIndex(q, len(order))
		p := profs[order[idx]]
		bd := Breakdown{Q: q, Total: p.total, Phase: p.phase}
		best := time.Duration(-1)
		for ph := PhaseOther; ph < NumPhases; ph++ {
			if ph == PhaseRequest {
				continue
			}
			if p.phase[ph] > best {
				best = p.phase[ph]
				bd.Dominant = ph
			}
		}
		at.Breakdowns = append(at.Breakdowns, bd)
	}
	return at
}

// quantileIndex returns the 0-based rank of quantile q among n sorted
// samples using the ceil(q·n) convention (matches metrics.Histogram).
func quantileIndex(q float64, n int) int {
	if n <= 0 {
		return 0
	}
	rank := int(float64(n)*q + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank - 1
}
