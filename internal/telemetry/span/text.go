package span

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// tablePhases is the fixed column order of attribution tables: causal order,
// with the residue column last. Fixed columns keep the output diff-able for
// golden files.
var tablePhases = []Phase{
	PhaseQueue, PhaseLaunch, PhaseInit, PhaseStateIn, PhaseExec,
	PhaseStateOut, PhaseFaultStall, PhaseRestore, PhaseBacklog,
	PhaseRetry, PhaseFallback, PhaseOther,
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtSec(s float64) string {
	if s == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", s)
}

// WriteText renders an analysis as fixed-width attribution tables, one per
// aggregate (overall first, then per function): a mean row plus one
// order-statistic row per quantile whose phase columns sum exactly to its
// total.
func WriteText(w io.Writer, an *Analysis) error {
	ov := an.Overall
	if _, err := fmt.Fprintf(w,
		"Latency attribution: %d invocations (cold %d, warm %d, semi-warm %d, queued %d)\n",
		ov.N, ov.Starts[Cold], ov.Starts[Warm], ov.Starts[SemiWarm], ov.Starts[Queued],
	); err != nil {
		return err
	}
	if ov.N == 0 {
		_, err := fmt.Fprintln(w, "  (no invocations recorded)")
		return err
	}
	if err := writeAttribution(w, "overall", ov); err != nil {
		return err
	}
	for _, at := range an.PerFunction {
		if err := writeAttribution(w, at.Function, at); err != nil {
			return err
		}
	}
	return nil
}

func writeAttribution(w io.Writer, label string, at Attribution) error {
	if _, err := fmt.Fprintf(w, "\n%s  (n=%d)\n", label, at.N); err != nil {
		return err
	}
	header := []string{"quantile", "total"}
	for _, p := range tablePhases {
		header = append(header, p.String())
	}
	header = append(header, "dominant")
	rows := make([][]string, 0, len(at.Breakdowns)+1)
	meanRow := []string{"mean", fmtSec(at.MeanTotal)}
	for _, p := range tablePhases {
		meanRow = append(meanRow, fmtSec(at.MeanPhase[p]))
	}
	meanRow = append(meanRow, "")
	rows = append(rows, meanRow)
	for _, bd := range at.Breakdowns {
		row := []string{fmt.Sprintf("P%g", bd.Q*100), fmtDur(bd.Total)}
		for _, p := range tablePhases {
			row = append(row, fmtDur(bd.Phase[p]))
		}
		row = append(row, bd.Dominant.String())
		rows = append(rows, row)
	}
	return writeTextTable(w, header, rows)
}

// writeTextTable renders fixed-width columns (same convention as the
// experiments printers).
func writeTextTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = cell + strings.Repeat(" ", widths[i]-len(cell))
		}
		_, err := fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(header); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}
