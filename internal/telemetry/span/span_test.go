package span

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// coldInv builds a representative cold-start tree: request → launch, init,
// exec(→ fault-stall(→ backlog)).
func coldInv(fn, ctr string, base simtime.Time) Invocation {
	launch := Span{Phase: PhaseLaunch, Start: base, Dur: sec(1.2)}
	init := Span{Phase: PhaseInit, Start: launch.End(), Dur: sec(0.4)}
	backlog := Span{Phase: PhaseBacklog, Start: init.End() + simtime.Time(sec(0.1)), Dur: sec(0.02), Pages: 1 << 20}
	stall := Span{
		Phase: PhaseFaultStall, Start: init.End() + simtime.Time(sec(0.05)),
		Dur: sec(0.09), Pages: 12, Children: []Span{backlog},
	}
	exec := Span{Phase: PhaseExec, Start: init.End(), Dur: sec(0.34), Children: []Span{stall}}
	return Invocation{
		Function: fn, Container: ctr, Kind: Cold,
		Root: Span{
			Phase: PhaseRequest, Start: base, Dur: sec(1.94),
			Children: []Span{launch, init, exec},
		},
	}
}

func warmInv(fn, ctr string, base simtime.Time, total, stall float64) Invocation {
	exec := Span{Phase: PhaseExec, Start: base, Dur: sec(total)}
	if stall > 0 {
		exec.Children = []Span{{
			Phase: PhaseFaultStall, Start: base + simtime.Time(sec(0.01)),
			Dur: sec(stall), Pages: 4,
		}}
	}
	return Invocation{
		Function: fn, Container: ctr, Kind: Warm,
		Root: Span{Phase: PhaseRequest, Start: base, Dur: sec(total), Children: []Span{exec}},
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder must report disabled")
	}
	r.Record(coldInv("web", "web#1", 0))
	r.RecordBackground(Background{Kind: BGOffload})
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder must count nothing")
	}
	if r.Invocations() != nil || r.Backgrounds() != nil {
		t.Fatal("nil recorder must return nil slices")
	}
	if r.OrDefault() != nil {
		t.Fatal("OrDefault with no default must stay nil")
	}
}

func TestDisabledSpansZeroAlloc(t *testing.T) {
	var r *Recorder
	inv := coldInv("web", "web#1", 0)
	allocs := testing.AllocsPerRun(100, func() {
		if r.Enabled() {
			r.Record(inv)
		}
		r.RecordBackground(Background{})
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v times per op, want 0", allocs)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	if !r.Enabled() {
		t.Fatal("live recorder must report enabled")
	}
	for i := 0; i < 5; i++ {
		r.Record(warmInv("f", "f#1", simtime.Time(sec(float64(i))), 0.1, 0))
	}
	if r.Len() != 3 || r.Total() != 5 || r.Dropped() != 2 {
		t.Fatalf("len/total/dropped = %d/%d/%d, want 3/5/2", r.Len(), r.Total(), r.Dropped())
	}
	invs := r.Invocations()
	for i, inv := range invs {
		want := simtime.Time(sec(float64(i + 2)))
		if inv.Root.Start != want {
			t.Fatalf("inv %d start = %v, want %v (oldest-first after wrap)", i, inv.Root.Start, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("reset must clear everything")
	}
}

func TestDefaultRecorder(t *testing.T) {
	defer SetDefault(nil)
	if Default() != nil {
		t.Fatal("default must start nil")
	}
	r := NewRecorder(8)
	SetDefault(r)
	var unset *Recorder
	if unset.OrDefault() != r {
		t.Fatal("OrDefault must fall back to the process default")
	}
	if r.OrDefault() != r {
		t.Fatal("OrDefault must prefer the explicit recorder")
	}
}

// TestCriticalPathTelescopes pins the reconciliation invariant the
// attribution tables rely on: per-phase critical-path times sum to the
// end-to-end latency exactly, in integer nanoseconds.
func TestCriticalPathTelescopes(t *testing.T) {
	inv := coldInv("web", "web#1", 0)
	cp := CriticalPath(inv)
	var sum time.Duration
	for _, d := range cp {
		sum += d
	}
	if sum != inv.Total() {
		t.Fatalf("phase sum %v != total %v", sum, inv.Total())
	}
	if cp[PhaseRequest] != 0 {
		t.Fatalf("request phase must never hold self time, got %v", cp[PhaseRequest])
	}
	if cp[PhaseLaunch] != sec(1.2) || cp[PhaseInit] != sec(0.4) {
		t.Fatalf("launch/init = %v/%v", cp[PhaseLaunch], cp[PhaseInit])
	}
	if cp[PhaseExec] != sec(0.34)-sec(0.09) {
		t.Fatalf("exec self time = %v, want %v", cp[PhaseExec], sec(0.34)-sec(0.09))
	}
	if cp[PhaseFaultStall] != sec(0.09)-sec(0.02) {
		t.Fatalf("stall self time = %v", cp[PhaseFaultStall])
	}
	if cp[PhaseBacklog] != sec(0.02) {
		t.Fatalf("backlog = %v", cp[PhaseBacklog])
	}
}

// TestAnalyzeReconciles asserts the acceptance criterion at the engine
// level: every order-statistic breakdown's phase columns sum to its Total.
func TestAnalyzeReconciles(t *testing.T) {
	var invs []Invocation
	invs = append(invs, coldInv("web", "web#1", 0))
	for i := 0; i < 40; i++ {
		stall := 0.0
		if i%4 == 0 {
			stall = 0.03 * float64(i%8+1)
		}
		invs = append(invs, warmInv("web", "web#1",
			simtime.Time(sec(float64(10+i))), 0.2+0.001*float64(i), stall))
	}
	for i := 0; i < 10; i++ {
		invs = append(invs, warmInv("ml", "ml#1",
			simtime.Time(sec(float64(100+i))), 1.5, 0.2))
	}
	an := Analyze(invs)
	if an.Overall.N != len(invs) {
		t.Fatalf("overall N = %d, want %d", an.Overall.N, len(invs))
	}
	if len(an.PerFunction) != 2 ||
		an.PerFunction[0].Function != "ml" || an.PerFunction[1].Function != "web" {
		t.Fatalf("per-function must be sorted by ID, got %+v", an.PerFunction)
	}
	check := func(at Attribution) {
		t.Helper()
		if len(at.Breakdowns) != len(Quantiles) {
			t.Fatalf("%q: %d breakdowns, want %d", at.Function, len(at.Breakdowns), len(Quantiles))
		}
		for _, bd := range at.Breakdowns {
			var sum time.Duration
			for _, d := range bd.Phase {
				sum += d
			}
			if sum != bd.Total {
				t.Fatalf("%q q=%v: phase sum %v != total %v", at.Function, bd.Q, sum, bd.Total)
			}
		}
		var meanSum float64
		for _, m := range at.MeanPhase {
			meanSum += m
		}
		if diff := meanSum - at.MeanTotal; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%q: mean phase sum %v != mean total %v", at.Function, meanSum, at.MeanTotal)
		}
	}
	check(an.Overall)
	for _, at := range an.PerFunction {
		check(at)
	}
	// The ml function stalls 0.2 s of 1.5 s on every request; its dominant
	// non-exec share must be the fault stall at every percentile.
	ml := an.PerFunction[0]
	for _, bd := range ml.Breakdowns {
		if bd.Total != sec(1.5) || bd.Phase[PhaseFaultStall] != sec(0.2) {
			t.Fatalf("ml q=%v: total %v stall %v", bd.Q, bd.Total, bd.Phase[PhaseFaultStall])
		}
		if bd.Dominant != PhaseExec {
			t.Fatalf("ml q=%v dominant = %v, want exec", bd.Q, bd.Dominant)
		}
	}
	// Starts tally: 1 cold + 50 warm overall.
	if an.Overall.Starts[Cold] != 1 || an.Overall.Starts[Warm] != 50 {
		t.Fatalf("starts = %v", an.Overall.Starts)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	an := Analyze(nil)
	if an.Overall.N != 0 || len(an.Overall.Breakdowns) != 0 || len(an.PerFunction) != 0 {
		t.Fatalf("empty analysis must be empty, got %+v", an)
	}
}

func TestQuantileIndex(t *testing.T) {
	cases := []struct {
		q    float64
		n    int
		want int
	}{
		{0.5, 1, 0}, {0.99, 1, 0},
		{0.5, 2, 0}, {0.95, 2, 1},
		{0.5, 100, 49}, {0.95, 100, 94}, {0.99, 100, 98},
		{0.0, 10, 0}, {1.0, 10, 9},
	}
	for _, c := range cases {
		if got := quantileIndex(c.q, c.n); got != c.want {
			t.Fatalf("quantileIndex(%v, %d) = %d, want %d", c.q, c.n, got, c.want)
		}
	}
}

func TestPhaseNames(t *testing.T) {
	for p := PhaseOther; p < NumPhases; p++ {
		name := p.String()
		if name == "" || name == "unknown" {
			t.Fatalf("phase %d has no name", p)
		}
		back, ok := PhaseByName(name)
		if !ok || back != p {
			t.Fatalf("PhaseByName(%q) = %v, %v", name, back, ok)
		}
	}
	if Phase(200).String() != "unknown" {
		t.Fatal("out-of-range phase must print unknown")
	}
	for k := Cold; k < numStartKinds; k++ {
		back, ok := startKindByName(k.String())
		if !ok || back != k {
			t.Fatalf("startKindByName(%q) failed", k.String())
		}
	}
}
