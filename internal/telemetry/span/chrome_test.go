package span

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"github.com/faasmem/faasmem/internal/simtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder replays a tiny deterministic workload — one cold start
// with a backlogged stall, a clean warm hit, a queued request on a second
// container, and offload/rollback background work — so the golden file pins
// the exporter's schema without depending on simulator behaviour.
func goldenRecorder() *Recorder {
	r := NewRecorder(16)
	r.Record(coldInv("web", "web#1", 0))
	r.Record(warmInv("web", "web#1", simtime.Time(sec(20)), 0.25, 0))
	queued := warmInv("web", "web#2", simtime.Time(sec(40.5)), 0.8, 0.05)
	queued.Kind = Queued
	queued.Root.Start = simtime.Time(sec(40))
	queued.Root.Dur = sec(1.3)
	queued.Root.Children = append([]Span{
		{Phase: PhaseQueue, Start: simtime.Time(sec(40)), Dur: sec(0.5)},
	}, queued.Root.Children...)
	r.Record(queued)
	r.RecordBackground(Background{
		Kind: BGOffload, Function: "web", Container: "web#1",
		Start: simtime.Time(sec(25)), Dur: sec(0.12), Bytes: 6 << 20,
	})
	r.RecordBackground(Background{
		Kind: BGRollback, Function: "web", Container: "web#1",
		Start: simtime.Time(sec(35)), Bytes: 2 << 20,
	})
	r.RecordBackground(Background{
		Kind: BGSemiWarm, Function: "web", Container: "web#1",
		Start: simtime.Time(sec(26)), Dur: sec(9), Bytes: 6 << 20,
	})
	return r
}

func TestSpanChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenRecorder()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "spantrace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("span trace schema drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSpanChromeTraceRoundTrip is the exporter-coverage satellite: duration
// -event nesting must survive export → import, rebuilding identical trees
// (and therefore identical attribution).
func TestSpanChromeTraceRoundTrip(t *testing.T) {
	rec := goldenRecorder()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	invs, bgs, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Invocations()
	if !reflect.DeepEqual(invs, want) {
		t.Fatalf("invocations did not round-trip.\ngot:  %+v\nwant: %+v", invs, want)
	}
	// The writer sorts by start time; compare against the same order.
	wantBG := rec.Backgrounds()
	sort.SliceStable(wantBG, func(i, j int) bool { return wantBG[i].Start < wantBG[j].Start })
	if !reflect.DeepEqual(bgs, wantBG) {
		t.Fatalf("backgrounds did not round-trip.\ngot:  %+v\nwant: %+v", bgs, wantBG)
	}
	if !reflect.DeepEqual(Analyze(invs), Analyze(want)) {
		t.Fatal("attribution differs after round trip")
	}
}

func TestSpanChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenRecorder()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter must emit valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	var durations, backgrounds int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev["ph"] == "X" && ev["cat"] == "span":
			durations++
		case ev["ph"] == "X" && ev["cat"] == "background":
			backgrounds++
		case ev["ph"] == "X":
			t.Fatalf("uncategorised duration event %v", ev)
		}
	}
	// 3 invocations: cold tree has 6 spans, warm has 2, queued has 4.
	if durations != 12 {
		t.Fatalf("duration events = %d, want 12", durations)
	}
	if backgrounds != 3 {
		t.Fatalf("background events = %d, want 3", backgrounds)
	}
}

func TestReadChromeTraceFileMissing(t *testing.T) {
	if _, _, err := ReadChromeTraceFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
