// Package span is the causal layer on top of the flat event tracer: it
// records one *span tree* per completed invocation — request queueing,
// cold-start launch, init, execution, with child spans for remote-fault
// stalls, link-backlog waits, and semi-warm restores — plus the background
// link work (Pucket offloads, rollback re-offloads, semi-warm drains) that
// competes with those stalls for wire time.
//
// The package answers the question the paper's latency claims hinge on
// (Fig. 2's DAMON latency damage, Fig. 12's memory-vs-latency headline,
// §6.1's semi-warm P99): *which phase does each percentile of end-to-end
// latency come from?* The attribution engine in attrib.go turns recorded
// trees into per-phase P50/P95/P99 breakdowns whose columns sum back to the
// end-to-end latency they decompose.
//
// Design constraints match the tracer's:
//
//   - The disabled path is free. A nil *Recorder is a fully functional
//     no-op; platform call sites guard tree *construction* with Enabled()
//     and pay only a nil check per request when spans are off (verified by
//     BenchmarkDisabledSpans and TestDisabledSpansZeroAlloc).
//   - Bounded memory. Completed invocations and background spans live in
//     fixed-capacity rings; multi-hour runs overwrite the oldest.
//   - Virtual time only. Every timestamp is simtime.Time, so the span trees
//     of a seeded run are bit-identical across machines and worker widths.
package span

import (
	"sync"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Phase labels one segment of an invocation's critical path.
type Phase uint8

// The phases of an invocation, in causal order. PhaseOther absorbs any
// residue a parent span's children do not cover, keeping phase sums exactly
// equal to end-to-end latency.
const (
	// PhaseOther is uncovered parent time (normally zero).
	PhaseOther Phase = iota
	// PhaseRequest is the root span: request arrival to completion.
	PhaseRequest
	// PhaseQueue is time spent waiting for a container behind the
	// scale-out cap.
	PhaseQueue
	// PhaseLaunch is the cold-start runtime-load phase.
	PhaseLaunch
	// PhaseInit is the cold-start function-initialization phase.
	PhaseInit
	// PhaseExec is the execution phase (its self-time is pure compute).
	PhaseExec
	// PhaseFaultStall is a remote-fault stall on the critical path of a
	// warm or cold request.
	PhaseFaultStall
	// PhaseRestore is a remote-fault stall recalling pages a semi-warm
	// container had offloaded — the §6 semi-warm restore cost.
	PhaseRestore
	// PhaseBacklog is the share of a stall attributable to link queueing:
	// offload/rollback backlog occupying the wire past its saturation point.
	PhaseBacklog
	// PhaseRetry is the backoff wait a request spent retrying page fetches
	// against an unhealthy pool link (fault-injection recovery).
	PhaseRetry
	// PhaseFallback is the local-swap read time serving pages whose pool
	// fetch timed out (fault-injection recovery).
	PhaseFallback
	// PhaseStateIn is the time a workflow stage spent mapping its upstream
	// shared-state region from the pool (state-passing input latency).
	PhaseStateIn
	// PhaseStateOut is the time a workflow stage spent producing its output
	// region into the pool (or re-initializing state when pool-backed
	// passing is off or the region was lost).
	PhaseStateOut
	// NumPhases bounds Phase-indexed arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseOther:      "other",
	PhaseRequest:    "request",
	PhaseQueue:      "queue",
	PhaseLaunch:     "launch",
	PhaseInit:       "init",
	PhaseExec:       "exec",
	PhaseFaultStall: "fault-stall",
	PhaseRestore:    "restore",
	PhaseBacklog:    "backlog",
	PhaseRetry:      "retry",
	PhaseFallback:   "fallback",
	PhaseStateIn:    "state-in",
	PhaseStateOut:   "state-out",
}

// String names the phase for tables and trace viewers.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseByName returns the phase with the given String(), or (PhaseOther,
// false) for unknown names.
func PhaseByName(name string) (Phase, bool) {
	for p, n := range phaseNames {
		if n == name {
			return Phase(p), true
		}
	}
	return PhaseOther, false
}

// StartKind mirrors the platform's request start paths (faas.StartKind
// values, in the same order) without importing the platform.
type StartKind uint8

// The start kinds.
const (
	// Cold launched a fresh container.
	Cold StartKind = iota
	// Warm reused an idle container with its hot set local.
	Warm
	// SemiWarm reused a container that had offloaded part of its memory.
	SemiWarm
	// Queued waited for a busy container under a scale-out cap.
	Queued
	numStartKinds
)

var startKindNames = [numStartKinds]string{
	Cold: "cold", Warm: "warm", SemiWarm: "semi-warm", Queued: "queued",
}

// String names the start kind.
func (k StartKind) String() string {
	if int(k) < len(startKindNames) {
		return startKindNames[k]
	}
	return "unknown"
}

// startKindByName is the inverse of StartKind.String.
func startKindByName(name string) (StartKind, bool) {
	for k, n := range startKindNames {
		if n == name {
			return StartKind(k), true
		}
	}
	return 0, false
}

// Span is one node of an invocation's tree: a phase occupying [Start,
// Start+Dur) of the virtual timeline. Children must lie within their parent;
// a parent's *self time* is its duration minus its children's.
type Span struct {
	// Phase labels the segment.
	Phase Phase `json:"phase"`
	// Start is the span's virtual start time.
	Start simtime.Time `json:"start"`
	// Dur is the span length.
	Dur time.Duration `json:"dur"`
	// Pages is the phase-specific quantity: faulted+readahead pages for
	// stalls/restores, bytes queued on the link for backlog waits.
	Pages int64 `json:"pages,omitempty"`
	// Children are the nested sub-spans, in start order.
	Children []Span `json:"children,omitempty"`
}

// End returns the span's virtual end time.
func (s Span) End() simtime.Time { return s.Start + simtime.Time(s.Dur) }

// SelfDur returns the span's duration not covered by its children. It can
// go negative if children overlap their parent's edges; attribution keeps
// the raw value so phase sums stay exact.
func (s Span) SelfDur() time.Duration {
	d := s.Dur
	for _, c := range s.Children {
		d -= c.Dur
	}
	return d
}

// Invocation is one completed request's span tree.
type Invocation struct {
	// Function and Container identify where the request ran.
	Function  string `json:"function"`
	Container string `json:"container"`
	// Kind is the start path the request took.
	Kind StartKind `json:"kind"`
	// Root is the request span (arrival → completion); its children are the
	// phases.
	Root Span `json:"root"`
}

// Total is the invocation's end-to-end latency.
func (inv Invocation) Total() time.Duration { return inv.Root.Dur }

// BackgroundKind labels link work not on any single request's critical path.
type BackgroundKind uint8

// The background span kinds.
const (
	// BGOffload is a bulk offload transfer occupying the link (§5.1 reactive,
	// §5.2 window-based, and post-rollback re-offloads).
	BGOffload BackgroundKind = iota
	// BGRollback is a §5.3 rollback cycle demoting hot-pool pages (local
	// work, but it seeds the next offload wave).
	BGRollback
	// BGSemiWarm is a completed §6 semi-warm drain period.
	BGSemiWarm
	numBGKinds
)

var bgKindNames = [numBGKinds]string{
	BGOffload: "offload", BGRollback: "rollback", BGSemiWarm: "semi-warm",
}

// String names the background kind.
func (k BackgroundKind) String() string {
	if int(k) < len(bgKindNames) {
		return bgKindNames[k]
	}
	return "unknown"
}

// Background is one span of link-occupying (or link-seeding) policy work.
type Background struct {
	// Kind labels the work.
	Kind BackgroundKind `json:"kind"`
	// Function and Container identify the origin.
	Function  string `json:"function"`
	Container string `json:"container"`
	// Start and Dur place the work on the virtual timeline (Dur 0 for
	// instantaneous bookkeeping like rollbacks).
	Start simtime.Time  `json:"start"`
	Dur   time.Duration `json:"dur"`
	// Bytes is the data volume involved.
	Bytes int64 `json:"bytes"`
}

// DefaultCapacity is the invocation-ring size used when none is given.
const DefaultCapacity = 1 << 15

// Recorder collects completed invocation trees and background spans into
// fixed-capacity rings. A nil *Recorder is the disabled recorder: every
// method is a zero-allocation no-op, so the platform instruments
// unconditionally. Construct with NewRecorder.
type Recorder struct {
	mu      sync.Mutex
	invs    []Invocation
	next    int
	total   uint64
	bg      []Background
	bgNext  int
	bgTotal uint64
}

// NewRecorder creates a recorder holding at most capacity invocations (and
// as many background spans); capacity <= 0 selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		invs: make([]Invocation, 0, capacity),
		bg:   make([]Background, 0, capacity),
	}
}

// Enabled reports whether the recorder stores anything. It is the documented
// guard for work that exists only to build a span tree.
func (r *Recorder) Enabled() bool { return r != nil }

// Record stores one completed invocation, overwriting the oldest once the
// ring is full. Safe for concurrent use; no-op on a nil recorder.
func (r *Recorder) Record(inv Invocation) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.invs) < cap(r.invs) {
		r.invs = append(r.invs, inv)
	} else {
		r.invs[r.next] = inv
		r.next++
		if r.next == len(r.invs) {
			r.next = 0
		}
	}
	r.total++
	r.mu.Unlock()
}

// RecordBackground stores one background span, same ring semantics as
// Record. No-op on a nil recorder.
func (r *Recorder) RecordBackground(bg Background) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.bg) < cap(r.bg) {
		r.bg = append(r.bg, bg)
	} else {
		r.bg[r.bgNext] = bg
		r.bgNext++
		if r.bgNext == len(r.bg) {
			r.bgNext = 0
		}
	}
	r.bgTotal++
	r.mu.Unlock()
}

// Len returns the number of invocations currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.invs)
}

// Total returns how many invocations were ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many invocations the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.invs))
}

// Invocations returns a copy of the held invocations in recording order
// (completion order on the virtual clock within one engine).
func (r *Recorder) Invocations() []Invocation {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Invocation, 0, len(r.invs))
	if len(r.invs) == cap(r.invs) {
		out = append(out, r.invs[r.next:]...)
		out = append(out, r.invs[:r.next]...)
	} else {
		out = append(out, r.invs...)
	}
	return out
}

// Backgrounds returns a copy of the held background spans in recording
// order.
func (r *Recorder) Backgrounds() []Background {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Background, 0, len(r.bg))
	if len(r.bg) == cap(r.bg) {
		out = append(out, r.bg[r.bgNext:]...)
		out = append(out, r.bg[:r.bgNext]...)
	} else {
		out = append(out, r.bg...)
	}
	return out
}

// Cap returns the invocation-ring capacity (0 on nil), so a shard recorder
// can be sized like the sink it will merge into.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.invs)
}

// MergeFrom appends src's retained invocations and background spans to r in
// their recorded order and carries src's drop counts over, so shard
// recorders folded back into a shared sink in a fixed order yield the same
// rings a serial run would. No-op when either side is nil or both are the
// same recorder.
func (r *Recorder) MergeFrom(src *Recorder) {
	if r == nil || src == nil || r == src {
		return
	}
	droppedInvs := src.Dropped()
	src.mu.Lock()
	droppedBG := src.bgTotal - uint64(len(src.bg))
	src.mu.Unlock()
	for _, inv := range src.Invocations() {
		r.Record(inv)
	}
	for _, bg := range src.Backgrounds() {
		r.RecordBackground(bg)
	}
	if droppedInvs > 0 || droppedBG > 0 {
		r.mu.Lock()
		r.total += droppedInvs
		r.bgTotal += droppedBG
		r.mu.Unlock()
	}
}

// Reset drops all held spans and counters, keeping capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.invs = r.invs[:0]
	r.next = 0
	r.total = 0
	r.bg = r.bg[:0]
	r.bgNext = 0
	r.bgTotal = 0
	r.mu.Unlock()
}

var defaultRec struct {
	mu sync.RWMutex
	r  *Recorder
}

// SetDefault installs the process-wide fallback recorder, mirroring
// telemetry.SetDefault: cmd/experiments' -attrib flag wires it here so every
// harness records spans without threading a recorder through each figure.
func SetDefault(r *Recorder) {
	defaultRec.mu.Lock()
	defaultRec.r = r
	defaultRec.mu.Unlock()
}

// Default returns the process-wide fallback recorder (nil when unset).
func Default() *Recorder {
	defaultRec.mu.RLock()
	defer defaultRec.mu.RUnlock()
	return defaultRec.r
}

// OrDefault returns r when non-nil and the process default otherwise.
func (r *Recorder) OrDefault() *Recorder {
	if r != nil {
		return r
	}
	return Default()
}
