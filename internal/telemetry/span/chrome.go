package span

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Chrome trace-event export of span trees: every span becomes a complete
// ("X") duration event on its container's track, with nesting expressed the
// way Perfetto expects — same tid, child intervals contained in the parent's
// — so invocations render as flame-style stacks. Background spans get a
// per-container "<id> bg" track. The exported file round-trips: ReadChromeTrace
// rebuilds the invocation trees by time containment, which is what the
// faasmem-stat CLI ingests.

type chromeSpanEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args *chromeSpanArgs `json:"args,omitempty"`
}

// chromeSpanArgs is a fixed struct (not a map) so field order — and
// therefore the exported bytes — is deterministic for golden files.
type chromeSpanArgs struct {
	Name     string `json:"name,omitempty"` // metadata events only
	Function string `json:"function,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Phase    string `json:"phase,omitempty"`
	Pages    int64  `json:"pages,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	StartNS  int64  `json:"start_ns,omitempty"`
	DurNS    int64  `json:"dur_ns,omitempty"`
}

type chromeSpanTrace struct {
	TraceEvents     []chromeSpanEvent `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

const chromeSpanPid = 2 // distinct from the flat tracer's pid 1

// WriteChromeTrace writes the recorder's invocation trees and background
// spans as Chrome trace-event JSON. Invocations are sorted by (root start,
// recording order) and tracks numbered in first-appearance order, so a
// seeded run exports byte-stable output. Besides the µs timestamps the
// viewer needs, each event carries exact integer-ns start/dur args; the
// reader prefers those, making the round trip lossless.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	invs := r.Invocations()
	bgs := r.Backgrounds()
	sort.SliceStable(invs, func(i, j int) bool { return invs[i].Root.Start < invs[j].Root.Start })
	sort.SliceStable(bgs, func(i, j int) bool { return bgs[i].Start < bgs[j].Start })

	out := chromeSpanTrace{
		TraceEvents:     make([]chromeSpanEvent, 0, len(invs)*4+len(bgs)+8),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeSpanEvent{
		Name: "process_name", Ph: "M", Pid: chromeSpanPid,
		Args: &chromeSpanArgs{Name: "faasmem spans"},
	})

	tids := map[string]int{}
	tidOf := func(track string) int {
		if track == "" {
			track = "sim"
		}
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		out.TraceEvents = append(out.TraceEvents, chromeSpanEvent{
			Name: "thread_name", Ph: "M", Pid: chromeSpanPid, Tid: id,
			Args: &chromeSpanArgs{Name: track},
		})
		return id
	}

	var emit func(s Span, tid int, inv *Invocation, root bool)
	emit = func(s Span, tid int, inv *Invocation, root bool) {
		name := s.Phase.String()
		args := &chromeSpanArgs{
			Phase:   s.Phase.String(),
			Pages:   s.Pages,
			StartNS: int64(s.Start),
			DurNS:   int64(s.Dur),
		}
		if root {
			name = "request:" + inv.Kind.String()
			args.Function = inv.Function
			args.Kind = inv.Kind.String()
		}
		out.TraceEvents = append(out.TraceEvents, chromeSpanEvent{
			Name: name, Cat: "span", Ph: "X",
			Ts: float64(s.Start) / 1e3, Dur: float64(s.Dur) / 1e3, // ns → µs
			Pid: chromeSpanPid, Tid: tid, Args: args,
		})
		for _, c := range s.Children {
			emit(c, tid, inv, false)
		}
	}
	for i := range invs {
		inv := &invs[i]
		emit(inv.Root, tidOf(inv.Container), inv, true)
	}
	for _, bg := range bgs {
		out.TraceEvents = append(out.TraceEvents, chromeSpanEvent{
			Name: "bg:" + bg.Kind.String(), Cat: "background", Ph: "X",
			Ts: float64(bg.Start) / 1e3, Dur: float64(bg.Dur) / 1e3,
			Pid: chromeSpanPid, Tid: tidOf(bg.Container + " bg"),
			Args: &chromeSpanArgs{
				Function: bg.Function,
				Kind:     bg.Kind.String(),
				Bytes:    bg.Bytes,
				StartNS:  int64(bg.Start),
				DurNS:    int64(bg.Dur),
			},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteChromeTraceFile writes the span trace to path, creating or
// truncating it.
func WriteChromeTraceFile(path string, r *Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadChromeTrace parses span trace-event JSON produced by WriteChromeTrace
// back into invocation trees and background spans. Nesting is rebuilt by
// time containment within each track, the same rule Perfetto uses to draw
// the stacks, so export → import → Analyze gives identical attribution.
func ReadChromeTrace(rd io.Reader) ([]Invocation, []Background, error) {
	var tr chromeSpanTrace
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&tr); err != nil {
		return nil, nil, fmt.Errorf("span: parse chrome trace: %w", err)
	}
	tracks := map[int]string{}
	type rawSpan struct {
		ev  chromeSpanEvent
		pos int
	}
	perTid := map[int][]rawSpan{}
	var bgs []Background
	tidOrder := []int{}
	for i, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "M":
			if ev.Args != nil && ev.Name == "thread_name" {
				tracks[ev.Tid] = ev.Args.Name
			}
		case ev.Ph == "X" && ev.Cat == "background":
			bg := Background{Container: trimBGTrack(tracks[ev.Tid])}
			if ev.Args != nil {
				if k, ok := bgKindByName(ev.Args.Kind); ok {
					bg.Kind = k
				}
				bg.Function = ev.Args.Function
				bg.Bytes = ev.Args.Bytes
				bg.Start = simtime.Time(ev.Args.StartNS)
				bg.Dur = time.Duration(ev.Args.DurNS)
			}
			bgs = append(bgs, bg)
		case ev.Ph == "X":
			if _, ok := perTid[ev.Tid]; !ok {
				tidOrder = append(tidOrder, ev.Tid)
			}
			perTid[ev.Tid] = append(perTid[ev.Tid], rawSpan{ev: ev, pos: i})
		}
	}

	var invs []Invocation
	for _, tid := range tidOrder {
		raws := perTid[tid]
		// Containment nesting: sort by (start asc, end desc) so parents
		// precede their children, then fold with a stack.
		sort.SliceStable(raws, func(a, b int) bool {
			sa, sb := raws[a].ev.Args.StartNS, raws[b].ev.Args.StartNS
			if sa != sb {
				return sa < sb
			}
			ea := sa + raws[a].ev.Args.DurNS
			eb := sb + raws[b].ev.Args.DurNS
			if ea != eb {
				return ea > eb
			}
			return raws[a].pos < raws[b].pos
		})
		type frame struct {
			span *Span
			end  int64
			inv  *Invocation
		}
		var stack []frame
		for _, rs := range raws {
			a := rs.ev.Args
			if a == nil {
				continue
			}
			s := Span{
				Start: simtime.Time(a.StartNS),
				Dur:   time.Duration(a.DurNS),
				Pages: a.Pages,
			}
			if p, ok := PhaseByName(a.Phase); ok {
				s.Phase = p
			}
			end := a.StartNS + a.DurNS
			for len(stack) > 0 && (a.StartNS >= stack[len(stack)-1].end ||
				end > stack[len(stack)-1].end) {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				inv := Invocation{Container: tracks[tid], Root: s}
				inv.Function = a.Function
				if k, ok := startKindByName(a.Kind); ok {
					inv.Kind = k
				}
				invs = append(invs, inv)
				root := &invs[len(invs)-1]
				stack = append(stack, frame{span: &root.Root, end: end, inv: root})
				continue
			}
			parent := stack[len(stack)-1].span
			parent.Children = append(parent.Children, s)
			child := &parent.Children[len(parent.Children)-1]
			stack = append(stack, frame{span: child, end: end, inv: stack[len(stack)-1].inv})
		}
	}
	// Restore recording order across tracks (root start, then input order is
	// already preserved per track; merge stably by start time).
	sort.SliceStable(invs, func(i, j int) bool { return invs[i].Root.Start < invs[j].Root.Start })
	return invs, bgs, nil
}

// ReadChromeTraceFile parses a span trace file.
func ReadChromeTraceFile(path string) ([]Invocation, []Background, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadChromeTrace(f)
}

func bgKindByName(name string) (BackgroundKind, bool) {
	for k, n := range bgKindNames {
		if n == name {
			return BackgroundKind(k), true
		}
	}
	return 0, false
}

func trimBGTrack(track string) string {
	const suffix = " bg"
	if len(track) > len(suffix) && track[len(track)-len(suffix):] == suffix {
		return track[:len(track)-len(suffix)]
	}
	return track
}
