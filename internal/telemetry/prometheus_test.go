package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("faasmem_requests_total", "completed requests").Add(42)
	r.Gauge("faasmem_live_containers", "live containers").Set(3)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := "# HELP faasmem_live_containers live containers\n" +
		"# TYPE faasmem_live_containers gauge\n" +
		"faasmem_live_containers 3\n" +
		"# HELP faasmem_requests_total completed requests\n" +
		"# TYPE faasmem_requests_total counter\n" +
		"faasmem_requests_total 42\n"
	if b.String() != want {
		t.Fatalf("exposition format drifted:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestWritePrometheusEmptyAndNil(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, NewRegistry()); err != nil || b.Len() != 0 {
		t.Fatalf("empty registry: err=%v out=%q", err, b.String())
	}
	var nilReg *Registry
	if err := WritePrometheus(&b, nilReg); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, b.String())
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"two\nlines", `two\nlines`},
		{"\\\"\n", `\\\"\n`},
		{"", ""},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Inc()
	srv := httptest.NewServer(PrometheusHandler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 1") {
		t.Fatalf("body = %q", buf[:n])
	}
}
