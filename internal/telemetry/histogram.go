package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// DefBuckets are the default histogram upper bounds, chosen to resolve
// request latencies in seconds from 5 ms to 10 s (the Prometheus client
// defaults, which downstream dashboards expect).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket distribution metric. Like *Metric, a nil
// *Histogram (from a nil Registry) absorbs observations for free, so
// subsystems observe unconditionally.
type Histogram struct {
	name  string
	help  string
	upper []float64 // sorted, exclusive of +Inf

	mu     sync.Mutex
	counts []int64 // per-bucket (non-cumulative), len(upper)+1 with +Inf last
	sum    float64
	count  int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistBucket is one cumulative bucket of a histogram snapshot.
type HistBucket struct {
	// Upper is the bucket's inclusive upper bound (the `le` label).
	Upper float64
	// Count is the cumulative count of observations <= Upper.
	Count int64
}

// HistSample is one histogram's state at snapshot time.
type HistSample struct {
	// Name and Help identify the histogram.
	Name string
	Help string
	// Buckets are cumulative, ascending by Upper, excluding +Inf (whose
	// cumulative count is Count).
	Buckets []HistBucket
	// Sum is the sum of all observed values.
	Sum float64
	// Count is the total number of observations.
	Count int64
}

// snapshot reads the histogram at one instant.
func (h *Histogram) snapshot() HistSample {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSample{Name: h.name, Help: h.help, Sum: h.sum, Count: h.count}
	s.Buckets = make([]HistBucket, len(h.upper))
	var cum int64
	for i, u := range h.upper {
		cum += h.counts[i]
		s.Buckets[i] = HistBucket{Upper: u, Count: cum}
	}
	return s
}

// Histogram returns the named histogram, creating it on first use with the
// given upper bounds (nil or empty selects DefBuckets). Registration is
// idempotent by name; re-registering a scalar metric's name as a histogram
// panics, matching the counter/gauge type-conflict rule.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as histogram, was %v", name, m.typ))
	}
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	h := &Histogram{
		name:   name,
		help:   help,
		upper:  upper,
		counts: make([]int64, len(upper)+1),
	}
	r.hists[name] = h
	r.histOrder = append(r.histOrder, h)
	return h
}

// HistSnapshot reads every histogram at one instant, sorted by name.
func (r *Registry) HistSnapshot() []HistSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make([]*Histogram, len(r.histOrder))
	copy(hists, r.histOrder)
	r.mu.Unlock()
	out := make([]HistSample, len(hists))
	for i, h := range hists {
		out[i] = h.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
