package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteText renders the tracer's events as an aligned human-readable log,
// one line per event in virtual-time order — the quick look the -trace flag
// gives without leaving the terminal.
func WriteText(w io.Writer, t *Tracer) error {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		if _, err := fmt.Fprintln(w, formatEvent(ev)); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "... %d earlier events dropped (ring capacity %d)\n", d, t.Len()); err != nil {
			return err
		}
	}
	return nil
}

func formatEvent(ev Event) string {
	s := fmt.Sprintf("[%14.6fs] %-18s %-20s", ev.At.Seconds(), ev.Kind, ev.Actor)
	if ev.Fn != "" {
		s += " fn=" + ev.Fn
	}
	if ev.Stage != StageNone {
		s += " stage=" + ev.Stage.String()
	}
	if ev.Value != 0 {
		s += fmt.Sprintf(" value=%d", ev.Value)
	}
	if ev.Aux != 0 {
		s += fmt.Sprintf(" aux=%d", ev.Aux)
	}
	if ev.Dur > 0 {
		s += fmt.Sprintf(" dur=%s", ev.Dur.Round(time.Microsecond))
	}
	return s
}
