// Package telemetry is the simulator's zero-dependency observability layer:
// typed, timestamped event tracing on the virtual clock plus a registry of
// live counters and gauges, with exporters for Chrome trace-event JSON
// (Perfetto / chrome://tracing), Prometheus text format, and human-readable
// dumps.
//
// Design constraints, in order:
//
//   - The disabled path must be free. A nil *Tracer and nil *Metric are
//     fully functional no-ops, so subsystems instrument unconditionally and
//     pay a nil check — zero allocations, no branches on config structs —
//     when telemetry is off (verified by BenchmarkDisabledTracer and
//     TestDisabledTracerZeroAlloc).
//   - Bounded memory. The Tracer is a fixed-capacity ring: once full, the
//     oldest events are overwritten and counted in Dropped, so tracing a
//     multi-hour simulation cannot exhaust the host.
//   - Safe to share. The DES engine is single-threaded, but exporters run
//     outside it (the gateway's /metrics handler, cmd/experiments' parallel
//     workers), so the Tracer takes a mutex per record and metrics are
//     atomics.
//
// Events carry virtual timestamps (simtime.Time); nothing in this package
// reads the wall clock, so traces of a seeded run are bit-identical across
// machines.
package telemetry

import (
	"sync"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Kind is the type of a traced event. Each kind maps to one mechanism of the
// paper (see DESIGN.md's Observability section for the full mapping).
type Kind uint8

// The event kinds emitted by the simulator.
const (
	// KindNone is the zero Kind; it is never emitted.
	KindNone Kind = iota
	// KindContainerLaunch marks a cold-started container coming into
	// existence.
	KindContainerLaunch
	// KindRuntimeLoaded spans the runtime-load phase of a cold start and
	// coincides with the Runtime–Init time barrier.
	KindRuntimeLoaded
	// KindInitDone spans function initialization and coincides with the
	// Init–Execution time barrier.
	KindInitDone
	// KindRequest spans one request execution (start → completion). Value is
	// the request's remote fault count; Aux encodes the start kind
	// (cold/warm/semi-warm/queued, the faas.StartKind values).
	KindRequest
	// KindRequestQueued marks a request queued behind the scale-out cap.
	KindRequestQueued
	// KindContainerIdle marks a container entering keep-alive.
	KindContainerIdle
	// KindContainerRecycle marks keep-alive expiry tearing a container down.
	// Value is the remote bytes discarded with it.
	KindContainerRecycle
	// KindContainerEvict marks a forced recycle by the node memory limit.
	KindContainerEvict
	// KindBarrierInsert marks a Pucket time barrier (an MGLRU generation
	// seal). Stage names the sealed segment; Value is the pages stamped.
	KindBarrierInsert
	// KindPageOffload marks pages moving local → pool. Stage names the
	// segment the pages belong to; Value is the page count.
	KindPageOffload
	// KindPucketOffload marks a Pucket draining its inactive list (the §5.1
	// reactive and §5.2 window-based offloads). Value is the pages moved;
	// Aux is the backing MGLRU generation.
	KindPucketOffload
	// KindPageFault spans a remote-fault stall on a request's critical path.
	// Value is the faulting page count; Aux is the readahead pages recalled
	// alongside.
	KindPageFault
	// KindRollback marks a §5.3 periodic rollback demoting hot-pool pages
	// back to their Puckets. Value is the pages rolled back.
	KindRollback
	// KindWindowFixed marks the §5.2 request-window being sealed. Value is
	// the chosen window size.
	KindWindowFixed
	// KindSemiWarmEnter marks a container entering the §6 semi-warm period.
	KindSemiWarmEnter
	// KindSemiWarmExit spans the completed semi-warm period (enter → reuse
	// or recycle).
	KindSemiWarmExit
	// KindLinkTransfer spans a bulk transfer occupying the pool link. Value
	// is the bytes moved; Aux is the rmem.Direction (0 offload, 1 recall).
	KindLinkTransfer
	// KindLinkSaturation marks a fault served while link utilization was
	// past the saturation point. Value is utilization in percent.
	KindLinkSaturation
	// KindSwapFull marks a swap-device allocation that was truncated for
	// lack of free slots. Value is the pages denied.
	KindSwapFull
	// KindFaultWindow spans one scheduled fault-plan window. Aux is the
	// faultinject.Kind; Value is the severity factor ×100 (0 for binary
	// kinds).
	KindFaultWindow
	// KindDegradedEnter marks the pool entering degraded mode (link down
	// or pool node crashed): offload paused, AcceptableBytes clamped.
	KindDegradedEnter
	// KindDegradedExit marks the pool leaving degraded mode.
	KindDegradedExit
	// KindFetchRetry marks one backoff retry of a failed page fetch. Value
	// is the attempt number; Aux is the backoff wait in microseconds.
	KindFetchRetry
	// KindFetchTimeout marks a page fetch abandoned after exhausting its
	// retry budget or per-container timeout. Value is the page count.
	KindFetchTimeout
	// KindLocalFallback marks a timed-out fetch served from the local swap
	// copy instead of the pool. Value is the pages read locally.
	KindLocalFallback
	// KindColdReinit marks a container discarded and cold re-initialized
	// because its remote pages were unreachable past the fetch timeout.
	KindColdReinit
	numKinds
)

var kindNames = [numKinds]string{
	KindNone:             "none",
	KindContainerLaunch:  "container-launch",
	KindRuntimeLoaded:    "runtime-loaded",
	KindInitDone:         "init-done",
	KindRequest:          "request",
	KindRequestQueued:    "request-queued",
	KindContainerIdle:    "container-idle",
	KindContainerRecycle: "container-recycle",
	KindContainerEvict:   "container-evict",
	KindBarrierInsert:    "barrier-insert",
	KindPageOffload:      "page-offload",
	KindPucketOffload:    "pucket-offload",
	KindPageFault:        "page-fault",
	KindRollback:         "rollback",
	KindWindowFixed:      "window-fixed",
	KindSemiWarmEnter:    "semiwarm-enter",
	KindSemiWarmExit:     "semiwarm-exit",
	KindLinkTransfer:     "link-transfer",
	KindLinkSaturation:   "link-saturation",
	KindSwapFull:         "swap-full",
	KindFaultWindow:      "fault-window",
	KindDegradedEnter:    "degraded-enter",
	KindDegradedExit:     "degraded-exit",
	KindFetchRetry:       "fetch-retry",
	KindFetchTimeout:     "fetch-timeout",
	KindLocalFallback:    "local-fallback",
	KindColdReinit:       "cold-reinit",
}

// String names the kind for dumps and trace viewers.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Stage labels which lifecycle segment of a container an event concerns —
// the paper's Runtime Pucket, Init Pucket, or unmonitored execution segment.
type Stage uint8

// The lifecycle stages.
const (
	// StageNone is for events without a segment association.
	StageNone Stage = iota
	// StageRuntime is the runtime segment (Runtime Pucket).
	StageRuntime
	// StageInit is the init segment (Init Pucket).
	StageInit
	// StageExec is the unmonitored execution segment.
	StageExec
	// StageShared is a shared-state region segment (pool-backed workflow
	// state; mirrors memnode.ClassShared).
	StageShared
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageRuntime:
		return "runtime"
	case StageInit:
		return "init"
	case StageExec:
		return "exec"
	case StageShared:
		return "shared"
	default:
		return ""
	}
}

// Event is one traced occurrence on the virtual timeline. Events with
// Dur > 0 are spans (At is the span start); events with Dur == 0 are
// instants.
type Event struct {
	// At is the event's virtual time (span start for durable events).
	At simtime.Time
	// Dur is the span length, 0 for instant events.
	Dur time.Duration
	// Value is the kind-specific primary quantity (pages, bytes, window…).
	Value int64
	// Aux is the kind-specific secondary quantity.
	Aux int64
	// Actor is the track the event belongs to: a container ID, "link", or
	// "node".
	Actor string
	// Fn is the function the event concerns, if any.
	Fn string
	// Kind is the event type.
	Kind Kind
	// Stage is the lifecycle segment the event concerns, if any.
	Stage Stage
}

// DefaultCapacity is the tracer ring size used when none is given: 64 Ki
// events ≈ 4.5 MB.
const DefaultCapacity = 1 << 16

// Tracer records events into a fixed-capacity ring. A nil *Tracer is the
// disabled tracer: Record is a zero-allocation no-op, so call sites never
// need to branch. Construct with NewTracer.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  int    // write position once the ring is full
	total uint64 // events ever recorded
}

// NewTracer creates a tracer holding at most capacity events; capacity <= 0
// selects DefaultCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Enabled reports whether the tracer records anything. It is the documented
// way to guard work that exists only to build an event (e.g. classifying
// offloaded pages by stage).
func (t *Tracer) Enabled() bool { return t != nil }

// Record stores one event, overwriting the oldest once the ring is full.
// Safe for concurrent use; no-op on a nil tracer.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
		}
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Total returns how many events were ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.ring))
}

// Events returns a copy of the held events in recording order. Exporters
// sort by At themselves: link-transfer spans are recorded at reservation
// time but may start later than subsequently recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Cap returns the ring capacity (0 on nil), so a shard tracer can be sized
// like the sink it will merge into.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// MergeFrom appends src's retained events to t in their recorded order and
// carries src's drop count over, so shard tracers folded back into a shared
// sink in a fixed order yield the same ring a serial run would. No-op when
// either side is nil or both are the same tracer.
func (t *Tracer) MergeFrom(src *Tracer) {
	if t == nil || src == nil || t == src {
		return
	}
	dropped := src.Dropped()
	for _, ev := range src.Events() {
		t.Record(ev)
	}
	if dropped > 0 {
		t.mu.Lock()
		t.total += dropped
		t.mu.Unlock()
	}
}

// Reset drops all held events and the drop counter, keeping the capacity.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.total = 0
	t.mu.Unlock()
}

// Hub bundles the tracer and metric registry a simulation is instrumented
// with. The zero Hub is fully disabled; either field may be nil
// independently.
type Hub struct {
	// Tracer receives events; nil disables tracing.
	Tracer *Tracer
	// Reg hosts counters and gauges; nil disables metrics.
	Reg *Registry
}

// Enabled reports whether any telemetry sink is attached.
func (h Hub) Enabled() bool { return h.Tracer != nil || h.Reg != nil }

var defaultHub struct {
	mu sync.RWMutex
	h  Hub
}

// SetDefault installs the process-wide fallback hub used by runs that were
// not given one explicitly (cmd/experiments wires its -trace flags here so
// every harness is captured without threading a hub through each figure).
func SetDefault(h Hub) {
	defaultHub.mu.Lock()
	defaultHub.h = h
	defaultHub.mu.Unlock()
}

// Default returns the process-wide fallback hub (zero Hub when unset).
func Default() Hub {
	defaultHub.mu.RLock()
	defer defaultHub.mu.RUnlock()
	return defaultHub.h
}

// OrDefault returns h when any sink is attached and the process default
// otherwise.
func (h Hub) OrDefault() Hub {
	if h.Enabled() {
		return h
	}
	return Default()
}
