package telemetry

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "request latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50) // lands in +Inf

	snaps := r.HistSnapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 0.05+0.5+0.5+5+50 {
		t.Fatalf("Sum = %v", s.Sum)
	}
	wantCum := []int64{1, 3, 4}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.Upper, b.Count, wantCum[i])
		}
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "", []float64{1})
	h.Observe(1) // le="1" is inclusive per the exposition format
	if got := r.HistSnapshot()[0].Buckets[0].Count; got != 1 {
		t.Fatalf("observation at the bound fell outside: count = %d", got)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var r *Registry
	h := r.Histogram("x", "", nil)
	if h != nil {
		t.Fatal("nil registry returned non-nil histogram")
	}
	h.Observe(1) // must not panic
	if h.Name() != "" {
		t.Fatal("nil histogram has a name")
	}
}

func TestHistogramIdempotentAndTypeConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h", "", nil)
	b := r.Histogram("h", "", []float64{1, 2})
	if a != b {
		t.Fatal("re-registration returned a different histogram")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("registering a counter over a histogram did not panic")
			}
		}()
		r.Counter("h", "")
	}()
	r.Counter("c", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("registering a histogram over a counter did not panic")
			}
		}()
		r.Histogram("c", "", nil)
	}()
}

// TestHistogramExpositionConformance checks the rendered text against the
// Prometheus text format 0.0.4 invariants: TYPE histogram, ascending
// cumulative buckets closed by le="+Inf" whose count equals _count, a _sum
// line, and name-sorted interleaving with scalar metrics.
func TestHistogramExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("aa_total", "before").Add(1)
	r.Counter("zz_total", "after").Add(2)
	h := r.Histogram("req_seconds", "request latency", []float64{0.25, 0.5, 1})
	h.Observe(0.1)
	h.Observe(0.3)
	h.Observe(2)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Block order is name-sorted across kinds.
	for _, pair := range [][2]string{{"aa_total", "req_seconds"}, {"req_seconds", "zz_total"}} {
		if strings.Index(out, pair[0]) > strings.Index(out, pair[1]) {
			t.Fatalf("blocks out of order (%s after %s):\n%s", pair[0], pair[1], out)
		}
	}
	if !strings.Contains(out, "# TYPE req_seconds histogram\n") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}

	// Parse the bucket lines and check cumulativity and the +Inf closure.
	bucketRe := regexp.MustCompile(`(?m)^req_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	matches := bucketRe.FindAllStringSubmatch(out, -1)
	if len(matches) != 4 {
		t.Fatalf("got %d bucket lines, want 4:\n%s", len(matches), out)
	}
	var prev int64 = -1
	for _, m := range matches {
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("buckets not cumulative: %v", matches)
		}
		prev = n
	}
	if matches[len(matches)-1][1] != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", matches[len(matches)-1][1])
	}
	if !strings.Contains(out, `req_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket count wrong:\n%s", out)
	}
	if !strings.Contains(out, "req_seconds_count 3\n") {
		t.Fatalf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, "req_seconds_sum 2.4\n") {
		t.Fatalf("missing or wrong _sum:\n%s", out)
	}
	// le label values render without exponents for typical bounds.
	if !strings.Contains(out, `le="0.25"`) || !strings.Contains(out, `le="1"`) {
		t.Fatalf("le formatting drifted:\n%s", out)
	}
}
