package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// labelEscaper implements the Prometheus text exposition format's label-value
// escaping: backslash, double quote, and line feed.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue escapes a string for inclusion inside a double-quoted
// Prometheus label value. Function names are caller-controlled (profiles
// files, Azure trace IDs) and may contain quotes, backslashes, or newlines.
func EscapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE lines followed by the samples, one
// metric per block. Scalar metrics and histograms interleave sorted by
// name; histograms expose cumulative `_bucket{le="..."}` lines (closed by
// le="+Inf"), `_sum`, and `_count`. All label values pass through
// EscapeLabelValue, the single escaping path for every exporter.
func WritePrometheus(w io.Writer, r *Registry) error {
	scalars := r.Snapshot()
	hists := r.HistSnapshot()
	writeScalar := func(s Sample) error {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", s.Name, s.Type, s.Name, s.Value)
		return err
	}
	writeHist := func(h HistSample) error {
		if h.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", h.Name, h.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := EscapeLabelValue(formatLabelFloat(b.Upper))
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.Name, formatLabelFloat(h.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count)
		return err
	}
	i, j := 0, 0
	for i < len(scalars) || j < len(hists) {
		if j >= len(hists) || (i < len(scalars) && scalars[i].Name < hists[j].Name) {
			if err := writeScalar(scalars[i]); err != nil {
				return err
			}
			i++
			continue
		}
		if err := writeHist(hists[j]); err != nil {
			return err
		}
		j++
	}
	return nil
}

// formatLabelFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, no exponent for typical bucket bounds.
func formatLabelFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusHandler serves the registry as a Prometheus scrape target —
// wire it at /metrics. Safe for concurrent use with running simulations:
// metric reads are atomic snapshots.
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
}
