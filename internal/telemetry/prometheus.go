package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// labelEscaper implements the Prometheus text exposition format's label-value
// escaping: backslash, double quote, and line feed.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue escapes a string for inclusion inside a double-quoted
// Prometheus label value. Function names are caller-controlled (profiles
// files, Azure trace IDs) and may contain quotes, backslashes, or newlines.
func EscapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE lines followed by the sample, one
// metric per block, sorted by name.
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", s.Name, s.Type, s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusHandler serves the registry as a Prometheus scrape target —
// wire it at /metrics. Safe for concurrent use with running simulations:
// metric reads are atomic snapshots.
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
}
