package exemplar

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/span"
)

// inv builds a minimal span tree identifying one request.
func inv(container, function string, dur time.Duration) span.Invocation {
	return span.Invocation{
		Function:  function,
		Container: container,
		Root:      span.Span{Phase: span.PhaseRequest, Dur: dur},
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(0, "n0", "web", time.Second, inv("c", "web", time.Second))
	r.Reset()
	if err := r.MergeFrom(NewRecorder(Config{})); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || r.Cells() != nil {
		t.Error("nil recorder retained state")
	}
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.Window() != DefaultWindow || r.K() != DefaultK {
		t.Error("nil recorder accessors differ from defaults")
	}
}

func TestDisabledExemplarsZeroAlloc(t *testing.T) {
	var r *Recorder
	tree := inv("c", "web", time.Second)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(0, "n0", "web", time.Second, tree)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTopKExact records latencies in scrambled order and checks the retained
// set is the exact worst-K under the total order, not an approximation.
func TestTopKExact(t *testing.T) {
	r := NewRecorder(Config{Window: 10 * time.Second, K: 3})
	lat := []int{7, 1, 9, 3, 9, 5, 2, 8} // two ties at 9
	for i, l := range lat {
		d := time.Duration(l) * time.Millisecond
		r.Record(simtime.Time(i)*simtime.Time(time.Millisecond), "n0", "web", d,
			inv("c", "web", d))
	}
	cells := r.Cells()
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	c := cells[0]
	if c.Count != int64(len(lat)) {
		t.Errorf("count = %d, want %d", c.Count, len(lat))
	}
	if len(c.Top) != 3 {
		t.Fatalf("top = %d entries, want 3", len(c.Top))
	}
	want := []time.Duration{9 * time.Millisecond, 9 * time.Millisecond, 8 * time.Millisecond}
	for i, e := range c.Top {
		if e.Latency != want[i] {
			t.Errorf("top[%d] = %v, want %v", i, e.Latency, want[i])
		}
	}
	// The 9ms tie breaks by completion time: the earlier record first.
	if c.Top[0].At >= c.Top[1].At {
		t.Errorf("tie not broken by time: %v vs %v", c.Top[0].At, c.Top[1].At)
	}
	if c.Typical == nil {
		t.Fatal("no typical exemplar")
	}
}

// TestMergeOrderInvariant shards one recording stream into every grouping of
// 1, 2, and 4 shards, merges each back in different orders, and requires
// bit-identical cells — the property the parallel scenario harness relies on.
func TestMergeOrderInvariant(t *testing.T) {
	cfg := Config{Window: 5 * time.Second, K: 2}
	type rec struct {
		at      simtime.Time
		node    string
		tenant  string
		latency time.Duration
	}
	rng := rand.New(rand.NewSource(7))
	var stream []rec
	for i := 0; i < 200; i++ {
		stream = append(stream, rec{
			at:      simtime.Time(rng.Int63n(int64(60 * time.Second))),
			node:    []string{"n0", "n1"}[rng.Intn(2)],
			tenant:  []string{"web", "bert", "json"}[rng.Intn(3)],
			latency: time.Duration(rng.Int63n(int64(2 * time.Second))),
		})
	}
	record := func(r *Recorder, x rec, i int) {
		r.Record(x.at, x.node, x.tenant, x.latency,
			inv("c", x.tenant, x.latency))
		_ = i
	}

	serial := NewRecorder(cfg)
	for i, x := range stream {
		record(serial, x, i)
	}
	want := serial.Cells()

	for _, shards := range []int{1, 2, 4} {
		sh := make([]*Recorder, shards)
		for i := range sh {
			sh[i] = NewRecorder(cfg)
		}
		for i, x := range stream {
			record(sh[i%shards], x, i)
		}
		sink := NewRecorder(cfg)
		// Merge in reverse order to stress order-independence.
		for i := len(sh) - 1; i >= 0; i-- {
			if err := sink.MergeFrom(sh[i]); err != nil {
				t.Fatal(err)
			}
		}
		if got := sink.Cells(); !reflect.DeepEqual(got, want) {
			t.Errorf("%d shards: merged cells differ from serial recording", shards)
		}
	}
}

// TestTypicalDeterministic re-records the same stream reversed; the
// hash-priority typical pick must not depend on arrival order.
func TestTypicalDeterministic(t *testing.T) {
	cfg := Config{Window: time.Minute, K: 1}
	build := func(reverse bool) *Cell {
		r := NewRecorder(cfg)
		n := 50
		for i := 0; i < n; i++ {
			j := i
			if reverse {
				j = n - 1 - i
			}
			d := time.Duration(j+1) * time.Millisecond
			r.Record(simtime.Time(j)*simtime.Time(time.Millisecond), "n0", "web", d,
				inv("c", "web", d))
		}
		cells := r.Cells()
		if len(cells) != 1 {
			t.Fatalf("cells = %d, want 1", len(cells))
		}
		return &cells[0]
	}
	fwd, rev := build(false), build(true)
	if !reflect.DeepEqual(fwd.Typical, rev.Typical) {
		t.Errorf("typical differs by arrival order: %+v vs %+v", fwd.Typical, rev.Typical)
	}
}

// TestMergeEdgeCases tables the defined-error paths: self-merge and
// mismatched configurations must error without mutating state; nil merges
// are no-ops.
func TestMergeEdgeCases(t *testing.T) {
	base := Config{Window: 10 * time.Second, K: 3}
	for _, tc := range []struct {
		name    string
		src     func(r *Recorder) *Recorder
		wantErr bool
	}{
		{"self", func(r *Recorder) *Recorder { return r }, true},
		{"window mismatch", func(*Recorder) *Recorder {
			return NewRecorder(Config{Window: 20 * time.Second, K: 3})
		}, true},
		{"k mismatch", func(*Recorder) *Recorder {
			return NewRecorder(Config{Window: 10 * time.Second, K: 5})
		}, true},
		{"nil src", func(*Recorder) *Recorder { return nil }, false},
		{"same config", func(*Recorder) *Recorder { return NewRecorder(base) }, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRecorder(base)
			r.Record(0, "n0", "web", time.Second, inv("c", "web", time.Second))
			before := r.Cells()
			err := r.MergeFrom(tc.src(r))
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if tc.wantErr && !reflect.DeepEqual(r.Cells(), before) {
				t.Error("failed merge mutated the destination")
			}
		})
	}
}

func TestResetClearsCells(t *testing.T) {
	r := NewRecorder(Config{})
	r.Record(0, "n0", "web", time.Second, inv("c", "web", time.Second))
	if r.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	r.Reset()
	if r.Len() != 0 || len(r.Cells()) != 0 {
		t.Error("Reset left cells behind")
	}
	// Config survives.
	if r.Window() != DefaultWindow || r.K() != DefaultK {
		t.Error("Reset dropped configuration")
	}
}

// TestMergePreservesCounts checks counts survive a merge beyond what top-K
// retention kept.
func TestMergePreservesCounts(t *testing.T) {
	cfg := Config{Window: time.Minute, K: 1}
	a, b := NewRecorder(cfg), NewRecorder(cfg)
	for i := 0; i < 10; i++ {
		d := time.Duration(i+1) * time.Millisecond
		b.Record(simtime.Time(i), "n0", "web", d, inv("c", "web", d))
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	cells := a.Cells()
	if len(cells) != 1 || cells[0].Count != 10 {
		t.Fatalf("merged count = %+v, want 10 in one cell", cells)
	}
	if len(cells[0].Top) != 1 || cells[0].Top[0].Latency != 10*time.Millisecond {
		t.Errorf("merged top = %+v, want the single 10ms worst", cells[0].Top)
	}
}
