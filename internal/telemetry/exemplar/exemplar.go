// Package exemplar links the timeline back to concrete requests: per window
// per (node, tenant) it retains the exact worst-K span trees by end-to-end
// latency plus one deterministically sampled "typical" tree, so any spike in
// a per-window rollup dereferences to full critical-path breakdowns instead
// of a bare P99 number.
//
// Design constraints match the span recorder's and the timeseries
// recorder's:
//
//   - The disabled path is free. A nil *Recorder is a fully functional
//     no-op; the platform's completion path pays one nil check and zero
//     allocations when exemplars are off (BenchmarkDisabledExemplars,
//     TestDisabledExemplarsZeroAlloc).
//   - Deterministic at any fan-out width. Retention decisions depend only
//     on recorded values, never on arrival order: top-K uses a total order
//     (latency desc, then time, container, function), and the typical
//     exemplar keeps the record with the highest size-independent hash
//     priority. Shard recorders merged back in any grouping therefore hold
//     bit-identical cells (TestExemplarMergeOrderInvariant).
//   - Bounded memory. Each (window, node, tenant) cell holds at most K+1
//     trees; windows are bounded by the run horizon.
package exemplar

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/span"
)

// DefaultK is the worst-K retention depth used when Config.K is zero.
const DefaultK = 3

// DefaultWindow is the rollup window used when Config.Window is zero,
// matching timeseries.DefaultWindow so exemplar cells align with timeline
// windows by index.
const DefaultWindow = time.Second

// Config parameterizes a Recorder. The zero value selects all defaults.
type Config struct {
	// Window is the rollup window on the virtual clock (default 1s). Use
	// the same window as the timeline recorder so cells align by index.
	Window time.Duration
	// K is how many worst trees each (window, node, tenant) cell keeps
	// (default 3).
	K int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.K <= 0 {
		c.K = DefaultK
	}
	return c
}

// Key addresses one exemplar cell.
type Key struct {
	// Window is the window index (aligned with the timeline's windows when
	// both use the same Window duration).
	Window int64 `json:"window"`
	// Node and Tenant locate the cell.
	Node   string `json:"node,omitempty"`
	Tenant string `json:"tenant,omitempty"`
}

// Exemplar is one retained request.
type Exemplar struct {
	// At is the request's completion time.
	At simtime.Time `json:"at"`
	// Latency is the end-to-end latency.
	Latency time.Duration `json:"latency"`
	// Invocation is the full span tree.
	Invocation span.Invocation `json:"invocation"`
}

// Cell is one exported exemplar cell.
type Cell struct {
	Key
	// Count is how many requests completed in the cell.
	Count int64 `json:"count"`
	// Top holds the worst-K exemplars, worst first.
	Top []Exemplar `json:"top"`
	// Typical is the hash-priority sample — an unbiased, order-independent
	// pick among the cell's requests.
	Typical *Exemplar `json:"typical,omitempty"`
}

// entry is the internal exemplar form.
type entry struct {
	at      simtime.Time
	latency time.Duration
	inv     span.Invocation
}

// worse is the retention total order: higher latency first, ties broken by
// completion time, then container and function IDs. Total, so the exact
// worst-K set is independent of recording order.
func worse(a, b entry) bool {
	if a.latency != b.latency {
		return a.latency > b.latency
	}
	if a.at != b.at {
		return a.at < b.at
	}
	if a.inv.Container != b.inv.Container {
		return a.inv.Container < b.inv.Container
	}
	return a.inv.Function < b.inv.Function
}

// sameEntry reports identity under the retention key (the fields worse()
// orders by). Invocation trees hold slices, so entries are not directly
// comparable.
func sameEntry(a, b entry) bool {
	return a.at == b.at && a.latency == b.latency &&
		a.inv.Container == b.inv.Container && a.inv.Function == b.inv.Function
}

// prio is the typical exemplar's sampling priority: an FNV-1a hash over the
// entry's identifying fields. Keeping the max-priority entry per cell is
// equivalent to a uniform reservoir sample but depends only on the entries
// themselves, so merges commute.
func prio(e entry) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix64 := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			h ^= (v >> i) & 0xff
			h *= prime
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // terminator so ("ab","c") != ("a","bc")
		h *= prime
	}
	mix64(uint64(e.at))
	mix64(uint64(e.latency))
	mixStr(e.inv.Container)
	mixStr(e.inv.Function)
	return h
}

type cell struct {
	count   int64
	top     []entry // sorted worst-first, len <= K
	typical entry
	typPrio uint64
}

// insert folds one entry into the cell under K-deep retention.
func (c *cell) insert(e entry, k int) {
	c.count++
	if p := prio(e); c.count == 1 || p > c.typPrio ||
		(p == c.typPrio && worse(e, c.typical)) {
		c.typical = e
		c.typPrio = p
	}
	// Exact top-K: binary-insert in worst-first order, truncate past K.
	lo, hi := 0, len(c.top)
	for lo < hi {
		mid := (lo + hi) / 2
		if worse(e, c.top[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= k {
		return
	}
	c.top = append(c.top, entry{})
	copy(c.top[lo+1:], c.top[lo:])
	c.top[lo] = e
	if len(c.top) > k {
		c.top = c.top[:k]
	}
}

// Recorder retains tail exemplars. A nil *Recorder is the disabled
// recorder: every method is a zero-allocation no-op. Construct with
// NewRecorder. Safe for concurrent use; retention is order-independent, so
// concurrent shard recording merges to the same state as a serial run.
type Recorder struct {
	mu    sync.Mutex
	cfg   Config
	cells map[Key]*cell
}

// NewRecorder creates a recorder with cfg (zero fields select defaults).
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults(), cells: make(map[Key]*cell)}
}

// Enabled reports whether the recorder stores anything. It is the
// documented guard for work that exists only to build exemplar records —
// notably span-tree construction when the span recorder itself is off.
func (r *Recorder) Enabled() bool { return r != nil }

// Window returns the rollup window (DefaultWindow on nil).
func (r *Recorder) Window() time.Duration {
	if r == nil {
		return DefaultWindow
	}
	return r.cfg.Window
}

// K returns the worst-K retention depth (DefaultK on nil).
func (r *Recorder) K() int {
	if r == nil {
		return DefaultK
	}
	return r.cfg.K
}

// Config returns the recorder's effective configuration, so a shard
// recorder can be built to merge cleanly into its sink.
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}.withDefaults()
	}
	return r.cfg
}

// Record retains one completed request. at is the completion time (which
// buckets the window), latency the end-to-end latency, inv the span tree.
// No-op on nil.
func (r *Recorder) Record(at simtime.Time, node, tenant string, latency time.Duration, inv span.Invocation) {
	if r == nil {
		return
	}
	r.mu.Lock()
	k := Key{Window: int64(at / r.cfg.Window), Node: node, Tenant: tenant}
	c := r.cells[k]
	if c == nil {
		c = &cell{}
		r.cells[k] = c
	}
	c.insert(entry{at: at, latency: latency, inv: inv}, r.cfg.K)
	r.mu.Unlock()
}

// Len reports how many cells hold at least one exemplar.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// MergeFrom folds src's cells into r. Because retention is a pure function
// of the recorded entries, merging shard recorders in any order or grouping
// yields the same cells as recording serially. Merging a nil recorder
// (either side) is a defined no-op; merging a recorder into itself or
// merging mismatched Window/K configurations errors.
func (r *Recorder) MergeFrom(src *Recorder) error {
	if r == nil || src == nil {
		return nil
	}
	if r == src {
		return errors.New("exemplar: cannot merge a recorder into itself")
	}
	if r.cfg != src.cfg {
		return fmt.Errorf("exemplar: cannot merge mismatched configs (%+v into %+v)", src.cfg, r.cfg)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, sc := range src.cells {
		dc := r.cells[k]
		if dc == nil {
			cp := &cell{count: 0}
			r.cells[k] = cp
			dc = cp
		}
		// Replay src's retained entries; counts add beyond what retention
		// kept.
		retained := int64(0)
		for _, e := range sc.top {
			dc.insert(e, r.cfg.K)
			retained++
		}
		// The typical entry may not be in top; replay it too unless it is.
		inTop := false
		for _, e := range sc.top {
			if sameEntry(e, sc.typical) {
				inTop = true
				break
			}
		}
		if sc.count > 0 && !inTop {
			dc.insert(sc.typical, r.cfg.K)
			retained++
		}
		dc.count += sc.count - retained // insert() counted the replayed ones
	}
	return nil
}

// Reset drops every cell, keeping configuration.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cells = make(map[Key]*cell)
	r.mu.Unlock()
}

// Cells exports every cell, sorted by (Window, Node, Tenant) so output is
// deterministic regardless of map iteration order.
func (r *Recorder) Cells() []Cell {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Cell, 0, len(r.cells))
	for k, c := range r.cells {
		cell := Cell{Key: k, Count: c.count, Top: make([]Exemplar, len(c.top))}
		for i, e := range c.top {
			cell.Top[i] = Exemplar{At: e.at, Latency: e.latency, Invocation: e.inv}
		}
		if c.count > 0 {
			cell.Typical = &Exemplar{At: c.typical.at, Latency: c.typical.latency, Invocation: c.typical.inv}
		}
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Tenant < b.Tenant
	})
	return out
}

var defaultRec struct {
	mu sync.RWMutex
	r  *Recorder
}

// SetDefault installs the process-wide fallback recorder, mirroring
// span.SetDefault and timeseries.SetDefault: cmd/experiments' -exemplars
// flag wires it here so every harness retains exemplars without threading a
// recorder through each figure.
func SetDefault(r *Recorder) {
	defaultRec.mu.Lock()
	defaultRec.r = r
	defaultRec.mu.Unlock()
}

// Default returns the process-wide fallback recorder (nil when unset).
func Default() *Recorder {
	defaultRec.mu.RLock()
	defer defaultRec.mu.RUnlock()
	return defaultRec.r
}

// OrDefault returns r when non-nil and the process default otherwise.
func (r *Recorder) OrDefault() *Recorder {
	if r != nil {
		return r
	}
	return Default()
}
