// Package timeseries adds a time axis to the repository's observability
// stack: windowed rollups of counters, gauges, and latency samples, all
// bucketed on the virtual clock, plus a bounded flight recorder that keeps
// the last few windows of high-resolution events and dumps them when a
// fault-injection window opens or a latency SLO burn-rate alarm fires.
//
// The scalar registry (PR 1) and span attribution (PR 3) answer "how much,
// in total"; this package answers "when": what pool occupancy, fetch-retry
// rate, and P99 looked like *during* the 40–55 s fault window, per node,
// per tenant, per page class.
//
// Design constraints match the tracer's and the span recorder's:
//
//   - The disabled path is free. A nil *Recorder is a fully functional
//     no-op; every instrumentation site pays one nil check and zero
//     allocations when recording is off (BenchmarkDisabledTimeline,
//     TestDisabledTimelineZeroAlloc).
//   - Virtual time only. Windows are indexed by simtime.Time / Window, so a
//     seeded run produces bit-identical rollups at any -scenario-workers
//     width (each engine owns its recorder; the CI determinism gate diffs
//     ext-observe output across widths).
//   - Bounded memory. The flight recorder is a fixed-capacity overwrite-
//     oldest ring; dumps are capped at MaxDumps; latency distributions use
//     a fixed 65-slot power-of-two bucket array per (series, window).
package timeseries

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Canonical series names. Subsystems and exporters share these constants so
// a timeline assembled from rmem, memnode, faas, cluster, and faultinject
// samples joins cleanly.
const (
	// SeriesRequests counts completed requests (counter, node+tenant).
	SeriesRequests = "requests_total"
	// SeriesColdStarts counts cold starts (counter, node+tenant).
	SeriesColdStarts = "cold_starts_total"
	// SeriesRequestLatency samples end-to-end latency in nanoseconds
	// (sample, node+tenant); feeds the SLO burn-rate alarm.
	SeriesRequestLatency = "request_latency_ns"
	// SeriesNodeLocalBytes gauges per-node local (DRAM) bytes.
	SeriesNodeLocalBytes = "node_local_bytes"
	// SeriesNodeRemoteBytes gauges per-node pool-resident bytes.
	SeriesNodeRemoteBytes = "node_remote_bytes"
	// SeriesLiveContainers gauges per-node live container count.
	SeriesLiveContainers = "live_containers"
	// SeriesPoolUsedBytes gauges pool occupancy.
	SeriesPoolUsedBytes = "pool_used_bytes"
	// SeriesPoolUnhealthy gauges the pool health probe (0 healthy, 1
	// degraded or down).
	SeriesPoolUnhealthy = "pool_unhealthy"
	// SeriesOffloadBytes counts bytes offloaded to the pool (counter).
	SeriesOffloadBytes = "offload_bytes_total"
	// SeriesRecallBytes counts bytes recalled or demand-fetched back
	// (counter).
	SeriesRecallBytes = "recall_bytes_total"
	// SeriesOffloadPages counts pages admitted to the pool per page class
	// (counter, node+tenant+class).
	SeriesOffloadPages = "offload_pages_total"
	// SeriesFetchRetries counts page-fetch retries against an unhealthy
	// link (counter).
	SeriesFetchRetries = "fetch_retries_total"
	// SeriesFetchTimeouts counts fetches abandoned after retry exhaustion
	// (counter).
	SeriesFetchTimeouts = "fetch_timeouts_total"
	// SeriesFallbackPages counts pages served from local swap after a
	// fetch timeout (counter, node+tenant).
	SeriesFallbackPages = "fallback_pages_total"
	// SeriesColdReinits counts containers cold re-initialized after an
	// unrecoverable fetch (counter, node+tenant).
	SeriesColdReinits = "cold_reinits_total"
	// SeriesRescheduledFault counts requests the cluster reran elsewhere
	// after a pool-fault abort (counter, rack-level).
	SeriesRescheduledFault = "rescheduled_fault_total"
	// SeriesDedupSavedPermille gauges memnode dedup savings in ‰ of
	// logical bytes.
	SeriesDedupSavedPermille = "dedup_saved_permille"
	// SeriesTenantQuotaPct gauges per-tenant quota pressure in percent of
	// the memnode tenant quota (gauge, tenant dimension).
	SeriesTenantQuotaPct = "tenant_quota_pct"
	// SeriesFaultActiveKinds gauges how many fault kinds have a window in
	// force.
	SeriesFaultActiveKinds = "fault_active_kinds"
	// SeriesCacheUsedBytes gauges the memnode shared cache tier's
	// occupancy (only sampled when the cache is configured).
	SeriesCacheUsedBytes = "cache_used_bytes"
	// SeriesCacheOccupancyPct gauges one tenant's occupancy of the shared
	// cache tier in percent of capacity (gauge, tenant dimension).
	SeriesCacheOccupancyPct = "cache_occupancy_pct"
)

// SeriesKind distinguishes how points accumulate within a window.
type SeriesKind uint8

// The series kinds.
const (
	// Counter sums deltas per window.
	Counter SeriesKind = iota
	// Gauge keeps the last value set in each window.
	Gauge
	// Sample aggregates observations: count, sum, min, max, and a
	// power-of-two histogram for percentile estimates.
	Sample
)

var kindNames = [...]string{Counter: "counter", Gauge: "gauge", Sample: "sample"}

// String names the kind.
func (k SeriesKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Dims are the rollup dimensions. Empty strings mean "not applicable", not
// "unknown": node-level gauges carry only Node, per-class page counters all
// three. Dims is a comparable value type so series lookup allocates nothing.
type Dims struct {
	// Node is the node or rack identifier ("n0", "pool", "rack").
	Node string `json:"node,omitempty"`
	// Tenant is the paying tenant (the function name under the default
	// memnode tenant mapping).
	Tenant string `json:"tenant,omitempty"`
	// Class is the page class ("runtime", "init", "exec", "other").
	Class string `json:"class,omitempty"`
}

// nBuckets spans every positive int64: bucket i holds values whose bit
// length is i, i.e. [2^(i-1), 2^i). Bucket 0 holds zero.
const nBuckets = 65

// point is one (series, window) cell.
type point struct {
	count   int64
	sum     int64
	last    int64
	min     int64
	max     int64
	buckets *[nBuckets]int64 // Sample series only
}

func (p *point) observe(v int64) {
	if p.count == 0 || v < p.min {
		p.min = v
	}
	if p.count == 0 || v > p.max {
		p.max = v
	}
	p.count++
	p.sum += v
	p.last = v
}

// quantile estimates quantile q (0..1] from the bucket histogram as the
// upper edge of the bucket where the cumulative count crosses q·count,
// clamped to the window's observed max. Deterministic and bounded, which is
// what a per-window P99 on the DES hot path needs.
func (p *point) quantile(q float64) int64 {
	if p.buckets == nil || p.count == 0 {
		return p.max
	}
	rank := int64(q * float64(p.count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < nBuckets; i++ {
		cum += p.buckets[i]
		if cum >= rank {
			edge := bucketUpper(i)
			if edge > p.max {
				return p.max
			}
			return edge
		}
	}
	return p.max
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper is the inclusive upper edge of bucket i.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// seriesKey identifies one series; comparable so map lookup is allocation-
// free on the enabled path.
type seriesKey struct {
	name string
	dims Dims
}

type seriesData struct {
	kind   SeriesKind
	points map[int64]*point
	// lastWin/lastPt cache the most recent window, the overwhelmingly
	// common case on the hot path.
	lastWin int64
	lastPt  *point
}

// FlightEvent is one high-resolution event kept by the flight recorder.
type FlightEvent struct {
	// At is the event's virtual time.
	At simtime.Time `json:"at"`
	// Name is the series the event fed.
	Name string `json:"name"`
	// Dims are the event's dimensions.
	Dims Dims `json:"dims"`
	// Value is the counter delta or observed sample.
	Value int64 `json:"value"`
}

// Trigger labels why a flight dump was taken.
type Trigger string

// The dump triggers.
const (
	// TriggerFaultWindow fired because a fault-injection window opened.
	TriggerFaultWindow Trigger = "fault-window"
	// TriggerSLOBurn fired because a sealed window's over-SLO fraction
	// crossed the burn threshold.
	TriggerSLOBurn Trigger = "slo-burn"
)

// Dump is one flight-recorder snapshot: the retained high-resolution events
// from the last FlightWindows windows before the trigger.
type Dump struct {
	// Trigger says why the dump was taken.
	Trigger Trigger `json:"trigger"`
	// Series names the series that tripped the trigger (the latency series
	// whose window burned its SLO budget); empty for fault-window dumps,
	// which are armed from the fault plan rather than a series.
	Series string `json:"series,omitempty"`
	// At is the virtual time of the trigger.
	At simtime.Time `json:"at"`
	// Window is the window index containing At.
	Window int64 `json:"window"`
	// Events are the retained events, oldest first.
	Events []FlightEvent `json:"events"`
}

// DefaultWindow is the rollup window used when Config.Window is zero: one
// virtual second.
const DefaultWindow = time.Second

// Config parameterizes a Recorder. The zero value selects all defaults.
type Config struct {
	// Window is the rollup window on the virtual clock (default 1s).
	Window time.Duration
	// FlightWindows is how many trailing windows a dump covers (default 8).
	FlightWindows int
	// FlightCapacity bounds the flight ring (default 4096 events).
	FlightCapacity int
	// SLO is the latency objective feeding the burn-rate alarm (default
	// 1s). Observations via ObserveLatency above SLO burn the budget.
	SLO time.Duration
	// BurnThreshold is the per-window over-SLO fraction that trips a dump
	// when a window seals (default 0.5).
	BurnThreshold float64
	// MaxDumps bounds retained dumps (default 16); later triggers are
	// counted but not stored.
	MaxDumps int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.FlightWindows <= 0 {
		c.FlightWindows = 8
	}
	if c.FlightCapacity <= 0 {
		c.FlightCapacity = 4096
	}
	if c.SLO <= 0 {
		c.SLO = time.Second
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 0.5
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 16
	}
	return c
}

// Recorder rolls events up into per-window points and feeds the flight
// recorder. A nil *Recorder is the disabled recorder: every method is a
// zero-allocation no-op, so instrumentation sites record unconditionally
// behind an Enabled() guard. Construct with NewRecorder. Safe for
// concurrent use; within one engine, recording order is the deterministic
// event order of the virtual clock.
type Recorder struct {
	mu     sync.Mutex
	cfg    Config
	series map[seriesKey]*seriesData

	// Flight ring: fixed capacity, overwrite oldest.
	flight []FlightEvent
	fNext  int
	fTotal uint64

	// Fault-window triggers: sorted start times not yet crossed.
	trigAt   []simtime.Time
	trigNext int

	// Burn-rate alarm state for the newest latency window seen.
	alarmWin    int64
	alarmCount  int64
	alarmOver   int64
	alarmSeries string

	dumps        []Dump
	dumpsDropped int

	// Page byte-flow ledger (see flow.go).
	flows    map[flowKey]map[int64]int64
	occ      map[int64]*occWindow
	flowNet  int64
	flowRuns int
}

// NewRecorder creates a recorder with cfg (zero fields select defaults).
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:      cfg,
		series:   make(map[seriesKey]*seriesData),
		flight:   make([]FlightEvent, 0, cfg.FlightCapacity),
		alarmWin: -1 << 62,
		flows:    make(map[flowKey]map[int64]int64),
		occ:      make(map[int64]*occWindow),
	}
}

// Enabled reports whether the recorder stores anything. It is the
// documented guard for work that exists only to build timeline samples.
func (r *Recorder) Enabled() bool { return r != nil }

// Window returns the rollup window (DefaultWindow on nil, so callers can
// arm samplers unconditionally).
func (r *Recorder) Window() time.Duration {
	if r == nil {
		return DefaultWindow
	}
	return r.cfg.Window
}

// windowOf maps a virtual time onto its window index.
func (r *Recorder) windowOf(at simtime.Time) int64 {
	return int64(at / r.cfg.Window)
}

// AddCounter accumulates a delta into the named counter series for the
// window containing at. No-op on nil.
func (r *Recorder) AddCounter(at simtime.Time, name string, d Dims, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.crossTriggers(at)
	p := r.pointAt(at, name, d, Counter)
	p.observe(delta)
	r.record(FlightEvent{At: at, Name: name, Dims: d, Value: delta})
	r.mu.Unlock()
}

// SetGauge stores the latest value of the named gauge series in the window
// containing at. Gauges do not feed the flight recorder (they are sampled
// periodically, not event-driven). No-op on nil.
func (r *Recorder) SetGauge(at simtime.Time, name string, d Dims, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.crossTriggers(at)
	p := r.pointAt(at, name, d, Gauge)
	p.observe(v)
	r.mu.Unlock()
}

// Observe records one sample into the named distribution series. No-op on
// nil.
func (r *Recorder) Observe(at simtime.Time, name string, d Dims, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.observeLocked(at, name, d, v, false)
	r.mu.Unlock()
}

// ObserveLatency records one latency sample and feeds the SLO burn-rate
// alarm: when the window containing at seals (a later window arrives) with
// an over-SLO fraction at or above BurnThreshold, a flight dump is taken.
// No-op on nil.
func (r *Recorder) ObserveLatency(at simtime.Time, name string, d Dims, v time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.observeLocked(at, name, d, int64(v), true)
	r.mu.Unlock()
}

func (r *Recorder) observeLocked(at simtime.Time, name string, d Dims, v int64, latency bool) {
	r.crossTriggers(at)
	if latency {
		win := r.windowOf(at)
		if win > r.alarmWin {
			r.sealAlarmWindow(at)
			r.alarmWin = win
		}
		if win == r.alarmWin {
			r.alarmCount++
			r.alarmSeries = name
			if v >= int64(r.cfg.SLO) {
				r.alarmOver++
			}
		}
	}
	p := r.pointAt(at, name, d, Sample)
	p.observe(v)
	if p.buckets == nil {
		p.buckets = new([nBuckets]int64)
	}
	p.buckets[bucketOf(v)]++
	r.record(FlightEvent{At: at, Name: name, Dims: d, Value: v})
}

// sealAlarmWindow evaluates the burn-rate alarm for the window that just
// sealed and resets the accumulators.
func (r *Recorder) sealAlarmWindow(now simtime.Time) {
	if r.alarmCount > 0 &&
		float64(r.alarmOver) >= r.cfg.BurnThreshold*float64(r.alarmCount) {
		r.dump(TriggerSLOBurn, r.alarmSeries, now)
	}
	r.alarmCount = 0
	r.alarmOver = 0
}

// pointAt finds or creates the (series, window) cell. The first caller of a
// name fixes its kind; later mismatched kinds fold into the same cell
// (callers use the canonical Series* constants, so this does not arise in
// practice).
func (r *Recorder) pointAt(at simtime.Time, name string, d Dims, kind SeriesKind) *point {
	k := seriesKey{name: name, dims: d}
	s := r.series[k]
	if s == nil {
		s = &seriesData{kind: kind, points: make(map[int64]*point), lastWin: -1 << 62}
		r.series[k] = s
	}
	win := r.windowOf(at)
	if win == s.lastWin {
		return s.lastPt
	}
	p := s.points[win]
	if p == nil {
		p = &point{}
		s.points[win] = p
	}
	s.lastWin = win
	s.lastPt = p
	return p
}

// record appends one event to the flight ring (overwrite oldest when full).
func (r *Recorder) record(ev FlightEvent) {
	if len(r.flight) < cap(r.flight) {
		r.flight = append(r.flight, ev)
	} else {
		r.flight[r.fNext] = ev
		r.fNext++
		if r.fNext == len(r.flight) {
			r.fNext = 0
		}
	}
	r.fTotal++
}

// ArmFaultStarts registers fault-window start times: the first event
// recorded at or past each start takes a flight dump. Starts merge with any
// already armed; already-crossed starts (at or before the latest trigger
// processed) are dropped.
func (r *Recorder) ArmFaultStarts(starts []simtime.Time) {
	if r == nil || len(starts) == 0 {
		return
	}
	r.mu.Lock()
	pending := append([]simtime.Time{}, r.trigAt[r.trigNext:]...)
	pending = append(pending, starts...)
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	// Dedupe coincident starts so one instant yields one dump.
	out := pending[:0]
	for _, t := range pending {
		if len(out) == 0 || out[len(out)-1] != t {
			out = append(out, t)
		}
	}
	r.trigAt = out
	r.trigNext = 0
	r.mu.Unlock()
}

// crossTriggers fires a dump for every armed fault start at or before now.
func (r *Recorder) crossTriggers(now simtime.Time) {
	for r.trigNext < len(r.trigAt) && now >= r.trigAt[r.trigNext] {
		r.dump(TriggerFaultWindow, "", r.trigAt[r.trigNext])
		r.trigNext++
	}
}

// dump snapshots the flight ring's events from the last FlightWindows
// windows before at.
func (r *Recorder) dump(trigger Trigger, series string, at simtime.Time) {
	if len(r.dumps) >= r.cfg.MaxDumps {
		r.dumpsDropped++
		return
	}
	horizon := at - simtime.Time(r.cfg.FlightWindows)*r.cfg.Window
	var events []FlightEvent
	appendRecent := func(evs []FlightEvent) {
		for _, ev := range evs {
			if ev.At >= horizon {
				events = append(events, ev)
			}
		}
	}
	if len(r.flight) == cap(r.flight) && cap(r.flight) > 0 {
		appendRecent(r.flight[r.fNext:])
		appendRecent(r.flight[:r.fNext])
	} else {
		appendRecent(r.flight)
	}
	r.dumps = append(r.dumps, Dump{
		Trigger: trigger,
		Series:  series,
		At:      at,
		Window:  r.windowOf(at),
		Events:  events,
	})
}

// Dumps returns a copy of the retained flight dumps in trigger order.
func (r *Recorder) Dumps() []Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Dump, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// DumpsDropped reports how many triggers fired past the MaxDumps cap.
func (r *Recorder) DumpsDropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumpsDropped
}

// FlightTotal reports how many events ever entered the flight ring.
func (r *Recorder) FlightTotal() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fTotal
}

// Config returns the recorder's effective configuration, so a shard
// recorder can be built with the same windowing as the sink it will merge
// into.
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}.withDefaults()
	}
	return r.cfg
}

// MergeFrom folds src's rollups, flow ledger, flight events, and dumps into
// r: series points and flow cells merge additively per window, gauge "last"
// values take src's (the later run in merge order), and flight events append
// in src's retained order. Shard recorders folded back into a shared sink in
// a fixed order therefore yield the same state a serial run would.
//
// Merging a nil recorder (either side) is a defined no-op. Merging a
// recorder into itself errors — the additive fold would double every point —
// as does merging recorders with different rollup windows, whose window
// indices are incommensurable.
func (r *Recorder) MergeFrom(src *Recorder) error {
	if r == nil || src == nil {
		return nil
	}
	if r == src {
		return errors.New("timeseries: cannot merge a recorder into itself")
	}
	if r.cfg.Window != src.cfg.Window {
		return fmt.Errorf("timeseries: cannot merge mismatched windows (%s into %s)",
			src.cfg.Window, r.cfg.Window)
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, sd := range src.series {
		dst := r.series[k]
		if dst == nil {
			dst = &seriesData{kind: sd.kind, points: make(map[int64]*point), lastWin: -1 << 62}
			r.series[k] = dst
		}
		for win, p := range sd.points {
			dp := dst.points[win]
			if dp == nil {
				dp = &point{}
				dst.points[win] = dp
			}
			if p.count == 0 {
				continue
			}
			if dp.count == 0 || p.min < dp.min {
				dp.min = p.min
			}
			if dp.count == 0 || p.max > dp.max {
				dp.max = p.max
			}
			dp.count += p.count
			dp.sum += p.sum
			dp.last = p.last
			if p.buckets != nil {
				if dp.buckets == nil {
					dp.buckets = new([nBuckets]int64)
				}
				for b, n := range p.buckets {
					dp.buckets[b] += n
				}
			}
		}
	}
	var retained int
	mergeFlight := func(evs []FlightEvent) {
		for _, ev := range evs {
			r.record(ev)
		}
		retained += len(evs)
	}
	if len(src.flight) == cap(src.flight) && cap(src.flight) > 0 {
		mergeFlight(src.flight[src.fNext:])
		mergeFlight(src.flight[:src.fNext])
	} else {
		mergeFlight(src.flight)
	}
	r.fTotal += src.fTotal - uint64(retained) // record() counted the retained ones
	for _, d := range src.dumps {
		if len(r.dumps) >= r.cfg.MaxDumps {
			r.dumpsDropped++
			continue
		}
		r.dumps = append(r.dumps, d)
	}
	r.dumpsDropped += src.dumpsDropped
	r.mergeFlowsLocked(src)
	return nil
}

// Reset drops all series, flight events, dumps, and alarm state, keeping
// configuration and armed fault starts that have not yet crossed.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.series = make(map[seriesKey]*seriesData)
	r.flight = r.flight[:0]
	r.fNext = 0
	r.fTotal = 0
	r.alarmWin = -1 << 62
	r.alarmCount = 0
	r.alarmOver = 0
	r.alarmSeries = ""
	r.dumps = nil
	r.dumpsDropped = 0
	r.flows = make(map[flowKey]map[int64]int64)
	r.occ = make(map[int64]*occWindow)
	r.flowNet = 0
	r.flowRuns = 0
	r.mu.Unlock()
}

var defaultRec struct {
	mu sync.RWMutex
	r  *Recorder
}

// SetDefault installs the process-wide fallback recorder, mirroring
// telemetry.SetDefault and span.SetDefault: cmd/experiments' -timeline flag
// wires it here so every harness records a timeline without threading a
// recorder through each figure.
func SetDefault(r *Recorder) {
	defaultRec.mu.Lock()
	defaultRec.r = r
	defaultRec.mu.Unlock()
}

// Default returns the process-wide fallback recorder (nil when unset).
func Default() *Recorder {
	defaultRec.mu.RLock()
	defer defaultRec.mu.RUnlock()
	return defaultRec.r
}

// OrDefault returns r when non-nil and the process default otherwise.
func (r *Recorder) OrDefault() *Recorder {
	if r != nil {
		return r
	}
	return Default()
}
