package timeseries

import (
	"reflect"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

const sec = simtime.Time(time.Second)

// TestFlowConservation drives the ledger the way an instrumented pool does —
// every occupancy mutation records its flow and checkpoints the result — and
// requires the audit to verify every window.
func TestFlowConservation(t *testing.T) {
	r := NewRecorder(Config{Window: 10 * time.Second})
	pool := Dims{Node: "pool"}
	var occ int64
	move := func(at simtime.Time, kind FlowKind, bytes int64) {
		r.AddFlow(at, kind, pool, bytes)
		occ += int64(kind.Direction()) * bytes
		r.FlowOccupancy(at, occ)
	}
	move(1*sec, FlowOffload, 4096)
	move(2*sec, FlowOffload, 8192)
	move(12*sec, FlowRecall, 4096) // next window
	move(13*sec, FlowCompress, 2048)
	move(31*sec, FlowFault, 2048) // window gap: carry must hold
	move(32*sec, FlowDiscard, 1024)

	a := AuditFlows(r)
	if !a.OK || a.Violations != 0 {
		t.Fatalf("audit = %+v, want clean", a)
	}
	if a.Runs != 1 || a.Merged {
		t.Errorf("runs = %d merged = %v, want a single un-merged run", a.Runs, a.Merged)
	}
	if a.Checks != 6 {
		t.Errorf("checks = %d, want 6", a.Checks)
	}
	if len(a.Windows) != 3 {
		t.Fatalf("audited windows = %d, want 3", len(a.Windows))
	}
	for _, w := range a.Windows {
		if !w.OK || w.OccDelta != w.FlowDelta {
			t.Errorf("window %d: occ %d vs flow %d", w.Window, w.OccDelta, w.FlowDelta)
		}
	}
	// Intra-pool tier movement must not count toward occupancy flow.
	if a.Windows[1].FlowDelta != -4096 {
		t.Errorf("window 1 flow delta = %d, want -4096 (compress is direction 0)",
			a.Windows[1].FlowDelta)
	}
}

// TestFlowAuditDetectsMissingHook mutates occupancy without recording the
// flow that caused it — the bug class the audit exists to catch.
func TestFlowAuditDetectsMissingHook(t *testing.T) {
	r := NewRecorder(Config{Window: 10 * time.Second})
	r.AddFlow(1*sec, FlowOffload, Dims{Node: "pool"}, 4096)
	r.FlowOccupancy(1*sec, 4096)
	r.FlowOccupancy(2*sec, 8192) // occupancy moved, no flow recorded

	a := AuditFlows(r)
	if a.OK || a.Violations == 0 {
		t.Fatalf("audit = %+v, want a violation", a)
	}
}

// TestFlowAuditMerged: once more than one run feeds a recorder, occupancy
// checkpoints from separate virtual clocks interleave and the audit must
// declare itself not applicable rather than flag spurious violations.
func TestFlowAuditMerged(t *testing.T) {
	r := NewRecorder(Config{Window: 10 * time.Second})
	for run := 0; run < 2; run++ {
		r.StartFlowRun()
		r.AddFlow(1*sec, FlowOffload, Dims{Node: "pool"}, 4096)
		r.FlowOccupancy(1*sec, 4096) // each run's pool restarts at 0 → would "violate"
	}
	a := AuditFlows(r)
	if !a.Merged || a.Runs != 2 {
		t.Fatalf("audit = %+v, want merged with 2 runs", a)
	}
	if !a.OK || a.Violations != 0 || len(a.Windows) != 0 {
		t.Errorf("merged audit = %+v, want vacuously OK with no per-window rows", a)
	}
	if a.Checks != 2 {
		t.Errorf("checks = %d, want 2 (still counted when merged)", a.Checks)
	}
}

// TestFlowMergeAdditive folds two shard ledgers into a sink: per-cell bytes
// add exactly and the run count marks the sink merged.
func TestFlowMergeAdditive(t *testing.T) {
	cfg := Config{Window: 10 * time.Second}
	mk := func(bytes int64) *Recorder {
		r := NewRecorder(cfg)
		r.StartFlowRun()
		r.AddFlow(1*sec, FlowOffload, Dims{Node: "pool", Tenant: "web"}, bytes)
		r.FlowOccupancy(1*sec, bytes)
		r.AddFlow(12*sec, FlowRecall, Dims{Node: "pool", Tenant: "web"}, bytes/2)
		r.FlowOccupancy(12*sec, bytes-bytes/2)
		return r
	}
	sink := NewRecorder(cfg)
	if err := sink.MergeFrom(mk(4096)); err != nil {
		t.Fatal(err)
	}
	if err := sink.MergeFrom(mk(8192)); err != nil {
		t.Fatal(err)
	}
	rows := sink.FlowRows()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2 cells", rows)
	}
	if rows[0].Flow != "offload" || rows[0].Bytes != 4096+8192 {
		t.Errorf("offload row = %+v, want additive 12288", rows[0])
	}
	if rows[1].Flow != "recall" || rows[1].Bytes != 2048+4096 {
		t.Errorf("recall row = %+v, want additive 6144", rows[1])
	}
	tot := sink.FlowTotals()
	if tot[FlowOffload] != 12288 || tot[FlowRecall] != 6144 {
		t.Errorf("totals = %v", tot)
	}
	if a := AuditFlows(sink); !a.Merged || a.Runs != 2 {
		t.Errorf("audit after two-run merge = %+v, want merged", a)
	}
}

// TestMergeFromEdgeCases tables the defined-error paths the parallel harness
// depends on: self-merge and mismatched windows error without mutating the
// destination, nil merges no-op.
func TestMergeFromEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name    string
		src     func(r *Recorder) *Recorder
		wantErr bool
	}{
		{"self", func(r *Recorder) *Recorder { return r }, true},
		{"window mismatch", func(*Recorder) *Recorder {
			return NewRecorder(Config{Window: 20 * time.Second})
		}, true},
		{"nil src", func(*Recorder) *Recorder { return nil }, false},
		{"same window", func(*Recorder) *Recorder {
			return NewRecorder(Config{Window: 10 * time.Second})
		}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRecorder(Config{Window: 10 * time.Second})
			r.AddCounter(1*sec, SeriesRequests, Dims{Node: "n0"}, 1)
			r.AddFlow(1*sec, FlowOffload, Dims{Node: "pool"}, 4096)
			beforeRows := r.Rows()
			beforeFlows := r.FlowRows()
			err := r.MergeFrom(tc.src(r))
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if tc.wantErr {
				if !reflect.DeepEqual(r.Rows(), beforeRows) ||
					!reflect.DeepEqual(r.FlowRows(), beforeFlows) {
					t.Error("failed merge mutated the destination")
				}
			}
			// A nil destination accepts anything silently.
			var nilRec *Recorder
			if err := nilRec.MergeFrom(r); err != nil {
				t.Errorf("nil destination merge: %v", err)
			}
		})
	}
}

// TestResetClearsFlows: Reset must drop the ledger and run counter along with
// the series, so a reused recorder audits fresh.
func TestResetClearsFlows(t *testing.T) {
	r := NewRecorder(Config{Window: 10 * time.Second})
	r.StartFlowRun()
	r.AddFlow(1*sec, FlowOffload, Dims{Node: "pool"}, 4096)
	r.FlowOccupancy(1*sec, 4096)
	r.Reset()
	if rows := r.FlowRows(); len(rows) != 0 {
		t.Errorf("rows after Reset = %+v", rows)
	}
	a := AuditFlows(r)
	if !a.OK || a.Runs != 0 || a.Checks != 0 {
		t.Errorf("audit after Reset = %+v, want pristine", a)
	}
	// The ledger must keep working after a Reset.
	r.AddFlow(2*sec, FlowOffload, Dims{Node: "pool"}, 1024)
	r.FlowOccupancy(2*sec, 1024)
	if a := AuditFlows(r); !a.OK || a.Checks != 1 {
		t.Errorf("audit after reuse = %+v", a)
	}
}

// TestNilRecorderFlowNoOp extends the nil-recorder contract to the flow
// surface.
func TestNilRecorderFlowNoOp(t *testing.T) {
	var r *Recorder
	r.AddFlow(0, FlowOffload, Dims{}, 4096)
	r.FlowOccupancy(0, 4096)
	r.StartFlowRun()
	if rows := r.FlowRows(); rows != nil {
		t.Errorf("nil FlowRows = %+v", rows)
	}
	if tot := r.FlowTotals(); tot != [NumFlows]int64{} {
		t.Errorf("nil FlowTotals = %v", tot)
	}
	if a := AuditFlows(r); !a.OK {
		t.Errorf("nil audit = %+v", a)
	}
}
