package timeseries

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Row is one (series, dims, window) cell flattened for export, the
// machine-readable form behind `faasmem-stat timeline -format json` and the
// gateway's GET /timeline.
type Row struct {
	// Window is the window index (Start = Window · window size).
	Window int64 `json:"window"`
	// Start is the window's virtual start time.
	Start simtime.Time `json:"start"`
	// Name is the series name.
	Name string `json:"name"`
	// Node, Tenant, Class are the rollup dimensions (empty when not
	// applicable).
	Node   string `json:"node,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
	// Kind is the series kind ("counter", "gauge", "sample").
	Kind string `json:"kind"`
	// Count is the number of events folded into the cell.
	Count int64 `json:"count"`
	// Sum is the summed deltas (counters) or samples.
	Sum int64 `json:"sum"`
	// Last is the most recent value (the gauge reading).
	Last int64 `json:"last"`
	// Min and Max bound the cell's values.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// P99 is the estimated 99th percentile for sample series (0 otherwise).
	P99 int64 `json:"p99,omitempty"`
}

// Rows flattens every cell, sorted by (Window, Name, Node, Tenant, Class)
// so output is deterministic regardless of map iteration order.
func (r *Recorder) Rows() []Row {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Row
	for k, s := range r.series {
		for win, p := range s.points {
			row := Row{
				Window: win,
				Start:  simtime.Time(win) * r.cfg.Window,
				Name:   k.name,
				Node:   k.dims.Node,
				Tenant: k.dims.Tenant,
				Class:  k.dims.Class,
				Kind:   s.kind.String(),
				Count:  p.count,
				Sum:    p.sum,
				Last:   p.last,
				Min:    p.min,
				Max:    p.max,
			}
			if s.kind == Sample {
				row.P99 = p.quantile(0.99)
			}
			out = append(out, row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Class < b.Class
	})
	return out
}

// SummaryRow is one window of the cross-dimension rollup: the headline
// occupancy / bandwidth / reliability / latency numbers, with fault-plan
// activity alongside so co-movement is visible in one table.
type SummaryRow struct {
	// Window is the window index.
	Window int64 `json:"window"`
	// StartSec is the window's virtual start in seconds.
	StartSec float64 `json:"start_sec"`
	// LocalMB and PoolMB are node-local and pool-occupancy gauges summed
	// across nodes, in MiB.
	LocalMB float64 `json:"local_mb"`
	PoolMB  float64 `json:"pool_mb"`
	// OffloadMB and RecallMB are link traffic during the window, in MiB.
	OffloadMB float64 `json:"offload_mb"`
	RecallMB  float64 `json:"recall_mb"`
	// Requests counts completed requests in the window.
	Requests int64 `json:"requests"`
	// P99Ms is the 99th-percentile request latency across all dims, in ms.
	P99Ms float64 `json:"p99_ms"`
	// Retries, Timeouts, FallbackPages, Reinits are recovery activity.
	Retries       int64 `json:"retries"`
	Timeouts      int64 `json:"timeouts"`
	FallbackPages int64 `json:"fallback_pages"`
	Reinits       int64 `json:"reinits"`
	// FaultKinds is the peak number of fault kinds in force.
	FaultKinds int64 `json:"fault_kinds"`
}

// Summarize aggregates every series across dimensions into one row per
// window, covering the contiguous range [first, last] window seen. Latency
// P99 merges the underlying bucket histograms, so it is the true
// cross-tenant estimate, not a max-of-maxes.
func Summarize(r *Recorder) []SummaryRow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	type agg struct {
		local, pool, offload, recall  int64
		requests, retries, timeouts   int64
		fallback, reinits, faultKinds int64
		latCount, latMax              int64
		latBuckets                    [nBuckets]int64
	}
	cells := make(map[int64]*agg)
	lo, hi := int64(1<<62), int64(-1<<62)
	cell := func(win int64) *agg {
		if win < lo {
			lo = win
		}
		if win > hi {
			hi = win
		}
		a := cells[win]
		if a == nil {
			a = &agg{}
			cells[win] = a
		}
		return a
	}
	for k, s := range r.series {
		for win, p := range s.points {
			a := cell(win)
			switch k.name {
			case SeriesNodeLocalBytes:
				a.local += p.last
			case SeriesPoolUsedBytes:
				a.pool += p.last
			case SeriesOffloadBytes:
				a.offload += p.sum
			case SeriesRecallBytes:
				a.recall += p.sum
			case SeriesRequests:
				a.requests += p.sum
			case SeriesFetchRetries:
				a.retries += p.sum
			case SeriesFetchTimeouts:
				a.timeouts += p.sum
			case SeriesFallbackPages:
				a.fallback += p.sum
			case SeriesColdReinits:
				a.reinits += p.sum
			case SeriesFaultActiveKinds:
				if p.max > a.faultKinds {
					a.faultKinds = p.max
				}
			case SeriesRequestLatency:
				a.latCount += p.count
				if p.max > a.latMax {
					a.latMax = p.max
				}
				if p.buckets != nil {
					for i, c := range p.buckets {
						a.latBuckets[i] += c
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil
	}
	const mb = 1 << 20
	out := make([]SummaryRow, 0, hi-lo+1)
	for win := lo; win <= hi; win++ {
		row := SummaryRow{
			Window:   win,
			StartSec: (simtime.Time(win) * r.cfg.Window).Seconds(),
		}
		if a := cells[win]; a != nil {
			row.LocalMB = float64(a.local) / mb
			row.PoolMB = float64(a.pool) / mb
			row.OffloadMB = float64(a.offload) / mb
			row.RecallMB = float64(a.recall) / mb
			row.Requests = a.requests
			row.Retries = a.retries
			row.Timeouts = a.timeouts
			row.FallbackPages = a.fallback
			row.Reinits = a.reinits
			row.FaultKinds = a.faultKinds
			if a.latCount > 0 {
				merged := point{count: a.latCount, max: a.latMax, buckets: &a.latBuckets}
				row.P99Ms = float64(merged.quantile(0.99)) / float64(time.Millisecond)
			}
		}
		out = append(out, row)
	}
	return out
}

// Snapshot is the full JSON form: configuration, flattened rows, the
// per-window summary, and the flight dumps.
type Snapshot struct {
	// WindowSec is the rollup window in seconds.
	WindowSec float64 `json:"window_sec"`
	// Rows are the flattened cells (see Rows).
	Rows []Row `json:"rows"`
	// Summary is the per-window cross-dimension rollup.
	Summary []SummaryRow `json:"summary"`
	// Flows is the page byte-flow ledger (see FlowRows).
	Flows []FlowRow `json:"flows,omitempty"`
	// FlowAudit is the ledger's conservation self-check, present whenever
	// flows were recorded.
	FlowAudit *FlowAudit `json:"flow_audit,omitempty"`
	// Dumps are the flight-recorder dumps.
	Dumps []Dump `json:"dumps"`
	// DumpsDropped counts triggers past the MaxDumps cap.
	DumpsDropped int `json:"dumps_dropped,omitempty"`
}

// TakeSnapshot assembles the exportable view of the recorder.
func TakeSnapshot(r *Recorder) Snapshot {
	snap := Snapshot{
		WindowSec:    r.Window().Seconds(),
		Rows:         r.Rows(),
		Summary:      Summarize(r),
		Dumps:        r.Dumps(),
		DumpsDropped: r.DumpsDropped(),
	}
	if flows := r.FlowRows(); len(flows) > 0 {
		snap.Flows = flows
		audit := AuditFlows(r)
		snap.FlowAudit = &audit
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON.
func WriteJSON(w io.Writer, r *Recorder) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(TakeSnapshot(r))
}

// WriteText renders the per-window summary table plus a flight-dump digest,
// the shared text form behind faasmem-stat timeline, faasmem-sim -timeline,
// and the gateway's GET /timeline.
func WriteText(w io.Writer, r *Recorder) error {
	if !r.Enabled() {
		_, err := fmt.Fprintln(w, "timeline: recording disabled")
		return err
	}
	rows := Summarize(r)
	if len(rows) == 0 {
		_, err := fmt.Fprintf(w, "timeline: no samples recorded (window %s)\n", r.Window())
		return err
	}
	if _, err := fmt.Fprintf(w, "timeline: %d windows of %s\n\n", len(rows), r.Window()); err != nil {
		return err
	}
	header := []string{
		"window", "t(s)", "local(MB)", "pool(MB)", "offl(MB)", "recall(MB)",
		"reqs", "p99(ms)", "retries", "timeouts", "fallback", "reinits", "faults",
	}
	cells := make([][]string, 0, len(rows))
	for _, row := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", row.Window),
			fmt.Sprintf("%.0f", row.StartSec),
			fmt.Sprintf("%.1f", row.LocalMB),
			fmt.Sprintf("%.1f", row.PoolMB),
			fmt.Sprintf("%.2f", row.OffloadMB),
			fmt.Sprintf("%.2f", row.RecallMB),
			fmt.Sprintf("%d", row.Requests),
			fmt.Sprintf("%.2f", row.P99Ms),
			fmt.Sprintf("%d", row.Retries),
			fmt.Sprintf("%d", row.Timeouts),
			fmt.Sprintf("%d", row.FallbackPages),
			fmt.Sprintf("%d", row.Reinits),
			fmt.Sprintf("%d", row.FaultKinds),
		})
	}
	if err := writeTable(w, header, cells); err != nil {
		return err
	}
	if err := writeFlowDigest(w, r); err != nil {
		return err
	}
	dumps := r.Dumps()
	if len(dumps) == 0 && r.DumpsDropped() == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "\nflight dumps: %d", len(dumps)); err != nil {
		return err
	}
	if d := r.DumpsDropped(); d > 0 {
		if _, err := fmt.Fprintf(w, " (+%d past cap)", d); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, d := range dumps {
		series := ""
		if d.Series != "" {
			series = " (" + d.Series + ")"
		}
		if _, err := fmt.Fprintf(w, "  dump %d: %-12s at %7.1fs window %d, %d events%s\n",
			i, d.Trigger, d.At.Seconds(), d.Window, len(d.Events), series); err != nil {
			return err
		}
	}
	return nil
}

// writeFlowDigest prints the page byte-flow ledger's compact text form: one
// per-kind total line plus the conservation audit's verdict. The full
// per-window matrix stays in the JSON snapshot (and behind faasmem-stat
// explain / the gateway's GET /flows), where its size is not a problem.
func writeFlowDigest(w io.Writer, r *Recorder) error {
	totals := r.FlowTotals()
	var any bool
	for _, t := range totals {
		if t != 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	const mb = 1 << 20
	parts := make([]string, 0, NumFlows)
	for k := FlowKind(0); k < NumFlows; k++ {
		if totals[k] == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.2f MB", k, float64(totals[k])/mb))
	}
	if _, err := fmt.Fprintf(w, "\nflows: %s\n", strings.Join(parts, ", ")); err != nil {
		return err
	}
	audit := AuditFlows(r)
	switch {
	case audit.Merged:
		_, err := fmt.Fprintf(w, "flow audit: n/a (merged across %d runs; %d checkpoints)\n",
			audit.Runs, audit.Checks)
		return err
	case audit.Checks == 0:
		_, err := fmt.Fprintln(w, "flow audit: no occupancy checkpoints")
		return err
	case audit.OK:
		_, err := fmt.Fprintf(w, "flow audit: conservation OK over %d windows (%d checkpoints)\n",
			len(audit.Windows), audit.Checks)
		return err
	default:
		if _, err := fmt.Fprintf(w, "flow audit: %d of %d windows VIOLATE conservation\n",
			audit.Violations, len(audit.Windows)); err != nil {
			return err
		}
		for _, wa := range audit.Windows {
			if wa.OK {
				continue
			}
			if _, err := fmt.Fprintf(w, "  window %d: occupancy delta %d != net flow %d\n",
				wa.Window, wa.OccDelta, wa.FlowDelta); err != nil {
				return err
			}
		}
		return nil
	}
}

// writeTable prints a fixed-width table with right-aligned columns,
// matching the experiment harness's rendering so timeline output sits
// naturally beside figure tables.
func writeTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) error {
		var b strings.Builder
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			b.WriteString(c)
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := line(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}
