package timeseries

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.AddCounter(time.Second, SeriesRequests, Dims{Node: "n0"}, 1)
	r.SetGauge(time.Second, SeriesPoolUsedBytes, Dims{}, 5)
	r.Observe(time.Second, "x", Dims{}, 5)
	r.ObserveLatency(time.Second, SeriesRequestLatency, Dims{}, time.Second)
	r.ArmFaultStarts([]time.Duration{time.Second})
	r.Reset()
	if r.Rows() != nil || r.Dumps() != nil || Summarize(r) != nil {
		t.Fatal("nil recorder returned data")
	}
	if r.Window() != DefaultWindow {
		t.Fatalf("nil Window = %v, want %v", r.Window(), DefaultWindow)
	}
}

func TestDisabledTimelineZeroAlloc(t *testing.T) {
	var r *Recorder
	d := Dims{Node: "n0", Tenant: "fn"}
	allocs := testing.AllocsPerRun(1000, func() {
		r.AddCounter(3*time.Second, SeriesRequests, d, 1)
		r.SetGauge(3*time.Second, SeriesPoolUsedBytes, d, 7)
		r.ObserveLatency(3*time.Second, SeriesRequestLatency, d, 250*time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %.1f times per op", allocs)
	}
}

func TestWindowedRollups(t *testing.T) {
	r := NewRecorder(Config{Window: time.Second})
	d := Dims{Node: "n0", Tenant: "fn"}
	r.AddCounter(100*time.Millisecond, SeriesRequests, d, 1)
	r.AddCounter(900*time.Millisecond, SeriesRequests, d, 1)
	r.AddCounter(1100*time.Millisecond, SeriesRequests, d, 1)
	r.SetGauge(500*time.Millisecond, SeriesPoolUsedBytes, Dims{Node: "pool"}, 10)
	r.SetGauge(800*time.Millisecond, SeriesPoolUsedBytes, Dims{Node: "pool"}, 20)

	rows := r.Rows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	// Window 0: pool gauge keeps the last value; requests sum to 2.
	byName := map[string]Row{}
	for _, row := range rows {
		if row.Window == 0 {
			byName[row.Name] = row
		}
	}
	if g := byName[SeriesPoolUsedBytes]; g.Last != 20 || g.Kind != "gauge" {
		t.Fatalf("gauge row = %+v, want last 20", g)
	}
	if c := byName[SeriesRequests]; c.Sum != 2 || c.Count != 2 || c.Kind != "counter" {
		t.Fatalf("counter row = %+v, want sum 2", c)
	}
	for _, row := range rows {
		if row.Window == 1 && row.Name == SeriesRequests && row.Sum != 1 {
			t.Fatalf("window 1 requests = %+v, want sum 1", row)
		}
	}
}

func TestSampleQuantile(t *testing.T) {
	r := NewRecorder(Config{Window: time.Second})
	d := Dims{Node: "n0"}
	// 99 fast observations and one slow one: P99 must land at or above the
	// fast cohort and at or below the recorded max.
	for i := 0; i < 99; i++ {
		r.Observe(10*time.Millisecond, SeriesRequestLatency, d, int64(time.Millisecond))
	}
	slow := int64(800 * time.Millisecond)
	r.Observe(20*time.Millisecond, SeriesRequestLatency, d, slow)
	rows := r.Rows()
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	p99 := rows[0].P99
	if p99 < int64(time.Millisecond) || p99 > slow {
		t.Fatalf("P99 = %d, want within [1ms, %d]", p99, slow)
	}
	if rows[0].Max != slow {
		t.Fatalf("Max = %d, want %d", rows[0].Max, slow)
	}
}

func TestFaultWindowDump(t *testing.T) {
	r := NewRecorder(Config{Window: time.Second, FlightWindows: 4})
	r.ArmFaultStarts([]time.Duration{10 * time.Second})
	d := Dims{Node: "n0"}
	r.AddCounter(7*time.Second, SeriesRequests, d, 1)    // within 4 windows of 10s
	r.AddCounter(2*time.Second, SeriesRecallBytes, d, 5) // too old for the dump
	if got := len(r.Dumps()); got != 0 {
		t.Fatalf("dump before trigger: %d", got)
	}
	r.AddCounter(10500*time.Millisecond, SeriesRequests, d, 1)
	dumps := r.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	dmp := dumps[0]
	if dmp.Trigger != TriggerFaultWindow || dmp.At != 10*time.Second || dmp.Window != 10 {
		t.Fatalf("dump = %+v", dmp)
	}
	// The dump covers [6s, 10s): the 7s event qualifies, the 2s one does
	// not, and the triggering 10.5s event arrives after the snapshot.
	if len(dmp.Events) != 1 || dmp.Events[0].At != 7*time.Second {
		t.Fatalf("dump events = %+v, want the single 7s event", dmp.Events)
	}
}

func TestBurnRateDump(t *testing.T) {
	r := NewRecorder(Config{Window: time.Second, SLO: 100 * time.Millisecond, BurnThreshold: 0.5})
	d := Dims{Node: "n0"}
	// Window 0: all observations breach the SLO.
	r.ObserveLatency(200*time.Millisecond, SeriesRequestLatency, d, 500*time.Millisecond)
	r.ObserveLatency(600*time.Millisecond, SeriesRequestLatency, d, 300*time.Millisecond)
	if got := len(r.Dumps()); got != 0 {
		t.Fatalf("dump before window sealed: %d", got)
	}
	// First observation in window 1 seals window 0 and trips the alarm.
	r.ObserveLatency(1500*time.Millisecond, SeriesRequestLatency, d, 10*time.Millisecond)
	dumps := r.Dumps()
	if len(dumps) != 1 || dumps[0].Trigger != TriggerSLOBurn {
		t.Fatalf("dumps = %+v, want one slo-burn dump", dumps)
	}
	// Window 1 is healthy: sealing it must not dump again.
	r.ObserveLatency(2500*time.Millisecond, SeriesRequestLatency, d, 10*time.Millisecond)
	if got := len(r.Dumps()); got != 1 {
		t.Fatalf("healthy window dumped: %d dumps", got)
	}
}

func TestFlightRingBounded(t *testing.T) {
	r := NewRecorder(Config{Window: time.Second, FlightCapacity: 8, FlightWindows: 100})
	d := Dims{Node: "n0"}
	for i := 0; i < 20; i++ {
		r.AddCounter(time.Duration(i)*time.Millisecond, SeriesRequests, d, int64(i))
	}
	if got := r.FlightTotal(); got != 20 {
		t.Fatalf("FlightTotal = %d, want 20", got)
	}
	r.ArmFaultStarts([]time.Duration{30 * time.Millisecond})
	r.AddCounter(40*time.Millisecond, SeriesRequests, d, 1)
	dumps := r.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps", len(dumps))
	}
	evs := dumps[0].Events
	if len(evs) != 8 {
		t.Fatalf("dump kept %d events, want ring capacity 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("dump events out of order: %+v", evs)
		}
	}
}

func TestSummarizeAndWriteText(t *testing.T) {
	r := NewRecorder(Config{Window: time.Second})
	r.SetGauge(500*time.Millisecond, SeriesNodeLocalBytes, Dims{Node: "n0"}, 2<<20)
	r.SetGauge(500*time.Millisecond, SeriesNodeLocalBytes, Dims{Node: "n1"}, 3<<20)
	r.SetGauge(500*time.Millisecond, SeriesPoolUsedBytes, Dims{Node: "pool"}, 4<<20)
	r.AddCounter(600*time.Millisecond, SeriesOffloadBytes, Dims{Node: "pool"}, 1<<20)
	r.AddCounter(2500*time.Millisecond, SeriesFetchRetries, Dims{Node: "pool"}, 3)
	r.ObserveLatency(700*time.Millisecond, SeriesRequestLatency, Dims{Node: "n0", Tenant: "fn"}, 40*time.Millisecond)
	r.AddCounter(700*time.Millisecond, SeriesRequests, Dims{Node: "n0", Tenant: "fn"}, 1)

	sum := Summarize(r)
	if len(sum) != 3 {
		t.Fatalf("got %d summary rows, want 3 (windows 0..2)", len(sum))
	}
	w0 := sum[0]
	if w0.LocalMB != 5 || w0.PoolMB != 4 || w0.OffloadMB != 1 || w0.Requests != 1 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if w0.P99Ms <= 0 || w0.P99Ms > 41 {
		t.Fatalf("window 0 P99Ms = %v, want (0, 41]", w0.P99Ms)
	}
	if sum[1].Requests != 0 || sum[2].Retries != 3 {
		t.Fatalf("windows 1/2 = %+v / %+v", sum[1], sum[2])
	}

	var buf bytes.Buffer
	if err := WriteText(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"timeline: 3 windows of 1s", "window", "p99(ms)", "retries"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestRowsDeterministicOrder(t *testing.T) {
	build := func() []Row {
		r := NewRecorder(Config{Window: time.Second})
		for i := 0; i < 50; i++ {
			d := Dims{Node: "n" + string(rune('0'+i%3)), Tenant: "t" + string(rune('0'+i%5))}
			r.AddCounter(time.Duration(i)*137*time.Millisecond, SeriesRequests, d, 1)
		}
		return r.Rows()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMaxDumpsCap(t *testing.T) {
	r := NewRecorder(Config{Window: time.Second, MaxDumps: 2})
	starts := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	r.ArmFaultStarts(starts)
	r.AddCounter(5*time.Second, SeriesRequests, Dims{}, 1)
	if got := len(r.Dumps()); got != 2 {
		t.Fatalf("got %d dumps, want 2", got)
	}
	if got := r.DumpsDropped(); got != 2 {
		t.Fatalf("DumpsDropped = %d, want 2", got)
	}
}
