package timeseries

import (
	"sort"

	"github.com/faasmem/faasmem/internal/simtime"
)

// The page byte-flow ledger tracks how bytes move between page states —
// local → offloaded → compressed → spilled → recalled → fallback-read →
// discarded — as a per-window flow matrix keyed by node/tenant/page-class,
// with a built-in conservation audit: every pool-occupancy mutation records
// the flow that caused it plus an occupancy checkpoint, so the recorder can
// verify per window that inflow − outflow equals the occupancy delta. A
// missing hook, a mis-clamped byte count, or a mutation that bypasses the
// ledger shows up as an audit violation instead of silently skewing the
// numbers the paper's headline claims rest on.

// FlowKind names one transition in the page-state flow matrix.
type FlowKind uint8

// The flow kinds. Direction is relative to pool occupancy: offload flows
// into the pool, recall/fault/fallback/discard flow out, and compress/spill
// move bytes between pool tiers without changing occupancy.
const (
	// FlowOffload moves cold local bytes into the pool.
	FlowOffload FlowKind = iota
	// FlowRecall brings bytes back ahead of demand (planned recall).
	FlowRecall
	// FlowFault brings bytes back on a demand page fault.
	FlowFault
	// FlowFallback releases pool bytes whose content was served from the
	// local swap device after a failed remote fetch.
	FlowFallback
	// FlowDiscard drops a recycled container's pool bytes.
	FlowDiscard
	// FlowCompress moves pool bytes into the compressed tier (intra-pool).
	FlowCompress
	// FlowSpill moves pool bytes into the spill tier (intra-pool).
	FlowSpill
	// FlowShareRead copies shared-region bytes to a mapping consumer without
	// releasing the pool's resident copy — pool occupancy is unchanged, so
	// the flow is direction-0 like the intra-pool tier moves.
	FlowShareRead
	// FlowMerge records pages admitted onto a merge master wider than their
	// own function: the logical bytes land in the pool but the widened
	// master already stores them, so occupancy is unchanged (direction 0 —
	// the occupancy effect of the admission itself is the accompanying
	// FlowOffload).
	FlowMerge
	// FlowUnmerge records a copy-on-write break privatizing pages out of a
	// merge master: bytes move between a shared and a private copy inside
	// the pool, occupancy unchanged (direction 0).
	FlowUnmerge
	// NumFlows is the number of flow kinds.
	NumFlows
)

var flowNames = [NumFlows]string{
	FlowOffload:   "offload",
	FlowRecall:    "recall",
	FlowFault:     "fault",
	FlowFallback:  "fallback",
	FlowDiscard:   "discard",
	FlowCompress:  "compress",
	FlowSpill:     "spill",
	FlowShareRead: "share-read",
	FlowMerge:     "merge",
	FlowUnmerge:   "unmerge",
}

// String names the flow kind.
func (f FlowKind) String() string {
	if int(f) < len(flowNames) {
		return flowNames[f]
	}
	return "unknown"
}

var flowDirections = [NumFlows]int{
	FlowOffload:   +1,
	FlowRecall:    -1,
	FlowFault:     -1,
	FlowFallback:  -1,
	FlowDiscard:   -1,
	FlowCompress:  0,
	FlowSpill:     0,
	FlowShareRead: 0,
	FlowMerge:     0,
	FlowUnmerge:   0,
}

// Direction is the flow's sign on pool occupancy: +1 inflow, -1 outflow,
// 0 intra-pool tier movement.
func (f FlowKind) Direction() int {
	if int(f) < len(flowDirections) {
		return flowDirections[f]
	}
	return 0
}

// flowKey identifies one flow series; comparable, so the hot-path lookup
// allocates nothing.
type flowKey struct {
	kind FlowKind
	dims Dims
}

// occWindow holds one window's occupancy checkpoints: the first and last
// (occupancy, cumulative-net-flow) pair seen in the window. Conservation
// inside the window is lastOcc-firstOcc == lastNet-firstNet; across adjacent
// checkpointed windows it is firstOcc(w)-lastOcc(prev) ==
// firstNet(w)-lastNet(prev).
type occWindow struct {
	firstOcc, firstNet int64
	lastOcc, lastNet   int64
	checks             int64
}

// AddFlow accumulates bytes into the flow ledger for the window containing
// at. Call it at the instrumentation site that mutates pool occupancy, with
// the same (clamped) byte count the mutation applied, then checkpoint with
// FlowOccupancy; the audit verifies the two agree per window. No-op on nil.
func (r *Recorder) AddFlow(at simtime.Time, kind FlowKind, d Dims, bytes int64) {
	if r == nil || bytes == 0 {
		return
	}
	r.mu.Lock()
	r.crossTriggers(at)
	k := flowKey{kind: kind, dims: d}
	m := r.flows[k]
	if m == nil {
		m = make(map[int64]int64)
		r.flows[k] = m
	}
	m[r.windowOf(at)] += bytes
	r.flowNet += int64(kind.Direction()) * bytes
	r.mu.Unlock()
}

// FlowOccupancy checkpoints the pool occupancy after a mutation. The audit
// compares occupancy deltas between checkpoints against the net flow
// recorded between them. No-op on nil.
func (r *Recorder) FlowOccupancy(at simtime.Time, occ int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.flowRuns == 0 {
		r.flowRuns = 1
	}
	win := r.windowOf(at)
	w := r.occ[win]
	if w == nil {
		w = &occWindow{firstOcc: occ, firstNet: r.flowNet}
		r.occ[win] = w
	}
	w.lastOcc = occ
	w.lastNet = r.flowNet
	w.checks++
	r.mu.Unlock()
}

// StartFlowRun marks the beginning of an independent simulation run feeding
// this recorder. Occupancy conservation is only meaningful within one run
// (each run's pool starts empty at virtual time zero); when a recorder has
// accumulated more than one run — a service-lifetime gateway recorder, or a
// shared sink merged from scenario shards — the audit reports itself
// not-applicable instead of flagging spurious violations.
func (r *Recorder) StartFlowRun() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.flowRuns++
	r.mu.Unlock()
}

// FlowRow is one (flow, dims, window) ledger cell flattened for export.
type FlowRow struct {
	// Window is the window index (Start = Window · window size).
	Window int64 `json:"window"`
	// Start is the window's virtual start time.
	Start simtime.Time `json:"start"`
	// Flow names the transition ("offload", "recall", ...).
	Flow string `json:"flow"`
	// Direction is the flow's sign on pool occupancy (+1, -1, 0).
	Direction int `json:"direction"`
	// Node, Tenant, Class are the ledger dimensions (empty when not
	// applicable).
	Node   string `json:"node,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
	// Bytes moved in the window.
	Bytes int64 `json:"bytes"`
}

// FlowRows flattens the ledger, sorted by (Window, Flow kind, Node, Tenant,
// Class) so output is deterministic regardless of map iteration order.
func (r *Recorder) FlowRows() []FlowRow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []FlowRow
	for k, wins := range r.flows {
		for win, bytes := range wins {
			out = append(out, FlowRow{
				Window:    win,
				Start:     simtime.Time(win) * r.cfg.Window,
				Flow:      k.kind.String(),
				Direction: k.kind.Direction(),
				Node:      k.dims.Node,
				Tenant:    k.dims.Tenant,
				Class:     k.dims.Class,
				Bytes:     bytes,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Flow != b.Flow {
			return flowOrder(a.Flow) < flowOrder(b.Flow)
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Class < b.Class
	})
	return out
}

// flowOrder ranks flow names in enum order so tables read in page-lifecycle
// order rather than alphabetically.
func flowOrder(name string) int {
	for i, n := range flowNames {
		if n == name {
			return i
		}
	}
	return len(flowNames)
}

// FlowWindowAudit is one window's conservation arithmetic: the occupancy
// delta between the window's first and last checkpoints (plus the carry from
// the previous checkpointed window) against the net flow recorded over the
// same span.
type FlowWindowAudit struct {
	// Window is the window index.
	Window int64 `json:"window"`
	// OccDelta is the occupancy change covered by this window's
	// checkpoints, including the carry since the previous checkpointed
	// window.
	OccDelta int64 `json:"occ_delta"`
	// FlowDelta is the net signed flow (inflow − outflow) over the same
	// span.
	FlowDelta int64 `json:"flow_delta"`
	// Checks counts occupancy checkpoints in the window.
	Checks int64 `json:"checks"`
	// OK reports OccDelta == FlowDelta.
	OK bool `json:"ok"`
}

// FlowAudit is the ledger's self-check: per-window conservation of
// inflow − outflow against occupancy deltas.
type FlowAudit struct {
	// Runs counts independent simulation runs folded into the recorder.
	Runs int `json:"runs"`
	// Merged is true when Runs > 1: occupancy checkpoints from separate
	// virtual clocks interleave, so conservation is not applicable (flows
	// themselves still merge additively and stay meaningful).
	Merged bool `json:"merged,omitempty"`
	// Checks counts occupancy checkpoints audited.
	Checks int64 `json:"checks"`
	// Windows is the per-window arithmetic, ascending by window.
	Windows []FlowWindowAudit `json:"windows,omitempty"`
	// Violations counts windows where conservation failed.
	Violations int `json:"violations"`
	// OK is true when every audited window conserved (vacuously true when
	// Merged or when nothing was checkpointed).
	OK bool `json:"ok"`
}

// AuditFlows runs the conservation check: for every checkpointed window, the
// occupancy delta since the previous checkpoint must equal the net signed
// flow recorded in between. A hook site that mutates occupancy without
// recording a flow (or records different bytes than it applied) fails the
// audit.
func AuditFlows(r *Recorder) FlowAudit {
	if r == nil {
		return FlowAudit{OK: true}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a := FlowAudit{Runs: r.flowRuns, OK: true}
	if r.flowRuns > 1 {
		a.Merged = true
		for _, w := range r.occ {
			a.Checks += w.checks
		}
		return a
	}
	wins := make([]int64, 0, len(r.occ))
	for win := range r.occ {
		wins = append(wins, win)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	var havePrev bool
	var prevOcc, prevNet int64
	for _, win := range wins {
		w := r.occ[win]
		wa := FlowWindowAudit{Window: win, Checks: w.checks}
		if havePrev {
			// Carry from the previous checkpointed window: flows recorded
			// after its last checkpoint land here.
			wa.OccDelta = w.lastOcc - prevOcc
			wa.FlowDelta = w.lastNet - prevNet
		} else {
			wa.OccDelta = w.lastOcc - w.firstOcc
			wa.FlowDelta = w.lastNet - w.firstNet
		}
		wa.OK = wa.OccDelta == wa.FlowDelta
		if !wa.OK {
			a.Violations++
			a.OK = false
		}
		a.Checks += w.checks
		a.Windows = append(a.Windows, wa)
		havePrev = true
		prevOcc = w.lastOcc
		prevNet = w.lastNet
	}
	return a
}

// FlowTotals sums each flow kind's bytes across all windows and dimensions,
// indexed by FlowKind — the compact digest WriteText prints.
func (r *Recorder) FlowTotals() [NumFlows]int64 {
	var totals [NumFlows]int64
	if r == nil {
		return totals
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, wins := range r.flows {
		for _, bytes := range wins {
			totals[k.kind] += bytes
		}
	}
	return totals
}

// mergeFlowsLocked folds src's ledger into r; both mutexes are held by
// MergeFrom. Flows merge additively per (flow, dims, window); occupancy
// windows keep r's first checkpoint and take src's last (deterministic under
// the fixed shard merge order); run counts add, so a multi-run sink audits
// as Merged.
func (r *Recorder) mergeFlowsLocked(src *Recorder) {
	for k, wins := range src.flows {
		dst := r.flows[k]
		if dst == nil {
			dst = make(map[int64]int64, len(wins))
			r.flows[k] = dst
		}
		for win, bytes := range wins {
			dst[win] += bytes
		}
	}
	for win, sw := range src.occ {
		dw := r.occ[win]
		if dw == nil {
			cp := *sw
			r.occ[win] = &cp
			continue
		}
		dw.lastOcc = sw.lastOcc
		dw.lastNet = sw.lastNet
		dw.checks += sw.checks
	}
	r.flowNet += src.flowNet
	r.flowRuns += src.flowRuns
}
