package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// Chrome trace-event JSON ("JSON Object Format"), loadable by Perfetto
// (https://ui.perfetto.dev) and chrome://tracing. One thread (track) per
// actor — container, node, or link — all under a single process. Spans
// become complete events ("X"), instants become instant events ("i"), and
// thread-name metadata events label the tracks. Timestamps are virtual-time
// microseconds, so the viewer's timeline is the simulation's timeline.

type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs is a fixed struct (not a map) so field order — and therefore
// the exported bytes — is deterministic for golden-file comparison.
type chromeArgs struct {
	Name     string `json:"name,omitempty"` // metadata events only
	Function string `json:"function,omitempty"`
	Stage    string `json:"stage,omitempty"`
	Value    int64  `json:"value,omitempty"`
	Aux      int64  `json:"aux,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePid = 1

// WriteChromeTrace writes the tracer's events as Chrome trace-event JSON.
// Events are sorted by (At, recording order) and tracks are numbered in
// first-appearance order, so the output of a seeded run is byte-stable.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(evs)+8),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: &chromeArgs{Name: "faasmem"},
	})

	tids := map[string]int{}
	tidOf := func(actor string) int {
		if actor == "" {
			actor = "sim"
		}
		if id, ok := tids[actor]; ok {
			return id
		}
		id := len(tids) + 1
		tids[actor] = id
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: id,
			Args: &chromeArgs{Name: actor},
		})
		return id
	}

	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  eventCategory(ev.Kind),
			Ts:   float64(ev.At) / 1e3, // ns → µs
			Pid:  chromePid,
			Tid:  tidOf(ev.Actor),
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.S = "t" // thread-scoped instant
		}
		if ev.Fn != "" || ev.Stage != StageNone || ev.Value != 0 || ev.Aux != 0 {
			ce.Args = &chromeArgs{
				Function: ev.Fn,
				Stage:    ev.Stage.String(),
				Value:    ev.Value,
				Aux:      ev.Aux,
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteChromeTraceFile writes the trace to path, creating or truncating it.
func WriteChromeTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// eventCategory groups kinds into the filterable categories Perfetto shows.
func eventCategory(k Kind) string {
	switch k {
	case KindContainerLaunch, KindRuntimeLoaded, KindInitDone,
		KindContainerIdle, KindContainerRecycle, KindContainerEvict:
		return "lifecycle"
	case KindRequest, KindRequestQueued:
		return "request"
	case KindBarrierInsert, KindPageOffload, KindPucketOffload,
		KindRollback, KindWindowFixed, KindSemiWarmEnter, KindSemiWarmExit:
		return "offload"
	case KindPageFault:
		return "fault"
	case KindLinkTransfer, KindLinkSaturation, KindSwapFull:
		return "link"
	default:
		return "misc"
	}
}
