package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes monotone counters from set-anywhere gauges, which
// matters to Prometheus scrapers (rate() is only valid on counters).
type MetricType uint8

// The metric types.
const (
	// CounterType is a monotonically increasing total.
	CounterType MetricType = iota
	// GaugeType is an instantaneous level.
	GaugeType
)

// String returns the Prometheus TYPE keyword.
func (t MetricType) String() string {
	if t == GaugeType {
		return "gauge"
	}
	return "counter"
}

// Metric is one named counter or gauge. All operations are atomic and
// nil-safe: a nil *Metric (from a nil Registry) absorbs updates for free, so
// subsystems hold and update metrics unconditionally.
type Metric struct {
	name string
	help string
	typ  MetricType
	v    atomic.Int64
}

// Name returns the metric's registered name.
func (m *Metric) Name() string {
	if m == nil {
		return ""
	}
	return m.name
}

// Help returns the metric's description.
func (m *Metric) Help() string {
	if m == nil {
		return ""
	}
	return m.help
}

// Type returns the metric type.
func (m *Metric) Type() MetricType {
	if m == nil {
		return CounterType
	}
	return m.typ
}

// Add increases the metric by n. No-op on nil.
func (m *Metric) Add(n int64) {
	if m != nil {
		m.v.Add(n)
	}
}

// Inc increases the metric by one. No-op on nil.
func (m *Metric) Inc() { m.Add(1) }

// Set stores an absolute value (gauges). No-op on nil.
func (m *Metric) Set(n int64) {
	if m != nil {
		m.v.Store(n)
	}
}

// Value reads the current value, 0 on nil.
func (m *Metric) Value() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// Registry is a set of named metrics. A nil *Registry hands out nil metrics,
// keeping the whole path a no-op. Registration is idempotent: asking for an
// existing name returns the same metric, which is how counters accumulate
// across scenario runs sharing one registry (the gateway's /metrics view).
type Registry struct {
	mu        sync.Mutex
	order     []*Metric
	byName    map[string]*Metric
	hists     map[string]*Histogram
	histOrder []*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Metric)}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Metric {
	return r.metric(name, help, CounterType)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Metric {
	return r.metric(name, help, GaugeType)
}

func (r *Registry) metric(name, help string, typ MetricType) *Metric {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, typ, m.typ))
		}
		return m
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was histogram", name, typ))
	}
	m := &Metric{name: name, help: help, typ: typ}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Get returns the named metric or nil.
func (r *Registry) Get(name string) *Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[sanitizeName(name)]
}

// Sample is one metric's value at snapshot time.
type Sample struct {
	// Name is the metric name.
	Name string
	// Help is the metric description.
	Help string
	// Type is the metric type.
	Type MetricType
	// Value is the value read at snapshot time.
	Value int64
}

// Snapshot reads every metric at one instant, sorted by name so output is
// deterministic regardless of registration order.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*Metric, len(r.order))
	copy(metrics, r.order)
	r.mu.Unlock()
	out := make([]Sample, len(metrics))
	for i, m := range metrics {
		out[i] = Sample{Name: m.name, Help: m.help, Type: m.typ, Value: m.Value()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sanitizeName maps a metric name onto the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing invalid runes with '_'.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	b := []byte(name)
	changed := false
	for i, c := range b {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			b[i] = '_'
			changed = true
		}
	}
	if !changed {
		return name
	}
	return string(b)
}
