// Package gateway exposes the simulator over HTTP, mirroring the role of
// the paper artifact's gateway/test_server pair: a long-running service that
// accepts scenario requests, replays them on the discrete-event platform,
// and returns the outcome as JSON for scripted evaluation workflows.
//
// Endpoints:
//
//	GET  /healthz             liveness probe
//	GET  /metrics             live counters, Prometheus text format
//	GET  /attrib              latency attribution over recorded spans
//	                          (?format=text|json|prometheus)
//	GET  /timeline            per-window time-series rollups
//	                          (?format=text|json)
//	GET  /flight              flight-recorder dumps (fault windows, SLO burn)
//	GET  /exemplars           worst-K tail exemplars per (window, node, tenant)
//	GET  /flows               page byte-flow ledger + conservation audit
//	GET  /benchmarks          the 11 benchmark profiles
//	GET  /policies            available offloading policies
//	POST /run                 run one scenario (JSON body, JSON outcome)
//	POST /replay              replay a multi-function trace (tracegen JSON)
//	POST /experiments/{name}  regenerate one figure/table (quick variants)
//
// The gateway instruments every run with a shared telemetry registry, so
// /metrics aggregates simulation counters (cold starts, offloaded pages,
// link traffic) across the service's lifetime alongside the gateway's own
// request counters. Metrics are atomics and handlers run concurrently; this
// is the one place the simulator's counters are read while runs mutate them.
package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// RunRequest is the POST /run body.
type RunRequest struct {
	// Bench names one of the 11 benchmarks.
	Bench string `json:"bench"`
	// Policy is one of baseline, tmo, damon, faasmem,
	// faasmem-w/o-pucket, faasmem-w/o-semiwarm.
	Policy string `json:"policy"`
	// DurationSec is the trace window in seconds. Default 600.
	DurationSec float64 `json:"duration_sec"`
	// MeanGapSec is the mean request inter-arrival gap. Default 15.
	MeanGapSec float64 `json:"mean_gap_sec"`
	// Bursty selects Markov-modulated arrivals.
	Bursty bool `json:"bursty"`
	// KeepAliveSec is the keep-alive timeout. Default 600.
	KeepAliveSec float64 `json:"keep_alive_sec"`
	// Seed drives all randomness. Default 1.
	Seed int64 `json:"seed"`
	// FaultIntensity in [0, 1] arms a seed-driven fault plan beneath the
	// remote-memory path (link flaps, pool crashes, tier storms, latency
	// spikes). 0 (the default) runs fault-free.
	FaultIntensity float64 `json:"fault_intensity"`
	// FaultSeed drives the fault schedule independently of Seed. Defaults
	// to Seed.
	FaultSeed int64 `json:"fault_seed"`
	// Workflow names a built-in workflow DAG; when set the run executes the
	// DAG (back-to-back, WorkflowRuns times) instead of a single-bench
	// scenario, and Bench/MeanGapSec/Bursty/Policy are ignored.
	Workflow string `json:"workflow"`
	// StateMode selects how the workflow passes intermediate state: "pool"
	// (shared regions on the memory pool, the default) or "reinit" (every
	// consumer re-derives its inputs — the stateless baseline).
	StateMode string `json:"state_mode"`
	// WorkflowRuns is the number of chained workflow runs. Default 4.
	WorkflowRuns int `json:"workflow_runs"`
	// FanoutWidth scales the workflow's replicated stages; 0 keeps the
	// shape's declared width. Max 64.
	FanoutWidth int `json:"fanout_width"`
	// MergeScope widens the pool-side page-merge domain: function, tenant,
	// or cross-tenant. Setting it (or CacheMB) backs the run's pool with a
	// simulated memory node and the outcome reports the node's stats.
	MergeScope string `json:"merge_scope"`
	// MergeOptIn lists tenants consenting to cross-tenant merging.
	MergeOptIn []string `json:"merge_opt_in"`
	// CacheMB sizes the node's shared multi-tenant cache tier. Max 16384.
	CacheMB int `json:"cache_mb"`

	mergeScope memnode.MergeScope
}

func (r *RunRequest) normalize() error {
	if r.Bench == "" {
		r.Bench = "web"
	}
	if workload.ByName(r.Bench) == nil {
		return fmt.Errorf("unknown benchmark %q (options: %s)", r.Bench, strings.Join(workload.Names(), ", "))
	}
	if r.Policy == "" {
		r.Policy = string(experiments.FaaSMem)
	}
	if !experiments.ValidPolicy(experiments.PolicyKind(r.Policy)) {
		return fmt.Errorf("unknown policy %q", r.Policy)
	}
	if r.DurationSec <= 0 {
		r.DurationSec = 600
	}
	if r.DurationSec > 24*3600 {
		return fmt.Errorf("duration %gs too long (max 24h)", r.DurationSec)
	}
	if r.MeanGapSec <= 0 {
		r.MeanGapSec = 15
	}
	if r.KeepAliveSec <= 0 {
		r.KeepAliveSec = 600
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.FaultIntensity < 0 || r.FaultIntensity > 1 {
		return fmt.Errorf("fault_intensity %g out of range [0, 1]", r.FaultIntensity)
	}
	if r.FaultSeed == 0 {
		r.FaultSeed = r.Seed
	}
	if r.Workflow != "" {
		if _, err := workload.WorkflowByName(r.Workflow); err != nil {
			return fmt.Errorf("unknown workflow %q (options: %s)", r.Workflow, strings.Join(workload.WorkflowNames(), ", "))
		}
	}
	switch r.StateMode {
	case "":
		r.StateMode = "pool"
	case "pool", "reinit":
	default:
		return fmt.Errorf("unknown state_mode %q (options: pool, reinit)", r.StateMode)
	}
	if r.WorkflowRuns < 0 || r.WorkflowRuns > 100 {
		return fmt.Errorf("workflow_runs %d out of range [0, 100]", r.WorkflowRuns)
	}
	if r.WorkflowRuns == 0 {
		r.WorkflowRuns = 4
	}
	if r.FanoutWidth < 0 || r.FanoutWidth > 64 {
		return fmt.Errorf("fanout_width %d out of range [0, 64]", r.FanoutWidth)
	}
	var err error
	if r.mergeScope, err = memnode.ParseMergeScope(r.MergeScope); err != nil {
		return err
	}
	if r.CacheMB < 0 || r.CacheMB > 16384 {
		return fmt.Errorf("cache_mb %d out of range [0, 16384]", r.CacheMB)
	}
	return nil
}

// RunResponse is the POST /run result.
type RunResponse struct {
	Bench    string              `json:"bench"`
	Policy   string              `json:"policy"`
	Requests int                 `json:"requests"`
	Outcome  experiments.Outcome `json:"outcome"`
}

// WorkflowRunResponse is the POST /run result for workflow requests.
type WorkflowRunResponse struct {
	Workflow string                  `json:"workflow"`
	Mode     string                  `json:"mode"`
	Row      experiments.StatefulRow `json:"row"`
}

// server holds the gateway's shared state: the telemetry registry every
// simulation run reports into, plus the gateway's own request counters.
type server struct {
	reg         *telemetry.Registry
	spans       *span.Recorder
	timeline    *timeseries.Recorder
	exemplars   *exemplar.Recorder
	runs        *telemetry.Metric
	replays     *telemetry.Metric
	experiments *telemetry.Metric
	errors      *telemetry.Metric
}

func newServer() *server {
	reg := telemetry.NewRegistry()
	return &server{
		reg:         reg,
		spans:       span.NewRecorder(span.DefaultCapacity),
		timeline:    timeseries.NewRecorder(timeseries.Config{}),
		exemplars:   exemplar.NewRecorder(exemplar.Config{}),
		runs:        reg.Counter("gateway_runs_total", "POST /run scenarios executed"),
		replays:     reg.Counter("gateway_replays_total", "POST /replay traces executed"),
		experiments: reg.Counter("gateway_experiments_total", "POST /experiments regenerations executed"),
		errors:      reg.Counter("gateway_errors_total", "requests rejected with an error status"),
	}
}

// hub is the telemetry wiring passed into simulation runs: metrics aggregate
// into the shared registry; per-event tracing stays off (a service-lifetime
// ring of interleaved runs would not be meaningful).
func (s *server) hub() telemetry.Hub { return telemetry.Hub{Reg: s.reg} }

// Handler builds the gateway's HTTP handler.
func Handler() http.Handler {
	s := newServer()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", telemetry.PrometheusHandler(s.reg))
	mux.HandleFunc("GET /attrib", s.handleAttrib)
	mux.HandleFunc("GET /timeline", s.handleTimeline)
	mux.HandleFunc("GET /flight", s.handleFlight)
	mux.HandleFunc("GET /exemplars", s.handleExemplars)
	mux.HandleFunc("GET /flows", s.handleFlows)
	mux.HandleFunc("GET /benchmarks", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, workload.Profiles())
	})
	mux.HandleFunc("GET /policies", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, experiments.PolicyKinds())
	})
	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, experimentNames)
	})
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /replay", s.handleReplay)
	mux.HandleFunc("POST /experiments/{name}", s.handleExperiment)
	return mux
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := req.normalize(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.runs.Inc()
	if req.Workflow != "" {
		row := experiments.RunWorkflowCell(experiments.StatefulOptions{
			Runs: req.WorkflowRuns,
			Seed: req.Seed,
		}, req.Workflow, req.StateMode == "pool", req.FanoutWidth, 0)
		writeJSON(w, http.StatusOK, WorkflowRunResponse{
			Workflow: req.Workflow,
			Mode:     req.StateMode,
			Row:      row,
		})
		return
	}
	duration := time.Duration(req.DurationSec * float64(time.Second))
	keepAlive := time.Duration(req.KeepAliveSec * float64(time.Second))
	fn := trace.GenerateFunction(req.Bench, duration,
		time.Duration(req.MeanGapSec*float64(time.Second)), req.Bursty, req.Seed)
	sc := experiments.Scenario{
		Profile:     workload.ByName(req.Bench),
		Invocations: fn.Invocations,
		Duration:    duration,
		KeepAlive:   keepAlive,
		Policy:      experiments.PolicyKind(req.Policy),
		SeedHistory: true,
		Seed:        req.Seed,
		Telemetry:   s.hub(),
		Spans:       s.spans,
		Timeline:    s.timeline,
		Exemplars:   s.exemplars,
	}
	if req.MergeScope != "" || req.CacheMB > 0 {
		sc.Pool.Node = &memnode.Config{
			MergeScope: req.mergeScope,
			MergeOptIn: req.MergeOptIn,
			CacheBytes: int64(req.CacheMB) << 20,
		}
	}
	if req.FaultIntensity > 0 {
		sc.Pool.Faults = faultinject.New(faultinject.Config{
			Horizon:   duration + keepAlive,
			Intensity: req.FaultIntensity,
			Seed:      req.FaultSeed,
		})
	}
	out := experiments.RunScenario(sc)
	writeJSON(w, http.StatusOK, RunResponse{
		Bench:    req.Bench,
		Policy:   req.Policy,
		Requests: out.Requests,
		Outcome:  out,
	})
}

// experimentNames lists the regenerable experiments, in the paper's order.
var experimentNames = []string{
	"fig1", "fig2", "fig4", "fig5", "fig6", "fig8", "fig9",
	"fig12", "table1", "fig13", "fig14", "fig15", "fig16",
	"ext-pools", "ext-coldstart", "ext-readahead", "ext-keepalive",
	"ext-percentile", "ext-rack", "ext-attrib", "ext-pool-density",
	"ext-merge", "ext-resilience", "ext-observe", "ext-drilldown",
	"ext-stateful",
}

// handleExperiment regenerates one figure/table at quick scale and returns
// its rows as JSON.
func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := strings.ToLower(r.PathValue("name"))
	var seed int64 = 1
	if q := r.URL.Query().Get("seed"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &seed); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", q))
			return
		}
	}
	s.experiments.Inc()
	var rows any
	switch name {
	case "fig1":
		rows = experiments.Fig1(experiments.Fig1Options{Seed: seed})
	case "fig2":
		rows = experiments.Fig2(experiments.Fig2Options{Duration: 15 * time.Minute, Seed: seed})
	case "fig4":
		rows = experiments.Fig4()
	case "fig5":
		rows = experiments.Fig5(experiments.Fig5Options{Seed: seed})
	case "fig6":
		rows = experiments.Fig6(experiments.Fig6Options{Seed: seed})
	case "fig8":
		rows = experiments.Fig8(experiments.Fig8Options{Seed: seed})
	case "fig9":
		rows = experiments.Fig9(25, seed)
	case "fig12":
		rows = experiments.Fig12(experiments.Fig12Options{
			Duration: 10 * time.Minute,
			Benches:  []string{"bert", "graph", "web", "json"},
			Seed:     seed,
		})
	case "table1":
		rows = experiments.Table1(experiments.Table1Options{Duration: 8 * time.Minute, Seed: seed})
	case "fig13":
		rows = experiments.Fig13(experiments.Fig13Options{Duration: 10 * time.Minute, Seed: seed})
	case "fig14":
		rows = experiments.Fig14(experiments.Fig14Options{NumFunctions: 80, Duration: 2 * time.Hour, Seed: seed})
	case "fig15":
		rows = experiments.Fig15()
	case "fig16":
		rows = experiments.Fig16(experiments.Fig16Options{Traces: 6, Duration: 10 * time.Minute, Seed: seed})
	case "ext-pools":
		rows = experiments.PoolComparison(experiments.PoolComparisonOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-coldstart":
		rows = experiments.ColdStartTiming(experiments.ColdStartTimingOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-readahead":
		rows = experiments.Readahead(experiments.ReadaheadOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-keepalive":
		rows = experiments.KeepAliveStrategies(experiments.KeepAliveStrategiesOptions{Duration: 10 * time.Minute, Seed: seed})
	case "ext-percentile":
		rows = experiments.PercentileSweep(experiments.PercentileSweepOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-rack":
		rows = experiments.RackDensity(experiments.RackDensityOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-attrib":
		rows = experiments.AttribPressure(experiments.AttribPressureOptions{Duration: 10 * time.Minute, Seed: seed})
	case "ext-pool-density":
		rows = experiments.PoolDensity(experiments.PoolDensityOptions{Duration: 5 * time.Minute, Seed: seed})
	case "ext-merge":
		rows = experiments.MergeDomains(experiments.MergeDomainsOptions{
			DRAMMB: 192, Duration: 4 * time.Minute, Seed: seed,
		})
	case "ext-resilience":
		rows = experiments.Resilience(experiments.ResilienceOptions{
			Duration: 5 * time.Minute, KeepAlive: 4 * time.Minute, Seed: seed, FaultSeed: seed,
		})
	case "ext-observe":
		rows = experiments.Observe(experiments.ObserveOptions{
			Duration: 5 * time.Minute, KeepAlive: 4 * time.Minute,
			Fallback: true, Seed: seed, FaultSeed: seed,
		})
	case "ext-drilldown":
		rows = experiments.Drilldown(experiments.DrilldownOptions{
			Duration: 5 * time.Minute, KeepAlive: 4 * time.Minute,
			Seed: seed, FaultSeed: seed,
		})
	case "ext-stateful":
		rows = experiments.Stateful(experiments.StatefulOptions{
			Workflows:   []string{"pipeline", "fanout", "websession"},
			Widths:      []int{8},
			PressuresMB: []int{64},
			Runs:        3,
			Seed:        seed,
		})
	default:
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiment": name, "seed": seed, "rows": rows})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// fail writes an error response and counts it.
func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Inc()
	writeError(w, status, err)
}
