// Package gateway exposes the simulator over HTTP, mirroring the role of
// the paper artifact's gateway/test_server pair: a long-running service that
// accepts scenario requests, replays them on the discrete-event platform,
// and returns the outcome as JSON for scripted evaluation workflows.
//
// Endpoints:
//
//	GET  /healthz             liveness probe
//	GET  /benchmarks          the 11 benchmark profiles
//	GET  /policies            available offloading policies
//	POST /run                 run one scenario (JSON body, JSON outcome)
//	POST /replay              replay a multi-function trace (tracegen JSON)
//	POST /experiments/{name}  regenerate one figure/table (quick variants)
package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// RunRequest is the POST /run body.
type RunRequest struct {
	// Bench names one of the 11 benchmarks.
	Bench string `json:"bench"`
	// Policy is one of baseline, tmo, damon, faasmem,
	// faasmem-w/o-pucket, faasmem-w/o-semiwarm.
	Policy string `json:"policy"`
	// DurationSec is the trace window in seconds. Default 600.
	DurationSec float64 `json:"duration_sec"`
	// MeanGapSec is the mean request inter-arrival gap. Default 15.
	MeanGapSec float64 `json:"mean_gap_sec"`
	// Bursty selects Markov-modulated arrivals.
	Bursty bool `json:"bursty"`
	// KeepAliveSec is the keep-alive timeout. Default 600.
	KeepAliveSec float64 `json:"keep_alive_sec"`
	// Seed drives all randomness. Default 1.
	Seed int64 `json:"seed"`
}

func (r *RunRequest) normalize() error {
	if r.Bench == "" {
		r.Bench = "web"
	}
	if workload.ByName(r.Bench) == nil {
		return fmt.Errorf("unknown benchmark %q (options: %s)", r.Bench, strings.Join(workload.Names(), ", "))
	}
	if r.Policy == "" {
		r.Policy = string(experiments.FaaSMem)
	}
	if !experiments.ValidPolicy(experiments.PolicyKind(r.Policy)) {
		return fmt.Errorf("unknown policy %q", r.Policy)
	}
	if r.DurationSec <= 0 {
		r.DurationSec = 600
	}
	if r.DurationSec > 24*3600 {
		return fmt.Errorf("duration %gs too long (max 24h)", r.DurationSec)
	}
	if r.MeanGapSec <= 0 {
		r.MeanGapSec = 15
	}
	if r.KeepAliveSec <= 0 {
		r.KeepAliveSec = 600
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return nil
}

// RunResponse is the POST /run result.
type RunResponse struct {
	Bench    string              `json:"bench"`
	Policy   string              `json:"policy"`
	Requests int                 `json:"requests"`
	Outcome  experiments.Outcome `json:"outcome"`
}

// Handler builds the gateway's HTTP handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /benchmarks", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, workload.Profiles())
	})
	mux.HandleFunc("GET /policies", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, experiments.PolicyKinds())
	})
	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, experimentNames)
	})
	mux.HandleFunc("POST /run", handleRun)
	mux.HandleFunc("POST /replay", handleReplay)
	mux.HandleFunc("POST /experiments/{name}", handleExperiment)
	return mux
}

func handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	duration := time.Duration(req.DurationSec * float64(time.Second))
	fn := trace.GenerateFunction(req.Bench, duration,
		time.Duration(req.MeanGapSec*float64(time.Second)), req.Bursty, req.Seed)
	out := experiments.RunScenario(experiments.Scenario{
		Profile:     workload.ByName(req.Bench),
		Invocations: fn.Invocations,
		Duration:    duration,
		KeepAlive:   time.Duration(req.KeepAliveSec * float64(time.Second)),
		Policy:      experiments.PolicyKind(req.Policy),
		SeedHistory: true,
		Seed:        req.Seed,
	})
	writeJSON(w, http.StatusOK, RunResponse{
		Bench:    req.Bench,
		Policy:   req.Policy,
		Requests: out.Requests,
		Outcome:  out,
	})
}

// experimentNames lists the regenerable experiments, in the paper's order.
var experimentNames = []string{
	"fig1", "fig2", "fig4", "fig5", "fig6", "fig8", "fig9",
	"fig12", "table1", "fig13", "fig14", "fig15", "fig16",
	"ext-pools", "ext-coldstart", "ext-readahead", "ext-keepalive",
	"ext-percentile", "ext-rack",
}

// handleExperiment regenerates one figure/table at quick scale and returns
// its rows as JSON.
func handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := strings.ToLower(r.PathValue("name"))
	var seed int64 = 1
	if s := r.URL.Query().Get("seed"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &seed); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", s))
			return
		}
	}
	var rows any
	switch name {
	case "fig1":
		rows = experiments.Fig1(experiments.Fig1Options{Seed: seed})
	case "fig2":
		rows = experiments.Fig2(experiments.Fig2Options{Duration: 15 * time.Minute, Seed: seed})
	case "fig4":
		rows = experiments.Fig4()
	case "fig5":
		rows = experiments.Fig5(experiments.Fig5Options{Seed: seed})
	case "fig6":
		rows = experiments.Fig6(experiments.Fig6Options{Seed: seed})
	case "fig8":
		rows = experiments.Fig8(experiments.Fig8Options{Seed: seed})
	case "fig9":
		rows = experiments.Fig9(25, seed)
	case "fig12":
		rows = experiments.Fig12(experiments.Fig12Options{
			Duration: 10 * time.Minute,
			Benches:  []string{"bert", "graph", "web", "json"},
			Seed:     seed,
		})
	case "table1":
		rows = experiments.Table1(experiments.Table1Options{Duration: 8 * time.Minute, Seed: seed})
	case "fig13":
		rows = experiments.Fig13(experiments.Fig13Options{Duration: 10 * time.Minute, Seed: seed})
	case "fig14":
		rows = experiments.Fig14(experiments.Fig14Options{NumFunctions: 80, Duration: 2 * time.Hour, Seed: seed})
	case "fig15":
		rows = experiments.Fig15()
	case "fig16":
		rows = experiments.Fig16(experiments.Fig16Options{Traces: 6, Duration: 10 * time.Minute, Seed: seed})
	case "ext-pools":
		rows = experiments.PoolComparison(experiments.PoolComparisonOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-coldstart":
		rows = experiments.ColdStartTiming(experiments.ColdStartTimingOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-readahead":
		rows = experiments.Readahead(experiments.ReadaheadOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-keepalive":
		rows = experiments.KeepAliveStrategies(experiments.KeepAliveStrategiesOptions{Duration: 10 * time.Minute, Seed: seed})
	case "ext-percentile":
		rows = experiments.PercentileSweep(experiments.PercentileSweepOptions{Duration: 8 * time.Minute, Seed: seed})
	case "ext-rack":
		rows = experiments.RackDensity(experiments.RackDensityOptions{Duration: 8 * time.Minute, Seed: seed})
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiment": name, "seed": seed, "rows": rows})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
