package gateway

import (
	"net/http"

	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// handleExemplars serves the worst-K tail exemplars retained per
// (window, node, tenant) cell across every /run since the gateway started.
// Like /timeline, the recorder is service-lifetime: each run's virtual clock
// starts at zero, so repeated runs compete within the same windows and the
// surface keeps only the globally worst span trees per cell.
func (s *server) handleExemplars(w http.ResponseWriter, _ *http.Request) {
	cells := s.exemplars.Cells()
	if cells == nil {
		cells = []exemplar.Cell{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"window_sec": s.exemplars.Window().Seconds(),
		"k":          s.exemplars.K(),
		"cells":      cells,
	})
}

// handleFlows serves the page byte-flow ledger accumulated across every /run,
// plus its conservation self-audit. With several runs folded into one
// recorder the audit reports per-run occupancy checks where it can and marks
// the aggregate as merged otherwise — the flows themselves stay additive.
func (s *server) handleFlows(w http.ResponseWriter, _ *http.Request) {
	rows := s.timeline.FlowRows()
	if rows == nil {
		rows = []timeseries.FlowRow{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"flows": rows,
		"audit": timeseries.AuditFlows(s.timeline),
	})
}
