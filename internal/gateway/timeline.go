package gateway

import (
	"fmt"
	"net/http"

	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// handleTimeline serves the per-window time-series rollups accumulated
// across every /run and /replay since the gateway started. Runs share one
// recorder the way they share the span ring: each run's virtual clock starts
// at zero, so concurrent runs fold into the same windows — the surface is a
// service-lifetime aggregate, not a per-run trace (POST /run returns per-run
// outcomes). ?format selects text (default, the faasmem-stat timeline table)
// or json (the full snapshot: rows, summary, flight dumps).
func (s *server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = timeseries.WriteText(w, s.timeline)
	case "json":
		writeJSON(w, http.StatusOK, timeseries.TakeSnapshot(s.timeline))
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want text or json)", format))
	}
}

// handleFlight serves the flight-recorder dumps taken so far — the
// high-resolution event windows snapshotted when a fault-injection window
// opened or an SLO burn-rate alarm fired.
func (s *server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	dumps := s.timeline.Dumps()
	if dumps == nil {
		dumps = []timeseries.Dump{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dumps":         dumps,
		"dumps_dropped": s.timeline.DumpsDropped(),
	})
}
