package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// ReplayRequest is the POST /replay body: a multi-function trace replayed on
// one node. The trace uses the same JSON schema as cmd/tracegen's output
// (and trace.ReadAzureCSV conversions).
type ReplayRequest struct {
	// Trace is the invocation trace to replay.
	Trace *trace.Trace `json:"trace"`
	// Profile maps every trace function onto one benchmark ("mix"
	// round-robins the 11). Default "mix".
	Profile string `json:"profile"`
	// Policy is the offloading policy. Default "faasmem".
	Policy string `json:"policy"`
	// KeepAliveSec defaults to 600.
	KeepAliveSec float64 `json:"keep_alive_sec"`
	// Seed drives workload randomness. Default 1.
	Seed int64 `json:"seed"`
	// MaxInvocations caps the replay size to keep the service responsive.
	// Default (and ceiling) 200000.
	MaxInvocations int `json:"max_invocations"`
}

// ReplayResponse summarizes a replay.
type ReplayResponse struct {
	Functions      int     `json:"functions"`
	Requests       int     `json:"requests"`
	ColdStarts     int     `json:"cold_starts"`
	WarmStarts     int     `json:"warm_starts"`
	SemiWarmStarts int     `json:"semi_warm_starts"`
	AvgLocalMB     float64 `json:"avg_local_mb"`
	PeakLocalMB    float64 `json:"peak_local_mb"`
	OffloadedMB    float64 `json:"offloaded_mb"`
	OffloadBWMBps  float64 `json:"offload_bw_mbps"`
	WorstP95Sec    float64 `json:"worst_p95_sec"`
	// Recent lists the tail of the request log for inspection.
	Recent []faas.RequestRecord `json:"recent"`
}

func (s *server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Trace == nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("missing trace"))
		return
	}
	if err := req.Trace.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	const ceiling = 200000
	if req.MaxInvocations <= 0 || req.MaxInvocations > ceiling {
		req.MaxInvocations = ceiling
	}
	if req.Trace.TotalInvocations() > req.MaxInvocations {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("trace has %d invocations, limit %d", req.Trace.TotalInvocations(), req.MaxInvocations))
		return
	}
	if req.KeepAliveSec <= 0 {
		req.KeepAliveSec = 600
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Policy == "" {
		req.Policy = "faasmem"
	}
	if req.Profile == "" {
		req.Profile = "mix"
	}

	kind := experiments.PolicyKind(req.Policy)
	if !experiments.ValidPolicy(kind) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown policy %q", req.Policy))
		return
	}
	pol, _ := experiments.BuildPolicy(kind, core.Config{})

	profiles := workload.Profiles()
	pick := func(i int, _ *trace.Function) *workload.Profile {
		var base *workload.Profile
		if req.Profile == "mix" {
			base = profiles[i%len(profiles)]
		} else {
			base = workload.ByName(req.Profile)
		}
		return base
	}
	if req.Profile != "mix" && workload.ByName(req.Profile) == nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown profile %q", req.Profile))
		return
	}
	s.replays.Inc()

	engine := simtime.NewEngine()
	p := faas.New(engine, faas.Config{
		KeepAliveTimeout: time.Duration(req.KeepAliveSec * float64(time.Second)),
		Pool:             rmem.Config{},
		RequestLogSize:   64,
		Seed:             req.Seed,
		Telemetry:        s.hub(),
		Spans:            s.spans,
	}, pol)
	p.ReplayTrace(req.Trace, func(i int, f *trace.Function) *workload.Profile {
		base := *pick(i, f)
		base.Name = f.ID
		return &base
	})
	engine.RunUntil(req.Trace.Duration + time.Duration(req.KeepAliveSec*float64(time.Second)))

	resp := ReplayResponse{
		Functions:     len(p.Functions()),
		AvgLocalMB:    p.NodeLocalAvg() / 1e6,
		PeakLocalMB:   float64(p.NodeLocalPeak()) / 1e6,
		OffloadedMB:   float64(p.Pool().Meter(rmem.Offload).Total()) / 1e6,
		OffloadBWMBps: p.Pool().Meter(rmem.Offload).Average(engine.Now()) / 1e6,
		Recent:        p.RequestLog().Records(),
	}
	agg := p.Aggregate()
	resp.Requests = agg.Requests
	resp.ColdStarts = agg.ColdStarts
	resp.WarmStarts = agg.WarmStarts
	resp.SemiWarmStarts = agg.SemiWarmStarts
	resp.WorstP95Sec = agg.WorstP95
	writeJSON(w, http.StatusOK, resp)
}
