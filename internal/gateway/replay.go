package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// ReplayMemNode configures an optional pool-side memory node for the replay.
// When present, the pool's admission consults the node's dedup/compression/
// spill tiers and the response carries the node's storage statistics.
type ReplayMemNode struct {
	// DRAMMB is the node's DRAM capacity. Default 16384 (16 GiB).
	DRAMMB int `json:"dram_mb"`
	// SpillMB bounds the spill tier; 0 means unbounded.
	SpillMB int `json:"spill_mb"`
	// QuotaMB caps each tenant's logical bytes; 0 means no quota.
	QuotaMB int `json:"quota_mb"`
	// CompressRatio is the zswap-style compression ratio. Default 3.0.
	CompressRatio float64 `json:"compress_ratio"`
	// DisableDedup stores every offloaded page privately.
	DisableDedup bool `json:"disable_dedup"`
	// DisableCompression keeps cold entries raw (spill only).
	DisableCompression bool `json:"disable_compression"`
}

func (m *ReplayMemNode) config() *memnode.Config {
	cfg := &memnode.Config{
		DisableDedup:       m.DisableDedup,
		DisableCompression: m.DisableCompression,
		CompressRatio:      m.CompressRatio,
	}
	if m.DRAMMB > 0 {
		cfg.DRAMBytes = int64(m.DRAMMB) << 20
	}
	if m.SpillMB > 0 {
		cfg.SpillBytes = int64(m.SpillMB) << 20
	}
	if m.QuotaMB > 0 {
		cfg.TenantQuotaBytes = int64(m.QuotaMB) << 20
	}
	return cfg
}

// ReplayRequest is the POST /replay body: a multi-function trace replayed on
// one node. The trace uses the same JSON schema as cmd/tracegen's output
// (and trace.ReadAzureCSV conversions).
type ReplayRequest struct {
	// Trace is the invocation trace to replay.
	Trace *trace.Trace `json:"trace"`
	// Profile maps every trace function onto one benchmark ("mix"
	// round-robins the 11). Default "mix".
	Profile string `json:"profile"`
	// Policy is the offloading policy. Default "faasmem".
	Policy string `json:"policy"`
	// KeepAliveSec defaults to 600.
	KeepAliveSec float64 `json:"keep_alive_sec"`
	// Seed drives workload randomness. Default 1.
	Seed int64 `json:"seed"`
	// MaxInvocations caps the replay size to keep the service responsive.
	// Default (and ceiling) 200000.
	MaxInvocations int `json:"max_invocations"`
	// MemNode, when set, backs the replay's pool with a simulated memory
	// node (dedup + compression + spill tiers).
	MemNode *ReplayMemNode `json:"mem_node"`
}

// validate applies defaults and rejects malformed requests. It runs before
// any simulation state is built so every rejection is a clean 400 with a
// message listing the accepted options.
func (req *ReplayRequest) validate() error {
	if req.Policy == "" {
		req.Policy = "faasmem"
	}
	if !experiments.ValidPolicy(experiments.PolicyKind(req.Policy)) {
		kinds := experiments.PolicyKinds()
		opts := make([]string, len(kinds))
		for i, k := range kinds {
			opts[i] = string(k)
		}
		return fmt.Errorf("unknown policy %q (options: %s)", req.Policy, strings.Join(opts, ", "))
	}
	if req.Profile == "" {
		req.Profile = "mix"
	}
	if req.Profile != "mix" && workload.ByName(req.Profile) == nil {
		return fmt.Errorf("unknown profile %q (options: mix, %s)", req.Profile, strings.Join(workload.Names(), ", "))
	}
	if req.Trace == nil {
		return fmt.Errorf("missing trace (see cmd/tracegen for the schema)")
	}
	if err := req.Trace.Validate(); err != nil {
		return err
	}
	const ceiling = 200000
	if req.MaxInvocations <= 0 || req.MaxInvocations > ceiling {
		req.MaxInvocations = ceiling
	}
	if n := req.Trace.TotalInvocations(); n > req.MaxInvocations {
		return fmt.Errorf("trace has %d invocations, limit %d", n, req.MaxInvocations)
	}
	if req.KeepAliveSec <= 0 {
		req.KeepAliveSec = 600
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	return nil
}

// ReplayMemNodeStats reports the memory node's storage outcome.
type ReplayMemNodeStats struct {
	LogicalPeakMB    float64 `json:"logical_peak_mb"`
	ResidentPeakMB   float64 `json:"resident_peak_mb"`
	DedupSavedMB     float64 `json:"dedup_saved_mb"`
	CompressSavedMB  float64 `json:"compress_saved_mb"`
	Evictions        int64   `json:"evictions"`
	QuotaRejectPages int64   `json:"quota_reject_pages"`
	FullRejectPages  int64   `json:"full_reject_pages"`
}

// ReplayResponse summarizes a replay.
type ReplayResponse struct {
	Functions      int     `json:"functions"`
	Requests       int     `json:"requests"`
	ColdStarts     int     `json:"cold_starts"`
	WarmStarts     int     `json:"warm_starts"`
	SemiWarmStarts int     `json:"semi_warm_starts"`
	AvgLocalMB     float64 `json:"avg_local_mb"`
	PeakLocalMB    float64 `json:"peak_local_mb"`
	OffloadedMB    float64 `json:"offloaded_mb"`
	OffloadBWMBps  float64 `json:"offload_bw_mbps"`
	WorstP95Sec    float64 `json:"worst_p95_sec"`
	// MemNode is present when the request enabled a memory node.
	MemNode *ReplayMemNodeStats `json:"mem_node,omitempty"`
	// Recent lists the tail of the request log for inspection.
	Recent []faas.RequestRecord `json:"recent"`
}

func (s *server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := req.validate(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.replays.Inc()

	pol, _ := experiments.BuildPolicy(experiments.PolicyKind(req.Policy), core.Config{})
	profiles := workload.Profiles()
	pick := func(i int, _ *trace.Function) *workload.Profile {
		if req.Profile == "mix" {
			return profiles[i%len(profiles)]
		}
		return workload.ByName(req.Profile)
	}

	poolCfg := rmem.Config{}
	if req.MemNode != nil {
		poolCfg.Node = req.MemNode.config()
	}
	engine := simtime.NewEngine()
	p := faas.New(engine, faas.Config{
		KeepAliveTimeout: time.Duration(req.KeepAliveSec * float64(time.Second)),
		Pool:             poolCfg,
		RequestLogSize:   64,
		Seed:             req.Seed,
		Telemetry:        s.hub(),
		Spans:            s.spans,
		Timeline:         s.timeline,
	}, pol)
	p.ReplayTrace(req.Trace, func(i int, f *trace.Function) *workload.Profile {
		base := *pick(i, f)
		base.Name = f.ID
		return &base
	})
	engine.RunUntil(req.Trace.Duration + time.Duration(req.KeepAliveSec*float64(time.Second)))

	resp := ReplayResponse{
		Functions:     len(p.Functions()),
		AvgLocalMB:    p.NodeLocalAvg() / 1e6,
		PeakLocalMB:   float64(p.NodeLocalPeak()) / 1e6,
		OffloadedMB:   float64(p.Pool().Meter(rmem.Offload).Total()) / 1e6,
		OffloadBWMBps: p.Pool().Meter(rmem.Offload).Average(engine.Now()) / 1e6,
		Recent:        p.RequestLog().Records(),
	}
	agg := p.Aggregate()
	resp.Requests = agg.Requests
	resp.ColdStarts = agg.ColdStarts
	resp.WarmStarts = agg.WarmStarts
	resp.SemiWarmStarts = agg.SemiWarmStarts
	resp.WorstP95Sec = agg.WorstP95
	if mn := p.Pool().Node(); mn != nil {
		st := mn.Stats()
		resp.MemNode = &ReplayMemNodeStats{
			LogicalPeakMB:    float64(st.PeakLogicalBytes) / 1e6,
			ResidentPeakMB:   float64(st.PeakResidentBytes) / 1e6,
			DedupSavedMB:     float64(st.DedupSavedBytes) / 1e6,
			CompressSavedMB:  float64(st.CompressSavedBytes) / 1e6,
			Evictions:        st.Evictions,
			QuotaRejectPages: st.QuotaRejectPages,
			FullRejectPages:  st.FullRejectPages,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
