package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func do(t *testing.T, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	rec := do(t, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestBenchmarksLists11(t *testing.T) {
	rec := do(t, http.MethodGet, "/benchmarks", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var profiles []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &profiles); err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 11 {
		t.Fatalf("profiles = %d, want 11", len(profiles))
	}
}

func TestPoliciesList(t *testing.T) {
	rec := do(t, http.MethodGet, "/policies", "")
	var kinds []string
	if err := json.Unmarshal(rec.Body.Bytes(), &kinds); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 6 {
		t.Fatalf("policies = %v", kinds)
	}
}

func TestRunScenario(t *testing.T) {
	rec := do(t, http.MethodPost, "/run",
		`{"bench":"json","policy":"faasmem","duration_sec":120,"mean_gap_sec":10,"seed":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Bench != "json" || resp.Policy != "faasmem" {
		t.Fatalf("echo = %+v", resp)
	}
	if resp.Requests == 0 {
		t.Fatal("no requests executed")
	}
	if resp.Outcome.AvgLocalMB <= 0 {
		t.Fatal("outcome missing memory stats")
	}
}

func TestRunDefaults(t *testing.T) {
	rec := do(t, http.MethodPost, "/run", `{}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Bench != "web" || resp.Policy != "faasmem" {
		t.Fatalf("defaults = %+v", resp)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []string{
		`{"bench":"nope"}`,
		`{"policy":"nope"}`,
		`{"duration_sec":999999999}`,
		`not json`,
	}
	for i, body := range cases {
		rec := do(t, http.MethodPost, "/run", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, rec.Code)
		}
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	body := `{"bench":"json","policy":"faasmem","duration_sec":120,"seed":9}`
	a := do(t, http.MethodPost, "/run", body).Body.String()
	b := do(t, http.MethodPost, "/run", body).Body.String()
	if a != b {
		t.Fatal("identical requests returned different outcomes")
	}
}

func TestExperimentEndpoint(t *testing.T) {
	rec := do(t, http.MethodPost, "/experiments/fig4", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Experiment string           `json:"experiment"`
		Rows       []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Experiment != "fig4" || len(resp.Rows) != 6 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestExperimentSeedParam(t *testing.T) {
	rec := do(t, http.MethodPost, "/experiments/fig9?seed=7", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	bad := do(t, http.MethodPost, "/experiments/fig9?seed=zz", "")
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("bad seed status = %d", bad.Code)
	}
}

func TestExperimentUnknown(t *testing.T) {
	rec := do(t, http.MethodPost, "/experiments/fig99", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}

func TestReplayEndpoint(t *testing.T) {
	body := `{
		"trace": {"duration": 60000000000, "functions": [
			{"id": "a", "invocations": [0, 30000000000]},
			{"id": "b", "invocations": [1000000000]}
		]},
		"profile": "json",
		"policy": "faasmem",
		"seed": 5
	}`
	rec := do(t, http.MethodPost, "/replay", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ReplayResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Functions != 2 || resp.Requests != 3 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.AvgLocalMB <= 0 {
		t.Fatal("missing memory stats")
	}
	if len(resp.Recent) != 3 {
		t.Fatalf("recent records = %d, want 3", len(resp.Recent))
	}
}

func TestReplayValidation(t *testing.T) {
	cases := []struct {
		body string
		want string // substring of the error message, "" for any
	}{
		{`{}`, "missing trace"},
		{`{"trace": {"duration": -1}}`, ""},
		{`{"trace": {"duration": 60000000000, "functions": [{"id":"a","invocations":[0]}]}, "policy": "nope"}`,
			"(options: baseline,"},
		{`{"trace": {"duration": 60000000000, "functions": [{"id":"a","invocations":[0]}]}, "profile": "nope"}`,
			"(options: mix, bert,"},
		{`{"trace": {"duration": 60000000000, "functions": [{"id":"a","invocations":[0,1,2]}]}, "max_invocations": 2}`,
			"limit 2"},
	}
	for i, tc := range cases {
		rec := do(t, http.MethodPost, "/replay", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, rec.Code)
			continue
		}
		if tc.want != "" && !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("case %d: body %q missing %q", i, rec.Body.String(), tc.want)
		}
	}
	// Bad policy and profile must be rejected before the trace is inspected.
	rec := do(t, http.MethodPost, "/replay", `{"policy": "nope"}`)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "unknown policy") {
		t.Errorf("policy-only body: status %d, body %q", rec.Code, rec.Body.String())
	}
}

func TestReplayMemNode(t *testing.T) {
	body := `{
		"trace": {"duration": 180000000000, "functions": [
			{"id": "a", "invocations": [0, 20000000000, 40000000000]},
			{"id": "b", "invocations": [1000000000, 50000000000]}
		]},
		"profile": "json",
		"policy": "faasmem",
		"seed": 5,
		"mem_node": {"dram_mb": 64, "spill_mb": 64}
	}`
	rec := do(t, http.MethodPost, "/replay", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ReplayResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.MemNode == nil {
		t.Fatal("mem_node stats missing from response")
	}
	if resp.OffloadedMB > 0 && resp.MemNode.LogicalPeakMB <= 0 {
		t.Fatalf("offloaded %f MB but logical peak %f", resp.OffloadedMB, resp.MemNode.LogicalPeakMB)
	}
	if resp.MemNode.ResidentPeakMB > resp.MemNode.LogicalPeakMB {
		t.Fatalf("resident peak %f exceeds logical peak %f",
			resp.MemNode.ResidentPeakMB, resp.MemNode.LogicalPeakMB)
	}
	// Without the mem_node block, the response must omit the stats.
	plain := do(t, http.MethodPost, "/replay", `{
		"trace": {"duration": 60000000000, "functions": [{"id":"a","invocations":[0]}]}
	}`)
	if plain.Code != http.StatusOK {
		t.Fatalf("plain replay status = %d: %s", plain.Code, plain.Body.String())
	}
	if strings.Contains(plain.Body.String(), "logical_peak_mb") {
		t.Fatal("plain replay unexpectedly reported mem_node stats")
	}
}

func TestExperimentsList(t *testing.T) {
	rec := do(t, http.MethodGet, "/experiments", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var names []string
	if err := json.Unmarshal(rec.Body.Bytes(), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 26 {
		t.Fatalf("experiments = %d, want 26", len(names))
	}
	// Every advertised name must actually dispatch.
	for _, n := range names {
		if n == "fig14" || n == "fig12" || n == "table1" || n == "fig13" ||
			strings.HasPrefix(n, "ext-") || n == "fig16" || n == "fig2" {
			continue // too slow for this smoke loop; covered elsewhere
		}
		r := do(t, http.MethodPost, "/experiments/"+n, "")
		if r.Code != http.StatusOK {
			t.Errorf("experiment %q: status %d", n, r.Code)
		}
	}
}

// TestRunFaultIntensity checks the fault-injection knobs on POST /run: an
// armed plan populates Outcome.Recovery, and an out-of-range intensity is a
// 400, not a silent clamp.
func TestRunFaultIntensity(t *testing.T) {
	rec := do(t, http.MethodPost, "/run",
		`{"bench":"json","policy":"faasmem","duration_sec":240,"mean_gap_sec":5,"seed":3,"fault_intensity":1,"fault_seed":7}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Outcome.Recovery == nil {
		t.Fatal("fault_intensity=1 run returned no recovery stats")
	}
	if got := resp.Outcome.Recovery.DoneNormal + resp.Outcome.Recovery.DoneRescheduled +
		resp.Outcome.Recovery.DoneReinit; got != resp.Requests {
		t.Fatalf("completion classes %d != requests %d", got, resp.Requests)
	}

	for _, bad := range []string{
		`{"bench":"json","fault_intensity":1.5}`,
		`{"bench":"json","fault_intensity":-0.1}`,
	} {
		if r := do(t, http.MethodPost, "/run", bad); r.Code != http.StatusBadRequest {
			t.Errorf("body %s: status = %d, want 400", bad, r.Code)
		}
	}

	// Intensity 0 must leave the plan unarmed: no Recovery block at all.
	rec = do(t, http.MethodPost, "/run",
		`{"bench":"json","policy":"faasmem","duration_sec":120,"mean_gap_sec":10,"seed":3}`)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Outcome.Recovery != nil {
		t.Fatalf("fault-free run returned recovery stats: %+v", resp.Outcome.Recovery)
	}
}

// TestRunWorkflow checks the stateful-workflow knobs on POST /run: a
// workflow request runs the DAG in both state modes, pool mode takes the
// region path, and the response keeps the JSON charset contract.
func TestRunWorkflow(t *testing.T) {
	rec := do(t, http.MethodPost, "/run",
		`{"workflow":"fanout","state_mode":"pool","workflow_runs":2,"fanout_width":8,"seed":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", got)
	}
	var resp WorkflowRunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workflow != "fanout" || resp.Mode != "pool" {
		t.Fatalf("echo = %+v", resp)
	}
	r := resp.Row
	if r.Completed != 2 || r.Runs != 2 {
		t.Fatalf("completed %d of %d runs", r.Completed, r.Runs)
	}
	if r.Width != 8 || r.Regions == 0 || r.ShareReadMB == 0 {
		t.Fatalf("pool run took no region path: %+v", r)
	}
	if !r.AuditOK || !r.Drained {
		t.Fatalf("audit/drain violated: %+v", r)
	}

	rec = do(t, http.MethodPost, "/run", `{"workflow":"fanout","state_mode":"reinit","workflow_runs":2,"seed":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("reinit status = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Row.Regions != 0 || resp.Row.Reinits == 0 {
		t.Fatalf("reinit run touched the pool state path: %+v", resp.Row)
	}
}

// TestRunWorkflowValidation pins the 400s on the stateful /run knobs: out of
// range values are rejected with the valid options listed, not clamped.
func TestRunWorkflowValidation(t *testing.T) {
	cases := []struct {
		body string
		want string // substring of the error message
	}{
		{`{"workflow":"nope"}`, "(options: pipeline,"},
		{`{"workflow":"fanout","state_mode":"storage"}`, "(options: pool, reinit)"},
		{`{"workflow":"fanout","fanout_width":65}`, "out of range [0, 64]"},
		{`{"workflow":"fanout","fanout_width":-1}`, "out of range [0, 64]"},
		{`{"workflow":"fanout","workflow_runs":101}`, "out of range [0, 100]"},
	}
	for i, tc := range cases {
		rec := do(t, http.MethodPost, "/run", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400: %s", i, rec.Code, rec.Body.String())
			continue
		}
		if !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("case %d: body %q missing %q", i, rec.Body.String(), tc.want)
		}
	}
}

// TestRunWorkflowDeterministicAcrossCalls pins that identical workflow
// requests produce byte-identical responses.
func TestRunWorkflowDeterministicAcrossCalls(t *testing.T) {
	body := `{"workflow":"pipeline","state_mode":"pool","workflow_runs":2,"seed":9}`
	a := do(t, http.MethodPost, "/run", body).Body.String()
	b := do(t, http.MethodPost, "/run", body).Body.String()
	if a != b {
		t.Fatal("identical workflow requests returned different outcomes")
	}
}

// TestRunMergeKnobs checks the merge-domain knobs on POST /run: setting
// merge_scope backs the pool with a memory node whose stats land in the
// outcome, and the default request keeps the node (and its JSON) out entirely.
func TestRunMergeKnobs(t *testing.T) {
	rec := do(t, http.MethodPost, "/run",
		`{"bench":"json","policy":"faasmem","duration_sec":240,"mean_gap_sec":5,"bursty":true,"seed":3,"merge_scope":"tenant","cache_mb":64}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", got)
	}
	var resp RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Outcome.MemNode == nil {
		t.Fatal("merge_scope run returned no memory-node stats")
	}
	if resp.Outcome.MemNode.DedupHitPages == 0 {
		t.Fatalf("bursty scale-out produced no dedup fan-in: %+v", resp.Outcome.MemNode)
	}

	// Without the knobs, no node is attached and the response omits the block.
	plain := do(t, http.MethodPost, "/run",
		`{"bench":"json","policy":"faasmem","duration_sec":120,"seed":3}`)
	if plain.Code != http.StatusOK {
		t.Fatalf("plain status = %d: %s", plain.Code, plain.Body.String())
	}
	if strings.Contains(plain.Body.String(), "MemNode") {
		t.Fatal("plain run unexpectedly reported memory-node stats")
	}
}

// TestRunMergeValidation pins the 400s on the merge knobs: an unknown scope
// lists the valid options, and cache_mb is range-checked rather than clamped.
func TestRunMergeValidation(t *testing.T) {
	cases := []struct {
		body string
		want string // substring of the error message
	}{
		{`{"bench":"json","merge_scope":"global"}`, "(options: function, tenant, cross-tenant)"},
		{`{"bench":"json","cache_mb":-1}`, "out of range [0, 16384]"},
		{`{"bench":"json","cache_mb":16385}`, "out of range [0, 16384]"},
	}
	for i, tc := range cases {
		rec := do(t, http.MethodPost, "/run", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400: %s", i, rec.Code, rec.Body.String())
			continue
		}
		if !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("case %d: body %q missing %q", i, rec.Body.String(), tc.want)
		}
	}
}

// TestExperimentMerge smoke-runs the ext-merge endpoint and checks the
// isolation verdict in every row.
func TestExperimentMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node sweep too slow for -short")
	}
	rec := do(t, http.MethodPost, "/experiments/ext-merge?seed=2", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", got)
	}
	var resp struct {
		Experiment string           `json:"experiment"`
		Rows       []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Experiment != "ext-merge" || len(resp.Rows) == 0 {
		t.Fatalf("response = %+v", resp)
	}
	for _, row := range resp.Rows {
		for _, key := range []string{"scope", "write_ratio", "amplification", "merged_pages", "isolation_ok"} {
			if _, ok := row[key]; !ok {
				t.Fatalf("row missing %q: %v", key, row)
			}
		}
		if ok, _ := row["isolation_ok"].(bool); !ok {
			t.Fatalf("isolation violated in row %v", row)
		}
	}
}

// TestExperimentStateful smoke-runs the ext-stateful endpoint.
func TestExperimentStateful(t *testing.T) {
	rec := do(t, http.MethodPost, "/experiments/ext-stateful?seed=2", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", got)
	}
	var resp struct {
		Experiment string           `json:"experiment"`
		Rows       []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Experiment != "ext-stateful" || len(resp.Rows) == 0 {
		t.Fatalf("response = %+v", resp)
	}
	for _, row := range resp.Rows {
		for _, key := range []string{"workflow", "mode", "mean_run_sec", "p99_run_sec", "audit_ok", "drained"} {
			if _, ok := row[key]; !ok {
				t.Fatalf("row missing %q: %v", key, row)
			}
		}
		if ok, _ := row["audit_ok"].(bool); !ok {
			t.Fatalf("flow audit violated in row %v", row)
		}
	}
}

// TestExperimentResilience smoke-runs the ext-resilience endpoint.
func TestExperimentResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node sweep too slow for -short")
	}
	rec := do(t, http.MethodPost, "/experiments/ext-resilience?seed=2", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Experiment string           `json:"experiment"`
		Rows       []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Experiment != "ext-resilience" || len(resp.Rows) == 0 {
		t.Fatalf("response = %+v", resp)
	}
	for _, row := range resp.Rows {
		for _, key := range []string{"intensity", "submitted", "completed", "p99_sec", "cold_start_ratio"} {
			if _, ok := row[key]; !ok {
				t.Fatalf("row missing %q: %v", key, row)
			}
		}
	}
}
