package gateway

import (
	"fmt"
	"io"
	"net/http"

	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/span"
)

// handleAttrib serves the latency attribution of every span recorded since
// the gateway started (across /run and /replay scenarios). ?format selects
// the rendering: text (default, the faasmem-stat table), json (the full
// span.Analysis), or prometheus (per-phase gauges for scraping).
func (s *server) handleAttrib(w http.ResponseWriter, r *http.Request) {
	an := span.Analyze(s.spans.Invocations())
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = span.WriteText(w, an)
	case "json":
		writeJSON(w, http.StatusOK, an)
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = writeAttribPrometheus(w, an)
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want text, json, or prometheus)", format))
	}
}

// writeAttribPrometheus renders an analysis as Prometheus gauges: one
// per-phase latency sample per (function, quantile, phase), plus invocation
// counts. Function names come from user-supplied profiles and trace IDs, so
// label values go through telemetry.EscapeLabelValue.
func writeAttribPrometheus(w io.Writer, an *span.Analysis) error {
	if _, err := fmt.Fprint(w,
		"# HELP faasmem_attrib_invocations Span trees analyzed per function\n",
		"# TYPE faasmem_attrib_invocations gauge\n"); err != nil {
		return err
	}
	all := append([]span.Attribution{an.Overall}, an.PerFunction...)
	name := func(i int, at span.Attribution) string {
		if i == 0 {
			return "overall"
		}
		return at.Function
	}
	for i, at := range all {
		if _, err := fmt.Fprintf(w, "faasmem_attrib_invocations{function=\"%s\"} %d\n",
			telemetry.EscapeLabelValue(name(i, at)), at.N); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w,
		"# HELP faasmem_attrib_phase_seconds Critical-path time per phase at the order-statistic quantile\n",
		"# TYPE faasmem_attrib_phase_seconds gauge\n"); err != nil {
		return err
	}
	for i, at := range all {
		fn := telemetry.EscapeLabelValue(name(i, at))
		for _, bd := range at.Breakdowns {
			for p := span.Phase(0); p < span.NumPhases; p++ {
				if bd.Phase[p] == 0 {
					continue
				}
				if _, err := fmt.Fprintf(w,
					"faasmem_attrib_phase_seconds{function=\"%s\",quantile=\"%g\",phase=\"%s\"} %g\n",
					fn, bd.Q, p.String(), bd.Phase[p].Seconds()); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w,
				"faasmem_attrib_phase_seconds{function=\"%s\",quantile=\"%g\",phase=\"total\"} %g\n",
				fn, bd.Q, bd.Total.Seconds()); err != nil {
				return err
			}
		}
	}
	return nil
}
