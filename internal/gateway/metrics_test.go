package gateway

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrape issues one request against a shared handler (the do helper builds a
// fresh Handler per call, which would reset the metric registry between the
// run and the scrape).
func scrape(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in scrape:\n%s", name, text)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMetricsEndpoint(t *testing.T) {
	h := Handler()

	rec := scrape(t, h, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	before := rec.Body.String()
	if !strings.Contains(before, "# TYPE gateway_runs_total counter") {
		t.Fatalf("missing TYPE line:\n%s", before)
	}
	if v := metricValue(t, before, "gateway_runs_total"); v != 0 {
		t.Fatalf("gateway_runs_total before any run = %d", v)
	}

	run := scrape(t, h, http.MethodPost, "/run",
		`{"bench":"json","policy":"faasmem","duration_sec":120,"mean_gap_sec":10,"seed":3}`)
	if run.Code != http.StatusOK {
		t.Fatalf("run status = %d: %s", run.Code, run.Body.String())
	}
	bad := scrape(t, h, http.MethodPost, "/run", `not json`)
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("bad run status = %d", bad.Code)
	}

	after := scrape(t, h, http.MethodGet, "/metrics", "").Body.String()
	if v := metricValue(t, after, "gateway_runs_total"); v != 1 {
		t.Errorf("gateway_runs_total = %d, want 1", v)
	}
	if v := metricValue(t, after, "gateway_errors_total"); v != 1 {
		t.Errorf("gateway_errors_total = %d, want 1", v)
	}
	// The run's simulation counters aggregate into the same registry.
	if v := metricValue(t, after, "faasmem_requests_completed_total"); v == 0 {
		t.Error("faasmem_requests_completed_total = 0 after a run")
	}
	if v := metricValue(t, after, "faasmem_containers_launched_total"); v == 0 {
		t.Error("faasmem_containers_launched_total = 0 after a run")
	}
}

// TestMetricsConcurrentScrape exercises /metrics while runs are in flight —
// the reason the whole tree runs under go test -race in CI.
func TestMetricsConcurrentScrape(t *testing.T) {
	h := Handler()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			body := `{"bench":"json","duration_sec":60,"seed":` + strconv.Itoa(seed) + `}`
			if rec := scrape(t, h, http.MethodPost, "/run", body); rec.Code != http.StatusOK {
				t.Errorf("run status = %d", rec.Code)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rec := scrape(t, h, http.MethodGet, "/metrics", ""); rec.Code != http.StatusOK {
				t.Errorf("metrics status = %d", rec.Code)
			}
		}()
	}
	wg.Wait()

	final := scrape(t, h, http.MethodGet, "/metrics", "").Body.String()
	if v := metricValue(t, final, "gateway_runs_total"); v != 4 {
		t.Errorf("gateway_runs_total = %d, want 4", v)
	}
}
