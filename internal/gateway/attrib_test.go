package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/telemetry/span"
)

// TestAttribEndpoint exercises GET /attrib across a live handler: empty at
// boot, populated after a /run, and rendered in all three formats.
func TestAttribEndpoint(t *testing.T) {
	h := Handler()
	do := func(method, path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	empty := do(http.MethodGet, "/attrib", "")
	if empty.Code != http.StatusOK || !strings.Contains(empty.Body.String(), "no invocations recorded") {
		t.Fatalf("empty attrib: status %d body %q", empty.Code, empty.Body.String())
	}

	run := do(http.MethodPost, "/run",
		`{"bench":"json","policy":"faasmem","duration_sec":120,"mean_gap_sec":10,"seed":3}`)
	if run.Code != http.StatusOK {
		t.Fatalf("/run status = %d: %s", run.Code, run.Body.String())
	}

	text := do(http.MethodGet, "/attrib", "")
	if text.Code != http.StatusOK {
		t.Fatalf("text status = %d", text.Code)
	}
	for _, want := range []string{"Latency attribution:", "overall", "json", "P99"} {
		if !strings.Contains(text.Body.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.Body.String())
		}
	}

	jrec := do(http.MethodGet, "/attrib?format=json", "")
	var an span.Analysis
	if err := json.Unmarshal(jrec.Body.Bytes(), &an); err != nil {
		t.Fatal(err)
	}
	if an.Overall.N == 0 {
		t.Fatal("json analysis recorded nothing")
	}
	for _, bd := range an.Overall.Breakdowns {
		var sum time.Duration
		for _, d := range bd.Phase {
			sum += d
		}
		if sum != bd.Total {
			t.Fatalf("q=%v: phase sum %v != total %v", bd.Q, sum, bd.Total)
		}
	}

	prom := do(http.MethodGet, "/attrib?format=prometheus", "")
	if prom.Code != http.StatusOK {
		t.Fatalf("prometheus status = %d", prom.Code)
	}
	for _, want := range []string{
		"# TYPE faasmem_attrib_phase_seconds gauge",
		`faasmem_attrib_invocations{function="overall"}`,
		`faasmem_attrib_phase_seconds{function="json",quantile="0.99",phase="total"}`,
	} {
		if !strings.Contains(prom.Body.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.Body.String())
		}
	}

	if bad := do(http.MethodGet, "/attrib?format=xml", ""); bad.Code != http.StatusBadRequest {
		t.Fatalf("bad format status = %d, want 400", bad.Code)
	}
}

// TestAttribPrometheusEscaping feeds function names containing every
// character the exposition format escapes — quotes, backslashes, newlines —
// and checks the rendered labels stay well-formed single lines.
func TestAttribPrometheusEscaping(t *testing.T) {
	hostile := "fn\"quoted\\back\nline"
	inv := span.Invocation{
		Function:  hostile,
		Container: "c0",
		Kind:      span.Warm,
		Root: span.Span{
			Phase: span.PhaseRequest,
			Start: 0,
			Dur:   time.Second,
			Children: []span.Span{
				{Phase: span.PhaseExec, Start: 0, Dur: time.Second},
			},
		},
	}
	var buf bytes.Buffer
	if err := writeAttribPrometheus(&buf, span.Analyze([]span.Invocation{inv})); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `function="fn\"quoted\\back\nline"`
	if !strings.Contains(out, want) {
		t.Fatalf("output missing escaped label %s:\n%s", want, out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "fn") && strings.Contains(line, "line\"") && !strings.Contains(line, `\n`) {
			t.Fatalf("raw newline leaked into sample line: %q", line)
		}
	}
	if strings.Contains(out, hostile) {
		t.Fatal("unescaped function name leaked into output")
	}
}
