package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doOn issues a request against a specific handler so state (the shared
// timeline recorder) persists across calls within one test.
func doOn(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestTimelineEmptyThenPopulated(t *testing.T) {
	h := Handler()

	rec := doOn(t, h, http.MethodGet, "/timeline", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("empty timeline status = %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "text/plain; charset=utf-8" {
		t.Errorf("text Content-Type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "timeline:") {
		t.Errorf("text body missing header: %s", rec.Body.String())
	}

	run := doOn(t, h, http.MethodPost, "/run",
		`{"bench":"json","duration_sec":120,"mean_gap_sec":5,"seed":3}`)
	if run.Code != http.StatusOK {
		t.Fatalf("/run status = %d: %s", run.Code, run.Body.String())
	}

	rec = doOn(t, h, http.MethodGet, "/timeline?format=json", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("json timeline status = %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Errorf("json Content-Type = %q", got)
	}
	var snap struct {
		WindowSec float64 `json:"window_sec"`
		Rows      []struct {
			Name string `json:"name"`
			Node string `json:"node"`
		} `json:"rows"`
		Summary []struct {
			Requests int64 `json:"requests"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.WindowSec != 1 {
		t.Errorf("window_sec = %v, want the 1s default", snap.WindowSec)
	}
	if len(snap.Rows) == 0 || len(snap.Summary) == 0 {
		t.Fatalf("timeline empty after /run: %d rows, %d summary windows",
			len(snap.Rows), len(snap.Summary))
	}
	var reqs int64
	for _, w := range snap.Summary {
		reqs += w.Requests
	}
	if reqs == 0 {
		t.Error("no requests rolled up after /run")
	}

	bad := doOn(t, h, http.MethodGet, "/timeline?format=xml", "")
	if bad.Code != http.StatusBadRequest {
		t.Errorf("format=xml status = %d, want 400", bad.Code)
	}
}

func TestFlightEndpoint(t *testing.T) {
	h := Handler()
	rec := doOn(t, h, http.MethodGet, "/flight", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/flight status = %d", rec.Code)
	}
	var resp struct {
		Dumps        []json.RawMessage `json:"dumps"`
		DumpsDropped int               `json:"dumps_dropped"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dumps == nil {
		t.Error("dumps is null, want [] on an idle gateway")
	}

	// A faulted run arms the plan's fault-window triggers on the shared
	// recorder; the dump list should grow.
	run := doOn(t, h, http.MethodPost, "/run",
		`{"bench":"json","duration_sec":300,"mean_gap_sec":5,"seed":3,"fault_intensity":1}`)
	if run.Code != http.StatusOK {
		t.Fatalf("/run status = %d: %s", run.Code, run.Body.String())
	}
	rec = doOn(t, h, http.MethodGet, "/flight", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Dumps) == 0 {
		t.Error("no flight dumps after a faulted run")
	}
}

// TestContentTypesAndMethodNotAllowed pins the observability surface's HTTP
// conformance: explicit charsets on every Content-Type, and 405 (not 404)
// with an Allow header when the path exists but the method is wrong.
func TestContentTypesAndMethodNotAllowed(t *testing.T) {
	h := Handler()

	headers := []struct {
		path, want string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/attrib", "text/plain; charset=utf-8"},
		{"/attrib?format=prometheus", "text/plain; version=0.0.4; charset=utf-8"},
		{"/attrib?format=json", "application/json; charset=utf-8"},
		{"/timeline", "text/plain; charset=utf-8"},
		{"/flight", "application/json; charset=utf-8"},
		{"/exemplars", "application/json; charset=utf-8"},
		{"/flows", "application/json; charset=utf-8"},
		{"/healthz", "application/json; charset=utf-8"},
	}
	for _, tc := range headers {
		rec := doOn(t, h, http.MethodGet, tc.path, "")
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s status = %d", tc.path, rec.Code)
			continue
		}
		if got := rec.Header().Get("Content-Type"); got != tc.want {
			t.Errorf("GET %s Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}

	wrongMethod := []struct {
		method, path string
	}{
		{http.MethodPost, "/metrics"},
		{http.MethodPost, "/attrib"},
		{http.MethodPost, "/timeline"},
		{http.MethodPost, "/flight"},
		{http.MethodPost, "/exemplars"},
		{http.MethodPost, "/flows"},
		{http.MethodGet, "/run"},
		{http.MethodGet, "/replay"},
		{http.MethodGet, "/experiments/ext-stateful"},
		{http.MethodGet, "/experiments/ext-merge"},
		{http.MethodDelete, "/healthz"},
	}
	for _, tc := range wrongMethod {
		rec := doOn(t, h, tc.method, tc.path, "")
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s status = %d, want 405", tc.method, tc.path, rec.Code)
			continue
		}
		if rec.Header().Get("Allow") == "" {
			t.Errorf("%s %s: 405 without an Allow header", tc.method, tc.path)
		}
	}
}
