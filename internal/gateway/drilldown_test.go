package gateway

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestExemplarsAndFlowsEndpoints pins the drill-down surface: both endpoints
// serve empty-but-non-null collections on an idle gateway and populate after
// a faulted /run, with the flow ledger carrying its conservation audit.
func TestExemplarsAndFlowsEndpoints(t *testing.T) {
	h := Handler()

	var exResp struct {
		WindowSec float64           `json:"window_sec"`
		K         int               `json:"k"`
		Cells     []json.RawMessage `json:"cells"`
	}
	rec := doOn(t, h, http.MethodGet, "/exemplars", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/exemplars status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &exResp); err != nil {
		t.Fatal(err)
	}
	if exResp.Cells == nil {
		t.Error("cells is null, want [] on an idle gateway")
	}
	if exResp.WindowSec != 1 || exResp.K == 0 {
		t.Errorf("window_sec = %v, k = %d; want the 1s default and a nonzero K",
			exResp.WindowSec, exResp.K)
	}

	var flResp struct {
		Flows []struct {
			Flow   string `json:"flow"`
			Bytes  int64  `json:"bytes"`
			Window int64  `json:"window"`
		} `json:"flows"`
		Audit struct {
			OK     bool  `json:"ok"`
			Checks int64 `json:"checks"`
		} `json:"audit"`
	}
	rec = doOn(t, h, http.MethodGet, "/flows", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/flows status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &flResp); err != nil {
		t.Fatal(err)
	}
	if flResp.Flows == nil {
		t.Error("flows is null, want [] on an idle gateway")
	}

	run := doOn(t, h, http.MethodPost, "/run",
		`{"bench":"json","duration_sec":300,"mean_gap_sec":5,"seed":3,"fault_intensity":1}`)
	if run.Code != http.StatusOK {
		t.Fatalf("/run status = %d: %s", run.Code, run.Body.String())
	}

	rec = doOn(t, h, http.MethodGet, "/exemplars", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &exResp); err != nil {
		t.Fatal(err)
	}
	if len(exResp.Cells) == 0 {
		t.Error("no exemplar cells after a /run")
	}

	rec = doOn(t, h, http.MethodGet, "/flows", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &flResp); err != nil {
		t.Fatal(err)
	}
	if len(flResp.Flows) == 0 {
		t.Fatal("no flow rows after a /run")
	}
	var bytes int64
	for _, f := range flResp.Flows {
		bytes += f.Bytes
	}
	if bytes == 0 {
		t.Error("flow ledger rows carry zero bytes")
	}
	if !flResp.Audit.OK || flResp.Audit.Checks == 0 {
		t.Errorf("audit = %+v, want ok with nonzero checks after one run", flResp.Audit)
	}
}
