// Package core implements FaaSMem, the paper's contribution: a
// segment-aware memory-offloading policy for serverless containers under the
// memory-pool architecture.
//
// Mechanisms (paper §4–§6):
//
//   - Pucket: the platform's time barriers split a container's pages into a
//     Runtime Pucket, an Init Pucket, and an unmonitored execution segment.
//     Each Pucket's inactive list is the set of its pages still in the
//     Inactive state; accessed pages move to the shared hot page pool.
//   - Reactive offload (§5.1): when the first request completes, every page
//     still inactive in the Runtime Pucket is offloaded.
//   - Window-based offload (§5.2): the Init Pucket is lazily offloaded after
//     an adaptive request-window, chosen where the descent gradient of the
//     remaining inactive pages flattens out.
//   - Periodic rollback (§5.3): every request-window (and at least the time
//     parameter t apart), hot-pool pages roll back to their Puckets; pages
//     not re-promoted within the next window are offloaded.
//   - Semi-warm (§6): after a per-function timing chosen as a high
//     percentile of the container reused-interval distribution, an idle
//     container's remaining memory — including hot pages — is gradually
//     offloaded (percentile- or amount-based), throttled by the global
//     bandwidth governor and aborted on request arrival.
package core

import (
	"slices"
	"time"

	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/span"
)

// Config tunes FaaSMem. The zero value plus defaults reproduces the paper's
// configuration.
type Config struct {
	// DisablePucket turns off the segment-wise cold-page offloading (the
	// "FaaSMem w/o Pucket" ablation of Fig. 13).
	DisablePucket bool
	// DisableSemiWarm turns off the semi-warm period (the "FaaSMem w/o
	// Semi-warm" ablation of Fig. 13).
	DisableSemiWarm bool

	// GradientEpsilon is the relative per-request decrease of remaining
	// init-pucket pages below which the descent gradient counts as zero.
	// Default 0.02 (2%).
	GradientEpsilon float64
	// GradientRuns is how many consecutive near-zero-gradient requests fix
	// the request-window. Default 3.
	GradientRuns int
	// MaxRequestWindow caps the request-window. Default 32 (covers the
	// "prudent choice of a larger request-window, such as 20" for web).
	MaxRequestWindow int
	// FixedRequestWindow, when positive, disables the descent-gradient
	// detection and offloads the Init Pucket after exactly this many
	// requests — the ablation of §5.2's adaptive window (a too-small fixed
	// window recalls cold-tail pages; a too-large one strands memory).
	FixedRequestWindow int

	// RollbackMinInterval is the paper's time parameter t: the minimum time
	// between consecutive rollbacks. Default 10 s (§8.5 recommends ≥ 10 s).
	RollbackMinInterval time.Duration

	// SemiWarmPercentile is the percentile of the container reused-interval
	// distribution used as semi-warm start timing. Default 99 (§6.1's
	// pessimistic estimation protecting the 95%-ile latency).
	SemiWarmPercentile float64
	// MinIntervalSamples is how many reuse observations a function needs
	// before the percentile estimate is trusted. Default 8.
	MinIntervalSamples int
	// FallbackSemiWarmDelay is the start timing used while a function has
	// too little history. Default 2 m.
	FallbackSemiWarmDelay time.Duration
	// LargeContainerBytes selects percentile-based gradual offload for
	// containers at or above this footprint and amount-based below it
	// (§6.2: "large functions adopt the percentile-based approach ... small
	// functions follow the amount-based approach"). Default 256 MB.
	LargeContainerBytes int64
	// PercentPerSecond is the percentile-based offload speed. Default 0.01
	// (1%/s).
	PercentPerSecond float64
	// BytesPerSecond is the amount-based offload speed. Default 1 MB/s.
	BytesPerSecond int64
	// OffloadTick is the granularity of gradual offloading. Default 1 s.
	OffloadTick time.Duration

	// HistoryLimit bounds the per-function reused-interval history kept for
	// timing estimation. Default 512.
	HistoryLimit int

	// ColdStartAwareTiming enables the correction the paper's §8.3.2 points
	// at as an opportunity: under bursty load, cold starts are not reflected
	// in the reused-interval data, so the collected 99%-ile underestimates
	// the ideal semi-warm timing and tail latency suffers. With this switch,
	// the semi-warm delay is stretched by the function's observed cold-start
	// fraction, postponing hot-page offloading for functions whose interval
	// history is known-biased.
	ColdStartAwareTiming bool
}

func (c Config) withDefaults() Config {
	if c.GradientEpsilon <= 0 {
		c.GradientEpsilon = 0.02
	}
	if c.GradientRuns <= 0 {
		c.GradientRuns = 3
	}
	if c.MaxRequestWindow <= 0 {
		c.MaxRequestWindow = 32
	}
	if c.RollbackMinInterval <= 0 {
		c.RollbackMinInterval = 10 * time.Second
	}
	if c.SemiWarmPercentile <= 0 || c.SemiWarmPercentile > 100 {
		c.SemiWarmPercentile = 99
	}
	if c.MinIntervalSamples <= 0 {
		c.MinIntervalSamples = 8
	}
	if c.FallbackSemiWarmDelay <= 0 {
		c.FallbackSemiWarmDelay = 2 * time.Minute
	}
	if c.LargeContainerBytes <= 0 {
		c.LargeContainerBytes = 256 * 1_000_000
	}
	if c.PercentPerSecond <= 0 {
		c.PercentPerSecond = 0.01
	}
	if c.BytesPerSecond <= 0 {
		c.BytesPerSecond = 1_000_000
	}
	if c.OffloadTick <= 0 {
		c.OffloadTick = time.Second
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 512
	}
	return c
}

// FaaSMem is the policy object shared by all containers; it owns per-function
// reuse-interval history and ablation switches. It implements policy.Policy.
type FaaSMem struct {
	cfg  Config
	fns  map[string]*funcHistory
	stat Stats
}

// Stats aggregates policy-level observations for the evaluation.
type Stats struct {
	// RuntimeOffloads counts reactive Runtime-Pucket offload operations.
	RuntimeOffloads int
	// InitOffloads counts window-based Init-Pucket offload operations.
	InitOffloads int
	// Rollbacks counts periodic rollback cycles started.
	Rollbacks int
	// SemiWarmEntries counts containers that entered the semi-warm period.
	SemiWarmEntries int
	// Containers collects one sample per recycled container (Fig. 14 data).
	Containers []ContainerSample
	// WindowSizes lists the request-window sizes chosen per container.
	WindowSizes []int
}

// ContainerSample records one recycled container's semi-warm accounting.
type ContainerSample struct {
	// FunctionID names the function the container served.
	FunctionID string
	// SemiWarmShare is the fraction of the container's lifetime spent in the
	// semi-warm period.
	SemiWarmShare float64
	// Lifetime is the container's total lifetime, launch to recycle.
	Lifetime time.Duration
}

// SemiWarmShares extracts the per-container semi-warm lifetime fractions.
func (s *Stats) SemiWarmShares() []float64 {
	out := make([]float64, len(s.Containers))
	for i, c := range s.Containers {
		out[i] = c.SemiWarmShare
	}
	return out
}

// ContainerLifetimes extracts the per-container lifetimes.
func (s *Stats) ContainerLifetimes() []time.Duration {
	out := make([]time.Duration, len(s.Containers))
	for i, c := range s.Containers {
		out[i] = c.Lifetime
	}
	return out
}

type funcHistory struct {
	intervals []time.Duration
	// sorted mirrors intervals in ascending order so percentile queries are a
	// single index instead of a copy+sort per idle transition. Every mutation
	// of intervals updates it in place.
	sorted   []time.Duration
	override time.Duration // explicit semi-warm timing, 0 if unset
	// coldStarts and reuses feed the cold-start-aware timing correction.
	coldStarts int
	reuses     int
}

// insertSorted adds d to the sorted mirror.
func (h *funcHistory) insertSorted(d time.Duration) {
	i, _ := slices.BinarySearch(h.sorted, d)
	h.sorted = append(h.sorted, 0)
	copy(h.sorted[i+1:], h.sorted[i:])
	h.sorted[i] = d
}

// removeSorted drops one occurrence of d from the sorted mirror.
func (h *funcHistory) removeSorted(d time.Duration) {
	if i, ok := slices.BinarySearch(h.sorted, d); ok {
		h.sorted = append(h.sorted[:i], h.sorted[i+1:]...)
	}
}

// New builds a FaaSMem policy with defaults applied.
func New(cfg Config) *FaaSMem {
	return &FaaSMem{cfg: cfg.withDefaults(), fns: make(map[string]*funcHistory)}
}

// Name implements policy.Policy, reflecting ablation switches so experiment
// output is self-describing.
func (f *FaaSMem) Name() string {
	switch {
	case f.cfg.DisablePucket && f.cfg.DisableSemiWarm:
		return "faasmem-w/o-pucket-semiwarm"
	case f.cfg.DisablePucket:
		return "faasmem-w/o-pucket"
	case f.cfg.DisableSemiWarm:
		return "faasmem-w/o-semiwarm"
	default:
		return "faasmem"
	}
}

// Stats returns the accumulated policy statistics.
func (f *FaaSMem) Stats() *Stats { return &f.stat }

// Config returns the effective configuration.
func (f *FaaSMem) Config() Config { return f.cfg }

// SetSemiWarmTiming pins a function's semi-warm start timing, as a provider
// would from offline profiling of its historical trace (§6.1).
func (f *FaaSMem) SetSemiWarmTiming(fnID string, d time.Duration) {
	f.history(fnID).override = d
}

// SeedReuseIntervals pre-populates a function's container reused-interval
// history from an offline trace analysis.
func (f *FaaSMem) SeedReuseIntervals(fnID string, intervals []time.Duration) {
	h := f.history(fnID)
	for _, d := range intervals {
		h.intervals = append(h.intervals, d)
		h.insertSorted(d)
	}
	f.trim(h)
}

func (f *FaaSMem) history(fnID string) *funcHistory {
	h := f.fns[fnID]
	if h == nil {
		h = &funcHistory{}
		f.fns[fnID] = h
	}
	return h
}

func (f *FaaSMem) trim(h *funcHistory) {
	if over := len(h.intervals) - f.cfg.HistoryLimit; over > 0 {
		for _, d := range h.intervals[:over] {
			h.removeSorted(d)
		}
		h.intervals = append(h.intervals[:0], h.intervals[over:]...)
	}
}

func (f *FaaSMem) recordReuse(fnID string, idle time.Duration) {
	h := f.history(fnID)
	h.intervals = append(h.intervals, idle)
	h.insertSorted(idle)
	h.reuses++
	f.trim(h)
}

// semiWarmDelay computes a function's semi-warm start timing: the explicit
// override if set, the configured percentile of the reuse history once there
// is enough of it, or the fallback delay. With ColdStartAwareTiming, the
// percentile estimate stretches by the observed cold-start fraction to
// compensate for the censoring bias §8.3.2 describes.
func (f *FaaSMem) semiWarmDelay(fnID string) time.Duration {
	h := f.history(fnID)
	if h.override > 0 {
		return h.override
	}
	if len(h.intervals) < f.cfg.MinIntervalSamples {
		return f.cfg.FallbackSemiWarmDelay
	}
	s := h.sorted
	idx := int(f.cfg.SemiWarmPercentile / 100 * float64(len(s)-1))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	delay := s[idx]
	if f.cfg.ColdStartAwareTiming {
		if launches := h.coldStarts + h.reuses; launches > 0 {
			coldFrac := float64(h.coldStarts) / float64(launches)
			delay += time.Duration(coldFrac * float64(delay))
		}
	}
	return delay
}

// Attach implements policy.Policy.
func (f *FaaSMem) Attach(e *simtime.Engine, v policy.View) policy.ContainerPolicy {
	f.history(v.FunctionID()).coldStarts++
	return &container{
		parent:  f,
		cfg:     f.cfg,
		view:    v,
		born:    e.Now(),
		lastRB:  e.Now(),
		history: make([]int, 0, 8),
	}
}

// container is the per-container FaaSMem state machine.
type container struct {
	policy.Base
	parent *FaaSMem
	cfg    Config
	view   policy.View

	born simtime.Time

	// Init-Pucket window detection.
	history       []int // remaining inactive init pages after each request
	window        int   // chosen request-window, 0 while undetermined
	initOffloaded bool

	// Rollback cycle.
	lastRB        simtime.Time
	rollbackArmed bool
	reqsSinceRB   int

	// idBuf is the reusable victim-list scratch shared by every offload this
	// container issues (single-threaded per engine).
	idBuf []pagemem.PageID

	// Semi-warm.
	idleStart    simtime.Time
	semiWarmEv   simtime.Handle
	semiWarmTick *simtime.Ticker
	semiWarm     bool
	semiWarmTime time.Duration // accumulated semi-warm duration
	semiWarmFrom simtime.Time
}

// runtimePucket and initPucket view the container's sealed segments as the
// paper's Puckets.
func (c *container) runtimePucket() Pucket {
	return Pucket{Seg: c.view.RuntimeRange(), Gen: c.view.RuntimeGen()}
}

func (c *container) initPucket() Pucket {
	return Pucket{Seg: c.view.InitRange(), Gen: c.view.InitGen()}
}

// InSemiWarm implements policy.SemiWarmer.
func (c *container) InSemiWarm() bool { return c.semiWarm }

// RequestStart implements policy.ContainerPolicy: a request aborts any
// pending or active semi-warm offloading and records the reuse interval.
func (c *container) RequestStart(e *simtime.Engine) {
	if c.view.RequestsServed() > 0 {
		// Reused after idling: feed the reuse-interval history.
		c.parent.recordReuse(c.view.FunctionID(), e.Now()-c.idleStart)
	}
	c.stopSemiWarm(e)
}

// RequestEnd implements policy.ContainerPolicy: the Pucket policies run at
// request completion boundaries.
func (c *container) RequestEnd(e *simtime.Engine) {
	if c.cfg.DisablePucket {
		return
	}
	n := c.view.RequestsServed()
	if n == 1 {
		c.offloadRuntimePucket(e)
	}
	if !c.initOffloaded {
		c.trackInitWindow(e, n)
	} else {
		c.rollbackCycle(e, n)
	}
}

// offloadRuntimePucket applies §5.1: everything still inactive in the
// Runtime Pucket after the first request goes remote.
func (c *container) offloadRuntimePucket(e *simtime.Engine) {
	var n int
	n, c.idBuf = c.runtimePucket().OffloadInactiveBuf(e, c.view, c.idBuf)
	if n > 0 {
		c.parent.stat.RuntimeOffloads++
	}
}

// trackInitWindow applies §5.2: watch the descent gradient of the remaining
// inactive init pages; when it flattens (or the cap is hit), fix the window
// and offload the remainder. With FixedRequestWindow set, the window is
// predetermined instead.
func (c *container) trackInitWindow(e *simtime.Engine, n int) {
	if w := c.cfg.FixedRequestWindow; w > 0 {
		if n >= w {
			c.fixWindowAndOffload(e, n)
		}
		return
	}
	remaining := c.initPucket().InactivePages(c.view.Space())
	c.history = append(c.history, remaining)

	flat := 0
	for i := len(c.history) - 1; i > 0 && flat < c.cfg.GradientRuns; i-- {
		prev, cur := c.history[i-1], c.history[i]
		if prev == 0 {
			flat++
			continue
		}
		drop := float64(prev-cur) / float64(prev)
		if drop > c.cfg.GradientEpsilon {
			break
		}
		flat++
	}
	if flat >= c.cfg.GradientRuns || n >= c.cfg.MaxRequestWindow {
		c.fixWindowAndOffload(e, n)
	}
}

// fixWindowAndOffload seals the request-window at n and offloads the Init
// Pucket's remaining inactive pages.
func (c *container) fixWindowAndOffload(e *simtime.Engine, n int) {
	c.window = n
	c.initOffloaded = true
	c.parent.stat.WindowSizes = append(c.parent.stat.WindowSizes, n)
	c.view.Trace().Record(telemetry.Event{
		At: e.Now(), Kind: telemetry.KindWindowFixed,
		Actor: c.view.ID(), Fn: c.view.FunctionID(),
		Stage: telemetry.StageInit, Value: int64(n),
	})
	var moved int
	moved, c.idBuf = c.initPucket().OffloadInactiveBuf(e, c.view, c.idBuf)
	if moved > 0 {
		c.parent.stat.InitOffloads++
	}
	c.reqsSinceRB = 0
	c.lastRB = e.Now()
}

// rollbackCycle applies §5.3: when both the request-window and the time
// parameter t have elapsed, demote the hot pool back to the Puckets; after a
// further request-window, offload whatever stayed inactive.
func (c *container) rollbackCycle(e *simtime.Engine, n int) {
	c.reqsSinceRB++
	w := c.window
	if w < 1 {
		w = 1
	}
	if c.rollbackArmed {
		if c.reqsSinceRB >= w {
			// Re-evaluation window over: pages not re-promoted are cold.
			_, c.idBuf = c.runtimePucket().OffloadInactiveBuf(e, c.view, c.idBuf)
			_, c.idBuf = c.initPucket().OffloadInactiveBuf(e, c.view, c.idBuf)
			c.rollbackArmed = false
			c.reqsSinceRB = 0
			c.lastRB = e.Now()
		}
		return
	}
	if c.reqsSinceRB >= w && e.Now()-c.lastRB >= c.cfg.RollbackMinInterval {
		c.rollback(e)
		c.rollbackArmed = true
		c.reqsSinceRB = 0
		c.parent.stat.Rollbacks++
	}
}

// rollback demotes every hot-pool page of the Runtime and Init Puckets back
// to its original Pucket (original = containing range, since Puckets are
// contiguous allocation epochs).
func (c *container) rollback(e *simtime.Engine) {
	s := c.view.Space()
	lru := c.view.LRU()
	n := c.runtimePucket().Rollback(s, lru)
	n += c.initPucket().Rollback(s, lru)
	c.view.Trace().Record(telemetry.Event{
		At: e.Now(), Kind: telemetry.KindRollback,
		Actor: c.view.ID(), Fn: c.view.FunctionID(), Value: int64(n),
	})
	c.view.Spans().RecordBackground(span.Background{
		Kind: span.BGRollback, Function: c.view.FunctionID(),
		Container: c.view.ID(), Start: e.Now(),
		Bytes: int64(n) * int64(s.PageSize()),
	})
}

// Idle implements policy.ContainerPolicy: schedule the semi-warm period.
func (c *container) Idle(e *simtime.Engine) {
	c.idleStart = e.Now()
	if c.cfg.DisableSemiWarm {
		return
	}
	delay := c.parent.semiWarmDelay(c.view.FunctionID())
	c.semiWarmEv = e.After(delay, c.startSemiWarm)
}

// startSemiWarm begins gradual hot-page offloading (§6.2).
func (c *container) startSemiWarm(e *simtime.Engine) {
	if !c.view.Idle() {
		return
	}
	c.semiWarm = true
	c.semiWarmFrom = e.Now()
	c.parent.stat.SemiWarmEntries++
	c.view.Trace().Record(telemetry.Event{
		At: e.Now(), Kind: telemetry.KindSemiWarmEnter,
		Actor: c.view.ID(), Fn: c.view.FunctionID(),
		Value: c.view.Space().LocalBytes(),
	})
	c.semiWarmTick = simtime.NewTicker(e, c.cfg.OffloadTick, c.gradualOffload)
}

// gradualOffload moves one tick's budget of pages to the pool: inactive
// pages first (cheapest to lose), then hot pages.
func (c *container) gradualOffload(e *simtime.Engine) {
	s := c.view.Space()
	total := s.TotalBytes()
	if s.LocalBytes() == 0 || total == 0 {
		c.stopTicker()
		return
	}
	var budget int64
	if total >= c.cfg.LargeContainerBytes {
		budget = int64(float64(total) * c.cfg.PercentPerSecond * c.cfg.OffloadTick.Seconds())
	} else {
		budget = int64(float64(c.cfg.BytesPerSecond) * c.cfg.OffloadTick.Seconds())
	}
	// Global bandwidth control: uniformly scale down near the link limit.
	budget = int64(float64(budget) * c.view.OffloadScale())
	pages := s.PagesOf(budget)
	if pages <= 0 {
		return
	}
	ids := c.idBuf[:0]
	for _, st := range []pagemem.State{pagemem.Inactive, pagemem.Hot} {
		for _, r := range []pagemem.Range{c.view.RuntimeRange(), c.view.InitRange()} {
			if len(ids) >= pages {
				break
			}
			ids = s.CollectInState(ids, r, st, pages)
		}
	}
	c.idBuf = ids
	if len(ids) == 0 {
		c.stopTicker()
		return
	}
	c.view.OffloadPages(e, ids)
}

func (c *container) stopTicker() {
	if c.semiWarmTick != nil {
		c.semiWarmTick.Stop()
		c.semiWarmTick = nil
	}
}

// stopSemiWarm cancels pending/active semi-warm offloading at reuse time.
func (c *container) stopSemiWarm(e *simtime.Engine) {
	e.Cancel(c.semiWarmEv)
	c.semiWarmEv = simtime.Handle{}
	if c.semiWarm {
		c.semiWarmTime += e.Now() - c.semiWarmFrom
		c.semiWarm = false
		c.view.Trace().Record(telemetry.Event{
			At: c.semiWarmFrom, Dur: time.Duration(e.Now() - c.semiWarmFrom),
			Kind:  telemetry.KindSemiWarmExit,
			Actor: c.view.ID(), Fn: c.view.FunctionID(),
			Value: c.view.Space().RemoteBytes(),
		})
		c.view.Spans().RecordBackground(span.Background{
			Kind: span.BGSemiWarm, Function: c.view.FunctionID(),
			Container: c.view.ID(), Start: c.semiWarmFrom,
			Dur:   time.Duration(e.Now() - c.semiWarmFrom),
			Bytes: c.view.Space().RemoteBytes(),
		})
	}
	c.stopTicker()
}

// Recycle implements policy.ContainerPolicy: release timers and record
// per-container semi-warm statistics.
func (c *container) Recycle(e *simtime.Engine) {
	c.stopSemiWarm(e)
	lifetime := e.Now() - c.born
	share := 0.0
	if lifetime > 0 {
		share = float64(c.semiWarmTime) / float64(lifetime)
	}
	c.parent.stat.Containers = append(c.parent.stat.Containers, ContainerSample{
		FunctionID:    c.view.FunctionID(),
		SemiWarmShare: share,
		Lifetime:      lifetime,
	})
}
