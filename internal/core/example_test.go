package core_test

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// Example runs the same periodic web workload under the no-offload baseline
// and under FaaSMem, showing the library's core result: a large cut in
// node-local memory at essentially unchanged latency.
func Example() {
	var invocations []simtime.Time
	for i := 0; i < 20; i++ {
		invocations = append(invocations, simtime.Time(i*15)*simtime.Time(time.Second))
	}

	run := func(pol policy.Policy) (memMB, p95 float64) {
		engine := simtime.NewEngine()
		platform := faas.New(engine, faas.Config{
			KeepAliveTimeout: 5 * time.Minute,
			Seed:             1,
		}, pol)
		fn := platform.Register("web", workload.Web())
		platform.ScheduleInvocations("web", invocations)
		engine.Run()
		return platform.NodeLocalAvg() / 1e6, fn.Stats().Latency.P95()
	}

	baseMem, baseP95 := run(policy.NoOffload{})
	fmMem, fmP95 := run(core.New(core.Config{}))

	fmt.Printf("baseline: %.0f MB avg local, P95 %.3fs\n", baseMem, baseP95)
	fmt.Printf("faasmem:  %.0f MB avg local, P95 %.3fs\n", fmMem, fmP95)
	fmt.Printf("saved:    %.0f%%\n", (1-fmMem/baseMem)*100)
	// Output:
	// baseline: 329 MB avg local, P95 0.205s
	// faasmem:  101 MB avg local, P95 0.207s
	// saved:    69%
}

// ExampleFaaSMem_SetSemiWarmTiming shows provider-side profiling: pinning a
// function's semi-warm start timing instead of learning it online.
func ExampleFaaSMem_SetSemiWarmTiming() {
	fm := core.New(core.Config{})
	fm.SetSemiWarmTiming("checkout", 45*time.Second)
	fmt.Println(fm.Name())
	// Output:
	// faasmem
}
