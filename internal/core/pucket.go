package core

import (
	"github.com/faasmem/faasmem/internal/mglru"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
)

// Pucket (Page Bucket) is the paper's §4 structure: a contiguous page range
// sealed between two time barriers, implemented as one MGLRU generation. Its
// *inactive list* is the set of its pages still in the Inactive state; pages
// accessed after sealing move to the shared hot page pool (the youngest
// generation) and can be rolled back for re-evaluation (§5.3).
type Pucket struct {
	// Seg is the page range the barrier sealed.
	Seg pagemem.Range
	// Gen is the MGLRU generation backing the Pucket.
	Gen mglru.GenID
}

// InactivePages counts the Pucket's inactive list.
func (p Pucket) InactivePages(s *pagemem.Space) int {
	return s.CountInRange(p.Seg, pagemem.Inactive)
}

// HotPages counts this Pucket's pages currently in the hot page pool.
func (p Pucket) HotPages(s *pagemem.Space) int {
	return s.CountInRange(p.Seg, pagemem.Hot)
}

// RemotePages counts this Pucket's pages offloaded to the pool.
func (p Pucket) RemotePages(s *pagemem.Space) int {
	return s.CountInRange(p.Seg, pagemem.Remote)
}

// OffloadInactive offloads the whole inactive list through the view and
// returns how many pages actually moved (the pool/link may truncate). The
// victim scan walks the Inactive bitset word-at-a-time, so a fully hot or
// fully offloaded Pucket costs O(words).
func (p Pucket) OffloadInactive(e *simtime.Engine, v policy.View) int {
	n, _ := p.OffloadInactiveBuf(e, v, nil)
	return n
}

// OffloadInactiveBuf is OffloadInactive with a caller-owned scratch buffer:
// the victim list is built in buf (reused, grown as needed) and the grown
// buffer is returned for the next call, keeping steady-state Pucket offloads
// allocation-free.
func (p Pucket) OffloadInactiveBuf(e *simtime.Engine, v policy.View, buf []pagemem.PageID) (int, []pagemem.PageID) {
	ids := v.Space().CollectInState(buf[:0], p.Seg, pagemem.Inactive, 0)
	if len(ids) == 0 {
		return 0, ids
	}
	moved := v.OffloadPages(e, ids)
	if moved > 0 {
		v.Trace().Record(telemetry.Event{
			At: e.Now(), Kind: telemetry.KindPucketOffload,
			Actor: v.ID(), Fn: v.FunctionID(), Stage: p.stage(v),
			Value: int64(moved), Aux: int64(p.Gen),
		})
	}
	return moved, ids
}

// stage names the lifecycle segment this Pucket seals.
func (p Pucket) stage(v policy.View) telemetry.Stage {
	switch p.Seg {
	case v.RuntimeRange():
		return telemetry.StageRuntime
	case v.InitRange():
		return telemetry.StageInit
	default:
		return telemetry.StageNone
	}
}

// Rollback demotes every hot-pool page of this Pucket back to its inactive
// list (clearing access bits so the next request-window re-evaluates them)
// and returns the number of pages rolled back. Non-hot pages are skipped
// word-at-a-time via the Hot-state bitset.
func (p Pucket) Rollback(s *pagemem.Space, lru *mglru.LRU) int {
	return s.TransitionRange(p.Seg, pagemem.Hot, pagemem.Inactive, func(id pagemem.PageID) {
		s.ClearAccessed(id)
		lru.Demote(id, p.Gen)
	})
}
