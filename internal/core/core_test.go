package core

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// testProfile: 2 MB runtime (0.5 MB hot), 1 MB init (0.25 MB hot), fast.
func testProfile() *workload.Profile {
	return &workload.Profile{
		Name:            "t",
		Language:        workload.Python,
		CPUShare:        0.1,
		RuntimeBytes:    2 * workload.MB,
		RuntimeHotBytes: 512 * 1024,
		InitBytes:       1 * workload.MB,
		InitHotBytes:    256 * 1024,
		Pattern:         workload.FixedHot,
		ExecBytes:       128 * 1024,
		ExecTime:        50 * time.Millisecond,
		InitTime:        100 * time.Millisecond,
		LaunchTime:      100 * time.Millisecond,
		QuotaBytes:      8 * workload.MB,
	}
}

func runScenario(t *testing.T, fm *FaaSMem, prof *workload.Profile, invocations []simtime.Time, until time.Duration) (*simtime.Engine, *faas.Platform, *faas.Function) {
	t.Helper()
	e := simtime.NewEngine()
	p := faas.New(e, faas.Config{KeepAliveTimeout: 10 * time.Minute, Seed: 7}, fm)
	f := p.Register(prof.Name, prof)
	p.ScheduleInvocations(prof.Name, invocations)
	if until > 0 {
		e.RunUntil(until)
	} else {
		e.Run()
	}
	return e, p, f
}

func ts(vals ...float64) []simtime.Time {
	out := make([]simtime.Time, len(vals))
	for i, v := range vals {
		out[i] = simtime.Time(v * float64(time.Second))
	}
	return out
}

func TestRuntimePucketReactiveOffload(t *testing.T) {
	fm := New(Config{DisableSemiWarm: true})
	_, p, _ := runScenario(t, fm, testProfile(), ts(0), time.Second)
	if fm.Stats().RuntimeOffloads != 1 {
		t.Fatalf("runtime offloads = %d, want 1", fm.Stats().RuntimeOffloads)
	}
	// Cold runtime pages (2 MB − 0.5 MB hot) went remote.
	remote := p.Pool().Used()
	wantMin := int64(1 * workload.MB)
	if remote < wantMin {
		t.Fatalf("pool holds %d bytes after first request, want >= %d", remote, wantMin)
	}
}

func TestRuntimeRecallsAreFew(t *testing.T) {
	// Fig 8: after the reactive offload, subsequent requests recall almost
	// nothing from the Runtime Pucket.
	fm := New(Config{DisableSemiWarm: true})
	_, _, f := runScenario(t, fm, testProfile(), ts(0, 1, 2, 3, 4, 5), 10*time.Second)
	if f.Stats().Requests != 6 {
		t.Fatalf("requests = %d, want 6", f.Stats().Requests)
	}
	if f.Stats().RuntimeFaultPages != 0 {
		t.Fatalf("runtime recalls = %d, want 0 (hot set stayed local)", f.Stats().RuntimeFaultPages)
	}
}

func TestInitWindowOffload(t *testing.T) {
	fm := New(Config{DisableSemiWarm: true, GradientRuns: 2})
	_, p, _ := runScenario(t, fm, testProfile(), ts(0, 1, 2, 3, 4, 5, 6, 7), 10*time.Second)
	if fm.Stats().InitOffloads != 1 {
		t.Fatalf("init offloads = %d, want 1", fm.Stats().InitOffloads)
	}
	if len(fm.Stats().WindowSizes) != 1 {
		t.Fatalf("window sizes = %v", fm.Stats().WindowSizes)
	}
	w := fm.Stats().WindowSizes[0]
	// FixedHot stabilizes immediately: expect a small window.
	if w < 1 || w > 5 {
		t.Fatalf("window = %d, want small for stable access pattern", w)
	}
	// Init cold pages (1 MB − 0.25 MB) are remote on top of runtime's.
	if p.Pool().Used() < int64(2*workload.MB) {
		t.Fatalf("pool holds %d, want runtime+init cold pages", p.Pool().Used())
	}
}

func TestInitWindowLargerForParetoWorkload(t *testing.T) {
	// A web-like profile keeps discovering newly-touched objects, so the
	// descent gradient flattens later than for a fixed hot set.
	web := testProfile()
	web.Name = "weblike"
	web.InitBytes = 4 * workload.MB
	web.InitHotBytes = 256 * 1024
	web.Pattern = workload.ParetoObjects
	web.Objects = 24
	web.ParetoAlpha = 1.1

	fixed := testProfile()

	run := func(prof *workload.Profile) int {
		fm := New(Config{DisableSemiWarm: true})
		var inv []simtime.Time
		for i := 0; i < 40; i++ {
			inv = append(inv, simtime.Time(i)*simtime.Time(time.Second))
		}
		runScenario(t, fm, prof, inv, 60*time.Second)
		if len(fm.Stats().WindowSizes) == 0 {
			t.Fatalf("%s: window never chosen", prof.Name)
		}
		return fm.Stats().WindowSizes[0]
	}
	wFixed := run(fixed)
	wWeb := run(web)
	if wWeb <= wFixed {
		t.Errorf("pareto window (%d) should exceed fixed-hot window (%d)", wWeb, wFixed)
	}
}

func TestRollbackReoffloadsColdPages(t *testing.T) {
	fm := New(Config{DisableSemiWarm: true, RollbackMinInterval: 2 * time.Second, GradientRuns: 2})
	var inv []simtime.Time
	for i := 0; i < 30; i++ {
		inv = append(inv, simtime.Time(i)*simtime.Time(time.Second))
	}
	_, _, _ = runScenario(t, fm, testProfile(), inv, 40*time.Second)
	if fm.Stats().Rollbacks == 0 {
		t.Fatal("no rollback cycles despite long request stream")
	}
}

func TestRollbackDemotesOnlyHotPoolPages(t *testing.T) {
	// Unit-level check of rollback mechanics through a scripted container.
	e := simtime.NewEngine()
	p := faas.New(e, faas.Config{KeepAliveTimeout: time.Hour, Seed: 1}, New(Config{DisableSemiWarm: true}))
	f := p.Register("t", testProfile())
	p.ScheduleInvocations("t", ts(0))
	e.RunUntil(time.Second)
	// Find the container through the platform's registered function.
	if f.LiveContainers() != 1 {
		t.Fatal("expected one live container")
	}
	// The runtime hot pages were promoted to the hot pool generation.
	// (Indirect check: pool used < full runtime size, meaning hot pages
	// stayed local.)
	if p.Pool().Used() >= int64(2*workload.MB) {
		t.Fatal("hot pages were offloaded with the cold ones")
	}
}

func TestSemiWarmGradualOffload(t *testing.T) {
	fm := New(Config{
		FallbackSemiWarmDelay: 5 * time.Second,
		BytesPerSecond:        256 * 1024,
		DisablePucket:         true, // isolate semi-warm
	})
	e, p, _ := runScenario(t, fm, testProfile(), ts(0), 0)
	_ = e
	if fm.Stats().SemiWarmEntries != 1 {
		t.Fatalf("semi-warm entries = %d, want 1", fm.Stats().SemiWarmEntries)
	}
	// Gradual: by the end (keep-alive expiry at +10 min) everything
	// offloadable went remote... and was then discarded at recycle.
	// Check instead that the pool saw offload traffic in many small steps.
	if p.Pool().Meter(0).Total() == 0 {
		t.Fatal("semi-warm offloaded nothing")
	}
	// Share of lifetime spent semi-warm is recorded at recycle.
	if shares := fm.Stats().SemiWarmShares(); len(shares) != 1 || shares[0] <= 0 {
		t.Fatalf("semi-warm shares = %v", shares)
	}
}

func TestSemiWarmAbortsOnRequest(t *testing.T) {
	fm := New(Config{
		FallbackSemiWarmDelay: 2 * time.Second,
		BytesPerSecond:        2 * workload.MB, // fast enough to reach hot pages
		DisablePucket:         true,
	})
	// Second request arrives mid semi-warm (idle from ~0.25 s, semi-warm at
	// ~2.25 s, reuse at 5 s). Stop before the second idle period re-enters
	// semi-warm at ~7.05 s.
	_, p, f := runScenario(t, fm, testProfile(), ts(0, 5), 7*time.Second)
	if fm.Stats().SemiWarmEntries != 1 {
		t.Fatalf("semi-warm entries = %d, want 1", fm.Stats().SemiWarmEntries)
	}
	if f.Stats().SemiWarmStarts != 1 {
		t.Fatalf("semi-warm starts = %d, want 1", f.Stats().SemiWarmStarts)
	}
	// Offloading stopped at reuse: local memory recovered for the hot set
	// and the second request faulted some pages back.
	if f.Stats().FaultPages == 0 {
		t.Fatal("reused semi-warm container should fault offloaded pages back")
	}
	_ = p
}

func TestSemiWarmTimingFromSeededHistory(t *testing.T) {
	fm := New(Config{MinIntervalSamples: 4})
	intervals := []time.Duration{
		time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second,
		5 * time.Second, 6 * time.Second, 7 * time.Second, 100 * time.Second,
	}
	fm.SeedReuseIntervals("f", intervals)
	got := fm.semiWarmDelay("f")
	// P99 of 8 samples → index 6 (0-based int truncation) or the tail.
	if got < 7*time.Second {
		t.Fatalf("semi-warm delay = %v, want high percentile of history", got)
	}
}

func TestSemiWarmTimingFallbackAndOverride(t *testing.T) {
	fm := New(Config{FallbackSemiWarmDelay: 90 * time.Second})
	if got := fm.semiWarmDelay("unknown"); got != 90*time.Second {
		t.Fatalf("fallback delay = %v", got)
	}
	fm.SetSemiWarmTiming("unknown", 7*time.Second)
	if got := fm.semiWarmDelay("unknown"); got != 7*time.Second {
		t.Fatalf("override delay = %v", got)
	}
}

func TestHistoryTrimming(t *testing.T) {
	fm := New(Config{HistoryLimit: 10})
	var iv []time.Duration
	for i := 0; i < 50; i++ {
		iv = append(iv, time.Duration(i)*time.Second)
	}
	fm.SeedReuseIntervals("f", iv)
	if got := len(fm.history("f").intervals); got != 10 {
		t.Fatalf("history length = %d, want 10", got)
	}
	// Trim keeps the most recent entries.
	if fm.history("f").intervals[0] != 40*time.Second {
		t.Fatalf("trim kept wrong window: %v", fm.history("f").intervals[0])
	}
}

func TestAblationDisablePucket(t *testing.T) {
	fm := New(Config{DisablePucket: true, DisableSemiWarm: true})
	_, p, _ := runScenario(t, fm, testProfile(), ts(0, 1, 2), 5*time.Second)
	if p.Pool().Used() != 0 {
		t.Fatalf("pool used = %d with both mechanisms disabled", p.Pool().Used())
	}
	if fm.Stats().RuntimeOffloads != 0 || fm.Stats().InitOffloads != 0 {
		t.Fatal("pucket offloads ran despite DisablePucket")
	}
}

func TestAblationDisableSemiWarm(t *testing.T) {
	fm := New(Config{DisableSemiWarm: true, FallbackSemiWarmDelay: time.Second})
	runScenario(t, fm, testProfile(), ts(0), 0)
	if fm.Stats().SemiWarmEntries != 0 {
		t.Fatal("semi-warm ran despite DisableSemiWarm")
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Config{
		"faasmem":                     {},
		"faasmem-w/o-pucket":          {DisablePucket: true},
		"faasmem-w/o-semiwarm":        {DisableSemiWarm: true},
		"faasmem-w/o-pucket-semiwarm": {DisablePucket: true, DisableSemiWarm: true},
	}
	for want, cfg := range cases {
		if got := New(cfg).Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	fm := New(Config{})
	c := fm.Config()
	if c.GradientEpsilon != 0.02 || c.GradientRuns != 3 || c.MaxRequestWindow != 32 {
		t.Error("gradient defaults wrong")
	}
	if c.RollbackMinInterval != 10*time.Second {
		t.Error("rollback default wrong")
	}
	if c.SemiWarmPercentile != 99 || c.BytesPerSecond != 1_000_000 || c.PercentPerSecond != 0.01 {
		t.Error("semi-warm defaults wrong")
	}
}

// TestFaaSMemBeatsBaselineMemory is the headline integration check: over a
// steady request stream plus idle tails, FaaSMem's node memory average is
// substantially below the no-offload baseline at similar latency.
func TestFaaSMemBeatsBaselineMemory(t *testing.T) {
	var inv []simtime.Time
	for i := 0; i < 20; i++ {
		inv = append(inv, simtime.Time(i*2)*simtime.Time(time.Second))
	}
	run := func(pol policy.Policy) (avgMem float64, p95 float64) {
		e := simtime.NewEngine()
		p := faas.New(e, faas.Config{KeepAliveTimeout: 5 * time.Minute, Seed: 7}, pol)
		f := p.Register("t", testProfile())
		p.ScheduleInvocations("t", inv)
		e.Run()
		return p.NodeLocalAvg(), f.Stats().Latency.P95()
	}
	baseMem, baseP95 := run(policy.NoOffload{})
	fmMem, fmP95 := run(New(Config{FallbackSemiWarmDelay: 30 * time.Second}))
	if fmMem >= baseMem*0.8 {
		t.Errorf("FaaSMem avg memory %.0f not << baseline %.0f", fmMem, baseMem)
	}
	if fmP95 > baseP95*1.5 {
		t.Errorf("FaaSMem P95 %.3f degraded too much vs baseline %.3f", fmP95, baseP95)
	}
}

// TestHotPagesSurviveUntilSemiWarm: without semi-warm, hot pages never leave
// local memory; with it, they eventually do.
func TestHotPagesLeaveOnlyViaSemiWarm(t *testing.T) {
	prof := testProfile()
	hotBytes := prof.RuntimeHotBytes + prof.InitHotBytes

	noSW := New(Config{DisableSemiWarm: true})
	_, pNo, _ := runScenario(t, noSW, prof, ts(0, 1), 0)
	// Pool may hold cold pages, but never the hot set.
	coldCapacity := prof.RuntimeBytes + prof.InitBytes - hotBytes
	if pNo.Pool().Meter(0).Total() > coldCapacity+8*4096 {
		t.Fatalf("without semi-warm, offloaded %d > cold capacity %d",
			pNo.Pool().Meter(0).Total(), coldCapacity)
	}

	withSW := New(Config{FallbackSemiWarmDelay: 5 * time.Second, PercentPerSecond: 0.2, BytesPerSecond: 4 * workload.MB})
	_, pYes, _ := runScenario(t, withSW, prof, ts(0, 1), 0)
	if pYes.Pool().Meter(0).Total() <= pNo.Pool().Meter(0).Total() {
		t.Fatal("semi-warm did not offload beyond the cold pages")
	}
}

func TestStatsRecordedAtRecycle(t *testing.T) {
	fm := New(Config{DisableSemiWarm: true})
	runScenario(t, fm, testProfile(), ts(0), 0) // run to recycle
	lifetimes := fm.Stats().ContainerLifetimes()
	if len(lifetimes) != 1 {
		t.Fatalf("container lifetimes = %v", lifetimes)
	}
	if lifetimes[0] <= 0 {
		t.Fatal("lifetime must be positive")
	}
	if shares := fm.Stats().SemiWarmShares(); len(shares) != 1 || shares[0] != 0 {
		t.Fatalf("semi-warm share should be 0 when disabled: %v", shares)
	}
	if fm.Stats().Containers[0].FunctionID != "t" {
		t.Fatalf("container sample fn = %q", fm.Stats().Containers[0].FunctionID)
	}
}

func TestAttachIndependentContainers(t *testing.T) {
	// Two overlapping containers must not share window/rollback state.
	fm := New(Config{DisableSemiWarm: true})
	e := simtime.NewEngine()
	p := faas.New(e, faas.Config{KeepAliveTimeout: time.Minute, Seed: 3}, fm)
	p.Register("t", testProfile())
	p.ScheduleInvocations("t", ts(0, 0.05, 1, 1.05, 2, 2.05, 3, 3.05))
	e.Run()
	if fm.Stats().RuntimeOffloads != 2 {
		t.Fatalf("runtime offloads = %d, want 2 (one per container)", fm.Stats().RuntimeOffloads)
	}
}

var _ policy.Policy = (*FaaSMem)(nil)
var _ pagemem.State = pagemem.Inactive // keep import for clarity of intent

func TestFixedRequestWindow(t *testing.T) {
	fm := New(Config{DisableSemiWarm: true, FixedRequestWindow: 5})
	_, _, _ = runScenario(t, fm, testProfile(), ts(0, 1, 2, 3, 4, 5, 6), 10*time.Second)
	ws := fm.Stats().WindowSizes
	if len(ws) != 1 || ws[0] != 5 {
		t.Fatalf("window sizes = %v, want [5]", ws)
	}
}

func TestFixedWindowOneOffloadsEarly(t *testing.T) {
	early := New(Config{DisableSemiWarm: true, FixedRequestWindow: 1})
	_, pEarly, _ := runScenario(t, early, testProfile(), ts(0, 1), 3*time.Second)
	late := New(Config{DisableSemiWarm: true, FixedRequestWindow: 10})
	_, pLate, _ := runScenario(t, late, testProfile(), ts(0, 1), 3*time.Second)
	if pEarly.Pool().Used() <= pLate.Pool().Used() {
		t.Fatalf("window=1 offloaded %d <= window=10 %d after two requests",
			pEarly.Pool().Used(), pLate.Pool().Used())
	}
}

func TestRollbackRespectsTimeParameter(t *testing.T) {
	// With an enormous t, the rollback cycle never triggers no matter how
	// many request-windows pass (§5.3: both windows must be satisfied).
	fm := New(Config{DisableSemiWarm: true, RollbackMinInterval: time.Hour, GradientRuns: 2})
	var inv []simtime.Time
	for i := 0; i < 30; i++ {
		inv = append(inv, simtime.Time(i)*simtime.Time(time.Second))
	}
	runScenario(t, fm, testProfile(), inv, 40*time.Second)
	if fm.Stats().Rollbacks != 0 {
		t.Fatalf("rollbacks = %d despite t=1h", fm.Stats().Rollbacks)
	}
}

func TestMaxRequestWindowForcesOffload(t *testing.T) {
	// A workload whose init gradient never flattens (full-scan graph keeps
	// init pages hot, so remaining-inactive barely changes... use a pareto
	// with huge object count) still seals the window at the cap.
	prof := testProfile()
	prof.Name = "churner"
	prof.InitBytes = 4 * workload.MB
	prof.InitHotBytes = 0
	prof.Pattern = workload.ParetoObjects
	prof.Objects = 1024
	prof.ObjectsPerRequest = 4
	prof.ParetoAlpha = 0.3 // nearly uniform: gradient keeps moving
	fm := New(Config{DisableSemiWarm: true, MaxRequestWindow: 6, GradientEpsilon: 0.0001, GradientRuns: 50})
	var inv []simtime.Time
	for i := 0; i < 10; i++ {
		inv = append(inv, simtime.Time(i)*simtime.Time(time.Second))
	}
	runScenario(t, fm, prof, inv, 15*time.Second)
	ws := fm.Stats().WindowSizes
	if len(ws) != 1 || ws[0] != 6 {
		t.Fatalf("window sizes = %v, want capped [6]", ws)
	}
}

func TestSemiWarmNotReenteredWhileBusy(t *testing.T) {
	// The semi-warm timer can fire while the container is executing (timer
	// from a previous idle period); it must notice and do nothing.
	fm := New(Config{FallbackSemiWarmDelay: 950 * time.Millisecond, DisablePucket: true})
	// Idle at ~0.25s; timer at ~1.2s; reuse at 1.1s puts the container busy
	// (exec 50ms)... then idle again. No crash, consistent counters.
	_, _, f := runScenario(t, fm, testProfile(), ts(0, 1.19), 3*time.Second)
	if f.Stats().Requests != 2 {
		t.Fatalf("requests = %d", f.Stats().Requests)
	}
}
