package core

import (
	"testing"

	"github.com/faasmem/faasmem/internal/mglru"
	"github.com/faasmem/faasmem/internal/pagemem"
)

func newPucketFixture() (*pagemem.Space, *mglru.LRU, Pucket) {
	s := pagemem.NewSpace(pagemem.DefaultPageSize)
	lru := mglru.New(s)
	s.Alloc(pagemem.SegRuntime, 10)
	gen, seg := lru.InsertBarrier()
	return s, lru, Pucket{Seg: seg, Gen: gen}
}

func TestPucketCounts(t *testing.T) {
	s, lru, p := newPucketFixture()
	if p.InactivePages(s) != 10 || p.HotPages(s) != 0 || p.RemotePages(s) != 0 {
		t.Fatalf("fresh pucket counts = %d/%d/%d",
			p.InactivePages(s), p.HotPages(s), p.RemotePages(s))
	}
	// Promote three pages to the hot pool, offload two.
	for i := pagemem.PageID(0); i < 3; i++ {
		s.SetState(p.Seg.Start+i, pagemem.Hot)
		lru.Promote(p.Seg.Start + i)
	}
	s.SetState(p.Seg.Start+5, pagemem.Remote)
	s.SetState(p.Seg.Start+6, pagemem.Remote)
	if p.InactivePages(s) != 5 || p.HotPages(s) != 3 || p.RemotePages(s) != 2 {
		t.Fatalf("counts = %d/%d/%d, want 5/3/2",
			p.InactivePages(s), p.HotPages(s), p.RemotePages(s))
	}
}

func TestPucketRollback(t *testing.T) {
	s, lru, p := newPucketFixture()
	lru.InsertBarrier() // open the hot-pool generation
	for i := pagemem.PageID(0); i < 4; i++ {
		s.SetState(p.Seg.Start+i, pagemem.Hot)
		lru.Promote(p.Seg.Start + i)
	}
	if got := p.Rollback(s, lru); got != 4 {
		t.Fatalf("rollback moved %d pages, want 4", got)
	}
	if p.HotPages(s) != 0 || p.InactivePages(s) != 10 {
		t.Fatalf("after rollback: hot=%d inactive=%d", p.HotPages(s), p.InactivePages(s))
	}
	// Rolled-back pages return to the Pucket's generation with clear bits.
	for i := pagemem.PageID(0); i < 4; i++ {
		id := p.Seg.Start + i
		if lru.GenOf(id) != p.Gen {
			t.Fatalf("page %d gen = %d, want %d", id, lru.GenOf(id), p.Gen)
		}
		if s.Accessed(id) {
			t.Fatalf("page %d access bit survived rollback", id)
		}
	}
	// Rollback is idempotent.
	if got := p.Rollback(s, lru); got != 0 {
		t.Fatalf("second rollback moved %d pages", got)
	}
}
