package cgroup

import (
	"math"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// PSI tracks memory pressure-stall information for one container, following
// the shape of Linux's PSI accounting that TMO's feedback loop consumes
// (paper §2.2, TMO reference [65]): the fraction of wall time recently spent
// stalled on memory (here: waiting on remote-memory faults), exposed as
// exponentially-decayed averages over 10 s, 60 s and 300 s horizons, plus a
// cumulative total.
type PSI struct {
	last  simtime.Time
	avg10 float64
	avg60 float64
	avg3m float64
	total time.Duration
}

// NewPSI starts PSI accounting at virtual time start.
func NewPSI(start simtime.Time) *PSI { return &PSI{last: start} }

const (
	psiWin10 = 10.0
	psiWin60 = 60.0
	psiWin3m = 300.0
)

// decayTo ages the averages forward to now with their window half-lives.
func (p *PSI) decayTo(now simtime.Time) {
	if now <= p.last {
		return
	}
	dt := (now - p.last).Seconds()
	p.avg10 *= math.Exp2(-dt / psiWin10)
	p.avg60 *= math.Exp2(-dt / psiWin60)
	p.avg3m *= math.Exp2(-dt / psiWin3m)
	p.last = now
}

// AddStall records a stall of duration d that completed at virtual time now.
// Each average absorbs the stall as "stalled seconds per window second".
func (p *PSI) AddStall(now simtime.Time, d time.Duration) {
	if d < 0 {
		panic("cgroup: negative stall")
	}
	p.decayTo(now)
	s := d.Seconds()
	p.avg10 += s / psiWin10
	p.avg60 += s / psiWin60
	p.avg3m += s / psiWin3m
	p.total += d
}

// Avg10 returns the ~10 s stall fraction as of now (0 = no pressure;
// values can exceed 1 transiently after a stall burst, as in the kernel
// before windowing settles).
func (p *PSI) Avg10(now simtime.Time) float64 {
	p.decayTo(now)
	return p.avg10
}

// Avg60 returns the ~60 s stall fraction as of now.
func (p *PSI) Avg60(now simtime.Time) float64 {
	p.decayTo(now)
	return p.avg60
}

// Avg300 returns the ~300 s stall fraction as of now.
func (p *PSI) Avg300(now simtime.Time) float64 {
	p.decayTo(now)
	return p.avg3m
}

// Total returns cumulative stall time.
func (p *PSI) Total() time.Duration { return p.total }
