package cgroup

import (
	"math"
	"testing"
	"time"
)

func TestChargeUncharge(t *testing.T) {
	g := New("c0", 0)
	g.Charge(0, 1000)
	if g.LocalBytes() != 1000 {
		t.Fatalf("LocalBytes = %d, want 1000", g.LocalBytes())
	}
	g.Uncharge(time.Second, 400)
	if g.LocalBytes() != 600 {
		t.Fatalf("LocalBytes = %d, want 600", g.LocalBytes())
	}
	if g.Name() != "c0" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestOffloadMovesResidency(t *testing.T) {
	g := New("c", 0)
	g.Charge(0, 1000)
	g.Offload(time.Second, 300)
	if g.LocalBytes() != 700 || g.RemoteBytes() != 300 {
		t.Fatalf("local/remote = %d/%d, want 700/300", g.LocalBytes(), g.RemoteBytes())
	}
	if g.OffloadedBytes() != 300 {
		t.Fatalf("OffloadedBytes = %d", g.OffloadedBytes())
	}
}

func TestRecallMovesBack(t *testing.T) {
	g := New("c", 0)
	g.Charge(0, 1000)
	g.Offload(time.Second, 500)
	g.Recall(2*time.Second, 200)
	if g.LocalBytes() != 700 || g.RemoteBytes() != 300 {
		t.Fatalf("local/remote = %d/%d, want 700/300", g.LocalBytes(), g.RemoteBytes())
	}
	if g.RecalledBytes() != 200 {
		t.Fatalf("RecalledBytes = %d", g.RecalledBytes())
	}
	// Total traffic counters are cumulative, not net.
	if g.OffloadedBytes() != 500 {
		t.Fatalf("OffloadedBytes = %d, want cumulative 500", g.OffloadedBytes())
	}
}

func TestDropRemote(t *testing.T) {
	g := New("c", 0)
	g.Charge(0, 100)
	g.Offload(0, 100)
	g.DropRemote(time.Second, 100)
	if g.RemoteBytes() != 0 {
		t.Fatalf("RemoteBytes = %d, want 0", g.RemoteBytes())
	}
	if g.RecalledBytes() != 0 {
		t.Fatal("DropRemote must not count as recall traffic")
	}
}

func TestAvgLocalBytesTimeWeighted(t *testing.T) {
	g := New("c", 0)
	g.Charge(0, 1000)
	g.Offload(10*time.Second, 500) // 1000 for 10s, then 500 for 10s
	got := g.AvgLocalBytes(20 * time.Second)
	if math.Abs(got-750) > 1e-9 {
		t.Fatalf("AvgLocalBytes = %v, want 750", got)
	}
	if gotR := g.AvgRemoteBytes(20 * time.Second); math.Abs(gotR-250) > 1e-9 {
		t.Fatalf("AvgRemoteBytes = %v, want 250", gotR)
	}
}

func TestPeakLocal(t *testing.T) {
	g := New("c", 0)
	g.Charge(0, 100)
	g.Charge(time.Second, 400)
	g.Uncharge(2*time.Second, 450)
	if g.PeakLocalBytes() != 500 {
		t.Fatalf("PeakLocalBytes = %d, want 500", g.PeakLocalBytes())
	}
}

func TestPSIStartsAtZero(t *testing.T) {
	p := NewPSI(0)
	if p.Avg10(time.Minute) != 0 || p.Avg60(time.Minute) != 0 || p.Avg300(time.Minute) != 0 {
		t.Fatal("fresh PSI should be zero")
	}
	if p.Total() != 0 {
		t.Fatal("fresh PSI total should be zero")
	}
}

func TestPSIStallRaisesAverages(t *testing.T) {
	p := NewPSI(0)
	p.AddStall(10*time.Second, 2*time.Second)
	a10 := p.Avg10(10 * time.Second)
	a60 := p.Avg60(10 * time.Second)
	if a10 <= 0 || a60 <= 0 {
		t.Fatal("stall did not raise averages")
	}
	// The short window reacts more strongly than the long one.
	if a10 <= a60 {
		t.Fatalf("avg10 %v should exceed avg60 %v after a burst", a10, a60)
	}
	if p.Total() != 2*time.Second {
		t.Fatalf("total = %v", p.Total())
	}
}

func TestPSIDecays(t *testing.T) {
	p := NewPSI(0)
	p.AddStall(0, time.Second)
	early := p.Avg10(time.Second)
	late := p.Avg10(time.Minute)
	if late >= early {
		t.Fatalf("avg10 did not decay: %v -> %v", early, late)
	}
	// After 10 half-lives it is essentially gone.
	if p.Avg10(2*time.Minute) > early/100 {
		t.Fatal("avg10 decays too slowly")
	}
	// The 300 s window holds on longer.
	if p.Avg300(time.Minute) <= p.Avg10(time.Minute) {
		t.Fatal("long window should outlast short window")
	}
}

func TestPSISustainedStallApproachesFraction(t *testing.T) {
	// Stalling 50% of every second converges near 0.5 on the 10 s window
	// (geometric series of per-second contributions).
	p := NewPSI(0)
	for i := 1; i <= 200; i++ {
		p.AddStall(time.Duration(i)*time.Second, 500*time.Millisecond)
	}
	got := p.Avg10(200 * time.Second)
	if got < 0.4 || got > 0.9 {
		t.Fatalf("sustained 50%% stall: avg10 = %v, want ~0.5-0.7", got)
	}
}

func TestPSINegativeStallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative stall did not panic")
		}
	}()
	NewPSI(0).AddStall(0, -time.Second)
}

func TestHierarchyPropagates(t *testing.T) {
	node := New("node", 0)
	a := node.NewChild("a", 0)
	b := node.NewChild("b", 0)
	if a.Parent() != node || node.Parent() != nil {
		t.Fatal("parent links wrong")
	}
	a.Charge(0, 100)
	b.Charge(0, 50)
	if node.LocalBytes() != 150 {
		t.Fatalf("node local = %d, want 150", node.LocalBytes())
	}
	a.Offload(time.Second, 40)
	if node.LocalBytes() != 110 || node.RemoteBytes() != 40 {
		t.Fatalf("node after offload = %d/%d", node.LocalBytes(), node.RemoteBytes())
	}
	if node.OffloadedBytes() != 40 {
		t.Fatalf("node offloaded = %d", node.OffloadedBytes())
	}
	a.Recall(2*time.Second, 40)
	b.Uncharge(2*time.Second, 50)
	a.Uncharge(2*time.Second, 100)
	if node.LocalBytes() != 0 || node.RemoteBytes() != 0 {
		t.Fatalf("node not drained: %d/%d", node.LocalBytes(), node.RemoteBytes())
	}
	// Siblings stay independent.
	if b.OffloadedBytes() != 0 {
		t.Fatal("sibling accounting leaked")
	}
}

func TestHierarchyTimeWeightedAverage(t *testing.T) {
	node := New("node", 0)
	c := node.NewChild("c", 0)
	c.Charge(0, 100)
	c.Uncharge(10*time.Second, 100)
	if got := node.AvgLocalBytes(20 * time.Second); math.Abs(got-50) > 1e-9 {
		t.Fatalf("node avg = %v, want 50", got)
	}
}
