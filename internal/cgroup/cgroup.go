// Package cgroup provides per-container memory accounting analogous to the
// Linux memory control group the paper reads container footprints from
// (§3.3). Each Group mirrors a container's local and remote residency over
// virtual time and exposes the time-weighted statistics the evaluation
// reports (average local memory usage, peaks, offload/recall volumes).
package cgroup

import (
	"github.com/faasmem/faasmem/internal/metrics"
	"github.com/faasmem/faasmem/internal/simtime"
)

// Group accounts one container's memory over time. Groups form a hierarchy
// as in the kernel: every charge/uncharge/offload/recall propagates to the
// parent, so a node-level group aggregates its containers for free.
type Group struct {
	name   string
	parent *Group
	local  *metrics.TimeWeighted
	remote *metrics.TimeWeighted

	offloadedBytes int64 // cumulative local → remote traffic
	recalledBytes  int64 // cumulative remote → local traffic
}

// New creates a group named name, starting accounting at now with zero
// residency.
func New(name string, now simtime.Time) *Group {
	return &Group{
		name:   name,
		local:  metrics.NewTimeWeighted(now, 0),
		remote: metrics.NewTimeWeighted(now, 0),
	}
}

// NewChild creates a group nested under g: all of the child's accounting
// also lands in g (and transitively in g's ancestors).
func (g *Group) NewChild(name string, now simtime.Time) *Group {
	child := New(name, now)
	child.parent = g
	return child
}

// Name returns the group's identifier.
func (g *Group) Name() string { return g.name }

// Parent returns the enclosing group, or nil at the root.
func (g *Group) Parent() *Group { return g.parent }

// Charge adds bytes of local residency (allocation) at time now.
func (g *Group) Charge(now simtime.Time, bytes int64) {
	for p := g; p != nil; p = p.parent {
		p.local.Add(now, float64(bytes))
	}
}

// Uncharge removes bytes of local residency (free) at time now.
func (g *Group) Uncharge(now simtime.Time, bytes int64) {
	for p := g; p != nil; p = p.parent {
		p.local.Add(now, -float64(bytes))
	}
}

// Offload moves bytes from local to remote residency at time now.
func (g *Group) Offload(now simtime.Time, bytes int64) {
	for p := g; p != nil; p = p.parent {
		p.local.Add(now, -float64(bytes))
		p.remote.Add(now, float64(bytes))
		p.offloadedBytes += bytes
	}
}

// Recall moves bytes from remote back to local residency at time now.
func (g *Group) Recall(now simtime.Time, bytes int64) {
	for p := g; p != nil; p = p.parent {
		p.remote.Add(now, -float64(bytes))
		p.local.Add(now, float64(bytes))
		p.recalledBytes += bytes
	}
}

// DropRemote releases remote residency without recalling it (container
// recycled while pages were offloaded).
func (g *Group) DropRemote(now simtime.Time, bytes int64) {
	for p := g; p != nil; p = p.parent {
		p.remote.Add(now, -float64(bytes))
	}
}

// LocalBytes returns current local residency.
func (g *Group) LocalBytes() int64 { return int64(g.local.Current()) }

// RemoteBytes returns current remote residency.
func (g *Group) RemoteBytes() int64 { return int64(g.remote.Current()) }

// AvgLocalBytes returns the time-weighted average local residency over the
// group's lifetime up to now.
func (g *Group) AvgLocalBytes(now simtime.Time) float64 { return g.local.Average(now) }

// AvgRemoteBytes returns the time-weighted average remote residency.
func (g *Group) AvgRemoteBytes(now simtime.Time) float64 { return g.remote.Average(now) }

// PeakLocalBytes returns the maximum local residency observed.
func (g *Group) PeakLocalBytes() int64 { return int64(g.local.Peak()) }

// OffloadedBytes returns cumulative bytes moved local → remote.
func (g *Group) OffloadedBytes() int64 { return g.offloadedBytes }

// RecalledBytes returns cumulative bytes moved remote → local.
func (g *Group) RecalledBytes() int64 { return g.recalledBytes }
