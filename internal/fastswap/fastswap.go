// Package fastswap models the swap-path bookkeeping of the paper's ported
// Fastswap: offloaded pages occupy slots in a fixed-size swapfile (the
// artifact provisions 32 GB), and demand faults may read ahead neighbouring
// slots the way the kernel's swap readahead (vm.page-cluster) does.
//
// The remote pool (rmem) models the wire; this package models the kernel
// side: a finite slot space that can fill up independently of pool capacity,
// and the virtually-contiguous prefetch window that turns one fault into a
// cluster read. Readahead is the hook for the §10 "prefetching remote
// memory" (Leap) extension.
package fastswap

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/telemetry"
)

// Config sizes a node's swap device.
type Config struct {
	// Slots is the swapfile capacity in pages. The artifact's setup uses a
	// 32 GiB swapfile = 8 Mi 4 KiB slots. Zero means unlimited.
	Slots int
	// ReadaheadPages is how many virtually-contiguous remote neighbours one
	// fault pulls in alongside the faulting page (vm.page-cluster=3 reads
	// 8 pages). Zero disables readahead.
	ReadaheadPages int
	// FallbackReadLatency, when positive, models a write-through local copy
	// of every offloaded page (dual swap backends: RDMA primary, disk
	// secondary). A fetch that times out against the pool can then be
	// served locally at this per-page read latency instead of forcing a
	// cold re-init. Zero disables the fallback.
	FallbackReadLatency time.Duration
}

// Device is one node's swap device. The zero value is not usable; construct
// with NewDevice.
type Device struct {
	cfg  Config
	used int

	clusterReads  int64             // cluster reads served (faults that pulled readahead)
	clusterPages  int64             // pages prefetched by cluster reads
	fallbackReads int64             // timed-out fetches served from the local copy
	fallbackPages int64             // pages read via the local fallback
	slotsUsed     *telemetry.Metric // gauge, nil no-op until Instrument
	truncations   *telemetry.Metric
	clusterReadsM *telemetry.Metric
	clusterPagesM *telemetry.Metric
	fallbackPgsM  *telemetry.Metric
}

// NewDevice creates a swap device.
func NewDevice(cfg Config) *Device {
	if cfg.Slots < 0 {
		panic(fmt.Sprintf("fastswap: negative slot count %d", cfg.Slots))
	}
	if cfg.ReadaheadPages < 0 {
		cfg.ReadaheadPages = 0
	}
	return &Device{cfg: cfg}
}

// Config returns the effective configuration.
func (d *Device) Config() Config { return d.cfg }

// Instrument attaches a metric registry; a nil registry leaves the device's
// metrics as no-ops.
func (d *Device) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	d.slotsUsed = reg.Gauge("faasmem_swap_slots_used", "occupied swapfile slots")
	d.truncations = reg.Counter("faasmem_swap_full_truncations_total", "slot allocations truncated by a full swapfile")
	d.clusterReadsM = reg.Counter("faasmem_swap_cluster_reads_total", "demand faults that pulled a readahead cluster")
	d.clusterPagesM = reg.Counter("faasmem_swap_cluster_pages_total", "pages prefetched by readahead cluster reads")
	d.fallbackPgsM = reg.Counter("faasmem_swap_fallback_pages_total", "pages served from the local write-through copy after a pool fetch timeout")
}

// Used returns occupied slots.
func (d *Device) Used() int { return d.used }

// Free returns remaining slots; -1 means unlimited.
func (d *Device) Free() int {
	if d.cfg.Slots == 0 {
		return -1
	}
	return d.cfg.Slots - d.used
}

// Allocate claims up to n slots and returns how many were granted. Swap-out
// beyond the grant must stay in local memory, exactly as a full swapfile
// fails page-out in the kernel.
func (d *Device) Allocate(n int) int {
	if n < 0 {
		panic("fastswap: negative allocation")
	}
	if d.cfg.Slots == 0 {
		d.used += n
		d.slotsUsed.Set(int64(d.used))
		return n
	}
	free := d.cfg.Slots - d.used
	if n > free {
		n = free
		d.truncations.Inc()
	}
	if n < 0 {
		n = 0
	}
	d.used += n
	d.slotsUsed.Set(int64(d.used))
	return n
}

// Release returns n slots to the freelist (swap-in or container teardown).
func (d *Device) Release(n int) {
	if n < 0 {
		panic("fastswap: negative release")
	}
	d.used -= n
	if d.used < 0 {
		d.used = 0
	}
	d.slotsUsed.Set(int64(d.used))
}

// Readahead reports the prefetch window for one fault (0 = disabled).
func (d *Device) Readahead() int { return d.cfg.ReadaheadPages }

// NoteClusterRead records that a request's fault batch pulled pages pages
// of readahead alongside the demand fetches — the swap-path side of the
// attribution story, distinguishing "one fault, one page" stalls from
// cluster reads that amortize the wire round-trip.
func (d *Device) NoteClusterRead(pages int) {
	if pages <= 0 {
		return
	}
	d.clusterReads++
	d.clusterPages += int64(pages)
	d.clusterReadsM.Inc()
	d.clusterPagesM.Add(int64(pages))
}

// ClusterReads returns how many fault batches pulled readahead, and how
// many pages rode along in total.
func (d *Device) ClusterReads() (reads, pages int64) {
	return d.clusterReads, d.clusterPages
}

// FallbackEnabled reports whether the device keeps a write-through local
// copy a timed-out pool fetch can fall back to.
func (d *Device) FallbackEnabled() bool { return d.cfg.FallbackReadLatency > 0 }

// FallbackRead serves pages from the local write-through copy after a pool
// fetch timeout and returns the read latency the request observes. Callers
// must release the pool-side ledger separately (rmem.RecallLocal).
func (d *Device) FallbackRead(pages int) time.Duration {
	if pages <= 0 || !d.FallbackEnabled() {
		return 0
	}
	d.fallbackReads++
	d.fallbackPages += int64(pages)
	d.fallbackPgsM.Add(int64(pages))
	return time.Duration(pages) * d.cfg.FallbackReadLatency
}

// FallbackReads returns how many timed-out fetches were served locally, and
// the pages they covered.
func (d *Device) FallbackReads() (reads, pages int64) {
	return d.fallbackReads, d.fallbackPages
}
