package fastswap

import "testing"

func TestAllocateWithinCapacity(t *testing.T) {
	d := NewDevice(Config{Slots: 10})
	if got := d.Allocate(4); got != 4 {
		t.Fatalf("Allocate(4) = %d", got)
	}
	if d.Used() != 4 || d.Free() != 6 {
		t.Fatalf("used/free = %d/%d", d.Used(), d.Free())
	}
}

func TestAllocateTruncatesAtCapacity(t *testing.T) {
	d := NewDevice(Config{Slots: 10})
	d.Allocate(8)
	if got := d.Allocate(5); got != 2 {
		t.Fatalf("over-allocation granted %d, want 2", got)
	}
	if got := d.Allocate(1); got != 0 {
		t.Fatalf("full device granted %d", got)
	}
}

func TestReleaseReturnsSlots(t *testing.T) {
	d := NewDevice(Config{Slots: 10})
	d.Allocate(10)
	d.Release(4)
	if d.Free() != 4 {
		t.Fatalf("free after release = %d", d.Free())
	}
	// Over-release clamps rather than going negative.
	d.Release(100)
	if d.Used() != 0 {
		t.Fatalf("used after over-release = %d", d.Used())
	}
}

func TestUnlimitedDevice(t *testing.T) {
	d := NewDevice(Config{})
	if got := d.Allocate(1 << 20); got != 1<<20 {
		t.Fatalf("unlimited allocate = %d", got)
	}
	if d.Free() != -1 {
		t.Fatalf("unlimited free = %d, want -1 sentinel", d.Free())
	}
}

func TestReadaheadConfig(t *testing.T) {
	if NewDevice(Config{ReadaheadPages: 8}).Readahead() != 8 {
		t.Error("readahead not configured")
	}
	if NewDevice(Config{ReadaheadPages: -1}).Readahead() != 0 {
		t.Error("negative readahead should clamp to 0")
	}
}

func TestNegativePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"slots":    func() { NewDevice(Config{Slots: -1}) },
		"allocate": func() { NewDevice(Config{}).Allocate(-1) },
		"release":  func() { NewDevice(Config{}).Release(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative value did not panic", name)
				}
			}()
			fn()
		}()
	}
}
