package sharedmem

import (
	"errors"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
)

const pageSize = 4096

func newManager(t *testing.T, node *memnode.Config) (*Manager, *rmem.Pool) {
	t.Helper()
	pool := rmem.NewPool(rmem.Config{Node: node})
	return New(Config{PageSize: pageSize, Pool: pool}), pool
}

func TestCreateMapReleaseLifecycle(t *testing.T) {
	m, pool := newManager(t, &memnode.Config{PageSize: pageSize})
	now := simtime.Time(0)

	r, res, err := m.Create(now, "stage0-out", "wf", 64*pageSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if res.Resident != 64 || res.Shortfall != 0 {
		t.Fatalf("resident=%d shortfall=%d, want 64/0", res.Resident, res.Shortfall)
	}
	if got := pool.SharedPages(Owner("stage0-out"), "wf"); got != 64 {
		t.Fatalf("node holds %d shared pages, want 64", got)
	}
	if pool.Used() != 64*pageSize {
		t.Fatalf("pool used %d, want %d", pool.Used(), 64*pageSize)
	}

	// Two consumers map the same copy: occupancy must not grow.
	for i := 0; i < 2; i++ {
		stall, err := m.Map(res.Done, "stage0-out")
		if err != nil {
			t.Fatalf("Map %d: %v", i, err)
		}
		if stall.Total <= 0 {
			t.Fatalf("Map %d: zero stall for 64-page transfer", i)
		}
	}
	if pool.Used() != 64*pageSize {
		t.Fatalf("pool used %d after maps, want unchanged %d", pool.Used(), 64*pageSize)
	}
	if r.Refs() != 2 {
		t.Fatalf("refs=%d, want 2", r.Refs())
	}

	// Producer releases while consumers are live: bytes drain on last unmap.
	if err := m.Release(res.Done, "stage0-out"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if m.Region("stage0-out") == nil {
		t.Fatal("region freed with live mappings")
	}
	if _, err := m.Map(res.Done, "stage0-out"); !errors.Is(err, ErrReleased) {
		t.Fatalf("Map after release: err=%v, want ErrReleased", err)
	}
	if err := m.Unmap(res.Done, "stage0-out"); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if err := m.Unmap(res.Done, "stage0-out"); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if !m.Drained() {
		t.Fatal("manager not drained after release + last unmap")
	}
	if pool.Used() != 0 {
		t.Fatalf("pool used %d after drain, want 0", pool.Used())
	}
	if err := pool.Node().CheckInvariants(); err != nil {
		t.Fatalf("memnode invariants: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("manager invariants: %v", err)
	}
	st := m.Stats()
	if st.Created != 1 || st.Freed != 1 || st.Maps != 2 || st.Unmaps != 2 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteBreakChargesWriterTenant(t *testing.T) {
	m, pool := newManager(t, &memnode.Config{PageSize: pageSize, DisableDedup: true})
	now := simtime.Time(0)

	_, res, err := m.Create(now, "cache", "producer", 32*pageSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	now = res.Done
	if _, err := m.Map(now, "cache"); err != nil {
		t.Fatalf("Map: %v", err)
	}
	br, err := m.WriteBreak(now, "cache", "writer", 8*pageSize)
	if err != nil {
		t.Fatalf("WriteBreak: %v", err)
	}
	if br.Private != 8 || br.Shortfall != 0 {
		t.Fatalf("private=%d shortfall=%d, want 8/0", br.Private, br.Shortfall)
	}
	if br.Stall.Total <= 0 {
		t.Fatal("CoW break with zero stall")
	}
	node := pool.Node()
	if got := node.TenantLogicalBytes("writer"); got != 8*pageSize {
		t.Fatalf("writer tenant charged %d, want %d", got, 8*pageSize)
	}
	if got := node.TenantLogicalBytes("producer"); got != 32*pageSize {
		t.Fatalf("producer tenant charged %d, want %d", got, 32*pageSize)
	}
	// Region copy intact; pool occupancy grew by exactly the private pages.
	if got := pool.SharedPages(Owner("cache"), "producer"); got != 32 {
		t.Fatalf("region pages %d after CoW, want 32", got)
	}
	if pool.Used() != 40*pageSize {
		t.Fatalf("pool used %d, want %d", pool.Used(), 40*pageSize)
	}

	// Drain: the CoW clone goes with the region.
	if err := m.Unmap(now, "cache"); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if err := m.Release(now, "cache"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if pool.Used() != 0 || !m.Drained() {
		t.Fatalf("drain left used=%d drained=%v", pool.Used(), m.Drained())
	}
	if got := node.TenantLogicalBytes("writer"); got != 0 {
		t.Fatalf("writer tenant still charged %d after drain", got)
	}
	if err := node.CheckInvariants(); err != nil {
		t.Fatalf("memnode invariants: %v", err)
	}
}

func TestCreateShortfallUnderQuota(t *testing.T) {
	m, _ := newManager(t, &memnode.Config{
		PageSize:           pageSize,
		TenantQuotaBytes:   16 * pageSize,
		DisableDedup:       true,
		DisableCompression: true,
	})
	_, res, err := m.Create(0, "big", "t0", 64*pageSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if res.Resident != 16 || res.Shortfall != 48 {
		t.Fatalf("resident=%d shortfall=%d, want 16/48", res.Resident, res.Shortfall)
	}
	if m.Stats().ShortfallPages != 48 {
		t.Fatalf("shortfall pages %d, want 48", m.Stats().ShortfallPages)
	}
}

func TestMapCostScalesWithTiering(t *testing.T) {
	// Force the resident pages into the spill tier: a later map must pay
	// the tier surcharge on top of the wire time.
	node := &memnode.Config{
		PageSize:           pageSize,
		DRAMBytes:          8 * pageSize,
		DisableCompression: true,
		DisableDedup:       true,
		SpillLatency:       200 * time.Microsecond,
	}
	m, pool := newManager(t, node)
	_, res, err := m.Create(0, "cold", "t0", 32*pageSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if res.Resident != 32 {
		t.Fatalf("resident=%d, want 32 (spill is unbounded)", res.Resident)
	}
	stall, err := m.Map(res.Done, "cold")
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if stall.Tier <= 0 {
		t.Fatalf("spilled region mapped with zero tier surcharge: %+v", stall)
	}
	_ = pool
}

func TestErrorsAndPanics(t *testing.T) {
	m, _ := newManager(t, nil)
	if _, err := m.Map(0, "nope"); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("Map unknown: %v", err)
	}
	if err := m.Unmap(0, "nope"); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("Unmap unknown: %v", err)
	}
	if err := m.Release(0, "nope"); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("Release unknown: %v", err)
	}
	if _, _, err := m.Create(0, "dup", "t", pageSize); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, _, err := m.Create(0, "dup", "t", pageSize); !errors.Is(err, ErrDuplicateRegion) {
		t.Fatalf("Create dup: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Unmap underflow did not panic")
			}
		}()
		m.Unmap(0, "dup")
	}()
}

func TestDegradedPoolFailsMap(t *testing.T) {
	// A pool with no node still works; health failures are exercised via
	// the fault-injection plans in the experiment tests. Here: the no-node
	// pool path accepts everything and maps price pure wire time.
	pool := rmem.NewPool(rmem.Config{})
	m := New(Config{PageSize: pageSize, Pool: pool})
	_, res, err := m.Create(0, "r", "t", 16*pageSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	stall, err := m.Map(res.Done, "r")
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if stall.Tier != 0 {
		t.Fatalf("no-node map has tier surcharge %v", stall.Tier)
	}
	if stall.Total <= 0 {
		t.Fatal("no-node map has zero cost")
	}
}
