// Package sharedmem gives the simulated platform named, refcounted
// shared-state regions that live in the disaggregated pool: a producer
// offloads a region's pages as described ClassShared holdings on the pool's
// memory node (charged to the producer's tenant quota, compressed and
// spilled through the same class-aware tiers as everything else), and any
// number of consumers map the region read-shared, paying link transfer and
// tier surcharge but never duplicating the resident copy. Writing into a
// mapped region breaks the sharing copy-on-write: the dirty pages are
// fetched and re-offloaded as a private copy charged to the writer's
// tenant. This is the substrate under workflow DAG invocations — stage N
// produces its output into a region, stages N+1..k map it instead of
// re-initializing the bytes from scratch.
package sharedmem

import (
	"errors"
	"fmt"

	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
)

// Typed errors for callers that branch on failure modes.
var (
	// ErrUnknownRegion is returned for operations on a name never created
	// (or already fully freed).
	ErrUnknownRegion = errors.New("sharedmem: unknown region")
	// ErrDuplicateRegion is returned when Create reuses a live name.
	ErrDuplicateRegion = errors.New("sharedmem: region already exists")
	// ErrReleased is returned when a new mapping is requested after the
	// region was released; the bytes are draining, not available.
	ErrReleased = errors.New("sharedmem: region released")
)

// Config parameterizes a Manager.
type Config struct {
	// PageSize is the region page granularity in bytes.
	PageSize int64
	// Pool is the disaggregated pool regions live in. Required.
	Pool *rmem.Pool
}

// Manager owns the namespace of shared regions on one pool.
type Manager struct {
	cfg     Config
	regions map[string]*Region
	stats   Stats
}

// Region is one named shared-state region. All fields are managed by the
// Manager; read them through the accessor methods.
type Region struct {
	name   string
	tenant string // producer tenant: quota owner of the resident copy
	pages  int    // requested size

	resident  int  // pages the pool admitted (≤ pages under quota pressure)
	refs      int  // active mappings
	released  bool // producer released; freed once refs drain to zero
	cowSeq    int
	cowOwners []cowCopy
}

// cowCopy records one private copy-on-write clone charged to a writer.
type cowCopy struct {
	owner  string
	tenant string
	bytes  int64
}

// Stats counts manager activity since construction.
type Stats struct {
	// Created counts successful Create calls; Freed counts regions whose
	// last reference drained after Release.
	Created, Freed int
	// Maps counts successful Map calls; Unmaps the matching releases.
	Maps, Unmaps int
	// CowBreaks counts WriteBreak calls; CowPages the private pages they
	// materialized (charged to the writers' tenants).
	CowBreaks, CowPages int
	// ShortfallPages counts requested-but-rejected pages across Create and
	// WriteBreak (quota or capacity); callers price them as local re-init.
	ShortfallPages int
	// Active is the number of live regions right now.
	Active int
}

// New builds a Manager. Panics without a pool: the package models
// pool-backed state, there is no local-only mode.
func New(cfg Config) *Manager {
	if cfg.Pool == nil {
		panic("sharedmem: nil pool")
	}
	if cfg.PageSize <= 0 {
		panic("sharedmem: non-positive page size")
	}
	return &Manager{cfg: cfg, regions: make(map[string]*Region)}
}

// Owner returns the synthetic memnode owner key a region's pages live
// under. Exposed so telemetry and tests can find the holdings.
func Owner(name string) string { return "region:" + name }

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Tenant returns the producer tenant charged for the resident copy.
func (r *Region) Tenant() string { return r.tenant }

// Pages returns the requested region size in pages.
func (r *Region) Pages() int { return r.pages }

// Resident returns how many pages the pool admitted at create time.
func (r *Region) Resident() int { return r.resident }

// Refs returns the number of active mappings.
func (r *Region) Refs() int { return r.refs }

// Released reports whether the producer released the region.
func (r *Region) Released() bool { return r.released }

// CreateResult describes how a Create landed.
type CreateResult struct {
	// Done is when the offload transfer completes (pool link FIFO).
	Done simtime.Time
	// Resident is the admitted page count; Shortfall the rejected
	// remainder the producer must keep (and consumers re-derive) locally.
	Resident, Shortfall int
}

// Create offloads a new region's pages into the pool under the producer
// tenant's quota. bytes is rounded up to whole pages. The pool may admit
// fewer pages than requested (tenant quota, capacity): the shortfall is
// reported, not retried — the caller prices re-derivation for the missing
// tail. Fails while the pool is unhealthy.
func (m *Manager) Create(now simtime.Time, name, tenant string, bytes int64) (*Region, CreateResult, error) {
	if r := m.regions[name]; r != nil {
		return nil, CreateResult{}, fmt.Errorf("%w: %s", ErrDuplicateRegion, name)
	}
	if bytes < 0 {
		panic("sharedmem: negative region size")
	}
	pages := int((bytes + m.cfg.PageSize - 1) / m.cfg.PageSize)
	r := &Region{name: name, tenant: tenant, pages: pages}
	if pages > 0 {
		var counts rmem.ClassCounts
		counts[memnode.ClassShared] = pages
		acc, done, err := m.cfg.Pool.OffloadDescribed(now, Owner(name), tenant, counts, m.cfg.PageSize)
		if err != nil {
			return nil, CreateResult{}, err
		}
		r.resident = acc[memnode.ClassShared]
		m.regions[name] = r
		m.stats.Created++
		m.stats.Active++
		m.stats.ShortfallPages += pages - r.resident
		return r, CreateResult{Done: done, Resident: r.resident, Shortfall: pages - r.resident}, nil
	}
	m.regions[name] = r
	m.stats.Created++
	m.stats.Active++
	return r, CreateResult{Done: now}, nil
}

// Map establishes a read-shared mapping: the consumer pays one pipelined
// transfer of the resident pages (plus tier surcharge for any compressed or
// spilled fraction) and holds a reference until Unmap. The resident copy is
// not duplicated. Fails while the pool is unhealthy — the caller replays
// the producer or re-derives locally.
func (m *Manager) Map(now simtime.Time, name string) (rmem.FaultStall, error) {
	r := m.regions[name]
	if r == nil {
		return rmem.FaultStall{}, fmt.Errorf("%w: %s", ErrUnknownRegion, name)
	}
	if r.released {
		return rmem.FaultStall{}, fmt.Errorf("%w: %s", ErrReleased, name)
	}
	stall, err := m.cfg.Pool.ShareRead(now, Owner(name), r.tenant, r.resident, m.cfg.PageSize)
	if err != nil {
		return rmem.FaultStall{}, err
	}
	r.refs++
	m.stats.Maps++
	return stall, nil
}

// Unmap drops one mapping reference. The region's bytes are freed when the
// producer has released it and the last reference drains. Panics on
// refcount underflow — that is a scheduling bug, not an input error.
func (m *Manager) Unmap(now simtime.Time, name string) error {
	r := m.regions[name]
	if r == nil {
		return fmt.Errorf("%w: %s", ErrUnknownRegion, name)
	}
	if r.refs <= 0 {
		panic("sharedmem: unmap without mapping: " + name)
	}
	r.refs--
	m.stats.Unmaps++
	if r.released && r.refs == 0 {
		m.free(now, r)
	}
	return nil
}

// BreakResult describes a copy-on-write unshare.
type BreakResult struct {
	// Stall is the writer's critical-path cost: fetching the shared copy
	// of the dirty pages plus committing the private copy.
	Stall rmem.FaultStall
	// Private is how many private pages materialized under the writer's
	// tenant quota; Shortfall the pages the pool refused (kept local).
	Private, Shortfall int
}

// WriteBreak models a mapped consumer writing into the region: sharing
// breaks copy-on-write for the dirty pages. The writer fetches the shared
// copy (a ShareRead of the dirty subset) and materializes a private copy as
// a fresh ClassShared holding charged to the writer's tenant — the region's
// resident copy and the other consumers' mappings are untouched. The
// private copy lives until the writer's mapping unmaps and the region
// frees. Fails while the pool is unhealthy.
func (m *Manager) WriteBreak(now simtime.Time, name, writer string, dirtyBytes int64) (BreakResult, error) {
	r := m.regions[name]
	if r == nil {
		return BreakResult{}, fmt.Errorf("%w: %s", ErrUnknownRegion, name)
	}
	if r.refs <= 0 {
		panic("sharedmem: write break without mapping: " + name)
	}
	if dirtyBytes < 0 {
		panic("sharedmem: negative dirty bytes")
	}
	dirty := int((dirtyBytes + m.cfg.PageSize - 1) / m.cfg.PageSize)
	if dirty > r.resident {
		dirty = r.resident
	}
	if dirty == 0 {
		return BreakResult{}, nil
	}
	stall, err := m.cfg.Pool.ShareRead(now, Owner(name), r.tenant, dirty, m.cfg.PageSize)
	if err != nil {
		return BreakResult{}, err
	}
	r.cowSeq++
	cow := cowCopy{owner: fmt.Sprintf("cow:%s#%d:%s", name, r.cowSeq, writer), tenant: writer}
	var counts rmem.ClassCounts
	counts[memnode.ClassShared] = dirty
	acc, done, err := m.cfg.Pool.OffloadDescribed(now, cow.owner, writer, counts, m.cfg.PageSize)
	if err != nil {
		return BreakResult{}, err
	}
	private := acc[memnode.ClassShared]
	cow.bytes = int64(private) * m.cfg.PageSize
	if private > 0 {
		r.cowOwners = append(r.cowOwners, cow)
	}
	if done > now {
		stall.Total += done - now
	}
	m.stats.CowBreaks++
	m.stats.CowPages += private
	m.stats.ShortfallPages += dirty - private
	return BreakResult{Stall: stall, Private: private, Shortfall: dirty - private}, nil
}

// Release marks the region dead from the producer's side. The bytes drain
// immediately when no mapping is live, otherwise when the last Unmap
// lands. Releasing twice is a no-op.
func (m *Manager) Release(now simtime.Time, name string) error {
	r := m.regions[name]
	if r == nil {
		return fmt.Errorf("%w: %s", ErrUnknownRegion, name)
	}
	if r.released {
		return nil
	}
	r.released = true
	if r.refs == 0 {
		m.free(now, r)
	}
	return nil
}

// free drops the region's resident copy and every private CoW clone, then
// forgets the name.
func (m *Manager) free(now simtime.Time, r *Region) {
	m.cfg.Pool.DiscardOwner(now, Owner(r.name), r.tenant, int64(r.resident)*m.cfg.PageSize)
	for _, cow := range r.cowOwners {
		m.cfg.Pool.DiscardOwner(now, cow.owner, cow.tenant, cow.bytes)
	}
	delete(m.regions, r.name)
	m.stats.Freed++
	m.stats.Active--
}

// Region returns the live region for name, or nil.
func (m *Manager) Region(name string) *Region { return m.regions[name] }

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats { return m.stats }

// CheckInvariants cross-checks the manager's books: refcounts are
// non-negative, Active matches the live map, and fully-drained regions are
// forgotten. Returns the first violation.
func (m *Manager) CheckInvariants() error {
	if m.stats.Active != len(m.regions) {
		return fmt.Errorf("sharedmem: active %d != live regions %d", m.stats.Active, len(m.regions))
	}
	for name, r := range m.regions {
		if r.refs < 0 {
			return fmt.Errorf("sharedmem: region %s negative refcount %d", name, r.refs)
		}
		if r.released && r.refs == 0 {
			return fmt.Errorf("sharedmem: region %s released and drained but not freed", name)
		}
		if r.resident > r.pages {
			return fmt.Errorf("sharedmem: region %s resident %d > requested %d", name, r.resident, r.pages)
		}
	}
	if m.stats.Maps < m.stats.Unmaps {
		return fmt.Errorf("sharedmem: unmaps %d exceed maps %d", m.stats.Unmaps, m.stats.Maps)
	}
	return nil
}

// Drained reports whether every region has been freed (end-of-run check:
// region refcounts reached zero and the namespace is empty).
func (m *Manager) Drained() bool { return len(m.regions) == 0 }
