package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// KeepAliveRow compares one (keep-alive strategy, offload policy) cell.
type KeepAliveRow struct {
	Strategy string // "fixed-10m" | "adaptive"
	Policy   PolicyKind
	// AvgLocalMB is the average node-local memory.
	AvgLocalMB float64
	// ColdStartRatio across all requests.
	ColdStartRatio float64
	// P95 end-to-end latency in seconds.
	P95 float64
}

// KeepAliveStrategiesOptions sizes the study.
type KeepAliveStrategiesOptions struct {
	Duration time.Duration
	Seed     int64
}

// KeepAliveStrategies quantifies the §10 composition claim: FaaSMem's
// offloading is orthogonal to smarter keep-alive policies (the
// hybrid-histogram family), and combining both stacks their savings —
// the adaptive timeout recycles containers that will not be reused while
// FaaSMem shrinks the ones that stay.
func KeepAliveStrategies(opt KeepAliveStrategiesOptions) []KeepAliveRow {
	if opt.Duration <= 0 {
		opt.Duration = 30 * time.Minute
	}
	prof := workload.Web()
	fn := trace.GenerateFunction("web", opt.Duration, 10*time.Second, true, opt.Seed)

	run := func(adaptive bool, kind PolicyKind) KeepAliveRow {
		var pol policy.Policy
		var fm *core.FaaSMem
		if kind == Baseline {
			pol = policy.NoOffload{}
		} else {
			fm = core.New(core.Config{})
			pol = fm
		}
		e := simtime.NewEngine()
		p := faas.New(e, faas.Config{
			KeepAliveTimeout:  10 * time.Minute,
			AdaptiveKeepAlive: adaptive,
			Seed:              opt.Seed,
		}, pol)
		f := p.Register("web", prof)
		p.ScheduleInvocations("web", fn.Invocations)
		if fm != nil {
			ka := trace.SimulateKeepAlive(fn.Invocations, prof.ExecTime, 10*time.Minute)
			fm.SeedReuseIntervals("web", ka.ReusedIntervals)
		}
		e.RunUntil(opt.Duration + 10*time.Minute)

		strategy := "fixed-10m"
		if adaptive {
			strategy = "adaptive"
		}
		row := KeepAliveRow{
			Strategy:   strategy,
			Policy:     kind,
			AvgLocalMB: p.NodeLocalAvg() / 1e6,
			P95:        f.Stats().Latency.P95(),
		}
		if f.Stats().Requests > 0 {
			row.ColdStartRatio = float64(f.Stats().ColdStarts) / float64(f.Stats().Requests)
		}
		return row
	}

	cells := []struct {
		adaptive bool
		kind     PolicyKind
	}{
		{false, Baseline},
		{false, FaaSMem},
		{true, Baseline},
		{true, FaaSMem},
	}
	rows := make([]KeepAliveRow, len(cells))
	runGrid(len(cells), func(i int) { rows[i] = run(cells[i].adaptive, cells[i].kind) })
	return rows
}

// PrintKeepAliveStrategies renders the composition study.
func PrintKeepAliveStrategies(w io.Writer, rows []KeepAliveRow) {
	fmt.Fprintln(w, "Extension (§10): composing FaaSMem with an adaptive keep-alive policy (Web)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Strategy,
			string(r.Policy),
			fmt.Sprintf("%.0f MB", r.AvgLocalMB),
			fmt.Sprintf("%.2f%%", r.ColdStartRatio*100),
			fmt.Sprintf("%.3fs", r.P95),
		}
	}
	writeTable(w, []string{"keep-alive", "policy", "avg local", "cold-start ratio", "P95"}, table)
}
