package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/fastswap"
	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/metrics"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// ResilienceRow is one fault-intensity cell of the ext-resilience sweep.
type ResilienceRow struct {
	// Intensity scales every fault window's duration and severity; 0 is the
	// fault-free baseline (no plan attached at all).
	Intensity float64 `json:"intensity"`
	// UnhealthyPct is the share of the run the remote path was unusable
	// (link flap or pool-node crash), from the generated plan.
	UnhealthyPct float64 `json:"unhealthy_pct"`
	// Submitted counts requests routed into the rack; after the drain every
	// one lands in exactly one completion class below.
	Submitted int `json:"submitted"`
	// Completed are requests that finished without fault recovery.
	Completed int `json:"completed"`
	// Rescheduled are requests diverted away from containers stranded
	// behind the unhealthy pool, then completed elsewhere.
	Rescheduled int `json:"rescheduled"`
	// Failed are requests whose page fetch timed out; they completed only
	// through recovery (local-swap fallback or a cold re-init).
	Failed int `json:"failed"`
	// ColdStartRatio and P99Sec are the headline degradation metrics.
	ColdStartRatio float64 `json:"cold_start_ratio"`
	P99Sec         float64 `json:"p99_sec"`
	// Recovery-machinery activity.
	FetchRetries  int64 `json:"fetch_retries"`
	FetchTimeouts int64 `json:"fetch_timeouts"`
	FallbackPages int64 `json:"fallback_pages"`
	ColdReinits   int   `json:"cold_reinits"`
	// RescheduledFault counts scheduler diversions (≥ Rescheduled: a
	// diverted request may still end in the re-init class).
	RescheduledFault int `json:"rescheduled_fault"`
}

// ResilienceOptions sizes the ext-resilience sweep.
type ResilienceOptions struct {
	// Intensities are the fault-plan intensities swept.
	// Default {0, 0.25, 0.5, 1}.
	Intensities []float64
	// Nodes is the rack's compute-node count. Default 3.
	Nodes int
	// Duration of the generated trace. Default 12 m.
	Duration time.Duration
	// KeepAlive of idle containers. Default 10 m.
	KeepAlive time.Duration
	// Fallback enables the local-swap fallback path (dual-backend swap):
	// fetch timeouts are served from the local copy instead of forcing a
	// cold re-init.
	Fallback bool
	// Seed drives the workload; FaultSeed drives the fault plan.
	Seed, FaultSeed int64
}

// Resilience measures how the rack degrades as injected faults intensify:
// the mixed workload runs against the same pool under fault plans of
// increasing intensity (each plan's windows contain the weaker plan's, so
// the exposure is strictly nested), and each row reports tail latency, the
// cold-start ratio, and where the recovery machinery routed the affected
// requests. Request conservation — completed + rescheduled + failed ==
// submitted — holds on every row by construction.
func Resilience(opt ResilienceOptions) []ResilienceRow {
	if len(opt.Intensities) == 0 {
		opt.Intensities = []float64{0, 0.25, 0.5, 1}
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 3
	}
	if opt.Duration <= 0 {
		opt.Duration = 12 * time.Minute
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}
	horizon := opt.Duration + opt.KeepAlive + time.Minute

	run := func(intensity float64) ResilienceRow {
		plan := faultinject.New(faultinject.Config{
			Horizon:   horizon,
			Intensity: intensity,
			Seed:      opt.FaultSeed,
		})
		nodeCfg := memnode.Config{DRAMBytes: 512 << 20, SpillBytes: 512 << 20}
		swapCfg := fastswap.Config{}
		if opt.Fallback {
			swapCfg.FallbackReadLatency = 50 * time.Microsecond
		}
		e := simtime.NewEngine()
		c := cluster.New(e, cluster.Config{
			Nodes: opt.Nodes,
			Node: faas.Config{
				KeepAliveTimeout: opt.KeepAlive,
				Seed:             opt.Seed,
				Swap:             swapCfg,
				RequestLogSize:   1 << 16,
			},
			Pool: rmem.Config{Node: &nodeCfg, Faults: plan},
		}, func() policy.Policy { return core.New(core.Config{}) })
		for i, prof := range workload.Profiles() {
			p := *prof
			fn := trace.GenerateFunction(p.Name, opt.Duration,
				time.Duration(3+i)*time.Second, true, opt.Seed+int64(i))
			if len(fn.Invocations) == 0 {
				continue
			}
			c.Register(p.Name, &p)
			c.ScheduleInvocations(p.Name, fn.Invocations)
		}
		e.RunUntil(horizon)

		st := c.Stats()
		row := ResilienceRow{
			Intensity:        intensity,
			UnhealthyPct:     plan.UnhealthyFraction(horizon) * 100,
			Submitted:        st.Submitted,
			Completed:        st.Recovery.DoneNormal,
			Rescheduled:      st.Recovery.DoneRescheduled,
			Failed:           st.Recovery.DoneReinit,
			FetchRetries:     st.Recovery.FetchRetries,
			FetchTimeouts:    st.Recovery.FetchTimeouts,
			FallbackPages:    st.Recovery.FallbackPages,
			ColdReinits:      st.Recovery.ColdReinits,
			RescheduledFault: st.RescheduledFault,
		}
		if st.Requests > 0 {
			row.ColdStartRatio = float64(st.ColdStarts) / float64(st.Requests)
		}
		var lat metrics.Sampler
		for _, n := range c.Nodes() {
			for _, rec := range n.RequestLog().Records() {
				lat.AddDuration(rec.Latency)
			}
		}
		row.P99Sec = lat.P99()
		return row
	}

	rows := make([]ResilienceRow, len(opt.Intensities))
	runGrid(len(rows), func(i int) { rows[i] = run(opt.Intensities[i]) })
	return rows
}

// PrintResilience renders the sweep.
func PrintResilience(w io.Writer, rows []ResilienceRow) {
	fmt.Fprintln(w, "Extension: fault injection — rack degradation vs fault intensity")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%.2f", r.Intensity),
			fmt.Sprintf("%.1f%%", r.UnhealthyPct),
			fmt.Sprintf("%d", r.Submitted),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Rescheduled),
			fmt.Sprintf("%d", r.Failed),
			fmt.Sprintf("%.2f%%", r.ColdStartRatio*100),
			fmt.Sprintf("%.3fs", r.P99Sec),
			fmt.Sprintf("%d", r.FetchRetries),
			fmt.Sprintf("%d", r.FetchTimeouts),
			fmt.Sprintf("%d", r.ColdReinits),
			fmt.Sprintf("%d", r.FallbackPages),
		}
	}
	writeTable(w, []string{
		"intensity", "unhealthy", "submitted", "completed", "rescheduled",
		"failed", "cold-start", "P99", "retries", "timeouts", "re-inits",
		"fallback pages",
	}, table)
}
