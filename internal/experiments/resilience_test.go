package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

func shortResilienceOpts() ResilienceOptions {
	return ResilienceOptions{
		Intensities: []float64{0, 0.5, 1},
		Duration:    4 * time.Minute,
		KeepAlive:   4 * time.Minute,
		Seed:        11,
		FaultSeed:   7,
	}
}

// TestResilienceDeterministicAcrossWidths pins the acceptance criterion that
// ext-resilience rows are bit-identical at any scenario fan-out width.
func TestResilienceDeterministicAcrossWidths(t *testing.T) {
	opt := shortResilienceOpts()
	if w := DivergentWidth([]int{1, 3}, func() any {
		return Resilience(opt)
	}); w != -1 {
		t.Fatalf("resilience rows differ between workers=1 and workers=%d", w)
	}
}

// TestResilienceConservationAndMonotonicity checks the sweep's two structural
// properties: no request is ever lost (completed + rescheduled + failed ==
// submitted on every row), and degradation is monotone in intensity — higher
// intensity means nested-superset fault windows, so the cold-start ratio and
// P99 may not improve.
func TestResilienceConservationAndMonotonicity(t *testing.T) {
	rows := Resilience(shortResilienceOpts())
	for _, r := range rows {
		if got := r.Completed + r.Rescheduled + r.Failed; got != r.Submitted {
			t.Errorf("intensity %.2f: completed %d + rescheduled %d + failed %d = %d, want submitted %d",
				r.Intensity, r.Completed, r.Rescheduled, r.Failed, got, r.Submitted)
		}
	}
	if rows[0].Intensity != 0 {
		t.Fatalf("first row intensity = %v, want the fault-free baseline 0", rows[0].Intensity)
	}
	base := rows[0]
	if base.FetchRetries != 0 || base.FetchTimeouts != 0 || base.ColdReinits != 0 ||
		base.Rescheduled != 0 || base.Failed != 0 {
		t.Errorf("fault-free baseline shows recovery activity: %+v", base)
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if cur.UnhealthyPct < prev.UnhealthyPct {
			t.Errorf("unhealthy%% not monotone: %.2f%% at %.2f, %.2f%% at %.2f",
				prev.UnhealthyPct, prev.Intensity, cur.UnhealthyPct, cur.Intensity)
		}
		if cur.ColdStartRatio < prev.ColdStartRatio {
			t.Errorf("cold-start ratio not monotone: %.4f at %.2f, %.4f at %.2f",
				prev.ColdStartRatio, prev.Intensity, cur.ColdStartRatio, cur.Intensity)
		}
		if cur.P99Sec < prev.P99Sec {
			t.Errorf("P99 not monotone: %.3fs at %.2f, %.3fs at %.2f",
				prev.P99Sec, prev.Intensity, cur.P99Sec, cur.Intensity)
		}
	}
	if last := rows[len(rows)-1]; last.FetchRetries == 0 {
		t.Errorf("full-intensity row exercised no retries: %+v", last)
	}
}

// zeroCostPlan builds a non-empty fault plan whose windows all lie beyond
// the horizon: the fault machinery is armed (Pool.FaultsPlanned() is true,
// so requests run through executeFaulty/FetchRetry) but no window is ever
// active during the run.
func zeroCostPlan(horizon time.Duration) *faultinject.Plan {
	far := simtime.Time(horizon) + simtime.Time(time.Hour)
	return faultinject.FromWindows([]faultinject.Window{
		{Kind: faultinject.LinkFlap, Start: far, End: far + simtime.Time(time.Minute)},
		{Kind: faultinject.LatencySpike, Start: far, End: far + simtime.Time(time.Minute), Factor: 3},
	})
}

// TestFaultPlanZeroCostWhenOff pins the zero-cost-when-off contract at the
// platform level: a run under an armed-but-never-active fault plan produces
// a request log and aggregate stats bit-identical to the plan-free run.
// This is the strongest check on the pre-count/replay design — the faulty
// request path must reproduce the fault-free path exactly whenever the plan
// is quiet, including runs with real remote page faults.
func TestFaultPlanZeroCostWhenOff(t *testing.T) {
	const keepAlive = 8 * time.Minute
	duration := 20 * time.Minute
	horizon := duration + keepAlive

	run := func(plan *faultinject.Plan) (faas.AggregateStats, []faas.RequestRecord, faas.RecoveryStats) {
		e := simtime.NewEngine()
		p := faas.New(e, faas.Config{
			KeepAliveTimeout: keepAlive,
			Seed:             11,
			Pool:             rmem.Config{Faults: plan},
			RequestLogSize:   1 << 14,
		}, core.New(core.Config{}))
		prof := workload.ByName("json")
		p.Register(prof.Name, prof)
		p.ScheduleInvocations(prof.Name, LowLoadInvocations(duration, 11))
		e.RunUntil(horizon)
		return p.Aggregate(), p.RequestLog().Records(), p.Recovery()
	}

	wantAgg, wantLog, wantRec := run(nil)
	gotAgg, gotLog, gotRec := run(zeroCostPlan(horizon))

	if wantAgg.FaultPages == 0 {
		t.Fatalf("workload produced no remote faults; the parity check is vacuous: %+v", wantAgg)
	}
	if !reflect.DeepEqual(wantAgg, gotAgg) {
		t.Errorf("aggregate stats diverge under a quiet fault plan:\n  off: %+v\n  on:  %+v", wantAgg, gotAgg)
	}
	if !reflect.DeepEqual(wantLog, gotLog) {
		t.Errorf("request logs diverge under a quiet fault plan (%d vs %d records)", len(wantLog), len(gotLog))
		for i := range wantLog {
			if i < len(gotLog) && !reflect.DeepEqual(wantLog[i], gotLog[i]) {
				t.Errorf("first divergent record %d:\n  off: %+v\n  on:  %+v", i, wantLog[i], gotLog[i])
				break
			}
		}
	}
	if (wantRec != faas.RecoveryStats{DoneNormal: wantRec.DoneNormal}) {
		t.Errorf("plan-free run shows recovery activity: %+v", wantRec)
	}
	if !reflect.DeepEqual(wantRec, gotRec) {
		t.Errorf("recovery stats diverge under a quiet fault plan:\n  off: %+v\n  on:  %+v", wantRec, gotRec)
	}
}

// TestRunScenarioRecoveryField checks RunScenario populates Outcome.Recovery
// exactly when a fault plan is armed.
func TestRunScenarioRecoveryField(t *testing.T) {
	sc := Scenario{
		Profile:     workload.ByName("json"),
		Invocations: LowLoadInvocations(5*time.Minute, 3),
		Duration:    5 * time.Minute,
		KeepAlive:   2 * time.Minute,
		Policy:      FaaSMem,
		Seed:        3,
	}
	if out := RunScenario(sc); out.Recovery != nil {
		t.Errorf("Recovery non-nil without a fault plan: %+v", out.Recovery)
	}
	sc.Pool.Faults = zeroCostPlan(sc.Duration + sc.KeepAlive)
	out := RunScenario(sc)
	if out.Recovery == nil {
		t.Fatal("Recovery nil with a fault plan armed")
	}
	if out.Recovery.DoneNormal != out.Requests {
		t.Errorf("quiet plan: DoneNormal = %d, want every request (%d)",
			out.Recovery.DoneNormal, out.Requests)
	}
}
