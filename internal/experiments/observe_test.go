package experiments

import (
	"strings"
	"testing"
	"time"
)

func shortObserveOpts() ObserveOptions {
	return ObserveOptions{
		Intensities: []float64{0, 1},
		Duration:    4 * time.Minute,
		KeepAlive:   3 * time.Minute,
		Window:      30 * time.Second,
		Fallback:    true,
		Seed:        11,
		FaultSeed:   7,
	}
}

// TestObserveDeterministicAcrossWidths pins the tentpole acceptance
// criterion: the ext-observe timeline is bit-identical at any
// -scenario-workers width.
func TestObserveDeterministicAcrossWidths(t *testing.T) {
	opt := shortObserveOpts()
	if w := DivergentWidth([]int{1, 8}, func() any {
		return Observe(opt)
	}); w != -1 {
		t.Fatalf("observe timelines differ between workers=1 and workers=%d", w)
	}
}

// TestObserveFaultCoMovement checks the sweep's structural property: the
// faulted cell's timeline visibly co-moves with the fault plan — recovery
// activity and flight dumps appear only at intensity > 0, while the
// fault-free baseline stays activity-free.
func TestObserveFaultCoMovement(t *testing.T) {
	cells := Observe(shortObserveOpts())
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	base, faulted := cells[0], cells[1]

	if base.Intensity != 0 {
		t.Fatalf("first cell intensity = %v, want fault-free baseline 0", base.Intensity)
	}
	if base.Dumps != 0 {
		t.Errorf("fault-free baseline took %d flight dumps, want 0", base.Dumps)
	}
	var baseActivity, baseReqs int64
	for _, w := range base.Windows {
		baseActivity += w.Retries + w.Timeouts + w.FallbackPages + w.Reinits + w.FaultKinds
		baseReqs += w.Requests
	}
	if baseActivity != 0 {
		t.Errorf("fault-free baseline shows recovery activity %d, want 0", baseActivity)
	}
	if baseReqs == 0 {
		t.Error("fault-free baseline rolled up no requests; workload not sampled")
	}

	if faulted.FaultWindows == 0 {
		t.Fatal("faulted cell has no fault windows; plan not generated")
	}
	if faulted.Dumps == 0 {
		t.Error("faulted cell took no flight dumps; fault triggers not armed")
	}
	if faulted.DumpEvents == 0 {
		t.Error("flight dumps carry no events; recorder ring not populated")
	}
	var faultedActivity int64
	faultKindWindows := 0
	for _, w := range faulted.Windows {
		faultedActivity += w.Retries + w.Timeouts + w.FallbackPages
		if w.FaultKinds > 0 {
			faultKindWindows++
		}
	}
	if faultedActivity == 0 {
		t.Error("faulted cell shows no retry/timeout/fallback activity in any window")
	}
	if faultKindWindows == 0 {
		t.Error("no window observed an active fault kind; pool gauge not sampled")
	}
	// Co-movement: recovery activity concentrates in windows where a fault
	// kind was active (or the immediately following window, for recovery
	// echo) rather than being uniform background noise.
	activityInFault := int64(0)
	for i, w := range faulted.Windows {
		act := w.Retries + w.Timeouts + w.FallbackPages
		near := w.FaultKinds > 0 || (i > 0 && faulted.Windows[i-1].FaultKinds > 0)
		if near {
			activityInFault += act
		}
	}
	if activityInFault == 0 {
		t.Error("recovery activity never lands in or next to a fault window")
	}
}

// TestPrintObserveRendersTables smoke-tests the printer output shape.
func TestPrintObserveRendersTables(t *testing.T) {
	opt := shortObserveOpts()
	opt.Intensities = []float64{1}
	cells := Observe(opt)
	var sb strings.Builder
	PrintObserve(&sb, cells)
	out := sb.String()
	for _, want := range []string{"intensity 1.00", "t(s)", "p99(ms)", "fault windows"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintObserve output missing %q:\n%s", want, out)
		}
	}
}
