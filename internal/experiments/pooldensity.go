package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// mixedFn is one function of the mixed density workload: a benchmark profile
// plus its generated invocation schedule.
type mixedFn struct {
	prof *workload.Profile
	inv  []simtime.Time
}

// mixedWorkload generates the mixed 11-benchmark invocation schedule the
// density-family sweeps (ext-pool-density, ext-merge) share: one function per
// benchmark, bursty arrivals so busy functions scale out to several
// concurrent containers. Sharing the generator is what lets the merge sweep's
// function-scope cell reproduce the density sweep's dedup rows exactly.
func mixedWorkload(d time.Duration, seed int64) []mixedFn {
	var fns []mixedFn
	for i, prof := range workload.Profiles() {
		fn := trace.GenerateFunction(prof.Name, d,
			time.Duration(3+i)*time.Second, true, seed+int64(i))
		if len(fn.Invocations) == 0 {
			continue
		}
		fns = append(fns, mixedFn{prof: prof, inv: fn.Invocations})
	}
	return fns
}

// PoolDensityMode names one memory-node configuration under study.
type PoolDensityMode string

const (
	// DensityOff is the dedup/compression-off baseline: the node stores
	// every offloaded page privately and raw.
	DensityOff PoolDensityMode = "off"
	// DensityDedup enables content-class dedup only.
	DensityDedup PoolDensityMode = "dedup"
	// DensityDedupZswap enables dedup plus the compression tier.
	DensityDedupZswap PoolDensityMode = "dedup+zswap"
)

// PoolDensityRow is one (DRAM capacity, mode) cell of the sweep.
type PoolDensityRow struct {
	DRAMMB int             `json:"dram_mb"`
	Mode   PoolDensityMode `json:"mode"`
	// Requests served and the cold-start ratio, to show the density win is
	// not bought with latency regressions.
	Requests       int     `json:"requests"`
	ColdStartRatio float64 `json:"cold_start_ratio"`
	// OffloadedMB is total offload traffic accepted over the run.
	OffloadedMB float64 `json:"offloaded_mb"`
	// LogicalPeakMB / ResidentPeakMB: peak bytes the compute side had
	// offloaded vs peak bytes the node actually stored.
	LogicalPeakMB  float64 `json:"logical_peak_mb"`
	ResidentPeakMB float64 `json:"resident_peak_mb"`
	// Amplification is LogicalPeak / ResidentPeak — the effective-capacity
	// multiplier. The off baseline is 1.0 by construction.
	Amplification float64 `json:"amplification"`
	// DedupSavedMB / CompressSavedMB decompose where the savings came from
	// (values at end of run's peak tracking counters).
	DedupHitPages   int64 `json:"dedup_hit_pages"`
	CompressedPages int64 `json:"compressed_pages"`
	SpilledPages    int64 `json:"spilled_pages"`
	FullRejectPages int64 `json:"full_reject_pages"`
}

// PoolDensityOptions sizes the sweep.
type PoolDensityOptions struct {
	// DRAMMBs are the node DRAM capacities swept. Default {256, 512}.
	DRAMMBs []int
	// SpillMB bounds the node's spill tier. Default 512.
	SpillMB int
	// Nodes is the rack's compute-node count. Default 3.
	Nodes int
	// Duration of the generated trace. Default 8 m.
	Duration time.Duration
	// KeepAlive of idle containers. Default 10 m.
	KeepAlive time.Duration
	Seed      int64
}

// PoolDensity measures the memory node's effective-capacity amplification:
// the mixed 11-benchmark workload runs on a rack whose shared pool is backed
// by a memnode, and each row compares the peak logical bytes the rack had
// offloaded against the bytes the node actually stored. FaaSMem offloads
// mostly init/runtime pages, which dedup across the concurrent containers of
// a function ("User-guided Page Merging"), and cold entries compress under
// DRAM pressure ("Squeezy") — together they let the same DRAM hold a
// multiple of its raw capacity. The off row is the dedup/compression-off
// baseline (amplification 1.0 by construction).
func PoolDensity(opt PoolDensityOptions) []PoolDensityRow {
	if len(opt.DRAMMBs) == 0 {
		opt.DRAMMBs = []int{256, 512}
	}
	if opt.SpillMB <= 0 {
		opt.SpillMB = 512
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 3
	}
	if opt.Duration <= 0 {
		opt.Duration = 8 * time.Minute
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}
	modes := []PoolDensityMode{DensityOff, DensityDedup, DensityDedupZswap}

	// Every cell runs the identical mixed workload; generate the invocation
	// traces once and share the (read-only) schedules across cells.
	fns := mixedWorkload(opt.Duration, opt.Seed)

	run := func(dramMB int, mode PoolDensityMode) PoolDensityRow {
		nodeCfg := memnode.Config{
			DRAMBytes:          int64(dramMB) << 20,
			SpillBytes:         int64(opt.SpillMB) << 20,
			DisableDedup:       mode == DensityOff,
			DisableCompression: mode != DensityDedupZswap,
		}
		e := simtime.NewEngine()
		c := cluster.New(e, cluster.Config{
			Nodes: opt.Nodes,
			Node: faas.Config{
				KeepAliveTimeout: opt.KeepAlive,
				Seed:             opt.Seed,
			},
			Pool: rmem.Config{Node: &nodeCfg},
		}, func() policy.Policy { return core.New(core.Config{}) })
		// The mixed workload: one function per benchmark, bursty arrivals so
		// busy functions scale out to several concurrent containers (the
		// dedup fan-in the paper's rack deployment would see).
		for _, f := range fns {
			p := *f.prof
			c.Register(p.Name, &p)
			c.ScheduleInvocations(p.Name, f.inv)
		}
		e.RunUntil(opt.Duration + opt.KeepAlive + time.Minute)

		st := c.Stats()
		row := PoolDensityRow{
			DRAMMB:      dramMB,
			Mode:        mode,
			Requests:    st.Requests,
			OffloadedMB: float64(c.Pool().Meter(rmem.Offload).Total()) / 1e6,
		}
		if st.Requests > 0 {
			row.ColdStartRatio = float64(st.ColdStarts) / float64(st.Requests)
		}
		if mn := st.MemNode; mn != nil {
			row.LogicalPeakMB = float64(mn.PeakLogicalBytes) / 1e6
			row.ResidentPeakMB = float64(mn.PeakResidentBytes) / 1e6
			if mn.PeakResidentBytes > 0 {
				row.Amplification = float64(mn.PeakLogicalBytes) / float64(mn.PeakResidentBytes)
			} else {
				row.Amplification = 1
			}
			row.DedupHitPages = mn.DedupHitPages
			row.CompressedPages = mn.CompressedPages
			row.SpilledPages = mn.SpilledPages
			row.FullRejectPages = mn.FullRejectPages
		}
		return row
	}

	rows := make([]PoolDensityRow, len(opt.DRAMMBs)*len(modes))
	runGrid(len(rows), func(i int) {
		rows[i] = run(opt.DRAMMBs[i/len(modes)], modes[i%len(modes)])
	})
	return rows
}

// PrintPoolDensity renders the sweep.
func PrintPoolDensity(w io.Writer, rows []PoolDensityRow) {
	fmt.Fprintln(w, "Extension (§9): pool-side memory node — effective-capacity amplification")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%d MB", r.DRAMMB),
			string(r.Mode),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.2f%%", r.ColdStartRatio*100),
			fmt.Sprintf("%.0f MB", r.OffloadedMB),
			fmt.Sprintf("%.0f MB", r.LogicalPeakMB),
			fmt.Sprintf("%.0f MB", r.ResidentPeakMB),
			fmt.Sprintf("%.2fx", r.Amplification),
			fmt.Sprintf("%d", r.DedupHitPages),
			fmt.Sprintf("%d", r.CompressedPages),
			fmt.Sprintf("%d", r.SpilledPages),
		}
	}
	writeTable(w, []string{
		"node DRAM", "mode", "requests", "cold-start", "offloaded",
		"logical peak", "resident peak", "amplification",
		"dedup hits", "compressed", "spilled",
	}, table)
}
