package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
)

// MergeDomainsRow is one (merge scope, runtime write ratio) cell of the
// ext-merge sweep.
type MergeDomainsRow struct {
	Scope      memnode.MergeScope `json:"scope"`
	WriteRatio float64            `json:"write_ratio"`
	// Requests and the cold-start ratio: widening the merge domain must not
	// change scheduling behavior, only pool-side density.
	Requests       int     `json:"requests"`
	ColdStartRatio float64 `json:"cold_start_ratio"`
	// Peak logical vs resident bytes and their ratio — the effective-capacity
	// multiplier merging buys at this scope.
	LogicalPeakMB  float64 `json:"logical_peak_mb"`
	ResidentPeakMB float64 `json:"resident_peak_mb"`
	Amplification  float64 `json:"amplification"`
	// DedupHitPages counts all shared-master admissions; MergedPages the
	// subset landing on a domain wider than the page's own function.
	DedupHitPages int64 `json:"dedup_hit_pages"`
	MergedPages   int64 `json:"merged_pages"`
	// Copy-on-write unmerge storms under write-hot workloads: break events,
	// pages privatized, and pages the node had to hand back to the writer.
	UnmergeBreaks      int64 `json:"unmerge_breaks"`
	UnmergedPages      int64 `json:"unmerged_pages"`
	UnmergeRecallPages int64 `json:"unmerge_recall_pages"`
	// Shared cache tier effectiveness (zero at function scope, where the
	// cache is off).
	CacheHitPct    float64 `json:"cache_hit_pct"`
	CacheEvictions int64   `json:"cache_evictions"`
	// IsolationOK records the post-drain CheckInvariants verdict, which
	// includes the cross-tenant isolation and cache fairness properties.
	IsolationOK bool `json:"isolation_ok"`
}

// MergeDomainsOptions sizes the sweep.
type MergeDomainsOptions struct {
	// Scopes swept. Default: function, tenant, cross-tenant.
	Scopes []memnode.MergeScope
	// WriteRatios are the RuntimeWriteRatio values swept per scope: 0 is the
	// read-only density shape, positive values turn every function write-hot
	// and storm the CoW unmerge path. Default {0, 0.3}.
	WriteRatios []float64
	// DRAMMB / SpillMB size the node's tiers. Defaults 256 / 512.
	DRAMMB  int
	SpillMB int
	// CacheMB sizes the shared multi-tenant cache tier, enabled at the
	// widened scopes (merge masters are what it caches). Default 64.
	CacheMB int
	// Nodes is the rack's compute-node count. Default 3.
	Nodes int
	// Tenants is how many tenants the 11 benchmarks are split across
	// (round-robin). All but the last opt into cross-tenant merging, so the
	// sweep always carries a non-consenting tenant across the security
	// boundary. Default 3.
	Tenants int
	// Duration of the generated trace. Default 8 m.
	Duration time.Duration
	// KeepAlive of idle containers. Default 10 m.
	KeepAlive time.Duration
	Seed      int64
}

// MergeDomains measures what widening the merge domain buys and costs: the
// mixed 11-benchmark workload is split across tenants and run at each
// (scope, write ratio) cell on a rack whose pool-side node merges
// content-identical runtime pages per-function, per-tenant, or rack-wide
// across opted-in tenants. Read-only rows show the density win (amplification
// grows with scope); write-hot rows show the CoW unmerge storm that claws it
// back. The function-scope, read-only, cache-off cell is configured exactly
// like the ext-pool-density dedup cell and reproduces its numbers.
func MergeDomains(opt MergeDomainsOptions) []MergeDomainsRow {
	if len(opt.Scopes) == 0 {
		opt.Scopes = memnode.MergeScopes()
	}
	if len(opt.WriteRatios) == 0 {
		opt.WriteRatios = []float64{0, 0.3}
	}
	if opt.DRAMMB <= 0 {
		opt.DRAMMB = 256
	}
	if opt.SpillMB <= 0 {
		opt.SpillMB = 512
	}
	if opt.CacheMB <= 0 {
		opt.CacheMB = 64
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 3
	}
	if opt.Tenants <= 0 {
		opt.Tenants = 3
	}
	if opt.Duration <= 0 {
		opt.Duration = 8 * time.Minute
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}

	fns := mixedWorkload(opt.Duration, opt.Seed)

	// Round-robin tenancy over the benchmark list, and opt every tenant but
	// the last into cross-tenant merging.
	tenantOf := make(map[string]string, len(fns))
	for i, f := range fns {
		tenantOf[f.prof.Name] = fmt.Sprintf("t%d", i%opt.Tenants)
	}
	var optIn []string
	for i := 0; i < opt.Tenants-1; i++ {
		optIn = append(optIn, fmt.Sprintf("t%d", i))
	}
	if len(optIn) == 0 {
		optIn = []string{"t0"}
	}

	run := func(scope memnode.MergeScope, ratio float64) MergeDomainsRow {
		nodeCfg := memnode.Config{
			DRAMBytes:          int64(opt.DRAMMB) << 20,
			SpillBytes:         int64(opt.SpillMB) << 20,
			DisableCompression: true, // isolate merging from zswap effects
			MergeScope:         scope,
			MergeOptIn:         optIn,
			TenantOf:           func(fn string) string { return tenantOf[fn] },
		}
		if scope != memnode.MergeFunction {
			nodeCfg.CacheBytes = int64(opt.CacheMB) << 20
		}
		e := simtime.NewEngine()
		c := cluster.New(e, cluster.Config{
			Nodes: opt.Nodes,
			Node: faas.Config{
				KeepAliveTimeout: opt.KeepAlive,
				Seed:             opt.Seed,
			},
			Pool: rmem.Config{Node: &nodeCfg},
		}, func() policy.Policy { return core.New(core.Config{}) })
		for _, f := range fns {
			p := *f.prof
			p.RuntimeWriteRatio = ratio
			c.Register(p.Name, &p)
			c.ScheduleInvocations(p.Name, f.inv)
		}
		e.RunUntil(opt.Duration + opt.KeepAlive + time.Minute)

		st := c.Stats()
		row := MergeDomainsRow{Scope: scope, WriteRatio: ratio, Requests: st.Requests}
		if st.Requests > 0 {
			row.ColdStartRatio = float64(st.ColdStarts) / float64(st.Requests)
		}
		if mn := st.MemNode; mn != nil {
			row.LogicalPeakMB = float64(mn.PeakLogicalBytes) / 1e6
			row.ResidentPeakMB = float64(mn.PeakResidentBytes) / 1e6
			if mn.PeakResidentBytes > 0 {
				row.Amplification = float64(mn.PeakLogicalBytes) / float64(mn.PeakResidentBytes)
			} else {
				row.Amplification = 1
			}
			row.DedupHitPages = mn.DedupHitPages
			row.MergedPages = mn.MergedPages
			row.UnmergeBreaks = mn.UnmergeBreaks
			row.UnmergedPages = mn.UnmergedPages
			row.UnmergeRecallPages = mn.UnmergeRecallPages
			if lookups := mn.CacheHitPages + mn.CacheMissPages; lookups > 0 {
				row.CacheHitPct = 100 * float64(mn.CacheHitPages) / float64(lookups)
			}
			row.CacheEvictions = mn.CacheEvictions
		}
		row.IsolationOK = c.Pool().Node().CheckInvariants() == nil
		return row
	}

	rows := make([]MergeDomainsRow, len(opt.Scopes)*len(opt.WriteRatios))
	runGrid(len(rows), func(i int) {
		rows[i] = run(opt.Scopes[i/len(opt.WriteRatios)], opt.WriteRatios[i%len(opt.WriteRatios)])
	})
	return rows
}

// PrintMergeDomains renders the sweep.
func PrintMergeDomains(w io.Writer, rows []MergeDomainsRow) {
	fmt.Fprintln(w, "Extension (§9): cross-tenant merge domains — density vs CoW unmerge cost")
	table := make([][]string, len(rows))
	for i, r := range rows {
		iso := "ok"
		if !r.IsolationOK {
			iso = "VIOLATED"
		}
		table[i] = []string{
			string(r.Scope),
			fmt.Sprintf("%.2f", r.WriteRatio),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.2f%%", r.ColdStartRatio*100),
			fmt.Sprintf("%.0f MB", r.LogicalPeakMB),
			fmt.Sprintf("%.0f MB", r.ResidentPeakMB),
			fmt.Sprintf("%.2fx", r.Amplification),
			fmt.Sprintf("%d", r.MergedPages),
			fmt.Sprintf("%d", r.UnmergeBreaks),
			fmt.Sprintf("%d", r.UnmergedPages),
			fmt.Sprintf("%.1f%%", r.CacheHitPct),
			fmt.Sprintf("%d", r.CacheEvictions),
			iso,
		}
	}
	writeTable(w, []string{
		"scope", "write", "requests", "cold-start",
		"logical peak", "resident peak", "amplification",
		"merged", "breaks", "unmerged", "cache hit", "cache evict", "isolation",
	}, table)
}
