package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/fastswap"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// This file implements two studies beyond the paper's figures, quantifying
// claims its Discussion (§9) and ablation commentary (§8.3.2) make in prose:
//
//   - PoolComparison: RDMA vs CXL vs SSD as the memory-pool technology.
//     §9 argues CXL works at least as well and SSDs cannot keep up because
//     durability limits cap write bandwidth near 1 MB/s.
//   - ColdStartTiming: the §8.3.2 opportunity — correcting the semi-warm
//     timing for cold-start-censored reuse intervals to repair the bursty
//     P99 regression.

// PoolRow is one memory-pool technology's outcome.
type PoolRow struct {
	Pool string
	// P95/P99 end-to-end latency in seconds.
	P95, P99 float64
	// AvgLocalMB is the average node-local memory.
	AvgLocalMB float64
	// OffloadedMB is cumulative offload traffic.
	OffloadedMB float64
}

// PoolComparisonOptions sizes the study.
type PoolComparisonOptions struct {
	Duration time.Duration
	Seed     int64
}

// PoolComparison runs the Bert benchmark under FaaSMem against three pool
// technologies. Expected shape per §9: CXL ≤ RDMA latency at equal savings;
// the SSD's ~1 MB/s durability-limited writes strangle the offload pipeline
// so it saves far less memory.
func PoolComparison(opt PoolComparisonOptions) []PoolRow {
	if opt.Duration <= 0 {
		opt.Duration = 20 * time.Minute
	}
	prof := workload.Bert()
	inv := trace.GenerateFunction("bert", opt.Duration, 10*time.Second, true, opt.Seed).Invocations
	pools := []struct {
		name string
		cfg  rmem.Config
	}{
		{"rdma-56g", rmem.Config{}},
		{"cxl", rmem.CXLConfig()},
		{"ssd", rmem.SSDConfig()},
	}
	scs := make([]Scenario, len(pools))
	for i, pl := range pools {
		scs[i] = Scenario{
			Profile:     prof,
			Invocations: inv,
			Duration:    opt.Duration,
			Policy:      FaaSMem,
			SeedHistory: true,
			Seed:        opt.Seed,
			Pool:        pl.cfg,
		}
	}
	outs := RunScenarios(scs)
	var rows []PoolRow
	for i, pl := range pools {
		out := outs[i]
		rows = append(rows, PoolRow{
			Pool:        pl.name,
			P95:         out.P95,
			P99:         out.P99,
			AvgLocalMB:  out.AvgLocalMB,
			OffloadedMB: out.OffloadedMB,
		})
	}
	return rows
}

// PrintPoolComparison renders the §9 technology comparison.
func PrintPoolComparison(w io.Writer, rows []PoolRow) {
	fmt.Fprintln(w, "Extension (§9): memory-pool technology comparison (Bert, FaaSMem)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Pool,
			fmt.Sprintf("%.3fs", r.P95),
			fmt.Sprintf("%.3fs", r.P99),
			fmt.Sprintf("%.0f MB", r.AvgLocalMB),
			fmt.Sprintf("%.0f MB", r.OffloadedMB),
		}
	}
	writeTable(w, []string{"pool", "P95", "P99", "avg local", "offloaded"}, table)
}

// ColdStartTimingRow compares semi-warm timing with and without the
// cold-start-aware correction under one load shape.
type ColdStartTimingRow struct {
	Case      string
	Corrected bool
	P99       float64
	AvgMemMB  float64
}

// ColdStartTimingOptions sizes the study.
type ColdStartTimingOptions struct {
	Duration time.Duration
	Seed     int64
}

// ColdStartTiming quantifies the §8.3.2 opportunity: under bursty load, the
// collected reused intervals are censored by cold starts, the semi-warm
// timing fires too early, and P99 regresses; stretching the timing by the
// observed cold-start fraction trades a little memory back for tail latency.
func ColdStartTiming(opt ColdStartTimingOptions) []ColdStartTimingRow {
	if opt.Duration <= 0 {
		opt.Duration = 20 * time.Minute
	}
	prof := workload.Bert()
	cases := []struct {
		name   string
		bursty bool
	}{{"common", false}, {"bursty", true}}
	var scs []Scenario
	for _, cs := range cases {
		inv := trace.GenerateFunction("bert", opt.Duration, 12*time.Second, cs.bursty, opt.Seed).Invocations
		for _, corrected := range []bool{false, true} {
			scs = append(scs, Scenario{
				Profile:     prof,
				Invocations: inv,
				Duration:    opt.Duration,
				Policy:      FaaSMem,
				CoreConfig:  core.Config{ColdStartAwareTiming: corrected},
				SeedHistory: true,
				Seed:        opt.Seed,
			})
		}
	}
	outs := RunScenarios(scs)
	var rows []ColdStartTimingRow
	i := 0
	for _, cs := range cases {
		for _, corrected := range []bool{false, true} {
			out := outs[i]
			i++
			rows = append(rows, ColdStartTimingRow{
				Case:      cs.name,
				Corrected: corrected,
				P99:       out.P99,
				AvgMemMB:  out.AvgLocalMB,
			})
		}
	}
	return rows
}

// PrintColdStartTiming renders the timing-correction study.
func PrintColdStartTiming(w io.Writer, rows []ColdStartTimingRow) {
	fmt.Fprintln(w, "Extension (§8.3.2): cold-start-aware semi-warm timing (Bert)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		mode := "collected 99%-ile"
		if r.Corrected {
			mode = "cold-start-aware"
		}
		table[i] = []string{
			r.Case,
			mode,
			fmt.Sprintf("%.3fs", r.P99),
			fmt.Sprintf("%.0f MB", r.AvgMemMB),
		}
	}
	writeTable(w, []string{"case", "timing", "P99", "avg mem"}, table)
}

// ReadaheadRow compares the demand-fault path with and without swap
// readahead for one readahead window.
type ReadaheadRow struct {
	Window int
	P95    float64
	P99    float64
	// FaultPages is the number of blocking demand faults (readahead hits
	// ride along without their own fault rounds).
	FaultPages int64
}

// ReadaheadOptions sizes the study.
type ReadaheadOptions struct {
	Duration time.Duration
	Seed     int64
}

// Readahead quantifies the §10 "prefetching remote memory" (Leap) direction:
// swap readahead turns clustered demand faults on contiguous offloaded
// ranges into one fault per window, shrinking semi-warm recall tails.
func Readahead(opt ReadaheadOptions) []ReadaheadRow {
	if opt.Duration <= 0 {
		opt.Duration = 20 * time.Minute
	}
	prof := workload.Bert()
	inv := trace.GenerateFunction("bert", opt.Duration, 12*time.Second, true, opt.Seed).Invocations
	windows := []int{0, 2, 8, 32}
	scs := make([]Scenario, len(windows))
	for i, window := range windows {
		scs[i] = Scenario{
			Profile:     prof,
			Invocations: inv,
			Duration:    opt.Duration,
			Policy:      FaaSMem,
			SeedHistory: true,
			Seed:        opt.Seed,
			Swap:        fastswap.Config{ReadaheadPages: window},
		}
	}
	outs := RunScenarios(scs)
	var rows []ReadaheadRow
	for i, window := range windows {
		rows = append(rows, ReadaheadRow{
			Window:     window,
			P95:        outs[i].P95,
			P99:        outs[i].P99,
			FaultPages: outs[i].FaultPages,
		})
	}
	return rows
}

// PrintReadahead renders the prefetching study.
func PrintReadahead(w io.Writer, rows []ReadaheadRow) {
	fmt.Fprintln(w, "Extension (§10): swap readahead / prefetching on the recall path (Bert)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%d pages", r.Window),
			fmt.Sprintf("%.3fs", r.P95),
			fmt.Sprintf("%.3fs", r.P99),
			fmt.Sprintf("%d", r.FaultPages),
		}
	}
	writeTable(w, []string{"readahead", "P95", "P99", "blocking faults"}, table)
}

// PercentileRow is one semi-warm timing percentile's outcome.
type PercentileRow struct {
	Percentile float64
	P95, P99   float64
	AvgMemMB   float64
	// SemiWarmStarts counts reuses that hit a semi-warm container.
	SemiWarmStarts int
}

// PercentileSweepOptions sizes the study.
type PercentileSweepOptions struct {
	Duration time.Duration
	Seed     int64
}

// PercentileSweep quantifies §6.1's pessimistic-estimation choice: the
// semi-warm start timing is a percentile of the container reused-interval
// distribution. Lower percentiles start semi-warm earlier (more memory
// saved, more reuses pay recall penalties); the paper picks the 99th to
// guard the 95%-ile latency.
func PercentileSweep(opt PercentileSweepOptions) []PercentileRow {
	if opt.Duration <= 0 {
		opt.Duration = 20 * time.Minute
	}
	prof := workload.Bert()
	inv := trace.GenerateFunction("bert", opt.Duration, 15*time.Second, false, opt.Seed).Invocations
	pcts := []float64{50, 90, 95, 99}
	scs := make([]Scenario, len(pcts))
	for i, pct := range pcts {
		scs[i] = Scenario{
			Profile:     prof,
			Invocations: inv,
			Duration:    opt.Duration,
			Policy:      FaaSMem,
			CoreConfig:  core.Config{SemiWarmPercentile: pct},
			SeedHistory: true,
			Seed:        opt.Seed,
		}
	}
	outs := RunScenarios(scs)
	var rows []PercentileRow
	for i, pct := range pcts {
		rows = append(rows, PercentileRow{
			Percentile:     pct,
			P95:            outs[i].P95,
			P99:            outs[i].P99,
			AvgMemMB:       outs[i].AvgLocalMB,
			SemiWarmStarts: outs[i].SemiWarmStarts,
		})
	}
	return rows
}

// PrintPercentileSweep renders the timing-percentile study.
func PrintPercentileSweep(w io.Writer, rows []PercentileRow) {
	fmt.Fprintln(w, "Extension (§6.1): semi-warm timing percentile sweep (Bert)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("P%g", r.Percentile),
			fmt.Sprintf("%.3fs", r.P95),
			fmt.Sprintf("%.3fs", r.P99),
			fmt.Sprintf("%.0f MB", r.AvgMemMB),
			fmt.Sprintf("%d", r.SemiWarmStarts),
		}
	}
	writeTable(w, []string{"timing", "P95", "P99", "avg mem", "semi-warm starts"}, table)
}
