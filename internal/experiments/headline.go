package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// ---------------------------------------------------------------- Figure 2

// Fig2Row compares one benchmark's P95 latency without offloading and with
// DAMON.
type Fig2Row struct {
	Bench    string
	BaseP95  float64 // seconds
	DamonP95 float64 // seconds
	Slowdown float64
}

// Fig2Options sizes the DAMON motivation study.
type Fig2Options struct {
	// Duration of the invocation trace per benchmark. Default 1 h (enough
	// requests that cold starts fall below the 95th percentile).
	Duration time.Duration
	// MeanGap between requests. Default 40 s — long enough for DAMON's
	// constant sampling to drain the idle containers' hot sets.
	MeanGap time.Duration
	Seed    int64
	// Benches restricts the benchmark set (nil = all 11).
	Benches []string
}

// Fig2 reproduces Figure 2: offloading with DAMON inflates the benchmarks'
// P95 response latency (the paper observes up to 14×), because sampling
// continues through keep-alive and classifies the next request's hot pages
// as cold.
func Fig2(opt Fig2Options) []Fig2Row {
	if opt.Duration <= 0 {
		opt.Duration = time.Hour
	}
	if opt.MeanGap <= 0 {
		opt.MeanGap = 40 * time.Second
	}
	benches := opt.Benches
	if len(benches) == 0 {
		benches = workload.Names()
	}
	scs := make([]Scenario, 0, 2*len(benches))
	for i, name := range benches {
		prof := workload.ByName(name)
		inv := trace.GenerateFunction(name, opt.Duration, opt.MeanGap, false, opt.Seed+int64(i)).Invocations
		scs = append(scs,
			Scenario{Profile: prof, Invocations: inv, Duration: opt.Duration, Policy: Baseline, Seed: opt.Seed},
			Scenario{Profile: prof, Invocations: inv, Duration: opt.Duration, Policy: DAMON, Seed: opt.Seed})
	}
	outs := RunScenarios(scs)
	var rows []Fig2Row
	for i, name := range benches {
		base, damon := outs[2*i], outs[2*i+1]
		slow := 0.0
		if base.P95 > 0 {
			slow = damon.P95 / base.P95
		}
		rows = append(rows, Fig2Row{Bench: name, BaseP95: base.P95, DamonP95: damon.P95, Slowdown: slow})
	}
	return rows
}

// PrintFig2 renders Figure 2.
func PrintFig2(w io.Writer, rows []Fig2Row) {
	fmt.Fprintln(w, "Figure 2: P95 latency when offloading via DAMON")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Bench,
			fmt.Sprintf("%.3fs", r.BaseP95),
			fmt.Sprintf("%.3fs", r.DamonP95),
			fmt.Sprintf("%.1fx", r.Slowdown),
		}
	}
	writeTable(w, []string{"benchmark", "no-offload P95", "DAMON P95", "slowdown"}, table)
}

// ---------------------------------------------------------------- Figure 8

// Fig8Row reports recalls from the Runtime Pucket for one benchmark.
type Fig8Row struct {
	Bench string
	// RecallPages is how many runtime-segment pages subsequent requests
	// recalled after the reactive offload.
	RecallPages int64
	Requests    int
}

// Fig8Options sizes the runtime-recall study.
type Fig8Options struct {
	// Requests per benchmark after the first. Default 20.
	Requests int
	// Gap between requests. Default 1 s.
	Gap  time.Duration
	Seed int64
}

// Fig8 reproduces Figure 8: after FaaSMem offloads the Runtime Pucket upon
// first-request completion, later requests recall almost no runtime pages
// (the paper counts 0–3 across the 11 benchmarks).
func Fig8(opt Fig8Options) []Fig8Row {
	if opt.Requests <= 0 {
		opt.Requests = 20
	}
	if opt.Gap <= 0 {
		opt.Gap = time.Second
	}
	profs := workload.Profiles()
	scs := make([]Scenario, len(profs))
	for i, prof := range profs {
		var inv []time.Duration
		for j := 0; j <= opt.Requests; j++ {
			inv = append(inv, time.Duration(j)*opt.Gap)
		}
		scs[i] = Scenario{
			Profile:     prof,
			Invocations: inv,
			Duration:    time.Duration(opt.Requests+2) * opt.Gap,
			Policy:      FaaSMemNoSemi, // isolate the Pucket mechanisms
			Seed:        opt.Seed,
		}
	}
	outs := RunScenarios(scs)
	var rows []Fig8Row
	for i, prof := range profs {
		rows = append(rows, Fig8Row{Bench: prof.Name, RecallPages: outs[i].RuntimeFaultPages, Requests: outs[i].Requests})
	}
	return rows
}

// PrintFig8 renders Figure 8.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8: pages recalled from the Runtime Pucket after reactive offload")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{r.Bench, fmt.Sprintf("%d", r.RecallPages), fmt.Sprintf("%d", r.Requests)}
	}
	writeTable(w, []string{"benchmark", "recall pages", "requests"}, table)
}

// ---------------------------------------------------------------- Figure 12

// Fig12Row is one (benchmark, policy) cell of the headline comparison.
type Fig12Row struct {
	Bench  string
	Load   string // "high" | "low"
	Policy PolicyKind
	// AvgLocalMB is the average node-local memory.
	AvgLocalMB float64
	// MemVsBase is AvgLocal normalized to the baseline (1.0 = no saving).
	MemVsBase float64
	// P95 is the 95%-ile end-to-end latency in seconds.
	P95 float64
	// P95VsBase is P95 normalized to the baseline.
	P95VsBase float64
}

// Fig12Options sizes the Azure-trace evaluation.
type Fig12Options struct {
	// Duration of the high/low-load windows. Paper: 1 hour. Default 1 h.
	Duration time.Duration
	// KeepAlive defaults to 10 minutes.
	KeepAlive time.Duration
	Seed      int64
	// Benches restricts the benchmark set (nil = all 11).
	Benches []string
	// Policies restricts the policy set (nil = Baseline, TMO, FaaSMem).
	Policies []PolicyKind
}

// Fig12 reproduces Figure 12: normalized average local memory usage and P95
// latency for the 11 benchmarks under a high-load and a low-load Azure-like
// trace, comparing Baseline, TMO and FaaSMem. The paper reports FaaSMem
// saving 27.1–71.0% (high) and 9.9–72.0% (low) with ≤ ~10% P95 impact, and
// TMO saving only a few percent.
func Fig12(opt Fig12Options) []Fig12Row {
	if opt.Duration <= 0 {
		opt.Duration = time.Hour
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}
	benches := opt.Benches
	if len(benches) == 0 {
		benches = workload.Names()
	}
	policies := opt.Policies
	if len(policies) == 0 {
		policies = []PolicyKind{Baseline, TMO, FaaSMem}
	}

	// Flatten the load×bench×policy grid into independent scenarios, fan them
	// out, then assemble rows serially in grid order so the baseline
	// normalization and row ordering match a serial run exactly.
	var scs []Scenario
	for li, load := range []string{"high", "low"} {
		for bi, name := range benches {
			prof := workload.ByName(name)
			seed := opt.Seed + int64(li*100+bi)
			var inv []time.Duration
			if load == "high" {
				inv = HighLoadInvocations(opt.Duration, seed)
			} else {
				inv = LowLoadInvocations(opt.Duration, seed)
			}
			for _, pk := range policies {
				scs = append(scs, Scenario{
					Profile:     prof,
					Invocations: inv,
					Duration:    opt.Duration,
					KeepAlive:   opt.KeepAlive,
					Policy:      pk,
					SeedHistory: true,
					Seed:        seed,
				})
			}
		}
	}
	outs := RunScenarios(scs)

	var rows []Fig12Row
	i := 0
	for _, load := range []string{"high", "low"} {
		for _, name := range benches {
			var base Fig12Row
			for _, pk := range policies {
				out := outs[i]
				i++
				row := Fig12Row{
					Bench:      name,
					Load:       load,
					Policy:     pk,
					AvgLocalMB: out.AvgLocalMB,
					P95:        out.P95,
				}
				if pk == Baseline {
					base = row
				}
				if base.AvgLocalMB > 0 {
					row.MemVsBase = row.AvgLocalMB / base.AvgLocalMB
				}
				if base.P95 > 0 {
					row.P95VsBase = row.P95 / base.P95
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// PrintFig12 renders the headline table.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintln(w, "Figure 12: normalized memory usage and P95 latency (Azure-like traces)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Load,
			r.Bench,
			string(r.Policy),
			fmt.Sprintf("%.1f MB", r.AvgLocalMB),
			fmt.Sprintf("%+.1f%%", (r.MemVsBase-1)*100),
			fmt.Sprintf("%.3fs", r.P95),
			fmt.Sprintf("%+.1f%%", (r.P95VsBase-1)*100),
		}
	}
	writeTable(w, []string{"load", "benchmark", "policy", "avg local mem", "vs base", "P95", "vs base"}, table)
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one (trace, application, policy) cell of Table 1.
type Table1Row struct {
	TraceID int
	App     string
	Policy  PolicyKind
	// P95 latency in seconds and average memory in GB (the paper's units).
	P95   float64
	MemGB float64
	// OffloadRatio is the memory saved relative to the same trace's baseline.
	OffloadRatio float64
}

// Table1Options sizes the diverse-traces study.
type Table1Options struct {
	// Duration per trace. Default 30 m (the paper uses 1-hour windows).
	Duration  time.Duration
	KeepAlive time.Duration
	// Traces is the number of high-load traces. Default 6 (IDs 1–6; ID 5 is
	// generated with an extreme short-term surge, as in the paper).
	Traces int
	Seed   int64
}

// Table1 reproduces Table 1: the three applications under six diverse
// high-load traces, comparing Baseline, TMO and FaaSMem on P95 latency and
// average memory. The paper's shape: FaaSMem's blocks are much darker (more
// offload) than TMO's at equal latency; Web offloads the most, Graph the
// least; trace ID-5's surge inflates everyone's tail latency.
func Table1(opt Table1Options) []Table1Row {
	if opt.Duration <= 0 {
		opt.Duration = 30 * time.Minute
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}
	if opt.Traces <= 0 {
		opt.Traces = 6
	}
	apps := []string{"bert", "graph", "web"}
	policies := []PolicyKind{Baseline, TMO, FaaSMem}
	var scs []Scenario
	for id := 1; id <= opt.Traces; id++ {
		// ID 5 is the anomalous surge trace.
		surge := id == 5
		for _, app := range apps {
			prof := workload.ByName(app)
			seed := opt.Seed + int64(id*10)
			gap := 6 * time.Second
			if surge {
				gap = 2 * time.Second
			}
			inv := trace.GenerateFunction(app, opt.Duration, gap, surge, seed).Invocations
			for _, pk := range policies {
				scs = append(scs, Scenario{
					Profile:     prof,
					Invocations: inv,
					Duration:    opt.Duration,
					KeepAlive:   opt.KeepAlive,
					Policy:      pk,
					SeedHistory: true,
					Seed:        seed,
				})
			}
		}
	}
	outs := RunScenarios(scs)

	var rows []Table1Row
	i := 0
	for id := 1; id <= opt.Traces; id++ {
		for _, app := range apps {
			var baseMem float64
			for _, pk := range policies {
				out := outs[i]
				i++
				row := Table1Row{
					TraceID: id,
					App:     app,
					Policy:  pk,
					P95:     out.P95,
					MemGB:   out.AvgLocalMB / 1000,
				}
				if pk == Baseline {
					baseMem = row.MemGB
				}
				if baseMem > 0 {
					row.OffloadRatio = 1 - row.MemGB/baseMem
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: P95 latency and average memory under diverse traces")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%d", r.TraceID),
			r.App,
			string(r.Policy),
			fmt.Sprintf("%.2fs", r.P95),
			fmt.Sprintf("%.2fG", r.MemGB),
			fmt.Sprintf("%.0f%%", r.OffloadRatio*100),
		}
	}
	writeTable(w, []string{"ID", "app", "policy", "P95", "mem", "offload"}, table)
}
