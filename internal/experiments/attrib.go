package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// This file implements the ext-attrib extension: Fig. 2's latency-damage
// story retold as phase attribution. Fig. 2 shows a page-reclamation policy
// hurting request latency without explaining *where* the damage lands; with
// causal spans we can sweep memory pressure (how aggressively FaaSMem
// drains idle containers toward the pool) and show the remote-fault /
// restore share of tail latency rising as local memory falls.

// AttribRow is one pressure step's outcome.
type AttribRow struct {
	// SemiWarmDelay is the drain timing: smaller = more pressure.
	SemiWarmDelay time.Duration
	// AvgLocalMB is the average node-local memory (falls with pressure).
	AvgLocalMB float64
	// P50 and P99 are end-to-end latencies in seconds.
	P50, P99 float64
	// StallShareP99 is the fraction of the P99 invocation's latency spent
	// in remote-memory phases (fault-stall + restore + backlog).
	StallShareP99 float64
	// MeanStallShare is the remote-memory share of mean latency.
	MeanStallShare float64
	// Analysis is the step's full attribution (per-function tables, start
	// kinds), for -format json consumers.
	Analysis *span.Analysis
}

// AttribPressureOptions sizes the study.
type AttribPressureOptions struct {
	Duration time.Duration
	Seed     int64
}

// stallShare extracts the remote-memory share of a breakdown's total.
func stallShare(bd span.Breakdown) float64 {
	if bd.Total <= 0 {
		return 0
	}
	remote := bd.Phase[span.PhaseFaultStall] + bd.Phase[span.PhaseRestore] +
		bd.Phase[span.PhaseBacklog]
	return float64(remote) / float64(bd.Total)
}

// AttribPressure sweeps memory pressure by shrinking the semi-warm drain
// delay (each container starts offloading sooner after idling) and
// attributes every request's latency to phases. Expected shape: average
// local memory falls monotonically and the remote-stall share of latency
// rises monotonically — Fig. 2's "latency damage", now with the damage
// pinned to the restore phase instead of inferred from end-to-end deltas.
func AttribPressure(opt AttribPressureOptions) []AttribRow {
	if opt.Duration <= 0 {
		opt.Duration = 20 * time.Minute
	}
	prof := workload.Bert()
	inv := trace.GenerateFunction("bert", opt.Duration, 25*time.Second, false, opt.Seed).Invocations
	delays := []time.Duration{
		2 * time.Minute, time.Minute, 30 * time.Second, 10 * time.Second, 2 * time.Second,
	}
	recs := make([]*span.Recorder, len(delays))
	scs := make([]Scenario, len(delays))
	for i, d := range delays {
		recs[i] = span.NewRecorder(1 << 14)
		scs[i] = Scenario{
			Profile:     prof,
			Invocations: inv,
			Duration:    opt.Duration,
			Policy:      FaaSMem,
			CoreConfig: core.Config{
				// Pin the drain timing: ignore collected reuse intervals so
				// the delay is the pressure knob, not a starting estimate.
				MinIntervalSamples:    1 << 30,
				FallbackSemiWarmDelay: d,
			},
			Seed:  opt.Seed,
			Spans: recs[i],
		}
	}
	outs := RunScenarios(scs)
	rows := make([]AttribRow, len(delays))
	for i, d := range delays {
		an := span.Analyze(recs[i].Invocations())
		row := AttribRow{
			SemiWarmDelay: d,
			AvgLocalMB:    outs[i].AvgLocalMB,
			P50:           outs[i].P50,
			P99:           outs[i].P99,
			Analysis:      an,
		}
		for _, bd := range an.Overall.Breakdowns {
			if bd.Q == 0.99 {
				row.StallShareP99 = stallShare(bd)
			}
		}
		if an.Overall.MeanTotal > 0 {
			remote := an.Overall.MeanPhase[span.PhaseFaultStall] +
				an.Overall.MeanPhase[span.PhaseRestore] +
				an.Overall.MeanPhase[span.PhaseBacklog]
			row.MeanStallShare = remote / an.Overall.MeanTotal
		}
		rows[i] = row
	}
	return rows
}

// PrintAttribPressure renders the pressure sweep.
func PrintAttribPressure(w io.Writer, rows []AttribRow) {
	fmt.Fprintln(w, "Extension (Fig. 2 revisited): latency attribution under rising memory pressure (Bert, FaaSMem)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.SemiWarmDelay.String(),
			fmt.Sprintf("%.0f MB", r.AvgLocalMB),
			fmt.Sprintf("%.3fs", r.P50),
			fmt.Sprintf("%.3fs", r.P99),
			fmt.Sprintf("%.1f%%", 100*r.MeanStallShare),
			fmt.Sprintf("%.1f%%", 100*r.StallShareP99),
		}
	}
	writeTable(w, []string{"semi-warm delay", "avg local", "P50", "P99", "stall share (mean)", "stall share (P99)"}, table)
}
