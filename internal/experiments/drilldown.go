package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/drilldown"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/fastswap"
	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// DrilldownCell is one fault-intensity cell of the ext-drilldown sweep: the
// rack run's latency spike dereferenced all the way down — spike window →
// worst exemplar → dominant critical-path phase — plus the byte-flow
// ledger's conservation verdict for the run.
type DrilldownCell struct {
	// Intensity scales the injected fault plan; 0 is fault-free.
	Intensity float64 `json:"intensity"`
	// SpikeWindow is the worst-P99 window; SpikeStartSec its virtual start
	// and SpikeP99Ms its latency.
	SpikeWindow   int64   `json:"spike_window"`
	SpikeStartSec float64 `json:"spike_start_sec"`
	SpikeP99Ms    float64 `json:"spike_p99_ms"`
	// WorstLatencyMs, WorstFunction, WorstKind identify the spike window's
	// single worst retained request; DominantPhase is the largest phase on
	// its critical path — the phase the spike is attributed to.
	WorstLatencyMs float64 `json:"worst_latency_ms"`
	WorstFunction  string  `json:"worst_function"`
	WorstKind      string  `json:"worst_kind"`
	DominantPhase  string  `json:"dominant_phase"`
	// ExemplarCells counts retained (window, node, tenant) cells; FlowRows
	// the ledger's populated cells.
	ExemplarCells int `json:"exemplar_cells"`
	FlowRows      int `json:"flow_rows"`
	// AuditOK is the ledger's conservation self-check; AuditChecks how many
	// occupancy checkpoints it covered.
	AuditOK     bool  `json:"audit_ok"`
	AuditChecks int64 `json:"audit_checks"`
	// Explanation is the full drill-down of the spike window.
	Explanation *drilldown.Explanation `json:"explanation,omitempty"`
}

// DrilldownOptions sizes the ext-drilldown sweep.
type DrilldownOptions struct {
	// Intensities are the fault-plan intensities swept. Default {0, 1}.
	Intensities []float64
	// Nodes is the rack's compute-node count. Default 3.
	Nodes int
	// Duration of the generated trace. Default 10 m.
	Duration time.Duration
	// KeepAlive of idle containers. Default 8 m.
	KeepAlive time.Duration
	// Window is the rollup window shared by the timeline and exemplar
	// recorders (cells align by index). Default 30 s.
	Window time.Duration
	// K is the worst-K exemplar retention depth. Default 3.
	K int
	// Seed drives the workload; FaultSeed drives the fault plan.
	Seed, FaultSeed int64
}

// Drilldown replays the resilience rack with both a time-series recorder and
// a tail-exemplar recorder attached, then drills each intensity's worst
// window down to flows, exemplars, and phase attribution. Each cell owns its
// engine and recorders, so rows are bit-identical at any -scenario-workers
// width (the CI determinism gate diffs widths 1 and 8).
func Drilldown(opt DrilldownOptions) []DrilldownCell {
	if len(opt.Intensities) == 0 {
		opt.Intensities = []float64{0, 1}
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 3
	}
	if opt.Duration <= 0 {
		opt.Duration = 10 * time.Minute
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 8 * time.Minute
	}
	if opt.Window <= 0 {
		opt.Window = 30 * time.Second
	}
	horizon := opt.Duration + opt.KeepAlive + time.Minute

	run := func(intensity float64) DrilldownCell {
		plan := faultinject.New(faultinject.Config{
			Horizon:   horizon,
			Intensity: intensity,
			Seed:      opt.FaultSeed,
		})
		rec := timeseries.NewRecorder(timeseries.Config{Window: opt.Window})
		exm := exemplar.NewRecorder(exemplar.Config{Window: opt.Window, K: opt.K})
		nodeCfg := memnode.Config{DRAMBytes: 512 << 20, SpillBytes: 512 << 20}
		e := simtime.NewEngine()
		c := cluster.New(e, cluster.Config{
			Nodes: opt.Nodes,
			Node: faas.Config{
				KeepAliveTimeout: opt.KeepAlive,
				Seed:             opt.Seed,
				Swap:             fastswap.Config{FallbackReadLatency: 50 * time.Microsecond},
				RequestLogSize:   1 << 16,
				Timeline:         rec,
				Exemplars:        exm,
			},
			Pool: rmem.Config{Node: &nodeCfg, Faults: plan},
		}, func() policy.Policy { return core.New(core.Config{}) })
		for i, prof := range workload.Profiles() {
			p := *prof
			fn := trace.GenerateFunction(p.Name, opt.Duration,
				time.Duration(3+i)*time.Second, true, opt.Seed+int64(i))
			if len(fn.Invocations) == 0 {
				continue
			}
			c.Register(p.Name, &p)
			c.ScheduleInvocations(p.Name, fn.Invocations)
		}
		e.RunUntil(horizon)

		cells := exm.Cells()
		cell := DrilldownCell{
			Intensity:     intensity,
			ExemplarCells: len(cells),
			FlowRows:      len(rec.FlowRows()),
		}
		audit := timeseries.AuditFlows(rec)
		cell.AuditOK = audit.OK
		cell.AuditChecks = audit.Checks
		ex, err := drilldown.Explain(drilldown.Run{
			Timeline:  timeseries.TakeSnapshot(rec),
			Exemplars: cells,
		}, -1)
		if err != nil {
			return cell
		}
		cell.Explanation = ex
		cell.SpikeWindow = ex.Window
		cell.SpikeStartSec = ex.StartSec
		if ex.Summary != nil {
			cell.SpikeP99Ms = ex.Summary.P99Ms
		}
		for _, bd := range ex.Exemplars {
			for _, top := range bd.Top {
				if top.LatencyMs > cell.WorstLatencyMs {
					cell.WorstLatencyMs = top.LatencyMs
					cell.WorstFunction = top.Function
					cell.WorstKind = top.Kind
					cell.DominantPhase = top.Dominant
				}
			}
		}
		return cell
	}

	cells := make([]DrilldownCell, len(opt.Intensities))
	runGrid(len(cells), func(i int) { cells[i] = run(opt.Intensities[i]) })
	return cells
}

// PrintDrilldown renders the spike → exemplar → phase attribution chain, one
// row per intensity.
func PrintDrilldown(w io.Writer, cells []DrilldownCell) {
	fmt.Fprintln(w, "Extension: exemplar drill-down — worst window to dominant phase per fault intensity")
	fmt.Fprintln(w)
	table := make([][]string, len(cells))
	for i, c := range cells {
		audit := "OK"
		if !c.AuditOK {
			audit = "VIOLATED"
		}
		table[i] = []string{
			fmt.Sprintf("%.2f", c.Intensity),
			fmt.Sprintf("%.0f", c.SpikeStartSec),
			fmt.Sprintf("%.2f", c.SpikeP99Ms),
			fmt.Sprintf("%.2f", c.WorstLatencyMs),
			c.WorstFunction,
			c.WorstKind,
			c.DominantPhase,
			fmt.Sprintf("%d", c.ExemplarCells),
			fmt.Sprintf("%d", c.FlowRows),
			fmt.Sprintf("%s/%d", audit, c.AuditChecks),
		}
	}
	writeTable(w, []string{
		"intensity", "spike t(s)", "p99(ms)", "worst(ms)", "function", "start",
		"dominant", "cells", "flows", "audit",
	}, table)
	for _, c := range cells {
		ex := c.Explanation
		if ex == nil || len(ex.Exemplars) == 0 {
			continue
		}
		fmt.Fprintf(w, "\nintensity %.2f, window %d:\n", c.Intensity, ex.Window)
		for _, bd := range ex.Exemplars {
			for i, top := range bd.Top {
				if i > 0 {
					break // worst per cell keeps the digest short
				}
				phases := ""
				for j, p := range top.Phases {
					if j > 0 {
						phases += ", "
					}
					phases += fmt.Sprintf("%s %.1fms", p.Phase, p.Ms)
				}
				fmt.Fprintf(w, "  %s: %.2fms %s  [%s]\n",
					bd.Tenant, top.LatencyMs, top.Kind, phases)
			}
		}
	}
}
