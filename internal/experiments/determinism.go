package experiments

import (
	"math/rand"
	"reflect"
)

// This file holds the reusable metamorphic-testing helpers behind the
// package's determinism contract: every grid harness must emit bit-identical
// rows regardless of the scenario fan-out width (SetWorkers) and regardless
// of the order scenarios are enumerated in. Tests here and in downstream
// packages (CI's determinism diff, the gateway) call these instead of
// hand-rolling the width loop.

// DivergentWidth evaluates run() once per width, forcing the scenario
// fan-out to that width for the duration of the call, and returns the first
// width whose result is not reflect.DeepEqual to the first width's, or -1
// when every width agrees. The previous worker setting is restored before
// returning. run must be a pure function of the fan-out width — i.e. a
// complete grid evaluation returning its rows.
func DivergentWidth(widths []int, run func() any) int {
	if len(widths) == 0 {
		return -1
	}
	prev := int(workerCount.Load())
	defer SetWorkers(prev)

	SetWorkers(widths[0])
	want := run()
	for _, w := range widths[1:] {
		SetWorkers(w)
		if got := run(); !reflect.DeepEqual(want, got) {
			return w
		}
	}
	return -1
}

// PermuteScenarios returns scs evaluated in a seed-driven shuffled order
// with the outcomes mapped back to input order, so the result is directly
// comparable to RunScenarios(scs). Grid harnesses address result slots by
// index, so enumeration order must never leak into the rows; this is the
// metamorphic half of the determinism contract.
func PermuteScenarios(scs []Scenario, seed int64) []Outcome {
	perm := rand.New(rand.NewSource(seed)).Perm(len(scs))
	shuffled := make([]Scenario, len(scs))
	for i, j := range perm {
		shuffled[i] = scs[j]
	}
	shuffledOut := RunScenarios(shuffled)
	out := make([]Outcome, len(scs))
	for i, j := range perm {
		out[j] = shuffledOut[i]
	}
	return out
}
