package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/mglru"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// ---------------------------------------------------------------- Figure 4

// Fig4Row reports one runtime's inactive memory after a hello-world request.
type Fig4Row struct {
	Platform   workload.Platform
	Language   workload.Language
	InactiveMB float64
}

// Fig4 reproduces Figure 4: the inactive runtime-segment memory of
// hello-world containers across OpenWhisk and Azure base images. A container
// executes one request; pages of the runtime segment whose Access bit never
// flipped afterwards are the inactive runtime memory (paper: OpenWhisk
// Python 24 MB, Java 57 MB; Azure > 100 MB each).
func Fig4() []Fig4Row {
	type cell struct {
		pl   workload.Platform
		lang workload.Language
	}
	var cells []cell
	for _, pl := range []workload.Platform{workload.OpenWhisk, workload.Azure} {
		for _, lang := range []workload.Language{workload.NodeJS, workload.Python, workload.Java} {
			cells = append(cells, cell{pl, lang})
		}
	}
	rows := make([]Fig4Row, len(cells))
	runGrid(len(cells), func(i int) {
		prof := workload.HelloWorld(cells[i].pl, cells[i].lang)
		e := simtime.NewEngine()
		p := faas.New(e, faas.Config{KeepAliveTimeout: time.Minute, Seed: 1}, policy.NoOffload{})
		f := p.Register(prof.Name, prof)
		p.ScheduleInvocations(prof.Name, []simtime.Time{0})
		e.RunUntil(30 * time.Second)
		if f.LiveContainers() != 1 {
			panic("fig4: container did not survive to measurement")
		}
		// Inactive pages of the runtime segment = allocated during
		// runtime loading, never re-accessed.
		c := findContainer(f)
		inactive := c.Space().CountInRange(c.RuntimeRange(), pagemem.Inactive)
		rows[i] = Fig4Row{
			Platform:   cells[i].pl,
			Language:   cells[i].lang,
			InactiveMB: float64(inactive) * float64(c.Space().PageSize()) / 1e6,
		}
	})
	return rows
}

// findContainer retrieves a live idle container of f for inspection.
func findContainer(f *faas.Function) *faas.Container {
	c := f.IdleContainer()
	if c == nil {
		panic("experiments: no idle container to inspect")
	}
	return c
}

// PrintFig4 renders Figure 4.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: inactive runtime-segment memory of hello-world containers")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{r.Platform.String(), r.Language.String(), fmt.Sprintf("%.0f MB", r.InactiveMB)}
	}
	writeTable(w, []string{"platform", "runtime", "inactive memory"}, table)
}

// ---------------------------------------------------------------- Figure 6

// Fig6Row is one sample of the BERT access-scan timeline.
type Fig6Row struct {
	// Time since container start, seconds.
	TimeSec float64
	// Phase labels the lifecycle stage ("init" or "request").
	Phase string
	// ResidentMB is the allocated footprint at this instant.
	ResidentMB float64
	// AccessedMB is how much memory this sample accessed (allocation during
	// init; per-request touch during execution).
	AccessedMB float64
}

// Fig6Options sizes the scan.
type Fig6Options struct {
	// Requests after initialization. Default 10.
	Requests int
	// Gap between requests. Default 1 s.
	Gap  time.Duration
	Seed int64
}

// Fig6 reproduces Figure 6: BERT's memory footprint and access pattern over
// time — initialization allocates ~1 GB (some released), and each request
// re-accesses ~610 MB of which ~400 MB are init-stage hot pages.
func Fig6(opt Fig6Options) []Fig6Row {
	if opt.Requests <= 0 {
		opt.Requests = 10
	}
	if opt.Gap <= 0 {
		opt.Gap = time.Second
	}
	prof := workload.Bert()
	rng := rand.New(rand.NewSource(opt.Seed))
	var rows []Fig6Row

	// Init phase: the paper's scan shows allocation climbing to ~1000 MB
	// during the first ~5 s and settling at the resident init footprint.
	const peakMB = 1000.0
	resident := float64(prof.InitBytes) / 1e6
	initSec := prof.InitTime.Seconds()
	steps := 10
	for i := 1; i <= steps; i++ {
		t := initSec * float64(i) / float64(steps)
		alloc := peakMB * float64(i) / float64(steps)
		if i == steps {
			alloc = resident
		}
		rows = append(rows, Fig6Row{
			TimeSec:    t,
			Phase:      "init",
			ResidentMB: alloc,
			AccessedMB: peakMB * 1 / float64(steps),
		})
	}
	// Requests: runtime hot + init hot + jitter + exec temporaries.
	start := initSec + 3 // idle gap before the first request, as in the scan
	for i := 0; i < opt.Requests; i++ {
		touches := prof.RequestTouches(rng)
		var initTouched int64
		for _, sp := range touches.Init {
			initTouched += sp.Len()
		}
		var runtimeTouched int64
		for _, sp := range touches.Runtime {
			runtimeTouched += sp.Len()
		}
		accessed := float64(initTouched+runtimeTouched+prof.ExecBytes) / 1e6
		rows = append(rows, Fig6Row{
			TimeSec:    start + float64(i)*opt.Gap.Seconds(),
			Phase:      "request",
			ResidentMB: resident + float64(prof.RuntimeBytes)/1e6,
			AccessedMB: accessed,
		})
	}
	return rows
}

// PrintFig6 renders the BERT scan series.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6: BERT access-bit scan (footprint and per-sample accessed memory)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%.1fs", r.TimeSec),
			r.Phase,
			fmt.Sprintf("%.0f MB", r.ResidentMB),
			fmt.Sprintf("%.0f MB", r.AccessedMB),
		}
	}
	writeTable(w, []string{"time", "phase", "resident", "accessed"}, table)
}

// ---------------------------------------------------------------- Figure 9

// Fig9Span is one cached-object strip within a request's access scan.
type Fig9Span struct {
	StartMB, EndMB float64
}

// Fig9Row is one request's cached-object accesses in the Web benchmark.
type Fig9Row struct {
	Request int
	// SharedMB is the shared framework/template touch.
	SharedMB float64
	// Objects are the Pareto-selected cached pages' spans within the init
	// segment — the vertical bars of one column in the paper's plot.
	Objects []Fig9Span
}

// Fig9 reproduces Figure 9: each Web request's access scan shows a shared
// base plus a handful of cached HTML objects selected by Pareto-distributed
// idx — the vertical strips of the paper's plot.
func Fig9(requests int, seed int64) []Fig9Row {
	if requests <= 0 {
		requests = 25
	}
	prof := workload.Web()
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Fig9Row, 0, requests)
	for i := 0; i < requests; i++ {
		touches := prof.RequestTouches(rng)
		row := Fig9Row{Request: i}
		if len(touches.Init) > 0 {
			row.SharedMB = float64(touches.Init[0].Len()) / 1e6
		}
		for _, sp := range touches.Init[1:] {
			row.Objects = append(row.Objects, Fig9Span{
				StartMB: float64(sp.Start) / 1e6,
				EndMB:   float64(sp.End) / 1e6,
			})
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintFig9 renders the Web scan strips.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9: Web access scan (per-request cached-object strips)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		spans := make([]string, len(r.Objects))
		for j, o := range r.Objects {
			spans[j] = fmt.Sprintf("%.1f-%.1f", o.StartMB, o.EndMB)
		}
		table[i] = []string{
			fmt.Sprintf("%d", r.Request),
			fmt.Sprintf("%.0f MB", r.SharedMB),
			strings.Join(spans, " "),
		}
	}
	writeTable(w, []string{"request", "shared", "object spans (MB)"}, table)
}

// ---------------------------------------------------------------- Figure 15

// Fig15Row reports the wall-clock overhead of Pucket operations for one
// benchmark's footprint.
type Fig15Row struct {
	Bench string
	// RuntimeInitBarrier is the cost of inserting the Runtime-Init barrier
	// (stamping all runtime-segment pages).
	RuntimeInitBarrier time.Duration
	// InitExecBarrier is the cost of inserting the Init-Execution barrier.
	InitExecBarrier time.Duration
	// Rollback is the cost of one periodic rollback over the hot pool.
	Rollback time.Duration
}

// Fig15 reproduces Figure 15: the blocking cost of time-barrier insertion
// and periodic rollback, measured in wall-clock time on this
// implementation's data structures (the paper: ≤ 2.5 ms for micro
// benchmarks, ≤ 10 ms for applications; rollback ≤ 7.5 ms).
func Fig15() []Fig15Row {
	var rows []Fig15Row
	for _, prof := range workload.Profiles() {
		space := pagemem.NewSpace(pagemem.DefaultPageSize)
		lru := mglru.New(space)

		space.AllocBytes(pagemem.SegRuntime, prof.RuntimeBytes)
		t0 := time.Now()
		_, runtimeRange := lru.InsertBarrier()
		d1 := time.Since(t0)

		space.AllocBytes(pagemem.SegInit, prof.InitBytes)
		t1 := time.Now()
		_, initRange := lru.InsertBarrier()
		d2 := time.Since(t1)

		// Populate the hot pool with the per-request hot set, then measure a
		// full rollback (demote hot pages to their Puckets).
		hotRuntime := int(prof.RuntimeHotBytes / int64(space.PageSize()))
		for id := runtimeRange.Start; id < runtimeRange.Start+pagemem.PageID(hotRuntime) && id < runtimeRange.End; id++ {
			space.SetState(id, pagemem.Hot)
			lru.Promote(id)
		}
		hotInit := int(prof.InitHotBytes / int64(space.PageSize()))
		for id := initRange.Start; id < initRange.Start+pagemem.PageID(hotInit) && id < initRange.End; id++ {
			space.SetState(id, pagemem.Hot)
			lru.Promote(id)
		}
		t2 := time.Now()
		for id := runtimeRange.Start; id < runtimeRange.End; id++ {
			if space.State(id) == pagemem.Hot {
				space.SetState(id, pagemem.Inactive)
				lru.Demote(id, 0)
			}
		}
		for id := initRange.Start; id < initRange.End; id++ {
			if space.State(id) == pagemem.Hot {
				space.SetState(id, pagemem.Inactive)
				lru.Demote(id, 1)
			}
		}
		d3 := time.Since(t2)

		rows = append(rows, Fig15Row{
			Bench:              prof.Name,
			RuntimeInitBarrier: d1,
			InitExecBarrier:    d2,
			Rollback:           d3,
		})
	}
	return rows
}

// PrintFig15 renders the overhead table.
func PrintFig15(w io.Writer, rows []Fig15Row) {
	fmt.Fprintln(w, "Figure 15: overhead of time-barrier insertion and periodic rollback")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Bench,
			fmt.Sprintf("%.3f ms", float64(r.RuntimeInitBarrier)/1e6),
			fmt.Sprintf("%.3f ms", float64(r.InitExecBarrier)/1e6),
			fmt.Sprintf("%.3f ms", float64(r.Rollback)/1e6),
		}
	}
	writeTable(w, []string{"benchmark", "runtime-init barrier", "init-exec barrier", "rollback"}, table)
}
