package experiments

import (
	"reflect"
	"testing"

	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// sinkState snapshots everything the shared sinks retained.
type sinkState struct {
	events  []telemetry.Event
	dropped uint64
	invs    []span.Invocation
	bgs     []span.Background
	flight  uint64
}

// runWithSharedSinks installs fresh process-default sinks, runs the grid at
// the given width, and returns what the sinks retained.
func runWithSharedSinks(t *testing.T, scs []Scenario, width int) sinkState {
	t.Helper()
	tr := telemetry.NewTracer(1 << 14)
	sp := span.NewRecorder(1 << 12)
	tl := timeseries.NewRecorder(timeseries.Config{})
	telemetry.SetDefault(telemetry.Hub{Tracer: tr})
	span.SetDefault(sp)
	timeseries.SetDefault(tl)
	defer func() {
		telemetry.SetDefault(telemetry.Hub{})
		span.SetDefault(nil)
		timeseries.SetDefault(nil)
	}()
	prev := Workers()
	SetWorkers(width)
	defer SetWorkers(prev)
	RunScenarios(scs)
	return sinkState{
		events:  tr.Events(),
		dropped: tr.Dropped(),
		invs:    sp.Invocations(),
		bgs:     sp.Backgrounds(),
		flight:  tl.FlightTotal(),
	}
}

// TestSharedSinksDeterministicAcrossWidths is the shard-merge contract: a
// grid recording into process-default telemetry/span/timeline sinks retains
// bit-identical events whether it ran serially or fanned out — shards merge
// back in scenario-index order, which reproduces the serial recording order.
func TestSharedSinksDeterministicAcrossWidths(t *testing.T) {
	scs := gridScenarios(t)
	want := runWithSharedSinks(t, scs, 1)
	if len(want.events) == 0 || len(want.invs) == 0 {
		t.Fatalf("serial run retained no telemetry (events=%d invs=%d); test is vacuous",
			len(want.events), len(want.invs))
	}
	for _, w := range []int{2, 8} {
		got := runWithSharedSinks(t, scs, w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shared-sink contents differ between workers=1 and workers=%d:\n"+
				"events %d vs %d, dropped %d vs %d, invs %d vs %d, bgs %d vs %d, flight %d vs %d",
				w, len(want.events), len(got.events), want.dropped, got.dropped,
				len(want.invs), len(got.invs), len(want.bgs), len(got.bgs),
				want.flight, got.flight)
		}
	}
}
