package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/metrics"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/sharedmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/workload"
)

// StatefulRow is one cell of the ext-stateful sweep: one workflow shape run
// repeatedly on a rack, with intermediate state either passed through
// pool-backed shared regions ("pool") or re-derived from storage by every
// consumer ("reinit" — the stateless baseline real workflow engines pay).
type StatefulRow struct {
	// Workflow names the DAG shape; Mode is "pool" or "reinit"; Width is the
	// fan-out width applied to the shape's replicated stages (0 = the shape's
	// declared width); PressureMB is the pool's DRAM tier size.
	Workflow   string `json:"workflow"`
	Mode       string `json:"mode"`
	Width      int    `json:"width"`
	PressureMB int    `json:"pressure_mb"`
	// Runs / Completed count started and fully-drained workflow runs;
	// Invocations the completed stage requests across them.
	Runs        int `json:"runs"`
	Completed   int `json:"completed"`
	Invocations int `json:"invocations"`
	// MeanRunSec / P99RunSec summarize end-to-end workflow latency;
	// P99StageSec the per-stage request tail.
	MeanRunSec  float64 `json:"mean_run_sec"`
	P99RunSec   float64 `json:"p99_run_sec"`
	P99StageSec float64 `json:"p99_stage_sec"`
	// StateInSec / StateOutSec are the critical-path state-passing costs;
	// StateInMB / StateOutMB the bytes moved.
	StateInSec  float64 `json:"state_in_sec"`
	StateOutSec float64 `json:"state_out_sec"`
	StateInMB   float64 `json:"state_in_mb"`
	StateOutMB  float64 `json:"state_out_mb"`
	// Regions / RegionMaps / CowBreaks are the shared-region manager's
	// lifecycle counters; Replays / Reinits the consumers that re-derived
	// inputs (lost region / passing off or shortfall).
	Regions    int `json:"regions"`
	RegionMaps int `json:"region_maps"`
	CowBreaks  int `json:"cow_breaks"`
	Replays    int `json:"replays"`
	Reinits    int `json:"reinits"`
	// ShareReadMB is the byte-flow ledger's share-read traffic; FlowRows its
	// populated cells; AuditOK / AuditChecks the conservation verdict.
	ShareReadMB float64 `json:"share_read_mb"`
	FlowRows    int     `json:"flow_rows"`
	AuditOK     bool    `json:"audit_ok"`
	AuditChecks int64   `json:"audit_checks"`
	// Drained reports that every region (CoW clones included) was freed and
	// the region manager's refcount invariants held at run end.
	Drained bool `json:"drained"`
}

// StatefulOptions sizes the ext-stateful sweep.
type StatefulOptions struct {
	// Workflows are the DAG shapes compared in both modes.
	// Default: every built-in shape.
	Workflows []string
	// Widths extends the grid with pool-mode fan-out scaling of the "fanout"
	// shape. Default {8, 16}.
	Widths []int
	// PressuresMB extends the grid with pool-mode DRAM-tier pressure on the
	// "pipeline" shape (smaller tier → more spill/compression on the map
	// path). Default {64, 16}.
	PressuresMB []int
	// Runs is the number of back-to-back workflow runs per cell. Default 6.
	Runs int
	// Gap separates consecutive run starts. Default 2 s.
	Gap time.Duration
	// Nodes is the rack's compute-node count. Default 2.
	Nodes int
	// KeepAlive of idle containers. Default 2 m.
	KeepAlive time.Duration
	// Seed drives workload randomness.
	Seed int64
}

// statefulCell is one grid point of the sweep.
type statefulCell struct {
	wf         string
	pool       bool
	width      int
	pressureMB int
}

// Stateful measures pool-backed state passing against cold re-derivation
// across the built-in workflow shapes, then scales fan-out width and pool
// pressure in pool mode. Each cell owns its engine and recorders, so rows
// are bit-identical at any -scenario-workers width.
func Stateful(opt StatefulOptions) []StatefulRow {
	if len(opt.Workflows) == 0 {
		opt.Workflows = workload.WorkflowNames()
	}
	if len(opt.Widths) == 0 {
		opt.Widths = []int{8, 16}
	}
	if len(opt.PressuresMB) == 0 {
		opt.PressuresMB = []int{64, 16}
	}
	if opt.Runs <= 0 {
		opt.Runs = 6
	}
	if opt.Gap <= 0 {
		opt.Gap = 2 * time.Second
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 2
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 2 * time.Minute
	}

	const defaultPressureMB = 512
	var cells []statefulCell
	for _, wf := range opt.Workflows {
		for _, pool := range []bool{true, false} {
			cells = append(cells, statefulCell{wf, pool, 0, defaultPressureMB})
		}
	}
	for _, w := range opt.Widths {
		cells = append(cells, statefulCell{"fanout", true, w, defaultPressureMB})
	}
	for _, p := range opt.PressuresMB {
		cells = append(cells, statefulCell{"pipeline", true, 0, p})
	}

	rows := make([]StatefulRow, len(cells))
	runGrid(len(rows), func(i int) { rows[i] = runStatefulCell(opt, cells[i]) })
	return rows
}

// RunWorkflowCell runs one (workflow, mode, width, pressure) cell on its own
// engine — the gateway's /run uses this for single workflow requests. pool
// selects region-backed state passing; width 0 keeps the shape's declared
// fan-out; pressureMB 0 uses the sweep default.
func RunWorkflowCell(opt StatefulOptions, workflow string, pool bool, width, pressureMB int) StatefulRow {
	if opt.Runs <= 0 {
		opt.Runs = 4
	}
	if opt.Gap <= 0 {
		opt.Gap = 2 * time.Second
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 2
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 2 * time.Minute
	}
	if pressureMB <= 0 {
		pressureMB = 512
	}
	return runStatefulCell(opt, statefulCell{workflow, pool, width, pressureMB})
}

// runStatefulCell runs one (workflow, mode, width, pressure) cell.
func runStatefulCell(opt StatefulOptions, cell statefulCell) StatefulRow {
	wf, err := workload.WorkflowByName(cell.wf)
	if err != nil {
		panic(err)
	}
	if cell.width > 0 {
		// Scale the shape's replicated stages to the requested width.
		scaled := *wf
		scaled.Stages = append([]workload.Stage(nil), wf.Stages...)
		for i := range scaled.Stages {
			if scaled.Stages[i].Width() > 1 {
				scaled.Stages[i].Replicas = cell.width
			}
		}
		wf = &scaled
	}

	rec := timeseries.NewRecorder(timeseries.Config{Window: 10 * time.Second})
	nodeCfg := memnode.Config{
		DRAMBytes:  int64(cell.pressureMB) << 20,
		SpillBytes: 2 << 30,
	}
	e := simtime.NewEngine()
	c := cluster.New(e, cluster.Config{
		Nodes: opt.Nodes,
		Node: faas.Config{
			KeepAliveTimeout: opt.KeepAlive,
			Seed:             opt.Seed,
			RequestLogSize:   1 << 14,
			Timeline:         rec,
		},
		Pool: rmem.Config{Node: &nodeCfg},
	}, func() policy.Policy { return core.New(core.Config{}) })

	pageSize := int64(c.Nodes()[0].Config().PageSize)
	mgr := sharedmem.New(sharedmem.Config{PageSize: pageSize, Pool: c.Pool()})
	we, err := faas.NewWorkflowEngine(faas.WorkflowConfig{
		Engine:       e,
		Shared:       mgr,
		PageSize:     pageSize,
		Register:     func(id string, prof *workload.Profile) { c.Register(id, prof) },
		Invoke:       c.InvokeStage,
		StatePassing: cell.pool,
	}, wf)
	if err != nil {
		panic(err)
	}

	// Back-to-back runs: each run starts Gap after the previous one drains,
	// so later runs hit warm containers — the steady state a workflow engine
	// actually operates in.
	var runLat metrics.Sampler
	var startRun func(k int)
	startRun = func(k int) {
		we.Run(func(start, end simtime.Time) {
			runLat.AddDuration(time.Duration(end - start))
			if k+1 < opt.Runs {
				e.After(opt.Gap, func(*simtime.Engine) { startRun(k + 1) })
			}
		})
	}
	startRun(0)
	// Generous horizon: chained runs finish far earlier; the tail lets
	// keep-alives expire so the rack drains.
	e.RunUntil(simtime.Time(opt.Runs)*simtime.Time(opt.Gap+time.Minute) + simtime.Time(opt.KeepAlive))

	st := we.Stats()
	ms := mgr.Stats()
	mode := "reinit"
	if cell.pool {
		mode = "pool"
	}
	row := StatefulRow{
		Workflow:    cell.wf,
		Mode:        mode,
		Width:       cell.width,
		PressureMB:  cell.pressureMB,
		Runs:        st.Runs,
		Completed:   st.Completed,
		Invocations: st.Invocations,
		MeanRunSec:  runLat.Mean(),
		P99RunSec:   runLat.P99(),
		StateInSec:  st.StateInTime.Seconds(),
		StateOutSec: st.StateOutTime.Seconds(),
		StateInMB:   metrics.MB(st.StateInBytes),
		StateOutMB:  metrics.MB(st.StateOutBytes),
		Regions:     ms.Created,
		RegionMaps:  ms.Maps,
		CowBreaks:   st.CowBreaks,
		Replays:     st.Replays,
		Reinits:     st.Reinits,
		Drained:     mgr.Drained() && mgr.CheckInvariants() == nil,
	}
	var stageLat metrics.Sampler
	for _, n := range c.Nodes() {
		for _, r := range n.RequestLog().Records() {
			stageLat.AddDuration(r.Latency)
		}
	}
	row.P99StageSec = stageLat.P99()
	for _, fr := range rec.FlowRows() {
		if fr.Flow == timeseries.FlowShareRead.String() {
			row.ShareReadMB += metrics.MB(fr.Bytes)
		}
	}
	row.FlowRows = len(rec.FlowRows())
	audit := timeseries.AuditFlows(rec)
	row.AuditOK = audit.OK
	row.AuditChecks = audit.Checks
	return row
}

// PrintStateful renders the sweep.
func PrintStateful(w io.Writer, rows []StatefulRow) {
	fmt.Fprintln(w, "Extension: stateful workflows — pool-backed state passing vs re-initialization")
	table := make([][]string, len(rows))
	for i, r := range rows {
		audit := "OK"
		if !r.AuditOK {
			audit = "VIOLATED"
		}
		drained := "yes"
		if !r.Drained {
			drained = "NO"
		}
		width := "-"
		if r.Width > 0 {
			width = fmt.Sprintf("%d", r.Width)
		}
		table[i] = []string{
			r.Workflow,
			r.Mode,
			width,
			fmt.Sprintf("%d", r.PressureMB),
			fmt.Sprintf("%d/%d", r.Completed, r.Runs),
			fmt.Sprintf("%.3fs", r.MeanRunSec),
			fmt.Sprintf("%.3fs", r.P99RunSec),
			fmt.Sprintf("%.3fs", r.P99StageSec),
			fmt.Sprintf("%.3fs", r.StateInSec),
			fmt.Sprintf("%.1f", r.StateInMB),
			fmt.Sprintf("%d", r.Regions),
			fmt.Sprintf("%d", r.RegionMaps),
			fmt.Sprintf("%d", r.CowBreaks),
			fmt.Sprintf("%d", r.Reinits),
			fmt.Sprintf("%.1f", r.ShareReadMB),
			fmt.Sprintf("%s/%d", audit, r.AuditChecks),
			drained,
		}
	}
	writeTable(w, []string{
		"workflow", "mode", "width", "dram MB", "done", "mean", "P99",
		"stage P99", "state-in", "in MB", "regions", "maps", "cow",
		"reinits", "share-read MB", "audit", "drained",
	}, table)
}
