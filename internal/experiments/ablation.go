package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/metrics"
	"github.com/faasmem/faasmem/internal/report"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// Fig13Row is one variant's latency/memory summary under one trace case.
type Fig13Row struct {
	Case    string // "common" | "bursty"
	Variant PolicyKind
	AvgLat  float64
	P50     float64
	P95     float64
	P99     float64
	// AvgMemMB is the average node-local memory.
	AvgMemMB float64
	// MemVsFaaSMem normalizes memory to the full FaaSMem variant.
	MemVsFaaSMem float64
	// Timeline samples node-local MB every 10 s (populated for the common
	// case, mirroring Fig. 13a's timeline plot).
	Timeline *metrics.Series
}

// Fig13Options sizes the ablation study.
type Fig13Options struct {
	// Duration of each trace. Paper: 4 h common-case window. Default 1 h.
	Duration  time.Duration
	KeepAlive time.Duration
	Seed      int64
	// WithTimeline records the memory timeline series for the common case.
	WithTimeline bool
}

// Fig13 reproduces Figure 13: the Bert benchmark under a common high-load
// trace and a bursty one, ablating Pucket and Semi-warm. The paper's
// findings: disabling Pucket raises memory ~19.3% (common case) but lowers
// latency slightly; disabling Semi-warm raises memory ~28.6% and makes the
// footprint parallel the baseline's; under burst, semi-warm recovers most of
// Pucket's benefit at a later time.
func Fig13(opt Fig13Options) []Fig13Row {
	if opt.Duration <= 0 {
		opt.Duration = time.Hour
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}
	prof := workload.Bert()
	variants := []PolicyKind{Baseline, FaaSMem, FaaSMemNoPucket, FaaSMemNoSemi}

	cases := []struct {
		name   string
		bursty bool
		gap    time.Duration
	}{
		{"common", false, 15 * time.Second},
		{"bursty", true, 10 * time.Second},
	}
	var scs []Scenario
	for _, cs := range cases {
		inv := trace.GenerateFunction("bert", opt.Duration, cs.gap, cs.bursty, opt.Seed).Invocations
		for _, v := range variants {
			sc := Scenario{
				Profile:     prof,
				Invocations: inv,
				Duration:    opt.Duration,
				KeepAlive:   opt.KeepAlive,
				Policy:      v,
				SeedHistory: true,
				Seed:        opt.Seed,
			}
			if opt.WithTimeline && cs.name == "common" {
				sc.MemTimeline = &metrics.Series{}
			}
			scs = append(scs, sc)
		}
	}
	outs := RunScenarios(scs)

	var rows []Fig13Row
	i := 0
	for _, cs := range cases {
		var fmMem float64
		var caseRows []Fig13Row
		for _, v := range variants {
			out := outs[i]
			row := Fig13Row{
				Case:     cs.name,
				Variant:  v,
				AvgLat:   out.AvgLat,
				P50:      out.P50,
				P95:      out.P95,
				P99:      out.P99,
				AvgMemMB: out.AvgLocalMB,
				Timeline: scs[i].MemTimeline,
			}
			i++
			if v == FaaSMem {
				fmMem = out.AvgLocalMB
			}
			caseRows = append(caseRows, row)
		}
		for j := range caseRows {
			if fmMem > 0 {
				caseRows[j].MemVsFaaSMem = caseRows[j].AvgMemMB / fmMem
			}
		}
		rows = append(rows, caseRows...)
	}
	return rows
}

// PrintFig13 renders the ablation table.
func PrintFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintln(w, "Figure 13: ablation of Pucket and Semi-warm (Bert)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Case,
			string(r.Variant),
			fmt.Sprintf("%.3fs", r.AvgLat),
			fmt.Sprintf("%.3fs", r.P50),
			fmt.Sprintf("%.3fs", r.P95),
			fmt.Sprintf("%.3fs", r.P99),
			fmt.Sprintf("%.0f MB", r.AvgMemMB),
			fmt.Sprintf("%.2fx", r.MemVsFaaSMem),
		}
	}
	writeTable(w, []string{"case", "variant", "avg", "P50", "P95", "P99", "avg mem", "vs faasmem"}, table)
	for _, r := range rows {
		if r.Timeline == nil || r.Timeline.Len() == 0 {
			continue
		}
		pts := make([]report.Point, r.Timeline.Len())
		for i := range r.Timeline.Times {
			pts[i] = report.Point{X: r.Timeline.Times[i].Seconds(), Y: r.Timeline.Values[i]}
		}
		fmt.Fprintf(w, "  %s/%s node-local MB over time (s):\n", r.Case, r.Variant)
		fmt.Fprint(w, report.Plot(pts, 56, 7))
	}
}
