// Package experiments contains one harness per figure and table of the
// paper's evaluation (§2, §3, §8). Each harness returns structured rows —
// the same rows/series the paper plots — plus a printer, so cmd/experiments
// can regenerate the whole evaluation and EXPERIMENTS.md can record
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/fastswap"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/metrics"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// PolicyKind names the policies compared throughout the evaluation.
type PolicyKind string

// The compared policies.
const (
	Baseline        PolicyKind = "baseline"
	TMO             PolicyKind = "tmo"
	DAMON           PolicyKind = "damon"
	FaaSMem         PolicyKind = "faasmem"
	FaaSMemNoPucket PolicyKind = "faasmem-w/o-pucket"
	FaaSMemNoSemi   PolicyKind = "faasmem-w/o-semiwarm"
)

// Scenario is one single-function simulation run.
type Scenario struct {
	// Profile is the benchmark to run.
	Profile *workload.Profile
	// Invocations is the request timeline.
	Invocations []simtime.Time
	// Duration is the trace window; the run is measured over
	// Duration + KeepAlive.
	Duration time.Duration
	// KeepAlive is the container keep-alive timeout (paper: 10 minutes).
	KeepAlive time.Duration
	// Policy picks the offloading policy.
	Policy PolicyKind
	// CoreConfig overrides FaaSMem tuning (zero = paper defaults).
	CoreConfig core.Config
	// SeedHistory pre-seeds FaaSMem's semi-warm timing from an offline
	// keep-alive analysis of the invocation timeline, as the paper's
	// provider-side profiling does (§6.1).
	SeedHistory bool
	// Seed drives workload randomness.
	Seed int64
	// Pool overrides the memory-pool configuration (zero = the paper's
	// 56 Gbps RDMA defaults). Use rmem.CXLConfig or rmem.SSDConfig for the
	// §9 technology comparison.
	Pool rmem.Config
	// Swap overrides the swap-device configuration (slot capacity,
	// readahead window).
	Swap fastswap.Config
	// MemTimeline, when non-nil, receives (time, node local MB) samples
	// every MemSampleEvery (Fig. 13's timeline plot).
	MemTimeline *metrics.Series
	// MemSampleEvery defaults to 10 s when MemTimeline is set.
	MemSampleEvery time.Duration
	// Telemetry attaches an event tracer / metric registry to the run. The
	// zero Hub falls back to the process default (telemetry.SetDefault), so
	// cmd/experiments' -trace flags capture every harness without plumbing.
	Telemetry telemetry.Hub
	// Spans attaches a causal-span recorder for latency attribution. Nil
	// falls back to the process default (span.SetDefault), mirroring
	// Telemetry, so -attrib flags capture every harness without plumbing.
	Spans *span.Recorder
	// Timeline attaches a time-series recorder for per-window rollups. Nil
	// falls back to the process default (timeseries.SetDefault), mirroring
	// Spans, so -timeline flags capture every harness without plumbing.
	Timeline *timeseries.Recorder
	// Exemplars attaches a tail-exemplar recorder (worst-K span trees per
	// window). Nil falls back to the process default (exemplar.SetDefault),
	// mirroring Timeline.
	Exemplars *exemplar.Recorder
}

// Outcome summarizes one scenario run.
type Outcome struct {
	Policy PolicyKind
	// AvgLocalMB is the time-weighted average node-local memory in MB.
	AvgLocalMB float64
	// PeakLocalMB is the peak node-local memory in MB.
	PeakLocalMB float64
	// AvgRemoteMB is the time-weighted average remote residency in MB.
	AvgRemoteMB float64
	// AvgLat, P50, P95, P99 are end-to-end latencies in seconds.
	AvgLat, P50, P95, P99 float64
	// Requests, ColdStarts, WarmStarts, SemiWarmStarts count request paths.
	Requests, ColdStarts, WarmStarts, SemiWarmStarts int
	// FaultPages and RuntimeFaultPages count remote page faults.
	FaultPages, RuntimeFaultPages int64
	// OffloadedMB and RecalledMB are cumulative pool traffic in MB.
	OffloadedMB, RecalledMB float64
	// OffloadBWMBps and RecallBWMBps are lifetime-average link rates in MB/s.
	OffloadBWMBps, RecallBWMBps float64
	// LiveAvg is the time-weighted average live container count.
	LiveAvg float64
	// CoreStats is non-nil for FaaSMem runs.
	CoreStats *core.Stats
	// Recovery is non-nil when the scenario ran under a fault plan: the
	// node's fault-recovery counters (retries, timeouts, fallbacks,
	// re-inits, completion classes).
	Recovery *faas.RecoveryStats
	// MemNode is non-nil when the scenario's pool was backed by a simulated
	// memory node (Pool.Node set): the node's storage, merge-domain, and
	// shared-cache statistics.
	MemNode *memnode.Stats `json:"MemNode,omitempty"`
}

// PolicyKinds lists every comparable policy in presentation order.
func PolicyKinds() []PolicyKind {
	return []PolicyKind{Baseline, TMO, DAMON, FaaSMem, FaaSMemNoPucket, FaaSMemNoSemi}
}

// ValidPolicy reports whether kind names a known policy.
func ValidPolicy(kind PolicyKind) bool {
	for _, k := range PolicyKinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// BuildPolicy constructs the policy object for a kind, returning the FaaSMem
// handle when applicable (nil for the baselines). Unknown kinds panic; gate
// external input with ValidPolicy.
func BuildPolicy(kind PolicyKind, coreCfg core.Config) (policy.Policy, *core.FaaSMem) {
	switch kind {
	case Baseline:
		return policy.NoOffload{}, nil
	case TMO:
		return policy.NewTMO(policy.TMOConfig{}), nil
	case DAMON:
		return policy.NewDAMON(policy.DAMONConfig{}), nil
	case FaaSMemNoPucket:
		coreCfg.DisablePucket = true
	case FaaSMemNoSemi:
		coreCfg.DisableSemiWarm = true
	case FaaSMem:
		// paper defaults
	default:
		panic(fmt.Sprintf("experiments: unknown policy %q", kind))
	}
	fm := core.New(coreCfg)
	return fm, fm
}

// RunScenario executes one scenario and collects its outcome.
func RunScenario(sc Scenario) Outcome {
	if sc.KeepAlive <= 0 {
		sc.KeepAlive = 10 * time.Minute
	}
	if sc.Duration <= 0 {
		var last simtime.Time
		for _, at := range sc.Invocations {
			if at > last {
				last = at
			}
		}
		sc.Duration = last + time.Second
	}
	pol, fm := BuildPolicy(sc.Policy, sc.CoreConfig)

	e := simtime.NewEngine()
	p := faas.New(e, faas.Config{
		KeepAliveTimeout: sc.KeepAlive,
		Seed:             sc.Seed,
		Pool:             sc.Pool,
		Swap:             sc.Swap,
		Telemetry:        sc.Telemetry.OrDefault(),
		Spans:            sc.Spans.OrDefault(),
		Timeline:         sc.Timeline.OrDefault(),
		Exemplars:        sc.Exemplars.OrDefault(),
	}, pol)
	fnID := sc.Profile.Name
	f := p.Register(fnID, sc.Profile)
	p.ScheduleInvocations(fnID, sc.Invocations)

	if fm != nil && sc.SeedHistory {
		ka := trace.SimulateKeepAlive(sc.Invocations, sc.Profile.ExecTime, sc.KeepAlive)
		fm.SeedReuseIntervals(fnID, ka.ReusedIntervals)
	}
	if sc.MemTimeline != nil {
		every := sc.MemSampleEvery
		if every <= 0 {
			every = 10 * time.Second
		}
		simtime.NewTicker(e, every, func(e *simtime.Engine) {
			sc.MemTimeline.Append(e.Now(), metrics.MB(p.NodeLocalBytes()))
		})
	}

	horizon := sc.Duration + sc.KeepAlive
	e.RunUntil(horizon)

	st := f.Stats()
	out := Outcome{
		Policy:            sc.Policy,
		AvgLocalMB:        p.NodeLocalAvg() / 1e6,
		PeakLocalMB:       metrics.MB(p.NodeLocalPeak()),
		AvgRemoteMB:       p.NodeRemoteAvg() / 1e6,
		AvgLat:            st.Latency.Mean(),
		P50:               st.Latency.P50(),
		P95:               st.Latency.P95(),
		P99:               st.Latency.P99(),
		Requests:          st.Requests,
		ColdStarts:        st.ColdStarts,
		WarmStarts:        st.WarmStarts,
		SemiWarmStarts:    st.SemiWarmStarts,
		FaultPages:        st.FaultPages,
		RuntimeFaultPages: st.RuntimeFaultPages,
		OffloadedMB:       metrics.MB(p.Pool().Meter(rmem.Offload).Total()),
		RecalledMB:        metrics.MB(p.Pool().Meter(rmem.Recall).Total()),
		OffloadBWMBps:     p.Pool().Meter(rmem.Offload).Average(e.Now()) / 1e6,
		RecallBWMBps:      p.Pool().Meter(rmem.Recall).Average(e.Now()) / 1e6,
		LiveAvg:           p.LiveContainersAvg(),
	}
	if fm != nil {
		out.CoreStats = fm.Stats()
	}
	if p.Pool().FaultsPlanned() {
		rec := p.Recovery()
		out.Recovery = &rec
	}
	if mn := p.Pool().Node(); mn != nil {
		st := mn.Stats()
		out.MemNode = &st
	}
	return out
}

// HighLoadInvocations synthesizes a bursty high-load request timeline for
// one function (§8.2's high-load traces "often exhibit a sudden increase and
// decrease").
func HighLoadInvocations(d time.Duration, seed int64) []simtime.Time {
	return trace.GenerateFunction("hl", d, 6*time.Second, true, seed).Invocations
}

// LowLoadInvocations synthesizes a low-load request timeline.
func LowLoadInvocations(d time.Duration, seed int64) []simtime.Time {
	return trace.GenerateFunction("ll", d, 90*time.Second, false, seed).Invocations
}

// writeTable renders a fixed-width column table for the experiment printers;
// fixed formats keep the output diff-able for EXPERIMENTS.md.
func writeTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = cell + strings.Repeat(" ", widths[i]-len(cell))
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}
