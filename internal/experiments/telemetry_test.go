package experiments

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/workload"
)

// TestRunScenarioTelemetry runs one FaaSMem scenario with a tracer and
// registry attached and checks that the instrumentation layer reported the
// paper's mechanisms end to end: container lifecycle, Pucket offloads, page
// faults and completed requests.
func TestRunScenarioTelemetry(t *testing.T) {
	hub := telemetry.Hub{
		Tracer: telemetry.NewTracer(0),
		Reg:    telemetry.NewRegistry(),
	}
	out := RunScenario(Scenario{
		Profile:     workload.ByName("web"),
		Invocations: HighLoadInvocations(5*time.Minute, 9),
		Duration:    5 * time.Minute,
		Policy:      FaaSMem,
		SeedHistory: true,
		Seed:        9,
		Telemetry:   hub,
	})
	if out.Requests == 0 {
		t.Fatal("scenario executed no requests")
	}

	kinds := map[telemetry.Kind]int{}
	for _, ev := range hub.Tracer.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []telemetry.Kind{
		telemetry.KindContainerLaunch,
		telemetry.KindRuntimeLoaded,
		telemetry.KindInitDone,
		telemetry.KindBarrierInsert,
		telemetry.KindPageOffload,
		telemetry.KindPageFault,
		telemetry.KindLinkTransfer,
		telemetry.KindRequest,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v events recorded (got %v)", want, kinds)
		}
	}
	if n := kinds[telemetry.KindRequest]; n != out.Requests {
		t.Errorf("request events = %d, Outcome.Requests = %d", n, out.Requests)
	}

	for _, name := range []string{
		"faasmem_containers_launched_total",
		"faasmem_requests_completed_total",
		"faasmem_fault_pages_total",
		"faasmem_link_offload_bytes_total",
	} {
		m := hub.Reg.Get(name)
		if m == nil {
			t.Errorf("counter %s not registered", name)
			continue
		}
		if m.Value() == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	if got := hub.Reg.Get("faasmem_requests_completed_total").Value(); got != int64(out.Requests) {
		t.Errorf("faasmem_requests_completed_total = %d, Outcome.Requests = %d", got, out.Requests)
	}
}

// TestRunScenarioTelemetryNeutral verifies that attaching telemetry does not
// perturb the simulation: outcomes with and without a hub must be identical.
func TestRunScenarioTelemetryNeutral(t *testing.T) {
	sc := Scenario{
		Profile:     workload.ByName("json"),
		Invocations: LowLoadInvocations(5*time.Minute, 4),
		Duration:    5 * time.Minute,
		Policy:      FaaSMem,
		Seed:        4,
	}
	plain := RunScenario(sc)
	plain.CoreStats = nil
	sc.Telemetry = telemetry.Hub{Tracer: telemetry.NewTracer(0), Reg: telemetry.NewRegistry()}
	traced := RunScenario(sc)
	traced.CoreStats = nil
	if plain != traced {
		t.Fatalf("telemetry changed the outcome:\n%+v\n%+v", plain, traced)
	}
}
