package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// SweepPoint is one labeled scenario in a parameter sweep.
type SweepPoint struct {
	// Label identifies the point (e.g. "keepalive=5m/faasmem").
	Label string
	// Scenario is the fully specified run.
	Scenario Scenario
}

// SweepResult pairs a point with its outcome.
type SweepResult struct {
	Label   string
	Outcome Outcome
}

// Sweep runs every point across the scenario worker pool (see SetWorkers)
// and collects outcomes in input order. Sweeps are the building block for
// sensitivity studies beyond the paper's fixed configurations (keep-alive
// sweeps, bandwidth sweeps, timing sweeps).
func Sweep(points []SweepPoint) []SweepResult {
	out := make([]SweepResult, len(points))
	runGrid(len(points), func(i int) {
		out[i] = SweepResult{Label: points[i].Label, Outcome: RunScenario(points[i].Scenario)}
	})
	return out
}

// WriteSweepCSV emits the results as CSV with one row per point, ready for
// external plotting.
func WriteSweepCSV(w io.Writer, results []SweepResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"label", "policy", "requests", "cold_starts", "warm_starts", "semi_warm_starts",
		"avg_local_mb", "peak_local_mb", "avg_remote_mb",
		"p50_s", "p95_s", "p99_s",
		"fault_pages", "offloaded_mb", "recalled_mb", "offload_bw_mbps",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: sweep csv: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	d := func(v int) string { return strconv.Itoa(v) }
	for _, r := range results {
		o := r.Outcome
		row := []string{
			r.Label, string(o.Policy), d(o.Requests), d(o.ColdStarts), d(o.WarmStarts), d(o.SemiWarmStarts),
			f(o.AvgLocalMB), f(o.PeakLocalMB), f(o.AvgRemoteMB),
			f(o.P50), f(o.P95), f(o.P99),
			strconv.FormatInt(o.FaultPages, 10), f(o.OffloadedMB), f(o.RecalledMB), f(o.OffloadBWMBps),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: sweep csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: sweep csv: %w", err)
	}
	return nil
}
