package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/metrics"
)

func TestPoolComparisonShape(t *testing.T) {
	rows := PoolComparison(PoolComparisonOptions{Duration: 8 * time.Minute, Seed: 31})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PoolRow{}
	for _, r := range rows {
		byName[r.Pool] = r
	}
	rdma, cxl, ssd := byName["rdma-56g"], byName["cxl"], byName["ssd"]
	// §9's prose, quantified: CXL must not be slower than RDMA at the same
	// offloading duty; the SSD's 1 MB/s write cap strangles offloading.
	if cxl.P99 > rdma.P99+1e-9 {
		t.Errorf("CXL P99 %.3f worse than RDMA %.3f", cxl.P99, rdma.P99)
	}
	// The SSD's durability-limited 1 MB/s writes cap offloading: it moves
	// less data, keeps more memory local, and pays slower faults at the tail.
	if ssd.OffloadedMB >= rdma.OffloadedMB {
		t.Errorf("SSD offloaded %.0f MB, want below RDMA's %.0f MB",
			ssd.OffloadedMB, rdma.OffloadedMB)
	}
	if ssd.AvgLocalMB <= rdma.AvgLocalMB {
		t.Errorf("SSD avg local %.0f MB should exceed RDMA's %.0f MB (less offload)",
			ssd.AvgLocalMB, rdma.AvgLocalMB)
	}
	if ssd.P99 < rdma.P99 {
		t.Errorf("SSD P99 %.3f should not beat RDMA's %.3f", ssd.P99, rdma.P99)
	}
}

func TestColdStartTimingShape(t *testing.T) {
	rows := ColdStartTiming(ColdStartTimingOptions{Duration: 10 * time.Minute, Seed: 33})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(cs string, corrected bool) ColdStartTimingRow {
		for _, r := range rows {
			if r.Case == cs && r.Corrected == corrected {
				return r
			}
		}
		t.Fatalf("missing row %s/%v", cs, corrected)
		return ColdStartTimingRow{}
	}
	// The correction delays semi-warm, so it can only keep more memory
	// resident; in exchange the bursty P99 must not get worse.
	for _, cs := range []string{"common", "bursty"} {
		plain := get(cs, false)
		fixed := get(cs, true)
		if fixed.AvgMemMB < plain.AvgMemMB-1 {
			t.Errorf("%s: corrected timing reduced memory (%.0f < %.0f), impossible",
				cs, fixed.AvgMemMB, plain.AvgMemMB)
		}
		if fixed.P99 > plain.P99+1e-9 {
			t.Errorf("%s: corrected timing worsened P99 (%.3f > %.3f)",
				cs, fixed.P99, plain.P99)
		}
	}
}

func TestExtensionPrinters(t *testing.T) {
	var sb strings.Builder
	PrintPoolComparison(&sb, []PoolRow{{Pool: "cxl", P95: 0.1, P99: 0.2, AvgLocalMB: 500, OffloadedMB: 900}})
	PrintColdStartTiming(&sb, []ColdStartTimingRow{{Case: "bursty", Corrected: true, P99: 0.2, AvgMemMB: 600}})
	for _, want := range []string{"§9", "§8.3.2", "cxl", "cold-start-aware"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}

func TestRackDensityShape(t *testing.T) {
	rows := RackDensity(RackDensityOptions{
		Nodes:             2,
		NodeMemoryLimitMB: 1500,
		Functions:         6,
		Duration:          10 * time.Minute,
		Seed:              41,
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, fm := rows[0], rows[1]
	if base.Policy != Baseline || fm.Policy != FaaSMem {
		t.Fatal("row order")
	}
	if base.Requests == 0 || fm.Requests != base.Requests {
		t.Fatalf("requests mismatch: %d vs %d", base.Requests, fm.Requests)
	}
	// The density mechanism: FaaSMem evicts fewer keep-alive containers and
	// therefore cold-starts no more than the baseline.
	if fm.Evicted > base.Evicted {
		t.Errorf("FaaSMem evicted %d > baseline %d", fm.Evicted, base.Evicted)
	}
	if fm.ColdStartRatio > base.ColdStartRatio+1e-9 {
		t.Errorf("FaaSMem cold ratio %.3f > baseline %.3f", fm.ColdStartRatio, base.ColdStartRatio)
	}
	if fm.AvgLocalMB >= base.AvgLocalMB {
		t.Errorf("FaaSMem rack memory %.0f not below baseline %.0f", fm.AvgLocalMB, base.AvgLocalMB)
	}
}

func TestReadaheadShape(t *testing.T) {
	rows := Readahead(ReadaheadOptions{Duration: 8 * time.Minute, Seed: 51})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Window != 0 {
		t.Fatal("first row should be the no-readahead baseline")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FaultPages >= rows[0].FaultPages {
			t.Errorf("window %d: blocking faults %d not below baseline %d",
				rows[i].Window, rows[i].FaultPages, rows[0].FaultPages)
		}
	}
	// Wider windows mean fewer blocking faults.
	if rows[3].FaultPages >= rows[1].FaultPages {
		t.Errorf("readahead 32 (%d faults) should beat readahead 2 (%d)",
			rows[3].FaultPages, rows[1].FaultPages)
	}
	// Tail latency must not get worse with readahead.
	if rows[3].P99 > rows[0].P99+1e-9 {
		t.Errorf("readahead worsened P99: %.3f vs %.3f", rows[3].P99, rows[0].P99)
	}
}

func TestKeepAliveStrategiesShape(t *testing.T) {
	rows := KeepAliveStrategies(KeepAliveStrategiesOptions{Duration: 15 * time.Minute, Seed: 61})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(strategy string, pk PolicyKind) KeepAliveRow {
		for _, r := range rows {
			if r.Strategy == strategy && r.Policy == pk {
				return r
			}
		}
		t.Fatalf("missing %s/%s", strategy, pk)
		return KeepAliveRow{}
	}
	fixedBase := get("fixed-10m", Baseline)
	fixedFM := get("fixed-10m", FaaSMem)
	adaptBase := get("adaptive", Baseline)
	adaptFM := get("adaptive", FaaSMem)
	// Each technique helps on its own…
	if fixedFM.AvgLocalMB >= fixedBase.AvgLocalMB {
		t.Error("FaaSMem alone did not save memory")
	}
	if adaptBase.AvgLocalMB >= fixedBase.AvgLocalMB {
		t.Error("adaptive keep-alive alone did not save memory")
	}
	// …and the combination is at least as good as either alone (§10:
	// "combining the above works can gain more benefits"; when FaaSMem has
	// already drained the idle memory, adaptive keep-alive adds little, so
	// allow ties within 5%).
	if adaptFM.AvgLocalMB > fixedFM.AvgLocalMB*1.05 || adaptFM.AvgLocalMB > adaptBase.AvgLocalMB*1.05 {
		t.Errorf("combination (%.0f MB) should not lose to FaaSMem-only (%.0f) or adaptive-only (%.0f)",
			adaptFM.AvgLocalMB, fixedFM.AvgLocalMB, adaptBase.AvgLocalMB)
	}
}

func TestFig16Correlations(t *testing.T) {
	// §8.6's correlation claims, tested with the Pearson statistic: density
	// is positively correlated with request load and negatively with the
	// standard deviation of request intervals.
	rows := Fig16(Fig16Options{Traces: 10, Duration: 10 * time.Minute, Seed: 77, Apps: []string{"web"}})
	if len(rows) < 6 {
		t.Skip("too few traces generated")
	}
	var load, sigma, density []float64
	for _, r := range rows {
		load = append(load, r.ReqPerMinute)
		sigma = append(sigma, r.IntervalSigmaSec)
		density = append(density, r.Density)
	}
	if got := metrics.Pearson(load, density); got <= 0.2 {
		t.Errorf("corr(load, density) = %.2f, want clearly positive", got)
	}
	if got := metrics.Pearson(sigma, density); got >= -0.2 {
		t.Errorf("corr(sigma, density) = %.2f, want clearly negative", got)
	}
}

func TestPercentileSweepShape(t *testing.T) {
	rows := PercentileSweep(PercentileSweepOptions{Duration: 12 * time.Minute, Seed: 71})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	lo, hi := rows[0], rows[len(rows)-1]
	if lo.Percentile != 50 || hi.Percentile != 99 {
		t.Fatal("row order")
	}
	// Earlier semi-warm (lower percentile) must not keep MORE memory and
	// must hit at least as many semi-warm starts.
	if lo.AvgMemMB > hi.AvgMemMB*1.02 {
		t.Errorf("P50 memory %.0f should be <= P99 memory %.0f", lo.AvgMemMB, hi.AvgMemMB)
	}
	if lo.SemiWarmStarts < hi.SemiWarmStarts {
		t.Errorf("P50 semi-warm starts %d < P99 %d", lo.SemiWarmStarts, hi.SemiWarmStarts)
	}
	// The paper's choice: at P99, the P95 latency stays near the warm time.
	if hi.P95 > 0.2 {
		t.Errorf("P99 timing still hurts P95: %.3f", hi.P95)
	}
}
