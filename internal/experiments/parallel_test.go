package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/workload"
)

// gridScenarios builds a small mixed grid: two benchmarks × every policy.
func gridScenarios(t *testing.T) []Scenario {
	t.Helper()
	inv := HighLoadInvocations(4*time.Minute, 11)
	var scs []Scenario
	for _, bench := range []string{"json", "web"} {
		for _, pk := range PolicyKinds() {
			scs = append(scs, Scenario{
				Profile:     workload.ByName(bench),
				Invocations: inv,
				Duration:    4 * time.Minute,
				KeepAlive:   2 * time.Minute,
				Policy:      pk,
				SeedHistory: true,
				Seed:        11,
			})
		}
	}
	return scs
}

// TestRunScenariosDeterministicAcrossWidths is the fan-out contract: the same
// grid produces identical outcomes at any worker width. Under -race this also
// exercises the pool for data races.
func TestRunScenariosDeterministicAcrossWidths(t *testing.T) {
	scs := gridScenarios(t)
	if w := DivergentWidth([]int{1, 2, 4, 8}, func() any {
		return RunScenarios(scs)
	}); w != -1 {
		t.Fatalf("outcomes differ between workers=1 and workers=%d", w)
	}
}

// TestRunScenariosOrderInvariant is the metamorphic half of the contract:
// enumerating the same grid in a shuffled order yields bit-identical
// outcomes once mapped back to input order. Run at width > 1 so permutation
// also reshuffles which worker gets which scenario.
func TestRunScenariosOrderInvariant(t *testing.T) {
	scs := gridScenarios(t)
	defer SetWorkers(0)
	SetWorkers(4)
	want := RunScenarios(scs)
	for _, seed := range []int64{1, 42} {
		if got := PermuteScenarios(scs, seed); !reflect.DeepEqual(want, got) {
			t.Fatalf("outcomes depend on scenario enumeration order (perm seed %d)", seed)
		}
	}
}

func TestWorkersDefaultAndOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(-5)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after negative SetWorkers", Workers())
	}
}

// TestRunGridCoversAllIndices checks the work-stealing counter hands every
// index to exactly one worker.
func TestRunGridCoversAllIndices(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	const n = 100
	hits := make([]int, n)
	runGrid(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}
