package experiments

import (
	"github.com/faasmem/faasmem/internal/report"
	"github.com/faasmem/faasmem/internal/trace"
)

// This file turns experiment rows into SVG charts — the repository's
// counterpart of the artifact's draw*.py scripts. cmd/experiments -svg
// writes them next to the JSON row dumps.

// SVGFig1 renders the keep-alive trade-off curve.
func SVGFig1(rows []Fig1Row) string {
	inactive := report.Series{Name: "inactive time (%)"}
	cold := report.Series{Name: "cold-start ratio (%)"}
	for _, r := range rows {
		inactive.Points = append(inactive.Points, report.Point{X: r.Timeout.Seconds(), Y: r.InactiveFraction * 100})
		cold.Points = append(cold.Points, report.Point{X: r.Timeout.Seconds(), Y: r.ColdStartRatio * 100})
	}
	return report.SVGChart(report.ChartOptions{
		Title:  "Figure 1: keep-alive timeout trade-off",
		XLabel: "keep-alive timeout (s, log)",
		YLabel: "percent",
		LogX:   true,
		YMin:   0,
	}, inactive, cold)
}

// SVGFig2 renders the DAMON slowdown per benchmark (index on x).
func SVGFig2(rows []Fig2Row) string {
	base := report.Series{Name: "no-offload P95 (s)", Scatter: true}
	damon := report.Series{Name: "DAMON P95 (s)", Scatter: true}
	for i, r := range rows {
		base.Points = append(base.Points, report.Point{X: float64(i), Y: r.BaseP95})
		damon.Points = append(damon.Points, report.Point{X: float64(i), Y: r.DamonP95})
	}
	return report.SVGChart(report.ChartOptions{
		Title:  "Figure 2: P95 latency under DAMON (benchmark index)",
		XLabel: "benchmark (0=bert … 10=json)",
		YLabel: "P95 latency (s)",
		YMin:   0,
	}, base, damon)
}

// SVGFig5 renders the requests-per-container CDF.
func SVGFig5(rows []Fig5Row) string {
	s := report.Series{Name: "containers"}
	for _, r := range rows {
		s.Points = append(s.Points, report.Point{X: float64(r.Requests), Y: r.CumFrac})
	}
	return report.SVGChart(report.ChartOptions{
		Title:  "Figure 5: CDF of requests per container",
		XLabel: "requests handled",
		YLabel: "cumulative fraction",
		LogX:   true,
		YMin:   0,
	}, s)
}

// SVGFig13 renders the common-case memory timelines of the ablation.
func SVGFig13(rows []Fig13Row) string {
	var series []report.Series
	for _, r := range rows {
		if r.Timeline == nil || r.Timeline.Len() == 0 {
			continue
		}
		s := report.Series{Name: string(r.Variant)}
		for i := range r.Timeline.Times {
			s.Points = append(s.Points, report.Point{X: r.Timeline.Times[i].Seconds(), Y: r.Timeline.Values[i]})
		}
		series = append(series, s)
	}
	return report.SVGChart(report.ChartOptions{
		Title:  "Figure 13: Bert memory timeline (common case)",
		XLabel: "time (s)",
		YLabel: "node-local memory (MB)",
		YMin:   0,
	}, series...)
}

// SVGFig14 renders the per-class semi-warm share CDFs.
func SVGFig14(rows []Fig14Class) string {
	var series []report.Series
	for _, r := range rows {
		s := report.Series{Name: r.Class.String() + " load"}
		for _, pt := range r.ShareCDF {
			s.Points = append(s.Points, report.Point{X: pt.Value, Y: pt.Fraction})
		}
		if len(s.Points) > 0 {
			series = append(series, s)
		}
	}
	return report.SVGChart(report.ChartOptions{
		Title:  "Figure 14: semi-warm time / container lifetime (CDF)",
		XLabel: "semi-warm share of lifetime",
		YLabel: "cumulative fraction",
		YMin:   0,
	}, series...)
}

// SVGFig16 renders the density-vs-load scatter per application.
func SVGFig16(rows []Fig16Row) string {
	byApp := map[string]*report.Series{}
	order := []string{}
	for _, r := range rows {
		s, ok := byApp[r.App]
		if !ok {
			s = &report.Series{Name: r.App, Scatter: true}
			byApp[r.App] = s
			order = append(order, r.App)
		}
		s.Points = append(s.Points, report.Point{X: r.ReqPerMinute, Y: r.Density})
	}
	series := make([]report.Series, 0, len(order))
	for _, app := range order {
		series = append(series, *byApp[app])
	}
	return report.SVGChart(report.ChartOptions{
		Title:  "Figure 16: density improvement vs request load",
		XLabel: "requests per minute",
		YLabel: "density improvement (x)",
		YMin:   1,
	}, series...)
}

// SVGReadahead renders the §10 prefetching extension.
func SVGReadahead(rows []ReadaheadRow) string {
	p99 := report.Series{Name: "P99 (s)"}
	for _, r := range rows {
		p99.Points = append(p99.Points, report.Point{X: float64(r.Window), Y: r.P99})
	}
	return report.SVGChart(report.ChartOptions{
		Title:  "Extension: swap readahead vs recall tail",
		XLabel: "readahead window (pages)",
		YLabel: "P99 latency (s)",
		YMin:   0,
	}, p99)
}

// ShareCDFOf is a small helper for tests: extracts one class's CDF points.
func ShareCDFOf(rows []Fig14Class, cl trace.LoadClass) ([]float64, []float64) {
	for _, r := range rows {
		if r.Class == cl {
			vals := make([]float64, len(r.ShareCDF))
			fracs := make([]float64, len(r.ShareCDF))
			for i, pt := range r.ShareCDF {
				vals[i], fracs[i] = pt.Value, pt.Fraction
			}
			return vals, fracs
		}
	}
	return nil, nil
}
