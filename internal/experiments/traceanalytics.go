package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/faasmem/faasmem/internal/report"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/metrics"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// ---------------------------------------------------------------- Figure 1

// Fig1Options configures the keep-alive sweep.
type Fig1Options struct {
	// Trace overrides the synthetic trace (nil = generate default).
	Trace *trace.Trace
	// Timeouts to sweep. Default: 10 s … 1000 s, log-spaced.
	Timeouts []time.Duration
	// ExecTime fixes one execution time for every function. When zero,
	// per-function heavy-tailed durations are drawn instead (log-normal,
	// median 1 s, capped at 60 s), matching the Azure trace's duration
	// spread — without it, the inactive-time curve saturates at short
	// timeouts.
	ExecTime time.Duration
	// Seed for trace generation and duration sampling.
	Seed int64
}

// Fig1Row is one point of Figure 1: memory-inactive time and cold-start
// ratio at one keep-alive timeout.
type Fig1Row struct {
	Timeout          time.Duration
	InactiveFraction float64
	ColdStartRatio   float64
}

// Fig1 reproduces Figure 1: sweeping the keep-alive timeout over an
// Azure-like trace trades cold starts against idle memory (paper: 89.2%
// inactive at 10 min, 70.1% at 1 min).
func Fig1(opt Fig1Options) []Fig1Row {
	tr := opt.Trace
	if tr == nil {
		tr = trace.Generate(trace.GenConfig{}, opt.Seed)
	}
	timeouts := opt.Timeouts
	if len(timeouts) == 0 {
		for _, s := range []int{10, 20, 40, 60, 100, 200, 400, 600, 1000} {
			timeouts = append(timeouts, time.Duration(s)*time.Second)
		}
	}
	// Per-function heavy-tailed execution durations unless pinned.
	durations := make([]time.Duration, len(tr.Functions))
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	for i := range durations {
		if opt.ExecTime > 0 {
			durations[i] = opt.ExecTime
			continue
		}
		d := time.Duration(math.Exp(rng.NormFloat64()*1.5) * float64(time.Second))
		if d > time.Minute {
			d = time.Minute
		}
		if d < 10*time.Millisecond {
			d = 10 * time.Millisecond
		}
		durations[i] = d
	}
	// Each timeout's sweep reads only the shared trace and duration table,
	// so the points fan out across the scenario worker pool.
	rows := make([]Fig1Row, len(timeouts))
	runGrid(len(timeouts), func(ti int) {
		res := trace.SimulateTraceKeepAliveScalarsFunc(tr, func(i int, _ *trace.Function) time.Duration {
			return durations[i]
		}, timeouts[ti])
		rows[ti] = Fig1Row{
			Timeout:          timeouts[ti],
			InactiveFraction: res.InactiveFraction(),
			ColdStartRatio:   res.ColdStartRatio(),
		}
	})
	return rows
}

// PrintFig1 renders Figure 1's series.
func PrintFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintln(w, "Figure 1: memory inactive time and cold-start ratio vs keep-alive timeout")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%v", r.Timeout),
			fmt.Sprintf("%.1f%%", r.InactiveFraction*100),
			fmt.Sprintf("%.1f%%", r.ColdStartRatio*100),
		}
	}
	writeTable(w, []string{"keep-alive", "inactive-time", "cold-start"}, table)
	pts := make([]report.Point, len(rows))
	for i, r := range rows {
		pts[i] = report.Point{X: r.Timeout.Seconds(), Y: r.InactiveFraction * 100}
	}
	fmt.Fprintln(w, "  inactive time (%) vs keep-alive timeout (s):")
	fmt.Fprint(w, report.Plot(pts, 48, 8))
}

// ---------------------------------------------------------------- Figure 5

// Fig5Options configures the requests-per-container CDF.
type Fig5Options struct {
	Trace     *trace.Trace
	ExecTime  time.Duration
	KeepAlive time.Duration
	Seed      int64
}

// Fig5Row is one step of the Figure 5 CDF.
type Fig5Row struct {
	Requests int
	CumFrac  float64
}

// Fig5 reproduces Figure 5: the CDF of requests handled per container under
// a 10-minute keep-alive (paper: ~60% of containers handle ≤ 2 requests).
func Fig5(opt Fig5Options) []Fig5Row {
	tr := opt.Trace
	if tr == nil {
		tr = trace.Generate(trace.GenConfig{}, opt.Seed)
	}
	if opt.ExecTime <= 0 {
		opt.ExecTime = 500 * time.Millisecond
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}
	res := trace.SimulateTraceKeepAlive(tr, opt.ExecTime, opt.KeepAlive)
	counts := append([]int(nil), res.RequestsPerContainer...)
	sort.Ints(counts)
	var rows []Fig5Row
	n := float64(len(counts))
	for i := 0; i < len(counts); i++ {
		if i+1 < len(counts) && counts[i+1] == counts[i] {
			continue
		}
		rows = append(rows, Fig5Row{Requests: counts[i], CumFrac: float64(i+1) / n})
	}
	return rows
}

// Fig5AtMost returns the cumulative fraction of containers handling at most
// k requests.
func Fig5AtMost(rows []Fig5Row, k int) float64 {
	frac := 0.0
	for _, r := range rows {
		if r.Requests <= k {
			frac = r.CumFrac
		}
	}
	return frac
}

// PrintFig5 renders key points of the Figure 5 CDF.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5: CDF of requests handled per container (10-minute keep-alive)")
	table := [][]string{}
	for _, k := range []int{1, 2, 5, 10, 25} {
		table = append(table, []string{
			fmt.Sprintf("<= %d", k),
			fmt.Sprintf("%.1f%%", Fig5AtMost(rows, k)*100),
		})
	}
	writeTable(w, []string{"requests", "containers"}, table)
}

// ---------------------------------------------------------------- Figure 14

// Fig14Options configures the semi-warm applicability study.
type Fig14Options struct {
	// Trace overrides the generated trace.
	Trace *trace.Trace
	// NumFunctions / Duration size the generated trace. Defaults 424 / 6 h.
	NumFunctions int
	Duration     time.Duration
	// KeepAlive defaults to 10 minutes.
	KeepAlive time.Duration
	Seed      int64
}

// Fig14Class aggregates one load class's distributions.
type Fig14Class struct {
	Class trace.LoadClass
	// ShareCDF is the CDF of semi-warm time / container lifetime.
	ShareCDF []metrics.CDFPoint
	// LifetimeCDF is the CDF of container lifetimes (seconds).
	LifetimeCDF []metrics.CDFPoint
	// MedianShare is the median semi-warm share.
	MedianShare float64
	Containers  int
}

// Fig14 reproduces Figure 14: across high/medium/low-load functions, the
// fraction of container lifetime spent in the semi-warm period and the
// container lifetime distribution. The paper finds semi-warm covers more
// than half the lifetime for ~50% of functions, helping high- and low-load
// functions most.
//
// The study runs the real platform with FaaSMem over hello-world-sized
// profiles: semi-warm timing depends only on invocation dynamics, not on
// footprint, so small profiles keep a 424-function run cheap.
func Fig14(opt Fig14Options) []Fig14Class {
	tr := opt.Trace
	if tr == nil {
		cfg := trace.GenConfig{NumFunctions: opt.NumFunctions, Duration: opt.Duration}
		if cfg.NumFunctions == 0 {
			cfg.NumFunctions = 424
		}
		if cfg.Duration == 0 {
			cfg.Duration = 6 * time.Hour
		}
		tr = trace.Generate(cfg, opt.Seed)
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}

	fm := core.New(core.Config{})
	e := simtime.NewEngine()
	p := faas.New(e, faas.Config{KeepAliveTimeout: opt.KeepAlive, Seed: opt.Seed}, fm)

	classOf := make(map[string]trace.LoadClass, len(tr.Functions))
	prof := workload.HelloWorld(workload.OpenWhisk, workload.Python)
	for _, tf := range tr.Functions {
		classOf[tf.ID] = tf.Class(tr.Duration)
		fp := *prof
		fp.Name = tf.ID
		p.Register(tf.ID, &fp)
		p.ScheduleInvocations(tf.ID, tf.Invocations)
		// Provider-side profiling: seed semi-warm timing from the trace.
		ka := trace.SimulateKeepAlive(tf.Invocations, fp.ExecTime, opt.KeepAlive)
		fm.SeedReuseIntervals(tf.ID, ka.ReusedIntervals)
	}
	e.RunUntil(tr.Duration + opt.KeepAlive)

	bins := map[trace.LoadClass]*struct{ share, life metrics.Sampler }{
		trace.LowLoad:    {},
		trace.MediumLoad: {},
		trace.HighLoad:   {},
	}
	for _, cs := range fm.Stats().Containers {
		b := bins[classOf[cs.FunctionID]]
		b.share.Add(cs.SemiWarmShare)
		b.life.Add(cs.Lifetime.Seconds())
	}
	var out []Fig14Class
	for _, cl := range []trace.LoadClass{HighFirst[0], HighFirst[1], HighFirst[2]} {
		b := bins[cl]
		out = append(out, Fig14Class{
			Class:       cl,
			ShareCDF:    b.share.CDF(),
			LifetimeCDF: b.life.CDF(),
			MedianShare: b.share.P50(),
			Containers:  b.share.Count(),
		})
	}
	return out
}

// HighFirst orders load classes high → low for presentation.
var HighFirst = [3]trace.LoadClass{trace.HighLoad, trace.MediumLoad, trace.LowLoad}

// PrintFig14 renders Figure 14's summary.
func PrintFig14(w io.Writer, rows []Fig14Class) {
	fmt.Fprintln(w, "Figure 14: semi-warm time share and container lifetime by load class")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		lifeP50 := 0.0
		for _, pt := range r.LifetimeCDF {
			if pt.Fraction >= 0.5 {
				lifeP50 = pt.Value
				break
			}
		}
		table = append(table, []string{
			r.Class.String(),
			fmt.Sprintf("%d", r.Containers),
			fmt.Sprintf("%.1f%%", r.MedianShare*100),
			fmt.Sprintf("%.0fs", lifeP50),
		})
	}
	writeTable(w, []string{"class", "containers", "median semi-warm share", "median lifetime"}, table)
	for _, r := range rows {
		if len(r.ShareCDF) == 0 {
			continue
		}
		vals := make([]float64, len(r.ShareCDF))
		fracs := make([]float64, len(r.ShareCDF))
		for i, pt := range r.ShareCDF {
			vals[i] = pt.Value
			fracs[i] = pt.Fraction
		}
		fmt.Fprintf(w, "  %v-load semi-warm share CDF:\n", r.Class)
		fmt.Fprint(w, report.CDF(vals, fracs, 48, 6))
	}
}
