package experiments

import (
	"reflect"
	"testing"
	"time"
)

// quickDensity is a small sweep that still builds real dedup fan-in.
func quickDensity(seed int64) PoolDensityOptions {
	return PoolDensityOptions{
		DRAMMBs:  []int{192},
		Duration: 4 * time.Minute,
		Seed:     seed,
	}
}

func TestPoolDensityAmplification(t *testing.T) {
	rows := PoolDensity(quickDensity(1))
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byMode := map[PoolDensityMode]PoolDensityRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	off := byMode[DensityOff]
	if off.Amplification != 1.0 {
		t.Fatalf("off baseline amplification = %.3f, want exactly 1.0", off.Amplification)
	}
	if off.LogicalPeakMB <= 0 || off.LogicalPeakMB != off.ResidentPeakMB {
		t.Fatalf("off baseline logical/resident = %.1f/%.1f, want equal and positive",
			off.LogicalPeakMB, off.ResidentPeakMB)
	}
	full := byMode[DensityDedupZswap]
	// Acceptance: ≥ 1.5× effective capacity over the dedup/compression-off
	// baseline on the mixed 11-benchmark workload.
	if ratio := full.Amplification / off.Amplification; ratio < 1.5 {
		t.Fatalf("dedup+zswap amplification %.2fx over baseline, want >= 1.5x (rows %+v)", ratio, rows)
	}
	if full.DedupHitPages == 0 || full.CompressedPages == 0 {
		t.Fatalf("expected both mechanisms active: %+v", full)
	}
	if dd := byMode[DensityDedup]; dd.Amplification < 1.1 {
		t.Fatalf("dedup-only amplification = %.2fx, want > 1.1x", dd.Amplification)
	}
	// Density must not cost latency: the same trace serves the same requests.
	if full.Requests != off.Requests {
		t.Fatalf("requests differ across modes: %d vs %d", full.Requests, off.Requests)
	}
}

func TestPoolDensityDeterministicAcrossWidths(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	want := PoolDensity(quickDensity(7))
	for _, w := range []int{2, 8} {
		SetWorkers(w)
		got := PoolDensity(quickDensity(7))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("rows differ at %d workers:\nwant %+v\ngot  %+v", w, want, got)
		}
	}
}
