package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// workerCount holds the scenario-level fan-out width; 0 means GOMAXPROCS.
var workerCount atomic.Int64

// SetWorkers sets how many scenarios the figure harnesses simulate
// concurrently. n <= 0 restores the default (GOMAXPROCS). Every grid cell is
// an independent deterministic simulation and results land in
// index-addressed slots, so the emitted rows are identical for any width —
// only wall-clock changes.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int64(n))
}

// Workers reports the current scenario fan-out width.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runGrid evaluates fn(0..n-1), sharding the indices across Workers()
// goroutines. fn must write its result into a slot addressed by its own
// index and must not touch other slots; post-processing (row assembly,
// normalization against a baseline cell) stays with the caller, after the
// barrier, so row order never depends on completion order.
//
// Workers claim chunks of adjacent indices from a shared cursor, guided
// self-scheduling style: early claims take bigger chunks (amortizing the
// atomic over cheap cells), late claims shrink toward single cells so a
// straggler cell cannot leave the other workers idle behind a big chunk.
func runGrid(n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				claimed := int(next.Load())
				if claimed >= n {
					return
				}
				chunk := (n - claimed) / (2 * w)
				if chunk < 1 {
					chunk = 1
				}
				i := int(next.Add(int64(chunk))) - chunk
				if i >= n {
					return
				}
				end := i + chunk
				if end > n {
					end = n
				}
				for ; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// scenarioShard holds the private sinks one scenario records into while
// running concurrently with its siblings.
type scenarioShard struct {
	tracer *telemetry.Tracer
	spans  *span.Recorder
	tl     *timeseries.Recorder
	exm    *exemplar.Recorder
}

// shardScenario replaces any shared process-default sink the scenario would
// record into with a freshly built private shard of the same capacity, and
// returns the shard set (zero when the scenario carries its own sinks).
func shardScenario(sc *Scenario) scenarioShard {
	var sh scenarioShard
	if !sc.Telemetry.Enabled() {
		if def := telemetry.Default(); def.Enabled() {
			h := def
			if def.Tracer != nil {
				sh.tracer = telemetry.NewTracer(def.Tracer.Cap())
				h.Tracer = sh.tracer
			}
			// Registry counters are atomic and order-independent; the
			// shared registry stays in place.
			sc.Telemetry = h
		}
	}
	if sc.Spans == nil {
		if def := span.Default(); def != nil {
			sh.spans = span.NewRecorder(def.Cap())
			sc.Spans = sh.spans
		}
	}
	if sc.Timeline == nil {
		if def := timeseries.Default(); def != nil {
			sh.tl = timeseries.NewRecorder(def.Config())
			sc.Timeline = sh.tl
		}
	}
	if sc.Exemplars == nil {
		if def := exemplar.Default(); def != nil {
			sh.exm = exemplar.NewRecorder(def.Config())
			sc.Exemplars = sh.exm
		}
	}
	return sh
}

// merge folds the shard's sinks back into the process defaults. The timeline
// shard was built from the sink's own Config, so the window-mismatch error
// cannot arise; a nil shard or sink is a defined no-op.
func (sh scenarioShard) merge() {
	telemetry.Default().Tracer.MergeFrom(sh.tracer)
	span.Default().MergeFrom(sh.spans)
	_ = timeseries.Default().MergeFrom(sh.tl)
	_ = exemplar.Default().MergeFrom(sh.exm)
}

// RunScenarios executes every scenario through RunScenario across the worker
// pool and returns outcomes in input order. Scenarios that would record into
// a shared process-default telemetry/span/timeline sink get a shard-local
// sink each while running; after the barrier the shards fold back into the
// shared sink in scenario-index order. Sharding applies at every width —
// including serial — so stateful sink behavior (ring eviction, SLO burn
// alarms, flight dumps) is evaluated per scenario and the retained contents
// are identical for any worker count.
func RunScenarios(scs []Scenario) []Outcome {
	outs := make([]Outcome, len(scs))
	if len(scs) <= 1 {
		for i := range scs {
			outs[i] = RunScenario(scs[i])
		}
		return outs
	}
	local := make([]Scenario, len(scs))
	copy(local, scs)
	shards := make([]scenarioShard, len(scs))
	for i := range local {
		shards[i] = shardScenario(&local[i])
	}
	runGrid(len(local), func(i int) { outs[i] = RunScenario(local[i]) })
	for _, sh := range shards {
		sh.merge()
	}
	return outs
}
