package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount holds the scenario-level fan-out width; 0 means GOMAXPROCS.
var workerCount atomic.Int64

// SetWorkers sets how many scenarios the figure harnesses simulate
// concurrently. n <= 0 restores the default (GOMAXPROCS). Every grid cell is
// an independent deterministic simulation and results land in
// index-addressed slots, so the emitted rows are identical for any width —
// only wall-clock changes.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int64(n))
}

// Workers reports the current scenario fan-out width.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runGrid evaluates fn(0..n-1), sharding the indices across Workers()
// goroutines. fn must write its result into a slot addressed by its own
// index and must not touch other slots; post-processing (row assembly,
// normalization against a baseline cell) stays with the caller, after the
// barrier, so row order never depends on completion order.
func runGrid(n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunScenarios executes every scenario through RunScenario across the worker
// pool and returns outcomes in input order.
func RunScenarios(scs []Scenario) []Outcome {
	outs := make([]Outcome, len(scs))
	runGrid(len(scs), func(i int) { outs[i] = RunScenario(scs[i]) })
	return outs
}
