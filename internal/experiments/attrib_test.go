package experiments

import (
	"bytes"
	"testing"
	"time"
)

// TestAttribPressureMonotonic asserts the ext-attrib acceptance shape:
// shrinking the semi-warm drain delay must monotonically lower average
// local memory and monotonically raise the remote-stall share of latency.
func TestAttribPressureMonotonic(t *testing.T) {
	rows := AttribPressure(AttribPressureOptions{Duration: 12 * time.Minute, Seed: 5})
	if len(rows) < 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SemiWarmDelay >= rows[i-1].SemiWarmDelay {
			t.Fatalf("delays must descend (pressure rises): %v then %v",
				rows[i-1].SemiWarmDelay, rows[i].SemiWarmDelay)
		}
		if rows[i].AvgLocalMB > rows[i-1].AvgLocalMB+1e-9 {
			t.Fatalf("avg local memory must fall with pressure: %.2f MB at %v, %.2f MB at %v",
				rows[i-1].AvgLocalMB, rows[i-1].SemiWarmDelay,
				rows[i].AvgLocalMB, rows[i].SemiWarmDelay)
		}
		if rows[i].MeanStallShare < rows[i-1].MeanStallShare-1e-9 {
			t.Fatalf("remote-stall share must rise with pressure: %.4f at %v, %.4f at %v",
				rows[i-1].MeanStallShare, rows[i-1].SemiWarmDelay,
				rows[i].MeanStallShare, rows[i].SemiWarmDelay)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.MeanStallShare <= first.MeanStallShare {
		t.Fatalf("sweep must show real damage growth: share %.4f -> %.4f",
			first.MeanStallShare, last.MeanStallShare)
	}
	if last.StallShareP99 < first.StallShareP99 {
		t.Fatalf("P99 stall share must not fall with pressure: %.4f -> %.4f",
			first.StallShareP99, last.StallShareP99)
	}
	// Every step's attribution must reconcile: phase columns sum to the
	// order-statistic total.
	for _, r := range rows {
		for _, bd := range r.Analysis.Overall.Breakdowns {
			var sum time.Duration
			for _, d := range bd.Phase {
				sum += d
			}
			if sum != bd.Total {
				t.Fatalf("delay %v q=%v: phase sum %v != total %v",
					r.SemiWarmDelay, bd.Q, sum, bd.Total)
			}
		}
	}
	var buf bytes.Buffer
	PrintAttribPressure(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("printer produced nothing")
	}
}
