package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func shortDrilldownOpts() DrilldownOptions {
	return DrilldownOptions{
		Intensities: []float64{0, 1},
		Duration:    4 * time.Minute,
		KeepAlive:   3 * time.Minute,
		Window:      30 * time.Second,
		Seed:        11,
		FaultSeed:   7,
	}
}

// TestDrilldownDeterministicAcrossWidths pins the acceptance criterion: the
// ext-drilldown cells — exemplar paths, flow rows, audit verdicts and all —
// are bit-identical at any -scenario-workers width.
func TestDrilldownDeterministicAcrossWidths(t *testing.T) {
	opt := shortDrilldownOpts()
	if w := DivergentWidth([]int{1, 8}, func() any {
		return Drilldown(opt)
	}); w != -1 {
		t.Fatalf("drilldown cells differ between workers=1 and workers=%d", w)
	}
}

// TestDrilldownSpikeAttribution checks the sweep's structural chain: both
// cells audit conserved, retain exemplars, and the faulted cell's drill-down
// lands on a concrete worst request with a dominant phase.
func TestDrilldownSpikeAttribution(t *testing.T) {
	cells := Drilldown(shortDrilldownOpts())
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if !c.AuditOK {
			t.Errorf("intensity %.2f: flow conservation violated", c.Intensity)
		}
		if c.AuditChecks == 0 {
			t.Errorf("intensity %.2f: no occupancy checkpoints audited", c.Intensity)
		}
		if c.FlowRows == 0 {
			t.Errorf("intensity %.2f: flow ledger empty", c.Intensity)
		}
		if c.ExemplarCells == 0 {
			t.Errorf("intensity %.2f: no exemplar cells retained", c.Intensity)
		}
		if c.Explanation == nil {
			t.Fatalf("intensity %.2f: no explanation", c.Intensity)
		}
		if c.WorstFunction == "" || c.WorstLatencyMs <= 0 {
			t.Errorf("intensity %.2f: no worst exemplar resolved (%q, %.2fms)",
				c.Intensity, c.WorstFunction, c.WorstLatencyMs)
		}
		if c.DominantPhase == "" {
			t.Errorf("intensity %.2f: worst exemplar has no dominant phase", c.Intensity)
		}
	}
}

// TestFlowConservationAcrossFaultPlans is the randomized conservation sweep:
// single-node scenarios across fault intensities and seeds must audit clean
// in every window — retries, fallbacks, discards, tier storms and all.
func TestFlowConservationAcrossFaultPlans(t *testing.T) {
	prof := workload.ByName("web")
	for _, intensity := range []float64{0, 0.3, 0.7, 1} {
		for seed := int64(1); seed <= 3; seed++ {
			rec := timeseries.NewRecorder(timeseries.Config{Window: 15 * time.Second})
			duration := 3 * time.Minute
			fn := trace.GenerateFunction(prof.Name, duration, 4*time.Second, true, seed)
			sc := Scenario{
				Profile:     prof,
				Invocations: fn.Invocations,
				Duration:    duration,
				KeepAlive:   2 * time.Minute,
				Policy:      FaaSMem,
				SeedHistory: true,
				Seed:        seed,
				Timeline:    rec,
			}
			if intensity > 0 {
				sc.Pool.Faults = faultinject.New(faultinject.Config{
					Horizon:   duration + 2*time.Minute,
					Intensity: intensity,
					Seed:      seed + 100,
				})
			}
			out := RunScenario(sc)
			if out.Requests == 0 {
				t.Fatalf("intensity %.1f seed %d: no requests", intensity, seed)
			}
			a := timeseries.AuditFlows(rec)
			if a.Merged {
				t.Fatalf("intensity %.1f seed %d: single run audited as merged", intensity, seed)
			}
			if !a.OK || a.Violations != 0 {
				for _, w := range a.Windows {
					if !w.OK {
						t.Logf("window %d: occ %d vs flow %d (%d checks)",
							w.Window, w.OccDelta, w.FlowDelta, w.Checks)
					}
				}
				t.Fatalf("intensity %.1f seed %d: conservation violated in %d windows",
					intensity, seed, a.Violations)
			}
			if a.Checks == 0 && len(rec.FlowRows()) > 0 {
				t.Fatalf("intensity %.1f seed %d: flows recorded but never checkpointed",
					intensity, seed)
			}
		}
	}
}

// TestPrintDrilldownRendersChain smoke-tests the printer output shape.
func TestPrintDrilldownRendersChain(t *testing.T) {
	opt := shortDrilldownOpts()
	opt.Intensities = []float64{1}
	cells := Drilldown(opt)
	var sb strings.Builder
	PrintDrilldown(&sb, cells)
	out := sb.String()
	for _, want := range []string{"intensity", "dominant", "audit", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintDrilldown output missing %q:\n%s", want, out)
		}
	}
}
