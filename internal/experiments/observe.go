package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/fastswap"
	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// ObserveCell is one fault-intensity cell of the ext-observe sweep: the
// full per-window timeline of a faulted rack run, so fault windows and
// their latency/recovery echo are visible side by side.
type ObserveCell struct {
	// Intensity scales the injected fault plan; 0 is fault-free.
	Intensity float64 `json:"intensity"`
	// FaultWindows is the number of windows in the generated plan.
	FaultWindows int `json:"fault_windows"`
	// Windows is the per-window rollup (see timeseries.SummaryRow).
	Windows []timeseries.SummaryRow `json:"windows"`
	// Dumps is how many flight-recorder dumps the triggers took.
	Dumps int `json:"dumps"`
	// DumpEvents is the total event count across the dumps.
	DumpEvents int `json:"dump_events"`
}

// ObserveOptions sizes the ext-observe sweep.
type ObserveOptions struct {
	// Intensities are the fault-plan intensities swept. Default {0, 1}.
	Intensities []float64
	// Nodes is the rack's compute-node count. Default 3.
	Nodes int
	// Duration of the generated trace. Default 10 m.
	Duration time.Duration
	// KeepAlive of idle containers. Default 8 m.
	KeepAlive time.Duration
	// Window is the rollup window. Default 30 s (coarse enough for a
	// readable table over a 10-minute run).
	Window time.Duration
	// Fallback enables the local-swap fallback recovery path.
	Fallback bool
	// Seed drives the workload; FaultSeed drives the fault plan.
	Seed, FaultSeed int64
}

// Observe replays the resilience workload with a time-series recorder
// attached to every node and renders one timeline per fault intensity. Each
// cell owns its engine and recorder, so rows are bit-identical at any
// -scenario-workers width (the CI determinism gate diffs widths 1 and 8),
// and the fault-free cell doubles as the zero-cost baseline the disabled-
// timeline benchmark guards.
func Observe(opt ObserveOptions) []ObserveCell {
	if len(opt.Intensities) == 0 {
		opt.Intensities = []float64{0, 1}
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 3
	}
	if opt.Duration <= 0 {
		opt.Duration = 10 * time.Minute
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 8 * time.Minute
	}
	if opt.Window <= 0 {
		opt.Window = 30 * time.Second
	}
	horizon := opt.Duration + opt.KeepAlive + time.Minute

	run := func(intensity float64) ObserveCell {
		plan := faultinject.New(faultinject.Config{
			Horizon:   horizon,
			Intensity: intensity,
			Seed:      opt.FaultSeed,
		})
		rec := timeseries.NewRecorder(timeseries.Config{Window: opt.Window})
		nodeCfg := memnode.Config{DRAMBytes: 512 << 20, SpillBytes: 512 << 20}
		swapCfg := fastswap.Config{}
		if opt.Fallback {
			swapCfg.FallbackReadLatency = 50 * time.Microsecond
		}
		e := simtime.NewEngine()
		c := cluster.New(e, cluster.Config{
			Nodes: opt.Nodes,
			Node: faas.Config{
				KeepAliveTimeout: opt.KeepAlive,
				Seed:             opt.Seed,
				Swap:             swapCfg,
				RequestLogSize:   1 << 16,
				Timeline:         rec,
			},
			Pool: rmem.Config{Node: &nodeCfg, Faults: plan},
		}, func() policy.Policy { return core.New(core.Config{}) })
		for i, prof := range workload.Profiles() {
			p := *prof
			fn := trace.GenerateFunction(p.Name, opt.Duration,
				time.Duration(3+i)*time.Second, true, opt.Seed+int64(i))
			if len(fn.Invocations) == 0 {
				continue
			}
			c.Register(p.Name, &p)
			c.ScheduleInvocations(p.Name, fn.Invocations)
		}
		e.RunUntil(horizon)

		cell := ObserveCell{
			Intensity:    intensity,
			FaultWindows: len(plan.Windows()),
			Windows:      timeseries.Summarize(rec),
			Dumps:        len(rec.Dumps()),
		}
		for _, d := range rec.Dumps() {
			cell.DumpEvents += len(d.Events)
		}
		return cell
	}

	cells := make([]ObserveCell, len(opt.Intensities))
	runGrid(len(cells), func(i int) { cells[i] = run(opt.Intensities[i]) })
	return cells
}

// PrintObserve renders one per-window timeline table per intensity.
func PrintObserve(w io.Writer, cells []ObserveCell) {
	fmt.Fprintln(w, "Extension: time-series telemetry — per-window timeline vs fault intensity")
	for _, cell := range cells {
		fmt.Fprintf(w, "\nintensity %.2f: %d fault windows, %d flight dumps (%d events)\n",
			cell.Intensity, cell.FaultWindows, cell.Dumps, cell.DumpEvents)
		table := make([][]string, len(cell.Windows))
		for i, r := range cell.Windows {
			table[i] = []string{
				fmt.Sprintf("%.0f", r.StartSec),
				fmt.Sprintf("%.1f", r.LocalMB),
				fmt.Sprintf("%.1f", r.PoolMB),
				fmt.Sprintf("%.2f", r.OffloadMB),
				fmt.Sprintf("%.2f", r.RecallMB),
				fmt.Sprintf("%d", r.Requests),
				fmt.Sprintf("%.2f", r.P99Ms),
				fmt.Sprintf("%d", r.Retries),
				fmt.Sprintf("%d", r.Timeouts),
				fmt.Sprintf("%d", r.FallbackPages),
				fmt.Sprintf("%d", r.Reinits),
				fmt.Sprintf("%d", r.FaultKinds),
			}
		}
		writeTable(w, []string{
			"t(s)", "local(MB)", "pool(MB)", "offl(MB)", "recall(MB)",
			"reqs", "p99(ms)", "retries", "timeouts", "fallback", "re-inits", "faults",
		}, table)
	}
}
