package experiments

import (
	"testing"
	"time"
)

func shortStatefulOpts() StatefulOptions {
	return StatefulOptions{
		Workflows:   []string{"pipeline", "fanout", "websession"},
		Widths:      []int{8},
		PressuresMB: []int{64},
		Runs:        3,
		Gap:         2 * time.Second,
		Seed:        11,
	}
}

// TestStatefulDeterministicAcrossWidths pins the acceptance criterion that
// ext-stateful rows are bit-identical at any scenario fan-out width.
func TestStatefulDeterministicAcrossWidths(t *testing.T) {
	opt := shortStatefulOpts()
	if w := DivergentWidth([]int{1, 3}, func() any {
		return Stateful(opt)
	}); w != -1 {
		t.Fatalf("stateful rows differ between workers=1 and workers=%d", w)
	}
}

// TestStatefulPoolBeatsReinit checks the sweep's headline claim — pool-backed
// state passing beats cold re-derivation on the chained shapes — plus the
// structural properties every row must carry: all runs complete, the flow
// ledger conserves, regions drain, and the two modes actually took different
// state paths.
func TestStatefulPoolBeatsReinit(t *testing.T) {
	rows := Stateful(shortStatefulOpts())
	byCell := map[string]StatefulRow{}
	for _, r := range rows {
		if r.Completed != r.Runs || r.Runs == 0 {
			t.Errorf("%s/%s: %d of %d runs completed", r.Workflow, r.Mode, r.Completed, r.Runs)
		}
		if !r.AuditOK {
			t.Errorf("%s/%s: flow ledger conservation violated", r.Workflow, r.Mode)
		}
		if !r.Drained {
			t.Errorf("%s/%s: shared regions not drained", r.Workflow, r.Mode)
		}
		switch r.Mode {
		case "pool":
			if r.Regions == 0 || r.RegionMaps == 0 || r.ShareReadMB == 0 {
				t.Errorf("pool row took no region path: %+v", r)
			}
		case "reinit":
			if r.Regions != 0 || r.ShareReadMB != 0 || r.Reinits == 0 {
				t.Errorf("reinit row touched the pool state path: %+v", r)
			}
		}
		if r.Width == 0 && r.PressureMB == 512 {
			byCell[r.Workflow+"/"+r.Mode] = r
		}
	}
	for _, wf := range []string{"pipeline", "fanout"} {
		pool, reinit := byCell[wf+"/pool"], byCell[wf+"/reinit"]
		if pool.MeanRunSec >= reinit.MeanRunSec {
			t.Errorf("%s: pool mean %.3fs >= reinit mean %.3fs", wf, pool.MeanRunSec, reinit.MeanRunSec)
		}
		if pool.P99RunSec >= reinit.P99RunSec {
			t.Errorf("%s: pool P99 %.3fs >= reinit P99 %.3fs", wf, pool.P99RunSec, reinit.P99RunSec)
		}
	}
	// websession's handlers dirty their shared session cache: CoW breaks must
	// show up in pool mode and charge pages.
	if ws := byCell["websession/pool"]; ws.CowBreaks == 0 {
		t.Errorf("websession pool row shows no CoW breaks: %+v", ws)
	}
}
