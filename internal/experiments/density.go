package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/report"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// Fig16Row is one trace's bandwidth and density outcome for one application.
type Fig16Row struct {
	App     string
	TraceID int
	// ReqPerMinute is the trace's average request rate.
	ReqPerMinute float64
	// IntervalSigmaSec is the standard deviation of request intervals.
	IntervalSigmaSec float64
	// BandwidthMBps is the average remote (offload) bandwidth consumed.
	BandwidthMBps float64
	// Density is the estimated deployment-density improvement: original
	// quota divided by the quota reduced by the average offloaded amount
	// per container (§8.6).
	Density float64
}

// Fig16Options sizes the production-density study.
type Fig16Options struct {
	// Traces is the number of random traces per application. Paper: 20.
	// Default 20.
	Traces int
	// Duration per trace. Default 30 m.
	Duration  time.Duration
	KeepAlive time.Duration
	Seed      int64
	// Apps restricts the applications (nil = bert, graph, web).
	Apps []string
}

// Fig16 reproduces Figure 16: remote bandwidth consumption and estimated
// deployment-density improvement across diverse traces for Bert, Graph and
// Web (quotas 1280/256/384 MB). The paper finds bandwidth growing roughly
// linearly with load, density positively correlated with request rate (up to
// 1.4×/1.4×/2.2×) and negatively with the σ of request intervals.
func Fig16(opt Fig16Options) []Fig16Row {
	if opt.Traces <= 0 {
		opt.Traces = 20
	}
	if opt.Duration <= 0 {
		opt.Duration = 30 * time.Minute
	}
	if opt.KeepAlive <= 0 {
		opt.KeepAlive = 10 * time.Minute
	}
	apps := opt.Apps
	if len(apps) == 0 {
		apps = []string{"bert", "graph", "web"}
	}
	type cell struct {
		app  string
		prof *workload.Profile
		id   int
		fn   *trace.Function
	}
	var cells []cell
	var scs []Scenario
	for _, app := range apps {
		prof := workload.ByName(app)
		for id := 0; id < opt.Traces; id++ {
			seed := opt.Seed + int64(id)*7919
			// Vary load and burstiness across traces to cover the scatter.
			gap := time.Duration(2+id*4) * time.Second
			bursty := id%3 == 0
			fn := trace.GenerateFunction(app, opt.Duration, gap, bursty, seed)
			if len(fn.Invocations) < 2 {
				continue
			}
			cells = append(cells, cell{app: app, prof: prof, id: id, fn: fn})
			scs = append(scs, Scenario{
				Profile:     prof,
				Invocations: fn.Invocations,
				Duration:    opt.Duration,
				KeepAlive:   opt.KeepAlive,
				Policy:      FaaSMem,
				SeedHistory: true,
				Seed:        seed,
			})
		}
	}
	outs := RunScenarios(scs)

	var rows []Fig16Row
	for i, c := range cells {
		out := outs[i]
		// Density accounting (§8.6): the average offloaded amount per
		// live container reduces the schedulable quota.
		quotaMB := float64(c.prof.QuotaBytes) / 1e6
		offloadPerContainerMB := 0.0
		if out.LiveAvg > 0 {
			offloadPerContainerMB = out.AvgRemoteMB / out.LiveAvg
		}
		newQuota := quotaMB - offloadPerContainerMB
		density := 1.0
		if newQuota > 0 {
			density = quotaMB / newQuota
		}
		st := c.fn.Intervals()
		rows = append(rows, Fig16Row{
			App:              c.app,
			TraceID:          c.id + 1,
			ReqPerMinute:     c.fn.RequestsPerMinute(opt.Duration),
			IntervalSigmaSec: st.Stddev.Seconds(),
			BandwidthMBps:    out.OffloadBWMBps,
			Density:          density,
		})
	}
	return rows
}

// PrintFig16 renders the density scatter data.
func PrintFig16(w io.Writer, rows []Fig16Row) {
	fmt.Fprintln(w, "Figure 16: remote bandwidth and estimated density improvement")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.App,
			fmt.Sprintf("%d", r.TraceID),
			fmt.Sprintf("%.1f", r.ReqPerMinute),
			fmt.Sprintf("%.1fs", r.IntervalSigmaSec),
			fmt.Sprintf("%.2f MB/s", r.BandwidthMBps),
			fmt.Sprintf("%.2fx", r.Density),
		}
	}
	writeTable(w, []string{"app", "trace", "req/min", "interval sigma", "offload BW", "density"}, table)
	byApp := map[string][]report.Point{}
	var order []string
	for _, r := range rows {
		if _, seen := byApp[r.App]; !seen {
			order = append(order, r.App)
		}
		byApp[r.App] = append(byApp[r.App], report.Point{X: r.ReqPerMinute, Y: r.Density})
	}
	for _, app := range order {
		fmt.Fprintf(w, "  %s: density vs req/min:\n", app)
		fmt.Fprint(w, report.Plot(byApp[app], 44, 6))
	}
}
