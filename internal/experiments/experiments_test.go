package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func TestFig1Shape(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{NumFunctions: 80, Duration: 6 * time.Hour}, 3)
	rows := Fig1(Fig1Options{Trace: tr, Timeouts: []time.Duration{
		10 * time.Second, time.Minute, 10 * time.Minute,
	}})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Inactive time grows with timeout; cold-start ratio falls.
	if !(rows[0].InactiveFraction < rows[1].InactiveFraction && rows[1].InactiveFraction < rows[2].InactiveFraction) {
		t.Errorf("inactive fractions not increasing: %+v", rows)
	}
	if !(rows[0].ColdStartRatio > rows[2].ColdStartRatio) {
		t.Errorf("cold-start ratio not decreasing: %+v", rows)
	}
	// Paper's anchors: ~89% at 10 min, ~70% at 1 min (generous bands).
	if rows[2].InactiveFraction < 0.75 {
		t.Errorf("10-minute inactive fraction = %.2f, want > 0.75", rows[2].InactiveFraction)
	}
	if rows[1].InactiveFraction < 0.5 {
		t.Errorf("1-minute inactive fraction = %.2f, want > 0.5", rows[1].InactiveFraction)
	}
}

func TestFig2DamonSlowdown(t *testing.T) {
	rows := Fig2(Fig2Options{
		Duration: 30 * time.Minute,
		MeanGap:  25 * time.Second,
		Benches:  []string{"json", "web", "graph"},
		Seed:     5,
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Slowdown <= 1 {
			t.Errorf("%s: DAMON slowdown %.2f, want > 1", r.Bench, r.Slowdown)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	rows := Fig4()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Platform.String()+"/"+r.Language.String()] = r.InactiveMB
		if r.InactiveMB <= 0 {
			t.Errorf("%v/%v inactive = %v", r.Platform, r.Language, r.InactiveMB)
		}
	}
	// Paper's shape: Azure > 100 MB-ish; Java largest per platform;
	// OpenWhisk Python ≈ 24 MB minus its hot slice.
	if byKey["OpenWhisk/Java"] <= byKey["OpenWhisk/Python"] {
		t.Error("OpenWhisk Java should exceed Python")
	}
	if byKey["Azure/Python"] <= byKey["OpenWhisk/Python"] {
		t.Error("Azure runtimes should exceed OpenWhisk")
	}
	if byKey["OpenWhisk/Python"] < 18 || byKey["OpenWhisk/Python"] > 25 {
		t.Errorf("OpenWhisk Python inactive = %.0f MB, want ~22", byKey["OpenWhisk/Python"])
	}
}

func TestFig5Shape(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{NumFunctions: 150, Duration: 8 * time.Hour}, 9)
	rows := Fig5(Fig5Options{Trace: tr})
	if len(rows) == 0 {
		t.Fatal("no CDF points")
	}
	last := rows[len(rows)-1]
	if last.CumFrac != 1 {
		t.Errorf("CDF must end at 1, got %v", last.CumFrac)
	}
	if Fig5AtMost(rows, 2) < 0.3 {
		t.Errorf("share of containers with <= 2 requests = %.2f, want substantial", Fig5AtMost(rows, 2))
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(Fig6Options{Requests: 5, Seed: 2})
	var initRows, reqRows int
	for _, r := range rows {
		switch r.Phase {
		case "init":
			initRows++
		case "request":
			reqRows++
			// Paper: ~610 MB accessed per request.
			if r.AccessedMB < 500 || r.AccessedMB > 750 {
				t.Errorf("request accessed %.0f MB, want ~610", r.AccessedMB)
			}
			if r.ResidentMB < 800 {
				t.Errorf("resident %.0f MB, want >= init footprint", r.ResidentMB)
			}
		}
	}
	if initRows == 0 || reqRows != 5 {
		t.Fatalf("rows: init=%d req=%d", initRows, reqRows)
	}
}

func TestFig8RecallsAreSmall(t *testing.T) {
	rows := Fig8(Fig8Options{Requests: 10, Seed: 4})
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11 benchmarks", len(rows))
	}
	for _, r := range rows {
		// Paper: 0–3 recall pages.
		if r.RecallPages > 8 {
			t.Errorf("%s: %d runtime recalls, want near zero", r.Bench, r.RecallPages)
		}
		if r.Requests != 11 {
			t.Errorf("%s: requests = %d, want 11", r.Bench, r.Requests)
		}
	}
}

func TestFig9Spans(t *testing.T) {
	rows := Fig9(30, 6)
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	prof := workload.Web()
	sharedMB := float64(prof.InitHotBytes) / 1e6
	initMB := float64(prof.InitBytes) / 1e6
	distinct := map[float64]bool{}
	for _, r := range rows {
		if r.SharedMB != sharedMB {
			t.Errorf("shared = %v, want %v", r.SharedMB, sharedMB)
		}
		if len(r.Objects) < 1 || len(r.Objects) > prof.ObjectsPerRequest {
			t.Errorf("request %d touched %d objects", r.Request, len(r.Objects))
		}
		for _, o := range r.Objects {
			if o.StartMB < sharedMB || o.EndMB > initMB {
				t.Errorf("object span %v-%v escapes init segment", o.StartMB, o.EndMB)
			}
			distinct[o.StartMB] = true
		}
	}
	if len(distinct) < 3 {
		t.Errorf("only %d distinct objects over 30 requests; Pareto tail missing", len(distinct))
	}
}

func TestFig12QuickShape(t *testing.T) {
	rows := Fig12(Fig12Options{
		Duration: 12 * time.Minute,
		Benches:  []string{"web", "json"},
		Seed:     11,
	})
	if len(rows) != 2*2*3 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	get := func(load, bench string, pk PolicyKind) Fig12Row {
		for _, r := range rows {
			if r.Load == load && r.Bench == bench && r.Policy == pk {
				return r
			}
		}
		t.Fatalf("missing row %s/%s/%s", load, bench, pk)
		return Fig12Row{}
	}
	for _, load := range []string{"high", "low"} {
		for _, bench := range []string{"web", "json"} {
			base := get(load, bench, Baseline)
			tmo := get(load, bench, TMO)
			fm := get(load, bench, FaaSMem)
			if fm.AvgLocalMB >= base.AvgLocalMB {
				t.Errorf("%s/%s: FaaSMem mem %.1f not below baseline %.1f", load, bench, fm.AvgLocalMB, base.AvgLocalMB)
			}
			if fm.AvgLocalMB >= tmo.AvgLocalMB {
				t.Errorf("%s/%s: FaaSMem mem %.1f not below TMO %.1f", load, bench, fm.AvgLocalMB, tmo.AvgLocalMB)
			}
			// Latency must stay in the same ballpark (paper: ≤ ~10%; we
			// allow a wider simulated band).
			if fm.P95 > base.P95*1.3+0.05 {
				t.Errorf("%s/%s: FaaSMem P95 %.3f vs base %.3f exceeds band", load, bench, fm.P95, base.P95)
			}
		}
	}
}

func TestTable1QuickShape(t *testing.T) {
	rows := Table1(Table1Options{Duration: 8 * time.Minute, Traces: 2, Seed: 13})
	if len(rows) != 2*3*3 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	// Per (trace, app): FaaSMem offloads more than TMO.
	for id := 1; id <= 2; id++ {
		for _, app := range []string{"bert", "graph", "web"} {
			var tmoRatio, fmRatio float64
			for _, r := range rows {
				if r.TraceID == id && r.App == app {
					switch r.Policy {
					case TMO:
						tmoRatio = r.OffloadRatio
					case FaaSMem:
						fmRatio = r.OffloadRatio
					}
				}
			}
			if fmRatio <= tmoRatio {
				t.Errorf("trace %d %s: FaaSMem ratio %.2f <= TMO %.2f", id, app, fmRatio, tmoRatio)
			}
		}
	}
}

func TestFig13QuickShape(t *testing.T) {
	rows := Fig13(Fig13Options{Duration: 12 * time.Minute, Seed: 17, WithTimeline: true})
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	get := func(cs string, v PolicyKind) Fig13Row {
		for _, r := range rows {
			if r.Case == cs && r.Variant == v {
				return r
			}
		}
		t.Fatalf("missing %s/%s", cs, v)
		return Fig13Row{}
	}
	for _, cs := range []string{"common", "bursty"} {
		base := get(cs, Baseline)
		full := get(cs, FaaSMem)
		noP := get(cs, FaaSMemNoPucket)
		noS := get(cs, FaaSMemNoSemi)
		if full.AvgMemMB >= base.AvgMemMB {
			t.Errorf("%s: FaaSMem mem not below baseline", cs)
		}
		if noP.AvgMemMB < full.AvgMemMB {
			t.Errorf("%s: removing Pucket should not reduce memory", cs)
		}
		if noS.AvgMemMB < full.AvgMemMB {
			t.Errorf("%s: removing Semi-warm should not reduce memory", cs)
		}
	}
	// Timeline recorded for common-case runs.
	if get("common", FaaSMem).Timeline == nil || get("common", FaaSMem).Timeline.Len() == 0 {
		t.Error("common-case timeline missing")
	}
	if get("bursty", FaaSMem).Timeline != nil {
		t.Error("bursty case should not record a timeline")
	}
}

func TestFig14QuickShape(t *testing.T) {
	rows := Fig14(Fig14Options{NumFunctions: 60, Duration: 3 * time.Hour, Seed: 19})
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 classes", len(rows))
	}
	totalContainers := 0
	for _, r := range rows {
		totalContainers += r.Containers
		if r.MedianShare < 0 || r.MedianShare > 1 {
			t.Errorf("%v median share %v out of [0,1]", r.Class, r.MedianShare)
		}
		for _, pt := range r.ShareCDF {
			if pt.Value < 0 || pt.Value > 1 {
				t.Errorf("%v share CDF value %v out of range", r.Class, pt.Value)
			}
		}
	}
	if totalContainers == 0 {
		t.Fatal("no containers recycled in the study window")
	}
}

func TestFig15OverheadBounds(t *testing.T) {
	rows := Fig15()
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The kernel implementation stays under 10 ms; our in-memory walk
		// must also be milliseconds-scale even for Bert's 800 MB segment.
		if r.RuntimeInitBarrier > 100*time.Millisecond ||
			r.InitExecBarrier > 500*time.Millisecond ||
			r.Rollback > 500*time.Millisecond {
			t.Errorf("%s: overheads %v/%v/%v too large", r.Bench,
				r.RuntimeInitBarrier, r.InitExecBarrier, r.Rollback)
		}
	}
	// Applications' init-exec barrier should cost more than micro
	// benchmarks' (larger init segment).
	var bert, js time.Duration
	for _, r := range rows {
		switch r.Bench {
		case "bert":
			bert = r.InitExecBarrier
		case "json":
			js = r.InitExecBarrier
		}
	}
	if bert <= js {
		t.Errorf("bert barrier %v should exceed json %v", bert, js)
	}
}

func TestFig16QuickShape(t *testing.T) {
	rows := Fig16(Fig16Options{Traces: 4, Duration: 10 * time.Minute, Seed: 23, Apps: []string{"graph", "web"}})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	maxDensity := map[string]float64{}
	for _, r := range rows {
		if r.Density < 1 {
			t.Errorf("%s trace %d: density %.2f < 1", r.App, r.TraceID, r.Density)
		}
		if r.BandwidthMBps < 0 {
			t.Errorf("negative bandwidth")
		}
		if r.Density > maxDensity[r.App] {
			maxDensity[r.App] = r.Density
		}
	}
	// Paper: Web gains the most density (2.2× vs 1.4×).
	if maxDensity["web"] <= maxDensity["graph"] {
		t.Errorf("web max density %.2f should exceed graph %.2f", maxDensity["web"], maxDensity["graph"])
	}
}

func TestPrintersProduceTables(t *testing.T) {
	var sb strings.Builder
	PrintFig1(&sb, []Fig1Row{{Timeout: time.Minute, InactiveFraction: 0.7, ColdStartRatio: 0.1}})
	PrintFig2(&sb, []Fig2Row{{Bench: "json", BaseP95: 0.1, DamonP95: 1.4, Slowdown: 14}})
	PrintFig4(&sb, []Fig4Row{{Platform: workload.OpenWhisk, Language: workload.Python, InactiveMB: 22}})
	PrintFig5(&sb, []Fig5Row{{Requests: 2, CumFrac: 0.6}})
	PrintFig6(&sb, []Fig6Row{{TimeSec: 1, Phase: "init", ResidentMB: 100, AccessedMB: 100}})
	PrintFig8(&sb, []Fig8Row{{Bench: "web", RecallPages: 1, Requests: 20}})
	PrintFig9(&sb, []Fig9Row{{Request: 0, SharedMB: 20, Objects: []Fig9Span{{21, 22}}}})
	PrintFig12(&sb, []Fig12Row{{Bench: "web", Load: "high", Policy: FaaSMem, AvgLocalMB: 100, MemVsBase: 0.3, P95: 0.1, P95VsBase: 1.02}})
	PrintFig13(&sb, []Fig13Row{{Case: "common", Variant: FaaSMem, AvgMemMB: 500, MemVsFaaSMem: 1}})
	PrintFig14(&sb, []Fig14Class{{Class: trace.HighLoad, MedianShare: 0.5, Containers: 10}})
	PrintFig15(&sb, []Fig15Row{{Bench: "json", RuntimeInitBarrier: time.Millisecond, InitExecBarrier: time.Millisecond, Rollback: time.Millisecond}})
	PrintFig16(&sb, []Fig16Row{{App: "web", TraceID: 1, ReqPerMinute: 10, IntervalSigmaSec: 4, BandwidthMBps: 0.5, Density: 2.2}})
	PrintTable1(&sb, []Table1Row{{TraceID: 1, App: "bert", Policy: FaaSMem, P95: 0.15, MemGB: 1.6, OffloadRatio: 0.4}})
	out := sb.String()
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 4", "Figure 5", "Figure 6", "Figure 8", "Figure 9", "Figure 12", "Figure 13", "Figure 14", "Figure 15", "Figure 16", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}

func TestSweepAndCSV(t *testing.T) {
	prof := workload.ByName("json")
	inv := LowLoadInvocations(5*time.Minute, 3)
	points := []SweepPoint{
		{Label: "a", Scenario: Scenario{Profile: prof, Invocations: inv, Duration: 5 * time.Minute, Policy: Baseline, Seed: 3}},
		{Label: "b", Scenario: Scenario{Profile: prof, Invocations: inv, Duration: 5 * time.Minute, Policy: FaaSMem, Seed: 3}},
	}
	results := Sweep(points)
	if len(results) != 2 || results[0].Label != "a" || results[1].Label != "b" {
		t.Fatalf("results = %+v", results)
	}
	if results[1].Outcome.AvgLocalMB >= results[0].Outcome.AvgLocalMB {
		t.Error("faasmem point should use less memory")
	}
	var sb strings.Builder
	if err := WriteSweepCSV(&sb, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "label,policy,requests") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a,baseline,") || !strings.HasPrefix(lines[2], "b,faasmem,") {
		t.Fatalf("csv rows = %q / %q", lines[1], lines[2])
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	sc := Scenario{
		Profile:     workload.ByName("web"),
		Invocations: HighLoadInvocations(5*time.Minute, 9),
		Duration:    5 * time.Minute,
		Policy:      FaaSMem,
		SeedHistory: true,
		Seed:        9,
	}
	a := RunScenario(sc)
	a.CoreStats = nil // pointer differs between runs by construction
	b := RunScenario(sc)
	b.CoreStats = nil
	if a != b {
		t.Fatalf("identical scenarios diverged:\n%+v\n%+v", a, b)
	}
}
