package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/memnode"
)

// quickMerge is a small sweep that still builds cross-function fan-in.
func quickMerge(seed int64) MergeDomainsOptions {
	return MergeDomainsOptions{
		DRAMMB:   192,
		Duration: 4 * time.Minute,
		Seed:     seed,
	}
}

func TestMergeDomainsSweep(t *testing.T) {
	rows := MergeDomains(quickMerge(1))
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3 scopes x 2 write ratios", len(rows))
	}
	type cell struct {
		scope memnode.MergeScope
		ratio float64
	}
	byCell := map[cell]MergeDomainsRow{}
	for _, r := range rows {
		if !r.IsolationOK {
			t.Fatalf("isolation/fairness invariants violated in row %+v", r)
		}
		byCell[cell{r.Scope, r.WriteRatio}] = r
	}

	fun := byCell[cell{memnode.MergeFunction, 0}]
	ten := byCell[cell{memnode.MergeTenant, 0}]
	cross := byCell[cell{memnode.MergeCrossTenant, 0}]

	// Acceptance: widening the merge domain buys effective capacity over
	// per-function dedup, monotonically.
	if !(cross.Amplification > ten.Amplification && ten.Amplification > fun.Amplification) {
		t.Fatalf("amplification not monotone in scope: function %.3f, tenant %.3f, cross %.3f",
			fun.Amplification, ten.Amplification, cross.Amplification)
	}
	if fun.MergedPages != 0 {
		t.Fatalf("function scope merged %d pages, want 0", fun.MergedPages)
	}
	if !(ten.MergedPages > 0 && cross.MergedPages > ten.MergedPages) {
		t.Fatalf("merged pages should grow with scope: tenant %d, cross %d",
			ten.MergedPages, cross.MergedPages)
	}
	// Read-only rows never break.
	for _, r := range []MergeDomainsRow{fun, ten, cross} {
		if r.UnmergeBreaks != 0 || r.UnmergedPages != 0 {
			t.Fatalf("read-only row broke masters: %+v", r)
		}
	}
	// Widening scope must not change scheduling.
	if ten.Requests != fun.Requests || cross.Requests != fun.Requests {
		t.Fatalf("requests differ across scopes: %d/%d/%d",
			fun.Requests, ten.Requests, cross.Requests)
	}

	// Write-hot rows storm the CoW unmerge path at every scope with shared
	// masters, and the storm erodes the density win.
	for _, sc := range memnode.MergeScopes() {
		hot := byCell[cell{sc, 0.3}]
		if hot.UnmergeBreaks == 0 || hot.UnmergedPages == 0 {
			t.Fatalf("write-hot %s row produced no unmerge breaks: %+v", sc, hot)
		}
	}
	hotCross := byCell[cell{memnode.MergeCrossTenant, 0.3}]
	if hotCross.Amplification >= cross.Amplification {
		t.Fatalf("write-hot cross amplification %.3f should fall below read-only %.3f",
			hotCross.Amplification, cross.Amplification)
	}
	// The cache tier is live at widened scopes and off at function scope.
	if fun.CacheHitPct != 0 || fun.CacheEvictions != 0 {
		t.Fatalf("function scope should run with the cache off: %+v", fun)
	}
	if cross.CacheHitPct <= 0 {
		t.Fatalf("cross-tenant cache never hit: %+v", cross)
	}

	var sb strings.Builder
	PrintMergeDomains(&sb, rows)
	if !strings.Contains(sb.String(), "cross-tenant merge domains") ||
		strings.Contains(sb.String(), "VIOLATED") {
		t.Fatalf("rendered table:\n%s", sb.String())
	}
}

// TestMergeDomainsReproducesPoolDensity is the zero-cost metamorphic check:
// the function-scope, read-only, cache-off cell is the same simulation as the
// ext-pool-density dedup cell, so the shared columns must agree exactly.
func TestMergeDomainsReproducesPoolDensity(t *testing.T) {
	mrows := MergeDomains(MergeDomainsOptions{
		Scopes:      []memnode.MergeScope{memnode.MergeFunction},
		WriteRatios: []float64{0},
		DRAMMB:      192,
		Duration:    4 * time.Minute,
		Seed:        1,
	})
	if len(mrows) != 1 {
		t.Fatalf("rows = %d, want 1", len(mrows))
	}
	m := mrows[0]

	var d PoolDensityRow
	for _, r := range PoolDensity(quickDensity(1)) {
		if r.Mode == DensityDedup {
			d = r
		}
	}
	if m.Requests != d.Requests ||
		m.ColdStartRatio != d.ColdStartRatio ||
		m.LogicalPeakMB != d.LogicalPeakMB ||
		m.ResidentPeakMB != d.ResidentPeakMB ||
		m.Amplification != d.Amplification ||
		m.DedupHitPages != d.DedupHitPages {
		t.Fatalf("function-scope merge cell diverged from the pool-density dedup cell:\nmerge   %+v\ndensity %+v", m, d)
	}
	if m.MergedPages != 0 || m.UnmergeBreaks != 0 || m.CacheEvictions != 0 {
		t.Fatalf("merge machinery active in the equivalence cell: %+v", m)
	}
}

func TestMergeDomainsDeterministicAcrossWidths(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	want := MergeDomains(quickMerge(7))
	for _, w := range []int{2, 8} {
		SetWorkers(w)
		got := MergeDomains(quickMerge(7))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("rows differ at %d workers:\nwant %+v\ngot  %+v", w, want, got)
		}
	}
}
