package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// RackRow summarizes one policy's rack-wide outcome under a DRAM limit.
type RackRow struct {
	Policy PolicyKind
	// ColdStartRatio across all requests (evictions manufacture cold starts).
	ColdStartRatio float64
	// Evicted counts idle containers reclaimed by the memory limit.
	Evicted int
	// Requests served rack-wide.
	Requests int
	// AvgLocalMB is the summed average node-local memory.
	AvgLocalMB float64
	// OffloadBWMBps is the rack-level link's average offload bandwidth —
	// §9 sizes the rack link from this number.
	OffloadBWMBps float64
	// Rescheduled counts warm reuses redirected off memory-strapped nodes
	// (the §9 load-imbalance case).
	Rescheduled int
}

// RackDensityOptions sizes the rack study.
type RackDensityOptions struct {
	// Nodes in the rack. Default 4 (keeps the study fast; §9 uses ~10).
	Nodes int
	// NodeMemoryLimitMB is the per-node DRAM. Default 2000 MB — tight enough
	// that the baseline must evict keep-alive containers.
	NodeMemoryLimitMB int64
	// Functions mapped round-robin onto the three applications. Default 12.
	Functions int
	// Duration of the trace. Default 20 m.
	Duration time.Duration
	Seed     int64
}

// RackDensity measures the deployment-density mechanism directly (instead of
// Fig. 16's quota arithmetic): under the same per-node DRAM limit, FaaSMem's
// offloading keeps more keep-alive containers resident, so fewer idle
// containers are evicted and fewer requests cold-start.
func RackDensity(opt RackDensityOptions) []RackRow {
	if opt.Nodes <= 0 {
		opt.Nodes = 4
	}
	if opt.NodeMemoryLimitMB <= 0 {
		opt.NodeMemoryLimitMB = 2000
	}
	if opt.Functions <= 0 {
		opt.Functions = 12
	}
	if opt.Duration <= 0 {
		opt.Duration = 20 * time.Minute
	}
	apps := []*workload.Profile{workload.Bert(), workload.Graph(), workload.Web()}

	run := func(kind PolicyKind) RackRow {
		e := simtime.NewEngine()
		c := cluster.New(e, cluster.Config{
			Nodes: opt.Nodes,
			Node: faas.Config{
				KeepAliveTimeout: 10 * time.Minute,
				NodeMemoryLimit:  opt.NodeMemoryLimitMB * 1_000_000,
				Seed:             opt.Seed,
			},
			Pool: rmem.Config{},
		}, func() policy.Policy {
			if kind == Baseline {
				return policy.NoOffload{}
			}
			return core.New(core.Config{})
		})
		for i := 0; i < opt.Functions; i++ {
			prof := *apps[i%len(apps)]
			prof.Name = fmt.Sprintf("%s-%d", prof.Name, i)
			fn := trace.GenerateFunction(prof.Name, opt.Duration,
				time.Duration(20+7*i)*time.Second, i%2 == 0, opt.Seed+int64(i))
			if len(fn.Invocations) == 0 {
				continue
			}
			c.Register(prof.Name, &prof)
			c.ScheduleInvocations(prof.Name, fn.Invocations)
		}
		e.RunUntil(opt.Duration + 10*time.Minute)
		st := c.Stats()
		row := RackRow{
			Policy:        kind,
			Evicted:       st.Evicted,
			Requests:      st.Requests,
			AvgLocalMB:    st.TotalLocalAvgMB,
			OffloadBWMBps: st.OffloadBWMBps,
			Rescheduled:   st.Rescheduled,
		}
		if st.Requests > 0 {
			row.ColdStartRatio = float64(st.ColdStarts) / float64(st.Requests)
		}
		return row
	}
	kinds := []PolicyKind{Baseline, FaaSMem}
	rows := make([]RackRow, len(kinds))
	runGrid(len(kinds), func(i int) { rows[i] = run(kinds[i]) })
	return rows
}

// PrintRackDensity renders the rack study.
func PrintRackDensity(w io.Writer, rows []RackRow) {
	fmt.Fprintln(w, "Extension (§8.6/§9): rack with per-node DRAM limits and a shared pool")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			string(r.Policy),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.2f%%", r.ColdStartRatio*100),
			fmt.Sprintf("%d", r.Evicted),
			fmt.Sprintf("%.0f MB", r.AvgLocalMB),
			fmt.Sprintf("%.2f MB/s", r.OffloadBWMBps),
			fmt.Sprintf("%d", r.Rescheduled),
		}
	}
	writeTable(w, []string{"policy", "requests", "cold-start ratio", "evictions", "avg rack local", "offload BW", "rescheduled"}, table)
}
