// Package memnode models the pool side of the disaggregated-memory rack
// (§9 of the paper): a memory node that receives offloaded pages *described*
// by their provenance (function, container, lifecycle class) rather than as
// anonymous bytes, and manages them for density.
//
// Three mechanisms multiply the node's effective capacity:
//
//   - Content-class dedup: FaaSMem offloads mostly init-epoch (and runtime)
//     pages, which are near-identical across containers of the same function
//     ("User-guided Page Merging for Memory Deduplication in Serverless
//     Systems"). The node keeps one resident copy per (function, class) with
//     a refcount; each additional container's offload of the same prefix
//     shares it.
//   - A zswap-style compression tier: under DRAM pressure cold entries are
//     compressed in place at a configurable ratio; recalls of compressed
//     pages pay a decompression latency ("Squeezy: Rapid VM Memory
//     Reclamation for Serverless Functions").
//   - A spill tier with LRU-by-class eviction: when compressed DRAM still
//     does not fit, the least recently used entries of the least valuable
//     class (exec first, shared init last) are demoted to a slower backing
//     store. Demotion never drops pages — every offloaded page stays
//     recallable, it just gets slower — so the compute-side Remote state
//     never diverges from the pool.
//
// Per-tenant quotas bound any one tenant's logical footprint; over-quota
// offloads are truncated and counted.
//
// The node is pure bookkeeping on virtual time: it returns latencies for the
// caller (rmem.Pool) to fold into fault stalls, and never blocks. All state
// is deterministic — eviction scans walk insertion/recency-ordered lists,
// never Go map iteration order.
package memnode

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/telemetry"
)

// Class is the lifecycle class of a described page batch. The numbering
// matches telemetry.Stage so offload instrumentation can convert for free.
type Class uint8

const (
	// ClassOther is a page outside any tracked segment.
	ClassOther Class = iota
	// ClassRuntime is a runtime-segment page (Runtime Pucket).
	ClassRuntime
	// ClassInit is an init-segment page (Init Pucket).
	ClassInit
	// ClassExec is an exec-segment temporary.
	ClassExec
	// ClassShared is a page of a named shared-state region: intermediate
	// state a workflow stage produced into the pool for downstream stages to
	// map read-shared (internal/sharedmem). Region entries are keyed by the
	// region's synthetic owner, not dedup-merged — two regions with the same
	// tenant hold distinct content.
	ClassShared
	// NumClasses sizes per-class arrays.
	NumClasses = 5
)

func (c Class) String() string {
	switch c {
	case ClassRuntime:
		return "runtime"
	case ClassInit:
		return "init"
	case ClassExec:
		return "exec"
	case ClassShared:
		return "shared"
	default:
		return "other"
	}
}

// Shared reports whether the class dedups across containers of one function.
// Runtime and init pages are materialized from the same image/initialization
// and are near-identical between containers; exec temporaries are per-request
// private data. ClassShared regions share by *mapping* (many readers of one
// owner's entry), not by content dedup, so they key privately here.
func (c Class) Shared() bool { return c == ClassRuntime || c == ClassInit }

// victimOrder is the eviction class priority, most evictable first: private
// exec/other pages go first, then shared-state regions (their consumers pay a
// tier surcharge on the next map, never lose data), then the runtime copy,
// and the init copy — the highest-fan-in dedup target — is evicted last.
var victimOrder = [NumClasses]Class{ClassExec, ClassOther, ClassShared, ClassRuntime, ClassInit}

// Config describes a memory node. The zero value gets workable defaults.
type Config struct {
	// PageSize in bytes. Default 4096.
	PageSize int `json:"page_size,omitempty"`
	// DRAMBytes is the node's DRAM, holding the hot and compressed tiers.
	// Default 16 GiB.
	DRAMBytes int64 `json:"dram_bytes,omitempty"`
	// SpillBytes bounds the spill tier. Zero means unbounded (the node can
	// always demote, so it never rejects for capacity).
	SpillBytes int64 `json:"spill_bytes,omitempty"`
	// DisableDedup stores every described batch privately (the baseline the
	// density experiments compare against).
	DisableDedup bool `json:"disable_dedup,omitempty"`
	// DisableCompression turns the compression tier off.
	DisableCompression bool `json:"disable_compression,omitempty"`
	// CompressRatio is the zswap-style compression ratio (stored bytes =
	// raw/ratio). Default 3.0 — typical for zeroed/initialized pages.
	CompressRatio float64 `json:"compress_ratio,omitempty"`
	// CompressLatency is the pool-side CPU cost of compressing one page.
	// It is off the request critical path (compression runs on the node)
	// but accumulated in Stats for capacity planning. Default 1 µs.
	CompressLatency time.Duration `json:"compress_latency,omitempty"`
	// DecompressLatency is added to a recall for each page served from the
	// compressed tier. Default 3 µs.
	DecompressLatency time.Duration `json:"decompress_latency,omitempty"`
	// SpillLatency is added to a recall for each page served from the spill
	// tier. Default 80 µs (NVMe-class read).
	SpillLatency time.Duration `json:"spill_latency,omitempty"`
	// TenantQuotaBytes caps any one tenant's logical bytes on the node.
	// Zero disables quotas.
	TenantQuotaBytes int64 `json:"tenant_quota_bytes,omitempty"`
	// TenantOf maps a function ID to its tenant for quota accounting.
	// Default: every function is its own tenant.
	TenantOf func(fn string) string `json:"-"`
	// MergeScope widens runtime-page merge domains beyond a single function:
	// MergeTenant collapses content-identical runtime pages across one
	// tenant's functions, MergeCrossTenant across every tenant that opted in
	// via MergeOptIn. Init pages always merge per-function — they carry
	// function-specific initialization state. Default (and ""):
	// MergeFunction, the per-function dedup of the density studies. Unknown
	// values behave as MergeFunction.
	MergeScope MergeScope `json:"merge_scope,omitempty"`
	// MergeOptIn lists tenants that consented to cross-tenant merging. Only
	// meaningful at MergeCrossTenant scope; a tenant absent from the list
	// keeps a tenant-wide domain, so its pages never share a master with
	// another tenant's. This is the hard security boundary: merging crosses a
	// tenant edge only between two opted-in tenants.
	MergeOptIn []string `json:"merge_opt_in,omitempty"`
	// CacheBytes sizes the shared multi-tenant cache tier for hot copies of
	// merge masters: a recall or read of a cached master skips the
	// compressed/spill tier surcharge. Zero (default) disables the cache.
	// The cache is a dedicated DRAM partition, accounted separately from
	// DRAMBytes.
	CacheBytes int64 `json:"cache_bytes,omitempty"`
	// CacheShares weights each tenant's share of the cache tier: a tenant's
	// share is CacheBytes·w/Σw over the tenants currently occupying the
	// cache, and fairness eviction keeps every occupant within its share.
	// Missing or non-positive weights default to 1.
	CacheShares map[string]float64 `json:"cache_shares,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.DRAMBytes <= 0 {
		c.DRAMBytes = 16 << 30
	}
	if c.CompressRatio <= 1 {
		c.CompressRatio = 3.0
	}
	if c.CompressLatency <= 0 {
		c.CompressLatency = time.Microsecond
	}
	if c.DecompressLatency <= 0 {
		c.DecompressLatency = 3 * time.Microsecond
	}
	if c.SpillLatency <= 0 {
		c.SpillLatency = 80 * time.Microsecond
	}
	switch c.MergeScope {
	case MergeTenant, MergeCrossTenant:
	default:
		c.MergeScope = MergeFunction
	}
	return c
}

// entryKey identifies a page-store entry: shared entries (dedupable classes)
// key on their merge domain — the function itself at MergeFunction scope, a
// tenant- or rack-wide domain at wider scopes — and private entries on the
// owning container.
type entryKey struct {
	dom   string
	owner string // "" for shared entries
	class Class
}

// entry is one resident copy in the page store: the pages of one class of
// one function (shared) or one container (private), tracked per tier.
type entry struct {
	key    entryKey
	shared bool

	// refs maps owner container → logical pages it holds against this entry
	// (shared entries only). The resident copy is the longest offloaded
	// prefix: maxPages = max over refs, atMax = owners currently at it.
	refs     map[string]int
	maxPages int
	atMax    int
	// pages is the private-entry page count.
	pages int

	// Resident pages by tier; hot+comp+spill always equals the resident
	// target (maxPages or pages).
	hot, comp, spill int

	// Recency list links (per-class LRU; head is coldest).
	prev, next *entry
}

func (e *entry) residentTarget() int {
	if e.shared {
		return e.maxPages
	}
	return e.pages
}

// ownerRefs indexes one container's holdings for O(its entries) discard.
// An owner describes pages of exactly one function (containers run one
// function; region owners are synthetic and keyed per region), recorded here
// so discards and isolation checks can recover the tenant even when the
// entry key is a widened merge domain.
type ownerRefs struct {
	fn    string
	keys  []entryKey // insertion order, for deterministic iteration
	seen  map[entryKey]bool
	pages int64 // logical pages this owner holds
}

// RecallCost is what recalling pages from the node costs the caller.
type RecallCost struct {
	// Pages actually released (clamped to the owner's holdings).
	Pages int
	// Latency is the tier surcharge: decompression and spill reads for the
	// fraction of the resident copy living in those tiers.
	Latency time.Duration
}

// Stats is a point-in-time snapshot of the node.
type Stats struct {
	LogicalBytes       int64 `json:"logical_bytes"`
	ResidentBytes      int64 `json:"resident_bytes"`
	DRAMUsedBytes      int64 `json:"dram_used_bytes"`
	SpillUsedBytes     int64 `json:"spill_used_bytes"`
	DedupSavedBytes    int64 `json:"dedup_saved_bytes"`
	CompressSavedBytes int64 `json:"compress_saved_bytes"`

	PeakLogicalBytes  int64 `json:"peak_logical_bytes"`
	PeakResidentBytes int64 `json:"peak_resident_bytes"`

	Entries int `json:"entries"`
	Owners  int `json:"owners"`

	DedupHitPages    int64 `json:"dedup_hit_pages"`
	CompressedPages  int64 `json:"compressed_pages"`
	SpilledPages     int64 `json:"spilled_pages"`
	Evictions        int64 `json:"evictions"`
	QuotaRejectPages int64 `json:"quota_reject_pages"`
	FullRejectPages  int64 `json:"full_reject_pages"`

	// Merge-domain activity: pages admitted onto a master wider than their
	// own function (a subset of DedupHitPages), and CoW unmerges — break
	// events, pages privatized, and pages recalled to the writer because the
	// private copy did not fit.
	MergedPages        int64 `json:"merged_pages,omitempty"`
	UnmergeBreaks      int64 `json:"unmerge_breaks,omitempty"`
	UnmergedPages      int64 `json:"unmerged_pages,omitempty"`
	UnmergeRecallPages int64 `json:"unmerge_recall_pages,omitempty"`

	// Shared cache tier activity (zero when CacheBytes is 0).
	CacheHitPages  int64 `json:"cache_hit_pages,omitempty"`
	CacheMissPages int64 `json:"cache_miss_pages,omitempty"`
	CacheEvictions int64 `json:"cache_evictions,omitempty"`
	CacheUsedBytes int64 `json:"cache_used_bytes,omitempty"`

	// Pool-side CPU time spent (de)compressing — off the request critical
	// path for compression, on it for decompression.
	CompressTime   time.Duration `json:"compress_time"`
	DecompressTime time.Duration `json:"decompress_time"`
}

// Node is a simulated pool-side memory node. Not safe for concurrent use;
// the DES engine is single-threaded by design.
type Node struct {
	cfg Config

	entries map[entryKey]*entry
	owners  map[string]*ownerRefs
	tenants map[string]int64 // tenant → logical bytes
	// Per-class recency lists: head is LRU, tail is MRU.
	lruHead, lruTail [NumClasses]*entry

	logicalPages    int64
	hotPages        int64
	compPages       int64
	spillPages      int64
	compStoredBytes int64 // DRAM actually used by the compressed tier

	peakLogicalBytes  int64
	peakResidentBytes int64

	dedupHitPages    int64
	compressedPages  int64
	spilledPages     int64
	evictions        int64
	quotaRejectPages int64
	fullRejectPages  int64
	compressTime     time.Duration
	decompressTime   time.Duration

	// Merge-domain state: opted-in tenants (cross-tenant scope), a fn →
	// domain memo keeping the widened key computation allocation-free, and
	// the merge/unmerge counters.
	optIn         map[string]bool
	domCache      map[string]string
	mergedPages   int64
	unmergeBreaks int64
	unmergedPages int64
	unmergeRecall int64

	// Shared cache tier (nil when CacheBytes is 0).
	cache          *sharedCache
	cacheHitPages  int64
	cacheMissPages int64
	cacheEvictions int64

	// forceFull makes the node report zero admissible headroom and reject
	// offload batches outright — the tier-full storm injected by a fault
	// plan. Recalls and discards still work.
	forceFull bool

	met nodeMetrics
}

// nodeMetrics are the node's exported gauges and counters; every field is a
// no-op nil *telemetry.Metric until Instrument attaches a registry.
type nodeMetrics struct {
	logical      *telemetry.Metric
	resident     *telemetry.Metric
	dramUsed     *telemetry.Metric
	spillUsed    *telemetry.Metric
	dedupSaved   *telemetry.Metric
	compSaved    *telemetry.Metric
	dedupHits    *telemetry.Metric
	compressed   *telemetry.Metric
	spilled      *telemetry.Metric
	evictions    *telemetry.Metric
	quotaRejects *telemetry.Metric
	fullRejects  *telemetry.Metric
	merged       *telemetry.Metric
	unmerged     *telemetry.Metric
	cacheHits    *telemetry.Metric
	cacheMisses  *telemetry.Metric
	cacheUsed    *telemetry.Metric
}

// New creates a node from cfg, applying defaults for zero fields.
func New(cfg Config) *Node {
	n := &Node{
		cfg:     cfg.withDefaults(),
		entries: make(map[entryKey]*entry),
		owners:  make(map[string]*ownerRefs),
		tenants: make(map[string]int64),
	}
	if n.cfg.MergeScope != MergeFunction {
		n.domCache = make(map[string]string)
		n.optIn = make(map[string]bool, len(n.cfg.MergeOptIn))
		for _, t := range n.cfg.MergeOptIn {
			n.optIn[t] = true
		}
	}
	if n.cfg.CacheBytes > 0 {
		n.cache = newSharedCache(n.cfg.CacheBytes)
	}
	return n
}

// Config returns the effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Instrument attaches a metric registry. Nil-safe on both sides; later calls
// with a nil registry are ignored.
func (n *Node) Instrument(reg *telemetry.Registry) {
	if n == nil || reg == nil {
		return
	}
	n.met = nodeMetrics{
		logical:      reg.Gauge("faasmem_memnode_logical_bytes", "bytes offloaded to the memory node (pre-dedup/compression)"),
		resident:     reg.Gauge("faasmem_memnode_resident_bytes", "bytes the node actually stores (post-dedup/compression, DRAM+spill)"),
		dramUsed:     reg.Gauge("faasmem_memnode_dram_used_bytes", "node DRAM in use (hot + compressed tiers)"),
		spillUsed:    reg.Gauge("faasmem_memnode_spill_used_bytes", "node spill tier in use"),
		dedupSaved:   reg.Gauge("faasmem_memnode_dedup_saved_bytes", "bytes saved by content-class dedup"),
		compSaved:    reg.Gauge("faasmem_memnode_compress_saved_bytes", "bytes saved by the compression tier"),
		dedupHits:    reg.Counter("faasmem_memnode_dedup_hit_pages_total", "offloaded pages admitted without a new resident copy"),
		compressed:   reg.Counter("faasmem_memnode_compressed_pages_total", "pages moved into the compression tier"),
		spilled:      reg.Counter("faasmem_memnode_spilled_pages_total", "pages demoted to the spill tier"),
		evictions:    reg.Counter("faasmem_memnode_evictions_total", "LRU-by-class eviction (demotion) events"),
		quotaRejects: reg.Counter("faasmem_memnode_quota_reject_pages_total", "offloaded pages rejected by tenant quota"),
		fullRejects:  reg.Counter("faasmem_memnode_full_reject_pages_total", "offloaded pages rejected because DRAM and spill were full"),
		merged:       reg.Counter("faasmem_memnode_merged_pages_total", "pages admitted onto a merge master wider than their function"),
		unmerged:     reg.Counter("faasmem_memnode_unmerged_pages_total", "pages privatized by copy-on-write unmerge breaks"),
		cacheHits:    reg.Counter("faasmem_memnode_cache_hit_pages_total", "recalled pages served from the shared cache tier"),
		cacheMisses:  reg.Counter("faasmem_memnode_cache_miss_pages_total", "recalled shared pages that missed the cache tier"),
		cacheUsed:    reg.Gauge("faasmem_memnode_cache_used_bytes", "shared cache tier occupancy"),
	}
	n.syncGauges()
}

func (n *Node) tenantOf(fn string) string {
	if n.cfg.TenantOf != nil {
		return n.cfg.TenantOf(fn)
	}
	return fn
}

// compStored returns the DRAM the compression tier needs for pages.
func (n *Node) compStored(pages int) int64 {
	if pages <= 0 {
		return 0
	}
	return int64(float64(pages) * float64(n.cfg.PageSize) / n.cfg.CompressRatio)
}

// LogicalBytes is the sum of every owner's offloads — what the compute side
// believes is stored remotely.
func (n *Node) LogicalBytes() int64 { return n.logicalPages * int64(n.cfg.PageSize) }

// DRAMUsedBytes is hot-tier raw bytes plus compressed-tier stored bytes.
func (n *Node) DRAMUsedBytes() int64 {
	return n.hotPages*int64(n.cfg.PageSize) + n.compStoredBytes
}

// SpillUsedBytes is the spill tier's stored bytes.
func (n *Node) SpillUsedBytes() int64 { return n.spillPages * int64(n.cfg.PageSize) }

// ResidentBytes is what the node actually stores: DRAM plus spill.
func (n *Node) ResidentBytes() int64 { return n.DRAMUsedBytes() + n.SpillUsedBytes() }

// DedupSavedBytes is the logical-minus-resident page savings from sharing.
func (n *Node) DedupSavedBytes() int64 {
	return (n.logicalPages - n.hotPages - n.compPages - n.spillPages) * int64(n.cfg.PageSize)
}

// CompressSavedBytes is the DRAM saved by storing comp-tier pages compressed.
func (n *Node) CompressSavedBytes() int64 {
	return n.compPages*int64(n.cfg.PageSize) - n.compStoredBytes
}

// CompressedPages is the cumulative count of pages ever demoted into the
// compressed tier. Monotone, so callers can delta it around a node call to
// learn how much tier movement the call triggered.
func (n *Node) CompressedPages() int64 { return n.compressedPages }

// SpilledPages is the cumulative count of pages ever demoted to the spill
// tier; monotone like CompressedPages.
func (n *Node) SpilledPages() int64 { return n.spilledPages }

// MergedPages is the cumulative count of pages admitted onto a merge master
// wider than their own function; monotone like CompressedPages, so callers
// can delta it around a node call to record merge flows.
func (n *Node) MergedPages() int64 { return n.mergedPages }

// UnmergedPages is the cumulative count of pages privatized by CoW unmerge
// breaks; monotone like MergedPages.
func (n *Node) UnmergedPages() int64 { return n.unmergedPages }

// CacheUsedBytes is the shared cache tier's occupancy (0 when disabled).
func (n *Node) CacheUsedBytes() int64 {
	if n.cache == nil {
		return 0
	}
	return n.cache.usedBytes
}

// AcceptableBytes is the effective headroom an offloader may assume: free
// DRAM, plus what compressing the current hot tier would reclaim, plus free
// spill. With an unbounded spill tier the node never rejects for capacity.
func (n *Node) AcceptableBytes() int64 {
	if n.forceFull {
		return 0
	}
	if n.cfg.SpillBytes <= 0 {
		return math.MaxInt64 / 4
	}
	free := n.cfg.DRAMBytes - n.DRAMUsedBytes()
	if !n.cfg.DisableCompression {
		free += n.hotPages*int64(n.cfg.PageSize) - n.compStored(int(n.hotPages))
	}
	free += n.cfg.SpillBytes - n.SpillUsedBytes()
	if free < 0 {
		return 0
	}
	return free
}

// SetForceFull toggles the injected tier-full storm state: while set, the
// node reports zero admissible headroom and rejects every offload batch
// (counted as full rejects). Recalls and discards are unaffected.
func (n *Node) SetForceFull(v bool) { n.forceFull = v }

// ForceFull reports whether an injected tier-full storm is active.
func (n *Node) ForceFull() bool { return n.forceFull }

// key returns the store key a described batch lands under.
func (n *Node) key(owner, fn string, class Class) entryKey {
	if class.Shared() && !n.cfg.DisableDedup {
		return entryKey{dom: n.domainOf(fn, class), class: class}
	}
	return entryKey{dom: fn, owner: owner, class: class}
}

// Offload admits a described batch of pages and returns how many were
// accepted. Rejections (tenant quota, node full) truncate the batch; the
// caller keeps rejected pages local.
func (n *Node) Offload(owner, fn string, class Class, pages int) int {
	if pages <= 0 {
		return 0
	}
	if n.forceFull {
		n.fullRejectPages += int64(pages)
		n.met.fullRejects.Add(int64(pages))
		n.syncGauges()
		return 0
	}
	ps := int64(n.cfg.PageSize)
	accepted := pages

	if n.cfg.TenantQuotaBytes > 0 {
		tenant := n.tenantOf(fn)
		freePages := int((n.cfg.TenantQuotaBytes - n.tenants[tenant]) / ps)
		if freePages < 0 {
			freePages = 0
		}
		if accepted > freePages {
			n.quotaRejectPages += int64(accepted - freePages)
			n.met.quotaRejects.Add(int64(accepted - freePages))
			accepted = freePages
		}
		if accepted == 0 {
			n.syncGauges()
			return 0
		}
	}

	key := n.key(owner, fn, class)
	e := n.entries[key]
	created := e == nil
	if created {
		e = &entry{key: key, shared: key.owner == ""}
		if e.shared {
			e.refs = make(map[string]int)
		}
		n.entries[key] = e
		n.lruPush(e)
	}

	cur := e.pages
	if e.shared {
		cur = e.refs[owner]
	}

	// Growth is the part of the batch that needs a new resident copy; for
	// shared entries the prefix up to the current longest offload dedups.
	growth := accepted
	if e.shared {
		growth = cur + accepted - e.maxPages
		if growth < 0 {
			growth = 0
		}
		hits := int64(accepted - growth)
		n.dedupHitPages += hits
		n.met.dedupHits.Add(hits)
		if hits > 0 && key.dom != fn {
			// The master is a widened merge domain: these pages merged
			// across owners beyond this function's own dedup.
			n.mergedPages += hits
			n.met.merged.Add(hits)
		}
	}

	// Fit the growth: evict for hot-tier room first; what still does not fit
	// in DRAM is admitted straight into the spill tier; the rest is rejected.
	hotFit, spillFit := growth, 0
	if growth > 0 {
		hotFit = n.makeRoom(growth)
		if hotFit < growth {
			spillFit = growth - hotFit
			if n.cfg.SpillBytes > 0 {
				if free := int((n.cfg.SpillBytes - n.SpillUsedBytes()) / ps); free < spillFit {
					spillFit = free
				}
				if spillFit < 0 {
					spillFit = 0
				}
			}
			rejected := growth - hotFit - spillFit
			if rejected > 0 {
				n.fullRejectPages += int64(rejected)
				n.met.fullRejects.Add(int64(rejected))
				accepted -= rejected
				growth -= rejected
			}
		}
	}
	if accepted <= 0 {
		if created {
			n.freeEntry(e)
		}
		n.syncGauges()
		return 0
	}

	e.hot += hotFit
	n.hotPages += int64(hotFit)
	e.spill += spillFit
	n.spillPages += int64(spillFit)
	n.spilledPages += int64(spillFit)
	n.met.spilled.Add(int64(spillFit))
	newCount := cur + accepted
	if e.shared {
		if cur == e.maxPages && e.maxPages > 0 {
			e.atMax--
		}
		e.refs[owner] = newCount
		if newCount > e.maxPages {
			e.maxPages = newCount
			e.atMax = 1
		} else if newCount == e.maxPages {
			e.atMax++
		}
	} else {
		e.pages = newCount
	}
	n.logicalPages += int64(accepted)
	n.tenants[n.tenantOf(fn)] += int64(accepted) * ps
	n.registerOwner(owner, fn, key, int64(accepted))
	n.lruTouch(e)
	if e.shared {
		n.cacheResync(e)
	}

	if lb := n.LogicalBytes(); lb > n.peakLogicalBytes {
		n.peakLogicalBytes = lb
	}
	if rb := n.ResidentBytes(); rb > n.peakResidentBytes {
		n.peakResidentBytes = rb
	}
	n.syncGauges()
	return accepted
}

// Recall releases pages an owner holds (a demand fault or bulk recall on the
// compute side) and prices the tier surcharge: the fraction of the resident
// copy living compressed pays DecompressLatency per page, the spilled
// fraction SpillLatency. Releasing the last reference frees the resident
// copy.
func (n *Node) Recall(owner, fn string, class Class, pages int) RecallCost {
	if pages <= 0 {
		return RecallCost{}
	}
	key := n.key(owner, fn, class)
	e := n.entries[key]
	if e == nil {
		return RecallCost{}
	}
	cur := e.pages
	if e.shared {
		cur = e.refs[owner]
	}
	if pages > cur {
		pages = cur
	}
	if pages == 0 {
		return RecallCost{}
	}

	lat := n.tierSurcharge(e, pages, n.tenantOf(fn))

	n.release(e, owner, pages)
	n.logicalPages -= int64(pages)
	n.tenants[n.tenantOf(fn)] -= int64(pages) * int64(n.cfg.PageSize)
	if or := n.owners[owner]; or != nil {
		or.pages -= int64(pages)
	}
	n.syncGauges()
	return RecallCost{Pages: pages, Latency: lat}
}

// ReadCost prices reading pages an owner holds *without* releasing them —
// the pool-side share of mapping a shared-state region read-shared: the
// fraction of the resident copy living compressed pays DecompressLatency per
// page, the spilled fraction SpillLatency, exactly like Recall, but the
// holdings, the ledger, and the resident copy are untouched so the next
// consumer can map the same region. The entry is touched (MRU) — a region
// under active mapping resists eviction.
func (n *Node) ReadCost(owner, fn string, class Class, pages int) RecallCost {
	if pages <= 0 {
		return RecallCost{}
	}
	key := n.key(owner, fn, class)
	e := n.entries[key]
	if e == nil {
		return RecallCost{}
	}
	cur := e.pages
	if e.shared {
		cur = e.refs[owner]
	}
	if pages > cur {
		pages = cur
	}
	if pages == 0 {
		return RecallCost{}
	}
	lat := n.tierSurcharge(e, pages, n.tenantOf(fn))
	n.lruTouch(e)
	return RecallCost{Pages: pages, Latency: lat}
}

// tierSurcharge prices reading pages of e's resident copy — the fraction
// living compressed pays DecompressLatency per page, the spilled fraction
// SpillLatency — consulting the shared cache tier first: a cached master
// serves hot copies with no surcharge, a cacheable miss pays the surcharge
// and admits the master (charged to the reading tenant).
func (n *Node) tierSurcharge(e *entry, pages int, tenant string) time.Duration {
	if n.cacheHas(e) {
		n.cacheHitPages += int64(pages)
		n.met.cacheHits.Add(int64(pages))
		return 0
	}
	var lat time.Duration
	if rt := e.residentTarget(); rt > 0 {
		comp := float64(e.comp) / float64(rt) * float64(pages)
		spill := float64(e.spill) / float64(rt) * float64(pages)
		dec := time.Duration(comp * float64(n.cfg.DecompressLatency))
		lat = dec + time.Duration(spill*float64(n.cfg.SpillLatency))
		n.decompressTime += dec
	}
	if n.cache != nil && e.shared {
		n.cacheMissPages += int64(pages)
		n.met.cacheMisses.Add(int64(pages))
		n.cacheInsert(e, tenant)
	}
	return lat
}

// OwnerPages reports one owner's logical page holdings of a single class —
// what a region manager can still read back for its consumers.
func (n *Node) OwnerPages(owner, fn string, class Class) int {
	e := n.entries[n.key(owner, fn, class)]
	if e == nil {
		return 0
	}
	if e.shared {
		return e.refs[owner]
	}
	return e.pages
}

// DiscardOwner drops everything a container holds (its recycle path) without
// transfer or latency, and returns the logical bytes freed.
func (n *Node) DiscardOwner(owner string) int64 {
	or := n.owners[owner]
	if or == nil {
		return 0
	}
	ps := int64(n.cfg.PageSize)
	var freed int64
	for _, key := range or.keys {
		e := n.entries[key]
		if e == nil {
			continue
		}
		cur := 0
		if e.shared {
			cur = e.refs[owner]
		} else if key.owner == owner {
			cur = e.pages
		}
		if cur == 0 {
			continue
		}
		n.release(e, owner, cur)
		freed += int64(cur)
	}
	n.tenants[n.tenantOf(or.fn)] -= freed * ps
	n.logicalPages -= freed
	delete(n.owners, owner)
	n.syncGauges()
	return freed * ps
}

// release drops pages of owner's holding against e, shrinking the resident
// copy when the longest offloaded prefix shrinks and freeing the entry when
// the last reference goes.
func (n *Node) release(e *entry, owner string, pages int) {
	if e.shared {
		cur := e.refs[owner]
		newCount := cur - pages
		if cur == e.maxPages {
			e.atMax--
		}
		if newCount > 0 {
			e.refs[owner] = newCount
		} else {
			delete(e.refs, owner)
		}
		if e.atMax == 0 {
			// The longest prefix shrank; recompute it. Map iteration order
			// does not matter for a max+count.
			newMax, cnt := 0, 0
			for _, v := range e.refs {
				if v > newMax {
					newMax, cnt = v, 1
				} else if v == newMax {
					cnt++
				}
			}
			shrink := e.maxPages - newMax
			e.maxPages, e.atMax = newMax, cnt
			n.shrinkEntry(e, shrink)
			n.cacheResync(e)
		}
		if len(e.refs) == 0 {
			n.freeEntry(e)
			return
		}
	} else {
		e.pages -= pages
		n.shrinkEntry(e, pages)
		if e.pages == 0 {
			n.freeEntry(e)
			return
		}
	}
	n.lruTouch(e)
}

// shrinkEntry frees k resident pages from e, coldest copies first (spill,
// then compressed, then hot), keeping the tier sum equal to the resident
// target.
func (n *Node) shrinkEntry(e *entry, k int) {
	if k <= 0 {
		return
	}
	if d := min(k, e.spill); d > 0 {
		e.spill -= d
		n.spillPages -= int64(d)
		k -= d
	}
	if d := min(k, e.comp); d > 0 {
		n.compStoredBytes += n.compStored(e.comp-d) - n.compStored(e.comp)
		e.comp -= d
		n.compPages -= int64(d)
		k -= d
	}
	if d := min(k, e.hot); d > 0 {
		e.hot -= d
		n.hotPages -= int64(d)
		k -= d
	}
	if k > 0 {
		panic(fmt.Sprintf("memnode: shrink underflow on %v (%d pages left)", e.key, k))
	}
}

// freeEntry removes an empty entry from the store.
func (n *Node) freeEntry(e *entry) {
	n.cacheDrop(e.key)
	n.shrinkEntry(e, e.residentTarget())
	if e.shared {
		e.maxPages, e.atMax = 0, 0
	} else {
		e.pages = 0
	}
	n.shrinkEntry(e, e.hot+e.comp+e.spill)
	n.lruRemove(e)
	delete(n.entries, e.key)
}

// makeRoom tries to fit `pages` new hot pages in DRAM: first compress cold
// entries (LRU within the victim class order), then demote to spill, then
// give up and report how many pages actually fit.
func (n *Node) makeRoom(pages int) int {
	ps := int64(n.cfg.PageSize)
	over := func() int64 {
		return n.DRAMUsedBytes() + int64(pages)*ps - n.cfg.DRAMBytes
	}
	if over() <= 0 {
		return pages
	}

	if !n.cfg.DisableCompression {
		for _, cls := range victimOrder {
			for e := n.lruHead[cls]; e != nil && over() > 0; e = e.next {
				if e.hot == 0 {
					continue
				}
				n.compressEntry(e)
			}
			if over() <= 0 {
				return pages
			}
		}
	}

	// Demote to spill, LRU-by-class, page-granular up to the deficit.
	spillFree := func() int64 {
		if n.cfg.SpillBytes <= 0 {
			return math.MaxInt64 / 4
		}
		return n.cfg.SpillBytes - n.SpillUsedBytes()
	}
	for _, cls := range victimOrder {
		for e := n.lruHead[cls]; e != nil; e = e.next {
			o := over()
			if o <= 0 {
				return pages
			}
			free := spillFree()
			if free < ps {
				break
			}
			// Hot pages first: each frees a full raw page of DRAM. The
			// compressed tier barely occupies DRAM, so it spills last.
			k := min(e.hot, int(min64((o+ps-1)/ps, free/ps)))
			if k > 0 {
				e.hot -= k
				e.spill += k
				n.hotPages -= int64(k)
				n.spillPages += int64(k)
				n.noteSpill(k)
			}
			if o = over(); o <= 0 {
				return pages
			}
			if free = spillFree(); free < ps || e.comp == 0 {
				continue
			}
			k = min(e.comp, int(free/ps))
			if k > 0 {
				n.compStoredBytes += n.compStored(e.comp-k) - n.compStored(e.comp)
				e.comp -= k
				e.spill += k
				n.compPages -= int64(k)
				n.spillPages += int64(k)
				n.noteSpill(k)
			}
		}
		if over() <= 0 {
			return pages
		}
	}

	if o := over(); o > 0 {
		drop := int((o + ps - 1) / ps)
		if drop > pages {
			drop = pages
		}
		pages -= drop
	}
	return pages
}

// compressEntry moves an entry's whole hot tier into the compressed tier
// (zswap compresses cold segments wholesale).
func (n *Node) compressEntry(e *entry) {
	k := e.hot
	if k == 0 {
		return
	}
	n.compStoredBytes += n.compStored(e.comp+k) - n.compStored(e.comp)
	e.hot = 0
	e.comp += k
	n.hotPages -= int64(k)
	n.compPages += int64(k)
	n.compressedPages += int64(k)
	n.compressTime += time.Duration(k) * n.cfg.CompressLatency
	n.met.compressed.Add(int64(k))
}

func (n *Node) noteSpill(pages int) {
	n.spilledPages += int64(pages)
	n.evictions++
	n.met.spilled.Add(int64(pages))
	n.met.evictions.Inc()
}

// registerOwner indexes the owner's association with key for DiscardOwner.
// Every registration of one owner must describe the same function (a
// container runs exactly one function); the first registration records it.
func (n *Node) registerOwner(owner, fn string, key entryKey, pages int64) {
	or := n.owners[owner]
	if or == nil {
		or = &ownerRefs{fn: fn, seen: make(map[entryKey]bool)}
		n.owners[owner] = or
	} else if or.fn != fn {
		panic(fmt.Sprintf("memnode: owner %s registered for %s and %s", owner, or.fn, fn))
	}
	if !or.seen[key] {
		or.seen[key] = true
		or.keys = append(or.keys, key)
	}
	or.pages += pages
}

// OwnerLogicalBytes reports one container's logical holdings.
func (n *Node) OwnerLogicalBytes(owner string) int64 {
	if or := n.owners[owner]; or != nil {
		return or.pages * int64(n.cfg.PageSize)
	}
	return 0
}

// TenantLogicalBytes reports one tenant's logical holdings.
func (n *Node) TenantLogicalBytes(tenant string) int64 { return n.tenants[tenant] }

// TenantUsage is one tenant's logical holdings on the node.
type TenantUsage struct {
	// Tenant is the tenant identifier.
	Tenant string
	// LogicalBytes is the tenant's logical footprint.
	LogicalBytes int64
}

// TenantUsages lists every tenant with a non-zero logical footprint, sorted
// by tenant so iteration order is deterministic — the per-tenant quota-
// pressure feed for the timeline sampler.
func (n *Node) TenantUsages() []TenantUsage {
	out := make([]TenantUsage, 0, len(n.tenants))
	for t, b := range n.tenants {
		if b > 0 {
			out = append(out, TenantUsage{Tenant: t, LogicalBytes: b})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Stats snapshots the node.
func (n *Node) Stats() Stats {
	return Stats{
		LogicalBytes:       n.LogicalBytes(),
		ResidentBytes:      n.ResidentBytes(),
		DRAMUsedBytes:      n.DRAMUsedBytes(),
		SpillUsedBytes:     n.SpillUsedBytes(),
		DedupSavedBytes:    n.DedupSavedBytes(),
		CompressSavedBytes: n.CompressSavedBytes(),
		PeakLogicalBytes:   n.peakLogicalBytes,
		PeakResidentBytes:  n.peakResidentBytes,
		Entries:            len(n.entries),
		Owners:             len(n.owners),
		DedupHitPages:      n.dedupHitPages,
		CompressedPages:    n.compressedPages,
		SpilledPages:       n.spilledPages,
		Evictions:          n.evictions,
		QuotaRejectPages:   n.quotaRejectPages,
		FullRejectPages:    n.fullRejectPages,
		MergedPages:        n.mergedPages,
		UnmergeBreaks:      n.unmergeBreaks,
		UnmergedPages:      n.unmergedPages,
		UnmergeRecallPages: n.unmergeRecall,
		CacheHitPages:      n.cacheHitPages,
		CacheMissPages:     n.cacheMissPages,
		CacheEvictions:     n.cacheEvictions,
		CacheUsedBytes:     n.CacheUsedBytes(),
		CompressTime:       n.compressTime,
		DecompressTime:     n.decompressTime,
	}
}

func (n *Node) syncGauges() {
	n.met.logical.Set(n.LogicalBytes())
	n.met.resident.Set(n.ResidentBytes())
	n.met.dramUsed.Set(n.DRAMUsedBytes())
	n.met.spillUsed.Set(n.SpillUsedBytes())
	n.met.dedupSaved.Set(n.DedupSavedBytes())
	n.met.compSaved.Set(n.CompressSavedBytes())
	if n.cache != nil {
		n.met.cacheUsed.Set(n.cache.usedBytes)
	}
}

// --- per-class LRU lists ---

func (n *Node) lruPush(e *entry) {
	cls := e.key.class
	e.prev = n.lruTail[cls]
	e.next = nil
	if n.lruTail[cls] != nil {
		n.lruTail[cls].next = e
	} else {
		n.lruHead[cls] = e
	}
	n.lruTail[cls] = e
}

func (n *Node) lruRemove(e *entry) {
	cls := e.key.class
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		n.lruHead[cls] = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		n.lruTail[cls] = e.prev
	}
	e.prev, e.next = nil, nil
}

func (n *Node) lruTouch(e *entry) {
	if n.lruTail[e.key.class] == e {
		return
	}
	n.lruRemove(e)
	n.lruPush(e)
}

// CheckInvariants verifies the store's accounting identities; tests call it
// after every mutation batch. It returns nil when consistent.
func (n *Node) CheckInvariants() error {
	var logical, hot, comp, spill, stored int64
	for key, e := range n.entries {
		if key != e.key {
			return fmt.Errorf("entry keyed %v carries key %v", key, e.key)
		}
		if e.shared {
			if len(e.refs) == 0 {
				return fmt.Errorf("shared entry %v has no refs", key)
			}
			maxP, cnt := 0, 0
			for owner, v := range e.refs {
				if v <= 0 {
					return fmt.Errorf("entry %v holds %d pages for %s", key, v, owner)
				}
				logical += int64(v)
				if v > maxP {
					maxP, cnt = v, 1
				} else if v == maxP {
					cnt++
				}
			}
			if maxP != e.maxPages || cnt != e.atMax {
				return fmt.Errorf("entry %v max/atMax = %d/%d, want %d/%d", key, e.maxPages, e.atMax, maxP, cnt)
			}
		} else {
			if e.pages <= 0 {
				return fmt.Errorf("private entry %v holds %d pages", key, e.pages)
			}
			logical += int64(e.pages)
		}
		if got := e.hot + e.comp + e.spill; got != e.residentTarget() {
			return fmt.Errorf("entry %v tiers sum to %d, want resident %d", key, got, e.residentTarget())
		}
		hot += int64(e.hot)
		comp += int64(e.comp)
		spill += int64(e.spill)
		stored += n.compStored(e.comp)
	}
	if logical != n.logicalPages {
		return fmt.Errorf("logical pages = %d, entries sum to %d", n.logicalPages, logical)
	}
	if hot != n.hotPages || comp != n.compPages || spill != n.spillPages {
		return fmt.Errorf("tier totals %d/%d/%d, entries sum to %d/%d/%d",
			n.hotPages, n.compPages, n.spillPages, hot, comp, spill)
	}
	if stored != n.compStoredBytes {
		return fmt.Errorf("compressed stored bytes = %d, entries sum to %d", n.compStoredBytes, stored)
	}
	var ownerPages int64
	for owner, or := range n.owners {
		if or.pages < 0 {
			return fmt.Errorf("owner %s holds %d pages", owner, or.pages)
		}
		ownerPages += or.pages
	}
	if ownerPages != n.logicalPages {
		return fmt.Errorf("owner holdings sum to %d pages, node logical is %d", ownerPages, n.logicalPages)
	}
	if n.ResidentBytes() > n.LogicalBytes() {
		return fmt.Errorf("resident %d exceeds logical %d", n.ResidentBytes(), n.LogicalBytes())
	}
	if n.cfg.DRAMBytes > 0 && n.DRAMUsedBytes() > n.cfg.DRAMBytes {
		return fmt.Errorf("DRAM used %d exceeds capacity %d", n.DRAMUsedBytes(), n.cfg.DRAMBytes)
	}
	if n.cfg.SpillBytes > 0 && n.SpillUsedBytes() > n.cfg.SpillBytes {
		return fmt.Errorf("spill used %d exceeds capacity %d", n.SpillUsedBytes(), n.cfg.SpillBytes)
	}
	if err := n.checkIsolation(); err != nil {
		return err
	}
	return n.checkCache()
}

// checkIsolation verifies the merge security boundary on every shared master:
// a function-scoped master is referenced only by owners of that function, a
// tenant-scoped master only by owners of that tenant, and a cross-tenant
// master only by owners whose tenants all opted in. A violation means a page
// became reachable across a tenant edge without both sides' consent.
func (n *Node) checkIsolation() error {
	for key, e := range n.entries {
		if !e.shared {
			continue
		}
		for owner := range e.refs {
			or := n.owners[owner]
			if or == nil {
				return fmt.Errorf("shared entry %v references unregistered owner %s", key, owner)
			}
			switch {
			case key.dom == globalDom:
				if t := n.tenantOf(or.fn); !n.optIn[t] {
					return fmt.Errorf("cross-tenant master %v reachable from tenant %s, which never opted in", key, t)
				}
			case strings.HasPrefix(key.dom, tenantDomPrefix):
				if t := n.tenantOf(or.fn); tenantDomPrefix+t != key.dom {
					return fmt.Errorf("tenant master %v reachable from tenant %s", key, t)
				}
			default:
				if or.fn != key.dom {
					return fmt.Errorf("function master %v reachable from function %s", key, or.fn)
				}
			}
		}
	}
	return nil
}

// checkCache verifies the shared cache tier's accounting and its fairness
// invariant: occupancy sums agree per tenant and in total, every cached key
// is a live shared master at its current resident size, total occupancy fits
// CacheBytes, and no occupant exceeds its share of the active set.
func (n *Node) checkCache() error {
	c := n.cache
	if c == nil {
		return nil
	}
	var total int64
	ps := int64(n.cfg.PageSize)
	for key, ce := range c.entries {
		if key != ce.key {
			return fmt.Errorf("cache entry keyed %v carries key %v", key, ce.key)
		}
		e := n.entries[key]
		if e == nil || !e.shared {
			return fmt.Errorf("cache entry %v has no live shared master", key)
		}
		if ce.pages != e.residentTarget() {
			return fmt.Errorf("cache entry %v holds %d pages, master resident is %d", key, ce.pages, e.residentTarget())
		}
		total += int64(ce.pages) * ps
	}
	if total != c.usedBytes {
		return fmt.Errorf("cache used %d, entries sum to %d", c.usedBytes, total)
	}
	if c.usedBytes > c.bytes {
		return fmt.Errorf("cache used %d exceeds capacity %d", c.usedBytes, c.bytes)
	}
	var perTenant int64
	for _, t := range c.activeTenants() {
		var occ int64
		for ce := c.head[t]; ce != nil; ce = ce.next {
			if ce.tenant != t {
				return fmt.Errorf("cache entry %v on tenant %s list carries tenant %s", ce.key, t, ce.tenant)
			}
			occ += int64(ce.pages) * ps
		}
		if occ != c.occ[t] {
			return fmt.Errorf("cache tenant %s occupancy %d, list sums to %d", t, c.occ[t], occ)
		}
		if share := n.cacheShareOf(t); occ > share {
			return fmt.Errorf("cache tenant %s occupies %d, exceeding its fair share %d", t, occ, share)
		}
		perTenant += occ
	}
	if perTenant != c.usedBytes {
		return fmt.Errorf("cache tenant occupancies sum to %d, used is %d", perTenant, c.usedBytes)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
