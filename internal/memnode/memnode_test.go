package memnode

import (
	"math/rand"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/telemetry"
)

const ps = 4096

func newTest(t *testing.T, cfg Config) *Node {
	t.Helper()
	if cfg.PageSize == 0 {
		cfg.PageSize = ps
	}
	return New(cfg)
}

func check(t *testing.T, n *Node) {
	t.Helper()
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDedupSharesResidentCopy(t *testing.T) {
	n := newTest(t, Config{})

	// Two containers of the same function offload the same init prefix.
	if got := n.Offload("c1", "fn", ClassInit, 100); got != 100 {
		t.Fatalf("accepted %d, want 100", got)
	}
	if got := n.Offload("c2", "fn", ClassInit, 100); got != 100 {
		t.Fatalf("accepted %d, want 100", got)
	}
	check(t, n)
	if n.LogicalBytes() != 200*ps {
		t.Fatalf("logical = %d, want %d", n.LogicalBytes(), 200*ps)
	}
	if n.ResidentBytes() != 100*ps {
		t.Fatalf("resident = %d, want one shared copy %d", n.ResidentBytes(), 100*ps)
	}
	if n.DedupSavedBytes() != 100*ps {
		t.Fatalf("dedup saved = %d, want %d", n.DedupSavedBytes(), 100*ps)
	}

	// A longer offload grows the shared copy only by the difference.
	if got := n.Offload("c3", "fn", ClassInit, 150); got != 150 {
		t.Fatalf("accepted %d, want 150", got)
	}
	check(t, n)
	if n.ResidentBytes() != 150*ps {
		t.Fatalf("resident = %d, want %d", n.ResidentBytes(), 150*ps)
	}

	// A different function gets its own copy.
	n.Offload("d1", "other", ClassInit, 50)
	check(t, n)
	if n.ResidentBytes() != 200*ps {
		t.Fatalf("resident = %d, want %d", n.ResidentBytes(), 200*ps)
	}
	if n.Stats().DedupHitPages != 200 {
		t.Fatalf("dedup hits = %d, want 200", n.Stats().DedupHitPages)
	}
}

func TestLastReferenceFreesResidentCopy(t *testing.T) {
	n := newTest(t, Config{})
	n.Offload("c1", "fn", ClassInit, 100)
	n.Offload("c2", "fn", ClassInit, 60)
	check(t, n)

	// Dropping the longest holder shrinks the copy to the survivor's prefix.
	if got := n.Recall("c1", "fn", ClassInit, 100); got.Pages != 100 {
		t.Fatalf("recalled %d, want 100", got.Pages)
	}
	check(t, n)
	if n.ResidentBytes() != 60*ps || n.LogicalBytes() != 60*ps {
		t.Fatalf("resident/logical = %d/%d, want %d/%d",
			n.ResidentBytes(), n.LogicalBytes(), 60*ps, 60*ps)
	}

	// Releasing the last reference frees the copy entirely.
	n.Recall("c2", "fn", ClassInit, 60)
	check(t, n)
	if n.ResidentBytes() != 0 || n.LogicalBytes() != 0 {
		t.Fatalf("resident/logical = %d/%d after last release, want 0/0",
			n.ResidentBytes(), n.LogicalBytes())
	}
	if n.Stats().Entries != 0 {
		t.Fatalf("entries = %d, want 0", n.Stats().Entries)
	}
}

func TestPrivateClassesDoNotDedup(t *testing.T) {
	n := newTest(t, Config{})
	n.Offload("c1", "fn", ClassExec, 40)
	n.Offload("c2", "fn", ClassExec, 40)
	check(t, n)
	if n.ResidentBytes() != 80*ps {
		t.Fatalf("exec pages deduped: resident = %d, want %d", n.ResidentBytes(), 80*ps)
	}
}

func TestDisableDedup(t *testing.T) {
	n := newTest(t, Config{DisableDedup: true})
	n.Offload("c1", "fn", ClassInit, 100)
	n.Offload("c2", "fn", ClassInit, 100)
	check(t, n)
	if n.ResidentBytes() != n.LogicalBytes() {
		t.Fatalf("resident %d != logical %d with dedup off", n.ResidentBytes(), n.LogicalBytes())
	}
}

func TestCompressionUnderPressure(t *testing.T) {
	// DRAM fits 100 raw pages; offloading 150 private pages must compress.
	n := newTest(t, Config{DRAMBytes: 100 * ps, SpillBytes: 1 << 30, CompressRatio: 4})
	if got := n.Offload("c1", "a", ClassExec, 90); got != 90 {
		t.Fatalf("accepted %d, want 90", got)
	}
	if got := n.Offload("c2", "b", ClassExec, 60); got != 60 {
		t.Fatalf("accepted %d, want 60", got)
	}
	check(t, n)
	st := n.Stats()
	if st.CompressedPages == 0 {
		t.Fatal("no pages compressed under DRAM pressure")
	}
	if st.SpilledPages != 0 {
		t.Fatalf("spilled %d pages though compression sufficed", st.SpilledPages)
	}
	if n.DRAMUsedBytes() > 100*ps {
		t.Fatalf("DRAM used %d exceeds capacity %d", n.DRAMUsedBytes(), 100*ps)
	}
	if st.CompressSavedBytes <= 0 {
		t.Fatal("compression saved nothing")
	}

	// Recalling compressed pages pays a decompression surcharge.
	cost := n.Recall("c1", "a", ClassExec, 90)
	if cost.Pages != 90 || cost.Latency <= 0 {
		t.Fatalf("recall cost = %+v, want 90 pages with tier latency", cost)
	}
	check(t, n)
}

func TestSpillAndFullRejection(t *testing.T) {
	// 50 raw pages of DRAM, 30 pages of spill, compression off: 100-page
	// offload keeps 80 and rejects 20.
	n := newTest(t, Config{
		DRAMBytes: 50 * ps, SpillBytes: 30 * ps, DisableCompression: true,
	})
	got := n.Offload("c1", "fn", ClassExec, 100)
	check(t, n)
	if got != 80 {
		t.Fatalf("accepted %d, want 80", got)
	}
	st := n.Stats()
	if st.FullRejectPages != 20 {
		t.Fatalf("full rejects = %d, want 20", st.FullRejectPages)
	}
	if st.SpilledPages != 30 {
		t.Fatalf("spilled = %d, want 30", st.SpilledPages)
	}
	// Spill recalls pay the spill latency for the spilled fraction.
	cost := n.Recall("c1", "fn", ClassExec, 80)
	if cost.Latency < n.Config().SpillLatency {
		t.Fatalf("recall latency %v too low for spilled pages", cost.Latency)
	}
	check(t, n)
}

func TestEvictionPrefersExecOverInit(t *testing.T) {
	// Fill DRAM with an init copy and exec pages, then force a spill: the
	// exec pages must go first.
	n := newTest(t, Config{
		DRAMBytes: 100 * ps, SpillBytes: 1 << 30, DisableCompression: true,
	})
	n.Offload("c1", "fn", ClassInit, 50)
	n.Offload("c1", "fn", ClassExec, 50)
	n.Offload("c2", "fn2", ClassInit, 20) // forces 20 pages out
	check(t, n)
	var initSpill, execSpill int
	for _, e := range n.entries {
		switch e.key.class {
		case ClassInit:
			initSpill += e.spill
		case ClassExec:
			execSpill += e.spill
		}
	}
	if execSpill == 0 || initSpill != 0 {
		t.Fatalf("spilled init/exec = %d/%d, want exec evicted first", initSpill, execSpill)
	}
	if n.Stats().Evictions == 0 {
		t.Fatal("LRU demotion did not count an eviction")
	}
}

func TestTenantQuota(t *testing.T) {
	n := newTest(t, Config{TenantQuotaBytes: 50 * ps})
	if got := n.Offload("c1", "fn", ClassExec, 40); got != 40 {
		t.Fatalf("accepted %d, want 40", got)
	}
	if got := n.Offload("c2", "fn", ClassExec, 40); got != 10 {
		t.Fatalf("accepted %d, want quota-truncated 10", got)
	}
	check(t, n)
	if n.Stats().QuotaRejectPages != 30 {
		t.Fatalf("quota rejects = %d, want 30", n.Stats().QuotaRejectPages)
	}
	// Another tenant (function) is unaffected.
	if got := n.Offload("c3", "fn2", ClassExec, 40); got != 40 {
		t.Fatalf("accepted %d, want 40", got)
	}
	// Releasing frees quota.
	n.DiscardOwner("c1")
	check(t, n)
	if got := n.Offload("c2", "fn", ClassExec, 40); got != 40 {
		t.Fatalf("accepted %d after quota freed, want 40", got)
	}
	check(t, n)
}

func TestDiscardOwnerDropsEverything(t *testing.T) {
	n := newTest(t, Config{})
	n.Offload("c1", "fn", ClassInit, 100)
	n.Offload("c1", "fn", ClassRuntime, 50)
	n.Offload("c1", "fn", ClassExec, 25)
	n.Offload("c2", "fn", ClassInit, 100)
	check(t, n)
	freed := n.DiscardOwner("c1")
	check(t, n)
	if freed != 175*ps {
		t.Fatalf("freed = %d, want %d", freed, 175*ps)
	}
	if n.LogicalBytes() != 100*ps || n.ResidentBytes() != 100*ps {
		t.Fatalf("logical/resident = %d/%d, want c2's copy %d",
			n.LogicalBytes(), n.ResidentBytes(), 100*ps)
	}
	if n.DiscardOwner("c1") != 0 {
		t.Fatal("double discard freed bytes")
	}
	n.DiscardOwner("c2")
	check(t, n)
	if n.LogicalBytes() != 0 || n.Stats().Entries != 0 || n.Stats().Owners != 0 {
		t.Fatalf("node not empty after all discards: %+v", n.Stats())
	}
}

func TestInstrumentExportsGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	n := newTest(t, Config{})
	n.Instrument(reg)
	n.Offload("c1", "fn", ClassInit, 100)
	n.Offload("c2", "fn", ClassInit, 100)
	if got := reg.Get("faasmem_memnode_logical_bytes").Value(); got != 200*ps {
		t.Fatalf("logical gauge = %d, want %d", got, 200*ps)
	}
	if got := reg.Get("faasmem_memnode_dedup_saved_bytes").Value(); got != 100*ps {
		t.Fatalf("dedup saved gauge = %d, want %d", got, 100*ps)
	}
	if got := reg.Get("faasmem_memnode_dedup_hit_pages_total").Value(); got != 100 {
		t.Fatalf("dedup hit counter = %d, want 100", got)
	}
	var nilNode *Node
	nilNode.Instrument(reg) // must not panic
}

// TestRandomizedInvariants drives a random mix of operations and checks the
// accounting identities after every step — including that logical bytes
// always equal the sum of per-container offloads.
func TestRandomizedInvariants(t *testing.T) {
	n := newTest(t, Config{
		DRAMBytes: 200 * ps, SpillBytes: 300 * ps,
		CompressRatio: 3, TenantQuotaBytes: 400 * ps,
	})
	rng := rand.New(rand.NewSource(42))
	owners := []string{"a#1", "a#2", "b#1", "b#2", "c#1"}
	fns := []string{"a", "a", "b", "b", "c"}
	classes := []Class{ClassInit, ClassRuntime, ClassExec, ClassOther}
	ledger := make(map[string]int) // owner -> logical pages (external truth)

	for step := 0; step < 3000; step++ {
		i := rng.Intn(len(owners))
		owner, fn := owners[i], fns[i]
		switch op := rng.Intn(10); {
		case op < 6:
			cls := classes[rng.Intn(len(classes))]
			got := n.Offload(owner, fn, cls, 1+rng.Intn(40))
			ledger[owner] += got
		case op < 9:
			cls := classes[rng.Intn(len(classes))]
			got := n.Recall(owner, fn, cls, 1+rng.Intn(40))
			ledger[owner] -= got.Pages
		default:
			freed := n.DiscardOwner(owner)
			want := int64(ledger[owner]) * ps
			if freed != want {
				t.Fatalf("step %d: discard %s freed %d, ledger says %d", step, owner, freed, want)
			}
			ledger[owner] = 0
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		var sum int64
		for o, p := range ledger {
			sum += int64(p)
			if got := n.OwnerLogicalBytes(o); got != int64(p)*ps {
				t.Fatalf("step %d: owner %s logical %d, ledger %d", step, o, got, int64(p)*ps)
			}
		}
		if n.LogicalBytes() != sum*ps {
			t.Fatalf("step %d: node logical %d, sum of per-container offloads %d",
				step, n.LogicalBytes(), sum*ps)
		}
	}
}

func TestRecallLatencyProportions(t *testing.T) {
	n := newTest(t, Config{
		DRAMBytes: 1 << 30, DecompressLatency: 10 * time.Microsecond,
	})
	n.Offload("c1", "fn", ClassExec, 100)
	// Force the whole entry compressed.
	for _, e := range n.entries {
		n.compressEntry(e)
	}
	check(t, n)
	cost := n.Recall("c1", "fn", ClassExec, 10)
	if want := 100 * time.Microsecond; cost.Latency != want {
		t.Fatalf("latency = %v, want %v for 10 fully-compressed pages", cost.Latency, want)
	}
}
