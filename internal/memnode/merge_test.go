package memnode

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// firstLetterTenant maps fn → its first byte: "a1", "a2" belong to tenant
// "a". Substring of the argument, so it never allocates (the bench relies on
// that too).
func firstLetterTenant(fn string) string { return fn[:1] }

func TestParseMergeScope(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want MergeScope
	}{
		{"", MergeFunction},
		{"function", MergeFunction},
		{"tenant", MergeTenant},
		{"cross-tenant", MergeCrossTenant},
	} {
		got, err := ParseMergeScope(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMergeScope(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	_, err := ParseMergeScope("rack")
	if err == nil || !strings.Contains(err.Error(), "options: function, tenant, cross-tenant") {
		t.Fatalf("invalid scope error should list the options, got %v", err)
	}
}

func TestTenantScopeMergesAcrossFunctions(t *testing.T) {
	n := newTest(t, Config{MergeScope: MergeTenant, TenantOf: firstLetterTenant})

	// Two functions of tenant "a" offload runtime pages: one master.
	n.Offload("a1#1", "a1", ClassRuntime, 100)
	n.Offload("a2#1", "a2", ClassRuntime, 80)
	check(t, n)
	if n.ResidentBytes() != 100*ps {
		t.Fatalf("resident = %d, want one tenant-wide master %d", n.ResidentBytes(), 100*ps)
	}
	if got := n.MergedPages(); got != 80 {
		t.Fatalf("merged pages = %d, want 80 (a2's pages merged onto a1's master)", got)
	}

	// Init pages stay per-function at every scope.
	n.Offload("a1#1", "a1", ClassInit, 50)
	n.Offload("a2#1", "a2", ClassInit, 50)
	check(t, n)
	if n.ResidentBytes() != 200*ps {
		t.Fatalf("resident = %d, want separate init masters (%d)", n.ResidentBytes(), 200*ps)
	}

	// Another tenant gets its own runtime master.
	n.Offload("b1#1", "b1", ClassRuntime, 60)
	check(t, n)
	if n.ResidentBytes() != 260*ps {
		t.Fatalf("resident = %d, want %d — tenant b must not share a's master", n.ResidentBytes(), 260*ps)
	}
	if got := n.Stats().MergedPages; got != 80 {
		t.Fatalf("merged pages = %d after tenant-b offload, want unchanged 80", got)
	}
}

func TestCrossTenantMergeRequiresOptIn(t *testing.T) {
	n := newTest(t, Config{
		MergeScope: MergeCrossTenant,
		MergeOptIn: []string{"a", "b"},
		TenantOf:   firstLetterTenant,
	})
	n.Offload("a1#1", "a1", ClassRuntime, 100)
	n.Offload("b1#1", "b1", ClassRuntime, 70) // opted in: merges onto a's master
	check(t, n)
	if n.ResidentBytes() != 100*ps {
		t.Fatalf("resident = %d, want cross-tenant master %d", n.ResidentBytes(), 100*ps)
	}
	if got := n.Stats().MergedPages; got != 70 {
		t.Fatalf("merged pages = %d, want 70", got)
	}

	// Tenant c never opted in: its pages keep a tenant-wide domain.
	n.Offload("c1#1", "c1", ClassRuntime, 50)
	check(t, n)
	if n.ResidentBytes() != 150*ps {
		t.Fatalf("resident = %d, want %d — non-opted tenant must not merge", n.ResidentBytes(), 150*ps)
	}
	if got := n.Stats().MergedPages; got != 70 {
		t.Fatalf("merged pages = %d, want unchanged 70", got)
	}
}

func TestFunctionScopeReportsNoMergedPages(t *testing.T) {
	// Per-function dedup (the default) is not merge activity: MergedPages
	// must stay zero so the default telemetry is byte-identical to the
	// pre-merge-domain behavior.
	n := newTest(t, Config{})
	n.Offload("c1", "fn", ClassRuntime, 100)
	n.Offload("c2", "fn", ClassRuntime, 100)
	n.Offload("c1", "fn", ClassInit, 50)
	n.Offload("c2", "fn", ClassInit, 50)
	check(t, n)
	st := n.Stats()
	if st.DedupHitPages != 150 {
		t.Fatalf("dedup hits = %d, want 150", st.DedupHitPages)
	}
	if st.MergedPages != 0 || st.UnmergeBreaks != 0 || st.CacheMissPages != 0 {
		t.Fatalf("default scope leaked merge/cache stats: %+v", st)
	}
}

func TestWriteBreakPrivatizesWithoutTouchingOthers(t *testing.T) {
	n := newTest(t, Config{MergeScope: MergeTenant, TenantOf: firstLetterTenant})
	n.Offload("a1#1", "a1", ClassRuntime, 100)
	n.Offload("a2#1", "a2", ClassRuntime, 100)
	check(t, n)

	res := n.WriteBreak("a2#1", "a2", ClassRuntime, 30)
	check(t, n)
	if res.Pages != 30 || res.Recalled != 0 {
		t.Fatalf("break = %+v, want 30 privatized, 0 recalled", res)
	}
	if res.Latency != 0 {
		t.Fatalf("break latency = %v, want 0 for a fully-hot master", res.Latency)
	}
	// The writer still holds 100 logical pages: 70 shared + 30 private.
	if got := n.OwnerLogicalBytes("a2#1"); got != 100*ps {
		t.Fatalf("writer logical = %d, want unchanged %d", got, 100*ps)
	}
	if got := n.OwnerPages("a2#1", "a2", ClassRuntime); got != 70 {
		t.Fatalf("writer shared holding = %d, want 70", got)
	}
	// The other owner is untouched — the CoW property.
	if got := n.OwnerPages("a1#1", "a1", ClassRuntime); got != 100 {
		t.Fatalf("bystander shared holding = %d, want 100", got)
	}
	if got := n.OwnerLogicalBytes("a1#1"); got != 100*ps {
		t.Fatalf("bystander logical = %d, want 100 pages", got)
	}
	if n.LogicalBytes() != 200*ps {
		t.Fatalf("logical = %d, want unchanged %d", n.LogicalBytes(), 200*ps)
	}
	// Resident grows by the private copy: master 100 + private 30.
	if n.ResidentBytes() != 130*ps {
		t.Fatalf("resident = %d, want %d", n.ResidentBytes(), 130*ps)
	}
	st := n.Stats()
	if st.UnmergeBreaks != 1 || st.UnmergedPages != 30 || st.UnmergeRecallPages != 0 {
		t.Fatalf("unmerge stats = %+v", st)
	}
	if n.UnmergedPages() != st.UnmergedPages {
		t.Fatalf("UnmergedPages() = %d, stats say %d", n.UnmergedPages(), st.UnmergedPages)
	}

	// A second break clamps to the remaining shared holding.
	res = n.WriteBreak("a2#1", "a2", ClassRuntime, 1000)
	check(t, n)
	if res.Pages != 70 || res.Recalled != 0 {
		t.Fatalf("clamped break = %+v, want 70/0", res)
	}
	if n.ResidentBytes() != 200*ps {
		t.Fatalf("resident = %d, want master + full private copy %d", n.ResidentBytes(), 200*ps)
	}

	// Nothing shared left: further breaks are free no-ops.
	if res = n.WriteBreak("a2#1", "a2", ClassRuntime, 10); res != (BreakResult{}) {
		t.Fatalf("break on empty shared holding = %+v, want zero", res)
	}
	// Private classes have nothing to unmerge.
	n.Offload("a1#1", "a1", ClassExec, 20)
	if res = n.WriteBreak("a1#1", "a1", ClassExec, 10); res != (BreakResult{}) {
		t.Fatalf("break on private class = %+v, want zero", res)
	}
	check(t, n)
}

func TestWriteBreakRecallsWhenNodeFull(t *testing.T) {
	// 100 pages of DRAM, 20 of spill, compression off: the master fills
	// DRAM, so only 20 of the 50 dirtied pages can be re-homed (demoting 20
	// master pages to spill); 30 come back to the writer.
	n := newTest(t, Config{
		MergeScope: MergeTenant, TenantOf: firstLetterTenant,
		DRAMBytes: 100 * ps, SpillBytes: 20 * ps, DisableCompression: true,
	})
	n.Offload("a1#1", "a1", ClassRuntime, 100)
	n.Offload("a2#1", "a2", ClassRuntime, 100)
	check(t, n)

	res := n.WriteBreak("a2#1", "a2", ClassRuntime, 50)
	check(t, n)
	if res.Pages != 20 || res.Recalled != 30 {
		t.Fatalf("break = %+v, want 20 privatized, 30 recalled", res)
	}
	if n.LogicalBytes() != 170*ps {
		t.Fatalf("logical = %d, want %d after recall", n.LogicalBytes(), 170*ps)
	}
	if got := n.TenantLogicalBytes("a"); got != 170*ps {
		t.Fatalf("tenant logical = %d, want %d", got, 170*ps)
	}
	if got := n.OwnerLogicalBytes("a2#1"); got != 70*ps {
		t.Fatalf("writer logical = %d, want 50 shared + 20 private", got)
	}
	if got := n.OwnerLogicalBytes("a1#1"); got != 100*ps {
		t.Fatalf("bystander logical = %d, want untouched 100 pages", got)
	}
	if st := n.Stats(); st.UnmergeRecallPages != 30 {
		t.Fatalf("unmerge recall pages = %d, want 30", st.UnmergeRecallPages)
	}
}

func TestWriteBreakPaysTierSurchargeOnceCached(t *testing.T) {
	dec := 10 * time.Microsecond
	n := newTest(t, Config{
		MergeScope: MergeTenant, TenantOf: firstLetterTenant,
		DecompressLatency: dec, CacheBytes: 200 * ps,
	})
	n.Offload("a1#1", "a1", ClassRuntime, 100)
	n.Offload("a2#1", "a2", ClassRuntime, 100)
	for _, e := range n.entries {
		n.compressEntry(e)
	}
	check(t, n)

	// First break reads a fully-compressed master: 40 pages of decompress
	// surcharge, and the miss admits the master into the shared cache.
	res := n.WriteBreak("a2#1", "a2", ClassRuntime, 40)
	check(t, n)
	if want := 40 * dec; res.Latency != want {
		t.Fatalf("first break latency = %v, want %v", res.Latency, want)
	}
	// Second break hits the cache: the surcharge is waived.
	res = n.WriteBreak("a2#1", "a2", ClassRuntime, 40)
	check(t, n)
	if res.Latency != 0 {
		t.Fatalf("cached break latency = %v, want 0", res.Latency)
	}
	st := n.Stats()
	if st.CacheMissPages != 40 || st.CacheHitPages != 40 {
		t.Fatalf("cache miss/hit = %d/%d, want 40/40", st.CacheMissPages, st.CacheHitPages)
	}
}

func TestSharedCacheWaivesRecallSurcharge(t *testing.T) {
	dec := 10 * time.Microsecond
	n := newTest(t, Config{CacheBytes: 200 * ps, DecompressLatency: dec})
	n.Offload("c1", "fn", ClassInit, 100)
	n.Offload("c2", "fn", ClassInit, 100)
	for _, e := range n.entries {
		n.compressEntry(e)
	}
	check(t, n)

	// First read misses, pays 40 pages of decompression, admits the master.
	cost := n.ReadCost("c1", "fn", ClassInit, 40)
	check(t, n)
	if want := 40 * dec; cost.Latency != want {
		t.Fatalf("miss latency = %v, want %v", cost.Latency, want)
	}
	if got := n.CacheUsedBytes(); got != 100*ps {
		t.Fatalf("cache used = %d, want whole master %d", got, 100*ps)
	}
	// Subsequent reads and recalls are served from the cached hot copy.
	if cost = n.ReadCost("c1", "fn", ClassInit, 40); cost.Latency != 0 {
		t.Fatalf("cached read latency = %v, want 0", cost.Latency)
	}
	if rc := n.Recall("c2", "fn", ClassInit, 100); rc.Latency != 0 {
		t.Fatalf("cached recall latency = %v, want 0", rc.Latency)
	}
	check(t, n)
	st := n.Stats()
	if st.CacheMissPages != 40 || st.CacheHitPages != 140 {
		t.Fatalf("cache miss/hit = %d/%d, want 40/140", st.CacheMissPages, st.CacheHitPages)
	}
}

func TestCacheSkipsOversizedMaster(t *testing.T) {
	n := newTest(t, Config{CacheBytes: 20 * ps})
	n.Offload("c1", "fn", ClassInit, 50)
	n.ReadCost("c1", "fn", ClassInit, 10)
	check(t, n)
	if got := n.CacheUsedBytes(); got != 0 {
		t.Fatalf("cache used = %d, want 0 — a 50-page master cannot fit a 20-page cache", got)
	}
	if st := n.Stats(); st.CacheMissPages != 10 {
		t.Fatalf("cache misses = %d, want 10", st.CacheMissPages)
	}
}

func TestCacheTracksMasterResize(t *testing.T) {
	n := newTest(t, Config{CacheBytes: 200 * ps})
	n.Offload("c1", "fn", ClassInit, 50)
	n.ReadCost("c1", "fn", ClassInit, 1)
	check(t, n)
	if got := n.CacheUsedBytes(); got != 50*ps {
		t.Fatalf("cache used = %d, want %d", got, 50*ps)
	}
	// A longer offload grows the master; the cached copy follows.
	n.Offload("c2", "fn", ClassInit, 80)
	check(t, n)
	if got := n.CacheUsedBytes(); got != 80*ps {
		t.Fatalf("cache used = %d after growth, want %d", got, 80*ps)
	}
	// Recalling the longest holder shrinks it.
	n.Recall("c2", "fn", ClassInit, 80)
	check(t, n)
	if got := n.CacheUsedBytes(); got != 50*ps {
		t.Fatalf("cache used = %d after shrink, want %d", got, 50*ps)
	}
	// Freeing the master drops the cached copy.
	n.Recall("c1", "fn", ClassInit, 50)
	check(t, n)
	if got := n.CacheUsedBytes(); got != 0 {
		t.Fatalf("cache used = %d after master freed, want 0", got)
	}
}

// TestCacheFairnessEviction drives the admission sequences of two tenants and
// checks the weighted-share fairness invariant: every occupant ends within
// CacheBytes·w/Σw of the active set, over-share tenants evicted coldest-first.
func TestCacheFairnessEviction(t *testing.T) {
	const masterPages = 10
	for _, tc := range []struct {
		name      string
		shares    map[string]float64
		admits    []string // tenant letter per 10-page master, in order
		wantOcc   map[string]int64
		wantEvict int64
	}{
		{
			name:      "equal shares split the cache",
			admits:    []string{"a", "a", "a", "a", "a", "a", "a", "a", "b", "b", "b", "b"},
			wantOcc:   map[string]int64{"a": 50 * ps, "b": 40 * ps},
			wantEvict: 3,
		},
		{
			name:      "weighted shares skew the split",
			shares:    map[string]float64{"a": 1, "b": 3},
			admits:    []string{"a", "a", "a", "a", "a", "a", "a", "a", "b", "b", "b", "b"},
			wantOcc:   map[string]int64{"a": 20 * ps, "b": 40 * ps},
			wantEvict: 6,
		},
		{
			name:      "sole occupant owns the whole cache",
			admits:    []string{"a", "a", "a", "a", "a", "a", "a", "a"},
			wantOcc:   map[string]int64{"a": 80 * ps},
			wantEvict: 0,
		},
		{
			name:      "sole occupant still bounded by capacity",
			admits:    []string{"a", "a", "a", "a", "a", "a", "a", "a", "a", "a", "a"},
			wantOcc:   map[string]int64{"a": 100 * ps},
			wantEvict: 1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := newTest(t, Config{
				CacheBytes:  100 * ps,
				CacheShares: tc.shares,
				TenantOf:    firstLetterTenant,
			})
			counts := map[string]int{}
			for _, tenant := range tc.admits {
				fn := tenant + string(rune('0'+counts[tenant]))
				counts[tenant]++
				owner := fn + "#1"
				n.Offload(owner, fn, ClassInit, masterPages)
				n.ReadCost(owner, fn, ClassInit, 1) // miss admits the master
				check(t, n)
			}
			occ := map[string]int64{}
			for _, u := range n.CacheOccupancies() {
				occ[u.Tenant] = u.LogicalBytes
			}
			for tenant, want := range tc.wantOcc {
				if occ[tenant] != want {
					t.Fatalf("tenant %s occupancy = %d, want %d (all: %v)", tenant, occ[tenant], want, occ)
				}
			}
			if len(occ) != len(tc.wantOcc) {
				t.Fatalf("occupants = %v, want %v", occ, tc.wantOcc)
			}
			if got := n.Stats().CacheEvictions; got != tc.wantEvict {
				t.Fatalf("evictions = %d, want %d", got, tc.wantEvict)
			}
		})
	}
}

func TestCacheEvictsColdestFirst(t *testing.T) {
	n := newTest(t, Config{CacheBytes: 30 * ps, TenantOf: firstLetterTenant})
	for _, fn := range []string{"a0", "a1"} {
		n.Offload(fn+"#1", fn, ClassInit, 10)
		n.ReadCost(fn+"#1", fn, ClassInit, 1)
	}
	n.ReadCost("a0#1", "a0", ClassInit, 1) // touch a0 MRU: a1 is now coldest
	// Tenant b's admission halves a's share: a must shed its coldest master.
	n.Offload("b0#1", "b0", ClassInit, 10)
	n.ReadCost("b0#1", "b0", ClassInit, 1)
	check(t, n)

	before := n.Stats()
	if n.ReadCost("a0#1", "a0", ClassInit, 1); n.Stats().CacheHitPages != before.CacheHitPages+1 {
		t.Fatal("a0 (recently touched) should have survived the rebalance")
	}
	if n.ReadCost("a1#1", "a1", ClassInit, 1); n.Stats().CacheMissPages != before.CacheMissPages+1 {
		t.Fatal("a1 (coldest) should have been the eviction victim")
	}
}

// TestIsolationPropertyRandomized is the merge security property test: under
// a random interleaving of offloads, recalls, CoW breaks, and discards across
// three tenants (two opted into cross-tenant merging, one not), no shared
// master is ever reachable from two tenants unless both opted in, and no
// write break ever changes another owner's logical holdings.
func TestIsolationPropertyRandomized(t *testing.T) {
	n := newTest(t, Config{
		MergeScope: MergeCrossTenant,
		MergeOptIn: []string{"a", "b"},
		TenantOf:   firstLetterTenant,
		DRAMBytes:  300 * ps, SpillBytes: 200 * ps,
		CacheBytes: 80 * ps, CacheShares: map[string]float64{"a": 2},
	})
	rng := rand.New(rand.NewSource(7))
	fns := []string{"a1", "a2", "b1", "c1", "c2"}
	var owners []string
	ownerFn := map[string]string{}
	for _, fn := range fns {
		for _, c := range []string{"#1", "#2"} {
			owners = append(owners, fn+c)
			ownerFn[fn+c] = fn
		}
	}
	classes := []Class{ClassRuntime, ClassInit, ClassExec}

	for step := 0; step < 4000; step++ {
		owner := owners[rng.Intn(len(owners))]
		fn := ownerFn[owner]
		cls := classes[rng.Intn(len(classes))]
		switch op := rng.Intn(10); {
		case op < 5:
			n.Offload(owner, fn, cls, 1+rng.Intn(30))
		case op < 7:
			n.Recall(owner, fn, cls, 1+rng.Intn(30))
		case op < 9:
			// Snapshot every other owner before the CoW break: a break must
			// never move another owner's logical bytes.
			snap := map[string]int64{}
			for _, o := range owners {
				if o != owner {
					snap[o] = n.OwnerLogicalBytes(o)
				}
			}
			n.WriteBreak(owner, fn, cls, 1+rng.Intn(30))
			for o, want := range snap {
				if got := n.OwnerLogicalBytes(o); got != want {
					t.Fatalf("step %d: break by %s moved %s's logical bytes %d → %d",
						step, owner, o, want, got)
				}
			}
		default:
			n.DiscardOwner(owner)
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// Independent reachability check (not via checkIsolation's domain
		// strings): collect the tenants referencing each shared master.
		for key, e := range n.entries {
			if !e.shared {
				continue
			}
			seen := map[string]bool{}
			for o := range e.refs {
				seen[firstLetterTenant(ownerFn[o])] = true
			}
			if len(seen) <= 1 {
				continue
			}
			for tenant := range seen {
				if tenant != "a" && tenant != "b" {
					t.Fatalf("step %d: master %v reachable from tenants %v including non-opted %q",
						step, key, seen, tenant)
				}
			}
		}
	}
}

// TestMergeSavingsMonotoneInScope is the metamorphic check: replaying one
// identical trace at widening scopes never increases resident bytes at any
// step (function ⊇ tenant ⊇ cross-tenant domains partition ever coarser), and
// merge activity grows with scope.
func TestMergeSavingsMonotoneInScope(t *testing.T) {
	type replayResult struct {
		resident []int64
		merged   int64
	}
	replay := func(scope MergeScope) replayResult {
		n := New(Config{
			PageSize:   ps,
			MergeScope: scope,
			MergeOptIn: []string{"a", "b"},
			TenantOf:   firstLetterTenant,
		})
		rng := rand.New(rand.NewSource(99))
		fns := []string{"a1", "a2", "b1", "b2"}
		var out replayResult
		for step := 0; step < 600; step++ {
			i := rng.Intn(len(fns))
			fn := fns[i]
			owner := fn + "#0"
			cls := ClassRuntime
			if rng.Intn(4) == 0 {
				cls = ClassInit
			}
			if rng.Intn(10) < 7 {
				n.Offload(owner, fn, cls, 1+rng.Intn(40))
			} else {
				n.Recall(owner, fn, cls, 1+rng.Intn(40))
			}
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("scope %s step %d: %v", scope, step, err)
			}
			out.resident = append(out.resident, n.ResidentBytes())
		}
		out.merged = n.Stats().MergedPages
		return out
	}

	fun := replay(MergeFunction)
	ten := replay(MergeTenant)
	cross := replay(MergeCrossTenant)

	var sumF, sumT, sumC int64
	for i := range fun.resident {
		if fun.resident[i] < ten.resident[i] || ten.resident[i] < cross.resident[i] {
			t.Fatalf("step %d: resident not monotone in scope: function %d, tenant %d, cross %d",
				i, fun.resident[i], ten.resident[i], cross.resident[i])
		}
		sumF += fun.resident[i]
		sumT += ten.resident[i]
		sumC += cross.resident[i]
	}
	if !(sumF > sumT && sumT > sumC) {
		t.Fatalf("widening scope should strictly reduce resident footprint on this trace: %d / %d / %d",
			sumF, sumT, sumC)
	}
	if fun.merged != 0 {
		t.Fatalf("function scope merged %d pages, want 0", fun.merged)
	}
	if !(ten.merged > 0 && cross.merged > ten.merged) {
		t.Fatalf("merged pages should grow with scope: tenant %d, cross %d", ten.merged, cross.merged)
	}
}
