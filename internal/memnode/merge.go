package memnode

// Merge domains and the shared cache tier.
//
// The base node dedups described pages per (function, class): every
// container of one function shares one master per shared class. Merge
// domains widen that scope the way "User-guided Page Merging for Memory
// Deduplication in Serverless Systems" merges identical pages across
// functions: at MergeTenant scope all of one tenant's functions share one
// runtime master, and at MergeCrossTenant scope every *opted-in* tenant
// shares a single rack-wide runtime master. Init pages keep per-function
// domains at every scope — they carry function-specific initialization
// state, so only runtime/library pages are content-identical across
// functions.
//
// Two safety properties hold by construction and are re-verified by
// CheckInvariants after every mutation:
//
//   - Isolation: a master never becomes reachable across a tenant edge
//     unless both tenants opted in (checkIsolation).
//   - CoW on write: a writer leaves the master untouched — WriteBreak moves
//     its dirtied pages into a private copy charged to the writing tenant,
//     so no break can mutate another owner's logical bytes.
//
// On top of the merge domains sits a shared multi-tenant cache tier
// ("Caching Aided Multi-Tenant Serverless Computing"): a dedicated DRAM
// partition holding hot copies of merge masters. A recall of a cached
// master skips the compressed/spill tier surcharge. Eviction is
// fairness-aware: each tenant's occupancy is bounded by its weighted share
// of the cache over the currently active occupants, so one hot tenant
// cannot monopolize the tier (the per-tenant analogue of the logical-byte
// quotas).

import (
	"fmt"
	"time"
)

// MergeScope selects how wide runtime-page merge domains stretch.
type MergeScope string

const (
	// MergeFunction is the default: dedup only across containers of one
	// function (the behavior of the density studies).
	MergeFunction MergeScope = "function"
	// MergeTenant merges identical runtime pages across all functions of
	// one tenant.
	MergeTenant MergeScope = "tenant"
	// MergeCrossTenant merges runtime pages across every tenant that opted
	// in (Config.MergeOptIn); tenants that did not opt in keep tenant-wide
	// domains.
	MergeCrossTenant MergeScope = "cross-tenant"
)

// MergeScopes lists the valid scopes in widening order.
func MergeScopes() []MergeScope {
	return []MergeScope{MergeFunction, MergeTenant, MergeCrossTenant}
}

// ParseMergeScope validates a scope string; "" means MergeFunction.
func ParseMergeScope(s string) (MergeScope, error) {
	switch MergeScope(s) {
	case "", MergeFunction:
		return MergeFunction, nil
	case MergeTenant:
		return MergeTenant, nil
	case MergeCrossTenant:
		return MergeCrossTenant, nil
	}
	return "", fmt.Errorf("memnode: unknown merge scope %q (options: function, tenant, cross-tenant)", s)
}

// Widened merge-domain keys start with NUL, which cannot appear in function
// IDs, so they can never collide with a per-function domain.
const (
	tenantDomPrefix = "\x00tenant\x00"
	globalDom       = "\x00cross-tenant"
)

// domainOf returns the merge domain a shared-class batch of fn lands in.
// The memoized result keeps the widened-scope hot path allocation-free.
func (n *Node) domainOf(fn string, class Class) string {
	if class != ClassRuntime || n.cfg.MergeScope == MergeFunction {
		return fn
	}
	if d, ok := n.domCache[fn]; ok {
		return d
	}
	t := n.tenantOf(fn)
	d := tenantDomPrefix + t
	if n.cfg.MergeScope == MergeCrossTenant && n.optIn[t] {
		d = globalDom
	}
	n.domCache[fn] = d
	return d
}

// BreakResult prices a copy-on-write unmerge.
type BreakResult struct {
	// Pages privatized: moved out of the shared master into a per-owner
	// private copy. The owner's logical holdings are unchanged — the pages
	// moved, they did not leave the node.
	Pages int
	// Recalled pages could not be re-homed privately (node full); they are
	// released back to the caller, which must fold them into local memory.
	Recalled int
	// Latency is the tier surcharge for reading the master fraction that
	// backed the dirtied pages.
	Latency time.Duration
}

// WriteBreak is the copy-on-write unmerge: the owner dirtied pages it holds
// against a shared master, so those pages detach into a private per-owner
// copy charged to the writing tenant, leaving the master — and every other
// owner's logical bytes — untouched. Reading the master fraction that backed
// the dirtied pages pays the usual tier surcharge (through the shared cache,
// which can waive it). When DRAM and spill cannot home the private copy the
// remainder is recalled: released from the node and returned to the caller's
// local memory. Writes against private holdings (dedup off, or a non-shared
// class) are free — there is nothing to unmerge.
func (n *Node) WriteBreak(owner, fn string, class Class, pages int) BreakResult {
	if pages <= 0 {
		return BreakResult{}
	}
	key := n.key(owner, fn, class)
	e := n.entries[key]
	if e == nil || !e.shared {
		return BreakResult{}
	}
	cur := e.refs[owner]
	if pages > cur {
		pages = cur
	}
	if pages == 0 {
		return BreakResult{}
	}

	lat := n.tierSurcharge(e, pages, n.tenantOf(fn))

	// Detach the dirtied pages from the master. This may shrink or free the
	// master (the writer could have been its longest or only reference);
	// other owners' holdings are untouched either way.
	n.release(e, owner, pages)

	// Re-home them as a private copy under the writer, fitting through the
	// same compress-then-spill path as a fresh offload.
	pk := entryKey{dom: fn, owner: owner, class: class}
	pe := n.entries[pk]
	created := pe == nil
	if created {
		pe = &entry{key: pk}
		n.entries[pk] = pe
		n.lruPush(pe)
	}
	hotFit := n.makeRoom(pages)
	spillFit := 0
	if hotFit < pages {
		spillFit = pages - hotFit
		if n.cfg.SpillBytes > 0 {
			ps := int64(n.cfg.PageSize)
			if free := int((n.cfg.SpillBytes - n.SpillUsedBytes()) / ps); free < spillFit {
				spillFit = free
			}
			if spillFit < 0 {
				spillFit = 0
			}
		}
	}
	private := hotFit + spillFit
	recalled := pages - private
	pe.hot += hotFit
	n.hotPages += int64(hotFit)
	pe.spill += spillFit
	n.spillPages += int64(spillFit)
	n.spilledPages += int64(spillFit)
	n.met.spilled.Add(int64(spillFit))
	pe.pages += private
	if pe.pages == 0 {
		if created {
			n.freeEntry(pe)
		}
	} else {
		n.lruTouch(pe)
	}
	if recalled > 0 {
		n.logicalPages -= int64(recalled)
		n.tenants[n.tenantOf(fn)] -= int64(recalled) * int64(n.cfg.PageSize)
		n.unmergeRecall += int64(recalled)
	}
	n.registerOwner(owner, fn, pk, -int64(recalled))

	n.unmergeBreaks++
	n.unmergedPages += int64(private)
	n.met.unmerged.Add(int64(private))
	if rb := n.ResidentBytes(); rb > n.peakResidentBytes {
		n.peakResidentBytes = rb
	}
	n.syncGauges()
	return BreakResult{Pages: private, Recalled: recalled, Latency: lat}
}

// --- shared multi-tenant cache tier ---

// cacheEntry is one cached master: a hot copy of a shared entry's resident
// pages, charged to the tenant that admitted it, on that tenant's LRU list.
type cacheEntry struct {
	key        entryKey
	tenant     string
	pages      int
	prev, next *cacheEntry // per-tenant recency list; head is coldest
}

// sharedCache is the cache tier's state. All mutation goes through the
// Node's cache* methods so occupancy, lists, and the fairness invariant stay
// in lockstep.
type sharedCache struct {
	bytes     int64
	usedBytes int64
	entries   map[entryKey]*cacheEntry
	head      map[string]*cacheEntry
	tail      map[string]*cacheEntry
	occ       map[string]int64 // tenant → cached bytes; deleted at zero
}

func newSharedCache(bytes int64) *sharedCache {
	return &sharedCache{
		bytes:   bytes,
		entries: make(map[entryKey]*cacheEntry),
		head:    make(map[string]*cacheEntry),
		tail:    make(map[string]*cacheEntry),
		occ:     make(map[string]int64),
	}
}

// activeTenants lists tenants with cache occupancy, sorted for determinism.
func (c *sharedCache) activeTenants() []string {
	out := make([]string, 0, len(c.occ))
	for t := range c.occ {
		out = append(out, t)
	}
	insertionSort(out)
	return out
}

// insertionSort avoids sort.Strings' interface boxing on the tiny active-set
// slices the rebalance loop sorts.
func insertionSort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// cacheWeight is a tenant's configured share weight (default 1).
func (n *Node) cacheWeight(t string) float64 {
	if w, ok := n.cfg.CacheShares[t]; ok && w > 0 {
		return w
	}
	return 1
}

// cacheShareOf is t's byte share of the cache over the currently active
// occupants: CacheBytes·w/Σw, floor-divided so shares never sum past
// capacity.
func (n *Node) cacheShareOf(t string) int64 {
	c := n.cache
	var totalW float64
	for other := range c.occ {
		totalW += n.cacheWeight(other)
	}
	if _, ok := c.occ[t]; !ok {
		totalW += n.cacheWeight(t)
	}
	if totalW <= 0 {
		return 0
	}
	return int64(float64(c.bytes) * n.cacheWeight(t) / totalW)
}

// cacheHas reports whether e's master is cached, touching it MRU on a hit.
func (n *Node) cacheHas(e *entry) bool {
	if n.cache == nil || !e.shared {
		return false
	}
	ce := n.cache.entries[e.key]
	if ce == nil {
		return false
	}
	n.cacheTouch(ce)
	return true
}

// cacheTouch moves ce to the MRU end of its tenant's list.
func (n *Node) cacheTouch(ce *cacheEntry) {
	c := n.cache
	if c.tail[ce.tenant] == ce {
		return
	}
	n.cacheUnlink(ce)
	n.cacheLink(ce)
}

func (n *Node) cacheLink(ce *cacheEntry) {
	c := n.cache
	ce.prev = c.tail[ce.tenant]
	ce.next = nil
	if ce.prev != nil {
		ce.prev.next = ce
	} else {
		c.head[ce.tenant] = ce
	}
	c.tail[ce.tenant] = ce
}

func (n *Node) cacheUnlink(ce *cacheEntry) {
	c := n.cache
	if ce.prev != nil {
		ce.prev.next = ce.next
	} else {
		c.head[ce.tenant] = ce.next
	}
	if ce.next != nil {
		ce.next.prev = ce.prev
	} else {
		c.tail[ce.tenant] = ce.prev
	}
	ce.prev, ce.next = nil, nil
}

// cacheInsert admits e's master into the cache charged to tenant, then
// rebalances. Masters larger than the whole cache are not admitted.
func (n *Node) cacheInsert(e *entry, tenant string) {
	c := n.cache
	if c == nil || !e.shared {
		return
	}
	pages := e.residentTarget()
	bytes := int64(pages) * int64(n.cfg.PageSize)
	if pages <= 0 || bytes > c.bytes {
		return
	}
	if c.entries[e.key] != nil {
		return
	}
	ce := &cacheEntry{key: e.key, tenant: tenant, pages: pages}
	c.entries[e.key] = ce
	c.occ[tenant] += bytes
	c.usedBytes += bytes
	n.cacheLink(ce)
	n.cacheRebalance()
}

// cacheResync tracks a live master's resident size: grows or shrinks the
// cached copy in place (rebalancing after growth). No-op when uncached.
func (n *Node) cacheResync(e *entry) {
	c := n.cache
	if c == nil {
		return
	}
	ce := c.entries[e.key]
	if ce == nil {
		return
	}
	pages := e.residentTarget()
	if pages == ce.pages {
		return
	}
	if pages <= 0 {
		n.cacheRemove(ce)
		return
	}
	d := int64(pages-ce.pages) * int64(n.cfg.PageSize)
	ce.pages = pages
	c.occ[ce.tenant] += d
	c.usedBytes += d
	if c.occ[ce.tenant] <= 0 {
		delete(c.occ, ce.tenant)
	}
	if d > 0 {
		n.cacheRebalance()
	}
}

// cacheDrop evicts the cached copy keyed by key, if any (master freed).
func (n *Node) cacheDrop(key entryKey) {
	if n.cache == nil {
		return
	}
	if ce := n.cache.entries[key]; ce != nil {
		n.cacheRemove(ce)
	}
}

// cacheRemove detaches ce from every cache structure.
func (n *Node) cacheRemove(ce *cacheEntry) {
	c := n.cache
	n.cacheUnlink(ce)
	bytes := int64(ce.pages) * int64(n.cfg.PageSize)
	c.occ[ce.tenant] -= bytes
	if c.occ[ce.tenant] <= 0 {
		delete(c.occ, ce.tenant)
	}
	c.usedBytes -= bytes
	delete(c.entries, ce.key)
}

// CacheOccupancies lists each tenant's shared-cache occupancy in bytes,
// sorted by tenant (nil when the cache is disabled) — the timeline sampler's
// fairness feed.
func (n *Node) CacheOccupancies() []TenantUsage {
	if n.cache == nil {
		return nil
	}
	out := make([]TenantUsage, 0, len(n.cache.occ))
	for _, t := range n.cache.activeTenants() {
		out = append(out, TenantUsage{Tenant: t, LogicalBytes: n.cache.occ[t]})
	}
	return out
}

// cacheRebalance enforces the fairness invariant: while any tenant occupies
// more than its share of the active set, evict that tenant's coldest entry
// (the most-over-share tenant first; ties break on the smaller name). Each
// iteration evicts one entry, so the loop terminates; shares are recomputed
// per iteration because evicting a tenant's last entry widens everyone
// else's share.
func (n *Node) cacheRebalance() {
	c := n.cache
	for {
		victim := ""
		var worst int64
		for _, t := range c.activeTenants() {
			if over := c.occ[t] - n.cacheShareOf(t); over > worst {
				worst, victim = over, t
			}
		}
		if victim == "" {
			return
		}
		ce := c.head[victim]
		if ce == nil {
			return
		}
		n.cacheRemove(ce)
		n.cacheEvictions++
	}
}
