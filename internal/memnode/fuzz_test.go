package memnode

import (
	"testing"
)

// refModel is the naive reference the fuzzer diffs the node against: plain
// maps of owner holdings, with the merge-domain rules restated independently.
// It runs with unbounded capacity (the node under test keeps its default
// 16 GiB DRAM and unbounded spill, so nothing is ever rejected, compressed,
// or spilled) — every structural identity is exact.
type refModel struct {
	scope  MergeScope
	opt    map[string]bool
	shared map[refKey]map[string]int // merge domain → owner → pages
	priv   map[string]map[Class]int  // owner → class → pages
}

type refKey struct {
	dom   string
	class Class
}

func newRefModel(scope MergeScope, optIn []string) *refModel {
	m := &refModel{
		scope:  scope,
		opt:    make(map[string]bool),
		shared: make(map[refKey]map[string]int),
		priv:   make(map[string]map[Class]int),
	}
	for _, t := range optIn {
		m.opt[t] = true
	}
	return m
}

func (m *refModel) domain(fn string, class Class) string {
	if class != ClassRuntime || m.scope == MergeFunction {
		return fn
	}
	t := firstLetterTenant(fn)
	if m.scope == MergeCrossTenant && m.opt[t] {
		return "*"
	}
	return "tenant:" + t
}

func (m *refModel) sharedRefs(fn string, class Class) map[string]int {
	k := refKey{dom: m.domain(fn, class), class: class}
	refs := m.shared[k]
	if refs == nil {
		refs = make(map[string]int)
		m.shared[k] = refs
	}
	return refs
}

func (m *refModel) offload(owner, fn string, class Class, pages int) int {
	if class.Shared() {
		m.sharedRefs(fn, class)[owner] += pages
	} else {
		if m.priv[owner] == nil {
			m.priv[owner] = make(map[Class]int)
		}
		m.priv[owner][class] += pages
	}
	return pages
}

func (m *refModel) recall(owner, fn string, class Class, pages int) int {
	if class.Shared() {
		refs := m.sharedRefs(fn, class)
		if pages > refs[owner] {
			pages = refs[owner]
		}
		refs[owner] -= pages
		return pages
	}
	held := m.priv[owner][class]
	if pages > held {
		pages = held
	}
	if pages > 0 {
		m.priv[owner][class] -= pages
	}
	return pages
}

// writeBreak moves pages from the owner's shared holding to its private copy.
// With unbounded capacity nothing is ever recalled.
func (m *refModel) writeBreak(owner, fn string, class Class, pages int) int {
	if !class.Shared() {
		return 0
	}
	refs := m.sharedRefs(fn, class)
	if pages > refs[owner] {
		pages = refs[owner]
	}
	if pages == 0 {
		return 0
	}
	refs[owner] -= pages
	if m.priv[owner] == nil {
		m.priv[owner] = make(map[Class]int)
	}
	m.priv[owner][class] += pages
	return pages
}

func (m *refModel) discard(owner string) int {
	var freed int
	for _, refs := range m.shared {
		freed += refs[owner]
		delete(refs, owner)
	}
	for _, p := range m.priv[owner] {
		freed += p
	}
	delete(m.priv, owner)
	return freed
}

func (m *refModel) ownerPages(owner string) int {
	var total int
	for _, refs := range m.shared {
		total += refs[owner]
	}
	for _, p := range m.priv[owner] {
		total += p
	}
	return total
}

func (m *refModel) logicalPages() int {
	var total int
	for _, refs := range m.shared {
		for _, p := range refs {
			total += p
		}
	}
	for _, pm := range m.priv {
		for _, p := range pm {
			total += p
		}
	}
	return total
}

// residentPages: each shared domain keeps one master sized by its longest
// holder; private holdings are stored verbatim.
func (m *refModel) residentPages() int {
	var total int
	for _, refs := range m.shared {
		maxP := 0
		for _, p := range refs {
			if p > maxP {
				maxP = p
			}
		}
		total += maxP
	}
	for _, pm := range m.priv {
		for _, p := range pm {
			total += p
		}
	}
	return total
}

// FuzzMergeDomains differentially fuzzes the merge-domain page store against
// the map-based reference model: random interleavings of offload / recall /
// CoW break / discard / read across three tenants and every merge scope must
// keep per-owner holdings, the node ledger, and the resident (refcounted
// master) footprint byte-equal to the model, with CheckInvariants — including
// the isolation and cache fairness properties — green after every op.
//
// Input layout: byte 0 picks the scope, byte 1 is the tenant opt-in mask
// (bit 7 additionally enables the shared cache tier); each following 4-byte
// group is one op: (opcode, owner, class, pages).
func FuzzMergeDomains(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x10\x00\x01\x00\x20"))
	f.Add([]byte("\x01\x83\x00\x00\x00\x10\x00\x04\x00\x10\x02\x00\x00\x08\x01\x04\x00\x10"))
	f.Add([]byte("\x02\x83\x00\x00\x00\x20\x00\x02\x00\x20\x00\x06\x00\x20\x02\x02\x00\x10\x03\x02\x00\x00"))
	f.Add([]byte("\x02\x07\x00\x01\x00\x3f\x00\x03\x00\x3f\x04\x03\x00\x10\x01\x01\x00\x30\x03\x01\x00\x00"))
	f.Add([]byte("\x02\x81\x00\x00\x01\x30\x00\x02\x01\x30\x04\x00\x01\x10\x02\x00\x01\x20\x00\x04\x02\x18\x01\x04\x02\x08"))

	tenants := []string{"a", "b", "c"}
	fns := []string{"a1", "a2", "b1", "c1"}
	var owners []string
	ownerFn := map[string]string{}
	for _, fn := range fns {
		for _, c := range []string{"#1", "#2"} {
			owners = append(owners, fn+c)
			ownerFn[fn+c] = fn
		}
	}
	classes := []Class{ClassRuntime, ClassInit, ClassExec}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cfg := Config{
			PageSize:   ps,
			MergeScope: MergeScopes()[int(data[0])%3],
			TenantOf:   firstLetterTenant,
		}
		for i, tn := range tenants {
			if data[1]&(1<<i) != 0 {
				cfg.MergeOptIn = append(cfg.MergeOptIn, tn)
			}
		}
		if data[1]&(1<<7) != 0 {
			cfg.CacheBytes = 64 * ps
		}
		n := New(cfg)
		ref := newRefModel(cfg.MergeScope, cfg.MergeOptIn)

		for ops := data[2:]; len(ops) >= 4; ops = ops[4:] {
			owner := owners[int(ops[1])%len(owners)]
			fn := ownerFn[owner]
			class := classes[int(ops[2])%len(classes)]
			pages := 1 + int(ops[3])%64
			switch int(ops[0]) % 5 {
			case 0:
				got := n.Offload(owner, fn, class, pages)
				if want := ref.offload(owner, fn, class, pages); got != want {
					t.Fatalf("offload(%s,%s,%v,%d) = %d, want %d", owner, fn, class, pages, got, want)
				}
			case 1:
				got := n.Recall(owner, fn, class, pages)
				if want := ref.recall(owner, fn, class, pages); got.Pages != want {
					t.Fatalf("recall(%s,%s,%v,%d) = %d, want %d", owner, fn, class, pages, got.Pages, want)
				}
			case 2:
				got := n.WriteBreak(owner, fn, class, pages)
				if want := ref.writeBreak(owner, fn, class, pages); got.Pages != want || got.Recalled != 0 {
					t.Fatalf("writeBreak(%s,%s,%v,%d) = %+v, want %d privatized, 0 recalled",
						owner, fn, class, pages, got, want)
				}
			case 3:
				got := n.DiscardOwner(owner)
				if want := int64(ref.discard(owner)) * ps; got != want {
					t.Fatalf("discard(%s) freed %d, want %d", owner, got, want)
				}
			case 4:
				// ReadCost must clamp like a recall but change nothing.
				got := n.ReadCost(owner, fn, class, pages)
				want := ref.ownerClassClamp(owner, fn, class, pages)
				if got.Pages != want {
					t.Fatalf("readCost(%s,%s,%v,%d) = %d, want %d", owner, fn, class, pages, got.Pages, want)
				}
			}
			if err := n.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for _, o := range owners {
				if got, want := n.OwnerLogicalBytes(o), int64(ref.ownerPages(o))*ps; got != want {
					t.Fatalf("owner %s logical = %d, model says %d", o, got, want)
				}
			}
			if got, want := n.LogicalBytes(), int64(ref.logicalPages())*ps; got != want {
				t.Fatalf("node logical = %d, model says %d", got, want)
			}
			if got, want := n.ResidentBytes(), int64(ref.residentPages())*ps; got != want {
				t.Fatalf("node resident = %d, model says %d", got, want)
			}
		}
	})
}

// ownerClassClamp is the model's answer to ReadCost: the owner's holding of
// one class, clamped.
func (m *refModel) ownerClassClamp(owner, fn string, class Class, pages int) int {
	held := 0
	if class.Shared() {
		held = m.sharedRefs(fn, class)[owner]
	} else {
		held = m.priv[owner][class]
	}
	if pages > held {
		pages = held
	}
	return pages
}
