package mglru

import (
	"fmt"

	"github.com/faasmem/faasmem/internal/pagemem"
)

// Reference is the retired per-page generation tracker: a flat gen slice
// stamped one page at a time. It is semantically identical to LRU and kept
// as the oracle for the differential tests (mglru, core, and the fuzz
// harness all replay the same operation sequences through both and compare).
// Production code uses LRU; nothing outside tests should construct this.
type Reference struct {
	space      *pagemem.Space
	gen        []GenID // per-page generation, aligned with space page IDs
	count      []int   // pages per generation
	tracked    int
	promotions uint64
	demotions  uint64
}

// NewReference creates a per-page tracker over space with a single initial
// generation (ID 0).
func NewReference(space *pagemem.Space) *Reference {
	return &Reference{space: space, count: make([]int, 1)}
}

// Space returns the underlying address space.
func (l *Reference) Space() *pagemem.Space { return l.space }

// Youngest returns the ID of the youngest (most recent) generation.
func (l *Reference) Youngest() GenID { return GenID(len(l.count) - 1) }

// NumGenerations returns how many generations exist.
func (l *Reference) NumGenerations() int { return len(l.count) }

// GenPages returns the number of pages currently stamped with generation g.
func (l *Reference) GenPages(g GenID) int {
	if g < 0 || int(g) >= len(l.count) {
		return 0
	}
	return l.count[g]
}

// AssignNew stamps every not-yet-tracked page with the youngest generation,
// one page at a time. The gen slice is grown to the space size in one
// allocation before the stamp loop rather than per-page appends.
func (l *Reference) AssignNew() pagemem.Range {
	start := pagemem.PageID(l.tracked)
	end := pagemem.PageID(l.space.NumPages())
	l.growGen(int(end))
	young := l.Youngest()
	for id := start; id < end; id++ {
		l.gen = append(l.gen, young)
		l.count[young]++
	}
	l.tracked = int(end)
	return pagemem.Range{Start: start, End: end}
}

// SkipNew marks every not-yet-tracked page as unmonitored (NoGen).
func (l *Reference) SkipNew() pagemem.Range {
	start := pagemem.PageID(l.tracked)
	end := pagemem.PageID(l.space.NumPages())
	l.growGen(int(end))
	for id := start; id < end; id++ {
		l.gen = append(l.gen, NoGen)
	}
	l.tracked = int(end)
	return pagemem.Range{Start: start, End: end}
}

// growGen reserves capacity for n tracked pages so the stamp loops above
// never reallocate mid-walk.
func (l *Reference) growGen(n int) {
	if cap(l.gen) >= n {
		return
	}
	grown := make([]GenID, len(l.gen), n)
	copy(grown, l.gen)
	l.gen = grown
}

// InsertBarrier closes the current youngest generation and opens a new one,
// first stamping any untracked pages into the closing generation.
func (l *Reference) InsertBarrier() (sealed GenID, stamped pagemem.Range) {
	stamped = l.AssignNew()
	sealed = l.Youngest()
	l.count = append(l.count, 0)
	return sealed, stamped
}

// GenOf returns the generation of page id, or NoGen if untracked.
func (l *Reference) GenOf(id pagemem.PageID) GenID {
	if int(id) >= len(l.gen) {
		return NoGen
	}
	return l.gen[id]
}

// Promote moves page id to the youngest generation.
func (l *Reference) Promote(id pagemem.PageID) {
	l.moveTo(id, l.Youngest())
}

// Demote returns page id to generation g.
func (l *Reference) Demote(id pagemem.PageID, g GenID) {
	if g < 0 || int(g) >= len(l.count) {
		panic(fmt.Sprintf("mglru: demote to invalid generation %d", g))
	}
	l.moveTo(id, g)
}

func (l *Reference) moveTo(id pagemem.PageID, g GenID) {
	if int(id) >= len(l.gen) {
		return
	}
	old := l.gen[id]
	if old == g {
		return
	}
	if old != NoGen {
		l.count[old]--
	}
	if old == NoGen {
		return
	}
	l.gen[id] = g
	l.count[g]++
	if g > old {
		l.promotions++
	} else {
		l.demotions++
	}
}

// Promotions counts pages ever moved to a younger generation.
func (l *Reference) Promotions() uint64 { return l.promotions }

// Demotions counts pages ever moved back to an older generation.
func (l *Reference) Demotions() uint64 { return l.demotions }

// WalkGen calls fn for every tracked page currently in generation g.
func (l *Reference) WalkGen(g GenID, fn func(pagemem.PageID)) {
	for id, pg := range l.gen {
		if pg == g {
			fn(pagemem.PageID(id))
		}
	}
}
