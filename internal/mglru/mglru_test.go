package mglru

import (
	"testing"

	"github.com/faasmem/faasmem/internal/pagemem"
)

func newSpaceLRU() (*pagemem.Space, *LRU) {
	s := pagemem.NewSpace(pagemem.DefaultPageSize)
	return s, New(s)
}

func TestNewHasSingleGeneration(t *testing.T) {
	_, l := newSpaceLRU()
	if l.NumGenerations() != 1 {
		t.Fatalf("NumGenerations = %d, want 1", l.NumGenerations())
	}
	if l.Youngest() != 0 {
		t.Fatalf("Youngest = %d, want 0", l.Youngest())
	}
}

func TestAssignNewStampsYoungest(t *testing.T) {
	s, l := newSpaceLRU()
	s.Alloc(pagemem.SegRuntime, 5)
	r := l.AssignNew()
	if r.Len() != 5 {
		t.Fatalf("AssignNew covered %d pages, want 5", r.Len())
	}
	if l.GenPages(0) != 5 {
		t.Fatalf("gen 0 pages = %d, want 5", l.GenPages(0))
	}
	for id := r.Start; id < r.End; id++ {
		if l.GenOf(id) != 0 {
			t.Fatalf("page %d gen = %d, want 0", id, l.GenOf(id))
		}
	}
	// Second call with no new pages covers nothing.
	if got := l.AssignNew(); got.Len() != 0 {
		t.Fatalf("redundant AssignNew covered %d pages", got.Len())
	}
}

func TestInsertBarrierSealsGeneration(t *testing.T) {
	s, l := newSpaceLRU()
	s.Alloc(pagemem.SegRuntime, 10)
	sealed, stamped := l.InsertBarrier()
	if sealed != 0 {
		t.Fatalf("sealed gen = %d, want 0", sealed)
	}
	if stamped.Len() != 10 {
		t.Fatalf("stamped %d pages, want 10", stamped.Len())
	}
	if l.Youngest() != 1 {
		t.Fatalf("youngest after barrier = %d, want 1", l.Youngest())
	}
	// Pages allocated after the barrier land in the new generation.
	s.Alloc(pagemem.SegInit, 4)
	l.AssignNew()
	if l.GenPages(1) != 4 {
		t.Fatalf("gen 1 pages = %d, want 4", l.GenPages(1))
	}
	if l.GenPages(0) != 10 {
		t.Fatalf("gen 0 pages = %d, want 10", l.GenPages(0))
	}
}

func TestTwoBarriersMakeThreePuckets(t *testing.T) {
	s, l := newSpaceLRU()
	s.Alloc(pagemem.SegRuntime, 3)
	runtimeGen, _ := l.InsertBarrier()
	s.Alloc(pagemem.SegInit, 5)
	initGen, _ := l.InsertBarrier()
	s.Alloc(pagemem.SegExec, 2)
	execRange := l.SkipNew()

	if runtimeGen != 0 || initGen != 1 {
		t.Fatalf("generations = %d,%d, want 0,1", runtimeGen, initGen)
	}
	if l.GenPages(0) != 3 || l.GenPages(1) != 5 {
		t.Fatalf("pucket sizes = %d,%d, want 3,5", l.GenPages(0), l.GenPages(1))
	}
	for id := execRange.Start; id < execRange.End; id++ {
		if l.GenOf(id) != NoGen {
			t.Fatalf("exec page %d is monitored (gen %d)", id, l.GenOf(id))
		}
	}
}

func TestPromoteMovesToYoungest(t *testing.T) {
	s, l := newSpaceLRU()
	r := s.Alloc(pagemem.SegRuntime, 2)
	l.InsertBarrier()
	l.Promote(r.Start)
	if l.GenOf(r.Start) != 1 {
		t.Fatalf("promoted page gen = %d, want 1", l.GenOf(r.Start))
	}
	if l.GenPages(0) != 1 || l.GenPages(1) != 1 {
		t.Fatalf("counts = %d,%d, want 1,1", l.GenPages(0), l.GenPages(1))
	}
	// Promoting again is a no-op.
	l.Promote(r.Start)
	if l.GenPages(1) != 1 {
		t.Fatalf("double promote count = %d, want 1", l.GenPages(1))
	}
}

func TestDemoteRollsBack(t *testing.T) {
	s, l := newSpaceLRU()
	r := s.Alloc(pagemem.SegRuntime, 1)
	l.InsertBarrier()
	l.Promote(r.Start)
	l.Demote(r.Start, 0)
	if l.GenOf(r.Start) != 0 {
		t.Fatalf("demoted page gen = %d, want 0", l.GenOf(r.Start))
	}
	if l.GenPages(0) != 1 || l.GenPages(1) != 0 {
		t.Fatalf("counts after demote = %d,%d", l.GenPages(0), l.GenPages(1))
	}
}

func TestDemoteInvalidGenPanics(t *testing.T) {
	s, l := newSpaceLRU()
	r := s.Alloc(pagemem.SegRuntime, 1)
	l.AssignNew()
	defer func() {
		if recover() == nil {
			t.Error("demote to invalid generation did not panic")
		}
	}()
	l.Demote(r.Start, 99)
}

func TestUnmonitoredPagesStayUnmonitored(t *testing.T) {
	s, l := newSpaceLRU()
	r := s.Alloc(pagemem.SegExec, 3)
	l.SkipNew()
	l.Promote(r.Start)
	if l.GenOf(r.Start) != NoGen {
		t.Fatalf("promote changed unmonitored page to gen %d", l.GenOf(r.Start))
	}
	if l.GenPages(l.Youngest()) != 0 {
		t.Fatal("unmonitored promote leaked into generation count")
	}
}

func TestGenOfBeyondTrackedIsNoGen(t *testing.T) {
	s, l := newSpaceLRU()
	s.Alloc(pagemem.SegRuntime, 3)
	// Not assigned yet.
	if l.GenOf(0) != NoGen {
		t.Fatalf("untracked page gen = %d, want NoGen", l.GenOf(0))
	}
	l.Promote(2) // must not panic or corrupt counts
	if l.GenPages(0) != 0 {
		t.Fatal("promote of untracked page changed counts")
	}
}

func TestWalkGen(t *testing.T) {
	s, l := newSpaceLRU()
	s.Alloc(pagemem.SegRuntime, 4)
	l.InsertBarrier()
	s.Alloc(pagemem.SegInit, 2)
	l.AssignNew()
	var gen0, gen1 int
	l.WalkGen(0, func(pagemem.PageID) { gen0++ })
	l.WalkGen(1, func(pagemem.PageID) { gen1++ })
	if gen0 != 4 || gen1 != 2 {
		t.Fatalf("walk counts = %d,%d, want 4,2", gen0, gen1)
	}
}

func TestGenPagesOutOfRange(t *testing.T) {
	_, l := newSpaceLRU()
	if l.GenPages(-1) != 0 || l.GenPages(5) != 0 {
		t.Fatal("out-of-range GenPages should be 0")
	}
}

// TestCountsConsistentUnderChurn is a property-style test: after many
// promote/demote/barrier operations the per-generation counts match a walk.
func TestCountsConsistentUnderChurn(t *testing.T) {
	s, l := newSpaceLRU()
	s.Alloc(pagemem.SegRuntime, 50)
	l.InsertBarrier()
	s.Alloc(pagemem.SegInit, 50)
	l.InsertBarrier()
	for i := 0; i < 500; i++ {
		id := pagemem.PageID(i % 100)
		switch i % 3 {
		case 0:
			l.Promote(id)
		case 1:
			l.Demote(id, GenID(i%2))
		case 2:
			if i%50 == 2 {
				l.InsertBarrier()
			}
		}
	}
	for g := GenID(0); int(g) < l.NumGenerations(); g++ {
		walked := 0
		l.WalkGen(g, func(pagemem.PageID) { walked++ })
		if walked != l.GenPages(g) {
			t.Fatalf("gen %d: count %d != walk %d", g, l.GenPages(g), walked)
		}
	}
}
