// Package mglru reimplements the slice of Multi-Generational LRU semantics
// that FaaSMem builds on (paper §7): pages are grouped into generations by
// allocation epoch, a *time barrier* is the creation of a new generation,
// accessed pages are promoted to the youngest generation, and rolling back
// hot pages corresponds to demoting them to an older generation.
//
// The kernel implementation stamps pages in bulk when a barrier seals a
// generation; this package matches that cost profile by representing
// generations as contiguous *runs* of page IDs plus a small exception set.
// Pages allocated between two barriers are contiguous by construction, so
// AssignNew/SkipNew/InsertBarrier extend or append a run in O(1) amortized
// time instead of stamping every page. Only pages that were individually promoted
// or demoted (the access/rollback paths) leave their run, and those are
// recorded in per-generation exception bitsets. The retired per-page
// implementation survives as Reference (reference.go) and anchors the
// differential tests.
package mglru

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/faasmem/faasmem/internal/pagemem"
)

// GenID identifies a generation. Older generations have smaller IDs.
type GenID int32

// NoGen marks a page that has not been assigned to any generation (for
// example exec-segment temporaries, which FaaSMem does not monitor).
const NoGen GenID = -1

// genRun is a maximal range of pages sharing a base generation. Its end is
// implicit: the next run's start, or the tracked-page high-water mark for the
// final run.
type genRun struct {
	start pagemem.PageID
	gen   GenID
}

// LRU tracks the generation of every page in one address space.
//
// A page's current generation is its base run's generation unless an
// exception bitset says otherwise: Promote/Demote move a page by flipping
// exception bits rather than restamping runs, and a page whose current
// generation returns to its base drops out of the exception set entirely.
type LRU struct {
	space *pagemem.Space
	runs  []genRun // base generation runs, sorted by start, covering [0, tracked)
	count []int    // pages per generation
	// exc[g] marks pages whose current generation g differs from their base
	// run's generation; nil until generation g first receives an exception.
	exc []*pagemem.Bitset
	// excAny is the union of all exc bitsets: one probe decides whether a
	// page's generation is just its base run's.
	excAny pagemem.Bitset
	// tracked is the number of space pages already covered by runs.
	tracked int
	// lastRun caches the most recently resolved run index; touch spans walk
	// pages sequentially, so the cache hits almost always.
	lastRun int
	// promotions and demotions count cross-generation page moves — the
	// MGLRU churn the telemetry layer surfaces.
	promotions uint64
	demotions  uint64
}

// New creates an LRU over space with a single initial generation (ID 0).
func New(space *pagemem.Space) *LRU {
	return &LRU{space: space, count: make([]int, 1), exc: make([]*pagemem.Bitset, 1)}
}

// Space returns the underlying address space.
func (l *LRU) Space() *pagemem.Space { return l.space }

// Youngest returns the ID of the youngest (most recent) generation.
func (l *LRU) Youngest() GenID { return GenID(len(l.count) - 1) }

// NumGenerations returns how many generations exist.
func (l *LRU) NumGenerations() int { return len(l.count) }

// NumRuns returns how many base-generation runs cover the tracked pages —
// the O(runs) working set a barrier or scan actually touches.
func (l *LRU) NumRuns() int { return len(l.runs) }

// GenPages returns the number of pages currently stamped with generation g.
func (l *LRU) GenPages(g GenID) int {
	if g < 0 || int(g) >= len(l.count) {
		return 0
	}
	return l.count[g]
}

// AssignNew stamps every not-yet-tracked page of the space (pages allocated
// since the last call) with the youngest generation and returns the covered
// range. Pages allocated between barriers therefore share a generation,
// exactly as faulted-in pages join the kernel's youngest generation. The
// stamp is one run append (or extension) — O(1) regardless of page count.
func (l *LRU) AssignNew() pagemem.Range {
	start := pagemem.PageID(l.tracked)
	end := pagemem.PageID(l.space.NumPages())
	if end > start {
		young := l.Youngest()
		l.appendRun(start, young)
		l.count[young] += int(end - start)
		l.tracked = int(end)
	}
	return pagemem.Range{Start: start, End: end}
}

// SkipNew marks every not-yet-tracked page as unmonitored (NoGen) and
// returns the covered range. FaaSMem uses this for the execution segment,
// whose page accesses are deliberately not tracked (paper §4).
func (l *LRU) SkipNew() pagemem.Range {
	start := pagemem.PageID(l.tracked)
	end := pagemem.PageID(l.space.NumPages())
	if end > start {
		l.appendRun(start, NoGen)
		l.tracked = int(end)
	}
	return pagemem.Range{Start: start, End: end}
}

// appendRun extends coverage to a new run starting at start. If the previous
// run has the same generation the new pages merge into it for free, since
// run ends are implicit.
func (l *LRU) appendRun(start pagemem.PageID, g GenID) {
	if n := len(l.runs); n > 0 && l.runs[n-1].gen == g {
		return
	}
	l.runs = append(l.runs, genRun{start: start, gen: g})
}

// InsertBarrier closes the current youngest generation and opens a new one,
// first stamping any untracked pages into the closing generation. It returns
// the ID of the generation that was sealed (the new Pucket) and the range of
// pages stamped by this call. Unlike the per-page reference, the barrier is
// O(1): it never walks the pages it seals.
func (l *LRU) InsertBarrier() (sealed GenID, stamped pagemem.Range) {
	stamped = l.AssignNew()
	sealed = l.Youngest()
	l.count = append(l.count, 0)
	l.exc = append(l.exc, nil)
	return sealed, stamped
}

// GenOf returns the generation of page id, or NoGen if the page is
// unmonitored or beyond the tracked prefix.
func (l *LRU) GenOf(id pagemem.PageID) GenID {
	if int(id) >= l.tracked {
		return NoGen
	}
	return l.genOf(id)
}

// genOf resolves a tracked page's current generation: exception bits first
// (youngest generation first, since promotions dominate), then the base run.
func (l *LRU) genOf(id pagemem.PageID) GenID {
	if l.excAny.Get(int(id)) {
		for g := len(l.exc) - 1; g >= 0; g-- {
			if b := l.exc[g]; b != nil && b.Get(int(id)) {
				return GenID(g)
			}
		}
	}
	return l.baseGen(id)
}

// baseGen returns the generation of the run containing id (id must be
// tracked).
func (l *LRU) baseGen(id pagemem.PageID) GenID {
	return l.runs[l.runIndex(id)].gen
}

// runIndex resolves the index of the run containing id (id must be tracked),
// serving from the sequential-walk cache when possible.
func (l *LRU) runIndex(id pagemem.PageID) int {
	if i := l.lastRun; i < len(l.runs) && l.runs[i].start <= id &&
		(i+1 == len(l.runs) || id < l.runs[i+1].start) {
		return i
	}
	i := sort.Search(len(l.runs), func(j int) bool { return l.runs[j].start > id }) - 1
	l.lastRun = i
	return i
}

// runEnd returns the exclusive end of run ri.
func (l *LRU) runEnd(ri int) pagemem.PageID {
	if ri+1 < len(l.runs) {
		return l.runs[ri+1].start
	}
	return pagemem.PageID(l.tracked)
}

// Promote moves page id to the youngest generation (the access path). It is
// a no-op for unmonitored pages.
func (l *LRU) Promote(id pagemem.PageID) {
	l.moveTo(id, l.Youngest())
}

// PromoteMasked promotes to the youngest generation every page in the
// 64-page word starting at base whose mask bit is set. base must be
// 64-aligned. It is semantically identical to calling Promote for each set
// bit in ascending order, but exception-free pages of a single run move with
// word-level bit operations — the fast path behind bulk span touches.
func (l *LRU) PromoteMasked(base pagemem.PageID, mask uint64) {
	if mask == 0 || int(base) >= l.tracked {
		return
	}
	if rem := l.tracked - int(base); rem < 64 {
		mask &= ^uint64(0) >> (64 - uint(rem))
		if mask == 0 {
			return
		}
	}
	young := l.Youngest()
	w := int(base) / 64
	for mask != 0 {
		id := base + pagemem.PageID(bits.TrailingZeros64(mask))
		ri := l.runIndex(id)
		span := mask
		if end := l.runEnd(ri); int(end) < int(base)+64 {
			span &= 1<<uint(int(end)-int(base)) - 1
		}
		mask &^= span
		g := l.runs[ri].gen
		if g == NoGen {
			continue
		}
		excw := l.excAny.WordAt(w) & span
		if plain := span &^ excw; plain != 0 && g != young {
			k := bits.OnesCount64(plain)
			l.count[g] -= k
			l.count[young] += k
			if l.exc[young] == nil {
				l.exc[young] = &pagemem.Bitset{}
			}
			l.exc[young].OrWordAt(w, plain)
			l.excAny.OrWordAt(w, plain)
			l.promotions += uint64(k)
		}
		for rem := excw; rem != 0; {
			t := bits.TrailingZeros64(rem)
			rem &= rem - 1
			l.moveTo(base+pagemem.PageID(t), young)
		}
	}
}

// Demote returns page id to generation g — the rollback path of FaaSMem's
// periodic re-evaluation (paper §5.3). Demoting to a nonexistent generation
// panics, as that indicates Pucket bookkeeping has been corrupted.
func (l *LRU) Demote(id pagemem.PageID, g GenID) {
	if g < 0 || int(g) >= len(l.count) {
		panic(fmt.Sprintf("mglru: demote to invalid generation %d", g))
	}
	l.moveTo(id, g)
}

func (l *LRU) moveTo(id pagemem.PageID, g GenID) {
	if int(id) >= l.tracked {
		return
	}
	old := l.genOf(id)
	if old == g {
		return
	}
	if old == NoGen {
		// Unmonitored pages stay unmonitored: promoting an exec page would
		// silently add it to a Pucket it was never part of.
		return
	}
	l.count[old]--
	l.count[g]++
	base := l.baseGen(id)
	if old != base {
		l.exc[old].Clear(int(id))
	}
	if g != base {
		if l.exc[g] == nil {
			l.exc[g] = &pagemem.Bitset{}
		}
		l.exc[g].Set(int(id))
		l.excAny.Set(int(id))
	} else {
		// Back to its base run: no exception needed anymore.
		l.excAny.Clear(int(id))
	}
	if g > old {
		l.promotions++
	} else {
		l.demotions++
	}
}

// Promotions counts pages ever moved to a younger generation.
func (l *LRU) Promotions() uint64 { return l.promotions }

// Demotions counts pages ever moved back to an older generation (rollbacks).
func (l *LRU) Demotions() uint64 { return l.demotions }

// WalkGen calls fn for every tracked page currently in generation g, in page
// order. Runs of other generations contribute only their exception bits, so
// the walk skips foreign runs word-at-a-time.
func (l *LRU) WalkGen(g GenID, fn func(pagemem.PageID)) {
	for ri := range l.runs {
		start, end := l.runs[ri].start, l.runEnd(ri)
		if l.runs[ri].gen == g {
			// Every page of this run except the ones promoted/demoted away.
			for id := start; id < end; id++ {
				if !l.excAny.Get(int(id)) {
					fn(id)
				}
			}
		} else if g >= 0 && int(g) < len(l.exc) && l.exc[g] != nil {
			l.exc[g].ForEachSet(int(start), int(end), func(i int) { fn(pagemem.PageID(i)) })
		}
	}
}
