// Package mglru reimplements the slice of Multi-Generational LRU semantics
// that FaaSMem builds on (paper §7): pages are grouped into generations by
// allocation epoch, a *time barrier* is the creation of a new generation,
// accessed pages are promoted to the youngest generation, and rolling back
// hot pages corresponds to demoting them to an older generation.
//
// The kernel implementation walks LRU lists to stamp pages; this package
// walks page-index ranges of a pagemem.Space, which has the same O(pages)
// cost profile — the property measured by the paper's Figure 15 overhead
// experiment.
package mglru

import (
	"fmt"

	"github.com/faasmem/faasmem/internal/pagemem"
)

// GenID identifies a generation. Older generations have smaller IDs.
type GenID int32

// NoGen marks a page that has not been assigned to any generation (for
// example exec-segment temporaries, which FaaSMem does not monitor).
const NoGen GenID = -1

// LRU tracks the generation of every page in one address space.
type LRU struct {
	space *pagemem.Space
	gen   []GenID // per-page generation, aligned with space page IDs
	count []int   // pages per generation
	// tracked is the number of space pages already covered by the gen slice.
	tracked int
	// promotions and demotions count cross-generation page moves — the
	// MGLRU churn the telemetry layer surfaces.
	promotions uint64
	demotions  uint64
}

// New creates an LRU over space with a single initial generation (ID 0).
func New(space *pagemem.Space) *LRU {
	return &LRU{space: space, count: make([]int, 1)}
}

// Space returns the underlying address space.
func (l *LRU) Space() *pagemem.Space { return l.space }

// Youngest returns the ID of the youngest (most recent) generation.
func (l *LRU) Youngest() GenID { return GenID(len(l.count) - 1) }

// NumGenerations returns how many generations exist.
func (l *LRU) NumGenerations() int { return len(l.count) }

// GenPages returns the number of pages currently stamped with generation g.
func (l *LRU) GenPages(g GenID) int {
	if g < 0 || int(g) >= len(l.count) {
		return 0
	}
	return l.count[g]
}

// AssignNew stamps every not-yet-tracked page of the space (pages allocated
// since the last call) with the youngest generation and returns the covered
// range. Pages allocated between barriers therefore share a generation,
// exactly as faulted-in pages join the kernel's youngest generation.
func (l *LRU) AssignNew() pagemem.Range {
	start := pagemem.PageID(l.tracked)
	end := pagemem.PageID(l.space.NumPages())
	young := l.Youngest()
	for id := start; id < end; id++ {
		l.gen = append(l.gen, young)
		l.count[young]++
	}
	l.tracked = int(end)
	return pagemem.Range{Start: start, End: end}
}

// SkipNew marks every not-yet-tracked page as unmonitored (NoGen) and
// returns the covered range. FaaSMem uses this for the execution segment,
// whose page accesses are deliberately not tracked (paper §4).
func (l *LRU) SkipNew() pagemem.Range {
	start := pagemem.PageID(l.tracked)
	end := pagemem.PageID(l.space.NumPages())
	for id := start; id < end; id++ {
		l.gen = append(l.gen, NoGen)
	}
	l.tracked = int(end)
	return pagemem.Range{Start: start, End: end}
}

// InsertBarrier closes the current youngest generation and opens a new one,
// first stamping any untracked pages into the closing generation. It returns
// the ID of the generation that was sealed (the new Pucket) and the range of
// pages stamped by this call. The per-page stamping walk is the cost the
// paper reports in Figure 15.
func (l *LRU) InsertBarrier() (sealed GenID, stamped pagemem.Range) {
	stamped = l.AssignNew()
	sealed = l.Youngest()
	l.count = append(l.count, 0)
	return sealed, stamped
}

// GenOf returns the generation of page id, or NoGen if the page is
// unmonitored or beyond the tracked prefix.
func (l *LRU) GenOf(id pagemem.PageID) GenID {
	if int(id) >= len(l.gen) {
		return NoGen
	}
	return l.gen[id]
}

// Promote moves page id to the youngest generation (the access path). It is
// a no-op for unmonitored pages.
func (l *LRU) Promote(id pagemem.PageID) {
	l.moveTo(id, l.Youngest())
}

// Demote returns page id to generation g — the rollback path of FaaSMem's
// periodic re-evaluation (paper §5.3). Demoting to a nonexistent generation
// panics, as that indicates Pucket bookkeeping has been corrupted.
func (l *LRU) Demote(id pagemem.PageID, g GenID) {
	if g < 0 || int(g) >= len(l.count) {
		panic(fmt.Sprintf("mglru: demote to invalid generation %d", g))
	}
	l.moveTo(id, g)
}

func (l *LRU) moveTo(id pagemem.PageID, g GenID) {
	if int(id) >= len(l.gen) {
		return
	}
	old := l.gen[id]
	if old == g {
		return
	}
	if old != NoGen {
		l.count[old]--
	}
	if old == NoGen {
		// Unmonitored pages stay unmonitored: promoting an exec page would
		// silently add it to a Pucket it was never part of.
		return
	}
	l.gen[id] = g
	l.count[g]++
	if g > old {
		l.promotions++
	} else {
		l.demotions++
	}
}

// Promotions counts pages ever moved to a younger generation.
func (l *LRU) Promotions() uint64 { return l.promotions }

// Demotions counts pages ever moved back to an older generation (rollbacks).
func (l *LRU) Demotions() uint64 { return l.demotions }

// WalkGen calls fn for every tracked page currently in generation g.
func (l *LRU) WalkGen(g GenID, fn func(pagemem.PageID)) {
	for id, pg := range l.gen {
		if pg == g {
			fn(pagemem.PageID(id))
		}
	}
}
