package mglru

import (
	"math/bits"
	"math/rand"
	"testing"

	"github.com/faasmem/faasmem/internal/pagemem"
)

// tracker is the operation surface shared by LRU and Reference, so the
// differential drivers below can replay one script through both.
type tracker interface {
	AssignNew() pagemem.Range
	SkipNew() pagemem.Range
	InsertBarrier() (GenID, pagemem.Range)
	GenOf(pagemem.PageID) GenID
	Promote(pagemem.PageID)
	Demote(pagemem.PageID, GenID)
	GenPages(GenID) int
	NumGenerations() int
	Youngest() GenID
	Promotions() uint64
	Demotions() uint64
	WalkGen(GenID, func(pagemem.PageID))
}

var (
	_ tracker = (*LRU)(nil)
	_ tracker = (*Reference)(nil)
)

// diffPair drives the same space shape through both implementations. The two
// trackers get separate (but identically grown) spaces so neither can cheat
// by observing the other's side effects.
type diffPair struct {
	fast    *LRU
	slow    *Reference
	fastSpc *pagemem.Space
	slowSpc *pagemem.Space
}

func newDiffPair() *diffPair {
	fs := pagemem.NewSpace(pagemem.DefaultPageSize)
	ss := pagemem.NewSpace(pagemem.DefaultPageSize)
	return &diffPair{fast: New(fs), slow: NewReference(ss), fastSpc: fs, slowSpc: ss}
}

func (p *diffPair) alloc(seg pagemem.Segment, n int) {
	p.fastSpc.Alloc(seg, n)
	p.slowSpc.Alloc(seg, n)
}

func (p *diffPair) check(t *testing.T, step int) {
	t.Helper()
	if got, want := p.fast.NumGenerations(), p.slow.NumGenerations(); got != want {
		t.Fatalf("step %d: generations = %d, want %d", step, got, want)
	}
	if got, want := p.fast.Promotions(), p.slow.Promotions(); got != want {
		t.Fatalf("step %d: promotions = %d, want %d", step, got, want)
	}
	if got, want := p.fast.Demotions(), p.slow.Demotions(); got != want {
		t.Fatalf("step %d: demotions = %d, want %d", step, got, want)
	}
	for g := GenID(-1); int(g) < p.slow.NumGenerations(); g++ {
		if got, want := p.fast.GenPages(g), p.slow.GenPages(g); got != want {
			t.Fatalf("step %d: gen %d pages = %d, want %d", step, g, got, want)
		}
	}
	n := p.slowSpc.NumPages() + 3 // probe a little past the end too
	for id := pagemem.PageID(0); int(id) < n; id++ {
		if got, want := p.fast.GenOf(id), p.slow.GenOf(id); got != want {
			t.Fatalf("step %d: GenOf(%d) = %d, want %d", step, id, got, want)
		}
	}
	for g := GenID(-1); int(g) < p.slow.NumGenerations(); g++ {
		var fastWalk, slowWalk []pagemem.PageID
		p.fast.WalkGen(g, func(id pagemem.PageID) { fastWalk = append(fastWalk, id) })
		p.slow.WalkGen(g, func(id pagemem.PageID) { slowWalk = append(slowWalk, id) })
		if len(fastWalk) != len(slowWalk) {
			t.Fatalf("step %d: WalkGen(%d) lengths %d vs %d", step, g, len(fastWalk), len(slowWalk))
		}
		for i := range fastWalk {
			if fastWalk[i] != slowWalk[i] {
				t.Fatalf("step %d: WalkGen(%d)[%d] = %d, want %d", step, g, i, fastWalk[i], slowWalk[i])
			}
		}
	}
}

// step applies one scripted operation to both trackers. op and the operands
// come from an arbitrary byte stream so the fuzzer can drive it too.
func (p *diffPair) step(op, a, b byte) {
	switch op % 7 {
	case 0: // allocate a fresh chunk and stamp it
		p.alloc(pagemem.Segment(int(a)%int(pagemem.NumSegments)), int(b)%97)
		p.fast.AssignNew()
		p.slow.AssignNew()
	case 1: // allocate a fresh chunk untracked
		p.alloc(pagemem.SegExec, int(b)%97)
		p.fast.SkipNew()
		p.slow.SkipNew()
	case 2: // time barrier (also stamps any untracked tail)
		p.fast.InsertBarrier()
		p.slow.InsertBarrier()
	case 3, 4: // access path: promote an arbitrary page (possibly untracked)
		id := pagemem.PageID((int(a)<<8 | int(b)) % (p.slowSpc.NumPages() + 5))
		p.fast.Promote(id)
		p.slow.Promote(id)
	case 5: // rollback path: demote to an arbitrary existing generation
		id := pagemem.PageID((int(a)<<8 | int(b)) % (p.slowSpc.NumPages() + 5))
		g := GenID(int(a) % p.slow.NumGenerations())
		p.fast.Demote(id, g)
		p.slow.Demote(id, g)
	case 6: // bulk access path: masked word promote vs per-bit ascending
		words := p.slowSpc.NumPages()/64 + 1
		base := pagemem.PageID(int(a) % words * 64)
		mask := uint64(a) | uint64(b)<<8 | uint64(a)<<24 | uint64(b)<<48
		p.fast.PromoteMasked(base, mask)
		for rem := mask; rem != 0; rem &= rem - 1 {
			p.slow.Promote(base + pagemem.PageID(bits.TrailingZeros64(rem)))
		}
	}
}

// TestDifferentialRandomOps replays long random operation scripts through the
// range-run LRU and the per-page reference, comparing the complete observable
// state after every step.
func TestDifferentialRandomOps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := newDiffPair()
		for step := 0; step < 600; step++ {
			p.step(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
			if step%13 == 0 || step == 599 {
				p.check(t, step)
			}
		}
		p.check(t, 600)
	}
}

// TestDifferentialPromoteHeavy hammers the exception-set paths: many
// promotions into the youngest generation, interleaved with demotions back,
// across several barriers — the exact traffic containers generate.
func TestDifferentialPromoteHeavy(t *testing.T) {
	p := newDiffPair()
	p.alloc(pagemem.SegRuntime, 512)
	p.fast.InsertBarrier()
	p.slow.InsertBarrier()
	p.alloc(pagemem.SegInit, 256)
	p.fast.InsertBarrier()
	p.slow.InsertBarrier()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		id := pagemem.PageID(rng.Intn(768))
		if rng.Intn(3) == 0 {
			g := GenID(rng.Intn(p.slow.NumGenerations()))
			p.fast.Demote(id, g)
			p.slow.Demote(id, g)
		} else {
			p.fast.Promote(id)
			p.slow.Promote(id)
		}
		if i%500 == 0 {
			p.fast.InsertBarrier()
			p.slow.InsertBarrier()
		}
	}
	p.check(t, 4000)
}

// FuzzDifferentialOps lets the fuzzer drive arbitrary operation scripts
// through both implementations; any observable divergence fails.
func FuzzDifferentialOps(f *testing.F) {
	f.Add([]byte{0, 1, 40, 2, 0, 0, 3, 0, 5, 5, 0, 3, 2, 0, 0, 6, 0, 9})
	f.Add([]byte{2, 0, 0, 2, 0, 0, 0, 2, 200, 1, 0, 64, 4, 1, 1, 5, 2, 2})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 3*400 {
			script = script[:3*400]
		}
		p := newDiffPair()
		for i := 0; i+2 < len(script); i += 3 {
			p.step(script[i], script[i+1], script[i+2])
		}
		p.check(t, len(script))
	})
}
