package pagemem

import "math/bits"

// Bitset is a growable bit vector used for page access bits: 8× denser than
// []bool and word-at-a-time scans for the Accessed-bit walks every policy
// performs. The zero value is an empty set.
type Bitset struct {
	words []uint64
}

// grow ensures capacity for bit i.
func (b *Bitset) grow(i int) {
	if need := i/64 + 1; len(b.words) < need {
		b.words = append(b.words, make([]uint64, need-len(b.words))...)
	}
}

// Grow ensures the bitset addresses bits [0, n) without further allocation,
// so hot-path Set calls stay on the in-capacity fast path.
func (b *Bitset) Grow(n int) {
	if n > 0 {
		b.grow(n - 1)
	}
}

// Set sets bit i.
func (b *Bitset) Set(i int) {
	w := i / 64
	if w >= len(b.words) {
		b.grow(i)
	}
	b.words[w] |= 1 << (uint(i) % 64)
}

// Clear clears bit i (no-op beyond current capacity).
func (b *Bitset) Clear(i int) {
	if w := i / 64; w < len(b.words) {
		b.words[w] &^= 1 << (uint(i) % 64)
	}
}

// Get reports bit i (false beyond current capacity).
func (b *Bitset) Get(i int) bool {
	w := i / 64
	return w < len(b.words) && b.words[w]&(1<<(uint(i)%64)) != 0
}

// SetRange sets bits [start, end).
func (b *Bitset) SetRange(start, end int) {
	if end <= start {
		return
	}
	b.grow(end - 1)
	for i := start; i < end; {
		w := i / 64
		lo := uint(i) % 64
		hi := uint(64)
		if end-(w*64) < 64 {
			hi = uint(end - w*64)
		}
		b.words[w] |= (^uint64(0) << lo) & (^uint64(0) >> (64 - hi))
		i = (w + 1) * 64
	}
}

// ClearRange clears bits [start, end).
func (b *Bitset) ClearRange(start, end int) {
	if end <= start || len(b.words) == 0 {
		return
	}
	if max := len(b.words) * 64; end > max {
		end = max
	}
	for i := start; i < end; {
		w := i / 64
		lo := uint(i) % 64
		hi := uint(64)
		if end-(w*64) < 64 {
			hi = uint(end - w*64)
		}
		b.words[w] &^= (^uint64(0) << lo) & (^uint64(0) >> (64 - hi))
		i = (w + 1) * 64
	}
}

// CountRange returns the number of set bits in [start, end).
func (b *Bitset) CountRange(start, end int) int {
	if end <= start || len(b.words) == 0 {
		return 0
	}
	if max := len(b.words) * 64; end > max {
		end = max
	}
	if start >= end {
		return 0
	}
	n := 0
	for i := start; i < end; {
		w := i / 64
		lo := uint(i) % 64
		hi := uint(64)
		if end-(w*64) < 64 {
			hi = uint(end - w*64)
		}
		mask := (^uint64(0) << lo) & (^uint64(0) >> (64 - hi))
		n += bits.OnesCount64(b.words[w] & mask)
		i = (w + 1) * 64
	}
	return n
}

// word returns word w, treating words beyond the current capacity as zero.
func (b *Bitset) word(w int) uint64 {
	if w < len(b.words) {
		return b.words[w]
	}
	return 0
}

// WordAt returns the word covering bits [w*64, w*64+64), zero beyond the
// current capacity — the word-at-a-time read the bulk page paths build on.
func (b *Bitset) WordAt(w int) uint64 { return b.word(w) }

// OrWordAt ORs mask into the word covering bits [w*64, w*64+64), growing as
// needed.
func (b *Bitset) OrWordAt(w int, mask uint64) {
	if mask == 0 {
		return
	}
	if w >= len(b.words) {
		b.grow(w*64 + 63)
	}
	b.words[w] |= mask
}

// ForEachSet calls fn for every set bit in [start, end), skipping zero words
// whole. fn receives the bit index.
func (b *Bitset) ForEachSet(start, end int, fn func(int)) {
	if end <= start || len(b.words) == 0 {
		return
	}
	if max := len(b.words) * 64; end > max {
		end = max
	}
	for i := start; i < end; {
		w := i / 64
		lo := uint(i) % 64
		hi := uint(64)
		if end-(w*64) < 64 {
			hi = uint(end - w*64)
		}
		word := b.words[w] & (^uint64(0) << lo) & (^uint64(0) >> (64 - hi))
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			fn(w*64 + tz)
			word &^= 1 << uint(tz)
		}
		i = (w + 1) * 64
	}
}
