package pagemem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetSetGetClear(t *testing.T) {
	var b Bitset
	if b.Get(0) || b.Get(1000) {
		t.Fatal("empty bitset has set bits")
	}
	b.Set(5)
	b.Set(64)
	b.Set(129)
	for _, i := range []int{5, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(6) || b.Get(63) || b.Get(65) {
		t.Fatal("neighbouring bits leaked")
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("clear failed")
	}
	b.Clear(1 << 20) // beyond capacity is a no-op
}

func TestBitsetSetRange(t *testing.T) {
	var b Bitset
	b.SetRange(10, 140)
	for i := 0; i < 200; i++ {
		want := i >= 10 && i < 140
		if b.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, b.Get(i), want)
		}
	}
	if got := b.CountRange(0, 200); got != 130 {
		t.Fatalf("CountRange = %d, want 130", got)
	}
	b.SetRange(5, 5) // empty range is a no-op
}

func TestBitsetClearRange(t *testing.T) {
	var b Bitset
	b.SetRange(0, 256)
	b.ClearRange(60, 70)
	if got := b.CountRange(0, 256); got != 246 {
		t.Fatalf("count after clear = %d, want 246", got)
	}
	if b.Get(60) || b.Get(69) {
		t.Fatal("range not cleared")
	}
	if !b.Get(59) || !b.Get(70) {
		t.Fatal("clear overshot")
	}
	b.ClearRange(1000, 2000) // beyond capacity clamps
}

func TestBitsetForEachSet(t *testing.T) {
	var b Bitset
	for _, i := range []int{3, 64, 65, 200} {
		b.Set(i)
	}
	var got []int
	b.ForEachSet(0, 256, func(i int) { got = append(got, i) })
	want := []int{3, 64, 65, 200}
	if len(got) != len(want) {
		t.Fatalf("ForEachSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachSet = %v, want %v", got, want)
		}
	}
	// Sub-range respects boundaries.
	got = got[:0]
	b.ForEachSet(64, 66, func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 64 || got[1] != 65 {
		t.Fatalf("sub-range = %v", got)
	}
}

// Property: Bitset agrees with a reference map under random operations.
func TestBitsetMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b Bitset
		ref := map[int]bool{}
		const n = 512
		for op := 0; op < 500; op++ {
			switch rng.Intn(5) {
			case 0:
				i := rng.Intn(n)
				b.Set(i)
				ref[i] = true
			case 1:
				i := rng.Intn(n)
				b.Clear(i)
				delete(ref, i)
			case 2:
				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo)
				b.SetRange(lo, hi)
				for i := lo; i < hi; i++ {
					ref[i] = true
				}
			case 3:
				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo)
				b.ClearRange(lo, hi)
				for i := lo; i < hi; i++ {
					delete(ref, i)
				}
			case 4:
				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo)
				if b.CountRange(lo, hi) != countRef(ref, lo, hi) {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		// ForEachSet visits exactly the reference set, in order.
		prev := -1
		ok := true
		b.ForEachSet(0, n, func(i int) {
			if !ref[i] || i <= prev {
				ok = false
			}
			prev = i
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func countRef(ref map[int]bool, lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		if ref[i] {
			n++
		}
	}
	return n
}

func TestSpaceCountAccessed(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegInit, 100)
	if got := s.CountAccessed(r); got != 100 {
		t.Fatalf("fresh pages accessed = %d, want 100", got)
	}
	s.ScanAndClear(r, nil)
	if got := s.CountAccessed(r); got != 0 {
		t.Fatalf("after scan = %d, want 0", got)
	}
	s.Touch(r.Start + 7)
	if got := s.CountAccessed(r); got != 1 {
		t.Fatalf("after touch = %d, want 1", got)
	}
}

func BenchmarkBitsetScan(b *testing.B) {
	var bs Bitset
	bs.SetRange(0, 1<<18) // 256k pages = 1 GiB container
	bs.ClearRange(1<<17, 1<<18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		bs.ForEachSet(0, 1<<18, func(int) { n++ })
		if n != 1<<17 {
			b.Fatal("wrong count")
		}
	}
}
