package pagemem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceRejectsBadPageSize(t *testing.T) {
	for _, sz := range []int{0, -1, -4096} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", sz)
				}
			}()
			NewSpace(sz)
		}()
	}
}

func TestAllocBasics(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegRuntime, 10)
	if r.Len() != 10 {
		t.Fatalf("range length = %d, want 10", r.Len())
	}
	if s.NumPages() != 10 {
		t.Fatalf("NumPages = %d, want 10", s.NumPages())
	}
	if got := s.Count(SegRuntime, Inactive); got != 10 {
		t.Fatalf("runtime inactive = %d, want 10", got)
	}
	for id := r.Start; id < r.End; id++ {
		if s.State(id) != Inactive {
			t.Fatalf("page %d state %v, want inactive", id, s.State(id))
		}
		if !s.Accessed(id) {
			t.Fatalf("page %d should be born accessed", id)
		}
		if s.SegmentOf(id) != SegRuntime {
			t.Fatalf("page %d segment %v, want runtime", id, s.SegmentOf(id))
		}
	}
}

func TestAllocSegmentsAreContiguous(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	rt := s.Alloc(SegRuntime, 5)
	init := s.Alloc(SegInit, 7)
	exec := s.Alloc(SegExec, 3)
	if rt.End != init.Start || init.End != exec.Start {
		t.Fatalf("segments not contiguous: %+v %+v %+v", rt, init, exec)
	}
}

func TestAllocBytesRoundsUp(t *testing.T) {
	s := NewSpace(4096)
	r := s.AllocBytes(SegInit, 4097)
	if r.Len() != 2 {
		t.Fatalf("AllocBytes(4097) = %d pages, want 2", r.Len())
	}
	if s.AllocBytes(SegInit, 0).Len() != 0 {
		t.Fatal("AllocBytes(0) should allocate nothing")
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(-1) did not panic")
		}
	}()
	s.Alloc(SegExec, -1)
}

func TestSetStateMaintainsCounters(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegInit, 4)
	s.SetState(r.Start, Hot)
	s.SetState(r.Start+1, Remote)
	if got := s.Count(SegInit, Inactive); got != 2 {
		t.Errorf("inactive = %d, want 2", got)
	}
	if got := s.Count(SegInit, Hot); got != 1 {
		t.Errorf("hot = %d, want 1", got)
	}
	if got := s.Count(SegInit, Remote); got != 1 {
		t.Errorf("remote = %d, want 1", got)
	}
	// Same-state transition is a no-op.
	s.SetState(r.Start, Hot)
	if got := s.Count(SegInit, Hot); got != 1 {
		t.Errorf("hot after no-op = %d, want 1", got)
	}
}

func TestSetStateOnFreePagePanics(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegExec, 1)
	s.FreeRange(r)
	defer func() {
		if recover() == nil {
			t.Error("SetState on free page did not panic")
		}
	}()
	s.SetState(r.Start, Hot)
}

func TestFreeRange(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegExec, 8)
	s.SetState(r.Start, Hot)
	s.FreeRange(r)
	if got := s.CountState(Inactive) + s.CountState(Hot) + s.CountState(Remote); got != 0 {
		t.Fatalf("non-free pages after FreeRange = %d, want 0", got)
	}
	if got := s.Count(SegExec, Free); got != 8 {
		t.Fatalf("free count = %d, want 8", got)
	}
	// Freeing twice is harmless.
	s.FreeRange(r)
	if got := s.Count(SegExec, Free); got != 8 {
		t.Fatalf("free count after double free = %d, want 8", got)
	}
	for id := r.Start; id < r.End; id++ {
		if s.Accessed(id) {
			t.Fatalf("freed page %d still has access bit", id)
		}
	}
}

func TestTouchSetsAccessBit(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegRuntime, 1)
	s.ClearAccessed(r.Start)
	if s.Accessed(r.Start) {
		t.Fatal("access bit should be clear")
	}
	if st := s.Touch(r.Start); st != Inactive {
		t.Fatalf("Touch returned %v, want inactive", st)
	}
	if !s.Accessed(r.Start) {
		t.Fatal("Touch did not set access bit")
	}
}

func TestScanAndClear(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegInit, 10)
	for id := r.Start; id < r.End; id++ {
		s.ClearAccessed(id)
	}
	s.Touch(r.Start + 2)
	s.Touch(r.Start + 5)
	var seen []PageID
	s.ScanAndClear(r, func(id PageID) { seen = append(seen, id) })
	if len(seen) != 2 || seen[0] != r.Start+2 || seen[1] != r.Start+5 {
		t.Fatalf("scan saw %v, want [2 5] offsets", seen)
	}
	// Bits must now be clear.
	count := 0
	s.ScanAndClear(r, func(PageID) { count++ })
	if count != 0 {
		t.Fatalf("second scan saw %d pages, want 0", count)
	}
}

func TestScanAndClearNilFn(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegInit, 3)
	s.ScanAndClear(r, nil) // must not panic
	if s.Accessed(r.Start) {
		t.Fatal("nil-fn scan should still clear bits")
	}
}

func TestCountInRange(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegRuntime, 10)
	s.SetState(r.Start+1, Remote)
	s.SetState(r.Start+2, Remote)
	s.SetState(r.Start+3, Hot)
	if got := s.CountInRange(r, Remote); got != 2 {
		t.Errorf("remote in range = %d, want 2", got)
	}
	if got := s.CountInRange(r, Inactive); got != 7 {
		t.Errorf("inactive in range = %d, want 7", got)
	}
	sub := Range{Start: r.Start, End: r.Start + 2}
	if got := s.CountInRange(sub, Remote); got != 1 {
		t.Errorf("remote in subrange = %d, want 1", got)
	}
}

func TestByteAccounting(t *testing.T) {
	s := NewSpace(4096)
	r := s.Alloc(SegInit, 100)
	s.SetState(r.Start, Remote)
	s.SetState(r.Start+1, Remote)
	s.SetState(r.Start+2, Hot)
	wantLocal := int64(98 * 4096)
	if got := s.LocalBytes(); got != wantLocal {
		t.Errorf("LocalBytes = %d, want %d", got, wantLocal)
	}
	if got := s.RemoteBytes(); got != int64(2*4096) {
		t.Errorf("RemoteBytes = %d, want %d", got, 2*4096)
	}
	if got := s.TotalBytes(); got != int64(100*4096) {
		t.Errorf("TotalBytes = %d, want %d", got, 100*4096)
	}
}

func TestBytesPagesConversion(t *testing.T) {
	s := NewSpace(4096)
	if got := s.BytesOf(3); got != 12288 {
		t.Errorf("BytesOf(3) = %d", got)
	}
	if got := s.PagesOf(1); got != 1 {
		t.Errorf("PagesOf(1) = %d, want 1", got)
	}
	if got := s.PagesOf(8192); got != 2 {
		t.Errorf("PagesOf(8192) = %d, want 2", got)
	}
	if got := s.PagesOf(0); got != 0 {
		t.Errorf("PagesOf(0) = %d, want 0", got)
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Start: 10, End: 20}
	if r.Len() != 10 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(10) || !r.Contains(19) {
		t.Error("Contains should include boundaries [start, end)")
	}
	if r.Contains(9) || r.Contains(20) {
		t.Error("Contains should exclude outside pages")
	}
}

func TestStateStrings(t *testing.T) {
	cases := map[State]string{Free: "free", Inactive: "inactive", Hot: "hot", Remote: "remote"}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	segs := map[Segment]string{SegRuntime: "runtime", SegInit: "init", SegExec: "exec"}
	for sg, want := range segs {
		if sg.String() != want {
			t.Errorf("segment %d String() = %q, want %q", sg, sg.String(), want)
		}
	}
}

// Property: counters always equal a brute-force recount after arbitrary
// random operations.
func TestCountersMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace(4096)
		var ranges []Range
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0:
				ranges = append(ranges, s.Alloc(Segment(rng.Intn(NumSegments)), rng.Intn(20)))
			case 1:
				if s.NumPages() > 0 {
					id := PageID(rng.Intn(s.NumPages()))
					if s.State(id) != Free {
						s.SetState(id, State(1+rng.Intn(3)))
					}
				}
			case 2:
				if s.NumPages() > 0 {
					id := PageID(rng.Intn(s.NumPages()))
					if s.State(id) != Free {
						s.Touch(id)
					}
				}
			case 3:
				if len(ranges) > 0 {
					s.FreeRange(ranges[rng.Intn(len(ranges))])
				}
			}
		}
		// Brute-force recount.
		var want [NumSegments][4]int
		for id := 0; id < s.NumPages(); id++ {
			want[s.SegmentOf(PageID(id))][s.State(PageID(id))]++
		}
		for seg := 0; seg < NumSegments; seg++ {
			for st := 0; st < 4; st++ {
				if got := s.Count(Segment(seg), State(st)); got != want[seg][st] {
					t.Logf("seed %d: count[%v][%v] = %d, want %d", seed, Segment(seg), State(st), got, want[seg][st])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReuseRange(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	r := s.Alloc(SegExec, 4)
	s.FreeRange(r)
	s.ReuseRange(r)
	if got := s.Count(SegExec, Inactive); got != 4 {
		t.Fatalf("inactive after reuse = %d, want 4", got)
	}
	for id := r.Start; id < r.End; id++ {
		if !s.Accessed(id) {
			t.Fatalf("reused page %d should be born accessed", id)
		}
	}
	// Reusing non-free pages is a no-op.
	s.SetState(r.Start, Hot)
	s.ReuseRange(r)
	if got := s.Count(SegExec, Hot); got != 1 {
		t.Fatalf("reuse disturbed non-free page states: hot = %d", got)
	}
}
