package pagemem

import "testing"

// TestTouchRangeMatchesPerPage checks the bulk access-bit path against Touch
// on every page, including unaligned range edges.
func TestTouchRangeMatchesPerPage(t *testing.T) {
	a := NewSpace(DefaultPageSize)
	b := NewSpace(DefaultPageSize)
	for _, s := range []*Space{a, b} {
		s.Alloc(SegRuntime, 200)
		for id := PageID(0); id < 200; id++ {
			s.ClearAccessed(id)
		}
	}
	r := Range{Start: 3, End: 197}
	a.TouchRange(r)
	for id := r.Start; id < r.End; id++ {
		b.Touch(id)
	}
	for id := PageID(0); id < 200; id++ {
		if a.Accessed(id) != b.Accessed(id) {
			t.Fatalf("page %d: TouchRange accessed=%v, Touch accessed=%v",
				id, a.Accessed(id), b.Accessed(id))
		}
	}
}

// TestStateWordAndTransitionMasked checks the word-level state snapshot and
// masked transition against per-page SetState.
func TestStateWordAndTransitionMasked(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	s.Alloc(SegRuntime, 128)
	for id := PageID(0); id < 128; id += 3 {
		s.SetState(id, Hot)
	}
	for w := 0; w < 2; w++ {
		var want uint64
		for b := 0; b < 64; b++ {
			if s.State(PageID(w*64+b)) == Inactive {
				want |= 1 << uint(b)
			}
		}
		if got := s.StateWord(w, Inactive); got != want {
			t.Fatalf("StateWord(%d, Inactive) = %#x, want %#x", w, got, want)
		}
	}
	mask := s.StateWord(1, Inactive)
	s.TransitionMasked(1, mask, Inactive, Hot)
	for b := 0; b < 64; b++ {
		id := PageID(64 + b)
		want := Hot
		if st := s.State(id); st != want {
			t.Fatalf("page %d after TransitionMasked: state %v, want %v", id, st, want)
		}
	}
	if n := s.CountInRange(Range{Start: 64, End: 128}, Inactive); n != 0 {
		t.Fatalf("inactive pages left after masked transition: %d", n)
	}
}

// TestBulkRestateMixedSegments drives FreeRange across a word straddling two
// segments, forcing the non-uniform fallback, and checks per-segment counts.
func TestBulkRestateMixedSegments(t *testing.T) {
	s := NewSpace(DefaultPageSize)
	s.Alloc(SegRuntime, 40) // pages 0..39
	s.Alloc(SegExec, 56)    // pages 40..95: word 0 straddles both segments
	s.FreeRange(Range{Start: 30, End: 70})
	if got := s.Count(SegRuntime, Free); got != 10 {
		t.Fatalf("runtime free pages = %d, want 10", got)
	}
	if got := s.Count(SegExec, Free); got != 30 {
		t.Fatalf("exec free pages = %d, want 30", got)
	}
	s.ReuseRange(Range{Start: 30, End: 70})
	if got := s.Count(SegRuntime, Free); got != 0 {
		t.Fatalf("runtime free pages after reuse = %d, want 0", got)
	}
	if got := s.Count(SegExec, Inactive); got != 56 {
		t.Fatalf("exec inactive pages after reuse = %d, want 56", got)
	}
	for id := PageID(30); id < 70; id++ {
		if st := s.State(id); st != Inactive {
			t.Fatalf("page %d after reuse: state %v, want inactive", id, st)
		}
	}
}
