// Package pagemem models a container's memory at page granularity.
//
// A Space is a growable array of fixed-size pages. Each page carries the
// state the offloading policies act on (inactive / hot / remote / free), the
// lifecycle segment it was allocated in (runtime / init / exec), and an
// access bit, mirroring the page-table Accessed bit that the paper's
// mechanisms (and DAMON/TMO) sample. Aggregate counters are maintained
// incrementally so "how much local memory does this container hold" is O(1).
package pagemem

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
)

// DefaultPageSize is the page size used throughout the simulation, matching
// the 4 KiB base pages the paper's kernel implementation manages.
const DefaultPageSize = 4096

// PageID indexes a page within a Space.
type PageID int32

// State is the placement/offloading state of an allocated page.
type State uint8

const (
	// Free marks an unallocated (or released) page slot.
	Free State = iota
	// Inactive pages sit in their Pucket's inactive list: allocated but not
	// re-accessed since the last demotion; candidates for offloading.
	Inactive
	// Hot pages live in the shared hot page pool: they were accessed after
	// allocation (or recalled from remote) and are kept local.
	Hot
	// Remote pages have been offloaded to the memory pool; touching one
	// triggers a page fault and a remote fetch.
	Remote
	numStates = iota
)

// String implements fmt.Stringer for diagnostics.
func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case Inactive:
		return "inactive"
	case Hot:
		return "hot"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Segment is the container-lifecycle stage a page was allocated in
// (paper §3: runtime, init, and execution segments).
type Segment uint8

const (
	// SegRuntime pages are allocated while the language runtime loads.
	SegRuntime Segment = iota
	// SegInit pages are allocated during user-code initialization.
	SegInit
	// SegExec pages hold per-request temporaries, freed on completion.
	SegExec
	// NumSegments is the number of lifecycle segments.
	NumSegments = iota
)

// String implements fmt.Stringer.
func (s Segment) String() string {
	switch s {
	case SegRuntime:
		return "runtime"
	case SegInit:
		return "init"
	case SegExec:
		return "exec"
	default:
		return fmt.Sprintf("segment(%d)", uint8(s))
	}
}

// Range is a half-open interval of pages [Start, End).
type Range struct {
	Start, End PageID
}

// Len returns the number of pages in the range.
func (r Range) Len() int { return int(r.End - r.Start) }

// Contains reports whether id falls inside the range.
func (r Range) Contains(id PageID) bool { return id >= r.Start && id < r.End }

// Space is a page-granularity address space for one container. The zero
// value is not usable; construct with NewSpace.
type Space struct {
	pageSize int
	state    []State
	seg      []Segment
	accessed Bitset
	// stateBits[st] marks every page currently in state st, so range scans
	// (offload victim collection, Pucket occupancy counts) walk words instead
	// of pages. The state slice stays authoritative for O(1) State lookups;
	// the bitsets are a maintained index over it.
	stateBits [numStates]Bitset
	// counts[seg][state] tracks pages per segment and state.
	counts [NumSegments][numStates]int
	// segRuns records the contiguous allocation runs sharing a segment (the
	// seg slice is piecewise constant by construction), so bulk range ops can
	// prove in O(1) that a whole word shares one segment and update counters
	// per word instead of per page. lastSegRun caches the most recent hit.
	segRuns    []segRun
	lastSegRun int
}

// segRun is a maximal range of pages allocated to one segment; its end is
// the next run's start (or the allocated page count for the final run).
type segRun struct {
	start int
	seg   Segment
}

// uniformSeg reports whether pages [first, last] all belong to one segment,
// and which.
func (s *Space) uniformSeg(first, last int) (Segment, bool) {
	i := s.lastSegRun
	if i >= len(s.segRuns) || s.segRuns[i].start > first ||
		(i+1 < len(s.segRuns) && s.segRuns[i+1].start <= first) {
		i = sort.Search(len(s.segRuns), func(j int) bool { return s.segRuns[j].start > first }) - 1
		s.lastSegRun = i
	}
	if i+1 < len(s.segRuns) && s.segRuns[i+1].start <= last {
		return 0, false
	}
	return s.segRuns[i].seg, true
}

// stateFills[st] is a word-sized run of st, for bulk state-slice fills.
var stateFills = func() (f [numStates][64]State) {
	for st := range f {
		for i := range f[st] {
			f[st][i] = State(st)
		}
	}
	return
}()

// NewSpace returns an empty address space with the given page size in bytes.
// pageSize must be positive; use DefaultPageSize unless a test needs tiny
// pages.
func NewSpace(pageSize int) *Space {
	if pageSize <= 0 {
		panic("pagemem: page size must be positive")
	}
	return &Space{pageSize: pageSize}
}

// PageSize returns the page size in bytes.
func (s *Space) PageSize() int { return s.pageSize }

// NumPages returns the total number of page slots ever allocated (including
// freed exec pages, whose slots are not reused).
func (s *Space) NumPages() int { return len(s.state) }

// Alloc appends n pages of the given segment in the Inactive state and
// returns their range. Newly allocated pages carry a set access bit: the
// allocation itself wrote them, exactly as a faulted-in page is young in the
// kernel.
func (s *Space) Alloc(seg Segment, n int) Range {
	if n < 0 {
		panic("pagemem: negative allocation")
	}
	start := PageID(len(s.state))
	total := len(s.state) + n
	if k := len(s.segRuns); n > 0 && (k == 0 || s.segRuns[k-1].seg != seg) {
		s.segRuns = append(s.segRuns, segRun{start: int(start), seg: seg})
	}
	s.state = slices.Grow(s.state, n)[:total]
	s.seg = slices.Grow(s.seg, n)[:total]
	for i := int(start); i < total; i++ {
		s.state[i] = Inactive
		s.seg[i] = seg
	}
	// Pre-grow every bitset to the new page count so hot-path Set/Clear
	// calls never hit the grow check's slow path.
	s.accessed.Grow(total)
	for st := range s.stateBits {
		s.stateBits[st].Grow(total)
	}
	s.accessed.SetRange(int(start), total)
	s.stateBits[Inactive].SetRange(int(start), total)
	s.counts[seg][Inactive] += n
	return Range{Start: start, End: start + PageID(n)}
}

// AllocBytes allocates enough pages to hold the given byte count, rounding
// up to whole pages.
func (s *Space) AllocBytes(seg Segment, bytes int64) Range {
	if bytes < 0 {
		panic("pagemem: negative byte allocation")
	}
	n := int((bytes + int64(s.pageSize) - 1) / int64(s.pageSize))
	return s.Alloc(seg, n)
}

// clampRange narrows [start, end) to the allocated page span and reports
// whether anything remains.
func (s *Space) clampRange(r Range) (start, end int, ok bool) {
	start, end = int(r.Start), int(r.End)
	if end > len(s.state) {
		end = len(s.state)
	}
	return start, end, end > start
}

// rangeMask returns the bitmask of range bits within word w.
func rangeMask(w, start, end int) uint64 {
	m := ^uint64(0)
	if base := w * 64; base < start {
		m &= ^uint64(0) << (uint(start) % 64)
	}
	if end < (w+1)*64 {
		m &= ^uint64(0) >> (64 - uint(end)%64)
	}
	return m
}

// FreeRange releases every non-free page in r. Used when exec-segment
// temporaries are reclaimed at request completion. Already-free pages are
// skipped word-at-a-time, so re-freeing a mostly-free range is cheap.
func (s *Space) FreeRange(r Range) {
	start, end, ok := s.clampRange(r)
	if !ok {
		return
	}
	for w := start / 64; w < (end+63)/64; w++ {
		mask := rangeMask(w, start, end)
		for st := Inactive; st < numStates; st++ {
			word := s.stateBits[st].words[w] & mask
			if word == 0 {
				continue
			}
			s.stateBits[st].words[w] &^= word
			s.stateBits[Free].words[w] |= word
			s.bulkRestate(w, word, st, Free)
		}
		s.accessed.words[w] &^= mask
	}
}

// bulkRestate moves the pages of word (a bitmask within word index w) from
// state st to state to, updating the state slice and segment counters. When
// the whole word sits in one segment the counters move by popcount and a
// full word's state bytes fill by copy; otherwise it falls back to per-page
// updates.
func (s *Space) bulkRestate(w int, word uint64, st, to State) {
	base := w * 64
	first := base + bits.TrailingZeros64(word)
	last := base + 63 - bits.LeadingZeros64(word)
	if seg, ok := s.uniformSeg(first, last); ok {
		k := bits.OnesCount64(word)
		s.counts[seg][st] -= k
		s.counts[seg][to] += k
		if word == ^uint64(0) {
			copy(s.state[base:base+64], stateFills[to][:])
			return
		}
		for ; word != 0; word &= word - 1 {
			s.state[base+bits.TrailingZeros64(word)] = to
		}
		return
	}
	for ; word != 0; word &= word - 1 {
		id := base + bits.TrailingZeros64(word)
		seg := s.seg[id]
		s.counts[seg][st]--
		s.counts[seg][to]++
		s.state[id] = to
	}
}

// ReuseRange reactivates every Free page in r back to Inactive with a set
// access bit — the allocation path for exec-segment temporaries, which reuse
// the same page slots on every request instead of growing the space.
func (s *Space) ReuseRange(r Range) {
	start, end, ok := s.clampRange(r)
	if !ok {
		return
	}
	for w := start / 64; w < (end+63)/64; w++ {
		word := s.stateBits[Free].words[w] & rangeMask(w, start, end)
		if word == 0 {
			continue
		}
		s.stateBits[Free].words[w] &^= word
		s.stateBits[Inactive].words[w] |= word
		s.accessed.words[w] |= word
		s.bulkRestate(w, word, Free, Inactive)
	}
}

// State returns the state of page id.
func (s *Space) State(id PageID) State { return s.state[id] }

// SegmentOf returns the lifecycle segment page id was allocated in.
func (s *Space) SegmentOf(id PageID) Segment { return s.seg[id] }

// SetState transitions page id to st, keeping the aggregate counters
// consistent. Transitioning a Free page is a programming error.
func (s *Space) SetState(id PageID, st State) {
	old := s.state[id]
	if old == st {
		return
	}
	if old == Free {
		panic(fmt.Sprintf("pagemem: page %d is free; Alloc before SetState", id))
	}
	seg := s.seg[id]
	s.counts[seg][old]--
	s.counts[seg][st]++
	s.state[id] = st
	s.stateBits[old].Clear(int(id))
	s.stateBits[st].Set(int(id))
}

// TransitionRange moves every page of state `from` inside r to state `to`,
// calling fn (if non-nil) for each moved page after its state changed. Pages
// in other states are skipped word-at-a-time, so sweeping a segment for the
// (usually few) hot pages costs O(words), not O(pages). Returns the number of
// pages moved.
func (s *Space) TransitionRange(r Range, from, to State, fn func(PageID)) int {
	if from == Free || to == Free {
		panic("pagemem: TransitionRange cannot move pages into or out of Free")
	}
	if from == to {
		return 0
	}
	start, end, ok := s.clampRange(r)
	if !ok {
		return 0
	}
	moved := 0
	for w := start / 64; w < (end+63)/64; w++ {
		word := s.stateBits[from].words[w] & rangeMask(w, start, end)
		if word == 0 {
			continue
		}
		s.stateBits[from].words[w] &^= word
		s.stateBits[to].words[w] |= word
		moved += bits.OnesCount64(word)
		for rem := word; rem != 0; {
			id := w*64 + bits.TrailingZeros64(rem)
			rem &= rem - 1
			seg := s.seg[id]
			s.counts[seg][from]--
			s.counts[seg][to]++
			s.state[id] = to
			if fn != nil {
				fn(PageID(id))
			}
		}
	}
	return moved
}

// ForEachInState calls fn for every page of state st inside r, in page order,
// skipping zero words whole.
func (s *Space) ForEachInState(r Range, st State, fn func(PageID)) {
	s.stateBits[st].ForEachSet(int(r.Start), int(r.End), func(i int) { fn(PageID(i)) })
}

// forEachUnion walks the set bits of a|b in [start, end) in ascending order,
// skipping all-zero words, until fn returns false. b may be nil for a
// single-set walk.
func (s *Space) forEachUnion(a, b *Bitset, start, end int, fn func(int) bool) {
	if mx := len(s.state); end > mx {
		end = mx
	}
	for i := start; i < end; {
		w := i / 64
		lo := uint(i) % 64
		hi := uint(64)
		if end-(w*64) < 64 {
			hi = uint(end - w*64)
		}
		word := a.word(w)
		if b != nil {
			word |= b.word(w)
		}
		word &= (^uint64(0) << lo) & (^uint64(0) >> (64 - hi))
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			if !fn(w*64 + tz) {
				return
			}
			word &^= 1 << uint(tz)
		}
		i = (w + 1) * 64
	}
}

// CollectInState appends up to max pages of state st inside r (0 = no limit)
// to dst and returns it — the word-at-a-time victim scan behind offload
// collection.
func (s *Space) CollectInState(dst []PageID, r Range, st State, max int) []PageID {
	start, end, ok := s.clampRange(r)
	if !ok {
		return dst
	}
	for w := start / 64; w < (end+63)/64; w++ {
		word := s.stateBits[st].words[w] & rangeMask(w, start, end)
		for word != 0 {
			dst = append(dst, PageID(w*64+bits.TrailingZeros64(word)))
			word &= word - 1
			if max > 0 && len(dst) >= max {
				return dst
			}
		}
	}
	return dst
}

// ForEachLocal calls fn for every locally resident page (Inactive or Hot)
// inside r in page order, stopping early when fn returns false — the union
// scan the TMO/DAMON-style policies use to pick eviction victims, where
// visit order across the two states must match a per-page walk.
func (s *Space) ForEachLocal(r Range, fn func(PageID) bool) {
	s.forEachUnion(&s.stateBits[Inactive], &s.stateBits[Hot], int(r.Start), int(r.End),
		func(i int) bool { return fn(PageID(i)) })
}

// CollectLocal appends up to max locally resident pages inside r to dst in
// page order.
func (s *Space) CollectLocal(dst []PageID, r Range, max int) []PageID {
	s.ForEachLocal(r, func(id PageID) bool {
		dst = append(dst, id)
		return max <= 0 || len(dst) < max
	})
	return dst
}

// Touch sets the access bit of page id and returns its current state so the
// caller can decide whether a promotion or a remote fault is needed.
func (s *Space) Touch(id PageID) State {
	s.accessed.Set(int(id))
	return s.state[id]
}

// TouchRange sets the access bits of every page in r in bulk — the fast path
// for request spans, which touch contiguous page runs.
func (s *Space) TouchRange(r Range) {
	if start, end, ok := s.clampRange(r); ok {
		s.accessed.SetRange(start, end)
	}
}

// StateWord returns the 64-page occupancy mask of state st covering pages
// [w*64, w*64+64). Together with TransitionMasked it lets hot loops (the
// request touch path) move whole words of pages without per-page calls.
func (s *Space) StateWord(w int, st State) uint64 { return s.stateBits[st].word(w) }

// TransitionMasked moves every page in the 64-page word w whose mask bit is
// set from state `from` to state `to`. Every masked page must currently be in
// state `from` (callers derive mask from StateWord). Free is not a valid
// endpoint, mirroring TransitionRange.
func (s *Space) TransitionMasked(w int, mask uint64, from, to State) {
	if mask == 0 {
		return
	}
	if from == Free || to == Free {
		panic("pagemem: TransitionMasked cannot move pages into or out of Free")
	}
	s.stateBits[from].words[w] &^= mask
	s.stateBits[to].words[w] |= mask
	for rem := mask; rem != 0; {
		id := w*64 + bits.TrailingZeros64(rem)
		rem &= rem - 1
		seg := s.seg[id]
		s.counts[seg][from]--
		s.counts[seg][to]++
		s.state[id] = to
	}
}

// Accessed reports the access bit of page id without clearing it.
func (s *Space) Accessed(id PageID) bool { return s.accessed.Get(int(id)) }

// ClearAccessed clears the access bit of page id.
func (s *Space) ClearAccessed(id PageID) { s.accessed.Clear(int(id)) }

// ScanAndClear invokes fn for every page in r whose access bit is set, then
// clears the bit — the moral equivalent of a page-table Accessed-bit scan.
// Zero words are skipped whole, so scanning a cold container is cheap.
func (s *Space) ScanAndClear(r Range, fn func(PageID)) {
	if fn != nil {
		s.accessed.ForEachSet(int(r.Start), int(r.End), func(i int) { fn(PageID(i)) })
	}
	s.accessed.ClearRange(int(r.Start), int(r.End))
}

// CountAccessed tallies set access bits in r without clearing them.
func (s *Space) CountAccessed(r Range) int {
	return s.accessed.CountRange(int(r.Start), int(r.End))
}

// CountInRange tallies pages of the given state inside r by popcounting the
// state's bitset, so per-request occupancy polls cost O(words).
func (s *Space) CountInRange(r Range, st State) int {
	return s.stateBits[st].CountRange(int(r.Start), int(r.End))
}

// Count returns the number of pages in the given segment and state.
func (s *Space) Count(seg Segment, st State) int { return s.counts[seg][st] }

// CountState sums a state's pages across all segments.
func (s *Space) CountState(st State) int {
	n := 0
	for seg := 0; seg < NumSegments; seg++ {
		n += s.counts[seg][st]
	}
	return n
}

// LocalBytes reports resident local memory: inactive plus hot pages.
func (s *Space) LocalBytes() int64 {
	return int64(s.CountState(Inactive)+s.CountState(Hot)) * int64(s.pageSize)
}

// RemoteBytes reports memory currently offloaded to the pool.
func (s *Space) RemoteBytes() int64 {
	return int64(s.CountState(Remote)) * int64(s.pageSize)
}

// TotalBytes reports all allocated (non-free) memory, local plus remote.
func (s *Space) TotalBytes() int64 { return s.LocalBytes() + s.RemoteBytes() }

// BytesOf converts a page count to bytes at this space's page size.
func (s *Space) BytesOf(pages int) int64 { return int64(pages) * int64(s.pageSize) }

// PagesOf converts a byte count to pages, rounding up.
func (s *Space) PagesOf(bytes int64) int {
	return int((bytes + int64(s.pageSize) - 1) / int64(s.pageSize))
}
