package pagemem

import (
	"math/rand"
	"reflect"
	"testing"
)

// naiveSpace is the obviously-correct model of Space: plain slices, no
// bitsets, no incremental counters — every query is an O(pages) rescan. The
// differential drivers below replay one operation script through both and
// fail on any observable divergence, so the word-at-a-time scan paths
// (ForEachSet unions, popcounts, range clears) are checked against
// per-page semantics.
type naiveSpace struct {
	pageSize int
	state    []State
	seg      []Segment
	accessed []bool
}

func (n *naiveSpace) alloc(seg Segment, count int) {
	for i := 0; i < count; i++ {
		n.state = append(n.state, Inactive)
		n.seg = append(n.seg, seg)
		n.accessed = append(n.accessed, true)
	}
}

func (n *naiveSpace) freeRange(r Range) {
	for id := r.Start; id < r.End; id++ {
		n.state[id] = Free
		n.accessed[id] = false
	}
}

func (n *naiveSpace) reuseRange(r Range) {
	for id := r.Start; id < r.End; id++ {
		if n.state[id] == Free {
			n.state[id] = Inactive
			n.accessed[id] = true
		}
	}
}

func (n *naiveSpace) transitionRange(r Range, from, to State) int {
	moved := 0
	for id := r.Start; id < r.End; id++ {
		if n.state[id] == from {
			n.state[id] = to
			moved++
		}
	}
	return moved
}

func (n *naiveSpace) scanAndClear(r Range) []PageID {
	var hit []PageID
	for id := r.Start; id < r.End; id++ {
		if n.accessed[id] {
			hit = append(hit, id)
			n.accessed[id] = false
		}
	}
	return hit
}

func (n *naiveSpace) countInRange(r Range, st State) int {
	c := 0
	for id := r.Start; id < r.End; id++ {
		if n.state[id] == st {
			c++
		}
	}
	return c
}

func (n *naiveSpace) count(seg Segment, st State) int {
	c := 0
	for id := range n.state {
		if n.seg[id] == seg && n.state[id] == st {
			c++
		}
	}
	return c
}

func (n *naiveSpace) collectInState(r Range, st State, max int) []PageID {
	var out []PageID
	for id := r.Start; id < r.End; id++ {
		if n.state[id] == st {
			out = append(out, id)
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out
}

func (n *naiveSpace) collectLocal(r Range, max int) []PageID {
	var out []PageID
	for id := r.Start; id < r.End; id++ {
		if n.state[id] == Inactive || n.state[id] == Hot {
			out = append(out, id)
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out
}

// spacePair drives one script through the bitset-backed Space and the model.
type spacePair struct {
	fast *Space
	slow *naiveSpace
}

func newSpacePair() *spacePair {
	return &spacePair{
		fast: NewSpace(DefaultPageSize),
		slow: &naiveSpace{pageSize: DefaultPageSize},
	}
}

// rangeFrom derives an in-bounds half-open range from two script bytes.
func (p *spacePair) rangeFrom(a, b byte) Range {
	n := PageID(len(p.slow.state))
	if n == 0 {
		return Range{}
	}
	lo := PageID(a) * n / 256
	hi := PageID(b) * (n + 1) / 256
	if hi < lo {
		lo, hi = hi, lo
	}
	return Range{Start: lo, End: hi}
}

// step applies one scripted operation to both spaces. Operands come from an
// arbitrary byte stream so the fuzzer can drive it too.
func (p *spacePair) step(t *testing.T, op, a, b byte) {
	t.Helper()
	n := len(p.slow.state)
	switch op % 8 {
	case 0: // grow
		seg := Segment(int(a) % int(NumSegments))
		count := int(b) % 97
		p.fast.Alloc(seg, count)
		p.slow.alloc(seg, count)
	case 1: // release a range (exec teardown)
		r := p.rangeFrom(a, b)
		p.fast.FreeRange(r)
		p.slow.freeRange(r)
	case 2: // revive freed slots (exec reuse)
		r := p.rangeFrom(a, b)
		p.fast.ReuseRange(r)
		p.slow.reuseRange(r)
	case 3: // single-page transition
		if n == 0 {
			return
		}
		id := PageID((int(a)<<8 | int(b)) % n)
		st := State(1 + int(a)%3) // Inactive, Hot or Remote — never Free
		if p.slow.state[id] == Free {
			return
		}
		p.fast.SetState(id, st)
		p.slow.state[id] = st
	case 4: // access path
		if n == 0 {
			return
		}
		id := PageID((int(a)<<8 | int(b)) % n)
		got := p.fast.Touch(id)
		p.slow.accessed[id] = true
		if want := p.slow.state[id]; got != want {
			t.Fatalf("Touch(%d) = %v, want %v", id, got, want)
		}
	case 5: // bulk transition (offload/recall sweeps)
		r := p.rangeFrom(a, b)
		from := State(1 + int(a)%3)
		to := State(1 + int(b)%3)
		if from == to {
			return
		}
		got := p.fast.TransitionRange(r, from, to, nil)
		if want := p.slow.transitionRange(r, from, to); got != want {
			t.Fatalf("TransitionRange(%v, %v->%v) moved %d, want %d", r, from, to, got, want)
		}
	case 6: // accessed-bit scan (DAMON/TMO sampling)
		r := p.rangeFrom(a, b)
		var got []PageID
		p.fast.ScanAndClear(r, func(id PageID) { got = append(got, id) })
		if want := p.slow.scanAndClear(r); !reflect.DeepEqual(got, want) {
			t.Fatalf("ScanAndClear(%v) = %v, want %v", r, got, want)
		}
	case 7: // bounded victim collection
		r := p.rangeFrom(a, b)
		st := State(int(a) % int(numStates))
		max := int(b) % 5
		got := p.fast.CollectInState(nil, r, st, max)
		if want := p.slow.collectInState(r, st, max); !reflect.DeepEqual(got, want) {
			t.Fatalf("CollectInState(%v, %v, %d) = %v, want %v", r, st, max, got, want)
		}
		gotLocal := p.fast.CollectLocal(nil, r, max)
		if want := p.slow.collectLocal(r, max); !reflect.DeepEqual(gotLocal, want) {
			t.Fatalf("CollectLocal(%v, %d) = %v, want %v", r, max, gotLocal, want)
		}
	}
}

// check compares the complete observable aggregate state.
func (p *spacePair) check(t *testing.T, step int) {
	t.Helper()
	if got, want := p.fast.NumPages(), len(p.slow.state); got != want {
		t.Fatalf("step %d: NumPages = %d, want %d", step, got, want)
	}
	for st := Free; st < numStates; st++ {
		all := Range{Start: 0, End: PageID(len(p.slow.state))}
		if got, want := p.fast.CountInRange(all, st), p.slow.countInRange(all, st); got != want {
			t.Fatalf("step %d: CountInRange(all, %v) = %d, want %d", step, st, got, want)
		}
		if got, want := p.fast.CountState(st), p.slow.countInRange(all, st); got != want {
			t.Fatalf("step %d: CountState(%v) = %d, want %d", step, st, got, want)
		}
		for seg := Segment(0); seg < NumSegments; seg++ {
			if got, want := p.fast.Count(seg, st), p.slow.count(seg, st); got != want {
				t.Fatalf("step %d: Count(%v, %v) = %d, want %d", step, seg, st, got, want)
			}
		}
	}
	for id := range p.slow.state {
		if got, want := p.fast.State(PageID(id)), p.slow.state[id]; got != want {
			t.Fatalf("step %d: State(%d) = %v, want %v", step, id, got, want)
		}
		if got, want := p.fast.Accessed(PageID(id)), p.slow.accessed[id]; got != want {
			t.Fatalf("step %d: Accessed(%d) = %v, want %v", step, id, got, want)
		}
	}
	all := Range{Start: 0, End: PageID(len(p.slow.state))}
	if got, want := p.fast.CountAccessed(all), len(p.slow.scanAndClearPreview()); got != want {
		t.Fatalf("step %d: CountAccessed = %d, want %d", step, got, want)
	}
}

// scanAndClearPreview returns the accessed set without clearing (model-side
// helper for CountAccessed).
func (n *naiveSpace) scanAndClearPreview() []PageID {
	var hit []PageID
	for id, acc := range n.accessed {
		if acc {
			hit = append(hit, PageID(id))
		}
	}
	return hit
}

// TestSpaceDifferentialRandomOps replays long random scripts through the
// bitset-backed Space and the naive model, comparing complete observable
// state periodically.
func TestSpaceDifferentialRandomOps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := newSpacePair()
		for step := 0; step < 500; step++ {
			p.step(t, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
			if step%11 == 0 || step == 499 {
				p.check(t, step)
			}
		}
		p.check(t, 500)
	}
}

// FuzzSpaceDifferential lets the fuzzer drive arbitrary operation scripts
// through Space and the naive model; any divergence in scan results,
// counters, or per-page state fails.
func FuzzSpaceDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 70, 4, 0, 5, 3, 1, 9, 5, 0, 255, 6, 0, 255, 7, 2, 3})
	f.Add([]byte{0, 2, 96, 1, 20, 200, 2, 10, 128, 0, 1, 33, 5, 64, 250})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 3*300 {
			script = script[:3*300]
		}
		p := newSpacePair()
		for i := 0; i+2 < len(script); i += 3 {
			p.step(t, script[i], script[i+1], script[i+2])
		}
		p.check(t, len(script))
	})
}
