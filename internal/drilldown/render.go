package drilldown

import (
	"fmt"
	"io"
	"strings"

	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
)

// WriteExplainText renders an Explanation for terminals: the window's
// summary movement, its flow ledger slice, and the exemplar critical paths.
func WriteExplainText(w io.Writer, ex *Explanation) error {
	picked := ""
	if ex.AutoPicked {
		picked = " (worst window, auto-picked)"
	}
	if _, err := fmt.Fprintf(w, "explain: window %d at t=%.0fs%s\n", ex.Window, ex.StartSec, picked); err != nil {
		return err
	}
	if s := ex.Summary; s != nil {
		line := fmt.Sprintf("summary: %d reqs, p99 %.2f ms, retries %d, timeouts %d, fallback %d, reinits %d",
			s.Requests, s.P99Ms, s.Retries, s.Timeouts, s.FallbackPages, s.Reinits)
		if p := ex.PrevSummary; p != nil {
			line += fmt.Sprintf("  (vs prev window: reqs %+d, p99 %+.2f ms)",
				s.Requests-p.Requests, s.P99Ms-p.P99Ms)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if len(ex.Flows) > 0 {
		if _, err := fmt.Fprintln(w, "flows:"); err != nil {
			return err
		}
		const mb = float64(1 << 20)
		for _, f := range ex.Flows {
			dims := ""
			if f.Tenant != "" {
				dims += " tenant=" + f.Tenant
			}
			if f.Class != "" {
				dims += " class=" + f.Class
			}
			dir := "tier"
			switch f.Direction {
			case +1:
				dir = "in "
			case -1:
				dir = "out"
			}
			if _, err := fmt.Fprintf(w, "  %-8s %-4s %8.2f MB%s\n", f.Flow, dir, float64(f.Bytes)/mb, dims); err != nil {
				return err
			}
		}
	}
	if a := ex.FlowAudit; a != nil {
		verdict := "conservation OK"
		switch {
		case a.Merged:
			verdict = fmt.Sprintf("n/a (merged across %d runs)", a.Runs)
		case !a.OK:
			verdict = fmt.Sprintf("%d window(s) VIOLATE conservation", a.Violations)
		}
		if _, err := fmt.Fprintf(w, "flow audit: %s (%d checkpoints)\n", verdict, a.Checks); err != nil {
			return err
		}
	}
	if len(ex.Exemplars) == 0 {
		_, err := fmt.Fprintln(w, "exemplars: none retained for this window (run with -exemplars)")
		return err
	}
	for _, bd := range ex.Exemplars {
		cell := "exemplars"
		if bd.Node != "" {
			cell += " node=" + bd.Node
		}
		if bd.Tenant != "" {
			cell += " tenant=" + bd.Tenant
		}
		if _, err := fmt.Fprintf(w, "%s (%d requests):\n", cell, bd.Count); err != nil {
			return err
		}
		for i, e := range bd.Top {
			if err := writeExemplarPath(w, fmt.Sprintf("#%d", i+1), e); err != nil {
				return err
			}
		}
		if bd.Typical != nil {
			if err := writeExemplarPath(w, "typ", *bd.Typical); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeExemplarPath(w io.Writer, tag string, e ExemplarPath) error {
	parts := make([]string, 0, len(e.Phases))
	for _, p := range e.Phases {
		parts = append(parts, fmt.Sprintf("%s %.2fms", p.Phase, p.Ms))
	}
	_, err := fmt.Fprintf(w, "  %-3s %9.2fms at %8.1fs %s %s/%s  [%s]\n",
		tag, e.LatencyMs, e.AtSec, e.Kind, e.Function, e.Container, strings.Join(parts, ", "))
	return err
}

// WriteDiffText renders a DiffReport for terminals.
func WriteDiffText(w io.Writer, rep *DiffReport) error {
	if _, err := fmt.Fprintf(w, "diff: %d windows vs %d windows, %d aligned\n",
		rep.WindowsA, rep.WindowsB, rep.Aligned); err != nil {
		return err
	}
	if len(rep.Windows) == 0 {
		if _, err := fmt.Fprintln(w, "no metric movement in aligned windows"); err != nil {
			return err
		}
	}
	for _, wd := range rep.Windows {
		for _, d := range wd.Deltas {
			flag := ""
			if d.Regression {
				flag = "  REGRESSION"
			}
			if _, err := fmt.Fprintf(w, "  window %d (t=%.0fs) %-14s %10.2f -> %10.2f (%+.2f)%s\n",
				wd.Window, wd.StartSec, d.Metric, d.A, d.B, d.Delta, flag); err != nil {
				return err
			}
		}
	}
	const mb = float64(1 << 20)
	for _, f := range rep.FlowTotals {
		if _, err := fmt.Fprintf(w, "  flow %-8s %10.2f MB -> %10.2f MB (%+.2f MB)\n",
			f.Flow, float64(f.ABytes)/mb, float64(f.BBytes)/mb, float64(f.Delta)/mb); err != nil {
			return err
		}
	}
	verdict := "no regressions"
	if rep.Regressions > 0 {
		verdict = fmt.Sprintf("%d regression(s)", rep.Regressions)
	}
	_, err := fmt.Fprintf(w, "verdict: %s\n", verdict)
	return err
}

// WriteExemplarsText renders raw exemplar cells — the shared digest behind
// faasmem-sim -exemplars and `faasmem-stat timeline -exemplars` text output.
func WriteExemplarsText(w io.Writer, cells []exemplar.Cell) error {
	if len(cells) == 0 {
		_, err := fmt.Fprintln(w, "exemplars: none recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "exemplars: %d cells\n", len(cells)); err != nil {
		return err
	}
	for _, c := range cells {
		cell := fmt.Sprintf("  window %d", c.Window)
		if c.Node != "" {
			cell += " node=" + c.Node
		}
		if c.Tenant != "" {
			cell += " tenant=" + c.Tenant
		}
		if _, err := fmt.Fprintf(w, "%s (%d requests):\n", cell, c.Count); err != nil {
			return err
		}
		for i, e := range c.Top {
			if err := writeExemplarPath(w, fmt.Sprintf("  #%d", i+1), flattenExemplar(e)); err != nil {
				return err
			}
		}
		if c.Typical != nil {
			if err := writeExemplarPath(w, "  typ", flattenExemplar(*c.Typical)); err != nil {
				return err
			}
		}
	}
	return nil
}
