// Package drilldown connects the repo's three telemetry layers — per-window
// timeseries rollups, the page byte-flow ledger, and tail exemplars — into
// run-level analysis: Explain dereferences one window's spike to the flows
// and concrete worst requests behind it, and Diff aligns two runs' windows
// into a direction-aware regression report. Both operate on run files (the
// JSON written by `faasmem-stat timeline -format json`, with or without the
// exemplar envelope), so analysis is decoupled from simulation.
package drilldown

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// Run is one captured run: the timeline snapshot plus the exemplar cells
// retained alongside it. This is the on-disk envelope `faasmem-stat timeline
// -exemplars -format json` writes.
type Run struct {
	Timeline  timeseries.Snapshot `json:"timeline"`
	Exemplars []exemplar.Cell     `json:"exemplars,omitempty"`
}

// ReadRun loads a run file. It is lenient about shape: both the
// {timeline, exemplars} envelope and a bare timeline snapshot (the output
// of `faasmem-stat timeline -format json` without -exemplars, or the
// gateway's GET /timeline) are accepted — a bare snapshot simply has no
// exemplars attached.
func ReadRun(path string) (Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Run{}, err
	}
	return ParseRun(data)
}

// ParseRun is ReadRun on bytes already in hand.
func ParseRun(data []byte) (Run, error) {
	var run Run
	if err := json.Unmarshal(data, &run); err == nil && runPopulated(run) {
		return run, nil
	}
	var snap timeseries.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Run{}, fmt.Errorf("drilldown: not a run file (neither envelope nor timeline snapshot): %w", err)
	}
	if len(snap.Rows) == 0 && len(snap.Summary) == 0 {
		return Run{}, fmt.Errorf("drilldown: run file holds no timeline windows")
	}
	return Run{Timeline: snap}, nil
}

func runPopulated(run Run) bool {
	return len(run.Timeline.Rows) > 0 || len(run.Timeline.Summary) > 0 ||
		len(run.Exemplars) > 0
}

// PhaseShare is one phase's share of an exemplar's critical path.
type PhaseShare struct {
	Phase string  `json:"phase"`
	Ms    float64 `json:"ms"`
}

// ExemplarPath is one retained request flattened for explanation: identity,
// end-to-end latency, and the critical-path phase decomposition (nonzero
// phases, largest first).
type ExemplarPath struct {
	AtSec     float64      `json:"at_sec"`
	LatencyMs float64      `json:"latency_ms"`
	Container string       `json:"container"`
	Function  string       `json:"function"`
	Kind      string       `json:"kind"`
	Phases    []PhaseShare `json:"phases,omitempty"`
	// Dominant is the largest non-request phase.
	Dominant string `json:"dominant,omitempty"`
}

// ExemplarBreakdown is one (node, tenant) cell's exemplars with critical
// paths attached.
type ExemplarBreakdown struct {
	Node    string         `json:"node,omitempty"`
	Tenant  string         `json:"tenant,omitempty"`
	Count   int64          `json:"count"`
	Top     []ExemplarPath `json:"top"`
	Typical *ExemplarPath  `json:"typical,omitempty"`
}

// Explanation is Explain's result: one window's summary movement, its flow
// ledger slice, and the exemplar critical paths that realize the tail.
type Explanation struct {
	// Window is the explained window index; StartSec its virtual start.
	Window   int64   `json:"window"`
	StartSec float64 `json:"start_sec"`
	// AutoPicked is true when the window was chosen as the worst-P99 window
	// rather than requested explicitly.
	AutoPicked bool `json:"auto_picked,omitempty"`
	// Summary and PrevSummary are the window's rollup row and its
	// predecessor (nil at the first window), for delta context.
	Summary     *timeseries.SummaryRow `json:"summary,omitempty"`
	PrevSummary *timeseries.SummaryRow `json:"prev_summary,omitempty"`
	// Flows is the byte-flow ledger restricted to the window.
	Flows []timeseries.FlowRow `json:"flows,omitempty"`
	// FlowAudit is the whole run's conservation verdict.
	FlowAudit *timeseries.FlowAudit `json:"flow_audit,omitempty"`
	// Exemplars are the window's retained cells with critical paths.
	Exemplars []ExemplarBreakdown `json:"exemplars,omitempty"`
}

// Explain builds the drill-down for one window of run. window == -1 picks
// the worst window automatically: highest P99, ties to the earlier window
// (and to the busiest window when no latency was recorded at all).
func Explain(run Run, window int64) (*Explanation, error) {
	summary := run.Timeline.Summary
	if len(summary) == 0 {
		return nil, fmt.Errorf("drilldown: run has no summary windows to explain")
	}
	auto := window == -1
	if auto {
		window = pickWorst(summary)
	}
	ex := &Explanation{Window: window, AutoPicked: auto}
	for i := range summary {
		if summary[i].Window == window {
			ex.Summary = &summary[i]
			ex.StartSec = summary[i].StartSec
			if i > 0 {
				ex.PrevSummary = &summary[i-1]
			}
		}
	}
	if ex.Summary == nil {
		return nil, fmt.Errorf("drilldown: window %d not in run (windows %d..%d)",
			window, summary[0].Window, summary[len(summary)-1].Window)
	}
	for _, f := range run.Timeline.Flows {
		if f.Window == window {
			ex.Flows = append(ex.Flows, f)
		}
	}
	ex.FlowAudit = run.Timeline.FlowAudit
	for _, c := range run.Exemplars {
		if c.Window != window {
			continue
		}
		bd := ExemplarBreakdown{Node: c.Node, Tenant: c.Tenant, Count: c.Count}
		for _, e := range c.Top {
			bd.Top = append(bd.Top, flattenExemplar(e))
		}
		if c.Typical != nil {
			t := flattenExemplar(*c.Typical)
			bd.Typical = &t
		}
		ex.Exemplars = append(ex.Exemplars, bd)
	}
	return ex, nil
}

// pickWorst selects the window with the highest P99 latency, falling back
// to the busiest window when no latency samples were rolled up.
func pickWorst(summary []timeseries.SummaryRow) int64 {
	best := summary[0].Window
	bestP99, bestReqs := summary[0].P99Ms, summary[0].Requests
	anyLatency := bestP99 > 0
	for _, row := range summary[1:] {
		if row.P99Ms > 0 {
			anyLatency = true
		}
		if row.P99Ms > bestP99 {
			best, bestP99, bestReqs = row.Window, row.P99Ms, row.Requests
		}
	}
	if anyLatency {
		return best
	}
	for _, row := range summary[1:] {
		if row.Requests > bestReqs {
			best, bestReqs = row.Window, row.Requests
		}
	}
	return best
}

// flattenExemplar turns one retained request into its explanation form,
// attaching the span tree's critical-path phase decomposition.
func flattenExemplar(e exemplar.Exemplar) ExemplarPath {
	p := ExemplarPath{
		AtSec:     e.At.Seconds(),
		LatencyMs: float64(e.Latency) / float64(time.Millisecond),
		Container: e.Invocation.Container,
		Function:  e.Invocation.Function,
		Kind:      e.Invocation.Kind.String(),
	}
	phases := span.CriticalPath(e.Invocation)
	var dominant span.Phase
	var dominantDur time.Duration
	for ph := span.PhaseOther; ph < span.NumPhases; ph++ {
		d := phases[ph]
		if d <= 0 {
			continue
		}
		p.Phases = append(p.Phases, PhaseShare{
			Phase: ph.String(), Ms: float64(d) / float64(time.Millisecond),
		})
		if ph != span.PhaseRequest && d > dominantDur {
			dominant, dominantDur = ph, d
		}
	}
	// Largest share first; equal shares keep causal phase order (stable).
	for i := 1; i < len(p.Phases); i++ {
		for j := i; j > 0 && p.Phases[j].Ms > p.Phases[j-1].Ms; j-- {
			p.Phases[j], p.Phases[j-1] = p.Phases[j-1], p.Phases[j]
		}
	}
	if dominantDur > 0 {
		p.Dominant = dominant.String()
	}
	return p
}
