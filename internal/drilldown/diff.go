package drilldown

import (
	"math"

	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// Diff aligns two runs window-by-window into a direction-aware regression
// report: for each headline metric it knows which direction is worse
// (latency and failure counters up, throughput down) and flags a regression
// only when the worse-direction movement clears both a relative threshold
// and an absolute floor — so identical-seed runs diff to zero and noise
// below the floors stays quiet.

// DefaultThreshold is the relative worse-direction movement (fraction of
// the baseline value) Diff tolerates before flagging a regression.
const DefaultThreshold = 0.10

// diffMetric describes one compared metric.
type diffMetric struct {
	name string
	get  func(timeseries.SummaryRow) float64
	// higherWorse: true when an increase is a regression (latency,
	// failures); false when a decrease is (throughput).
	higherWorse bool
	// floor is the absolute worse-direction movement ignored as noise.
	floor float64
}

var diffMetrics = []diffMetric{
	{"requests", func(r timeseries.SummaryRow) float64 { return float64(r.Requests) }, false, 2},
	{"p99_ms", func(r timeseries.SummaryRow) float64 { return r.P99Ms }, true, 1},
	{"retries", func(r timeseries.SummaryRow) float64 { return float64(r.Retries) }, true, 2},
	{"timeouts", func(r timeseries.SummaryRow) float64 { return float64(r.Timeouts) }, true, 1},
	{"fallback_pages", func(r timeseries.SummaryRow) float64 { return float64(r.FallbackPages) }, true, 8},
	{"reinits", func(r timeseries.SummaryRow) float64 { return float64(r.Reinits) }, true, 1},
}

// MetricDelta is one metric's movement in one aligned window.
type MetricDelta struct {
	Metric string  `json:"metric"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	Delta  float64 `json:"delta"`
	// Regression is true when the movement is in the worse direction past
	// the threshold and floor.
	Regression bool `json:"regression,omitempty"`
}

// WindowDiff is one aligned window's metric movements (only metrics that
// moved are listed).
type WindowDiff struct {
	Window   int64         `json:"window"`
	StartSec float64       `json:"start_sec"`
	Deltas   []MetricDelta `json:"deltas"`
}

// FlowTotalDelta is one flow kind's whole-run byte movement between runs.
type FlowTotalDelta struct {
	Flow   string `json:"flow"`
	ABytes int64  `json:"a_bytes"`
	BBytes int64  `json:"b_bytes"`
	Delta  int64  `json:"delta"`
}

// DiffReport is Diff's result.
type DiffReport struct {
	// WindowsA/WindowsB count each run's summary windows; Aligned how many
	// window indices appear in both.
	WindowsA int `json:"windows_a"`
	WindowsB int `json:"windows_b"`
	Aligned  int `json:"aligned"`
	// Windows lists aligned windows where at least one metric moved.
	Windows []WindowDiff `json:"windows,omitempty"`
	// FlowTotals lists flow kinds whose whole-run totals differ.
	FlowTotals []FlowTotalDelta `json:"flow_totals,omitempty"`
	// Regressions counts flagged metric movements across all windows.
	Regressions int `json:"regressions"`
}

// Diff compares run b (candidate) against run a (baseline). threshold <= 0
// selects DefaultThreshold.
func Diff(a, b Run, threshold float64) *DiffReport {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := &DiffReport{WindowsA: len(a.Timeline.Summary), WindowsB: len(b.Timeline.Summary)}
	byWin := make(map[int64]timeseries.SummaryRow, len(b.Timeline.Summary))
	for _, row := range b.Timeline.Summary {
		byWin[row.Window] = row
	}
	for _, ra := range a.Timeline.Summary {
		rb, ok := byWin[ra.Window]
		if !ok {
			continue
		}
		rep.Aligned++
		wd := WindowDiff{Window: ra.Window, StartSec: ra.StartSec}
		for _, m := range diffMetrics {
			va, vb := m.get(ra), m.get(rb)
			if va == vb {
				continue
			}
			d := MetricDelta{Metric: m.name, A: va, B: vb, Delta: vb - va}
			worse := d.Delta
			if !m.higherWorse {
				worse = -d.Delta
			}
			if worse >= m.floor && worse >= threshold*math.Max(math.Abs(va), m.floor) {
				d.Regression = true
				rep.Regressions++
			}
			wd.Deltas = append(wd.Deltas, d)
		}
		if len(wd.Deltas) > 0 {
			rep.Windows = append(rep.Windows, wd)
		}
	}
	ta, tb := flowTotals(a.Timeline.Flows), flowTotals(b.Timeline.Flows)
	for k := timeseries.FlowKind(0); k < timeseries.NumFlows; k++ {
		if ta[k] == tb[k] {
			continue
		}
		rep.FlowTotals = append(rep.FlowTotals, FlowTotalDelta{
			Flow: k.String(), ABytes: ta[k], BBytes: tb[k], Delta: tb[k] - ta[k],
		})
	}
	return rep
}

// flowTotals sums ledger rows per flow kind.
func flowTotals(rows []timeseries.FlowRow) [timeseries.NumFlows]int64 {
	var totals [timeseries.NumFlows]int64
	for _, r := range rows {
		if i := flowIndex(r.Flow); i >= 0 {
			totals[i] += r.Bytes
		}
	}
	return totals
}

func flowIndex(name string) int {
	for k := timeseries.FlowKind(0); k < timeseries.NumFlows; k++ {
		if k.String() == name {
			return int(k)
		}
	}
	return -1
}
