package drilldown

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// testRun builds a three-window run with a latency spike in window 1, one
// flow row per window, and an exemplar in the spike window.
func testRun() Run {
	exInv := span.Invocation{
		Function:  "web",
		Container: "web#1",
		Kind:      span.Cold,
		Root: span.Span{
			Phase: span.PhaseRequest, Dur: 2 * time.Second,
			Children: []span.Span{
				{Phase: span.PhaseInit, Dur: 1500 * time.Millisecond},
				{Phase: span.PhaseExec, Start: simtime.Time(1500 * time.Millisecond), Dur: 500 * time.Millisecond},
			},
		},
	}
	return Run{
		Timeline: timeseries.Snapshot{
			WindowSec: 10,
			Summary: []timeseries.SummaryRow{
				{Window: 0, StartSec: 0, Requests: 10, P99Ms: 100},
				{Window: 1, StartSec: 10, Requests: 8, P99Ms: 2000, Retries: 3},
				{Window: 2, StartSec: 20, Requests: 12, P99Ms: 90},
			},
			Flows: []timeseries.FlowRow{
				{Window: 0, Flow: "offload", Direction: 1, Node: "pool", Tenant: "web", Bytes: 1 << 20},
				{Window: 1, Flow: "fallback", Direction: -1, Node: "pool", Tenant: "web", Bytes: 1 << 18},
				{Window: 2, Flow: "recall", Direction: -1, Node: "pool", Tenant: "web", Bytes: 1 << 19},
			},
			FlowAudit: &timeseries.FlowAudit{Runs: 1, Checks: 3, OK: true},
		},
		Exemplars: []exemplar.Cell{
			{
				Key:   exemplar.Key{Window: 1, Node: "n0", Tenant: "web"},
				Count: 8,
				Top: []exemplar.Exemplar{
					{At: simtime.Time(12 * time.Second), Latency: 2 * time.Second, Invocation: exInv},
				},
			},
		},
	}
}

func TestParseRunLenient(t *testing.T) {
	run := testRun()
	envelope, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := json.Marshal(run.Timeline)
	if err != nil {
		t.Fatal(err)
	}

	got, err := ParseRun(envelope)
	if err != nil {
		t.Fatalf("envelope: %v", err)
	}
	if len(got.Exemplars) != 1 || len(got.Timeline.Summary) != 3 {
		t.Errorf("envelope parse lost data: %d exemplars, %d windows",
			len(got.Exemplars), len(got.Timeline.Summary))
	}

	got, err = ParseRun(bare)
	if err != nil {
		t.Fatalf("bare snapshot: %v", err)
	}
	if len(got.Timeline.Summary) != 3 || len(got.Exemplars) != 0 {
		t.Errorf("bare parse: %d windows, %d exemplars", len(got.Timeline.Summary), len(got.Exemplars))
	}

	if _, err := ParseRun([]byte(`{"hello": 1}`)); err == nil {
		t.Error("empty object accepted as a run")
	}
	if _, err := ParseRun([]byte(`not json`)); err == nil {
		t.Error("garbage accepted as a run")
	}
}

func TestExplainAutoPicksWorstWindow(t *testing.T) {
	ex, err := Explain(testRun(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.AutoPicked || ex.Window != 1 {
		t.Fatalf("picked window %d (auto=%v), want the 2000ms spike in window 1",
			ex.Window, ex.AutoPicked)
	}
	if ex.Summary == nil || ex.Summary.P99Ms != 2000 {
		t.Error("summary row not attached")
	}
	if ex.PrevSummary == nil || ex.PrevSummary.Window != 0 {
		t.Error("previous summary row not attached")
	}
	if len(ex.Flows) != 1 || ex.Flows[0].Flow != "fallback" {
		t.Errorf("flows = %+v, want the window's fallback row only", ex.Flows)
	}
	if ex.FlowAudit == nil || !ex.FlowAudit.OK {
		t.Error("flow audit not attached")
	}
	if len(ex.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v", ex.Exemplars)
	}
	top := ex.Exemplars[0].Top
	if len(top) != 1 || top[0].LatencyMs != 2000 || top[0].Kind != "cold" {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Dominant != span.PhaseInit.String() {
		t.Errorf("dominant = %q, want init", top[0].Dominant)
	}
	if len(top[0].Phases) == 0 || top[0].Phases[0].Phase != span.PhaseInit.String() {
		t.Errorf("phases not sorted largest-first: %+v", top[0].Phases)
	}
}

func TestExplainExplicitAndMissingWindow(t *testing.T) {
	ex, err := Explain(testRun(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ex.AutoPicked || ex.Window != 2 || len(ex.Exemplars) != 0 {
		t.Errorf("explicit window 2: %+v", ex)
	}
	if _, err := Explain(testRun(), 99); err == nil {
		t.Error("missing window accepted")
	}
	if _, err := Explain(Run{}, -1); err == nil {
		t.Error("empty run accepted")
	}
}

func TestDiffIdenticalRunsClean(t *testing.T) {
	rep := Diff(testRun(), testRun(), 0)
	if rep.Regressions != 0 || len(rep.Windows) != 0 || len(rep.FlowTotals) != 0 {
		t.Fatalf("identical runs: %+v", rep)
	}
	if rep.Aligned != 3 || rep.WindowsA != 3 || rep.WindowsB != 3 {
		t.Errorf("alignment: %+v", rep)
	}
}

func TestDiffFlagsDirectionAwareRegressions(t *testing.T) {
	base := testRun()
	cand := testRun()
	cand.Timeline.Summary[2].P99Ms = 500    // latency up: regression
	cand.Timeline.Summary[0].Requests = 3   // throughput down: regression
	cand.Timeline.Summary[1].Retries = 0    // failures down: improvement
	cand.Timeline.Flows[0].Bytes += 1 << 20 // flow total moves
	rep := Diff(base, cand, 0)
	if rep.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2: %+v", rep.Regressions, rep.Windows)
	}
	for _, wd := range rep.Windows {
		for _, d := range wd.Deltas {
			switch {
			case wd.Window == 2 && d.Metric == "p99_ms":
				if !d.Regression {
					t.Error("p99 increase not flagged")
				}
			case wd.Window == 0 && d.Metric == "requests":
				if !d.Regression {
					t.Error("request drop not flagged")
				}
			case wd.Window == 1 && d.Metric == "retries":
				if d.Regression {
					t.Error("retry improvement flagged as regression")
				}
			}
		}
	}
	if len(rep.FlowTotals) != 1 || rep.FlowTotals[0].Flow != "offload" ||
		rep.FlowTotals[0].Delta != 1<<20 {
		t.Errorf("flow totals = %+v", rep.FlowTotals)
	}
}

// TestDiffFloorsSuppressNoise: worse-direction movement below a metric's
// absolute floor must stay quiet even when it is large relatively.
func TestDiffFloorsSuppressNoise(t *testing.T) {
	base := testRun()
	cand := testRun()
	cand.Timeline.Summary[0].Requests-- // -1 request: under the floor of 2
	cand.Timeline.Summary[2].P99Ms += 0.5
	rep := Diff(base, cand, 0)
	if rep.Regressions != 0 {
		t.Fatalf("noise flagged: %+v", rep.Windows)
	}
	// The movements still appear as deltas, just unflagged.
	if len(rep.Windows) != 2 {
		t.Errorf("windows with deltas = %d, want 2", len(rep.Windows))
	}
}

func TestRenderersCoverRun(t *testing.T) {
	ex, err := Explain(testRun(), -1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExplainText(&buf, ex); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"window 1", "fallback", "init", "web#1", "conservation"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain text missing %q:\n%s", want, text)
		}
	}

	buf.Reset()
	base, cand := testRun(), testRun()
	cand.Timeline.Summary[2].P99Ms = 500
	if err := WriteDiffText(&buf, Diff(base, cand, 0)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("diff text missing regression flag:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteExemplarsText(&buf, testRun().Exemplars); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "web") {
		t.Errorf("exemplars text missing tenant:\n%s", buf.String())
	}
}
