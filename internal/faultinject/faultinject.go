// Package faultinject generates deterministic, seed-driven fault plans for
// the remote-memory path: virtual-time schedules of link flaps, bandwidth
// degradation windows, pool-node crashes, memnode tier-full storms, and
// fault-latency spikes. A plan is built once before a run and injected
// beneath rmem/fastswap; the recovery machinery (bounded retry, fetch
// timeouts, local-swap fallback, cold re-init, degraded-mode governor
// clamps, cluster rescheduling) reacts to the plan's windows.
//
// Design constraints, matching the rest of the simulator:
//
//   - Deterministic. A plan is a pure function of its Config: window start
//     times and base severities are drawn from a seeded PRNG whose draw
//     sequence does not depend on Intensity, so sweeping intensity perturbs
//     window lengths and severities without reshuffling the schedule —
//     higher intensity strictly extends the outages of lower intensity.
//   - Zero-cost when off. Intensity 0 (or a nil plan) yields Empty() == true
//     and consumers drop the plan entirely, so a run without faults is
//     bit-identical to a build without this package.
//   - Virtual time only. Windows are simtime intervals; queries are pure
//     reads, safe to probe at future instants (retry backoff probing).
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Kind labels one fault mechanism.
type Kind uint8

// The fault kinds, each an independent window schedule.
const (
	// LinkFlap takes the pool link fully down: fetches and offloads fail
	// until the window closes.
	LinkFlap Kind = iota
	// LinkDegrade divides link bandwidth by the window's severity: transfers
	// stretch and the saturation surcharge bites earlier.
	LinkDegrade
	// PoolCrash takes the memory node down: remote pages are unreachable
	// and the cluster reschedules requests away until recovery.
	PoolCrash
	// TierStorm makes the memnode report zero admissible headroom (tiers
	// full): offloads are rejected, fetches still work.
	TierStorm
	// LatencySpike multiplies the per-fetch fault latency by the window's
	// severity (congested fabric, slow remote CPU).
	LatencySpike
	numKinds
)

var kindNames = [numKinds]string{
	LinkFlap:     "link-flap",
	LinkDegrade:  "link-degrade",
	PoolCrash:    "pool-crash",
	TierStorm:    "tier-storm",
	LatencySpike: "latency-spike",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Window is one scheduled fault interval [Start, End).
type Window struct {
	Kind  Kind         `json:"kind"`
	Start simtime.Time `json:"start"`
	End   simtime.Time `json:"end"`
	// Factor is the severity for LinkDegrade (bandwidth divisor > 1) and
	// LatencySpike (latency multiplier > 1); 0 for the binary kinds.
	Factor float64 `json:"factor,omitempty"`
}

// Config parameterizes plan generation.
type Config struct {
	// Horizon bounds the schedule; no window starts at or past it.
	Horizon time.Duration
	// Intensity in [0, 1] scales window durations and severities. 0 yields
	// an empty plan.
	Intensity float64
	// Seed drives the schedule. The same seed at different intensities
	// yields the same window start times.
	Seed int64

	// Per-kind mean cadence between window starts; zero selects defaults
	// (LinkFlap 90s, LinkDegrade 150s, PoolCrash 300s, TierStorm 180s,
	// LatencySpike 75s).
	Cadence [numKinds]time.Duration
	// Per-kind base window duration at full intensity; zero selects
	// defaults (LinkFlap 8s, LinkDegrade 40s, PoolCrash 25s, TierStorm 20s,
	// LatencySpike 20s).
	BaseDur [numKinds]time.Duration
	// Disable switches individual kinds off.
	Disable [numKinds]bool
}

var defaultCadence = [numKinds]time.Duration{
	LinkFlap:     90 * time.Second,
	LinkDegrade:  150 * time.Second,
	PoolCrash:    300 * time.Second,
	TierStorm:    180 * time.Second,
	LatencySpike: 75 * time.Second,
}

var defaultBaseDur = [numKinds]time.Duration{
	LinkFlap:     8 * time.Second,
	LinkDegrade:  40 * time.Second,
	PoolCrash:    25 * time.Second,
	TierStorm:    20 * time.Second,
	LatencySpike: 20 * time.Second,
}

// Plan is an immutable fault schedule. A nil *Plan is the empty plan.
type Plan struct {
	byKind [numKinds][]Window // sorted by Start, non-overlapping per kind
	all    []Window           // every window, sorted by (Start, Kind)
}

// New generates a plan from cfg. Intensity <= 0 or Horizon <= 0 yields an
// empty (but non-nil) plan; callers should then drop it via Empty().
func New(cfg Config) *Plan {
	p := &Plan{}
	if cfg.Horizon <= 0 || cfg.Intensity <= 0 {
		return p
	}
	intensity := cfg.Intensity
	if intensity > 1 {
		intensity = 1
	}
	for k := Kind(0); k < numKinds; k++ {
		// One PRNG stream per kind so disabling a kind or lengthening the
		// horizon never reshuffles the others.
		rng := rand.New(rand.NewSource(cfg.Seed*int64(numKinds) + int64(k) + 1))
		cadence := cfg.Cadence[k]
		if cadence <= 0 {
			cadence = defaultCadence[k]
		}
		base := cfg.BaseDur[k]
		if base <= 0 {
			base = defaultBaseDur[k]
		}
		var t simtime.Time
		for {
			// Draws happen every iteration regardless of intensity so the
			// schedule is intensity-invariant.
			gap := time.Duration((0.6 + 0.8*rng.Float64()) * float64(cadence))
			durDraw := 0.5 + rng.Float64()
			sevDraw := rng.Float64()
			t += gap
			if t >= cfg.Horizon {
				break
			}
			if cfg.Disable[k] {
				continue
			}
			dur := time.Duration(durDraw * intensity * float64(base))
			if dur <= 0 {
				continue
			}
			w := Window{Kind: k, Start: t, End: t + dur}
			switch k {
			case LinkDegrade:
				// Bandwidth divided by 2..6 at full intensity.
				w.Factor = 1 + (1+3*sevDraw)*intensity
			case LatencySpike:
				// Fault latency multiplied by 2..8 at full intensity.
				w.Factor = 1 + (1+6*sevDraw)*intensity
			}
			p.byKind[k] = append(p.byKind[k], w)
		}
		p.byKind[k] = mergeWindows(p.byKind[k])
		p.all = append(p.all, p.byKind[k]...)
	}
	sort.SliceStable(p.all, func(i, j int) bool {
		if p.all[i].Start != p.all[j].Start {
			return p.all[i].Start < p.all[j].Start
		}
		return p.all[i].Kind < p.all[j].Kind
	})
	return p
}

// FromWindows builds a plan from an explicit window list (tests, handcrafted
// scenarios). Windows may be unsorted; empty or inverted ones are dropped and
// per-kind overlaps are merged.
func FromWindows(ws []Window) *Plan {
	p := &Plan{}
	for _, w := range ws {
		if w.End <= w.Start || int(w.Kind) >= int(numKinds) {
			continue
		}
		p.byKind[w.Kind] = append(p.byKind[w.Kind], w)
	}
	for k := Kind(0); k < numKinds; k++ {
		sort.SliceStable(p.byKind[k], func(i, j int) bool {
			return p.byKind[k][i].Start < p.byKind[k][j].Start
		})
		p.byKind[k] = mergeWindows(p.byKind[k])
		p.all = append(p.all, p.byKind[k]...)
	}
	sort.SliceStable(p.all, func(i, j int) bool {
		if p.all[i].Start != p.all[j].Start {
			return p.all[i].Start < p.all[j].Start
		}
		return p.all[i].Kind < p.all[j].Kind
	})
	return p
}

// mergeWindows collapses overlapping/adjacent windows of one kind, keeping
// the stronger Factor over the merged span. Input must be sorted by Start.
func mergeWindows(ws []Window) []Window {
	if len(ws) < 2 {
		return ws
	}
	out := ws[:1]
	for _, w := range ws[1:] {
		last := &out[len(out)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			if w.Factor > last.Factor {
				last.Factor = w.Factor
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// Empty reports whether the plan schedules nothing. A nil plan is empty.
func (p *Plan) Empty() bool { return p == nil || len(p.all) == 0 }

// Windows returns every scheduled window sorted by start time.
func (p *Plan) Windows() []Window {
	if p == nil {
		return nil
	}
	return p.all
}

// active returns the kind's window covering now, if any. Windows per kind
// are sorted and non-overlapping, so a binary search suffices.
func (p *Plan) active(k Kind, now simtime.Time) (Window, bool) {
	ws := p.byKind[k]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].End > now })
	if i < len(ws) && ws[i].Start <= now {
		return ws[i], true
	}
	return Window{}, false
}

// LinkDown reports whether the link is flapped out at now.
func (p *Plan) LinkDown(now simtime.Time) bool {
	if p == nil {
		return false
	}
	_, ok := p.active(LinkFlap, now)
	return ok
}

// PoolDown reports whether the memory node is crashed at now.
func (p *Plan) PoolDown(now simtime.Time) bool {
	if p == nil {
		return false
	}
	_, ok := p.active(PoolCrash, now)
	return ok
}

// TierStorm reports whether the memnode's tiers are storming (zero
// admissible headroom) at now.
func (p *Plan) TierStorm(now simtime.Time) bool {
	if p == nil {
		return false
	}
	_, ok := p.active(TierStorm, now)
	return ok
}

// Unhealthy reports whether the remote path is unusable at now (link down or
// pool node crashed) — the degraded-mode predicate.
func (p *Plan) Unhealthy(now simtime.Time) bool {
	return p.LinkDown(now) || p.PoolDown(now)
}

// ActiveKinds counts the distinct fault kinds with a window in force at
// now — the timeline's "how faulted is this instant" gauge.
func (p *Plan) ActiveKinds(now simtime.Time) int {
	if p == nil {
		return 0
	}
	n := 0
	for k := Kind(0); k < numKinds; k++ {
		if _, ok := p.active(k, now); ok {
			n++
		}
	}
	return n
}

// LatencyFactor returns the fault-latency multiplier at now (>= 1).
func (p *Plan) LatencyFactor(now simtime.Time) float64 {
	if p == nil {
		return 1
	}
	if w, ok := p.active(LatencySpike, now); ok && w.Factor > 1 {
		return w.Factor
	}
	return 1
}

// BandwidthFactor returns the link-bandwidth multiplier at now (<= 1): 1
// when healthy, 1/Factor inside a degrade window.
func (p *Plan) BandwidthFactor(now simtime.Time) float64 {
	if p == nil {
		return 1
	}
	if w, ok := p.active(LinkDegrade, now); ok && w.Factor > 1 {
		return 1 / w.Factor
	}
	return 1
}

// NextTransition returns the earliest window boundary strictly after now, or
// (0, false) when the schedule is exhausted — for callers that want to probe
// recovery instants rather than poll.
func (p *Plan) NextTransition(now simtime.Time) (simtime.Time, bool) {
	if p == nil {
		return 0, false
	}
	best := simtime.Time(0)
	found := false
	for _, w := range p.all {
		for _, t := range [2]simtime.Time{w.Start, w.End} {
			if t > now && (!found || t < best) {
				best, found = t, true
			}
		}
		if w.Start > now && found && w.Start >= best {
			break
		}
	}
	return best, found
}

// UnhealthyFraction returns the fraction of [0, horizon) covered by the
// union of LinkFlap and PoolCrash windows — the share of the run the remote
// path was unusable.
func (p *Plan) UnhealthyFraction(horizon time.Duration) float64 {
	if p == nil || horizon <= 0 {
		return 0
	}
	merged := mergeWindows(sortedUnion(p.byKind[LinkFlap], p.byKind[PoolCrash]))
	var covered time.Duration
	for _, w := range merged {
		start, end := w.Start, w.End
		if end > horizon {
			end = horizon
		}
		if start >= horizon || end <= start {
			continue
		}
		covered += time.Duration(end - start)
	}
	return covered.Seconds() / horizon.Seconds()
}

// sortedUnion merges two Start-sorted window slices into one sorted slice.
func sortedUnion(a, b []Window) []Window {
	out := make([]Window, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i].Start <= b[j].Start) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return out
}
