package faultinject

import (
	"reflect"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

func TestEmptyPlan(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan must be empty")
	}
	if nilPlan.LinkDown(0) || nilPlan.PoolDown(0) || nilPlan.TierStorm(0) || nilPlan.Unhealthy(0) {
		t.Fatal("nil plan reported a fault")
	}
	if f := nilPlan.LatencyFactor(0); f != 1 {
		t.Fatalf("nil plan latency factor %v, want 1", f)
	}
	if f := nilPlan.BandwidthFactor(0); f != 1 {
		t.Fatalf("nil plan bandwidth factor %v, want 1", f)
	}
	for _, cfg := range []Config{
		{},
		{Horizon: time.Hour},                 // intensity 0
		{Intensity: 1},                       // horizon 0
		{Horizon: -time.Hour, Intensity: 1},  // negative horizon
		{Horizon: time.Hour, Intensity: -.5}, // negative intensity
	} {
		if p := New(cfg); !p.Empty() {
			t.Fatalf("New(%+v) not empty: %d windows", cfg, len(p.Windows()))
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Horizon: time.Hour, Intensity: 0.7, Seed: 42}
	a, b := New(cfg), New(cfg)
	if !reflect.DeepEqual(a.Windows(), b.Windows()) {
		t.Fatal("same config produced different plans")
	}
	if New(Config{Horizon: time.Hour, Intensity: 0.7, Seed: 43}).Empty() {
		t.Fatal("expected a non-empty plan at intensity 0.7 over an hour")
	}
}

// TestIntensityMonotone checks the superset property the resilience sweep
// relies on: the schedule (window start times) is intensity-invariant, and
// every lower-intensity window is contained in its higher-intensity
// counterpart with a no-stronger severity.
func TestIntensityMonotone(t *testing.T) {
	lo := New(Config{Horizon: 2 * time.Hour, Intensity: 0.3, Seed: 7})
	hi := New(Config{Horizon: 2 * time.Hour, Intensity: 0.9, Seed: 7})
	loWs, hiWs := lo.Windows(), hi.Windows()
	if len(loWs) == 0 || len(hiWs) == 0 {
		t.Fatal("expected windows at both intensities")
	}
	// Merging can collapse adjacent high-intensity windows, so match each
	// low window to a containing high window instead of zipping by index.
	for _, lw := range loWs {
		found := false
		for _, hw := range hiWs {
			if hw.Kind == lw.Kind && hw.Start <= lw.Start && hw.End >= lw.End {
				if lw.Factor > hw.Factor+1e-9 {
					t.Fatalf("low-intensity window %+v stronger than high %+v", lw, hw)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("low-intensity window %+v not covered at high intensity", lw)
		}
	}
	if lo.UnhealthyFraction(2*time.Hour) > hi.UnhealthyFraction(2*time.Hour) {
		t.Fatal("unhealthy fraction decreased with intensity")
	}
}

func TestQueriesAgainstHandcraftedWindows(t *testing.T) {
	sec := func(s int) simtime.Time { return simtime.Time(s) * simtime.Time(time.Second) }
	p := FromWindows([]Window{
		{Kind: LinkFlap, Start: sec(10), End: sec(20)},
		{Kind: PoolCrash, Start: sec(30), End: sec(40)},
		{Kind: TierStorm, Start: sec(50), End: sec(60)},
		{Kind: LinkDegrade, Start: sec(70), End: sec(80), Factor: 4},
		{Kind: LatencySpike, Start: sec(90), End: sec(100), Factor: 5},
		{Kind: LinkFlap, Start: sec(15), End: sec(25)}, // overlaps → merged
		{Kind: LinkFlap, Start: sec(5), End: sec(5)},   // empty → dropped
	})
	if p.Empty() {
		t.Fatal("plan unexpectedly empty")
	}
	cases := []struct {
		at        int
		linkDown  bool
		poolDown  bool
		storm     bool
		unhealthy bool
		bwf, latf float64
	}{
		{at: 0, bwf: 1, latf: 1},
		{at: 10, linkDown: true, unhealthy: true, bwf: 1, latf: 1},
		{at: 24, linkDown: true, unhealthy: true, bwf: 1, latf: 1}, // merged tail
		{at: 25, bwf: 1, latf: 1},                                  // End exclusive
		{at: 35, poolDown: true, unhealthy: true, bwf: 1, latf: 1},
		{at: 55, storm: true, bwf: 1, latf: 1},
		{at: 75, bwf: 0.25, latf: 1},
		{at: 95, bwf: 1, latf: 5},
		{at: 100, bwf: 1, latf: 1},
	}
	for _, c := range cases {
		now := sec(c.at)
		if got := p.LinkDown(now); got != c.linkDown {
			t.Errorf("t=%ds LinkDown=%v want %v", c.at, got, c.linkDown)
		}
		if got := p.PoolDown(now); got != c.poolDown {
			t.Errorf("t=%ds PoolDown=%v want %v", c.at, got, c.poolDown)
		}
		if got := p.TierStorm(now); got != c.storm {
			t.Errorf("t=%ds TierStorm=%v want %v", c.at, got, c.storm)
		}
		if got := p.Unhealthy(now); got != c.unhealthy {
			t.Errorf("t=%ds Unhealthy=%v want %v", c.at, got, c.unhealthy)
		}
		if got := p.BandwidthFactor(now); got != c.bwf {
			t.Errorf("t=%ds BandwidthFactor=%v want %v", c.at, got, c.bwf)
		}
		if got := p.LatencyFactor(now); got != c.latf {
			t.Errorf("t=%ds LatencyFactor=%v want %v", c.at, got, c.latf)
		}
	}
	// Flap [10,25) + crash [30,40) = 25s of a 100s horizon.
	if got := p.UnhealthyFraction(100 * time.Second); got != 0.25 {
		t.Fatalf("UnhealthyFraction=%v want 0.25", got)
	}
}

func TestNextTransition(t *testing.T) {
	sec := func(s int) simtime.Time { return simtime.Time(s) * simtime.Time(time.Second) }
	p := FromWindows([]Window{
		{Kind: LinkFlap, Start: sec(10), End: sec(20)},
		{Kind: PoolCrash, Start: sec(15), End: sec(40)},
	})
	cases := []struct {
		at, want int
		ok       bool
	}{
		{at: 0, want: 10, ok: true},
		{at: 10, want: 15, ok: true},
		{at: 15, want: 20, ok: true},
		{at: 20, want: 40, ok: true},
		{at: 40, ok: false},
	}
	for _, c := range cases {
		got, ok := p.NextTransition(sec(c.at))
		if ok != c.ok || (ok && got != sec(c.want)) {
			t.Errorf("NextTransition(%ds) = (%v,%v) want (%ds,%v)", c.at, got, ok, c.want, c.ok)
		}
	}
}

func TestDisableKinds(t *testing.T) {
	cfg := Config{Horizon: time.Hour, Intensity: 1, Seed: 3}
	for k := Kind(0); k < numKinds; k++ {
		cfg.Disable[k] = true
	}
	if p := New(cfg); !p.Empty() {
		t.Fatalf("all kinds disabled but got %d windows", len(p.Windows()))
	}
	// Disabling one kind must not reshuffle the others (per-kind streams).
	full := New(Config{Horizon: time.Hour, Intensity: 1, Seed: 3})
	var noFlap Config = Config{Horizon: time.Hour, Intensity: 1, Seed: 3}
	noFlap.Disable[LinkFlap] = true
	partial := New(noFlap)
	for k := Kind(1); k < numKinds; k++ {
		if !reflect.DeepEqual(full.byKind[k], partial.byKind[k]) {
			t.Fatalf("disabling LinkFlap changed %v windows", k)
		}
	}
	if len(partial.byKind[LinkFlap]) != 0 {
		t.Fatal("disabled kind still has windows")
	}
}

// checkPlanInvariants asserts structural properties every plan must satisfy.
func checkPlanInvariants(t *testing.T, p *Plan, horizon time.Duration) {
	t.Helper()
	for k := Kind(0); k < numKinds; k++ {
		ws := p.byKind[k]
		for i, w := range ws {
			if w.End <= w.Start {
				t.Fatalf("%v window %d inverted: %+v", k, i, w)
			}
			if w.Start < 0 || (horizon > 0 && w.Start >= simtime.Time(horizon)) {
				t.Fatalf("%v window %d starts outside horizon: %+v", k, i, w)
			}
			if i > 0 && w.Start <= ws[i-1].End {
				t.Fatalf("%v windows %d,%d overlap after merge: %+v %+v", k, i-1, i, ws[i-1], w)
			}
			switch k {
			case LinkDegrade, LatencySpike:
				if w.Factor < 1 {
					t.Fatalf("%v window %d factor %v < 1", k, i, w.Factor)
				}
			default:
				if w.Factor != 0 {
					t.Fatalf("%v window %d has factor %v", k, i, w.Factor)
				}
			}
			// Queries must agree with the window list.
			mid := w.Start + (w.End-w.Start)/2
			switch k {
			case LinkFlap:
				if !p.LinkDown(mid) {
					t.Fatalf("LinkDown false inside %+v", w)
				}
			case PoolCrash:
				if !p.PoolDown(mid) {
					t.Fatalf("PoolDown false inside %+v", w)
				}
			case TierStorm:
				if !p.TierStorm(mid) {
					t.Fatalf("TierStorm false inside %+v", w)
				}
			case LinkDegrade:
				if p.BandwidthFactor(mid) >= 1 {
					t.Fatalf("BandwidthFactor >= 1 inside %+v", w)
				}
			case LatencySpike:
				if p.LatencyFactor(mid) <= 1 {
					t.Fatalf("LatencyFactor <= 1 inside %+v", w)
				}
			}
		}
	}
	if f := p.UnhealthyFraction(horizon); f < 0 || f > 1 {
		t.Fatalf("UnhealthyFraction %v outside [0,1]", f)
	}
}

// FuzzPlan generates plans from arbitrary configs and checks structural
// invariants plus determinism and the intensity-superset property.
func FuzzPlan(f *testing.F) {
	f.Add(int64(1), int64(3600), 0.5)
	f.Add(int64(42), int64(600), 1.0)
	f.Add(int64(-9), int64(120), 0.01)
	f.Fuzz(func(t *testing.T, seed, horizonSec int64, intensity float64) {
		if horizonSec < 0 {
			horizonSec = -horizonSec
		}
		horizonSec %= 48 * 3600 // cap generation work
		if intensity != intensity || intensity > 1e6 || intensity < -1e6 {
			intensity = 1 // NaN / absurd magnitudes: clamp to a valid probe
		}
		horizon := time.Duration(horizonSec) * time.Second
		cfg := Config{Horizon: horizon, Intensity: intensity, Seed: seed}
		p := New(cfg)
		checkPlanInvariants(t, p, horizon)
		if !reflect.DeepEqual(p.Windows(), New(cfg).Windows()) {
			t.Fatal("plan not deterministic")
		}
		if intensity > 0 && intensity <= 1 {
			half := New(Config{Horizon: horizon, Intensity: intensity / 2, Seed: seed})
			checkPlanInvariants(t, half, horizon)
			if half.UnhealthyFraction(horizon) > p.UnhealthyFraction(horizon)+1e-12 {
				t.Fatal("unhealthy fraction not monotone in intensity")
			}
		}
	})
}
