package faas

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/sharedmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/workload"
)

// newWorkflowRig builds a platform + shared-region manager + workflow
// engine for one built-in workflow.
func newWorkflowRig(t *testing.T, wfName string, statePassing bool, reinitBW float64, plan *faultinject.Plan) (*simtime.Engine, *Platform, *sharedmem.Manager, *WorkflowEngine) {
	t.Helper()
	e := simtime.NewEngine()
	p := New(e, Config{
		KeepAliveTimeout: 30 * time.Second,
		Seed:             1,
		Pool:             rmem.Config{Node: &memnode.Config{}, Faults: plan},
	}, policy.NoOffload{})
	m := sharedmem.New(sharedmem.Config{
		PageSize: int64(p.Config().PageSize),
		Pool:     p.Pool(),
	})
	wf, err := workload.WorkflowByName(wfName)
	if err != nil {
		t.Fatal(err)
	}
	we, err := NewWorkflowEngine(WorkflowConfig{
		Engine:          e,
		Shared:          m,
		PageSize:        int64(p.Config().PageSize),
		Register:        func(id string, prof *workload.Profile) { p.Register(id, prof) },
		Invoke:          p.InvokeStage,
		StatePassing:    statePassing,
		ReinitBandwidth: reinitBW,
	}, wf)
	if err != nil {
		t.Fatal(err)
	}
	return e, p, m, we
}

func runWorkflowOnce(t *testing.T, e *simtime.Engine, we *WorkflowEngine) time.Duration {
	t.Helper()
	var lat time.Duration
	ran := false
	we.Run(func(start, end simtime.Time) {
		lat = time.Duration(end - start)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("workflow run never completed")
	}
	return lat
}

func TestWorkflowPipelineCompletes(t *testing.T) {
	e, p, m, we := newWorkflowRig(t, "pipeline", true, 1e9, nil)
	lat := runWorkflowOnce(t, e, we)
	st := we.Stats()
	if st.Completed != 1 || st.Runs != 1 {
		t.Fatalf("completed=%d runs=%d, want 1/1", st.Completed, st.Runs)
	}
	if st.Invocations != we.Workflow().Invocations() {
		t.Fatalf("invocations=%d, want %d", st.Invocations, we.Workflow().Invocations())
	}
	if st.Replays != 0 || st.Reinits != 0 {
		t.Fatalf("replays=%d reinits=%d on a healthy pool", st.Replays, st.Reinits)
	}
	if st.StateInTime <= 0 || st.StateOutTime <= 0 {
		t.Fatalf("state time not accounted: in=%v out=%v", st.StateInTime, st.StateOutTime)
	}
	if lat <= 0 {
		t.Fatalf("run latency %v", lat)
	}
	// Every region drained; the pool holds only what live containers
	// offloaded (none, under NoOffload).
	if !m.Drained() {
		t.Fatal("regions not drained at run end")
	}
	if used := p.Pool().Used(); used != 0 {
		t.Fatalf("pool used %d after drain", used)
	}
	if err := p.Pool().Node().CheckInvariants(); err != nil {
		t.Fatalf("memnode invariants: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("manager invariants: %v", err)
	}
	// Every stage completed exactly one request (pipeline has no replicas).
	for _, f := range p.Functions() {
		if f.Stats().Requests != 1 {
			t.Fatalf("%s completed %d requests, want 1", f.ID(), f.Stats().Requests)
		}
	}
}

func TestWorkflowPoolBeatsReinit(t *testing.T) {
	// Intermediate state through the pool's 56 Gbps link vs re-derivation
	// at a 100 MB/s storage path: pool-backed passing must win on the
	// chained shapes.
	for _, wfName := range []string{"pipeline", "fanout"} {
		e1, _, _, we1 := newWorkflowRig(t, wfName, true, 100e6, nil)
		poolLat := runWorkflowOnce(t, e1, we1)
		e2, _, _, we2 := newWorkflowRig(t, wfName, false, 100e6, nil)
		reinitLat := runWorkflowOnce(t, e2, we2)
		if poolLat >= reinitLat {
			t.Fatalf("%s: pool %v >= reinit %v", wfName, poolLat, reinitLat)
		}
		if we2.Stats().Reinits == 0 {
			t.Fatalf("%s: baseline did not count reinits", wfName)
		}
	}
}

func TestWorkflowFanoutSharesOneCopy(t *testing.T) {
	e, _, m, we := newWorkflowRig(t, "fanout", true, 1e9, nil)
	runWorkflowOnce(t, e, we)
	st := m.Stats()
	// 4 fan replicas map the source region, the join maps the fan region:
	// 5 mappings over 2 created regions, no private copies.
	if st.Created != 2 || st.Maps != 5 || st.Unmaps != 5 {
		t.Fatalf("manager stats = %+v", st)
	}
	if st.CowBreaks != 0 {
		t.Fatalf("unexpected CoW breaks: %+v", st)
	}
	if !m.Drained() {
		t.Fatal("regions not drained")
	}
}

func TestWorkflowWebsessionCowBreaks(t *testing.T) {
	e, p, m, we := newWorkflowRig(t, "websession", true, 1e9, nil)
	runWorkflowOnce(t, e, we)
	st := we.Stats()
	if st.CowBreaks != 4 {
		t.Fatalf("cow breaks = %d, want 4 (one per handler replica)", st.CowBreaks)
	}
	ms := m.Stats()
	if ms.CowBreaks != 4 || ms.CowPages == 0 {
		t.Fatalf("manager cow stats = %+v", ms)
	}
	if !m.Drained() {
		t.Fatal("regions (and CoW clones) not drained")
	}
	if used := p.Pool().Used(); used != 0 {
		t.Fatalf("pool used %d after drain", used)
	}
}

func TestWorkflowFaultReplay(t *testing.T) {
	// Pool crashed for the whole run: regions cannot be produced, every
	// consumer replays its inputs locally, and the run still completes
	// with nothing leaked.
	plan := faultinject.FromWindows([]faultinject.Window{
		{Kind: faultinject.PoolCrash, Start: 0, End: simtime.Time(time.Hour)},
	})
	e, p, m, we := newWorkflowRig(t, "pipeline", true, 1e9, plan)
	runWorkflowOnce(t, e, we)
	st := we.Stats()
	if st.Completed != 1 {
		t.Fatalf("completed=%d under pool crash", st.Completed)
	}
	if st.Replays == 0 {
		t.Fatal("no replays counted with the pool down")
	}
	if !m.Drained() {
		t.Fatal("regions leaked under fault plan")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("manager invariants: %v", err)
	}
	if err := p.Pool().Node().CheckInvariants(); err != nil {
		t.Fatalf("memnode invariants: %v", err)
	}
}

func TestWorkflowStateSpansReconcile(t *testing.T) {
	rec := span.NewRecorder(64)
	e := simtime.NewEngine()
	p := New(e, Config{
		KeepAliveTimeout: 30 * time.Second,
		Seed:             1,
		Pool:             rmem.Config{Node: &memnode.Config{}},
		Spans:            rec,
	}, policy.NoOffload{})
	m := sharedmem.New(sharedmem.Config{PageSize: int64(p.Config().PageSize), Pool: p.Pool()})
	wf, err := workload.WorkflowByName("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	we, err := NewWorkflowEngine(WorkflowConfig{
		Engine:   e,
		Shared:   m,
		PageSize: int64(p.Config().PageSize),
		Register: func(id string, prof *workload.Profile) { p.Register(id, prof) },
		Invoke:   p.InvokeStage, StatePassing: true, ReinitBandwidth: 1e9,
	}, wf)
	if err != nil {
		t.Fatal(err)
	}
	runWorkflowOnce(t, e, we)
	invs := rec.Invocations()
	if len(invs) != 4 {
		t.Fatalf("recorded %d invocations, want 4", len(invs))
	}
	var ins, outs int
	for _, inv := range invs {
		reconcileSpan(t, inv)
		var walk func(s span.Span)
		walk = func(s span.Span) {
			switch s.Phase {
			case span.PhaseStateIn:
				ins++
				if s.Pages <= 0 {
					t.Fatalf("state-in span without bytes: %+v", s)
				}
			case span.PhaseStateOut:
				outs++
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(inv.Root)
	}
	// Three stages consume state, three produce it (serve is a sink with no
	// output region).
	if ins != 3 || outs != 3 {
		t.Fatalf("state spans: in=%d out=%d, want 3/3", ins, outs)
	}
}
