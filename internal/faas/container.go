package faas

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"time"

	"github.com/faasmem/faasmem/internal/cgroup"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/mglru"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/workload"
)

// Container is one serverless container instance. It implements policy.View.
type Container struct {
	id    string
	owner string // rack-unique ID for pool-side (memnode) accounting
	fn    *Function
	p     *Platform

	space *pagemem.Space
	lru   *mglru.LRU
	cg    *cgroup.Group
	psi   *cgroup.PSI
	pol   policy.ContainerPolicy
	rng   *rand.Rand

	runtimeRange pagemem.Range
	initRange    pagemem.Range
	execRange    pagemem.Range
	runtimeGen   mglru.GenID
	initGen      mglru.GenID

	requests  int
	idle      bool
	started   simtime.Time // current request's execution start
	curKind   StartKind    // how the current request found this container
	curFaults int
	curRA     int // readahead pages recalled with the current faults
	curStall  time.Duration
	// curQueueing and curBacklogBytes decompose curStall for attribution:
	// the link-congestion share and the bulk bytes queued when faulting.
	curQueueing     time.Duration
	curBacklogBytes int64
	// curRetryWait and curFallbackLat decompose recovery time inside
	// curStall: backoff spent retrying fetches, and local-swap read time
	// after a timeout. curResched marks a cluster-redirected request;
	// curReinit marks one replayed through a cold re-init.
	curRetryWait   time.Duration
	curFallbackLat time.Duration
	curResched     bool
	curReinit      bool
	// curHooks carries the current request's workflow state-passing
	// callbacks (nil outside workflows); curStateIn/curStateOut and their
	// byte counts record what the hooks priced, for span attribution.
	curHooks         *StageHooks
	curStateIn       time.Duration
	curStateOut      time.Duration
	curStateInBytes  int64
	curStateOutBytes int64
	idleSince        simtime.Time
	launched         simtime.Time
	loadedAt         simtime.Time // when the runtime finished loading
	recycleEv        simtime.Handle
	dead             bool
	// offCand/offMoved are per-container scratch for OffloadPages victim
	// selection, reused across calls to keep steady-state offloads
	// allocation-free.
	offCand  []pagemem.PageID
	offMoved []pagemem.PageID
	// wbCand is scratch for write-break recall page selection.
	wbCand []pagemem.PageID
}

// launch creates a container; memory arrives as lifecycle stages complete.
func (p *Platform) launch(f *Function) *Container {
	p.containers++
	p.liveTotal++
	f.live++
	now := p.engine.Now()
	p.addLive(now, 1)
	c := &Container{
		id:       fmt.Sprintf("%s#%d", f.id, p.containers),
		fn:       f,
		p:        p,
		space:    pagemem.NewSpace(p.cfg.PageSize),
		cg:       p.nodeCG.NewChild(fmt.Sprintf("%s#%d", f.id, p.containers), now),
		psi:      cgroup.NewPSI(now),
		rng:      rand.New(rand.NewSource(p.rng.Int63())),
		launched: now,
	}
	c.owner = c.id
	if p.cfg.NodeID != "" {
		c.owner = p.cfg.NodeID + "/" + c.id
	}
	c.lru = mglru.New(c.space)
	p.met.launches.Inc()
	p.met.live.Set(int64(p.liveTotal))
	p.tel.Tracer.Record(telemetry.Event{
		At: now, Kind: telemetry.KindContainerLaunch, Actor: c.id, Fn: f.id,
	})
	c.pol = p.pol.Attach(p.engine, c)
	return c
}

// runtimeLoaded materializes the runtime segment and inserts the
// Runtime-Init time barrier.
func (c *Container) runtimeLoaded(now simtime.Time) {
	c.space.AllocBytes(pagemem.SegRuntime, c.fn.profile.RuntimeBytes)
	c.runtimeGen, c.runtimeRange = c.lru.InsertBarrier()
	bytes := c.space.BytesOf(c.runtimeRange.Len())
	c.cg.Charge(now, bytes)
	c.loadedAt = now
	c.p.tel.Tracer.Record(telemetry.Event{
		At: c.launched, Dur: time.Duration(now - c.launched),
		Kind: telemetry.KindRuntimeLoaded, Actor: c.id, Fn: c.fn.id,
		Stage: telemetry.StageRuntime, Value: int64(c.runtimeRange.Len()),
	})
	c.p.tel.Tracer.Record(telemetry.Event{
		At: now, Kind: telemetry.KindBarrierInsert, Actor: c.id, Fn: c.fn.id,
		Stage: telemetry.StageRuntime, Value: int64(c.runtimeRange.Len()),
		Aux: int64(c.runtimeGen),
	})
	c.p.syncMemGauges()
	c.p.enforceMemoryLimit(now)
	c.pol.RuntimeLoaded(c.p.engine)
}

// initDone materializes the init segment, inserts the Init-Execution time
// barrier, and pre-allocates the (reused) exec-segment slots.
func (c *Container) initDone(now simtime.Time) {
	c.space.AllocBytes(pagemem.SegInit, c.fn.profile.InitBytes)
	c.initGen, c.initRange = c.lru.InsertBarrier()
	initBytes := c.space.BytesOf(c.initRange.Len())
	c.cg.Charge(now, initBytes)
	c.p.tel.Tracer.Record(telemetry.Event{
		At: c.loadedAt, Dur: time.Duration(now - c.loadedAt),
		Kind: telemetry.KindInitDone, Actor: c.id, Fn: c.fn.id,
		Stage: telemetry.StageInit, Value: int64(c.initRange.Len()),
	})
	c.p.tel.Tracer.Record(telemetry.Event{
		At: now, Kind: telemetry.KindBarrierInsert, Actor: c.id, Fn: c.fn.id,
		Stage: telemetry.StageInit, Value: int64(c.initRange.Len()),
		Aux: int64(c.initGen),
	})
	c.p.syncMemGauges()
	c.p.enforceMemoryLimit(now)

	// Exec slots exist from here on but stay Free between requests; FaaSMem
	// does not monitor them (paper §4), hence SkipNew.
	c.space.AllocBytes(pagemem.SegExec, c.fn.profile.ExecBytes)
	c.execRange = c.lru.SkipNew()
	c.space.FreeRange(c.execRange)

	c.pol.InitDone(c.p.engine)
}

// wake removes the container from keep-alive when a request arrives.
func (c *Container) wake() {
	c.idle = false
	c.p.engine.Cancel(c.recycleEv)
	c.recycleEv = simtime.Handle{}
}

// execute runs one request to completion. arrival is when the request
// entered the system (before any cold-start work), so recorded end-to-end
// latency includes cold-start time.
func (c *Container) execute(arrival simtime.Time) {
	if c.p.pool.FaultsPlanned() {
		// The fault-injected path pre-counts the remote set and routes the
		// fetch through the retry/recovery machinery. It is a separate
		// function so this fault-free path stays byte-for-byte unchanged.
		c.executeFaulty(arrival)
		return
	}
	e := c.p.engine
	now := e.Now()
	c.started = now
	prof := c.fn.profile

	// Exec-segment temporaries come to life.
	c.space.ReuseRange(c.execRange)
	execBytes := c.space.BytesOf(c.execRange.Len())
	c.cg.Charge(now, execBytes)
	c.p.enforceMemoryLimit(now)

	c.pol.RequestStart(e)

	// Replay the request's page accesses.
	touches := prof.RequestTouches(c.rng)
	runtimeFaults, runtimeRA := c.touchSpans(c.runtimeRange, touches.Runtime)
	initFaults, initRA := c.touchSpans(c.initRange, touches.Init)
	c.touchSpans(c.execRange, []workload.Span{{Start: 0, End: execBytes}})
	faults := runtimeFaults + initFaults
	readahead := runtimeRA + initRA
	c.fn.stats.RuntimeFaultPages += int64(runtimeFaults)
	c.fn.stats.InitFaultPages += int64(initFaults)

	// Remote faults stall the request and recall pages to local memory;
	// readahead pages ride along on the cluster reads without adding fault
	// rounds to the request's critical path.
	var faultLat time.Duration
	var stall rmem.FaultStall
	if faults+readahead > 0 {
		pageBytes := int64(c.space.PageSize())
		var fc rmem.ClassCounts
		fc[memnode.ClassRuntime] = runtimeFaults
		fc[memnode.ClassInit] = initFaults
		stall = c.p.pool.FaultBatchOwner(now, c.owner, c.fn.id, fc, pageBytes)
		faultLat = stall.Total
		if readahead > 0 {
			var ra rmem.ClassCounts
			ra[memnode.ClassRuntime] = runtimeRA
			ra[memnode.ClassInit] = initRA
			c.p.pool.RecallDescribed(now, c.owner, c.fn.id, ra, pageBytes)
			c.p.swap.NoteClusterRead(readahead)
		}
		recalled := int64(faults+readahead) * pageBytes
		c.cg.Recall(now, recalled)
		c.p.syncMemGauges()
		c.p.enforceMemoryLimit(now)
		c.p.swap.Release(faults + readahead)
		c.fn.stats.FaultPages += int64(faults)
		c.p.met.faultPages.Add(int64(faults))
		c.p.met.readaheadPages.Add(int64(readahead))
		if runtimeFaults+runtimeRA > 0 {
			c.p.tel.Tracer.Record(telemetry.Event{
				At: now, Dur: faultLat, Kind: telemetry.KindPageFault,
				Actor: c.id, Fn: c.fn.id, Stage: telemetry.StageRuntime,
				Value: int64(runtimeFaults), Aux: int64(runtimeRA),
			})
		}
		if initFaults+initRA > 0 {
			c.p.tel.Tracer.Record(telemetry.Event{
				At: now, Dur: faultLat, Kind: telemetry.KindPageFault,
				Actor: c.id, Fn: c.fn.id, Stage: telemetry.StageInit,
				Value: int64(initFaults), Aux: int64(initRA),
			})
		}
	}

	if wb := c.priceRuntimeWrites(now); wb.Total > 0 {
		// A CoW unmerge is a remote-memory stall (master fetch plus private
		// writeback): fold it into the fault stall so latency, spans, PSI,
		// and attribution account it the same way.
		faultLat += wb.Total
		stall.Queueing += wb.Queueing
	}

	c.curFaults = faults
	c.curRA = readahead
	c.curStall = faultLat
	c.curQueueing = stall.Queueing
	c.curBacklogBytes = stall.BacklogBytes
	stateLat := c.priceStateHooks(now)
	latency := prof.ExecTime + faultLat + stateLat
	if faultLat > 0 {
		// PSI accounts the stall at its completion time, like the kernel.
		c.psi.AddStall(now+simtime.Time(latency), faultLat)
	}

	e.After(latency, func(e *simtime.Engine) {
		c.finishRequest(arrival)
	})
}

// priceRuntimeWrites models the request's write-hot runtime accesses: the
// profile's RuntimeWriteRatio fraction of the still-offloaded runtime
// segment is dirtied, breaking any pool-side merge-domain sharing
// copy-on-write (rmem.WriteBreakOwner). Privatized pages stay remote under
// a private copy; pages the node could not re-home are recalled into local
// memory like faulted pages. While the remote path is down the write is
// treated as locally buffered and costs nothing — a later request breaks
// the share. Zero ratio (the default) makes this a no-op.
func (c *Container) priceRuntimeWrites(now simtime.Time) rmem.FaultStall {
	ratio := c.fn.profile.RuntimeWriteRatio
	if ratio <= 0 {
		return rmem.FaultStall{}
	}
	held := c.p.pool.OwnerClassPages(c.owner, c.fn.id, memnode.ClassRuntime)
	if held <= 0 {
		return rmem.FaultStall{}
	}
	dirty := int(math.Ceil(ratio * float64(held)))
	if dirty > held {
		dirty = held
	}
	pageBytes := int64(c.space.PageSize())
	out, err := c.p.pool.WriteBreakOwner(now, c.owner, c.fn.id, memnode.ClassRuntime, dirty, pageBytes)
	if err != nil || out.Pages+out.Recalled == 0 {
		return rmem.FaultStall{}
	}
	if out.Recalled > 0 {
		// The node had no room for the private copy: those pages come home.
		// Flip that many remote runtime pages local (they were just
		// written, so they land hot) and release their swap slots.
		c.wbCand = c.space.CollectInState(c.wbCand[:0], c.runtimeRange, pagemem.Remote, out.Recalled)
		for _, id := range c.wbCand {
			c.space.SetState(id, pagemem.Hot)
		}
		c.cg.Recall(now, int64(out.Recalled)*pageBytes)
		c.p.syncMemGauges()
		c.p.enforceMemoryLimit(now)
		c.p.swap.Release(out.Recalled)
	}
	c.fn.stats.WriteBreakPages += int64(out.Pages)
	c.fn.stats.WriteBreakRecallPages += int64(out.Recalled)
	c.p.met.writeBreaks.Add(int64(out.Pages))
	if out.Stall.Total > 0 {
		c.p.tel.Tracer.Record(telemetry.Event{
			At: now, Dur: out.Stall.Total, Kind: telemetry.KindPageFault,
			Actor: c.id, Fn: c.fn.id, Stage: telemetry.StageRuntime,
			Value: int64(out.Pages), Aux: int64(out.Recalled),
		})
	}
	return out.Stall
}

// priceStateHooks runs the request's workflow state-passing hooks at
// execution start and returns the critical-path latency they add. State-out
// is priced here too — the stage streams its output region while it
// computes, so the produce cost overlaps execution and downstream stages
// become ready at this stage's completion.
func (c *Container) priceStateHooks(now simtime.Time) time.Duration {
	h := c.curHooks
	if h == nil {
		return 0
	}
	if h.StateIn != nil {
		c.curStateIn, c.curStateInBytes = h.StateIn(now)
	}
	if h.StateOut != nil {
		c.curStateOut, c.curStateOutBytes = h.StateOut(now)
	}
	return c.curStateIn + c.curStateOut
}

// touchSpans touches the pages covered by byte spans relative to seg's
// start, promoting re-accessed pages to the hot pool and counting remote
// faults. Pages recalled by a fault also land in the hot pool (paper §4:
// "FaaSMem fetches the remote pages once accessed", recalls go to the hot
// page pool). With swap readahead enabled, each fault also pulls in up to
// the readahead window of virtually-contiguous remote neighbours, which are
// recalled (counted separately) without their own fault rounds.
func (c *Container) touchSpans(seg pagemem.Range, spans []workload.Span) (faults, readahead int) {
	ps := int64(c.space.PageSize())
	window := c.p.swap.Readahead()
	for _, sp := range spans {
		start := seg.Start + pagemem.PageID(sp.Start/ps)
		end := seg.Start + pagemem.PageID((sp.End+ps-1)/ps)
		if end > seg.End {
			end = seg.End
		}
		if end <= start {
			continue
		}
		f, ra := c.touchRange(seg, start, end, window)
		faults += f
		readahead += ra
	}
	return faults, readahead
}

// touchRange touches pages [start, end) word-at-a-time. Hot pages only need
// their access bit, which TouchRange sets in bulk; words holding only
// Inactive pages transition to Hot with masked word operations; only words
// containing Remote pages fall back to the per-page fault + readahead walk.
// The per-page recheck keeps the walk equivalent to the sequential loop:
// readahead only converts pages at higher IDs, so a fresh state read per
// word (and per page on the slow path) observes exactly what a sequential
// walk would.
func (c *Container) touchRange(seg pagemem.Range, start, end pagemem.PageID, window int) (faults, readahead int) {
	sp := c.space
	sp.TouchRange(pagemem.Range{Start: start, End: end})
	w0, w1 := int(start)/64, (int(end)+63)/64
	for w := w0; w < w1; w++ {
		mask := ^uint64(0)
		if base := w * 64; base < int(start) {
			mask &= ^uint64(0) << (uint(start) % 64)
		}
		if int(end) < (w+1)*64 {
			mask &= ^uint64(0) >> (64 - uint(end)%64)
		}
		rem := sp.StateWord(w, pagemem.Remote) & mask
		inact := sp.StateWord(w, pagemem.Inactive) & mask
		if rem == 0 {
			if inact != 0 {
				sp.TransitionMasked(w, inact, pagemem.Inactive, pagemem.Hot)
				c.lru.PromoteMasked(pagemem.PageID(w*64), inact)
			}
			continue
		}
		for word := rem | inact; word != 0; {
			id := pagemem.PageID(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
			switch sp.State(id) {
			case pagemem.Remote:
				faults++
				sp.SetState(id, pagemem.Hot)
				c.lru.Promote(id)
				for ra := 0; ra < window; ra++ {
					next := id + 1 + pagemem.PageID(ra)
					if next >= seg.End || sp.State(next) != pagemem.Remote {
						break
					}
					readahead++
					sp.SetState(next, pagemem.Hot)
					c.lru.Promote(next)
				}
			case pagemem.Inactive:
				sp.SetState(id, pagemem.Hot)
				c.lru.Promote(id)
			}
		}
	}
	return faults, readahead
}

// finishRequest tears down the exec segment, records stats, runs policy
// hooks and puts the container into keep-alive.
func (c *Container) finishRequest(arrival simtime.Time) {
	e := c.p.engine
	now := e.Now()

	// Exec temporaries are freed immediately on completion (paper §3.3).
	freed := c.space.BytesOf(c.execRange.Len() - c.space.CountInRange(c.execRange, pagemem.Free))
	c.space.FreeRange(c.execRange)
	c.cg.Uncharge(now, freed)

	c.requests++
	c.fn.stats.Requests++
	// Completion classification, precedence reinit > rescheduled > normal: a
	// rescheduled request that then needed a re-init counts once, as re-init.
	switch {
	case c.curReinit:
		c.fn.stats.DoneReinit++
	case c.curResched:
		c.fn.stats.DoneRescheduled++
	default:
		c.fn.stats.DoneNormal++
	}
	c.p.met.requests.Inc()
	c.p.tel.Tracer.Record(telemetry.Event{
		At: c.started, Dur: time.Duration(now - c.started),
		Kind: telemetry.KindRequest, Actor: c.id, Fn: c.fn.id,
		Value: int64(c.curFaults), Aux: int64(c.curKind),
	})
	c.p.syncMemGauges()
	c.fn.stats.Latency.AddDuration(now - arrival)
	c.fn.stats.ExecLatency.AddDuration(now - c.started)
	c.p.reqLog.Add(RequestRecord{
		Function:    c.fn.id,
		Container:   c.id,
		Kind:        c.curKind,
		Arrival:     arrival,
		Start:       c.started,
		Latency:     now - arrival,
		ExecLatency: now - c.started,
		FaultPages:  c.curFaults,
		StallTime:   c.curStall,
	})
	if c.p.spans.Enabled() || c.p.exm.Enabled() {
		// Build the span tree once and feed whichever sinks are on: the
		// exemplar recorder works standalone so drill-down does not require
		// retaining every request's spans.
		inv := c.buildInvocation(arrival, now)
		if c.p.spans.Enabled() {
			c.p.spans.Record(inv)
		}
		c.p.exm.Record(now, c.p.tlNode, c.fn.id, time.Duration(now-arrival), inv)
	}
	c.p.met.reqLatency.Observe((now - arrival).Seconds())
	if c.p.tl.Enabled() {
		d := timeseries.Dims{Node: c.p.tlNode, Tenant: c.fn.id}
		c.p.tl.AddCounter(now, timeseries.SeriesRequests, d, 1)
		if c.curKind == ColdStart {
			c.p.tl.AddCounter(now, timeseries.SeriesColdStarts, d, 1)
		}
		c.p.tl.ObserveLatency(now, timeseries.SeriesRequestLatency, d, now-arrival)
	}
	// Recovery attribution is per-request; clear it before any queued
	// follow-on request reuses this container.
	c.curReinit, c.curResched = false, false
	c.curRetryWait, c.curFallbackLat = 0, 0
	// The workflow Done hook fires once per completed request, then the
	// hooks clear before any queued follow-on request reuses the container.
	if h := c.curHooks; h != nil {
		c.curHooks = nil
		c.curStateIn, c.curStateOut = 0, 0
		c.curStateInBytes, c.curStateOutBytes = 0, 0
		if h.Done != nil {
			h.Done(e, now)
		}
	}

	c.pol.RequestEnd(e)

	// Serve queued work before idling: a congested function keeps its
	// containers busy back to back.
	if len(c.fn.queue) > 0 {
		q := c.fn.queue[0]
		c.fn.queue = c.fn.queue[1:]
		c.fn.stats.WarmStarts++
		c.p.met.warmStarts.Inc()
		c.curKind = QueuedStart
		c.curHooks = q.hooks
		c.execute(q.at)
		return
	}

	// Enter keep-alive.
	c.idle = true
	c.idleSince = now
	c.fn.idle = append(c.fn.idle, c)
	c.p.tel.Tracer.Record(telemetry.Event{
		At: now, Kind: telemetry.KindContainerIdle, Actor: c.id, Fn: c.fn.id,
	})
	c.recycleEv = e.After(c.p.keepAliveFor(c.fn), func(*simtime.Engine) { c.recycle() })
	c.pol.Idle(e)

	// An over-committed node reclaims as soon as something becomes
	// reclaimable; the newly idle container itself may be the victim.
	c.p.enforceMemoryLimit(now)
}

// buildInvocation assembles the just-finished request's span tree. The
// phases tile the root exactly — cold starts get launch+init children,
// queued requests a queue child, and the exec span nests the remote-fault
// stall (labelled a restore on semi-warm reuse) with the link-congestion
// share as a backlog grandchild — so attribution's per-phase times sum to
// end-to-end latency in integer nanoseconds.
func (c *Container) buildInvocation(arrival, now simtime.Time) span.Invocation {
	root := span.Span{
		Phase: span.PhaseRequest,
		Start: arrival,
		Dur:   time.Duration(now - arrival),
	}
	switch c.curKind {
	case ColdStart:
		if c.curReinit && c.curRetryWait > 0 {
			// A cold re-init replay: the backoff burned before the relaunch
			// precedes the launch span (the fresh container has no remote
			// pages, so no stall span exists to nest it under).
			root.Children = append(root.Children, span.Span{
				Phase: span.PhaseRetry,
				Start: c.launched - simtime.Time(c.curRetryWait),
				Dur:   c.curRetryWait,
			})
		}
		root.Children = append(root.Children,
			span.Span{
				Phase: span.PhaseLaunch, Start: c.launched,
				Dur: time.Duration(c.loadedAt - c.launched),
			},
			span.Span{
				Phase: span.PhaseInit, Start: c.loadedAt,
				Dur: time.Duration(c.started - c.loadedAt),
			})
	case QueuedStart:
		root.Children = append(root.Children, span.Span{
			Phase: span.PhaseQueue, Start: arrival,
			Dur: time.Duration(c.started - arrival),
		})
	}
	exec := span.Span{
		Phase: span.PhaseExec, Start: c.started,
		Dur: time.Duration(now - c.started),
	}
	if c.curStall > 0 {
		// The batch faults at exec start in this model, so the stall leads
		// the exec span.
		phase := span.PhaseFaultStall
		if c.curKind == SemiWarmStart {
			phase = span.PhaseRestore
		}
		stall := span.Span{
			Phase: phase, Start: c.started, Dur: c.curStall,
			Pages: int64(c.curFaults + c.curRA),
		}
		if c.curRetryWait > 0 && c.curRetryWait <= c.curStall {
			// Retry backoff leads the stall: the fetch only issued (or the
			// fallback only engaged) once the wait was over.
			stall.Children = append(stall.Children, span.Span{
				Phase: span.PhaseRetry, Start: c.started, Dur: c.curRetryWait,
			})
		}
		if c.curFallbackLat > 0 {
			stall.Children = append(stall.Children, span.Span{
				Phase: span.PhaseFallback,
				Start: c.started + simtime.Time(c.curRetryWait),
				Dur:   c.curFallbackLat,
				Pages: int64(c.curFaults + c.curRA),
			})
		}
		if c.curQueueing > 0 {
			// Congestion delay surfaces after the pipelined fetches issue.
			stall.Children = append(stall.Children, span.Span{
				Phase: span.PhaseBacklog,
				Start: c.started + simtime.Time(c.curStall-c.curQueueing),
				Dur:   c.curQueueing,
				Pages: c.curBacklogBytes,
			})
		}
		exec.Children = append(exec.Children, stall)
	}
	if c.curStateIn > 0 {
		// State-in follows the fault stall: upstream regions map once the
		// container's own remote set is resolved.
		exec.Children = append(exec.Children, span.Span{
			Phase: span.PhaseStateIn,
			Start: c.started + simtime.Time(c.curStall),
			Dur:   c.curStateIn,
			Pages: c.curStateInBytes,
		})
	}
	if c.curStateOut > 0 {
		// State-out trails the exec span: the output region's transfer
		// completes with the stage (streamed during compute).
		exec.Children = append(exec.Children, span.Span{
			Phase: span.PhaseStateOut,
			Start: now - simtime.Time(c.curStateOut),
			Dur:   c.curStateOut,
			Pages: c.curStateOutBytes,
		})
	}
	root.Children = append(root.Children, exec)
	return span.Invocation{
		Function:  c.fn.id,
		Container: c.id,
		Kind:      span.StartKind(c.curKind),
		Root:      root,
	}
}

// recycle tears the container down at keep-alive expiry.
func (c *Container) recycle() {
	if c.dead {
		return
	}
	c.dead = true
	now := c.p.engine.Now()

	// Remove from the idle stack.
	for i, ic := range c.fn.idle {
		if ic == c {
			c.fn.idle = append(c.fn.idle[:i], c.fn.idle[i+1:]...)
			break
		}
	}
	local := c.space.LocalBytes()
	remote := c.space.RemoteBytes()
	c.cg.Uncharge(now, local)
	c.cg.DropRemote(now, remote)
	c.p.pool.DiscardOwner(now, c.owner, c.fn.id, remote)
	c.p.swap.Release(c.space.CountState(pagemem.Remote))

	c.p.addLive(now, -1)
	c.p.liveTotal--
	c.fn.live--
	c.p.met.recycles.Inc()
	c.p.met.live.Set(int64(c.p.liveTotal))
	c.p.tel.Tracer.Record(telemetry.Event{
		At: now, Kind: telemetry.KindContainerRecycle, Actor: c.id, Fn: c.fn.id,
		Value: remote,
	})
	c.p.syncMemGauges()
	c.pol.Recycle(c.p.engine)
}

// --- policy.View implementation ---

// ID implements policy.View.
func (c *Container) ID() string { return c.id }

// FunctionID implements policy.View.
func (c *Container) FunctionID() string { return c.fn.id }

// Profile implements policy.View.
func (c *Container) Profile() *workload.Profile { return c.fn.profile }

// Space implements policy.View.
func (c *Container) Space() *pagemem.Space { return c.space }

// LRU implements policy.View.
func (c *Container) LRU() *mglru.LRU { return c.lru }

// RuntimeRange implements policy.View.
func (c *Container) RuntimeRange() pagemem.Range { return c.runtimeRange }

// InitRange implements policy.View.
func (c *Container) InitRange() pagemem.Range { return c.initRange }

// RuntimeGen implements policy.View.
func (c *Container) RuntimeGen() mglru.GenID { return c.runtimeGen }

// InitGen implements policy.View.
func (c *Container) InitGen() mglru.GenID { return c.initGen }

// RequestsServed implements policy.View.
func (c *Container) RequestsServed() int { return c.requests }

// Idle implements policy.View.
func (c *Container) Idle() bool { return c.idle }

// StallFraction implements policy.View: the container's PSI memory-stall
// average over the short (~10 s) window — what TMO's feedback loop watches.
func (c *Container) StallFraction() float64 { return c.psi.Avg10(c.p.engine.Now()) }

// PSI exposes the container's pressure-stall accounting.
func (c *Container) PSI() *cgroup.PSI { return c.psi }

// OffloadScale implements policy.View: the node's bandwidth-governor factor.
func (c *Container) OffloadScale() float64 {
	return c.p.governor.Scale(c.p.engine.Now())
}

// Trace implements policy.View: the platform's event tracer (nil when
// tracing is disabled; telemetry.Tracer methods are nil-safe).
func (c *Container) Trace() *telemetry.Tracer { return c.p.tel.Tracer }

// Spans implements policy.View: the platform's causal-span recorder (nil
// when span recording is disabled; span.Recorder methods are nil-safe).
func (c *Container) Spans() *span.Recorder { return c.p.spans }

// Cgroup exposes the container's memory accounting (read-only use).
func (c *Container) Cgroup() *cgroup.Group { return c.cg }

// IdleSince reports when the container last became idle (meaningful only
// while Idle() is true).
func (c *Container) IdleSince() simtime.Time { return c.idleSince }

// greedyDualPriority scores an idle container for EvictGreedyDual: higher is
// more worth keeping. Frequency is the container's served requests, cost is
// the cold start this node avoids by keeping it warm, size is its local
// footprint.
func (c *Container) greedyDualPriority() float64 {
	cost := (c.fn.profile.LaunchTime + c.fn.profile.InitTime).Seconds()
	size := float64(c.space.LocalBytes())
	if size <= 0 {
		size = 1
	}
	return float64(c.requests) * cost / size
}

// Dead reports whether the container has been recycled.
func (c *Container) Dead() bool { return c.dead }

// classOf maps a page to its lifecycle class for pool-side description.
func (c *Container) classOf(id pagemem.PageID) memnode.Class {
	switch {
	case c.runtimeRange.Contains(id):
		return memnode.ClassRuntime
	case c.initRange.Contains(id):
		return memnode.ClassInit
	case c.execRange.Contains(id):
		return memnode.ClassExec
	default:
		return memnode.ClassOther
	}
}

// OffloadPages implements policy.View: it moves local pages to the remote
// pool, clamped to remaining pool capacity, charging the cgroup, node
// accounting and link bandwidth.
func (c *Container) OffloadPages(e *simtime.Engine, ids []pagemem.PageID) int {
	if c.dead || len(ids) == 0 {
		return 0
	}
	now := e.Now()
	pageBytes := int64(c.space.PageSize())
	// The link caps how much offload work it accepts per call (covers both
	// pool capacity and the queued-backlog horizon), and the swap device
	// must have free slots; truncated pages stay local and later offload
	// attempts pick them up.
	max := len(ids)
	if budget := int(c.p.pool.AcceptableBytes(now) / pageBytes); budget < max {
		max = budget
	}
	max = c.p.swap.Allocate(max)
	// Select offloadable candidates and describe them by lifecycle class;
	// the pool (and its memory node, when attached) admits per class.
	cand := c.offCand[:0]
	var counts rmem.ClassCounts
	for _, id := range ids {
		if len(cand) >= max {
			break
		}
		st := c.space.State(id)
		if st != pagemem.Inactive && st != pagemem.Hot {
			continue
		}
		cand = append(cand, id)
		counts[c.classOf(id)]++
	}
	c.offCand = cand
	if len(cand) == 0 {
		c.p.swap.Release(max)
		return 0
	}
	accepted, _, err := c.p.pool.OffloadDescribed(now, c.owner, c.fn.id, counts, pageBytes)
	if err != nil {
		// The capacity clamp above should prevent this (ErrPoolFull);
		// candidates stay local and keep their swap slots released.
		c.p.swap.Release(max)
		return 0
	}
	moved := c.offMoved[:0]
	rem := accepted
	for _, id := range cand {
		cls := c.classOf(id)
		if rem[cls] == 0 {
			continue
		}
		rem[cls]--
		c.space.SetState(id, pagemem.Remote)
		moved = append(moved, id)
	}
	c.offMoved = moved
	if len(moved) < max {
		// Return the slots we claimed but did not fill (state-filtered
		// candidates plus node-rejected pages).
		c.p.swap.Release(max - len(moved))
	}
	if len(moved) == 0 {
		return 0
	}
	bytes := int64(len(moved)) * pageBytes
	c.cg.Offload(now, bytes)
	if c.p.spans.Enabled() {
		start, done := c.p.pool.LastTransferWindow()
		c.p.spans.RecordBackground(span.Background{
			Kind: span.BGOffload, Function: c.fn.id, Container: c.id,
			Start: start, Dur: time.Duration(done - start), Bytes: bytes,
		})
	}
	if c.p.tel.Enabled() {
		// The accepted per-class counts are the moved pages by lifecycle
		// segment (memnode.Class numbering matches telemetry.Stage), so the
		// trace and per-stage counters show which Pucket the savings came
		// from.
		var perStage [memnode.NumClasses]int64
		for cls, n := range accepted {
			perStage[cls] = int64(n)
		}
		for st, n := range perStage {
			if n == 0 {
				continue
			}
			c.p.met.offloadedPages[st].Add(n)
			c.p.tel.Tracer.Record(telemetry.Event{
				At: now, Kind: telemetry.KindPageOffload, Actor: c.id,
				Fn: c.fn.id, Stage: telemetry.Stage(st), Value: n,
			})
		}
		c.p.syncMemGauges()
	}
	if c.p.tl.Enabled() {
		for cls, n := range accepted {
			if n == 0 {
				continue
			}
			c.p.tl.AddCounter(now, timeseries.SeriesOffloadPages, timeseries.Dims{
				Node: c.p.tlNode, Tenant: c.fn.id, Class: memnode.Class(cls).String(),
			}, int64(n))
		}
	}
	return len(moved)
}
