package faas_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/sharedmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// decodeWorkflowFuzz turns fuzz bytes into an arbitrary stage graph (edges in
// any direction, so cycles are reachable) plus a fault-plan selector.
func decodeWorkflowFuzz(data []byte) (*workload.Workflow, byte) {
	if len(data) < 2 {
		return nil, 0
	}
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	n := int(next())%6 + 2
	faultMode := next() % 4
	profs := workload.Profiles()
	wf := &workload.Workflow{Name: "fuzz"}
	for i := 0; i < n; i++ {
		st := workload.Stage{
			Name:       fmt.Sprintf("s%d", i),
			Profile:    profs[int(next())%len(profs)].Name,
			OutBytes:   int64(next()%33) << 20,
			DirtyBytes: int64(next()%4) << 20,
			Replicas:   int(next() % 3),
		}
		seen := map[int]bool{}
		for d := int(next()) % 3; d > 0; d-- {
			j := int(next()) % n
			if j == i || seen[j] {
				continue
			}
			seen[j] = true
			st.Deps = append(st.Deps, fmt.Sprintf("s%d", j))
		}
		wf.Stages = append(wf.Stages, st)
	}
	return wf, faultMode
}

// hasCycleDFS is an independent (colored-DFS) cycle oracle over the decoded
// dependency edges, differentially checking Workflow.Validate's Kahn pass.
func hasCycleDFS(wf *workload.Workflow) bool {
	idx := map[string]int{}
	for i := range wf.Stages {
		idx[wf.Stages[i].Name] = i
	}
	color := make([]int, len(wf.Stages)) // 0 white, 1 gray, 2 black
	var visit func(i int) bool
	visit = func(i int) bool {
		color[i] = 1
		for _, d := range wf.Stages[i].Deps {
			switch color[idx[d]] {
			case 1:
				return true
			case 0:
				if visit(idx[d]) {
					return true
				}
			}
		}
		color[i] = 2
		return false
	}
	for i := range wf.Stages {
		if color[i] == 0 && visit(i) {
			return true
		}
	}
	return false
}

// fuzzFaultPlan maps the selector byte onto a deterministic fault plan.
func fuzzFaultPlan(mode byte) *faultinject.Plan {
	switch mode % 4 {
	case 1:
		return faultinject.FromWindows([]faultinject.Window{
			{Kind: faultinject.PoolCrash, Start: 0, End: simtime.Time(time.Hour)},
		})
	case 2:
		return faultinject.FromWindows([]faultinject.Window{
			{Kind: faultinject.LinkFlap, Start: 0, End: simtime.Time(20 * time.Second)},
		})
	case 3:
		return faultinject.FromWindows([]faultinject.Window{
			{Kind: faultinject.LatencySpike, Start: 0, End: simtime.Time(time.Hour), Factor: 4},
		})
	default:
		return nil
	}
}

// FuzzWorkflowDAG decodes arbitrary stage graphs and checks three contracts:
// cyclic graphs are rejected by Validate (differentially against a DFS
// oracle); acyclic graphs run to completion on a fault-injected rack with
// every stage request conserved (completed exactly Invocations() times across
// the normal/rescheduled/re-init classes); and the shared-region manager
// drains — refcounts hit zero, nothing leaks — under every fault plan.
func FuzzWorkflowDAG(f *testing.F) {
	// Linear chain, fault-free.
	f.Add([]byte{1, 0, 0, 8, 0, 1, 0, 1, 4, 1, 1, 1, 0})
	// Diamond with replicas under a pool crash.
	f.Add([]byte{2, 1, 3, 16, 2, 0, 0, 4, 8, 1, 1, 1, 0, 5, 12, 0, 1, 1, 2, 2, 0, 2, 1, 2})
	// Self-referential-ish dense graph (likely cyclic).
	f.Add([]byte{4, 2, 1, 2, 3, 2, 1, 0, 2, 4, 1, 2, 2, 1, 6, 8, 2, 2, 0, 3, 7, 1, 0, 2, 1, 4})
	// Wide fan-out under a link flap.
	f.Add([]byte{3, 2, 9, 32, 0, 0, 0, 10, 16, 2, 1, 0, 4, 0, 1, 1, 1, 0, 2, 24, 0, 0, 2, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		wf, faultMode := decodeWorkflowFuzz(data)
		if wf == nil {
			t.Skip()
		}
		err := wf.Validate()
		if cyclic := hasCycleDFS(wf); cyclic != (err != nil) {
			t.Fatalf("cycle oracle says cyclic=%v, Validate says %v", cyclic, err)
		}
		if err != nil {
			return
		}

		nodeCfg := memnode.Config{DRAMBytes: 256 << 20, SpillBytes: 1 << 30}
		e := simtime.NewEngine()
		c := cluster.New(e, cluster.Config{
			Nodes: 2,
			Node: faas.Config{
				KeepAliveTimeout: time.Minute,
				Seed:             1,
			},
			Pool: rmem.Config{Node: &nodeCfg, Faults: fuzzFaultPlan(faultMode)},
		}, func() policy.Policy { return core.New(core.Config{}) })
		pageSize := int64(c.Nodes()[0].Config().PageSize)
		mgr := sharedmem.New(sharedmem.Config{PageSize: pageSize, Pool: c.Pool()})
		we, err := faas.NewWorkflowEngine(faas.WorkflowConfig{
			Engine:       e,
			Shared:       mgr,
			PageSize:     pageSize,
			Register:     func(id string, prof *workload.Profile) { c.Register(id, prof) },
			Invoke:       c.InvokeStage,
			StatePassing: true,
		}, wf)
		if err != nil {
			t.Fatalf("valid workflow rejected by engine: %v", err)
		}
		we.Run(nil)
		e.RunUntil(simtime.Time(30 * time.Minute))

		st := we.Stats()
		if st.Completed != 1 {
			t.Fatalf("workflow did not complete: %+v", st)
		}
		if st.Invocations != wf.Invocations() {
			t.Fatalf("invocations %d, want %d", st.Invocations, wf.Invocations())
		}
		cs := c.Stats()
		if cs.Submitted != wf.Invocations() {
			t.Fatalf("submitted %d, want %d", cs.Submitted, wf.Invocations())
		}
		if done := cs.Recovery.DoneNormal + cs.Recovery.DoneRescheduled +
			cs.Recovery.DoneReinit; done != cs.Submitted {
			t.Fatalf("request conservation: normal %d + rescheduled %d + reinit %d != submitted %d",
				cs.Recovery.DoneNormal, cs.Recovery.DoneRescheduled, cs.Recovery.DoneReinit, cs.Submitted)
		}
		if !mgr.Drained() {
			t.Fatalf("regions leaked at drain: %+v", mgr.Stats())
		}
		if err := mgr.CheckInvariants(); err != nil {
			t.Fatalf("region invariants: %v", err)
		}
		if err := c.Pool().Node().CheckInvariants(); err != nil {
			t.Fatalf("memnode invariants: %v", err)
		}
	})
}
