package faas

import (
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/telemetry"
)

// platformMetrics holds the node's live counters and gauges. Built from a
// nil registry every field is a nil *telemetry.Metric, whose methods are
// no-ops, so the platform updates them unconditionally.
type platformMetrics struct {
	launches       *telemetry.Metric
	coldStarts     *telemetry.Metric
	warmStarts     *telemetry.Metric
	semiWarmStarts *telemetry.Metric
	queuedReqs     *telemetry.Metric
	requests       *telemetry.Metric
	recycles       *telemetry.Metric
	evictions      *telemetry.Metric
	faultPages     *telemetry.Metric
	readaheadPages *telemetry.Metric
	writeBreaks    *telemetry.Metric
	coldReinits    *telemetry.Metric
	fallbackPages  *telemetry.Metric
	// offloadedPages is indexed by telemetry.Stage (which mirrors
	// memnode.Class): pages moved to the pool per lifecycle segment — the
	// per-stage visibility Figs. 8–9 need.
	offloadedPages [memnode.NumClasses]*telemetry.Metric
	live           *telemetry.Metric
	localBytes     *telemetry.Metric
	remoteBytes    *telemetry.Metric
	// reqLatency is the end-to-end request latency distribution exposed as
	// a Prometheus histogram (seconds).
	reqLatency *telemetry.Histogram
}

func newPlatformMetrics(reg *telemetry.Registry) platformMetrics {
	return platformMetrics{
		launches:       reg.Counter("faasmem_containers_launched_total", "containers ever cold-started"),
		coldStarts:     reg.Counter("faasmem_cold_starts_total", "requests that launched a new container"),
		warmStarts:     reg.Counter("faasmem_warm_starts_total", "requests served by a fully-local idle container"),
		semiWarmStarts: reg.Counter("faasmem_semiwarm_starts_total", "requests served by a partially-offloaded idle container"),
		queuedReqs:     reg.Counter("faasmem_requests_queued_total", "requests queued behind the scale-out cap"),
		requests:       reg.Counter("faasmem_requests_completed_total", "completed requests"),
		recycles:       reg.Counter("faasmem_container_recycles_total", "containers torn down (keep-alive expiry or eviction)"),
		evictions:      reg.Counter("faasmem_containers_evicted_total", "idle containers evicted by the node memory limit"),
		faultPages:     reg.Counter("faasmem_fault_pages_total", "remote pages demand-faulted on request critical paths"),
		readaheadPages: reg.Counter("faasmem_readahead_pages_total", "remote pages recalled by swap readahead"),
		writeBreaks:    reg.Counter("faasmem_write_break_pages_total", "runtime pages privatized by copy-on-write unmerge breaks"),
		coldReinits:    reg.Counter("faasmem_cold_reinits_total", "containers discarded and relaunched after a fetch timeout"),
		fallbackPages:  reg.Counter("faasmem_fallback_pages_total", "remote pages served from the local swap copy during outages"),
		offloadedPages: [memnode.NumClasses]*telemetry.Metric{
			telemetry.StageNone:    reg.Counter("faasmem_pages_offloaded_unsegmented_total", "pages offloaded outside any tracked segment"),
			telemetry.StageRuntime: reg.Counter("faasmem_pages_offloaded_runtime_total", "runtime-segment pages offloaded to the pool"),
			telemetry.StageInit:    reg.Counter("faasmem_pages_offloaded_init_total", "init-segment pages offloaded to the pool"),
			telemetry.StageExec:    reg.Counter("faasmem_pages_offloaded_exec_total", "exec-segment pages offloaded to the pool"),
			telemetry.StageShared:  reg.Counter("faasmem_pages_offloaded_shared_total", "shared-region pages offloaded to the pool"),
		},
		live:        reg.Gauge("faasmem_live_containers", "containers currently alive on the node"),
		localBytes:  reg.Gauge("faasmem_node_local_bytes", "node-local DRAM currently charged"),
		remoteBytes: reg.Gauge("faasmem_node_remote_bytes", "bytes resident in the remote pool for this node"),
		reqLatency:  reg.Histogram("faasmem_request_latency_seconds", "end-to-end request latency (arrival to completion)", telemetry.DefBuckets),
	}
}

// syncMemGauges refreshes the node memory gauges after an accounting change.
// Guarded so the disabled path does not even read the cgroup totals.
func (p *Platform) syncMemGauges() {
	if p.tel.Reg == nil {
		return
	}
	p.met.localBytes.Set(p.nodeCG.LocalBytes())
	p.met.remoteBytes.Set(p.nodeCG.RemoteBytes())
}

// Telemetry returns the hub the platform was instrumented with (zero Hub
// when disabled).
func (p *Platform) Telemetry() telemetry.Hub { return p.tel }
