package faas

import (
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// armTimeline wires the platform into its Config.Timeline recorder: it
// caches the node dimension, attaches the pool (arming the flight
// recorder's fault-window triggers), and starts a per-window ticker that
// samples the node's occupancy gauges. On a rack-shared pool the first
// platform to attach also owns the pool-side gauge sampling, so pool series
// are sampled once per rack rather than once per node. No-op when the
// timeline is disabled — nothing is scheduled and the DES hot path keeps
// its single nil check.
func (p *Platform) armTimeline() {
	p.tlNode = p.cfg.NodeID
	if p.tlNode == "" {
		p.tlNode = "n0"
	}
	if !p.tl.Enabled() {
		return
	}
	poolOwner := p.pool.InstrumentTimeline(p.tl)
	nodeDims := timeseries.Dims{Node: p.tlNode}
	simtime.NewTicker(p.engine, p.tl.Window(), func(e *simtime.Engine) {
		now := e.Now()
		p.tl.SetGauge(now, timeseries.SeriesNodeLocalBytes, nodeDims, p.NodeLocalBytes())
		p.tl.SetGauge(now, timeseries.SeriesNodeRemoteBytes, nodeDims, p.NodeRemoteBytes())
		p.tl.SetGauge(now, timeseries.SeriesLiveContainers, nodeDims, int64(p.liveTotal))
		if poolOwner {
			p.pool.SampleTimeline(now)
		}
	})
}

// Timeline returns the recorder the platform was built with (nil when
// timeline recording is disabled).
func (p *Platform) Timeline() *timeseries.Recorder { return p.tl }
