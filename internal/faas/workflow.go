package faas

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/sharedmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// This file runs workflow DAGs over the platform: each stage is a function
// whose invocations carry StageHooks, intermediate state flows through
// pool-backed shared regions (internal/sharedmem), and dependency readiness
// is tracked per run. With state passing disabled — or when a region is
// lost to a pool fault — consumers replay the producer's work locally,
// priced as a re-derivation at ReinitBandwidth (the storage-round-trip
// baseline real workflow engines pay).

// WorkflowConfig parameterizes a WorkflowEngine.
type WorkflowConfig struct {
	// Engine is the simulation engine (shared with the target platform).
	Engine *simtime.Engine
	// Shared is the region manager used when StatePassing is on. The
	// manager must wrap the same pool the platform offloads to.
	Shared *sharedmem.Manager
	// PageSize is the region page granularity in bytes.
	PageSize int64
	// Register registers one stage function on the target (platform or
	// cluster). Called once per stage at engine construction.
	Register func(id string, prof *workload.Profile)
	// Invoke fires one stage request on the target.
	Invoke func(fnID string, hooks *StageHooks)
	// StatePassing routes intermediate state through pool-backed shared
	// regions. Off, every consumer re-derives its inputs at
	// ReinitBandwidth — the cold baseline.
	StatePassing bool
	// ReinitBandwidth is the local/storage re-derivation bandwidth in
	// bytes per second. Default 1 GB/s.
	ReinitBandwidth float64
}

// WorkflowStats aggregates a workflow engine's outcomes across runs.
type WorkflowStats struct {
	// Runs counts started workflow runs; Completed the fully-drained ones.
	Runs, Completed int
	// Invocations counts completed stage requests (replicas included).
	Invocations int
	// Replays counts consumers that re-derived an input because its region
	// was lost or unreachable (pool fault at produce or map time).
	Replays int
	// Reinits counts inputs re-derived because state passing is off, plus
	// region shortfalls re-derived by consumers.
	Reinits int
	// CowBreaks counts copy-on-write unshares from dirty stage writes.
	CowBreaks int
	// StateInTime / StateOutTime accumulate critical-path state latency;
	// StateInBytes / StateOutBytes the bytes moved.
	StateInTime, StateOutTime   time.Duration
	StateInBytes, StateOutBytes int64
}

// WorkflowEngine runs one workflow's DAG repeatedly against a target.
type WorkflowEngine struct {
	cfg   WorkflowConfig
	wf    *workload.Workflow
	deps  [][]int // stage → dependency stage indices
	outs  [][]int // stage → dependent stage indices
	runs  int
	stats WorkflowStats
}

// NewWorkflowEngine validates the workflow, registers its stage functions
// on the target (one function per stage, named "<workflow>.<stage>") and
// returns an engine ready to Run.
func NewWorkflowEngine(cfg WorkflowConfig, wf *workload.Workflow) (*WorkflowEngine, error) {
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	if cfg.Engine == nil || cfg.Register == nil || cfg.Invoke == nil {
		return nil, fmt.Errorf("faas: workflow engine needs Engine, Register and Invoke")
	}
	if cfg.StatePassing && cfg.Shared == nil {
		return nil, fmt.Errorf("faas: state passing needs a shared-region manager")
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("faas: workflow engine needs a page size")
	}
	if cfg.ReinitBandwidth <= 0 {
		cfg.ReinitBandwidth = 1e9
	}
	e := &WorkflowEngine{
		cfg:  cfg,
		wf:   wf,
		deps: make([][]int, len(wf.Stages)),
		outs: make([][]int, len(wf.Stages)),
	}
	idx := make(map[string]int, len(wf.Stages))
	for i := range wf.Stages {
		idx[wf.Stages[i].Name] = i
	}
	for i := range wf.Stages {
		s := &wf.Stages[i]
		prof := workload.ByName(s.Profile)
		if prof == nil {
			return nil, fmt.Errorf("faas: workflow %s: stage %q: unknown profile %q", wf.Name, s.Name, s.Profile)
		}
		cfg.Register(e.fnID(i), prof)
		for _, d := range s.Deps {
			j := idx[d]
			e.deps[i] = append(e.deps[i], j)
			e.outs[j] = append(e.outs[j], i)
		}
	}
	return e, nil
}

// Workflow returns the DAG this engine runs.
func (e *WorkflowEngine) Workflow() *workload.Workflow { return e.wf }

// Stats returns a snapshot of the engine's counters.
func (e *WorkflowEngine) Stats() WorkflowStats { return e.stats }

// fnID names a stage's function on the target platform.
func (e *WorkflowEngine) fnID(i int) string { return e.wf.Name + "." + e.wf.Stages[i].Name }

// reinit prices re-deriving bytes locally (or through storage) instead of
// mapping them from the pool.
func (e *WorkflowEngine) reinit(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / e.cfg.ReinitBandwidth * float64(time.Second))
}

// Run starts one workflow run at the current virtual time. Source stages
// fire immediately; each remaining stage fires when every dependency stage
// has fully finished (all replicas). onDone, if non-nil, observes the run's
// start and end times when the last stage completes.
func (e *WorkflowEngine) Run(onDone func(start, end simtime.Time)) {
	e.runs++
	e.stats.Runs++
	r := &wfRun{
		eng:           e,
		id:            e.runs,
		start:         e.cfg.Engine.Now(),
		pending:       make([]int, len(e.wf.Stages)),
		remaining:     make([]int, len(e.wf.Stages)),
		consumersLeft: make([]int, len(e.wf.Stages)),
		onDone:        onDone,
	}
	for i := range e.wf.Stages {
		r.pending[i] = len(e.deps[i])
		r.remaining[i] = e.wf.Stages[i].Width()
		r.consumersLeft[i] = len(e.outs[i])
	}
	for i := range e.wf.Stages {
		if r.pending[i] == 0 {
			r.launchStage(i)
		}
	}
}

// wfRun is the per-run dependency state.
type wfRun struct {
	eng   *WorkflowEngine
	id    int
	start simtime.Time
	// pending counts unfinished dependency stages per stage; remaining the
	// stage's unfinished replicas; consumersLeft the dependent stages that
	// have not yet finished consuming the stage's output region.
	pending       []int
	remaining     []int
	consumersLeft []int
	finished      int
	onDone        func(start, end simtime.Time)
}

// regionName names the shared region holding a stage's output for this run.
func (r *wfRun) regionName(i int) string {
	return fmt.Sprintf("%s/%d/%s", r.eng.wf.Name, r.id, r.eng.wf.Stages[i].Name)
}

// launchStage fires every replica of a ready stage.
func (r *wfRun) launchStage(i int) {
	for rep := 0; rep < r.eng.wf.Stages[i].Width(); rep++ {
		r.eng.cfg.Invoke(r.eng.fnID(i), r.hooksFor(i))
	}
}

// hooksFor builds one replica's hooks. The mapped-region list is closure
// state shared between StateIn and Done, so exactly what this invocation
// mapped is unmapped at its completion.
func (r *wfRun) hooksFor(i int) *StageHooks {
	var mapped []string
	h := &StageHooks{}
	h.StateIn = func(now simtime.Time) (time.Duration, int64) {
		lat, bytes, m := r.stateIn(now, i)
		mapped = m
		return lat, bytes
	}
	if r.eng.wf.Stages[i].OutBytes > 0 {
		h.StateOut = func(now simtime.Time) (time.Duration, int64) {
			return r.stateOut(now, i)
		}
	}
	h.Done = func(eng *simtime.Engine, fin simtime.Time) {
		for _, rn := range mapped {
			if err := r.eng.cfg.Shared.Unmap(fin, rn); err != nil {
				panic(err)
			}
		}
		r.replicaDone(i, fin)
	}
	return h
}

// stateIn prices one replica's input side: map each dependency's region
// (pool path), or re-derive the bytes (baseline, lost region, shortfall
// tail). Returns the added latency, the bytes moved, and the regions this
// replica now holds mapped.
func (r *wfRun) stateIn(now simtime.Time, i int) (time.Duration, int64, []string) {
	e := r.eng
	s := &e.wf.Stages[i]
	var lat time.Duration
	var bytes int64
	var mapped []string
	for _, d := range e.deps[i] {
		out := e.wf.Stages[d].OutBytes
		if out == 0 {
			continue
		}
		if !e.cfg.StatePassing {
			lat += e.reinit(out)
			bytes += out
			e.stats.Reinits++
			continue
		}
		rn := r.regionName(d)
		reg := e.cfg.Shared.Region(rn)
		if reg == nil {
			// The producer lost its region to a pool fault: replay the
			// producer's work locally.
			lat += e.reinit(out)
			bytes += out
			e.stats.Replays++
			continue
		}
		stall, err := e.cfg.Shared.Map(now, rn)
		if err != nil {
			// Region exists but the pool is unreachable right now.
			lat += e.reinit(out)
			bytes += out
			e.stats.Replays++
			continue
		}
		mapped = append(mapped, rn)
		resBytes := int64(reg.Resident()) * e.cfg.PageSize
		lat += stall.Total
		bytes += resBytes
		if short := out - resBytes; short > 0 {
			// Quota/capacity shortfall at produce time: the missing tail is
			// re-derived by every consumer.
			lat += e.reinit(short)
			bytes += short
			e.stats.Reinits++
		}
		if s.DirtyBytes > 0 {
			br, err := e.cfg.Shared.WriteBreak(now, rn, e.fnID(i), s.DirtyBytes)
			if err != nil {
				lat += e.reinit(s.DirtyBytes)
				e.stats.Replays++
			} else {
				lat += br.Stall.Total
				bytes += int64(br.Private) * e.cfg.PageSize
				e.stats.CowBreaks++
			}
		}
	}
	e.stats.StateInTime += lat
	e.stats.StateInBytes += bytes
	return lat, bytes, mapped
}

// stateOut prices the produce side: the first replica to execute creates
// the stage's output region (replicas stream into one region); the pool's
// link-FIFO completion is the critical-path cost. With state passing off —
// or the pool down — the producer hands the bytes to storage at
// ReinitBandwidth instead, and consumers replay.
func (r *wfRun) stateOut(now simtime.Time, i int) (time.Duration, int64) {
	e := r.eng
	out := e.wf.Stages[i].OutBytes
	var lat time.Duration
	var bytes int64
	switch {
	case !e.cfg.StatePassing:
		lat = e.reinit(out)
		bytes = out
	default:
		rn := r.regionName(i)
		if e.cfg.Shared.Region(rn) != nil {
			// Another replica already produced the region.
			return 0, 0
		}
		_, res, err := e.cfg.Shared.Create(now, rn, e.fnID(i), out)
		if err != nil {
			// Pool down at produce time: fall back to storage; consumers
			// will find no region and replay.
			lat = e.reinit(out)
			bytes = out
		} else {
			if res.Done > now {
				lat = time.Duration(res.Done - now)
			}
			bytes = int64(res.Resident) * e.cfg.PageSize
		}
	}
	e.stats.StateOutTime += lat
	e.stats.StateOutBytes += bytes
	return lat, bytes
}

// replicaDone advances the run's dependency state after one replica
// finished (its mappings already unmapped by the Done hook).
func (r *wfRun) replicaDone(i int, fin simtime.Time) {
	e := r.eng
	e.stats.Invocations++
	r.remaining[i]--
	if r.remaining[i] > 0 {
		return
	}
	// Stage i fully finished: its deps lose a consumer, its dependents lose
	// a pending dependency.
	for _, d := range e.deps[i] {
		r.consumersLeft[d]--
		if r.consumersLeft[d] == 0 {
			r.releaseRegion(d, fin)
		}
	}
	if r.consumersLeft[i] == 0 {
		// No dependents (sink with an output region): drop it now.
		r.releaseRegion(i, fin)
	}
	for _, j := range e.outs[i] {
		r.pending[j]--
		if r.pending[j] == 0 {
			r.launchStage(j)
		}
	}
	r.finished++
	if r.finished == len(e.wf.Stages) {
		e.stats.Completed++
		if r.onDone != nil {
			r.onDone(r.start, fin)
		}
	}
}

// releaseRegion releases a stage's output region if one was produced (the
// create may have failed under a fault plan, or passing may be off).
func (r *wfRun) releaseRegion(i int, fin simtime.Time) {
	e := r.eng
	if !e.cfg.StatePassing || e.wf.Stages[i].OutBytes == 0 {
		return
	}
	rn := r.regionName(i)
	if e.cfg.Shared.Region(rn) == nil {
		return
	}
	if err := e.cfg.Shared.Release(fin, rn); err != nil {
		panic(err)
	}
}
