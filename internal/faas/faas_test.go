package faas

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/fastswap"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// tinyProfile is a fast, small benchmark for platform tests.
func tinyProfile() *workload.Profile {
	return &workload.Profile{
		Name:            "tiny",
		Language:        workload.Python,
		CPUShare:        0.1,
		RuntimeBytes:    1 * workload.MB,
		RuntimeHotBytes: 256 * 1024,
		InitBytes:       512 * 1024,
		InitHotBytes:    256 * 1024,
		Pattern:         workload.FixedHot,
		ExecBytes:       256 * 1024,
		ExecTime:        100 * time.Millisecond,
		InitTime:        200 * time.Millisecond,
		LaunchTime:      300 * time.Millisecond,
		QuotaBytes:      8 * workload.MB,
	}
}

func newTestPlatform(pol policy.Policy) (*simtime.Engine, *Platform) {
	e := simtime.NewEngine()
	p := New(e, Config{KeepAliveTimeout: 10 * time.Second, Seed: 1}, pol)
	return e, p
}

func TestColdStartLatency(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	e.Run()
	if f.stats.Requests != 1 {
		t.Fatalf("requests = %d, want 1", f.stats.Requests)
	}
	if f.stats.ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1", f.stats.ColdStarts)
	}
	// End-to-end = launch (300ms) + init (200ms) + exec (100ms).
	want := 0.6
	got := f.stats.Latency.Mean()
	if got < want-1e-9 || got > want+1e-6 {
		t.Fatalf("cold latency = %v, want %v", got, want)
	}
}

func TestWarmStartReusesContainer(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0, 2 * time.Second})
	e.Run()
	if f.stats.ColdStarts != 1 || f.stats.WarmStarts != 1 {
		t.Fatalf("cold/warm = %d/%d, want 1/1", f.stats.ColdStarts, f.stats.WarmStarts)
	}
	if p.ContainersCreated() != 1 {
		t.Fatalf("containers = %d, want 1", p.ContainersCreated())
	}
	// Warm latency = exec only.
	if got := f.stats.Latency.Min(); got != 0.1 {
		t.Fatalf("warm latency = %v, want 0.1", got)
	}
	// Reused interval = gap since idle: request done at 0.6s, next at 2s.
	if len(f.stats.ReusedIntervals) != 1 || f.stats.ReusedIntervals[0] != 1400*time.Millisecond {
		t.Fatalf("reused intervals = %v, want [1.4s]", f.stats.ReusedIntervals)
	}
}

func TestConcurrentRequestsScaleOut(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	f := p.Register("f", tinyProfile())
	// Both arrive before the first finishes → two containers.
	p.ScheduleInvocations("f", []simtime.Time{0, 10 * time.Millisecond})
	e.Run()
	if f.stats.ColdStarts != 2 {
		t.Fatalf("cold starts = %d, want 2", f.stats.ColdStarts)
	}
	if p.ContainersCreated() != 2 {
		t.Fatalf("containers = %d, want 2", p.ContainersCreated())
	}
}

func TestKeepAliveExpiryReleasesMemory(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	e.Run()
	if p.LiveContainers() != 0 {
		t.Fatalf("live containers = %d, want 0 after keep-alive expiry", p.LiveContainers())
	}
	if p.NodeLocalBytes() != 0 {
		t.Fatalf("node local = %d, want 0 after recycle", p.NodeLocalBytes())
	}
}

func TestNodeMemoryDuringKeepAlive(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	e.RunUntil(2 * time.Second) // request done, container idle
	// Base footprint resident: runtime + init (exec freed).
	want := int64(1*workload.MB + 512*1024)
	// Page rounding may add up to a page per segment.
	if got := p.NodeLocalBytes(); got < want || got > want+2*4096 {
		t.Fatalf("idle node local = %d, want ~%d", got, want)
	}
}

func TestExecSegmentFreedAfterRequest(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	var during, after int64
	e.At(550*time.Millisecond, func(*simtime.Engine) { during = p.NodeLocalBytes() })
	e.At(700*time.Millisecond, func(*simtime.Engine) { after = p.NodeLocalBytes() })
	e.RunUntil(time.Second)
	if during <= after {
		t.Fatalf("exec memory not freed: during=%d after=%d", during, after)
	}
	if during-after < 256*1024 {
		t.Fatalf("freed %d bytes, want >= exec segment", during-after)
	}
}

// offloadAllPolicy offloads every inactive runtime/init page when the
// container goes idle — a scriptable probe for the fault path.
type offloadAllPolicy struct{}

func (offloadAllPolicy) Name() string { return "offload-all" }
func (offloadAllPolicy) Attach(e *simtime.Engine, v policy.View) policy.ContainerPolicy {
	return &offloadAllContainer{view: v}
}

type offloadAllContainer struct {
	policy.Base
	view policy.View
}

func (c *offloadAllContainer) Idle(e *simtime.Engine) {
	s := c.view.Space()
	for _, r := range []pagemem.Range{c.view.RuntimeRange(), c.view.InitRange()} {
		ids := policy.CollectPages(s, r, pagemem.Inactive, 0)
		ids = append(ids, policy.CollectPages(s, r, pagemem.Hot, 0)...)
		c.view.OffloadPages(e, ids)
	}
}

func TestOffloadedPagesFaultBackOnAccess(t *testing.T) {
	e, p := newTestPlatform(offloadAllPolicy{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0, 2 * time.Second})
	e.Run()
	if f.stats.FaultPages == 0 {
		t.Fatal("second request should fault on offloaded pages")
	}
	// offloadAllPolicy does not implement policy.SemiWarmer, so the reuse is
	// classified as a plain warm start despite the remote pages.
	if f.stats.WarmStarts != 1 || f.stats.SemiWarmStarts != 0 {
		t.Fatalf("warm/semi-warm starts = %d/%d, want 1/0",
			f.stats.WarmStarts, f.stats.SemiWarmStarts)
	}
	// The faulting (second) request pays a latency penalty over pure exec.
	if f.stats.Latency.Min() <= 0.1 {
		t.Fatalf("faulting request latency %v did not exceed exec time", f.stats.Latency.Min())
	}
}

func TestOffloadRespectsPoolCapacity(t *testing.T) {
	e := simtime.NewEngine()
	// Pool fits only 16 pages.
	p := New(e, Config{
		KeepAliveTimeout: 10 * time.Second,
		Pool:             rmem.Config{Capacity: 16 * 4096},
		Seed:             1,
	}, offloadAllPolicy{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	e.RunUntil(2 * time.Second)
	if got := p.Pool().Used(); got > 16*4096 {
		t.Fatalf("pool used %d exceeds capacity", got)
	}
	// Not everything could be offloaded.
	fc := f.idle[0]
	if fc.Space().RemoteBytes() > 16*4096 {
		t.Fatalf("remote bytes %d exceed pool capacity", fc.Space().RemoteBytes())
	}
	if fc.Space().LocalBytes() == 0 {
		t.Fatal("all pages left local memory despite full pool")
	}
}

func TestSegmentRangesAndBarriers(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	e.RunUntil(time.Second)
	c := f.idle[0]
	if c.RuntimeRange().Len() == 0 || c.InitRange().Len() == 0 {
		t.Fatal("segment ranges not established")
	}
	if c.RuntimeRange().End != c.InitRange().Start {
		t.Fatal("runtime and init ranges not contiguous")
	}
	if c.RuntimeGen() == c.InitGen() {
		t.Fatal("puckets share a generation")
	}
	if c.LRU().NumGenerations() != 3 {
		t.Fatalf("generations = %d, want 3 (runtime, init, hot pool)", c.LRU().NumGenerations())
	}
	// Hot pages from request execution moved to the youngest generation.
	if c.LRU().GenPages(c.LRU().Youngest()) == 0 {
		t.Fatal("no pages promoted to the hot pool generation")
	}
}

func TestStallFractionTracksFaults(t *testing.T) {
	e, p := newTestPlatform(offloadAllPolicy{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0, 2 * time.Second})
	e.RunUntil(5 * time.Second) // before keep-alive expiry
	c := f.idle[0]
	if c.StallFraction() <= 0 {
		t.Fatal("stall fraction should be positive after faulting request")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	_, p := newTestPlatform(policy.NoOffload{})
	p.Register("f", tinyProfile())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	p.Register("f", tinyProfile())
}

func TestInvokeUnregisteredPanics(t *testing.T) {
	_, p := newTestPlatform(policy.NoOffload{})
	defer func() {
		if recover() == nil {
			t.Fatal("Invoke of unknown function did not panic")
		}
	}()
	p.Invoke("ghost")
}

func TestReplayTrace(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	tr := &trace.Trace{Duration: time.Minute, Functions: []*trace.Function{
		{ID: "a", Invocations: []simtime.Time{0, 30 * time.Second}},
		{ID: "b", Invocations: []simtime.Time{time.Second}},
	}}
	p.ReplayTrace(tr, func(i int, f *trace.Function) *workload.Profile { return tinyProfile() })
	e.Run()
	if got := p.Function("a").Stats().Requests; got != 2 {
		t.Fatalf("a requests = %d, want 2", got)
	}
	if got := p.Function("b").Stats().Requests; got != 1 {
		t.Fatalf("b requests = %d, want 1", got)
	}
	if len(p.Functions()) != 2 {
		t.Fatalf("functions = %d", len(p.Functions()))
	}
}

func TestNodeLocalAvgPositive(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	e.Run()
	if p.NodeLocalAvg() <= 0 {
		t.Fatal("node local average should be positive after activity")
	}
	if p.NodeLocalPeak() <= 0 {
		t.Fatal("node local peak should be positive")
	}
}

func TestLIFOReuse(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	f := p.Register("f", tinyProfile())
	// Create two containers via overlap, then send one request: the most
	// recently idled container should serve it.
	p.ScheduleInvocations("f", []simtime.Time{0, 50 * time.Millisecond, 5 * time.Second})
	e.RunUntil(4 * time.Second)
	if len(f.idle) != 2 {
		t.Fatalf("idle containers = %d, want 2", len(f.idle))
	}
	last := f.idle[1]
	e.Run()
	if last.RequestsServed() != 2 {
		t.Fatalf("LIFO reuse violated: most recently idled served %d requests", last.RequestsServed())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, int64) {
		e, p := newTestPlatform(offloadAllPolicy{})
		f := p.Register("f", tinyProfile())
		tr := trace.GenerateFunction("f", 10*time.Minute, 20*time.Second, true, 42)
		p.ScheduleInvocations("f", tr.Invocations)
		e.Run()
		return f.stats.Latency.P95(), f.stats.FaultPages
	}
	l1, f1 := run()
	l2, f2 := run()
	if l1 != l2 || f1 != f2 {
		t.Fatalf("runs diverge: (%v,%d) vs (%v,%d)", l1, f1, l2, f2)
	}
}

func TestSwapSlotsLimitOffloading(t *testing.T) {
	e := simtime.NewEngine()
	p := New(e, Config{
		KeepAliveTimeout: 10 * time.Second,
		Swap:             fastswap.Config{Slots: 16},
		Seed:             1,
	}, offloadAllPolicy{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	e.RunUntil(2 * time.Second)
	if got := p.Swap().Used(); got != 16 {
		t.Fatalf("swap used = %d, want full 16 slots", got)
	}
	fc := f.IdleContainer()
	if fc.Space().RemoteBytes() != 16*4096 {
		t.Fatalf("remote bytes = %d, want 16 pages", fc.Space().RemoteBytes())
	}
	// Slots come back at recycle.
	e.Run()
	if got := p.Swap().Used(); got != 0 {
		t.Fatalf("swap used after recycle = %d", got)
	}
}

func TestSwapSlotsReleasedOnFault(t *testing.T) {
	e := simtime.NewEngine()
	p := New(e, Config{KeepAliveTimeout: 30 * time.Second, Seed: 1}, offloadAllPolicy{})
	p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0, 2 * time.Second})
	var afterOffload, afterFault int
	e.At(1500*time.Millisecond, func(*simtime.Engine) { afterOffload = p.Swap().Used() })
	// Sample mid-execution of the second request (it re-offloads at idle).
	e.At(2050*time.Millisecond, func(*simtime.Engine) { afterFault = p.Swap().Used() })
	e.RunUntil(5 * time.Second)
	if afterOffload == 0 {
		t.Fatal("no slots allocated by offload")
	}
	if afterFault >= afterOffload {
		t.Fatalf("faults did not release slots: %d -> %d", afterOffload, afterFault)
	}
}

func TestReadaheadReducesFaults(t *testing.T) {
	run := func(ra int) (faults int64, recalled int64) {
		e := simtime.NewEngine()
		p := New(e, Config{
			KeepAliveTimeout: 30 * time.Second,
			Swap:             fastswap.Config{ReadaheadPages: ra},
			Seed:             1,
		}, offloadAllPolicy{})
		f := p.Register("f", tinyProfile())
		p.ScheduleInvocations("f", []simtime.Time{0, 2 * time.Second})
		e.RunUntil(5 * time.Second)
		return f.Stats().FaultPages, f.IdleContainer().Cgroup().RecalledBytes()
	}
	f0, r0 := run(0)
	f8, r8 := run(8)
	if f8 >= f0 {
		t.Fatalf("readahead did not reduce faults: %d vs %d", f8, f0)
	}
	// The same hot set comes back either way (readahead pages count as
	// recalled traffic).
	if r8 < r0 {
		t.Fatalf("readahead recalled less data: %d vs %d", r8, r0)
	}
}

func TestConcurrencyCapQueuesRequests(t *testing.T) {
	e := simtime.NewEngine()
	p := New(e, Config{
		KeepAliveTimeout:         10 * time.Second,
		MaxContainersPerFunction: 1,
		Seed:                     1,
	}, policy.NoOffload{})
	f := p.Register("f", tinyProfile())
	// Three requests land while the single allowed container cold-starts.
	p.ScheduleInvocations("f", []simtime.Time{0, 10 * time.Millisecond, 20 * time.Millisecond})
	e.RunUntil(200 * time.Millisecond)
	if got := f.QueuedRequests(); got != 2 {
		t.Fatalf("queued = %d, want 2", got)
	}
	e.Run()
	if p.ContainersCreated() != 1 {
		t.Fatalf("containers = %d, want 1 (cap)", p.ContainersCreated())
	}
	if f.stats.Requests != 3 {
		t.Fatalf("requests = %d, want 3", f.stats.Requests)
	}
	// Back-to-back service: request i completes at cold(0.6) + i*exec(0.1).
	lat := f.stats.Latency
	if lat.Max() < 0.75 {
		t.Fatalf("queued request latency max = %v, want ~0.78 (wait included)", lat.Max())
	}
	if f.QueuedRequests() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestCongestionInflatesTail(t *testing.T) {
	// The Table-1 ID-5 shape: a surge against capped scale-out inflates the
	// tail for every policy alike.
	run := func(cap int) float64 {
		e := simtime.NewEngine()
		p := New(e, Config{
			KeepAliveTimeout:         time.Minute,
			MaxContainersPerFunction: cap,
			Seed:                     2,
		}, policy.NoOffload{})
		f := p.Register("f", tinyProfile())
		var inv []simtime.Time
		for i := 0; i < 40; i++ {
			inv = append(inv, simtime.Time(i)*simtime.Time(50*time.Millisecond))
		}
		p.ScheduleInvocations("f", inv)
		e.Run()
		return f.stats.Latency.P95()
	}
	uncapped := run(0)
	capped := run(1) // service rate (10/s) below arrival rate (20/s)
	if capped <= uncapped {
		t.Fatalf("congestion did not inflate tail: capped %.3f vs uncapped %.3f", capped, uncapped)
	}
	// The backlog compounds: the worst queued request waits several seconds.
	if capped < 1 {
		t.Fatalf("capped P95 %.3f shows no queueing backlog", capped)
	}
}

func TestExecLatencyExcludesColdStart(t *testing.T) {
	e, p := newTestPlatform(policy.NoOffload{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0})
	e.Run()
	if got := f.stats.ExecLatency.Mean(); got != 0.1 {
		t.Fatalf("exec latency = %v, want 0.1 (exec only)", got)
	}
	if got := f.stats.Latency.Mean(); got != 0.6 {
		t.Fatalf("e2e latency = %v, want 0.6 (incl. cold start)", got)
	}
}

func TestRequestLogRecordsPaths(t *testing.T) {
	e := simtime.NewEngine()
	p := New(e, Config{
		KeepAliveTimeout: 30 * time.Second,
		RequestLogSize:   8,
		Seed:             1,
	}, offloadAllPolicy{})
	p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{0, 2 * time.Second})
	e.RunUntil(5 * time.Second)
	recs := p.RequestLog().Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Kind != ColdStart || recs[1].Kind != WarmStart {
		t.Fatalf("kinds = %v/%v, want cold/warm", recs[0].Kind, recs[1].Kind)
	}
	if recs[1].FaultPages == 0 || recs[1].StallTime == 0 {
		t.Fatalf("warm record missing fault accounting: %+v", recs[1])
	}
	if recs[0].Latency <= recs[0].ExecLatency {
		t.Fatal("cold record should have latency > exec latency")
	}
}

func TestRequestLogRingEviction(t *testing.T) {
	var l RequestLog
	if l.Enabled() {
		t.Fatal("zero log should be disabled")
	}
	l.Add(RequestRecord{Function: "dropped"}) // no-op while disabled
	l.SetCapacity(3)
	for i := 0; i < 5; i++ {
		l.Add(RequestRecord{Container: string(rune('a' + i))})
	}
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	if recs[0].Container != "c" || recs[2].Container != "e" {
		t.Fatalf("ring order wrong: %+v", recs)
	}
}

func TestStartKindStrings(t *testing.T) {
	if ColdStart.String() != "cold" || WarmStart.String() != "warm" ||
		SemiWarmStart.String() != "semi-warm" || QueuedStart.String() != "queued" {
		t.Error("start kind strings")
	}
}
