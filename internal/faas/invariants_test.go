package faas

// Invariant tests: whatever the policy does, the platform's three ledgers —
// per-container cgroups, node-level time-weighted totals, and the remote
// pool — must agree at every quiescent point. A policy that corrupted any of
// them would silently invalidate every figure, so these checks run random
// workloads under every policy and reconcile the books.

import (
	"math/rand"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// reconcile asserts that node totals equal the sums over live containers and
// that the pool holds exactly the remote bytes.
func reconcile(t *testing.T, p *Platform, label string) {
	t.Helper()
	var local, remote int64
	live := 0
	for _, f := range p.Functions() {
		for _, c := range f.idle {
			local += c.space.LocalBytes()
			remote += c.space.RemoteBytes()
			live++
		}
	}
	// Only idle containers are inspectable here; during quiescence every
	// live container is idle.
	if live != p.LiveContainers() {
		t.Fatalf("%s: %d idle containers but %d live (quiescence assumption broken)",
			label, live, p.LiveContainers())
	}
	if got := p.NodeLocalBytes(); got != local {
		t.Errorf("%s: node local %d != sum of containers %d", label, got, local)
	}
	if got := p.NodeRemoteBytes(); got != remote {
		t.Errorf("%s: node remote %d != sum of containers %d", label, got, remote)
	}
	if got := p.Pool().Used(); got != remote {
		t.Errorf("%s: pool used %d != container remote %d", label, got, remote)
	}
}

func randomProfile(rng *rand.Rand) *workload.Profile {
	patterns := []workload.PatternKind{workload.FixedHot, workload.FullScan, workload.ParetoObjects}
	p := &workload.Profile{
		Name:            "rnd",
		Language:        workload.Python,
		CPUShare:        0.1,
		RuntimeBytes:    int64(1+rng.Intn(8)) * workload.MB,
		RuntimeHotBytes: int64(rng.Intn(2)) * workload.MB,
		InitBytes:       int64(rng.Intn(8)) * workload.MB,
		Pattern:         patterns[rng.Intn(len(patterns))],
		ExecBytes:       int64(rng.Intn(3)) * workload.MB,
		ExecTime:        time.Duration(10+rng.Intn(200)) * time.Millisecond,
		InitTime:        time.Duration(50+rng.Intn(500)) * time.Millisecond,
		LaunchTime:      time.Duration(50+rng.Intn(500)) * time.Millisecond,
		QuotaBytes:      64 * workload.MB,
	}
	p.InitHotBytes = p.InitBytes / int64(1+rng.Intn(3))
	if p.Pattern == workload.ParetoObjects {
		p.Objects = 1 + rng.Intn(20)
		p.ObjectsPerRequest = 1 + rng.Intn(4)
	}
	if p.Pattern == workload.FixedHot && p.InitBytes > p.InitHotBytes {
		p.JitterBytes = int64(rng.Intn(2)) * workload.MB
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestAccountingInvariantsAcrossPolicies(t *testing.T) {
	policies := map[string]func() policy.Policy{
		"baseline": func() policy.Policy { return policy.NoOffload{} },
		"tmo":      func() policy.Policy { return policy.NewTMO(policy.TMOConfig{}) },
		"damon":    func() policy.Policy { return policy.NewDAMON(policy.DAMONConfig{}) },
		"faasmem": func() policy.Policy {
			return core.New(core.Config{FallbackSemiWarmDelay: 20 * time.Second})
		},
		"faasmem-coldstart-aware": func() policy.Policy {
			return core.New(core.Config{FallbackSemiWarmDelay: 20 * time.Second, ColdStartAwareTiming: true})
		},
	}
	for name, mk := range policies {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				e := simtime.NewEngine()
				p := New(e, Config{KeepAliveTimeout: 90 * time.Second, Seed: seed}, mk())
				nFns := 1 + rng.Intn(4)
				for i := 0; i < nFns; i++ {
					prof := randomProfile(rng)
					prof.Name = prof.Name + string(rune('a'+i))
					fn := trace.GenerateFunction(prof.Name, 5*time.Minute,
						time.Duration(5+rng.Intn(40))*time.Second, rng.Intn(2) == 0, seed*17+int64(i))
					if len(fn.Invocations) == 0 {
						continue
					}
					p.Register(prof.Name, prof)
					p.ScheduleInvocations(prof.Name, fn.Invocations)
				}
				// Reconcile at a mid-run quiescent-ish point and at the end.
				e.RunUntil(7 * time.Minute)
				if busy := anyBusy(p); !busy {
					reconcile(t, p, name+"/mid")
				}
				e.Run()
				reconcile(t, p, name+"/end")
				// After full drain every container expired.
				if p.LiveContainers() != 0 {
					t.Fatalf("%s: %d containers alive after drain", name, p.LiveContainers())
				}
				if p.NodeLocalBytes() != 0 || p.NodeRemoteBytes() != 0 || p.Pool().Used() != 0 {
					t.Fatalf("%s: residual memory after drain: local=%d remote=%d pool=%d",
						name, p.NodeLocalBytes(), p.NodeRemoteBytes(), p.Pool().Used())
				}
			}
		})
	}
}

// anyBusy reports whether some container is executing (not idle).
func anyBusy(p *Platform) bool {
	for _, f := range p.Functions() {
		idle := len(f.idle)
		if f.live != idle {
			return true
		}
	}
	return false
}

func TestLatencyNeverBelowExecTime(t *testing.T) {
	// Whatever faults occur, a request can never complete faster than its
	// base execution time.
	e := simtime.NewEngine()
	p := New(e, Config{KeepAliveTimeout: time.Minute, Seed: 9},
		core.New(core.Config{FallbackSemiWarmDelay: 5 * time.Second}))
	prof := tinyProfile()
	f := p.Register("t", prof)
	fn := trace.GenerateFunction("t", 5*time.Minute, 15*time.Second, true, 5)
	p.ScheduleInvocations("t", fn.Invocations)
	e.Run()
	if f.Stats().Requests == 0 {
		t.Skip("no requests generated")
	}
	if min := f.Stats().Latency.Min(); min < prof.ExecTime.Seconds() {
		t.Fatalf("min latency %.4fs below exec time %.4fs", min, prof.ExecTime.Seconds())
	}
}

func TestStartKindAccountingInvariant(t *testing.T) {
	// cold + warm + semi-warm always equals completed requests, whatever the
	// policy and workload shape.
	for seed := int64(10); seed < 13; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := simtime.NewEngine()
		p := New(e, Config{KeepAliveTimeout: time.Minute, Seed: seed},
			core.New(core.Config{FallbackSemiWarmDelay: 10 * time.Second}))
		prof := randomProfile(rng)
		prof.Name = "inv"
		fn := trace.GenerateFunction("inv", 4*time.Minute, 8*time.Second, true, seed)
		if len(fn.Invocations) == 0 {
			continue
		}
		f := p.Register("inv", prof)
		p.ScheduleInvocations("inv", fn.Invocations)
		e.Run()
		st := f.Stats()
		if got := st.ColdStarts + st.WarmStarts + st.SemiWarmStarts; got != st.Requests {
			t.Fatalf("seed %d: start kinds %d != requests %d", seed, got, st.Requests)
		}
		if st.Latency.Count() != st.Requests {
			t.Fatalf("seed %d: latency samples %d != requests %d", seed, st.Latency.Count(), st.Requests)
		}
	}
}

func TestFaultsNeverExceedOffloadedPages(t *testing.T) {
	// A page can only fault back after having been offloaded, so cumulative
	// recall traffic is bounded by cumulative offload traffic.
	e := simtime.NewEngine()
	p := New(e, Config{KeepAliveTimeout: time.Minute, Seed: 3},
		core.New(core.Config{FallbackSemiWarmDelay: 5 * time.Second}))
	p.Register("t", tinyProfile())
	fn := trace.GenerateFunction("t", 5*time.Minute, 10*time.Second, true, 3)
	p.ScheduleInvocations("t", fn.Invocations)
	e.Run()
	out := p.Pool().Meter(rmem.Offload).Total()
	in := p.Pool().Meter(rmem.Recall).Total()
	if in > out {
		t.Fatalf("recalled %d bytes > offloaded %d bytes", in, out)
	}
}
